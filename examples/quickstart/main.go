// Quickstart: measure the MLP of the paper's database workload under the
// default out-of-order processor (64-entry window, issue configuration C)
// and see how the epoch model decomposes it.
package main

import (
	"fmt"

	"mlpsim"
)

func main() {
	opts := mlpsim.Options{Warmup: 500_000, Measure: 2_000_000}

	res := mlpsim.Simulate(mlpsim.Database(1), mlpsim.DefaultProcessor(), opts)

	fmt.Println("MLPsim quickstart — database workload, default 64C processor")
	fmt.Printf("  instructions simulated: %d\n", res.Instructions)
	fmt.Printf("  off-chip accesses:      %d (%.2f per 100 instructions)\n",
		res.Accesses, res.MissRatePer100())
	fmt.Printf("  epochs:                 %d\n", res.Epochs)
	fmt.Printf("  MLP:                    %.2f\n\n", res.MLP())

	// The epoch model explains *why* MLP stops there: the fraction of
	// epochs ended by each window termination condition.
	fmt.Println("  what limited each epoch:")
	fr := res.LimiterFracs()
	for l, frac := range fr {
		if res.Limiters[l] == 0 {
			continue
		}
		fmt.Printf("    %-14s %5.1f%%\n", mlpsim.Limiter(l).String(), 100*frac)
	}

	// Doubling the window helps — but not linearly; try it.
	big := mlpsim.Simulate(mlpsim.Database(1), mlpsim.DefaultProcessor().WithWindow(128), opts)
	fmt.Printf("\n  with a 128-entry window: MLP = %.2f (was %.2f)\n", big.MLP(), res.MLP())
}

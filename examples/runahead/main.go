// Runahead execution (§3.5, §5.4.1): when the missing load at the head of
// the reorder buffer would stall the pipeline, checkpoint and keep
// speculating — every independent miss found becomes a prefetch. Runahead
// removes the window-size and serialization termination conditions,
// matching an (unimplementable) 2048-entry window.
package main

import (
	"fmt"

	"mlpsim"
)

func main() {
	opts := mlpsim.Options{Warmup: 500_000, Measure: 2_000_000}

	fmt.Println("Runahead execution vs conventional out-of-order (issue config D)")
	fmt.Printf("%-14s %10s %10s %10s %14s\n", "workload", "64D/64", "64D/256", "RAE", "RAE vs 64D/64")
	for _, w := range mlpsim.Workloads(1) {
		conv := mlpsim.Simulate(w, mlpsim.DefaultProcessor().WithIssue(mlpsim.ConfigD), opts)
		big := mlpsim.Simulate(w, mlpsim.DefaultProcessor().WithIssue(mlpsim.ConfigD).WithROB(256), opts)
		rae := mlpsim.Simulate(w, mlpsim.DefaultProcessor().WithIssue(mlpsim.ConfigD).WithRunahead(), opts)
		fmt.Printf("%-14s %10.2f %10.2f %10.2f %+13.0f%%\n",
			w.Name, conv.MLP(), big.MLP(), rae.MLP(), 100*(rae.MLP()/conv.MLP()-1))
	}

	fmt.Println("\nThe paper's equivalence (§5.4.1): runahead matches an 'infinite'")
	fmt.Println("(2048-entry, configuration E) window:")
	db := mlpsim.Database(1)
	rae := mlpsim.Simulate(db, mlpsim.DefaultProcessor().WithIssue(mlpsim.ConfigD).WithRunahead(), opts)
	inf := mlpsim.Simulate(db, mlpsim.DefaultProcessor().WithWindow(2048).WithIssue(mlpsim.ConfigE), opts)
	fmt.Printf("  database: RAE MLP = %.3f, INF MLP = %.3f\n", rae.MLP(), inf.MLP())
}

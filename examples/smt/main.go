// Multithreaded MLP (the paper's first §7 future-work item): several
// hardware threads share the cache hierarchy. Per-thread MLP barely moves
// — each thread still faces the same window termination conditions — but
// the machine-level MLP bound scales with the thread count, because one
// thread's stall epochs overlap another's. Cache contention pushes
// per-thread miss rates up as threads are added, which is the price paid
// for that overlap.
package main

import (
	"fmt"

	"mlpsim"
)

func main() {
	fmt.Println("Multithreaded MLP — database workload copies sharing one L2")
	fmt.Printf("%-8s %-22s %-11s %-22s\n",
		"threads", "per-thread MLP", "combined", "miss rate solo→shared")

	for _, k := range []int{1, 2, 4} {
		threads := make([]mlpsim.Workload, k)
		for t := range threads {
			threads[t] = mlpsim.Database(int64(1 + t*100))
		}
		res := mlpsim.SimulateSMT(mlpsim.SMTConfig{
			Threads:   threads,
			Processor: mlpsim.DefaultProcessor(),
			Warmup:    400_000,
			Measure:   800_000,
		})
		per, rates := "", ""
		for t := 0; t < k; t++ {
			if t > 0 {
				per += " "
				rates += " "
			}
			per += fmt.Sprintf("%.2f", res.PerThread[t].MLP())
			rates += fmt.Sprintf("%.2f→%.2f", res.SoloMissRate[t], res.SharedMissRate[t])
		}
		fmt.Printf("%-8d %-22s %.2f–%-6.2f %-22s\n",
			k, per, res.CombinedLower, res.CombinedUpper, rates)
	}

	fmt.Println("\nThe combined range brackets a real SMT: the lower bound is a")
	fmt.Println("switch-on-event machine with no overlap, the upper bound is")
	fmt.Println("perfect inter-thread latency overlap.")
}

// Pointer chasing vs streaming: why dependent misses defeat MLP no matter
// how large the instruction window grows (§3.1-3.2 of the paper).
//
// The PointerChase workload's cold accesses form a linked-list traversal —
// every miss address depends on the previous miss's data — while Stream's
// cold accesses are independent array references. Out-of-order windows
// overlap Stream's misses easily; PointerChase stays at MLP ≈ 1 even with
// a 2048-entry window, because the epoch model's fundamental limit is the
// data dependence between missing loads.
package main

import (
	"fmt"

	"mlpsim"
)

func main() {
	opts := mlpsim.Options{Warmup: 200_000, Measure: 1_000_000}

	fmt.Println("MLP vs window size (issue configuration E)")
	fmt.Printf("%-14s", "window")
	for _, size := range []int{16, 64, 256, 1024} {
		fmt.Printf("%8d", size)
	}
	fmt.Println()

	for _, w := range []mlpsim.Workload{mlpsim.PointerChase(1), mlpsim.Stream(1)} {
		fmt.Printf("%-14s", w.Name)
		for _, size := range []int{16, 64, 256, 1024} {
			cfg := mlpsim.DefaultProcessor().WithWindow(size).WithIssue(mlpsim.ConfigE)
			res := mlpsim.Simulate(w, cfg, opts)
			fmt.Printf("%8.2f", res.MLP())
		}
		fmt.Println()
	}

	fmt.Println("\nPointer chasing pins MLP near 1: each missing load's address")
	fmt.Println("is the previous missing load's data, so every miss needs its")
	fmt.Println("own epoch. Bigger windows cannot help; only value prediction")
	fmt.Println("(predicting the next pointer) can cut the chain:")

	chase := mlpsim.PointerChase(1)
	perfVP := mlpsim.DefaultProcessor().WithIssue(mlpsim.ConfigE)
	perfVP.PerfectVP = true
	res := mlpsim.Simulate(chase, perfVP, opts)
	fmt.Printf("  PointerChase with perfect value prediction: MLP = %.2f\n", res.MLP())
}

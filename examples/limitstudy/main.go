// Limit study (§5.6): how much MLP headroom remains beyond runahead
// execution if instruction prefetching, branch prediction or value
// prediction were perfect?
package main

import (
	"fmt"

	"mlpsim"
)

func main() {
	opts := mlpsim.Options{Warmup: 500_000, Measure: 2_000_000}

	base := mlpsim.DefaultProcessor().WithIssue(mlpsim.ConfigD).WithRunahead()
	variants := []struct {
		name string
		mod  func(*mlpsim.ProcessorConfig)
	}{
		{"RAE", func(*mlpsim.ProcessorConfig) {}},
		{"RAE.perfI", func(c *mlpsim.ProcessorConfig) { c.PerfectIFetch = true }},
		{"RAE.perfVP", func(c *mlpsim.ProcessorConfig) { c.PerfectVP = true }},
		{"RAE.perfBP", func(c *mlpsim.ProcessorConfig) { c.PerfectBP = true }},
		{"RAE.perfVP.perfBP", func(c *mlpsim.ProcessorConfig) {
			c.PerfectVP = true
			c.PerfectBP = true
		}},
	}

	fmt.Printf("%-14s", "workload")
	for _, v := range variants {
		fmt.Printf("%19s", v.name)
	}
	fmt.Println()

	for _, w := range mlpsim.Workloads(1) {
		fmt.Printf("%-14s", w.Name)
		var first float64
		for i, v := range variants {
			cfg := base
			v.mod(&cfg)
			res := mlpsim.Simulate(w, cfg, opts)
			if i == 0 {
				first = res.MLP()
				fmt.Printf("%19.2f", first)
			} else {
				fmt.Printf("%11.2f (%+3.0f%%)", res.MLP(), 100*(res.MLP()/first-1))
			}
		}
		fmt.Println()
	}

	fmt.Println("\nPerfect branch prediction removes unresolvable mispredictions;")
	fmt.Println("perfect value prediction cuts dependent-miss chains; combining")
	fmt.Println("them leaves only true memory-level structure. There is still")
	fmt.Println("considerable MLP headroom beyond runahead execution (§5.6).")
}

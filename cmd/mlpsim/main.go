// Command mlpsim runs the epoch-model MLP simulator on a synthetic
// workload or a stored binary trace and prints MLP, access counts and the
// epoch-limiter breakdown.
//
// Examples:
//
//	mlpsim -workload database -window 64 -issue C
//	mlpsim -workload jbb -window 64 -rob 256 -issue D
//	mlpsim -workload database -issue D -runahead
//	mlpsim -trace db.trc -issue E -window 2048
//	mlpsim -trace db.atrc -issue D -runahead   # pre-annotated (v2) trace
//	mlpsim -trace db.acol -issue D -runahead   # columnar trace, memory-mapped
//	                                           # (monolithic MLPCOLS1 or a segmented
//	                                           #  MLPCOLS2 manifest + .segNNNN files)
//	mlpsim -workload web -inorder use
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
	"mlpsim/internal/bpred"
	"mlpsim/internal/core"
	"mlpsim/internal/mem"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/trace"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "database", "workload: database, jbb, web, chase, stream, serialized, ibound, strided, storeheavy")
		traceFile    = flag.String("trace", "", "binary trace file (overrides -workload)")
		seed         = flag.Int64("seed", 1, "workload generation seed")
		warmup       = flag.Int64("warmup", 2_000_000, "warm-up instructions")
		measure      = flag.Int64("measure", 8_000_000, "measured instructions (0 = rest of trace)")
		window       = flag.Int("window", 64, "issue window entries")
		rob          = flag.Int("rob", 0, "reorder buffer entries (0 = same as window)")
		fetchBuf     = flag.Int("fetchbuf", 32, "fetch buffer entries")
		issue        = flag.String("issue", "C", "issue configuration A-E (Table 2)")
		inorder      = flag.String("inorder", "", "in-order mode: miss or use (overrides window flags)")
		runahead     = flag.Bool("runahead", false, "enable runahead execution")
		maxRunahead  = flag.Int("max-runahead", 2048, "maximum runahead distance")
		vp           = flag.Bool("vp", false, "enable missing-load value prediction (16K last-value)")
		perfVP       = flag.Bool("perf-vp", false, "perfect value prediction (limit study)")
		perfBP       = flag.Bool("perf-bp", false, "perfect branch prediction (limit study)")
		perfI        = flag.Bool("perf-ifetch", false, "perfect instruction prefetching (limit study)")
		l2           = flag.Int("l2", 2<<20, "L2 capacity in bytes")
		mshrs        = flag.Int("mshrs", 0, "miss-status holding registers (0 = unlimited)")
		storeBuf     = flag.Int("storebuf", 0, "store buffer entries (0 = infinite)")
		ipf          = flag.Int("iprefetch", 0, "hardware sequential I-prefetch depth (0 = off)")
		dpf          = flag.Int("dprefetch", 0, "hardware stride D-prefetch depth (0 = off)")
		epochs       = flag.Bool("epochs", false, "print per-epoch detail (first 50 epochs)")
		timeline     = flag.Bool("timeline", false, "print a Figure-1-style epoch timeline (first 32 epochs)")
	)
	flag.Parse()

	// A pre-annotated trace replays directly: annotation and warm-up
	// already happened at tracegen time, so the annotation flags (-l2,
	// -iprefetch, -dprefetch, -vp as a predictor) have no effect and the
	// engine starts at the trace's first instruction. Engine-level flags
	// (-window, -issue, -runahead, -perf-* ...) apply as usual. Columnar
	// (.acol-format) traces are memory-mapped rather than decoded, so the
	// columns stay in the OS page cache instead of the Go heap.
	var engineSrc core.AnnotatedSource
	var pre atrace.Trace
	if *traceFile != "" {
		var err error
		switch {
		case atrace.IsSegmentedFile(*traceFile):
			pre, err = atrace.OpenSegmentedFile(*traceFile)
		case atrace.IsColumnarFile(*traceFile):
			pre, err = atrace.OpenColumnarFile(*traceFile)
		case isAnnotatedTrace(*traceFile):
			pre, err = atrace.ReadFile(*traceFile)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlpsim:", err)
			os.Exit(1)
		}
	}
	if pre != nil {
		if *ipf > 0 || *dpf > 0 || *vp {
			fmt.Fprintln(os.Stderr, "mlpsim: note: -iprefetch/-dprefetch/-vp annotation is baked in at tracegen time; flags ignored for annotated traces")
		}
		engineSrc = pre.Source()
	} else {
		src, err := openSource(*traceFile, *workloadName, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlpsim:", err)
			os.Exit(1)
		}
		acfg := annotate.Config{Hierarchy: mem.DefaultHierarchy().WithL2Size(*l2)}
		if *ipf > 0 {
			acfg.IPrefetch = prefetch.NewSequential(*ipf, mem.IFetch)
		}
		if *dpf > 0 {
			acfg.DPrefetch = prefetch.NewStride(1024, *dpf)
		}
		if *vp {
			acfg.Value = vpred.NewLastValue(vpred.DefaultEntries)
		}
		if *perfBP {
			acfg.Branch = bpred.Perfect{}
		}
		ann := annotate.New(src, acfg)
		ann.Warm(*warmup)
		engineSrc = ann
	}

	cfg := core.Default()
	cfg.IssueWindow = *window
	cfg.ROB = *rob
	if cfg.ROB == 0 {
		cfg.ROB = *window
	}
	cfg.FetchBuffer = *fetchBuf
	ic, err := core.ParseIssueConfig(*issue)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlpsim:", err)
		os.Exit(1)
	}
	cfg.Issue = ic
	switch *inorder {
	case "":
	case "miss":
		cfg.Mode = core.InOrderStallOnMiss
	case "use":
		cfg.Mode = core.InOrderStallOnUse
	default:
		fmt.Fprintf(os.Stderr, "mlpsim: unknown -inorder mode %q\n", *inorder)
		os.Exit(1)
	}
	cfg.Runahead = *runahead
	cfg.MaxRunahead = *maxRunahead
	cfg.MSHRs = *mshrs
	cfg.StoreBuffer = *storeBuf
	cfg.ValuePredict = *vp
	cfg.PerfectVP = *perfVP
	cfg.PerfectBP = *perfBP
	cfg.PerfectIFetch = *perfI
	cfg.MaxInstructions = *measure

	if *epochs {
		n := 0
		cfg.OnEpoch = func(ep core.Epoch) {
			if n < 50 {
				fmt.Printf("epoch %4d: trigger=%-10d accesses=%2d (D=%d P=%d I=%d) limiter=%s\n",
					ep.Seq, ep.Trigger, ep.Accesses, ep.DAccesses, ep.PAccesses, ep.IAccesses, ep.Limiter)
			}
			n++
		}
	}
	var tl core.Timeline
	if *timeline {
		prev := cfg.OnEpoch
		cfg.OnEpoch = func(ep core.Epoch) {
			tl.OnEpoch(ep)
			if prev != nil {
				prev(ep)
			}
		}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "mlpsim:", err)
		os.Exit(1)
	}

	res := core.NewEngine(engineSrc, cfg).Run()
	if *timeline {
		fmt.Println(tl.String())
	}

	fmt.Printf("configuration:    %s\n", cfg.Name())
	fmt.Printf("instructions:     %d\n", res.Instructions)
	fmt.Printf("off-chip accesses: %d  (loads %d, prefetches %d, ifetches %d)\n",
		res.Accesses, res.DAccesses, res.PAccesses, res.IAccesses)
	fmt.Printf("epochs:           %d\n", res.Epochs)
	fmt.Printf("miss rate:        %.3f / 100 instructions\n", res.MissRatePer100())
	fmt.Printf("MLP:              %.3f\n", res.MLP())
	if res.SAccesses > 0 {
		fmt.Printf("store misses:     %d (store MLP %.3f)\n", res.SAccesses, res.StoreMLP())
	}
	fmt.Println("epoch limiters:")
	fr := res.LimiterFracs()
	for l := 0; l < core.NumLimiters; l++ {
		if res.Limiters[l] == 0 {
			continue
		}
		fmt.Printf("  %-14s %6.1f%%  (%d)\n", core.Limiter(l).String(), 100*fr[l], res.Limiters[l])
	}
}

// isAnnotatedTrace reports whether path holds a version-2 (pre-annotated)
// trace. Unreadable files return false and fail later with a real error.
func isAnnotatedTrace(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	dec, err := trace.NewDecoder(bufio.NewReader(f))
	if err != nil {
		return false
	}
	return dec.Version() >= 2
}

// openSource returns the instruction source: a decoded trace file or a
// preset workload generator.
func openSource(traceFile, name string, seed int64) (trace.Source, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		// The file stays open for the process lifetime.
		return trace.NewReaderSource(f)
	}
	cfg, err := workload.ByName(name, seed)
	if err != nil {
		return nil, err
	}
	return workload.MustNew(cfg), nil
}

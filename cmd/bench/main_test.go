package main

import (
	"strings"
	"testing"
)

func sweepWithPeaks(cached, mapped int64) *sweepResult {
	return &sweepResult{CachedHeapPeakBytes: cached, MappedHeapPeakBytes: mapped}
}

func TestGateViolations(t *testing.T) {
	old := report{
		Benchmarks: map[string]benchResult{
			"AnnotateStream": {NsPerOp: 100},
			"ReplayStream":   {NsPerOp: 10},
		},
		Sweep: sweepWithPeaks(1000, 100),
	}

	t.Run("clean", func(t *testing.T) {
		cur := report{
			Benchmarks: map[string]benchResult{
				"AnnotateStream": {NsPerOp: 110},
				"ReplayStream":   {NsPerOp: 9},
			},
			Sweep: sweepWithPeaks(1100, 100),
		}
		if v := gateViolations(old, cur, 50); len(v) != 0 {
			t.Errorf("expected no violations, got %v", v)
		}
	})

	t.Run("nsPerOpRegression", func(t *testing.T) {
		cur := report{
			Benchmarks: map[string]benchResult{
				"AnnotateStream": {NsPerOp: 100},
				"ReplayStream":   {NsPerOp: 20}, // +100%
			},
			Sweep: sweepWithPeaks(1000, 100),
		}
		v := gateViolations(old, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "ReplayStream") {
			t.Errorf("expected one ReplayStream violation, got %v", v)
		}
	})

	t.Run("heapPeakRegression", func(t *testing.T) {
		cur := report{
			Benchmarks: map[string]benchResult{
				"AnnotateStream": {NsPerOp: 100},
				"ReplayStream":   {NsPerOp: 10},
			},
			Sweep: sweepWithPeaks(1000, 200), // mapped peak doubled
		}
		v := gateViolations(old, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "mapped sweep") {
			t.Errorf("expected one mapped-sweep violation, got %v", v)
		}
	})

	t.Run("missingFieldsTolerated", func(t *testing.T) {
		// Baselines from older schemas have no sweep and no benchmark map
		// at all: everything in the current report passes, never panics.
		v := gateViolations(report{}, report{
			Benchmarks: map[string]benchResult{"New": {NsPerOp: 1e9}},
			Sweep:      sweepWithPeaks(1, 1),
		}, 1)
		if len(v) != 0 {
			t.Errorf("expected no violations with empty baseline, got %v", v)
		}
	})

	t.Run("newBenchmarkFlagged", func(t *testing.T) {
		// A benchmark absent from a NON-empty baseline used to pass the
		// gate silently forever; it must be reported until the baseline is
		// refreshed.
		cur := report{
			Benchmarks: map[string]benchResult{
				"AnnotateStream": {NsPerOp: 100},
				"ReplayStream":   {NsPerOp: 10},
				"StoreSetSweep":  {NsPerOp: 1e9},
			},
			Sweep: sweepWithPeaks(1000, 100),
		}
		v := gateViolations(old, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "StoreSetSweep") || !strings.Contains(v[0], "no baseline entry") {
			t.Errorf("expected one no-baseline-entry violation for StoreSetSweep, got %v", v)
		}
	})

	t.Run("missingFromRunFlagged", func(t *testing.T) {
		// The reverse direction: a baseline benchmark the current run no
		// longer produces (renamed or dropped) must fail too.
		cur := report{
			Benchmarks: map[string]benchResult{"AnnotateStream": {NsPerOp: 100}},
			Sweep:      sweepWithPeaks(1000, 100),
		}
		v := gateViolations(old, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "ReplayStream") || !strings.Contains(v[0], "missing from this run") {
			t.Errorf("expected one missing-from-run violation for ReplayStream, got %v", v)
		}
	})

	t.Run("zeroBaselineFlagged", func(t *testing.T) {
		// A zero ns/op baseline entry must neither divide by zero nor
		// silently disable the gate for that benchmark.
		zeroOld := report{Benchmarks: map[string]benchResult{"AnnotateStream": {NsPerOp: 0}}}
		cur := report{Benchmarks: map[string]benchResult{"AnnotateStream": {NsPerOp: 100}}}
		v := gateViolations(zeroOld, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "AnnotateStream") || !strings.Contains(v[0], "cannot gate") {
			t.Errorf("expected one cannot-gate violation for the zero baseline, got %v", v)
		}
	})

	t.Run("unbracketedStoreSetsFlagged", func(t *testing.T) {
		cur := report{StoreSets: &storeSetsResult{Rows: 24, Bracketed: false}}
		v := gateViolations(report{}, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "bracket") {
			t.Errorf("expected one bracketing violation, got %v", v)
		}
		cur.StoreSets.Bracketed = true
		if v := gateViolations(report{}, cur, 50); len(v) != 0 {
			t.Errorf("bracketed sweep must pass, got %v", v)
		}
	})

	t.Run("unbracketedSMTSchedFlagged", func(t *testing.T) {
		cur := report{SMTSched: &smtSchedResult{Rows: 18, Bracketed: false}}
		v := gateViolations(report{}, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "combined-bounds bracket") {
			t.Errorf("expected one smt-sched bracketing violation, got %v", v)
		}
		cur.SMTSched.Bracketed = true
		if v := gateViolations(report{}, cur, 50); len(v) != 0 {
			t.Errorf("bracketed smt-sched sweep must pass, got %v", v)
		}
	})

	t.Run("zeroAllocRegressionFlagged", func(t *testing.T) {
		// A zero-alloc baseline gates on allocations in kind, not degree:
		// 0 -> 1 allocs/op fails even when ns/op is well inside the limit.
		zeroOld := report{Benchmarks: map[string]benchResult{"SMTSchedule": {NsPerOp: 100, AllocsPerOp: 0}}}
		cur := report{Benchmarks: map[string]benchResult{"SMTSchedule": {NsPerOp: 100, AllocsPerOp: 1}}}
		v := gateViolations(zeroOld, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "SMTSchedule") || !strings.Contains(v[0], "zero-alloc steady state") {
			t.Errorf("expected one zero-alloc violation, got %v", v)
		}
		// An already-allocating baseline stays percent-gated only.
		allocOld := report{Benchmarks: map[string]benchResult{"SMTSchedule": {NsPerOp: 100, AllocsPerOp: 3}}}
		if v := gateViolations(allocOld, cur, 50); len(v) != 0 {
			t.Errorf("nonzero baseline must not trip the zero-alloc rule, got %v", v)
		}
	})

	t.Run("nonIdenticalShardSweepFlagged", func(t *testing.T) {
		cur := report{ShardSweep: &shardSweepResult{Exhibit: "figure4", Identical: false}}
		v := gateViolations(report{}, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "shard sweep") {
			t.Errorf("expected one shard-sweep violation, got %v", v)
		}
		cur.ShardSweep.Identical = true
		if v := gateViolations(report{}, cur, 50); len(v) != 0 {
			t.Errorf("identical shard sweep must pass, got %v", v)
		}
	})

	t.Run("deterministicOrder", func(t *testing.T) {
		cur := report{
			Benchmarks: map[string]benchResult{
				"AnnotateStream": {NsPerOp: 1000},
				"ReplayStream":   {NsPerOp: 1000},
			},
		}
		v := gateViolations(old, cur, 50)
		if len(v) != 2 || !strings.Contains(v[0], "AnnotateStream") || !strings.Contains(v[1], "ReplayStream") {
			t.Errorf("expected sorted AnnotateStream,ReplayStream violations, got %v", v)
		}
	})
}

package main

import (
	"strings"
	"testing"
)

func sweepWithPeaks(cached, mapped int64) *sweepResult {
	return &sweepResult{CachedHeapPeakBytes: cached, MappedHeapPeakBytes: mapped}
}

func TestGateViolations(t *testing.T) {
	old := report{
		Benchmarks: map[string]benchResult{
			"AnnotateStream": {NsPerOp: 100},
			"ReplayStream":   {NsPerOp: 10},
		},
		Sweep: sweepWithPeaks(1000, 100),
	}

	t.Run("clean", func(t *testing.T) {
		cur := report{
			Benchmarks: map[string]benchResult{
				"AnnotateStream": {NsPerOp: 110},
				"ReplayStream":   {NsPerOp: 9},
			},
			Sweep: sweepWithPeaks(1100, 100),
		}
		if v := gateViolations(old, cur, 50); len(v) != 0 {
			t.Errorf("expected no violations, got %v", v)
		}
	})

	t.Run("nsPerOpRegression", func(t *testing.T) {
		cur := report{
			Benchmarks: map[string]benchResult{
				"AnnotateStream": {NsPerOp: 100},
				"ReplayStream":   {NsPerOp: 20}, // +100%
			},
			Sweep: sweepWithPeaks(1000, 100),
		}
		v := gateViolations(old, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "ReplayStream") {
			t.Errorf("expected one ReplayStream violation, got %v", v)
		}
	})

	t.Run("heapPeakRegression", func(t *testing.T) {
		cur := report{
			Benchmarks: map[string]benchResult{"AnnotateStream": {NsPerOp: 100}},
			Sweep:      sweepWithPeaks(1000, 200), // mapped peak doubled
		}
		v := gateViolations(old, cur, 50)
		if len(v) != 1 || !strings.Contains(v[0], "mapped sweep") {
			t.Errorf("expected one mapped-sweep violation, got %v", v)
		}
	})

	t.Run("missingFieldsTolerated", func(t *testing.T) {
		// Baselines from older schemas have no sweep and new benchmarks
		// have no baseline entry: both must pass, never panic.
		v := gateViolations(report{}, report{
			Benchmarks: map[string]benchResult{"New": {NsPerOp: 1e9}},
			Sweep:      sweepWithPeaks(1, 1),
		}, 1)
		if len(v) != 0 {
			t.Errorf("expected no violations with empty baseline, got %v", v)
		}
	})

	t.Run("deterministicOrder", func(t *testing.T) {
		cur := report{
			Benchmarks: map[string]benchResult{
				"AnnotateStream": {NsPerOp: 1000},
				"ReplayStream":   {NsPerOp: 1000},
			},
		}
		v := gateViolations(old, cur, 50)
		if len(v) != 2 || !strings.Contains(v[0], "AnnotateStream") || !strings.Contains(v[1], "ReplayStream") {
			t.Errorf("expected sorted AnnotateStream,ReplayStream violations, got %v", v)
		}
	})
}

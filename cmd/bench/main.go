// Command bench tracks the simulator's performance trajectory: it runs
// the annotator/replay micro-benchmarks and the Figure 4+5+6 sweep three
// ways — uncached, with the in-heap annotated-trace cache, and replaying
// memory-mapped spills from a warm on-disk cache — then writes a JSON
// report with ns/op, wall times, peak Go-heap occupancy and headline MLP
// metrics.
//
// Usage:
//
//	go run ./cmd/bench -scale quick -out BENCH_2.json
//	go run ./cmd/bench -scale default                    # the acceptance-criteria run
//	go run ./cmd/bench -scale default -compare BENCH_1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
	"mlpsim/internal/core"
	"mlpsim/internal/experiments"
	"mlpsim/internal/workload"
	"testing"
)

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type sweepResult struct {
	Exhibits        []string `json:"exhibits"`
	UncachedSeconds float64  `json:"uncached_seconds"`
	CachedSeconds   float64  `json:"cached_seconds"`
	Speedup         float64  `json:"speedup"`
	Identical       bool     `json:"results_identical"`
	CacheBuilds     uint64   `json:"cache_builds"`
	CacheHits       uint64   `json:"cache_hits"`
	CacheBytes      int64    `json:"cache_bytes"`

	// In-heap cached sweep peak Go-heap occupancy (sampled HeapAlloc).
	CachedHeapPeakBytes int64 `json:"cached_heap_peak_bytes"`
	// Warm-disk-cache sweep: every stream is a view over a memory-mapped
	// spill, so the columns live in the OS page cache, not the heap.
	MappedSeconds       float64 `json:"mapped_seconds"`
	MappedHeapPeakBytes int64   `json:"mapped_heap_peak_bytes"`
	MappedIdentical     bool    `json:"mapped_results_identical"`
	MappedDiskHits      uint64  `json:"mapped_disk_hits"`
	// HeapDropRatio is cached_heap_peak / mapped_heap_peak — the memory
	// win of replaying spills from the page cache.
	HeapDropRatio float64 `json:"heap_drop_ratio"`
}

type report struct {
	Schema     string                 `json:"schema"`
	Scale      string                 `json:"scale"`
	Seed       int64                  `json:"seed"`
	Warmup     int64                  `json:"warmup"`
	Measure    int64                  `json:"measure"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	Sweep      *sweepResult           `json:"sweep,omitempty"`
	MLP        map[string]float64     `json:"mlp"`
}

// heapSampler tracks peak HeapAlloc on a background goroutine. A GC runs
// at start so the peak reflects the phase being measured, not garbage
// left over from the previous one.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler() *heapSampler {
	runtime.GC()
	h := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		var ms runtime.MemStats
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > h.peak {
					h.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return h
}

// Stop ends sampling and returns the peak, folding in one final reading.
func (h *heapSampler) Stop() int64 {
	close(h.stop)
	<-h.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
	return int64(h.peak)
}

func toResult(r testing.BenchmarkResult) benchResult {
	return benchResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func microBenchmarks(w workload.Config) map[string]benchResult {
	out := make(map[string]benchResult)

	out["AnnotateStream"] = toResult(testing.Benchmark(func(b *testing.B) {
		a := annotate.New(workload.MustNew(w), annotate.Config{})
		a.Warm(100_000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := a.Next(); !ok {
				b.Fatal("stream ended")
			}
		}
	}))

	a := annotate.New(workload.MustNew(w), annotate.Config{})
	a.Warm(100_000)
	s := atrace.Capture(a, 1_000_000)
	out["ReplayStream"] = toResult(testing.Benchmark(func(b *testing.B) {
		r := s.Replay()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := r.Next(); !ok {
				r = s.Replay()
			}
		}
	}))

	out["MLPsimEngine"] = toResult(testing.Benchmark(func(b *testing.B) {
		cfg := core.Default()
		b.ReportAllocs()
		b.ResetTimer()
		// One op = one instruction through the engine; restart the replay
		// whenever b.N exceeds the captured stream.
		for remaining := int64(b.N); remaining > 0; {
			n := s.Len()
			if remaining < n {
				n = remaining
			}
			cfg.MaxInstructions = n
			core.NewEngine(s.Replay(), cfg).Run()
			remaining -= n
		}
	}))
	return out
}

// runSweep executes the Figure 4+5+6 sweep and returns elapsed time plus
// the Figure 4 results (for the equality check and MLP metrics).
func runSweep(s experiments.Setup) (time.Duration, experiments.Figure4, experiments.Figure6) {
	start := time.Now()
	f4 := experiments.RunFigure4(s)
	experiments.RunFigure5(s)
	f6 := experiments.RunFigure6(s)
	return time.Since(start), f4, f6
}

// runMappedSweep measures the warm-disk-cache configuration: one pass
// populates the spill directory, then a fresh cache re-runs the sweep
// with every stream served as a memory-mapped view of its spill.
func runMappedSweep(s experiments.Setup, dir string, sw *sweepResult, f4u experiments.Figure4) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mlpsim-bench-cache-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: mapped sweep skipped: %v\n", err)
			return
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	warm := s
	warm.Cache = atrace.NewCache()
	warm.Cache.SetDir(dir)
	fmt.Fprintln(os.Stderr, "bench: warming the disk cache...")
	runSweep(warm)
	warm.Cache = nil

	mapped := s
	mapped.Cache = atrace.NewCache()
	mapped.Cache.SetDir(dir)
	fmt.Fprintln(os.Stderr, "bench: running Figure 4+5+6 sweep with WARM disk cache (memory-mapped)...")
	hs := startHeapSampler()
	dm, f4m, _ := runSweep(mapped)
	mappedPeak := hs.Stop()
	ms := mapped.Cache.Stats()

	sw.MappedSeconds = dm.Seconds()
	sw.MappedHeapPeakBytes = mappedPeak
	sw.MappedIdentical = sameCells(f4u, f4m)
	sw.MappedDiskHits = ms.DiskHits
	if mappedPeak > 0 {
		sw.HeapDropRatio = float64(sw.CachedHeapPeakBytes) / float64(mappedPeak)
	}
	fmt.Fprintf(os.Stderr, "bench: mapped sweep: %.1fs, heap peak %.1f MB (%.1fx below in-heap), disk hits %d, results identical: %v\n",
		dm.Seconds(), float64(mappedPeak)/(1<<20), sw.HeapDropRatio, ms.DiskHits, sw.MappedIdentical)
	if ms.Builds != 0 {
		fmt.Fprintf(os.Stderr, "bench: warning: warm sweep still performed %d annotation passes\n", ms.Builds)
	}
}

// printComparison loads a previous report and prints headline deltas; a
// v1 report simply lacks the heap-peak fields.
func printComparison(path string, cur report) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: compare: %v\n", err)
		return
	}
	var old report
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "bench: compare: %s: %v\n", path, err)
		return
	}
	fmt.Printf("comparison vs %s (%s):\n", path, old.Schema)
	for name, c := range cur.Benchmarks {
		if o, ok := old.Benchmarks[name]; ok && o.NsPerOp > 0 {
			fmt.Printf("  %-16s %8.1f -> %8.1f ns/op  (%+.1f%%)\n",
				name, o.NsPerOp, c.NsPerOp, 100*(c.NsPerOp-o.NsPerOp)/o.NsPerOp)
		}
	}
	if old.Sweep != nil && cur.Sweep != nil {
		o, c := old.Sweep, cur.Sweep
		fmt.Printf("  uncached sweep   %8.1f -> %8.1f s\n", o.UncachedSeconds, c.UncachedSeconds)
		fmt.Printf("  cached sweep     %8.1f -> %8.1f s\n", o.CachedSeconds, c.CachedSeconds)
		fmt.Printf("  speedup          %8.2f -> %8.2f x\n", o.Speedup, c.Speedup)
		if c.MappedSeconds > 0 {
			fmt.Printf("  mapped sweep     %17.1f s (no baseline in %s)\n", c.MappedSeconds, old.Schema)
		}
		if o.CachedHeapPeakBytes > 0 && c.MappedHeapPeakBytes > 0 {
			fmt.Printf("  heap peak        %7.1f MB -> %6.1f MB mapped (%.1fx drop)\n",
				float64(o.CachedHeapPeakBytes)/(1<<20), float64(c.MappedHeapPeakBytes)/(1<<20),
				float64(o.CachedHeapPeakBytes)/float64(c.MappedHeapPeakBytes))
		} else if c.MappedHeapPeakBytes > 0 {
			// The v1 report recorded the in-heap cache footprint, not a
			// sampled peak; it is the closest resident-memory baseline.
			fmt.Printf("  cache footprint  %7.1f MB in-heap -> heap peak %.1f MB mapped (%.1fx drop)\n",
				float64(o.CacheBytes)/(1<<20), float64(c.MappedHeapPeakBytes)/(1<<20),
				float64(o.CacheBytes)/float64(c.MappedHeapPeakBytes))
		}
	}
	mismatch := false
	for k, v := range cur.MLP {
		if ov, ok := old.MLP[k]; ok && ov != v {
			fmt.Printf("  MLP %-18s %.4f -> %.4f  *** CHANGED\n", k, ov, v)
			mismatch = true
		}
	}
	if !mismatch {
		fmt.Println("  MLP metrics identical")
	}
}

func sameCells(a, b experiments.Figure4) bool {
	if len(a.Cells) != len(b.Cells) {
		return false
	}
	for i := range a.Cells {
		if !reflect.DeepEqual(a.Cells[i], b.Cells[i]) {
			return false
		}
	}
	return true
}

func main() {
	scale := flag.String("scale", "quick", "sweep scale: quick or default")
	out := flag.String("out", "BENCH_2.json", "output JSON path")
	seed := flag.Int64("seed", 1, "workload seed")
	skipSweep := flag.Bool("skip-sweep", false, "skip the cached-vs-uncached sweep comparison")
	compare := flag.String("compare", "", "print deltas against a previous report (e.g. BENCH_1.json)")
	cacheDir := flag.String("cache-dir", "", "disk-cache directory for the mapped sweep (default: a temp dir, removed on exit)")
	flag.Parse()

	var s experiments.Setup
	switch *scale {
	case "quick":
		s = experiments.Quick(*seed)
	case "default":
		s = experiments.Default(*seed)
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	rep := report{
		Schema:  "mlpsim-bench/2",
		Scale:   *scale,
		Seed:    *seed,
		Warmup:  s.Warmup,
		Measure: s.Measure,
		MLP:     make(map[string]float64),
	}

	fmt.Fprintln(os.Stderr, "bench: running micro-benchmarks...")
	rep.Benchmarks = microBenchmarks(s.Workloads[0])
	for name, r := range rep.Benchmarks {
		fmt.Fprintf(os.Stderr, "bench: %-16s %8.1f ns/op  %d allocs/op\n", name, r.NsPerOp, r.AllocsPerOp)
	}

	if !*skipSweep {
		uncached := s
		uncached.Cache = nil
		fmt.Fprintln(os.Stderr, "bench: running Figure 4+5+6 sweep WITHOUT cache...")
		du, f4u, _ := runSweep(uncached)
		fmt.Fprintf(os.Stderr, "bench: uncached sweep: %.1fs\n", du.Seconds())

		cached := s
		cached.Cache = atrace.NewCache()
		fmt.Fprintln(os.Stderr, "bench: running Figure 4+5+6 sweep WITH in-heap cache...")
		hs := startHeapSampler()
		dc, f4c, f6c := runSweep(cached)
		cachedPeak := hs.Stop()
		fmt.Fprintf(os.Stderr, "bench: cached sweep: %.1fs, heap peak %.1f MB\n",
			dc.Seconds(), float64(cachedPeak)/(1<<20))

		cs := cached.Cache.Stats()
		rep.Sweep = &sweepResult{
			Exhibits:            []string{"figure4", "figure5", "figure6"},
			UncachedSeconds:     du.Seconds(),
			CachedSeconds:       dc.Seconds(),
			Speedup:             du.Seconds() / dc.Seconds(),
			Identical:           sameCells(f4u, f4c),
			CacheBuilds:         cs.Builds,
			CacheHits:           cs.Hits,
			CacheBytes:          cs.Bytes,
			CachedHeapPeakBytes: cachedPeak,
		}
		fmt.Fprintf(os.Stderr, "bench: speedup %.2fx, results identical: %v\n",
			rep.Sweep.Speedup, rep.Sweep.Identical)

		// Drop the in-heap streams before the mapped sweep: its heap-peak
		// measurement must not count streams kept alive by this cache.
		cached.Cache = nil
		runMappedSweep(s, *cacheDir, rep.Sweep, f4u)

		for _, w := range s.Workloads {
			if c := f4c.Lookup(w.Name, 64, core.ConfigC); c != nil {
				rep.MLP[w.Name+"/64C"] = c.MLP
			}
			if c := f4c.Lookup(w.Name, 256, core.ConfigE); c != nil {
				rep.MLP[w.Name+"/256E"] = c.MLP
			}
			rep.MLP[w.Name+"/INF"] = f6c.INF[w.Name]
		}
	}

	if *compare != "" {
		printComparison(*compare, rep)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
}

// Command bench tracks the simulator's performance trajectory: it runs
// the annotator/replay/engine/gang micro-benchmarks, a
// monolithic-vs-segmented capture comparison (the pipelined parallel
// writer behind MLPCOLS2), the Figure 4+5+6 sweep three ways — uncached,
// with the in-heap annotated-trace cache, and replaying memory-mapped
// spills from a warm on-disk cache — a sequential-vs-gang-dispatch
// comparison of the Figure 4 sweep, the ext-storesets memory
// disambiguation sweep (bracketing check plus dep-event totals), and the
// ext-smtsched scheduled-SMT policy sweep (every policy's aggregate MLP
// checked against its point's combined bounds), and a peer-mode shard
// sweep — figure4 answered by a 3-replica in-process fleet through a
// coordinator that owns none of the points, byte-compared against a
// solo daemon — then writes a JSON report with ns/op, wall times, peak
// Go-heap occupancy and headline MLP metrics.
//
// With -compare and -gate-pct the command doubles as a regression gate:
// it exits non-zero when any micro-benchmark's ns/op or a sweep heap
// peak grew more than the threshold over the baseline report. Setting
// MLPSIM_BENCH_GATE=off turns the gate into a report-only comparison.
//
// Usage:
//
//	go run ./cmd/bench -scale quick -out /tmp/bench.json
//	go run ./cmd/bench -scale default                    # the acceptance-criteria run
//	go run ./cmd/bench -scale default -compare BENCH_3.json
//	go run ./cmd/bench -scale quick -skip-sweep -compare BENCH_BASELINE.json -gate-pct 50
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
	"mlpsim/internal/core"
	"mlpsim/internal/experiments"
	"mlpsim/internal/server"
	"mlpsim/internal/smt"
	"mlpsim/internal/workload"
	"testing"
)

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type sweepResult struct {
	Exhibits        []string `json:"exhibits"`
	UncachedSeconds float64  `json:"uncached_seconds"`
	CachedSeconds   float64  `json:"cached_seconds"`
	Speedup         float64  `json:"speedup"`
	Identical       bool     `json:"results_identical"`
	CacheBuilds     uint64   `json:"cache_builds"`
	CacheHits       uint64   `json:"cache_hits"`
	CacheBytes      int64    `json:"cache_bytes"`

	// In-heap cached sweep peak Go-heap occupancy (sampled HeapAlloc).
	CachedHeapPeakBytes int64 `json:"cached_heap_peak_bytes"`
	// Warm-disk-cache sweep: every stream is a view over a memory-mapped
	// spill, so the columns live in the OS page cache, not the heap.
	MappedSeconds       float64 `json:"mapped_seconds"`
	MappedHeapPeakBytes int64   `json:"mapped_heap_peak_bytes"`
	MappedIdentical     bool    `json:"mapped_results_identical"`
	MappedDiskHits      uint64  `json:"mapped_disk_hits"`
	// HeapDropRatio is cached_heap_peak / mapped_heap_peak — the memory
	// win of replaying spills from the page cache.
	HeapDropRatio float64 `json:"heap_drop_ratio"`
}

// gangSweepResult records the sequential-vs-gang dispatch comparison of
// one multi-config sweep. Both sides replay the same warm annotated-trace
// cache, so the delta is pure per-point work: one decode plus dependence
// binding per gang versus one per point.
type gangSweepResult struct {
	Exhibit           string  `json:"exhibit"`
	Points            int     `json:"points"`
	Gangs             uint64  `json:"gangs"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	GangSeconds       float64 `json:"gang_seconds"`
	Speedup           float64 `json:"speedup"`
	Identical         bool    `json:"results_identical"`
}

// storeSetsResult records the ext-storesets disambiguation sweep:
// oracle and always-conservative bound runs plus the store-set
// predictor grid across all workloads. Bracketed asserts the physical
// invariant — every store-set point's MLP lies between its workload's
// conservative (lower) and oracle (upper) bounds — and the dep-event
// totals pin the predictor's behaviour across report generations.
type storeSetsResult struct {
	Rows           int     `json:"rows"`
	Seconds        float64 `json:"seconds"`
	DepMispredicts uint64  `json:"dep_mispredicts"`
	DepSerializes  uint64  `json:"dep_serializes"`
	Bracketed      bool    `json:"bracketed"`
}

// smtSchedResult records the ext-smtsched scheduled-SMT policy sweep.
// Bracketed asserts the exhibit's physical invariant — every policy's
// aggregate MLP lies inside its point's [CombinedLower, CombinedUpper]
// bracket — and the scheduler-event totals pin policy behaviour across
// report generations.
type smtSchedResult struct {
	Rows       int     `json:"rows"`
	Seconds    float64 `json:"seconds"`
	Switches   uint64  `json:"switches"`
	Bursts     uint64  `json:"bursts"`
	Overlapped uint64  `json:"overlapped"`
	FloorPicks uint64  `json:"floor_picks"`
	Bracketed  bool    `json:"bracketed"`
}

// captureResult records the monolithic-vs-segmented capture comparison.
// The speedup scales with cores (each worker runs an independent
// generation->annotation->encoding pipeline); NumCPU records the machine
// context so a 1.0x speedup on a 1-CPU box is interpretable. The
// time-to-first-replay win is real on any core count: replay can consume
// segment 0 as soon as it is published, long before the final segment
// (and the manifest) exist.
type captureResult struct {
	Workload          string  `json:"workload"`
	SegmentInsts      int64   `json:"segment_insts"`
	Segments          int     `json:"segments"`
	Workers           int     `json:"workers"`
	NumCPU            int     `json:"num_cpu"`
	MonolithicSeconds float64 `json:"monolithic_seconds"`
	// Per-instruction cost of the monolithic pass (annotation + columnar
	// encoding + spill write) and its heap allocation rate — the capture
	// fast path's headline numbers. Steady state is zero allocations; the
	// reported rate amortizes construction over the whole window.
	MonolithicNsPerInst     float64 `json:"monolithic_ns_per_inst"`
	MonolithicAllocsPerInst float64 `json:"monolithic_allocs_per_inst"`
	SegmentedSeconds        float64 `json:"segmented_seconds"`
	Speedup                 float64 `json:"speedup"`
	FirstSegmentSeconds     float64 `json:"first_segment_seconds"`
	TimeToFirstReplayWin    float64 `json:"time_to_first_replay_win"`
	Identical               bool    `json:"bit_identical"`
}

// shardSweepResult records the peer-mode fleet comparison: an
// in-process fleet of replicas plus a coordinator-only observer (on
// nobody's hash ring, so it owns zero points) answers one exhibit over
// HTTP, byte-compared in every format against a solo daemon.
// Identical is the correctness invariant; the fetched/served totals
// prove the observer's answer really was assembled from peer shards
// rather than silent local fallback.
type shardSweepResult struct {
	Exhibit       string  `json:"exhibit"`
	Replicas      int     `json:"replicas"`
	SoloSeconds   float64 `json:"solo_seconds"`
	FleetSeconds  float64 `json:"fleet_seconds"`
	PointsFetched uint64  `json:"points_fetched"`
	PointsServed  uint64  `json:"points_served"`
	FetchErrors   uint64  `json:"fetch_errors"`
	Identical     bool    `json:"results_identical"`
}

type report struct {
	Schema     string                 `json:"schema"`
	Scale      string                 `json:"scale"`
	Seed       int64                  `json:"seed"`
	Warmup     int64                  `json:"warmup"`
	Measure    int64                  `json:"measure"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	Capture    *captureResult         `json:"capture,omitempty"`
	Sweep      *sweepResult           `json:"sweep,omitempty"`
	GangSweep  *gangSweepResult       `json:"gang_sweep,omitempty"`
	StoreSets  *storeSetsResult       `json:"store_sets,omitempty"`
	SMTSched   *smtSchedResult        `json:"smt_sched,omitempty"`
	ShardSweep *shardSweepResult      `json:"shard_sweep,omitempty"`
	MLP        map[string]float64     `json:"mlp"`
}

// heapSampler tracks peak HeapAlloc on a background goroutine. A GC runs
// at start so the peak reflects the phase being measured, not garbage
// left over from the previous one.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler() *heapSampler {
	runtime.GC()
	h := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		var ms runtime.MemStats
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > h.peak {
					h.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return h
}

// Stop ends sampling and returns the peak, folding in one final reading.
func (h *heapSampler) Stop() int64 {
	close(h.stop)
	<-h.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
	return int64(h.peak)
}

func toResult(r testing.BenchmarkResult) benchResult {
	return benchResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func microBenchmarks(w workload.Config) map[string]benchResult {
	out := make(map[string]benchResult)

	out["AnnotateStream"] = toResult(testing.Benchmark(func(b *testing.B) {
		a := annotate.New(workload.MustNew(w), annotate.Config{})
		a.Warm(100_000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := a.Next(); !ok {
				b.Fatal("stream ended")
			}
		}
	}))

	a := annotate.New(workload.MustNew(w), annotate.Config{})
	a.Warm(100_000)
	s := atrace.Capture(a, 1_000_000)
	out["ReplayStream"] = toResult(testing.Benchmark(func(b *testing.B) {
		r := s.Replay()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := r.Next(); !ok {
				r = s.Replay()
			}
		}
	}))

	out["MLPsimEngine"] = toResult(testing.Benchmark(func(b *testing.B) {
		cfg := core.Default()
		b.ReportAllocs()
		b.ResetTimer()
		// One op = one instruction through the engine; restart the replay
		// whenever b.N exceeds the captured stream. Engine construction
		// happens off the clock so the numbers are steady-state: the hot
		// loop itself is zero-allocation.
		for remaining := int64(b.N); remaining > 0; {
			n := s.Len()
			if remaining < n {
				n = remaining
			}
			cfg.MaxInstructions = n
			b.StopTimer()
			e := core.NewEngine(s.Replay(), cfg)
			b.StartTimer()
			e.Run()
			remaining -= n
		}
	}))

	// Gang dispatch at K = 1..64 engines over one shared decode. One op
	// = one config·instruction, so ns/op falling with K is the win: the
	// per-instruction decode+bind cost amortizes across the gang, and
	// from K=16 up the SoA stepper's scaling (shared ring columns, no
	// per-engine instruction copies) carries the curve. Gang
	// construction happens off the clock — like MLPsimEngine above — so
	// every K reports the exact-zero steady-state allocation the core
	// asserts in its tests.
	for _, k := range []int{1, 4, 16, 32, 64} {
		k := k
		out[fmt.Sprintf("GangSweepK%d", k)] = toResult(testing.Benchmark(func(b *testing.B) {
			cfgs := gangConfigs(k)
			b.ReportAllocs()
			b.ResetTimer()
			for remaining := int64(b.N); remaining > 0; {
				n := s.Len()
				if per := (remaining + int64(k) - 1) / int64(k); per < n {
					n = per
				}
				b.StopTimer()
				run := make([]core.Config, k)
				for i := range cfgs {
					run[i] = cfgs[i]
					run[i].MaxInstructions = n
				}
				g := core.NewGang(s.Replay(), run)
				b.StartTimer()
				g.Run()
				remaining -= int64(k) * n
			}
		}))
	}
	// Pure policy replay over fixed synthetic per-thread epoch traces:
	// one op = one full Schedule pass (K=4 threads, 4k epochs each) under
	// the most stateful policy. The trace pre-pass is the annotator's
	// cost, already covered above; this pins the scheduler itself. The
	// reusable Scheduler is warmed before the clock starts, so steady
	// state is exactly zero allocations per pass — the gate treats any
	// return of per-op allocation here as a regression.
	out["SMTSchedule"] = toResult(testing.Benchmark(func(b *testing.B) {
		rng := rand.New(rand.NewSource(9))
		traces := make([][]smt.EpochRec, 4)
		for t := range traces {
			traces[t] = make([]smt.EpochRec, 4000)
			for i := range traces[t] {
				traces[t][i] = smt.EpochRec{
					Insts:     1 + rng.Int63n(200),
					Accesses:  uint64(rng.Intn(6)),
					Unretired: rng.Int63n(128),
				}
			}
		}
		sched := smt.NewScheduler()
		sched.Schedule(traces, smt.PolicyMLPAware, 64, 512, 0.125)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sched.Schedule(traces, smt.PolicyMLPAware, 64, 512, 0.125)
		}
	}))
	return out
}

// gangConfigs builds K distinct engine configurations cycling the
// Figure 4 axes (window size x issue policy).
func gangConfigs(k int) []core.Config {
	sizes := []int{16, 32, 64, 128, 256}
	issues := []core.IssueConfig{core.ConfigA, core.ConfigB, core.ConfigC, core.ConfigD, core.ConfigE}
	cfgs := make([]core.Config, k)
	for i := range cfgs {
		cfgs[i] = core.Default().
			WithWindow(sizes[i%len(sizes)]).
			WithIssue(issues[(i/len(sizes))%len(issues)])
	}
	return cfgs
}

// runCaptureBench times the same annotated-trace build done two ways:
// one monolithic Capture+WriteColumnarFile pass, and the segmented
// pipelined writer (CaptureSegmentedToFile, workers = GOMAXPROCS). It
// also verifies the two spills replay bit-identically.
func runCaptureBench(s experiments.Setup, segInsts int64) *captureResult {
	w := s.Workloads[0]
	dir, err := os.MkdirTemp("", "mlpsim-bench-capture-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: capture comparison skipped: %v\n", err)
		return nil
	}
	defer os.RemoveAll(dir)
	newAnn := func() *annotate.Annotator {
		return annotate.New(workload.MustNew(w), annotate.Config{})
	}

	// The monolithic wall time covers warmup + capture + spill write, like
	// the segmented pipeline it is compared against. The per-instruction
	// rate and allocation count bracket just the fused capture pass.
	mono := filepath.Join(dir, "mono.acol")
	start := time.Now()
	a := newAnn()
	a.Warm(s.Warmup)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	capStart := time.Now()
	st := atrace.Capture(a, s.Measure)
	capDur := time.Since(capStart)
	runtime.ReadMemStats(&m1)
	if err := atrace.WriteColumnarFile(mono, st); err != nil {
		fmt.Fprintf(os.Stderr, "bench: capture comparison skipped: %v\n", err)
		return nil
	}
	monoDur := time.Since(start)

	spec := atrace.SegSpec{
		NewAnnotator: newAnn,
		Warmup:       s.Warmup,
		Measure:      s.Measure,
		SegmentInsts: segInsts,
	}
	seg := filepath.Join(dir, "seg.acol")
	start = time.Now()
	p := atrace.CaptureSegmentedToFile(seg, spec)
	if _, err := p.Segment(0); err != nil {
		fmt.Fprintf(os.Stderr, "bench: capture comparison skipped: %v\n", err)
		return nil
	}
	firstDur := time.Since(start)
	if _, err := p.Wait(); err == nil {
		err = p.PublishErr()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: capture comparison skipped: %v\n", err)
		return nil
	}
	segDur := time.Since(start)

	c := &captureResult{
		Workload:                w.Name,
		SegmentInsts:            segInsts,
		Segments:                p.Segments(),
		Workers:                 runtime.GOMAXPROCS(0),
		NumCPU:                  runtime.NumCPU(),
		MonolithicSeconds:       monoDur.Seconds(),
		MonolithicNsPerInst:     float64(capDur.Nanoseconds()) / float64(s.Measure),
		MonolithicAllocsPerInst: float64(m1.Mallocs-m0.Mallocs) / float64(s.Measure),
		SegmentedSeconds:        segDur.Seconds(),
		Speedup:                 monoDur.Seconds() / segDur.Seconds(),
		FirstSegmentSeconds:     firstDur.Seconds(),
		TimeToFirstReplayWin:    monoDur.Seconds() / firstDur.Seconds(),
		Identical:               sameSpills(mono, seg),
	}
	fmt.Fprintf(os.Stderr, "bench: capture: monolithic %.1fs (%.1f ns/inst, %.4f allocs/inst), segmented %.1fs (%d segments, %d workers on %d CPUs, %.2fx), first segment replayable after %.1fs (%.1fx win), identical: %v\n",
		c.MonolithicSeconds, c.MonolithicNsPerInst, c.MonolithicAllocsPerInst,
		c.SegmentedSeconds, c.Segments, c.Workers, c.NumCPU,
		c.Speedup, c.FirstSegmentSeconds, c.TimeToFirstReplayWin, c.Identical)
	return c
}

// sameSpills replays both on-disk traces and compares every instruction
// and the aggregate statistics.
func sameSpills(a, b string) bool {
	ta, err := atrace.OpenSpill(a)
	if err != nil {
		return false
	}
	tb, err := atrace.OpenSpill(b)
	if err != nil {
		return false
	}
	if ta.Len() != tb.Len() || ta.FirstIndex() != tb.FirstIndex() || ta.Stats() != tb.Stats() {
		return false
	}
	ra, rb := ta.Source(), tb.Source()
	var ia, ib annotate.Inst
	for {
		oka, okb := ra.NextInto(&ia), rb.NextInto(&ib)
		if oka != okb {
			return false
		}
		if !oka {
			return true
		}
		if ia != ib {
			return false
		}
	}
}

// runSweep executes the Figure 4+5+6 sweep and returns elapsed time plus
// the Figure 4 results (for the equality check and MLP metrics).
func runSweep(s experiments.Setup) (time.Duration, experiments.Figure4, experiments.Figure6) {
	start := time.Now()
	f4 := experiments.RunFigure4(s)
	experiments.RunFigure5(s)
	f6 := experiments.RunFigure6(s)
	return time.Since(start), f4, f6
}

// runMappedSweep measures the warm-disk-cache configuration: one pass
// populates the spill directory, then a fresh cache re-runs the sweep
// with every stream served as a memory-mapped view of its spill.
func runMappedSweep(s experiments.Setup, dir string, sw *sweepResult, f4u experiments.Figure4) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mlpsim-bench-cache-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: mapped sweep skipped: %v\n", err)
			return
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	warm := s
	warm.Cache = atrace.NewCache()
	warm.Cache.SetDir(dir)
	fmt.Fprintln(os.Stderr, "bench: warming the disk cache...")
	runSweep(warm)
	warm.Cache = nil

	mapped := s
	mapped.Cache = atrace.NewCache()
	mapped.Cache.SetDir(dir)
	fmt.Fprintln(os.Stderr, "bench: running Figure 4+5+6 sweep with WARM disk cache (memory-mapped)...")
	hs := startHeapSampler()
	dm, f4m, _ := runSweep(mapped)
	mappedPeak := hs.Stop()
	ms := mapped.Cache.Stats()

	sw.MappedSeconds = dm.Seconds()
	sw.MappedHeapPeakBytes = mappedPeak
	sw.MappedIdentical = sameCells(f4u, f4m)
	sw.MappedDiskHits = ms.DiskHits
	if mappedPeak > 0 {
		sw.HeapDropRatio = float64(sw.CachedHeapPeakBytes) / float64(mappedPeak)
	}
	fmt.Fprintf(os.Stderr, "bench: mapped sweep: %.1fs, heap peak %.1f MB (%.1fx below in-heap), disk hits %d, results identical: %v\n",
		dm.Seconds(), float64(mappedPeak)/(1<<20), sw.HeapDropRatio, ms.DiskHits, sw.MappedIdentical)
	if ms.Builds != 0 {
		fmt.Fprintf(os.Stderr, "bench: warning: warm sweep still performed %d annotation passes\n", ms.Builds)
	}
}

// runGangSweep times the Figure 4 sweep point-at-a-time (GangSize 1,
// the pre-gang dispatch path) and gang-dispatched (GangSize 0: every
// config sharing a workload's annotated stream steps in lock-step over
// one decode). A warm-up pass populates the in-heap trace cache first so
// both timed runs replay identical streams and the delta is pure
// dispatch cost.
func runGangSweep(s experiments.Setup) *gangSweepResult {
	s.Cache = atrace.NewCache()
	fmt.Fprintln(os.Stderr, "bench: gang sweep: warming the trace cache...")
	runSweepExhibit(s)

	seq := s
	seq.GangSize = 1
	fmt.Fprintln(os.Stderr, "bench: running figure4 point-at-a-time (gang off, warm cache)...")
	start := time.Now()
	f4s := runSweepExhibit(seq)
	ds := time.Since(start)

	gang := s
	gang.GangSize = 0
	gang.GangStats = &experiments.GangStats{}
	fmt.Fprintln(os.Stderr, "bench: running figure4 gang-dispatched (warm cache)...")
	start = time.Now()
	f4g := runSweepExhibit(gang)
	dg := time.Since(start)

	st := gang.GangStats
	g := &gangSweepResult{
		Exhibit:           "figure4",
		Points:            int(st.Configs.Load() + st.Solo.Load()),
		Gangs:             st.Gangs.Load(),
		SequentialSeconds: ds.Seconds(),
		GangSeconds:       dg.Seconds(),
		Speedup:           ds.Seconds() / dg.Seconds(),
		Identical:         sameCells(f4s, f4g),
	}
	fmt.Fprintf(os.Stderr, "bench: gang sweep: %d points in %d gangs, %.1fs -> %.1fs (%.2fx), results identical: %v\n",
		g.Points, g.Gangs, g.SequentialSeconds, g.GangSeconds, g.Speedup, g.Identical)
	return g
}

// runSweepExhibit runs the gang comparison's exhibit once.
func runSweepExhibit(s experiments.Setup) experiments.Figure4 {
	return experiments.RunFigure4(s)
}

// runStoreSets times the ext-storesets sweep, checks the bracketing
// invariant, and records per-workload MLP headline metrics (the bound
// rows plus the largest store-set geometry) into mlp for the CHANGED
// comparison.
func runStoreSets(s experiments.Setup, mlp map[string]float64) *storeSetsResult {
	s.DepStats = &experiments.DepStats{}
	fmt.Fprintln(os.Stderr, "bench: running ext-storesets disambiguation sweep...")
	start := time.Now()
	ext := experiments.RunExtStoreSets(s)
	d := time.Since(start)

	type bounds struct{ cons, oracle float64 }
	byWorkload := make(map[string]*bounds)
	for _, r := range ext.Rows {
		b := byWorkload[r.Workload]
		if b == nil {
			b = &bounds{}
			byWorkload[r.Workload] = b
		}
		switch r.Disamb {
		case core.DisambConservative.String():
			b.cons = r.MLP
			mlp[r.Workload+"/ss-cons"] = r.MLP
		case core.DisambOracle.String():
			b.oracle = r.MLP
		}
	}
	bigSSIT := maxStoreSetSSIT()
	bracketed := true
	for _, r := range ext.Rows {
		if r.Disamb != core.DisambStoreSets.String() {
			continue
		}
		b := byWorkload[r.Workload]
		const eps = 1e-9
		if r.MLP < b.cons-eps || r.MLP > b.oracle+eps {
			bracketed = false
			fmt.Fprintf(os.Stderr, "bench: warning: %s store-sets %d/%d/%d MLP %.4f outside [%.4f, %.4f]\n",
				r.Workload, r.SSIT, r.LFST, r.Conf, r.MLP, b.cons, b.oracle)
		}
		if r.SSIT == bigSSIT && r.Conf == 0 {
			mlp[fmt.Sprintf("%s/ss%dc0", r.Workload, r.SSIT)] = r.MLP
		}
	}

	res := &storeSetsResult{
		Rows:           len(ext.Rows),
		Seconds:        d.Seconds(),
		DepMispredicts: s.DepStats.Mispredicts.Load(),
		DepSerializes:  s.DepStats.Serializes.Load(),
		Bracketed:      bracketed,
	}
	fmt.Fprintf(os.Stderr, "bench: store-sets sweep: %d rows in %.1fs, %d mispredicts, %d serializes, bracketed: %v\n",
		res.Rows, res.Seconds, res.DepMispredicts, res.DepSerializes, res.Bracketed)
	return res
}

// runSMTSched times the ext-smtsched scheduled-SMT sweep, checks every
// policy row against its point's combined bounds, and records the
// heterogeneous-mix aggregate MLPs as headline metrics for the CHANGED
// comparison.
func runSMTSched(s experiments.Setup, mlp map[string]float64) *smtSchedResult {
	s.SMTSched = &experiments.SMTSchedStats{}
	fmt.Fprintln(os.Stderr, "bench: running ext-smtsched scheduled-SMT policy sweep...")
	start := time.Now()
	ext := experiments.RunExtSMTSched(s)
	d := time.Since(start)

	const eps = 1e-9
	bracketed := true
	for _, r := range ext.Rows {
		if r.AggMLP < r.CombinedLower-eps || r.AggMLP > r.CombinedUpper+eps {
			bracketed = false
			fmt.Fprintf(os.Stderr, "bench: warning: %s K=%d %s AggMLP %.4f outside [%.4f, %.4f]\n",
				r.Mix, r.Threads, r.Policy, r.AggMLP, r.CombinedLower, r.CombinedUpper)
		}
		if r.Mix == "hetero" {
			mlp[fmt.Sprintf("smt/%s%d/%s", r.Mix, r.Threads, r.Policy)] = r.AggMLP
		}
	}

	res := &smtSchedResult{
		Rows:       len(ext.Rows),
		Seconds:    d.Seconds(),
		Switches:   s.SMTSched.Switches.Load(),
		Bursts:     s.SMTSched.Bursts.Load(),
		Overlapped: s.SMTSched.Overlapped.Load(),
		FloorPicks: s.SMTSched.FloorPicks.Load(),
		Bracketed:  bracketed,
	}
	fmt.Fprintf(os.Stderr, "bench: smt-sched sweep: %d rows in %.1fs, %d switches, %d bursts (%d overlapped), %d floor picks, bracketed: %v\n",
		res.Rows, res.Seconds, res.Switches, res.Bursts, res.Overlapped, res.FloorPicks, res.Bracketed)
	return res
}

// runShardSweep answers figure4 through a 3-replica in-process peer
// fleet and byte-compares every response format against a solo daemon.
// The request goes to a coordinator-only observer whose id is on
// nobody's ring, so each point is fetched from the replica that owns
// it — the strongest form of the fabric's invariant: a daemon owning
// zero points still answers byte-identical to solo. Replica wall time
// includes the HTTP hops and each executor re-deriving its shard's
// points, so it is reported but never gated.
func runShardSweep(s experiments.Setup) *shardSweepResult {
	const exhibit, replicas = "figure4", 3
	fmt.Fprintf(os.Stderr, "bench: running %s through a %d-replica peer fleet...\n", exhibit, replicas)

	// Each daemon gets a private in-heap trace cache: fleet members
	// share nothing but the wire protocol, exactly like separate hosts.
	freshSetup := func() experiments.Setup {
		fs := s
		fs.Cache = atrace.NewCache()
		return fs
	}
	newHTTP := func(h http.Handler) *httptest.Server { return httptest.NewServer(h) }

	solo := server.New(server.Options{Setup: freshSetup(), RequestTimeout: 10 * time.Minute})
	soloHTTP := newHTTP(solo.Handler())
	defer soloHTTP.Close()

	// Peer URLs must exist before the Servers do, so each httptest
	// server fronts a swappable handler installed once the fleet list
	// is known.
	handlers := make([]atomic.Value, replicas)
	https := make([]*httptest.Server, replicas)
	for i := range https {
		i := i
		https[i] = newHTTP(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := handlers[i].Load().(http.Handler)
			if h == nil {
				http.Error(w, "not ready", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		defer https[i].Close()
	}
	peers := make([]server.Peer, replicas)
	for i := range peers {
		peers[i] = server.Peer{ID: fmt.Sprintf("r%d", i), URL: https[i].URL}
	}
	for i := range peers {
		rs := server.New(server.Options{
			Setup: freshSetup(), RequestTimeout: 10 * time.Minute,
			PeerID: peers[i].ID, Peers: peers,
		})
		handlers[i].Store(rs.Handler())
	}
	obs := server.New(server.Options{
		Setup: freshSetup(), RequestTimeout: 10 * time.Minute,
		PeerID: "bench-observer", Peers: peers,
	})
	obsHTTP := newHTTP(obs.Handler())
	defer obsHTTP.Close()

	get := func(base, path string) ([]byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		return body, nil
	}

	res := &shardSweepResult{Exhibit: exhibit, Replicas: replicas, Identical: true}
	for fi, format := range []string{"json", "csv", "text"} {
		path := "/v1/exhibits/" + exhibit + "?format=" + format
		start := time.Now()
		want, err := get(soloHTTP.URL, path)
		soloD := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: shard sweep skipped: solo %v\n", err)
			return nil
		}
		start = time.Now()
		got, err := get(obsHTTP.URL, path)
		fleetD := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: shard sweep skipped: fleet %v\n", err)
			return nil
		}
		if !bytes.Equal(got, want) {
			res.Identical = false
		}
		// Later formats re-render the result cache on both sides; only
		// the first pair measures the actual sweeps.
		if fi == 0 {
			res.SoloSeconds = soloD.Seconds()
			res.FleetSeconds = fleetD.Seconds()
		}
	}

	res.PointsFetched = scrapeCounter(get, obsHTTP.URL, "mlpsim_peer_points_fetched_total")
	res.FetchErrors = scrapeCounter(get, obsHTTP.URL, "mlpsim_peer_fetch_errors_total")
	for _, ts := range https {
		res.PointsServed += scrapeCounter(get, ts.URL, "mlpsim_peer_points_served_total")
	}
	fmt.Fprintf(os.Stderr, "bench: shard sweep: solo %.1fs, fleet %.1fs, %d points fetched (%d errors), %d served, identical: %v\n",
		res.SoloSeconds, res.FleetSeconds, res.PointsFetched, res.FetchErrors, res.PointsServed, res.Identical)
	return res
}

// scrapeCounter reads one counter from a daemon's /metrics page;
// unreachable pages and absent names read as zero (the report fields
// then make the failure visible instead of crashing the run).
func scrapeCounter(get func(base, path string) ([]byte, error), base, name string) uint64 {
	body, err := get(base, "/metrics")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, _ := strconv.ParseUint(fields[1], 10, 64)
			return v
		}
	}
	return 0
}

// maxStoreSetSSIT is the largest swept SSIT size (the headline
// geometry for the MLP metrics map).
func maxStoreSetSSIT() int {
	max := 0
	for _, v := range experiments.ExtStoreSetsSSITs {
		if v > max {
			max = v
		}
	}
	return max
}

// loadReport reads a previous JSON report; older schemas simply leave
// the newer fields zero.
func loadReport(path string) (report, error) {
	var old report
	data, err := os.ReadFile(path)
	if err != nil {
		return old, err
	}
	if err := json.Unmarshal(data, &old); err != nil {
		return old, fmt.Errorf("%s: %w", path, err)
	}
	return old, nil
}

// gateViolations compares cur against a baseline and lists every metric
// that regressed beyond pct percent: per-benchmark ns/op, and the
// cached/mapped sweep heap peaks when both reports carry them. Wall
// times are deliberately excluded — they depend on machine load — while
// ns/op comes from testing.Benchmark's calibrated loops and heap peaks
// are allocation-driven, so both are stable enough to gate on.
//
// A benchmark the two reports disagree on is a violation, not a skip:
// a name missing from a non-empty baseline (or carried with a zero
// ns/op) would otherwise pass ungated forever, and a baseline name
// missing from the current run hides a rename the same way. Only a
// baseline with no benchmarks at all (an older schema) is tolerated.
func gateViolations(old, cur report, pct float64) []string {
	var out []string
	for _, name := range sortedNames(old.Benchmarks) {
		o := old.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: in baseline but missing from this run (renamed or dropped? refresh the baseline)", name))
			continue
		}
		if o.NsPerOp <= 0 {
			out = append(out, fmt.Sprintf("%s: baseline ns/op is %g, cannot gate (refresh the baseline)", name, o.NsPerOp))
			continue
		}
		if growth := 100 * (c.NsPerOp - o.NsPerOp) / o.NsPerOp; growth > pct {
			out = append(out, fmt.Sprintf("%s: %.1f -> %.1f ns/op (+%.1f%%, limit %.0f%%)",
				name, o.NsPerOp, c.NsPerOp, growth, pct))
		}
		// A benchmark the baseline pins at zero allocations per op stays
		// there: any return of steady-state allocation is a regression in
		// kind, not degree, so it gates regardless of the percent limit.
		if o.AllocsPerOp == 0 && c.AllocsPerOp > 0 {
			out = append(out, fmt.Sprintf("%s: 0 -> %d allocs/op (zero-alloc steady state regressed)",
				name, c.AllocsPerOp))
		}
	}
	if len(old.Benchmarks) > 0 {
		for _, name := range sortedNames(cur.Benchmarks) {
			if _, ok := old.Benchmarks[name]; !ok {
				out = append(out, fmt.Sprintf("%s: new benchmark with no baseline entry (refresh the baseline to gate it)", name))
			}
		}
	}
	if old.Sweep != nil && cur.Sweep != nil {
		heap := func(label string, o, c int64) {
			if o <= 0 || c <= 0 {
				return
			}
			if growth := 100 * float64(c-o) / float64(o); growth > pct {
				out = append(out, fmt.Sprintf("%s heap peak: %.1f -> %.1f MB (+%.1f%%, limit %.0f%%)",
					label, float64(o)/(1<<20), float64(c)/(1<<20), growth, pct))
			}
		}
		heap("cached sweep", old.Sweep.CachedHeapPeakBytes, cur.Sweep.CachedHeapPeakBytes)
		heap("mapped sweep", old.Sweep.MappedHeapPeakBytes, cur.Sweep.MappedHeapPeakBytes)
	}
	if old.Capture != nil && cur.Capture != nil {
		o, c := old.Capture, cur.Capture
		if o.MonolithicNsPerInst > 0 && c.MonolithicNsPerInst > 0 {
			if growth := 100 * (c.MonolithicNsPerInst - o.MonolithicNsPerInst) / o.MonolithicNsPerInst; growth > pct {
				out = append(out, fmt.Sprintf("capture: %.1f -> %.1f ns/inst (+%.1f%%, limit %.0f%%)",
					o.MonolithicNsPerInst, c.MonolithicNsPerInst, growth, pct))
			}
			// The capture pass is pinned at (amortized) zero allocations:
			// any sustained per-instruction allocation rate is a regression
			// regardless of the percentage threshold.
			if o.MonolithicAllocsPerInst < 0.01 && c.MonolithicAllocsPerInst >= 0.01 {
				out = append(out, fmt.Sprintf("capture: %.4f -> %.4f allocs/inst (zero-alloc fast path regressed)",
					o.MonolithicAllocsPerInst, c.MonolithicAllocsPerInst))
			}
		}
	}
	// Bracketing is a physical invariant, not a percent threshold: a
	// store-set point outside its conservative/oracle bounds means the
	// disambiguation engine itself regressed.
	if cur.StoreSets != nil && !cur.StoreSets.Bracketed {
		out = append(out, "store-sets sweep: a predictor point's MLP fell outside the conservative/oracle bracket")
	}
	// Same for scheduled SMT: every policy's aggregate MLP must lie inside
	// its sweep point's combined lower/upper bounds.
	if cur.SMTSched != nil && !cur.SMTSched.Bracketed {
		out = append(out, "smt-sched sweep: a policy's aggregate MLP fell outside its combined-bounds bracket")
	}
	// The shard fabric's invariant is exact: a fleet answer that is not
	// byte-identical to solo is wrong no matter how fast it arrived.
	if cur.ShardSweep != nil && !cur.ShardSweep.Identical {
		out = append(out, "shard sweep: the peer fleet's answer differs from the solo daemon's")
	}
	return out
}

func sortedNames(m map[string]benchResult) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// printComparison prints headline deltas against a previous report; a
// v1 report simply lacks the heap-peak fields.
func printComparison(path string, old, cur report) {
	fmt.Printf("comparison vs %s (%s):\n", path, old.Schema)
	for name, c := range cur.Benchmarks {
		if o, ok := old.Benchmarks[name]; ok && o.NsPerOp > 0 {
			fmt.Printf("  %-16s %8.1f -> %8.1f ns/op  (%+.1f%%)\n",
				name, o.NsPerOp, c.NsPerOp, 100*(c.NsPerOp-o.NsPerOp)/o.NsPerOp)
		}
	}
	if old.Sweep != nil && cur.Sweep != nil {
		o, c := old.Sweep, cur.Sweep
		fmt.Printf("  uncached sweep   %8.1f -> %8.1f s\n", o.UncachedSeconds, c.UncachedSeconds)
		fmt.Printf("  cached sweep     %8.1f -> %8.1f s\n", o.CachedSeconds, c.CachedSeconds)
		fmt.Printf("  speedup          %8.2f -> %8.2f x\n", o.Speedup, c.Speedup)
		if c.MappedSeconds > 0 {
			fmt.Printf("  mapped sweep     %17.1f s (no baseline in %s)\n", c.MappedSeconds, old.Schema)
		}
		if o.CachedHeapPeakBytes > 0 && c.MappedHeapPeakBytes > 0 {
			fmt.Printf("  heap peak        %7.1f MB -> %6.1f MB mapped (%.1fx drop)\n",
				float64(o.CachedHeapPeakBytes)/(1<<20), float64(c.MappedHeapPeakBytes)/(1<<20),
				float64(o.CachedHeapPeakBytes)/float64(c.MappedHeapPeakBytes))
		} else if c.MappedHeapPeakBytes > 0 {
			// The v1 report recorded the in-heap cache footprint, not a
			// sampled peak; it is the closest resident-memory baseline.
			fmt.Printf("  cache footprint  %7.1f MB in-heap -> heap peak %.1f MB mapped (%.1fx drop)\n",
				float64(o.CacheBytes)/(1<<20), float64(c.MappedHeapPeakBytes)/(1<<20),
				float64(o.CacheBytes)/float64(c.MappedHeapPeakBytes))
		}
	}
	if old.Capture != nil && cur.Capture != nil {
		o, c := old.Capture, cur.Capture
		fmt.Printf("  capture (mono)   %8.1f -> %8.1f s\n", o.MonolithicSeconds, c.MonolithicSeconds)
		if c.MonolithicNsPerInst > 0 {
			if o.MonolithicNsPerInst > 0 {
				fmt.Printf("  capture ns/inst  %8.1f -> %8.1f  (%+.1f%%), %.4f allocs/inst\n",
					o.MonolithicNsPerInst, c.MonolithicNsPerInst,
					100*(c.MonolithicNsPerInst-o.MonolithicNsPerInst)/o.MonolithicNsPerInst,
					c.MonolithicAllocsPerInst)
			} else {
				fmt.Printf("  capture ns/inst  %17.1f, %.4f allocs/inst (no baseline in %s)\n",
					c.MonolithicNsPerInst, c.MonolithicAllocsPerInst, old.Schema)
			}
		}
	}
	if cur.GangSweep != nil {
		c := cur.GangSweep
		if old.GangSweep != nil {
			fmt.Printf("  gang dispatch    %8.2f -> %8.2f x over sequential\n", old.GangSweep.Speedup, c.Speedup)
		} else {
			fmt.Printf("  gang dispatch    %8.1f s -> %6.1f s (%.2fx, no baseline in %s)\n",
				c.SequentialSeconds, c.GangSeconds, c.Speedup, old.Schema)
		}
	}
	if cur.StoreSets != nil {
		c := cur.StoreSets
		if old.StoreSets != nil {
			fmt.Printf("  store-sets sweep %8d -> %8d mispredicts, %d -> %d serializes, bracketed: %v\n",
				old.StoreSets.DepMispredicts, c.DepMispredicts,
				old.StoreSets.DepSerializes, c.DepSerializes, c.Bracketed)
		} else {
			fmt.Printf("  store-sets sweep %8d rows in %.1f s, %d mispredicts, %d serializes, bracketed: %v (no baseline in %s)\n",
				c.Rows, c.Seconds, c.DepMispredicts, c.DepSerializes, c.Bracketed, old.Schema)
		}
	}
	if cur.SMTSched != nil {
		c := cur.SMTSched
		if old.SMTSched != nil {
			fmt.Printf("  smt-sched sweep  %8d -> %8d switches, %d -> %d overlapped, bracketed: %v\n",
				old.SMTSched.Switches, c.Switches, old.SMTSched.Overlapped, c.Overlapped, c.Bracketed)
		} else {
			fmt.Printf("  smt-sched sweep  %8d rows in %.1f s, %d switches, %d overlapped, bracketed: %v (no baseline in %s)\n",
				c.Rows, c.Seconds, c.Switches, c.Overlapped, c.Bracketed, old.Schema)
		}
	}
	if cur.ShardSweep != nil {
		c := cur.ShardSweep
		if old.ShardSweep != nil {
			fmt.Printf("  shard sweep      %8.1f -> %8.1f s fleet, %d -> %d points fetched, identical: %v\n",
				old.ShardSweep.FleetSeconds, c.FleetSeconds,
				old.ShardSweep.PointsFetched, c.PointsFetched, c.Identical)
		} else {
			fmt.Printf("  shard sweep      %8.1f s solo -> %.1f s via %d replicas, %d points fetched, identical: %v (no baseline in %s)\n",
				c.SoloSeconds, c.FleetSeconds, c.Replicas, c.PointsFetched, c.Identical, old.Schema)
		}
	}
	mismatch := false
	for k, v := range cur.MLP {
		if ov, ok := old.MLP[k]; ok && ov != v {
			fmt.Printf("  MLP %-18s %.4f -> %.4f  *** CHANGED\n", k, ov, v)
			mismatch = true
		}
	}
	if !mismatch {
		fmt.Println("  MLP metrics identical")
	}
}

func sameCells(a, b experiments.Figure4) bool {
	if len(a.Cells) != len(b.Cells) {
		return false
	}
	for i := range a.Cells {
		if !reflect.DeepEqual(a.Cells[i], b.Cells[i]) {
			return false
		}
	}
	return true
}

func main() {
	scale := flag.String("scale", "quick", "sweep scale: quick or default")
	out := flag.String("out", "BENCH_10.json", "output JSON path")
	seed := flag.Int64("seed", 1, "workload seed")
	skipSweep := flag.Bool("skip-sweep", false, "skip the cached-vs-uncached sweep comparison")
	skipCapture := flag.Bool("skip-capture", false, "skip the monolithic-vs-segmented capture comparison")
	skipGang := flag.Bool("skip-gang", false, "skip the sequential-vs-gang dispatch comparison")
	skipStoreSets := flag.Bool("skip-storesets", false, "skip the ext-storesets disambiguation sweep")
	skipSMTSched := flag.Bool("skip-smtsched", false, "skip the ext-smtsched scheduled-SMT policy sweep")
	skipShard := flag.Bool("skip-shard", false, "skip the peer-mode fleet-vs-solo shard sweep")
	compare := flag.String("compare", "", "print deltas against a previous report (e.g. BENCH_1.json)")
	gatePct := flag.Float64("gate-pct", 0, "with -compare: exit 1 if any ns/op or heap-peak metric grew more than this percent (0 = report only; MLPSIM_BENCH_GATE=off disables)")
	cacheDir := flag.String("cache-dir", "", "disk-cache directory for the mapped sweep (default: a temp dir, removed on exit)")
	flag.Parse()

	var s experiments.Setup
	switch *scale {
	case "quick":
		s = experiments.Quick(*seed)
	case "default":
		s = experiments.Default(*seed)
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	rep := report{
		Schema:  "mlpsim-bench/10",
		Scale:   *scale,
		Seed:    *seed,
		Warmup:  s.Warmup,
		Measure: s.Measure,
		MLP:     make(map[string]float64),
	}

	fmt.Fprintln(os.Stderr, "bench: running micro-benchmarks...")
	rep.Benchmarks = microBenchmarks(s.Workloads[0])
	for name, r := range rep.Benchmarks {
		fmt.Fprintf(os.Stderr, "bench: %-16s %8.1f ns/op  %d allocs/op\n", name, r.NsPerOp, r.AllocsPerOp)
	}

	if !*skipCapture {
		fmt.Fprintln(os.Stderr, "bench: comparing monolithic vs segmented capture...")
		rep.Capture = runCaptureBench(s, s.Measure/8)
	}

	if !*skipGang {
		rep.GangSweep = runGangSweep(s)
	}

	if !*skipSweep {
		uncached := s
		uncached.Cache = nil
		fmt.Fprintln(os.Stderr, "bench: running Figure 4+5+6 sweep WITHOUT cache...")
		du, f4u, _ := runSweep(uncached)
		fmt.Fprintf(os.Stderr, "bench: uncached sweep: %.1fs\n", du.Seconds())

		cached := s
		cached.Cache = atrace.NewCache()
		fmt.Fprintln(os.Stderr, "bench: running Figure 4+5+6 sweep WITH in-heap cache...")
		hs := startHeapSampler()
		dc, f4c, f6c := runSweep(cached)
		cachedPeak := hs.Stop()
		fmt.Fprintf(os.Stderr, "bench: cached sweep: %.1fs, heap peak %.1f MB\n",
			dc.Seconds(), float64(cachedPeak)/(1<<20))

		cs := cached.Cache.Stats()
		rep.Sweep = &sweepResult{
			Exhibits:            []string{"figure4", "figure5", "figure6"},
			UncachedSeconds:     du.Seconds(),
			CachedSeconds:       dc.Seconds(),
			Speedup:             du.Seconds() / dc.Seconds(),
			Identical:           sameCells(f4u, f4c),
			CacheBuilds:         cs.Builds,
			CacheHits:           cs.Hits,
			CacheBytes:          cs.Bytes,
			CachedHeapPeakBytes: cachedPeak,
		}
		fmt.Fprintf(os.Stderr, "bench: speedup %.2fx, results identical: %v\n",
			rep.Sweep.Speedup, rep.Sweep.Identical)

		// Drop the in-heap streams before the mapped sweep: its heap-peak
		// measurement must not count streams kept alive by this cache.
		cached.Cache = nil
		runMappedSweep(s, *cacheDir, rep.Sweep, f4u)

		for _, w := range s.Workloads {
			if c := f4c.Lookup(w.Name, 64, core.ConfigC); c != nil {
				rep.MLP[w.Name+"/64C"] = c.MLP
			}
			if c := f4c.Lookup(w.Name, 256, core.ConfigE); c != nil {
				rep.MLP[w.Name+"/256E"] = c.MLP
			}
			rep.MLP[w.Name+"/INF"] = f6c.INF[w.Name]
		}
	}

	// Last on purpose: the sweep's six extra per-workload annotated
	// streams (one per |ss{...} config) would otherwise sit in the
	// shared trace cache and inflate the cached/mapped heap peaks.
	if !*skipStoreSets {
		rep.StoreSets = runStoreSets(s, rep.MLP)
	}

	// Same reasoning: the scheduled-SMT pre-pass annotates K interleaved
	// streams per point, so it runs after the heap-peak measurements too.
	if !*skipSMTSched {
		rep.SMTSched = runSMTSched(s, rep.MLP)
	}

	// The fleet's four daemons each carry a private trace cache, so this
	// too stays clear of the heap-peak phases.
	if !*skipShard {
		rep.ShardSweep = runShardSweep(s)
	}

	var violations []string
	if *compare != "" {
		old, err := loadReport(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: compare: %v\n", err)
		} else {
			printComparison(*compare, old, rep)
			if *gatePct > 0 {
				violations = gateViolations(old, rep, *gatePct)
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "bench: gate: %s\n", v)
		}
		if os.Getenv("MLPSIM_BENCH_GATE") == "off" {
			fmt.Fprintln(os.Stderr, "bench: gate: MLPSIM_BENCH_GATE=off, reporting only")
			return
		}
		fmt.Fprintf(os.Stderr, "bench: gate: %d regression(s) beyond %.0f%% vs %s\n",
			len(violations), *gatePct, *compare)
		os.Exit(1)
	}
}

// Command bench tracks the simulator's performance trajectory: it runs
// the annotator/replay micro-benchmarks and the Figure 4+5+6 sweep with
// and without the annotated-trace cache, then writes a JSON report
// (BENCH_1.json by default) with ns/op, allocs/op and headline MLP
// metrics.
//
// Usage:
//
//	go run ./cmd/bench -scale quick -out BENCH_1.json
//	go run ./cmd/bench -scale default       # the acceptance-criteria run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
	"mlpsim/internal/core"
	"mlpsim/internal/experiments"
	"mlpsim/internal/workload"
	"testing"
)

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type sweepResult struct {
	Exhibits        []string `json:"exhibits"`
	UncachedSeconds float64  `json:"uncached_seconds"`
	CachedSeconds   float64  `json:"cached_seconds"`
	Speedup         float64  `json:"speedup"`
	Identical       bool     `json:"results_identical"`
	CacheBuilds     uint64   `json:"cache_builds"`
	CacheHits       uint64   `json:"cache_hits"`
	CacheBytes      int64    `json:"cache_bytes"`
}

type report struct {
	Schema     string                 `json:"schema"`
	Scale      string                 `json:"scale"`
	Seed       int64                  `json:"seed"`
	Warmup     int64                  `json:"warmup"`
	Measure    int64                  `json:"measure"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	Sweep      *sweepResult           `json:"sweep,omitempty"`
	MLP        map[string]float64     `json:"mlp"`
}

func toResult(r testing.BenchmarkResult) benchResult {
	return benchResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func microBenchmarks(w workload.Config) map[string]benchResult {
	out := make(map[string]benchResult)

	out["AnnotateStream"] = toResult(testing.Benchmark(func(b *testing.B) {
		a := annotate.New(workload.MustNew(w), annotate.Config{})
		a.Warm(100_000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := a.Next(); !ok {
				b.Fatal("stream ended")
			}
		}
	}))

	a := annotate.New(workload.MustNew(w), annotate.Config{})
	a.Warm(100_000)
	s := atrace.Capture(a, 1_000_000)
	out["ReplayStream"] = toResult(testing.Benchmark(func(b *testing.B) {
		r := s.Replay()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := r.Next(); !ok {
				r = s.Replay()
			}
		}
	}))

	out["MLPsimEngine"] = toResult(testing.Benchmark(func(b *testing.B) {
		cfg := core.Default()
		b.ReportAllocs()
		b.ResetTimer()
		// One op = one instruction through the engine; restart the replay
		// whenever b.N exceeds the captured stream.
		for remaining := int64(b.N); remaining > 0; {
			n := s.Len()
			if remaining < n {
				n = remaining
			}
			cfg.MaxInstructions = n
			core.NewEngine(s.Replay(), cfg).Run()
			remaining -= n
		}
	}))
	return out
}

// runSweep executes the Figure 4+5+6 sweep and returns elapsed time plus
// the Figure 4 results (for the equality check and MLP metrics).
func runSweep(s experiments.Setup) (time.Duration, experiments.Figure4, experiments.Figure6) {
	start := time.Now()
	f4 := experiments.RunFigure4(s)
	experiments.RunFigure5(s)
	f6 := experiments.RunFigure6(s)
	return time.Since(start), f4, f6
}

func sameCells(a, b experiments.Figure4) bool {
	if len(a.Cells) != len(b.Cells) {
		return false
	}
	for i := range a.Cells {
		if !reflect.DeepEqual(a.Cells[i], b.Cells[i]) {
			return false
		}
	}
	return true
}

func main() {
	scale := flag.String("scale", "quick", "sweep scale: quick or default")
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	seed := flag.Int64("seed", 1, "workload seed")
	skipSweep := flag.Bool("skip-sweep", false, "skip the cached-vs-uncached sweep comparison")
	flag.Parse()

	var s experiments.Setup
	switch *scale {
	case "quick":
		s = experiments.Quick(*seed)
	case "default":
		s = experiments.Default(*seed)
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	rep := report{
		Schema:  "mlpsim-bench/1",
		Scale:   *scale,
		Seed:    *seed,
		Warmup:  s.Warmup,
		Measure: s.Measure,
		MLP:     make(map[string]float64),
	}

	fmt.Fprintln(os.Stderr, "bench: running micro-benchmarks...")
	rep.Benchmarks = microBenchmarks(s.Workloads[0])
	for name, r := range rep.Benchmarks {
		fmt.Fprintf(os.Stderr, "bench: %-16s %8.1f ns/op  %d allocs/op\n", name, r.NsPerOp, r.AllocsPerOp)
	}

	if !*skipSweep {
		uncached := s
		uncached.Cache = nil
		fmt.Fprintln(os.Stderr, "bench: running Figure 4+5+6 sweep WITHOUT cache...")
		du, f4u, _ := runSweep(uncached)
		fmt.Fprintf(os.Stderr, "bench: uncached sweep: %.1fs\n", du.Seconds())

		cached := s
		cached.Cache = atrace.NewCache()
		fmt.Fprintln(os.Stderr, "bench: running Figure 4+5+6 sweep WITH cache...")
		dc, f4c, f6c := runSweep(cached)
		fmt.Fprintf(os.Stderr, "bench: cached sweep: %.1fs\n", dc.Seconds())

		cs := cached.Cache.Stats()
		rep.Sweep = &sweepResult{
			Exhibits:        []string{"figure4", "figure5", "figure6"},
			UncachedSeconds: du.Seconds(),
			CachedSeconds:   dc.Seconds(),
			Speedup:         du.Seconds() / dc.Seconds(),
			Identical:       sameCells(f4u, f4c),
			CacheBuilds:     cs.Builds,
			CacheHits:       cs.Hits,
			CacheBytes:      cs.Bytes,
		}
		fmt.Fprintf(os.Stderr, "bench: speedup %.2fx, results identical: %v\n",
			rep.Sweep.Speedup, rep.Sweep.Identical)

		for _, w := range cached.Workloads {
			if c := f4c.Lookup(w.Name, 64, core.ConfigC); c != nil {
				rep.MLP[w.Name+"/64C"] = c.MLP
			}
			if c := f4c.Lookup(w.Name, 256, core.ConfigE); c != nil {
				rep.MLP[w.Name+"/256E"] = c.MLP
			}
			rep.MLP[w.Name+"/INF"] = f6c.INF[w.Name]
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
}

// Command traceinfo characterizes a trace (stored file or generated
// workload): instruction-class mix, miss profile, branch behaviour,
// value-predictability and inter-miss clustering — the §2.3/Table 1
// characterization for arbitrary inputs.
//
// Examples:
//
//	traceinfo -workload jbb
//	traceinfo -trace db.trc -n 5000000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
	"mlpsim/internal/stats"
	"mlpsim/internal/trace"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "database", "workload preset (see cmd/mlpsim)")
		traceFile    = flag.String("trace", "", "binary trace file (overrides -workload)")
		seed         = flag.Int64("seed", 1, "workload generation seed")
		warmup       = flag.Int64("warmup", 1_000_000, "warm-up instructions")
		n            = flag.Int64("n", 4_000_000, "instructions to characterize")
	)
	flag.Parse()

	src, err := openSource(*traceFile, *workloadName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}

	a := annotate.New(src, annotate.Config{Value: vpred.NewLastValue(vpred.DefaultEntries)})
	a.Warm(*warmup)

	classes := map[isa.Class]uint64{}
	var rec stats.DistanceRecorder
	var total int64
	for total = 0; total < *n; total++ {
		in, ok := a.Next()
		if !ok {
			break
		}
		classes[in.Class]++
		if in.OffChip() {
			rec.Observe(in.Index)
		}
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "traceinfo: empty trace")
		os.Exit(1)
	}
	s := a.Stats()

	fmt.Printf("instructions characterized: %d (after %d warm-up)\n\n", total, *warmup)

	fmt.Println("instruction mix:")
	var order []isa.Class
	for c := range classes {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool { return classes[order[i]] > classes[order[j]] })
	for _, c := range order {
		fmt.Printf("  %-9s %7.3f%%  (%d)\n", c, 100*float64(classes[c])/float64(total), classes[c])
	}

	fmt.Println("\noff-chip profile:")
	fmt.Printf("  miss rate:        %.3f / 100 instructions\n", s.MissRatePer100())
	fmt.Printf("  data misses:      %d\n", s.DMisses)
	fmt.Printf("  prefetch misses:  %d (%.0f%% later used)\n", s.PMisses,
		100*stats.Ratio(float64(s.PrefetchUsed), float64(s.PMisses)))
	fmt.Printf("  ifetch misses:    %d\n", s.IMisses)
	fmt.Printf("  store misses:     %d (invisible to MLP)\n", s.SMisses)
	fmt.Printf("  mean inter-miss:  %.0f instructions\n", rec.MeanDistance())

	pts := []int64{16, 64, 256, 1024}
	obs := rec.CDFAt(pts)
	uni := stats.UniformCDFAt(rec.MeanDistance(), pts)
	fmt.Println("  clustering (P[next miss within N]):")
	for i, p := range pts {
		fmt.Printf("    within %4d: observed %.3f  uniform %.3f\n", p, obs[i], uni[i])
	}

	fmt.Println("\nbranches:")
	fmt.Printf("  count:            %d (%.1f%% of instructions)\n", s.Branches,
		100*float64(s.Branches)/float64(total))
	fmt.Printf("  mispredict rate:  %.2f%% (64K gshare + 16K BTB)\n",
		100*stats.Ratio(float64(s.Mispredicts), float64(s.Branches)))

	c, w, np := s.VP.Fractions()
	fmt.Println("\nmissing-load value predictability (16K last-value predictor):")
	fmt.Printf("  correct %.0f%%  wrong %.0f%%  no-predict %.0f%%\n", 100*c, 100*w, 100*np)

	hs := a.Hierarchy().Stats()
	fmt.Println("\nhierarchy:")
	fmt.Printf("  L1I misses: %d   L1D misses: %d   L2 misses: %d   TLB misses: %d\n",
		hs.L1IMisses, hs.L1DMisses, hs.L2Misses, hs.TLBMisses)
}

func openSource(traceFile, name string, seed int64) (trace.Source, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		return trace.NewReaderSource(f)
	}
	cfg, err := workload.ByName(name, seed)
	if err != nil {
		return nil, err
	}
	return workload.MustNew(cfg), nil
}

// Command tracegen generates a synthetic workload trace and stores it in
// the binary trace format consumed by cmd/mlpsim.
//
// Example:
//
//	tracegen -workload database -n 10000000 -o db.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"mlpsim/internal/trace"
	"mlpsim/internal/workload"
)

func main() {
	var (
		name = flag.String("workload", "database", "workload: database, jbb, web, chase, stream, serialized, ibound")
		seed = flag.Int64("seed", 1, "generation seed")
		n    = flag.Int64("n", 10_000_000, "instructions to generate")
		out  = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o output file is required")
		os.Exit(1)
	}

	var cfg workload.Config
	switch *name {
	case "database", "db":
		cfg = workload.Database(*seed)
	case "jbb", "specjbb", "specjbb2000":
		cfg = workload.JBB(*seed)
	case "web", "specweb", "specweb99":
		cfg = workload.Web(*seed)
	case "chase", "pointerchase":
		cfg = workload.PointerChase(*seed)
	case "stream":
		cfg = workload.Stream(*seed)
	case "serialized":
		cfg = workload.Serialized(*seed)
	case "ibound":
		cfg = workload.IBound(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *name)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()

	enc, err := trace.NewEncoder(f, uint64(*n))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	g := workload.MustNew(cfg)
	src := trace.Limit(g, *n)
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if err := enc.Encode(in); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
	if err := enc.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	info, err := f.Stat()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d instructions to %s (%d bytes, %.2f bytes/inst)\n",
		enc.Count(), *out, info.Size(), float64(info.Size())/float64(enc.Count()))
}

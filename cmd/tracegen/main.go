// Command tracegen generates a synthetic workload trace and stores it in
// the binary trace format consumed by cmd/mlpsim.
//
// With -annotate it instead runs the functional annotation pass (cache
// hierarchy + branch predictor) over the workload and writes a version-2
// annotated trace: -warmup instructions train the annotator, then -n
// post-warmup instructions are captured. cmd/mlpsim replays annotated
// traces directly, skipping its own annotation and warm-up.
//
// With -columnar -segment N the capture is segmented: the window splits
// into N-instruction segments built by -workers parallel pipelines
// (generation -> annotation -> columnar encoding per segment, exploiting
// the seed-deterministic generator), each segment file published the
// moment it completes and an MLPCOLS2 manifest written last. Replay can
// open segment 0 while later segments are still being captured; the
// result is bit-identical to a monolithic -columnar capture.
//
// Examples:
//
//	tracegen -workload database -n 10000000 -o db.trc
//	tracegen -workload database -annotate -warmup 2000000 -n 8000000 -o db.atrc
//	tracegen -workload database -annotate -columnar -n 8000000 -o db.acol
//	tracegen -workload database -annotate -columnar -segment 1000000 -workers 4 -n 8000000 -o db.acol
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
	"mlpsim/internal/trace"
	"mlpsim/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "database", "workload: database, jbb, web, chase, stream, serialized, ibound")
		seed     = flag.Int64("seed", 1, "generation seed")
		n        = flag.Int64("n", 10_000_000, "instructions to generate (post-warmup when -annotate)")
		out      = flag.String("o", "", "output file (required)")
		annotful = flag.Bool("annotate", false, "write a pre-annotated (version 2) trace")
		columnar = flag.Bool("columnar", false, "with -annotate: write the columnar (.acol) format, which cmd/mlpsim memory-maps instead of decoding")
		warmup   = flag.Int64("warmup", 2_000_000, "annotator warm-up instructions (only with -annotate)")
		segment  = flag.Int64("segment", 0, "with -columnar: instructions per segment (0 = one monolithic file)")
		workers  = flag.Int("workers", 0, "with -segment: parallel capture workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o output file is required")
		os.Exit(1)
	}

	var cfg workload.Config
	switch *name {
	case "database", "db":
		cfg = workload.Database(*seed)
	case "jbb", "specjbb", "specjbb2000":
		cfg = workload.JBB(*seed)
	case "web", "specweb", "specweb99":
		cfg = workload.Web(*seed)
	case "chase", "pointerchase":
		cfg = workload.PointerChase(*seed)
	case "stream":
		cfg = workload.Stream(*seed)
	case "serialized":
		cfg = workload.Serialized(*seed)
	case "ibound":
		cfg = workload.IBound(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *name)
		os.Exit(1)
	}

	if *columnar && !*annotful {
		fmt.Fprintln(os.Stderr, "tracegen: -columnar requires -annotate")
		os.Exit(1)
	}
	if *segment > 0 && !*columnar {
		fmt.Fprintln(os.Stderr, "tracegen: -segment requires -columnar")
		os.Exit(1)
	}
	if *segment > 0 {
		writeSegmented(cfg, *out, *warmup, *n, *segment, *workers)
		return
	}
	if *annotful {
		ann := annotate.New(workload.MustNew(cfg), annotate.Config{})
		ann.Warm(*warmup)
		st := atrace.Capture(ann, *n)
		write := atrace.WriteFile
		if *columnar {
			write = atrace.WriteColumnarFile
		}
		if err := write(*out, st); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		info, err := os.Stat(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d annotated instructions to %s (%d bytes, %.2f bytes/inst, warmup %d)\n",
			st.Len(), *out, info.Size(), float64(info.Size())/float64(st.Len()), st.FirstIndex())
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()

	enc, err := trace.NewEncoder(f, uint64(*n))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	g := workload.MustNew(cfg)
	src := trace.Limit(g, *n)
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if err := enc.Encode(in); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
	if err := enc.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	info, err := f.Stat()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d instructions to %s (%d bytes, %.2f bytes/inst)\n",
		enc.Count(), *out, info.Size(), float64(info.Size())/float64(enc.Count()))
}

// writeSegmented runs the pipelined parallel capture, printing each
// segment as it is published so the time-to-first-replay win is visible.
func writeSegmented(cfg workload.Config, out string, warmup, n, segment int64, workers int) {
	start := time.Now()
	p := atrace.CaptureSegmentedToFile(out, atrace.SegSpec{
		NewAnnotator: func() *annotate.Annotator {
			return annotate.New(workload.MustNew(cfg), annotate.Config{})
		},
		Warmup:       warmup,
		Measure:      n,
		SegmentInsts: segment,
		Workers:      workers,
	})
	for k := 0; k < p.Segments(); k++ {
		s, err := p.Segment(k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("segment %04d: %d instructions published after %.2fs\n",
			k, s.Len(), time.Since(start).Seconds())
	}
	ss, err := p.Wait()
	if err == nil {
		err = p.PublishErr()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	var bytes int64
	for _, path := range append([]string{out}, segmentFilesOf(out, ss.Segments())...) {
		if fi, serr := os.Stat(path); serr == nil {
			bytes += fi.Size()
		}
	}
	fmt.Printf("wrote %d annotated instructions to %s (%d segments, %d bytes, %.2f bytes/inst, warmup %d, %.2fs)\n",
		ss.Len(), out, ss.Segments(), bytes, float64(bytes)/float64(ss.Len()), ss.FirstIndex(), time.Since(start).Seconds())
}

func segmentFilesOf(base string, k int) []string {
	var out []string
	for i := 0; i < k; i++ {
		out = append(out, fmt.Sprintf("%s.seg%04d", base, i))
	}
	return out
}

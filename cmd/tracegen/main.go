// Command tracegen generates a synthetic workload trace and stores it in
// the binary trace format consumed by cmd/mlpsim.
//
// With -annotate it instead runs the functional annotation pass (cache
// hierarchy + branch predictor) over the workload and writes a version-2
// annotated trace: -warmup instructions train the annotator, then -n
// post-warmup instructions are captured. cmd/mlpsim replays annotated
// traces directly, skipping its own annotation and warm-up.
//
// Examples:
//
//	tracegen -workload database -n 10000000 -o db.trc
//	tracegen -workload database -annotate -warmup 2000000 -n 8000000 -o db.atrc
//	tracegen -workload database -annotate -columnar -n 8000000 -o db.acol
package main

import (
	"flag"
	"fmt"
	"os"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
	"mlpsim/internal/trace"
	"mlpsim/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "database", "workload: database, jbb, web, chase, stream, serialized, ibound")
		seed     = flag.Int64("seed", 1, "generation seed")
		n        = flag.Int64("n", 10_000_000, "instructions to generate (post-warmup when -annotate)")
		out      = flag.String("o", "", "output file (required)")
		annotful = flag.Bool("annotate", false, "write a pre-annotated (version 2) trace")
		columnar = flag.Bool("columnar", false, "with -annotate: write the columnar (.acol) format, which cmd/mlpsim memory-maps instead of decoding")
		warmup   = flag.Int64("warmup", 2_000_000, "annotator warm-up instructions (only with -annotate)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o output file is required")
		os.Exit(1)
	}

	var cfg workload.Config
	switch *name {
	case "database", "db":
		cfg = workload.Database(*seed)
	case "jbb", "specjbb", "specjbb2000":
		cfg = workload.JBB(*seed)
	case "web", "specweb", "specweb99":
		cfg = workload.Web(*seed)
	case "chase", "pointerchase":
		cfg = workload.PointerChase(*seed)
	case "stream":
		cfg = workload.Stream(*seed)
	case "serialized":
		cfg = workload.Serialized(*seed)
	case "ibound":
		cfg = workload.IBound(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *name)
		os.Exit(1)
	}

	if *columnar && !*annotful {
		fmt.Fprintln(os.Stderr, "tracegen: -columnar requires -annotate")
		os.Exit(1)
	}
	if *annotful {
		ann := annotate.New(workload.MustNew(cfg), annotate.Config{})
		ann.Warm(*warmup)
		st := atrace.Capture(ann, *n)
		write := atrace.WriteFile
		if *columnar {
			write = atrace.WriteColumnarFile
		}
		if err := write(*out, st); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		info, err := os.Stat(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d annotated instructions to %s (%d bytes, %.2f bytes/inst, warmup %d)\n",
			st.Len(), *out, info.Size(), float64(info.Size())/float64(st.Len()), st.FirstIndex())
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()

	enc, err := trace.NewEncoder(f, uint64(*n))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	g := workload.MustNew(cfg)
	src := trace.Limit(g, *n)
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if err := enc.Encode(in); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
	if err := enc.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	info, err := f.Stat()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d instructions to %s (%d bytes, %.2f bytes/inst)\n",
		enc.Count(), *out, info.Size(), float64(info.Size())/float64(enc.Count()))
}

package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlpsim/internal/experiments"
	"mlpsim/internal/server"
)

// serve runs the experiment daemon on addr until SIGTERM/SIGINT, then
// drains: /healthz flips to 503 immediately, in-flight requests get up
// to drainTimeout to finish, and a clean drain exits 0. A non-empty
// fleet list puts the daemon in peer mode: sweep points it does not own
// on the fleet's hash ring are fetched from their owners.
func serve(addr string, setup experiments.Setup, drainTimeout time.Duration, peerID string, fleet []server.Peer) error {
	srv := server.New(server.Options{Setup: setup, PeerID: peerID, Peers: fleet})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}

	// Printed before serving so scripts (and make serve-smoke) can poll
	// for the resolved address, ":0" included.
	fmt.Printf("experiments: serving on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("experiments: %s; draining (up to %s)\n", sig, drainTimeout)
	}

	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("experiments: drained, bye")
	return nil
}

package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestValidateFlags is the table-driven unit check of the numeric flag
// guards.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		gang       int
		segInsts   int64
		segWorkers int
		cacheBytes int64
		wantMsg    string // empty = accepted
	}{
		{name: "all-zero"},
		{name: "all-positive", gang: 4, segInsts: 100_000, segWorkers: 2, cacheBytes: 1 << 20},
		{name: "negative-gang", gang: -3, wantMsg: "-gang -3"},
		{name: "negative-seg-insts", segInsts: -1, wantMsg: "-trace-segment-insts -1"},
		{name: "negative-workers", segWorkers: -2, wantMsg: "-trace-capture-workers -2"},
		{name: "negative-cache-bytes", cacheBytes: -5, wantMsg: "-trace-cache-bytes -5"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.gang, c.segInsts, c.segWorkers, c.cacheBytes)
			if c.wantMsg == "" {
				if err != nil {
					t.Fatalf("rejected valid flags: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("accepted invalid flags")
			}
			if !strings.Contains(err.Error(), c.wantMsg) {
				t.Fatalf("error %q does not name the offending flag (%q)", err, c.wantMsg)
			}
		})
	}
}

// TestValidatePeerFlags covers the peer-fleet flag guards: lease TTLs,
// fleet membership requirements, and the -peers grammar.
func TestValidatePeerFlags(t *testing.T) {
	cases := []struct {
		name    string
		peerID  string
		peers   string
		ttl     time.Duration
		serving bool
		wantN   int
		wantMsg string // empty = accepted
	}{
		{name: "solo", ttl: 30 * time.Second},
		{name: "lease-only", peerID: "a", ttl: time.Second},
		{name: "fleet", peerID: "a", peers: "a=http://h1:8080,b=https://h2:8080", ttl: time.Second, serving: true, wantN: 2},
		{name: "observer-not-in-fleet", peerID: "obs", peers: "a=http://h1:1,b=http://h2:2", ttl: time.Second, serving: true, wantN: 2},
		{name: "zero-ttl", ttl: 0, wantMsg: "-lease-ttl 0s"},
		{name: "negative-ttl", ttl: -time.Second, wantMsg: "-lease-ttl -1s"},
		{name: "peers-without-id", peers: "a=http://h1:1,b=http://h2:2", ttl: time.Second, serving: true, wantMsg: "-peers requires -peer-id"},
		{name: "peers-without-serve", peerID: "a", peers: "a=http://h1:1,b=http://h2:2", ttl: time.Second, wantMsg: "-peers requires -serve"},
		{name: "not-id-url", peerID: "a", peers: "justanid", ttl: time.Second, serving: true, wantMsg: "not id=url"},
		{name: "blank-id", peerID: "a", peers: "=http://h1:1", ttl: time.Second, serving: true, wantMsg: "blank id"},
		{name: "duplicate-id", peerID: "a", peers: "a=http://h1:1,a=http://h2:2", ttl: time.Second, serving: true, wantMsg: `duplicate id "a"`},
		{name: "relative-url", peerID: "a", peers: "a=h1:8080x", ttl: time.Second, serving: true, wantMsg: "malformed URL"},
		{name: "bad-scheme", peerID: "a", peers: "a=ftp://h1:21", ttl: time.Second, serving: true, wantMsg: "malformed URL"},
		{name: "schemeless", peerID: "a", peers: "a=//h1:8080", ttl: time.Second, serving: true, wantMsg: "malformed URL"},
		{name: "empty-list", peerID: "a", peers: ", ,", ttl: time.Second, serving: true, wantMsg: "names no replicas"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fleet, err := validatePeerFlags(c.peerID, c.peers, c.ttl, c.serving)
			if c.wantMsg == "" {
				if err != nil {
					t.Fatalf("rejected valid flags: %v", err)
				}
				if len(fleet) != c.wantN {
					t.Fatalf("fleet %v has %d members, want %d", fleet, len(fleet), c.wantN)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid flags (fleet %v)", fleet)
			}
			if !strings.Contains(err.Error(), c.wantMsg) {
				t.Fatalf("error %q does not contain %q", err, c.wantMsg)
			}
		})
	}
}

// TestCLIRejectsNegativeFlags runs the real CLI (via the helper
// subprocess) with each invalid flag and asserts a non-zero exit plus a
// message naming the flag. -list keeps a wrongly-accepted invocation
// cheap: before the guards existed, "-gang -3 -list" printed the exhibit
// list and exited 0.
func TestCLIRejectsNegativeFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cases := []struct{ args, wantMsg string }{
		{"-gang -3 -list", "-gang -3"},
		{"-trace-segment-insts -1 -list", "-trace-segment-insts -1"},
		{"-trace-capture-workers -2 -list", "-trace-capture-workers -2"},
		{"-trace-cache-bytes -5 -list", "-trace-cache-bytes -5"},
		{"-lease-ttl -1s -list", "-lease-ttl -1s"},
		{"-peers a=http://h1:1,b=http://h2:2 -list", "-peers requires -peer-id"},
		{"-peer-id a -peers a=notaurl,b=http://h2:2 -serve 127.0.0.1:0 -list", "malformed URL"},
		{"-peer-id a -peers a=http://h1:1,a=http://h2:2 -serve 127.0.0.1:0 -list", "duplicate id"},
	}
	for _, c := range cases {
		t.Run(strings.Fields(c.args)[0], func(t *testing.T) {
			cmd := exec.Command(exe, "-test.run", "^TestCLIHelper$", "-test.v")
			cmd.Env = append(os.Environ(), cliHelperEnv+"=1", "MLPSIM_CLI_ARGS="+c.args)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("CLI %q exited zero, want rejection:\n%s", c.args, out)
			}
			if !strings.Contains(string(out), c.wantMsg) {
				t.Fatalf("CLI %q output does not name the offending flag %q:\n%s", c.args, c.wantMsg, out)
			}
		})
	}
}

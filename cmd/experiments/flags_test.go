package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestValidateFlags is the table-driven unit check of the numeric flag
// guards.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		gang       int
		segInsts   int64
		segWorkers int
		cacheBytes int64
		wantMsg    string // empty = accepted
	}{
		{name: "all-zero"},
		{name: "all-positive", gang: 4, segInsts: 100_000, segWorkers: 2, cacheBytes: 1 << 20},
		{name: "negative-gang", gang: -3, wantMsg: "-gang -3"},
		{name: "negative-seg-insts", segInsts: -1, wantMsg: "-trace-segment-insts -1"},
		{name: "negative-workers", segWorkers: -2, wantMsg: "-trace-capture-workers -2"},
		{name: "negative-cache-bytes", cacheBytes: -5, wantMsg: "-trace-cache-bytes -5"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.gang, c.segInsts, c.segWorkers, c.cacheBytes)
			if c.wantMsg == "" {
				if err != nil {
					t.Fatalf("rejected valid flags: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("accepted invalid flags")
			}
			if !strings.Contains(err.Error(), c.wantMsg) {
				t.Fatalf("error %q does not name the offending flag (%q)", err, c.wantMsg)
			}
		})
	}
}

// TestCLIRejectsNegativeFlags runs the real CLI (via the helper
// subprocess) with each invalid flag and asserts a non-zero exit plus a
// message naming the flag. -list keeps a wrongly-accepted invocation
// cheap: before the guards existed, "-gang -3 -list" printed the exhibit
// list and exited 0.
func TestCLIRejectsNegativeFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cases := []struct{ args, wantMsg string }{
		{"-gang -3 -list", "-gang -3"},
		{"-trace-segment-insts -1 -list", "-trace-segment-insts -1"},
		{"-trace-capture-workers -2 -list", "-trace-capture-workers -2"},
		{"-trace-cache-bytes -5 -list", "-trace-cache-bytes -5"},
	}
	for _, c := range cases {
		t.Run(strings.Fields(c.args)[0], func(t *testing.T) {
			cmd := exec.Command(exe, "-test.run", "^TestCLIHelper$", "-test.v")
			cmd.Env = append(os.Environ(), cliHelperEnv+"=1", "MLPSIM_CLI_ARGS="+c.args)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("CLI %q exited zero, want rejection:\n%s", c.args, out)
			}
			if !strings.Contains(string(out), c.wantMsg) {
				t.Fatalf("CLI %q output does not name the offending flag %q:\n%s", c.args, c.wantMsg, out)
			}
		})
	}
}

package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mlpsim/internal/experiments"
	"mlpsim/internal/server"
)

// cliHelperEnv flips TestCLIHelper from a no-op into the real CLI:
// the test binary re-executes itself with this set, so "CLI output"
// below means the actual cmd/experiments main(), not a reimplementation.
const cliHelperEnv = "MLPSIM_CLI_HELPER"

// TestCLIHelper is the subprocess body: it replaces os.Args with the
// arguments in MLPSIM_CLI_ARGS and runs main().
func TestCLIHelper(t *testing.T) {
	if os.Getenv(cliHelperEnv) != "1" {
		t.Skip("helper for the server-vs-CLI equivalence tests; set " + cliHelperEnv + " to run")
	}
	os.Args = append([]string{"experiments"}, strings.Fields(os.Getenv("MLPSIM_CLI_ARGS"))...)
	main()
}

// runCLI executes the real CLI with args via the helper process.
func runCLI(t *testing.T, args string) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestCLIHelper$", "-test.v")
	cmd.Env = append(os.Environ(), cliHelperEnv+"=1", "MLPSIM_CLI_ARGS="+args)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("CLI %q failed: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestServerMatchesCLI is the golden equivalence test of the daemon:
// for three Quick-scale exhibits, the JSON and CSV bodies served by
// GET /v1/exhibits/{name} must be byte-identical to the files the real
// CLI writes with -json/-csv for the same seed, warmup and measure.
// The two sides share one on-disk trace-cache directory, so this also
// exercises the CLI-publishes / daemon-mmaps cross-process path.
//
// For table5 the CLI side runs with -gang 1 (gang dispatch off) while
// the daemon gangs by default, so byte equality here also pins
// gang-dispatched sweeps identical to sequential ones across the
// process boundary.
func TestServerMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and runs Quick-scale sweeps")
	}
	outDir := t.TempDir()
	cacheDir := filepath.Join(outDir, "atrace")
	exhibits := []struct{ name, extraArgs string }{
		{"figure2", ""},
		{"table5", "-gang 1"}, // sequential CLI vs ganged daemon
		{"table6", ""},
		// Mixed SoA/scalar gangs on the daemon side vs sequential CLI.
		{"ext-storesets", "-gang 1"},
		// Scheduled-SMT policy sweep: pins the trace pre-pass + policy
		// replays deterministic across the process boundary.
		{"ext-smtsched", ""},
	}

	// CLI side: Quick scale (seed 1, 300k warm-up, 1M measured).
	for _, ex := range exhibits {
		runCLI(t, strings.TrimSpace(fmt.Sprintf(
			"-only %s -seed 1 -warmup 300000 -measure 1000000 -csv %s -json %s -trace-cache-dir %s %s",
			ex.name, outDir, outDir, cacheDir, ex.extraArgs)))
	}

	// Server side: same defaults, same shared spill directory.
	setup := experiments.Quick(1)
	setup.Cache.SetDir(cacheDir)
	srv := server.New(server.Options{Setup: setup})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, ex := range exhibits {
		ex := ex.name
		for _, f := range []struct{ format, ext string }{{"json", ".json"}, {"csv", ".csv"}} {
			t.Run(ex+"/"+f.format, func(t *testing.T) {
				url := fmt.Sprintf("%s/v1/exhibits/%s?seed=1&warmup=300000&measure=1000000&format=%s",
					ts.URL, ex, f.format)
				resp, err := ts.Client().Get(url)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status %d\n%s", resp.StatusCode, body)
				}
				want, err := os.ReadFile(filepath.Join(outDir, ex+f.ext))
				if err != nil {
					t.Fatalf("CLI wrote no %s output: %v", f.format, err)
				}
				if string(body) != string(want) {
					t.Errorf("server %s bytes differ from CLI output\nserver:\n%s\nCLI:\n%s", f.format, body, want)
				}
			})
		}
	}
}

// TestServeSIGTERMExitsZero boots the real CLI in -serve mode, checks it
// answers, sends SIGTERM and asserts a clean drain: "drained" in the
// log and exit status 0.
func TestServeSIGTERMExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon subprocess")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestCLIHelper$", "-test.v")
	cmd.Env = append(os.Environ(), cliHelperEnv+"=1",
		"MLPSIM_CLI_ARGS=-serve 127.0.0.1:0 -warmup 20000 -measure 60000")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its resolved address before serving.
	var base string
	scanner := bufio.NewScanner(stdout)
	lines := make(chan string)
	go func() {
		for scanner.Scan() {
			lines <- scanner.Text()
		}
		close(lines)
	}()
	deadline := time.After(30 * time.Second)
	var logged []string
wait:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("daemon exited before announcing its address:\n%s", strings.Join(logged, "\n"))
			}
			logged = append(logged, line)
			if rest, found := strings.CutPrefix(line, "experiments: serving on "); found {
				base = rest
				break wait
			}
		case <-deadline:
			t.Fatalf("daemon never announced its address:\n%s", strings.Join(logged, "\n"))
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz against %s: %v", base, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/v1/exhibits/table5?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exhibit request = %d, want 200", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	sawDrained := false
	for line := range lines {
		logged = append(logged, line)
		if strings.Contains(line, "drained") {
			sawDrained = true
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, strings.Join(logged, "\n"))
	}
	if !sawDrained {
		t.Errorf("daemon log never reported a clean drain:\n%s", strings.Join(logged, "\n"))
	}
}

// Command experiments regenerates the paper's tables and figures.
//
// Examples:
//
//	experiments                 # everything, paper order
//	experiments -only table3    # one exhibit
//	experiments -list           # available exhibits
//	experiments -warmup 5000000 -measure 20000000   # bigger runs
//	experiments -only figure4 -cpuprofile cpu.prof  # profile a sweep
//	experiments -trace-cache-dir /tmp/atrace        # reuse annotations across invocations
//	experiments -serve 127.0.0.1:8080               # long-lived HTTP daemon
package main

import (
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mlpsim/internal/atrace"
	"mlpsim/internal/experiments"
	"mlpsim/internal/server"
)

func main() {
	var (
		only         = flag.String("only", "", "run a single exhibit (e.g. table3, figure8)")
		list         = flag.Bool("list", false, "list available exhibits")
		seed         = flag.Int64("seed", 1, "workload generation seed")
		warmup       = flag.Int64("warmup", 2_000_000, "warm-up instructions per run")
		measure      = flag.Int64("measure", 8_000_000, "measured instructions per run")
		par          = flag.Int("parallel", 0, "concurrent simulator runs (0 = GOMAXPROCS)")
		gang         = flag.Int("gang", 0, "gang size: engines stepped together over one annotated stream (0 = auto, 1 = off, N = cap)")
		csvDir       = flag.String("csv", "", "also write each exhibit's rows as CSV into this directory")
		jsonDir      = flag.String("json", "", "also write each exhibit's rows as JSON into this directory")
		serveAddr    = flag.String("serve", "", "serve exhibits over HTTP on this address instead of running once (e.g. 127.0.0.1:8080)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "with -serve: how long SIGTERM waits for in-flight requests")
		peerID       = flag.String("peer-id", "", "this replica's stable identity: hash-ring membership with -peers, build-lease ownership with -trace-cache-dir")
		peersFlag    = flag.String("peers", "", "comma-separated fleet list id=url,... naming every replica (this one included); requires -serve and -peer-id")
		leaseTTL     = flag.Duration("lease-ttl", atrace.DefaultLeaseTTL, "cross-host build lease time-to-live for a shared -trace-cache-dir (active with -peer-id; a dead owner's lease is reclaimable after this long)")
		cacheDir     = flag.String("trace-cache-dir", "", "spill annotated-trace cache entries to this directory (shared across invocations and processes)")
		cacheBytes   = flag.Int64("trace-cache-bytes", 0, "byte cap for -trace-cache-dir; least-recently-used spills are evicted (0 = default cap)")
		segInsts     = flag.Int64("trace-segment-insts", 0, "capture annotated traces as N-instruction segments built by parallel pipelines (0 = monolithic)")
		segWorkers   = flag.Int("trace-capture-workers", 0, "parallel capture workers with -trace-segment-insts (0 = GOMAXPROCS)")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if err := validateFlags(*gang, *segInsts, *segWorkers, *cacheBytes); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	fleet, err := validatePeerFlags(*peerID, *peersFlag, *leaseTTL, *serveAddr != "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	setup := experiments.Default(*seed)
	setup.Warmup = *warmup
	setup.Measure = *measure
	setup.Parallelism = *par
	setup.GangSize = *gang
	if *cacheDir != "" {
		setup.Cache.SetDir(*cacheDir)
		if *cacheBytes > 0 {
			setup.Cache.SetDiskCapBytes(*cacheBytes)
		}
		if *peerID != "" {
			// A replica with an identity coordinates spill builds via
			// expiring lease files instead of flocks, so replicas on
			// different hosts sharing the directory over a network
			// filesystem still build each trace once — and a SIGKILL'd
			// builder's claim expires instead of wedging the key.
			setup.Cache.SetLease(*peerID, *leaseTTL)
		}
	}
	if *segInsts > 0 {
		setup.Cache.SetSegments(*segInsts, *segWorkers)
	}

	if *serveAddr != "" {
		if err := serve(*serveAddr, setup, *drainTimeout, *peerID, fleet); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	runners := experiments.All()
	if *only != "" {
		r := experiments.Find(*only)
		if r == nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown exhibit %q (use -list)\n", *only)
			os.Exit(1)
		}
		runners = []experiments.Runner{*r}
	}

	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
	for _, r := range runners {
		start := time.Now()
		out := r.Run(setup)
		fmt.Println(out)
		fmt.Printf("[%s completed in %s]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeRows(filepath.Join(*csvDir, r.ID+".csv"), out, experiments.WriteCSV); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: csv:", err)
			}
		}
		if *jsonDir != "" {
			if err := writeRows(filepath.Join(*jsonDir, r.ID+".json"), out, experiments.WriteJSON); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: json:", err)
			}
		}
	}
}

// validateFlags rejects negative numeric flag values with a clear error
// instead of silently reinterpreting them (a negative -gang used to fall
// through to the auto-size behaviour of 0).
func validateFlags(gang int, segInsts int64, segWorkers int, cacheBytes int64) error {
	if gang < 0 {
		return fmt.Errorf("-gang %d: must be >= 0 (0 = auto, 1 = off, N = cap)", gang)
	}
	if segInsts < 0 {
		return fmt.Errorf("-trace-segment-insts %d: must be >= 0 (0 = monolithic capture)", segInsts)
	}
	if segWorkers < 0 {
		return fmt.Errorf("-trace-capture-workers %d: must be >= 0 (0 = GOMAXPROCS)", segWorkers)
	}
	if cacheBytes < 0 {
		return fmt.Errorf("-trace-cache-bytes %d: must be >= 0 (0 = default cap)", cacheBytes)
	}
	return nil
}

// validatePeerFlags checks the peer-fleet flags and parses -peers into
// the fleet list. The rules: -lease-ttl must be positive (it defaults
// sanely, so a non-positive value is always an explicit mistake), and a
// fleet needs both an identity for this replica and a daemon to answer
// peer requests with.
func validatePeerFlags(peerID, peers string, leaseTTL time.Duration, serving bool) ([]server.Peer, error) {
	if leaseTTL <= 0 {
		return nil, fmt.Errorf("-lease-ttl %s: must be > 0", leaseTTL)
	}
	if peers == "" {
		return nil, nil
	}
	if peerID == "" {
		return nil, fmt.Errorf("-peers requires -peer-id (this replica's identity on the hash ring)")
	}
	if !serving {
		return nil, fmt.Errorf("-peers requires -serve (peers fetch shards from this replica over HTTP)")
	}
	return parsePeers(peers)
}

// parsePeers parses "id=url,id=url,..." into the fleet list, rejecting
// malformed URLs, blank or duplicate ids, and entries without an "=".
func parsePeers(spec string) ([]server.Peer, error) {
	var fleet []server.Peer
	seen := make(map[string]bool)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, rawURL, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("-peers: entry %q is not id=url", entry)
		}
		if id = strings.TrimSpace(id); id == "" {
			return nil, fmt.Errorf("-peers: entry %q has a blank id", entry)
		}
		if seen[id] {
			return nil, fmt.Errorf("-peers: duplicate id %q", id)
		}
		seen[id] = true
		u, err := url.Parse(strings.TrimSpace(rawURL))
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("-peers: %s has a malformed URL %q (want http://host:port)", id, rawURL)
		}
		fleet = append(fleet, server.Peer{ID: id, URL: u.String()})
	}
	if len(fleet) == 0 {
		return nil, fmt.Errorf("-peers %q names no replicas", spec)
	}
	return fleet, nil
}

// writeRows stores one exhibit's rows with the given encoder.
func writeRows(path string, exhibit interface{}, write func(io.Writer, interface{}) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f, exhibit)
}

package mlpsim_test

// One benchmark per paper exhibit (Tables 1, 3-6; Figures 2, 4-11): each
// regenerates its table/figure on a reduced setup and reports the headline
// number as a custom metric, so `go test -bench=.` both exercises every
// experiment path end to end and prints the reproduced values. Engine
// micro-benchmarks at the bottom measure simulator throughput.

import (
	"testing"

	"mlpsim"
	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
	"mlpsim/internal/core"
	"mlpsim/internal/cyclesim"
	"mlpsim/internal/experiments"
	"mlpsim/internal/trace"
	"mlpsim/internal/workload"
)

// benchSetup is small enough for repeated runs on one core.
func benchSetup() experiments.Setup {
	s := experiments.Quick(1)
	s.Warmup = 150_000
	s.Measure = 400_000
	s.Workloads = []workload.Config{workload.Database(1)}
	return s
}

func BenchmarkTable1(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1(s)
		b.ReportMetric(res.Rows[1].MLP, "MLP@1000")
	}
}

func BenchmarkFigure2(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure2(s)
		b.ReportMetric(res.Series[0].MeanDistance, "mean-inter-miss")
	}
}

func BenchmarkTable3(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable3(s)
		b.ReportMetric(res.MaxRelError(1000), "max-rel-err@1000")
	}
}

func BenchmarkTable4(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable4(s)
		b.ReportMetric(res.MaxRelError(), "max-rel-err")
	}
}

func BenchmarkTable5(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable5(s)
		b.ReportMetric(res.Rows[0].StallOnUse, "MLP-stall-on-use")
	}
}

func BenchmarkFigure4(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure4(s)
		b.ReportMetric(res.Lookup("Database", 64, core.ConfigC).MLP, "MLP-64C")
	}
}

func BenchmarkFigure5(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure5(s)
		fr := res.Cells[0].Result.LimiterFracs()
		b.ReportMetric(fr[core.LimMaxwin], "maxwin-frac")
	}
}

func BenchmarkFigure6(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure6(s)
		b.ReportMetric(res.INF["Database"], "MLP-INF")
	}
}

func BenchmarkFigure7(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure7(s)
		b.ReportMetric(res.Cells[0].MLP, "MLP-1MB")
	}
}

func BenchmarkFigure8(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure8(s)
		b.ReportMetric(res.Rows[0].RAE, "MLP-RAE")
	}
}

func BenchmarkTable6(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable6(s)
		b.ReportMetric(res.Rows[0].Correct, "vp-correct-frac")
	}
}

func BenchmarkFigure9(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure9(s)
		b.ReportMetric(res.Rows[len(res.Rows)-1].PerfGainPct, "vp-rae-gain-pct")
	}
}

func BenchmarkFigure10(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure10(s)
		b.ReportMetric(res.Rows[0].PerfVPBP, "MLP-RAE-perfVPBP")
	}
}

func BenchmarkFigure11(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure11(s)
		var rae float64
		for _, r := range res.Rows {
			if r.Config == "RAE" {
				rae = r.GainPct
			}
		}
		b.ReportMetric(rae, "rae-gain-pct")
	}
}

// --- simulator micro-benchmarks --------------------------------------------

// BenchmarkGenerator measures raw trace generation throughput.
func BenchmarkGenerator(b *testing.B) {
	g := workload.MustNew(workload.Database(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("generator ended")
		}
	}
}

// BenchmarkAnnotator measures generation + cache/predictor annotation.
func BenchmarkAnnotator(b *testing.B) {
	a := annotate.New(workload.MustNew(workload.Database(1)), annotate.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := a.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}

// BenchmarkMLPsimEngine measures end-to-end epoch-model simulation.
func BenchmarkMLPsimEngine(b *testing.B) {
	a := annotate.New(workload.MustNew(workload.Database(1)), annotate.Config{})
	cfg := core.Default()
	cfg.MaxInstructions = int64(b.N)
	b.ResetTimer()
	res := core.NewEngine(a, cfg).Run()
	if res.Instructions != int64(b.N) {
		b.Fatalf("simulated %d of %d", res.Instructions, b.N)
	}
}

// BenchmarkMLPsimRunahead measures runahead-mode simulation.
func BenchmarkMLPsimRunahead(b *testing.B) {
	a := annotate.New(workload.MustNew(workload.Database(1)), annotate.Config{})
	cfg := core.Default().WithIssue(core.ConfigD).WithRunahead()
	cfg.MaxInstructions = int64(b.N)
	b.ResetTimer()
	res := core.NewEngine(a, cfg).Run()
	if res.Instructions != int64(b.N) {
		b.Fatalf("simulated %d of %d", res.Instructions, b.N)
	}
}

// BenchmarkGangSweep measures gang dispatch: 16 engine configurations
// stepped in lock-step over one shared decode of a captured stream. One
// op is one config·instruction, directly comparable to
// BenchmarkMLPsimEngine's per-instruction cost. This is the `make
// profile` entry point for the gang hot loop.
func BenchmarkGangSweep(b *testing.B) {
	const k = 16
	a := annotate.New(workload.MustNew(workload.Database(1)), annotate.Config{})
	a.Warm(150_000)
	s := atrace.Capture(a, 400_000)
	sizes := []int{16, 32, 64, 128, 256}
	issues := []core.IssueConfig{core.ConfigA, core.ConfigB, core.ConfigC, core.ConfigD, core.ConfigE}
	b.ReportAllocs()
	b.ResetTimer()
	for remaining := int64(b.N); remaining > 0; {
		n := s.Len()
		if per := (remaining + k - 1) / k; per < n {
			n = per
		}
		cfgs := make([]core.Config, k)
		for i := range cfgs {
			cfgs[i] = core.Default().
				WithWindow(sizes[i%len(sizes)]).
				WithIssue(issues[(i/len(sizes))%len(issues)])
			cfgs[i].MaxInstructions = n
		}
		core.RunGang(s.Replay(), cfgs)
		remaining -= k * n
	}
}

// BenchmarkGangSweepSoA isolates the structure-of-arrays gang stepper:
// the same 16-config sweep as BenchmarkGangSweep (every config is
// SoA-eligible, so all 16 engines ride the SoA fast path) but with gang
// construction off the clock, so a profile of this benchmark is the
// steady-state SoA hot loop alone. This is the `make profile` entry
// point for the SoA-gang flamegraph (profiles/gang-soa.cpu.prof).
func BenchmarkGangSweepSoA(b *testing.B) {
	const k = 16
	a := annotate.New(workload.MustNew(workload.Database(1)), annotate.Config{})
	a.Warm(150_000)
	s := atrace.Capture(a, 400_000)
	sizes := []int{16, 32, 64, 128, 256}
	issues := []core.IssueConfig{core.ConfigA, core.ConfigB, core.ConfigC, core.ConfigD, core.ConfigE}
	b.ReportAllocs()
	b.ResetTimer()
	for remaining := int64(b.N); remaining > 0; {
		n := s.Len()
		if per := (remaining + k - 1) / k; per < n {
			n = per
		}
		b.StopTimer()
		cfgs := make([]core.Config, k)
		for i := range cfgs {
			cfgs[i] = core.Default().
				WithWindow(sizes[i%len(sizes)]).
				WithIssue(issues[(i/len(sizes))%len(issues)])
			cfgs[i].MaxInstructions = n
		}
		g := core.NewGang(s.Replay(), cfgs)
		b.StartTimer()
		g.Run()
		remaining -= k * n
	}
}

// BenchmarkCycleSim measures the cycle-level simulator.
func BenchmarkCycleSim(b *testing.B) {
	a := annotate.New(workload.MustNew(workload.Database(1)), annotate.Config{})
	cfg := cyclesim.Default(1000)
	cfg.MaxInstructions = int64(b.N)
	b.ResetTimer()
	res := cyclesim.New(a, cfg).Run()
	if res.Instructions != int64(b.N) {
		b.Fatalf("retired %d of %d", res.Instructions, b.N)
	}
}

// BenchmarkTraceEncode measures binary trace encoding.
func BenchmarkTraceEncode(b *testing.B) {
	insts := trace.Collect(trace.Limit(workload.MustNew(workload.Database(1)), 100_000), -1)
	enc, err := trace.NewEncoder(discard{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(insts[i%len(insts)]); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFacadeSimulate measures the public API end to end.
func BenchmarkFacadeSimulate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mlpsim.Simulate(mlpsim.Database(1), mlpsim.DefaultProcessor(),
			mlpsim.Options{Warmup: 100_000, Measure: 200_000})
		b.ReportMetric(res.MLP(), "MLP")
	}
}

module mlpsim

go 1.22

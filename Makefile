GO ?= go

.PHONY: all build test race vet bench bench-full bench-compare bench-gate bench-baseline fuzz serve-smoke clean

all: build test vet

build:
	$(GO) build ./...

# vet runs first so structural mistakes fail fast; the -race pass covers
# the new cross-process / singleflight machinery in addition to the plain
# test run. The bench gate fails the build when a micro-benchmark's ns/op
# regresses more than 50% against the committed BENCH_BASELINE.json;
# MLPSIM_BENCH_GATE=off demotes it to report-only.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/atrace -run 'TestCacheSingleflight|TestCrossProcessSingleflight|TestCacheDiskSpill|TestCorruptSpillQuarantined|TestDiskEviction|TestSegmented|TestCrashDuringPublishRecovery'
	$(GO) test -race ./internal/server
	$(MAKE) bench-gate

bench-gate:
	$(GO) run ./cmd/bench -scale quick -skip-sweep -skip-capture \
		-out /tmp/bench_gate.json -compare BENCH_BASELINE.json -gate-pct 50

# bench-baseline refreshes the committed gate baseline. Run it on the
# machine class the gate will run on, with the tree otherwise idle.
bench-baseline:
	$(GO) run ./cmd/bench -scale quick -skip-sweep -skip-capture -out BENCH_BASELINE.json

# Concurrency-sensitive packages: the annotated-trace cache (singleflight,
# mmap, flock-coordinated disk spill) and the experiment worker pool that
# hammers it.
race:
	$(GO) test -race ./internal/experiments ./internal/atrace

vet:
	$(GO) vet ./...

# Performance report: micro-benchmarks, the monolithic-vs-segmented
# capture comparison, plus the uncached / in-heap-cached / memory-mapped
# Figure 4+5+6 sweeps. `make bench` is the quick loop; `make bench-full`
# writes the committed BENCH_3.json at paper scale, and `make
# bench-compare` additionally prints deltas against BENCH_2.json.
bench:
	$(GO) run ./cmd/bench -scale quick -out /tmp/bench_quick.json

bench-full:
	$(GO) run ./cmd/bench -scale default -out BENCH_3.json

bench-compare:
	$(GO) run ./cmd/bench -scale default -out BENCH_3.json -compare BENCH_2.json

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRoundTripV2 -fuzztime 30s
	$(GO) test ./internal/atrace -fuzz FuzzOpenSegmentManifest -fuzztime 30s

# serve-smoke boots the real daemon binary on an ephemeral port, diffs
# one exhibit's CSV against the plain CLI's output and asserts a clean
# SIGTERM drain. See scripts/serve-smoke.sh.
serve-smoke:
	sh scripts/serve-smoke.sh

clean:
	$(GO) clean ./...

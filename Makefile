GO ?= go

.PHONY: all build test race vet bench fuzz clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Concurrency-sensitive packages: the annotated-trace cache (singleflight,
# LRU, disk spill) and the experiment worker pool that hammers it.
race:
	$(GO) test -race ./internal/experiments ./internal/atrace

vet:
	$(GO) vet ./...

# Performance report: micro-benchmarks plus the cached-vs-uncached
# Figure 4+5+6 sweep. `make bench` is the quick loop; `make bench-full`
# writes the committed BENCH_1.json at paper scale.
bench:
	$(GO) run ./cmd/bench -scale quick -out /tmp/bench_quick.json

bench-full:
	$(GO) run ./cmd/bench -scale default -out BENCH_1.json

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRoundTripV2 -fuzztime 30s

clean:
	$(GO) clean ./...

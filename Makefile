GO ?= go

.PHONY: all build test cover race vet bench bench-full bench-compare bench-gate bench-baseline profile fuzz serve-smoke shard-smoke clean

all: build test vet

build:
	$(GO) build ./...

# vet runs first so structural mistakes fail fast; the -race pass covers
# the new cross-process / singleflight machinery in addition to the plain
# test run. The bench gate fails the build when a micro-benchmark's ns/op
# regresses more than 50% against the committed BENCH_BASELINE.json;
# MLPSIM_BENCH_GATE=off demotes it to report-only.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/atrace -run 'TestCacheSingleflight|TestCrossProcessSingleflight|TestCacheDiskSpill|TestCorruptSpillQuarantined|TestDiskEviction|TestSegmented|TestCrashDuringPublishRecovery|TestLease|TestPartialEviction'
	$(GO) test -race ./internal/server
	$(GO) test -race ./internal/experiments -run 'TestGangMatchesSequential|TestExtStoreSets'
	$(GO) test -race ./internal/core -run 'TestRunGangDivergentMatchesSequential|TestDisambMatchesBruteForceReferenceRandom'
	$(GO) test -race ./internal/storeset
	$(GO) test -race ./internal/smt -run 'TestSchedBracketingRandom|TestRoundRobinK1BitIdentity'
	$(GO) test -race ./internal/mem ./internal/prefetch ./internal/annotate \
		-run 'MatchesMapReference|ZeroAllocSteadyState|AnnotateIntoMatchesNext'
	$(MAKE) bench-gate

bench-gate:
	$(GO) run ./cmd/bench -scale quick -skip-sweep -skip-capture -skip-gang -skip-storesets -skip-smtsched \
		-out /tmp/bench_gate.json -compare BENCH_BASELINE.json -gate-pct 50

# bench-baseline refreshes the committed gate baseline. Run it on the
# machine class the gate will run on, with the tree otherwise idle.
bench-baseline:
	$(GO) run ./cmd/bench -scale quick -skip-sweep -skip-capture -skip-gang -skip-storesets -skip-smtsched -out BENCH_BASELINE.json

# cover prints per-package statement coverage and gates the scheduled-SMT
# package (internal/smt) against the floor in scripts/cover.sh;
# MLPSIM_COVER_GATE=off demotes the gate to report-only.
cover:
	sh scripts/cover.sh

# Concurrency-sensitive packages: the annotated-trace cache (singleflight,
# mmap, flock-coordinated disk spill) and the experiment worker pool that
# hammers it.
race:
	$(GO) test -race ./internal/experiments ./internal/atrace

vet:
	$(GO) vet ./...

# Performance report: micro-benchmarks (engine, gang dispatch at
# K=1/4/16/32/64, the SMT policy scheduler), the monolithic-vs-segmented
# capture comparison, the sequential-vs-gang Figure 4 sweep, the
# ext-storesets disambiguation and ext-smtsched policy sweeps, the
# uncached / in-heap-cached / memory-mapped Figure 4+5+6 sweeps, plus
# the peer-mode shard sweep (figure4 through a 3-replica in-process
# fleet, byte-compared against a solo daemon). `make bench` is the
# quick loop; `make bench-full` writes the committed BENCH_10.json at
# paper scale, and `make bench-compare` additionally prints deltas
# against BENCH_9.json.
bench:
	$(GO) run ./cmd/bench -scale quick -out /tmp/bench_quick.json

bench-full:
	$(GO) run ./cmd/bench -scale default -out BENCH_10.json

bench-compare:
	$(GO) run ./cmd/bench -scale default -out BENCH_10.json -compare BENCH_9.json

# profile writes CPU and heap profiles for the engine hot loop, the gang
# sweep end to end, and the SoA gang stepper in isolation (construction
# off the clock) into profiles/. Inspect with e.g.
#   go tool pprof -http=:8080 profiles/gang-soa.cpu.prof   # flamegraph view
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'BenchmarkMLPsimEngine$$' -benchtime 5s \
		-cpuprofile profiles/engine.cpu.prof -memprofile profiles/engine.mem.prof .
	$(GO) test -run '^$$' -bench 'BenchmarkGangSweep$$' -benchtime 5s \
		-cpuprofile profiles/gang.cpu.prof -memprofile profiles/gang.mem.prof .
	$(GO) test -run '^$$' -bench 'BenchmarkGangSweepSoA$$' -benchtime 5s \
		-cpuprofile profiles/gang-soa.cpu.prof -memprofile profiles/gang-soa.mem.prof .
	$(GO) test -run '^$$' -bench 'BenchmarkAnnotateStream$$' -benchtime 5s \
		-cpuprofile profiles/annotate.cpu.prof -memprofile profiles/annotate.mem.prof ./internal/atrace
	rm -f mlpsim.test atrace.test

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRoundTripV2 -fuzztime 30s
	$(GO) test ./internal/atrace -fuzz FuzzOpenSegmentManifest -fuzztime 30s
	$(GO) test ./internal/storeset -fuzz FuzzStoreSetUpdate -fuzztime 30s

# serve-smoke boots the real daemon binary on an ephemeral port, diffs
# one exhibit's CSV against the plain CLI's output and asserts a clean
# SIGTERM drain. See scripts/serve-smoke.sh.
serve-smoke:
	sh scripts/serve-smoke.sh

# shard-smoke boots three real daemon replicas sharing one trace-cache
# directory plus a coordinator-only observer that owns no points, then
# byte-diffs figure4 fetched through the observer against a solo
# daemon's answer. See scripts/shard-smoke.sh.
shard-smoke:
	sh scripts/shard-smoke.sh

clean:
	$(GO) clean ./...

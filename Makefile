GO ?= go

.PHONY: all build test race vet bench bench-full bench-compare fuzz clean

all: build test vet

build:
	$(GO) build ./...

# vet runs first so structural mistakes fail fast; the -race pass covers
# the new cross-process / singleflight machinery in addition to the plain
# test run.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/atrace -run 'TestCacheSingleflight|TestCrossProcessSingleflight|TestCacheDiskSpill|TestCorruptSpillQuarantined|TestDiskEviction'

# Concurrency-sensitive packages: the annotated-trace cache (singleflight,
# mmap, flock-coordinated disk spill) and the experiment worker pool that
# hammers it.
race:
	$(GO) test -race ./internal/experiments ./internal/atrace

vet:
	$(GO) vet ./...

# Performance report: micro-benchmarks plus the uncached / in-heap-cached
# / memory-mapped Figure 4+5+6 sweeps. `make bench` is the quick loop;
# `make bench-full` writes the committed BENCH_2.json at paper scale, and
# `make bench-compare` additionally prints deltas against BENCH_1.json.
bench:
	$(GO) run ./cmd/bench -scale quick -out /tmp/bench_quick.json

bench-full:
	$(GO) run ./cmd/bench -scale default -out BENCH_2.json

bench-compare:
	$(GO) run ./cmd/bench -scale default -out BENCH_2.json -compare BENCH_1.json

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRoundTripV2 -fuzztime 30s

clean:
	$(GO) clean ./...

#!/bin/sh
# serve-smoke.sh — end-to-end smoke test of the experiment daemon.
#
# Builds the real cmd/experiments binary, boots it with -serve on an
# ephemeral port, waits for the "serving on" announcement, then:
#   1. checks /healthz answers "ok",
#   2. fetches one exhibit as CSV over HTTP,
#   3. runs the same exhibit through the plain CLI with -csv,
#   4. diffs the two byte-for-byte,
#   5. sends SIGTERM and asserts the daemon drains and exits 0.
#
# Everything lives under a temp dir; the trace cache is shared between
# daemon and CLI so the second run replays the first run's spill.
set -eu

GO="${GO:-go}"
EXHIBIT="${EXHIBIT:-table5}"
WARMUP="${WARMUP:-20000}"
MEASURE="${MEASURE:-60000}"

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building cmd/experiments"
"$GO" build -o "$tmp/experiments" ./cmd/experiments

echo "serve-smoke: starting daemon on an ephemeral port"
"$tmp/experiments" -serve 127.0.0.1:0 \
    -warmup "$WARMUP" -measure "$MEASURE" \
    -trace-cache-dir "$tmp/atrace" >"$tmp/daemon.log" 2>&1 &
daemon_pid=$!

# The daemon prints "experiments: serving on http://HOST:PORT" before it
# accepts connections; poll the log for that line.
base=""
i=0
while [ $i -lt 100 ]; do
    base="$(sed -n 's/^experiments: serving on //p' "$tmp/daemon.log" | head -n1)"
    [ -n "$base" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "serve-smoke: FAIL daemon died before announcing its address" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$base" ]; then
    echo "serve-smoke: FAIL daemon never announced its address" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
echo "serve-smoke: daemon is up at $base"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

health="$(fetch "$base/healthz")"
if [ "$health" != "ok" ]; then
    echo "serve-smoke: FAIL /healthz said '$health', want 'ok'" >&2
    exit 1
fi

echo "serve-smoke: fetching $EXHIBIT as CSV over HTTP"
fetch "$base/v1/exhibits/$EXHIBIT?format=csv" >"$tmp/server.csv"

echo "serve-smoke: running the same exhibit through the CLI"
"$tmp/experiments" -only "$EXHIBIT" \
    -warmup "$WARMUP" -measure "$MEASURE" \
    -trace-cache-dir "$tmp/atrace" -csv "$tmp/cli" >/dev/null

if ! diff -u "$tmp/cli/$EXHIBIT.csv" "$tmp/server.csv"; then
    echo "serve-smoke: FAIL server CSV differs from CLI CSV" >&2
    exit 1
fi
echo "serve-smoke: server and CLI CSV are byte-identical"

echo "serve-smoke: sending SIGTERM"
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "serve-smoke: FAIL daemon exited non-zero after SIGTERM" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
daemon_pid=""
if ! grep -q "drained" "$tmp/daemon.log"; then
    echo "serve-smoke: FAIL daemon log never reported a clean drain" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
echo "serve-smoke: PASS (clean drain, exit 0)"

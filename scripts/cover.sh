#!/bin/sh
# cover.sh — per-package statement coverage with a floor gate.
#
# Runs `go test -cover` across the module, prints every package's
# coverage, and fails if mlpsim/internal/smt (the scheduled-SMT policy
# engine, whose bracketing and bit-identity guarantees live almost
# entirely in tests) drops below SMT_FLOOR percent. The floor sits just
# under the level the package shipped with, so refactors that silently
# shed tests fail here instead of rotting quietly.
#
# MLPSIM_COVER_GATE=off demotes the gate to report-only.
set -eu

GO="${GO:-go}"
SMT_FLOOR="${SMT_FLOOR:-92.0}"
SMT_PKG="mlpsim/internal/smt"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT INT TERM

echo "cover: running go test -cover ./..."
if ! "$GO" test -count=1 -cover ./... >"$tmp" 2>&1; then
    cat "$tmp" >&2
    echo "cover: FAIL tests failed" >&2
    exit 1
fi

# One line per package: "ok  <pkg>  <time>  coverage: NN.N% of statements"
# (packages without test files report no coverage and are printed as-is).
grep '^ok' "$tmp" | awk '{ cov = "-"; for (i = 1; i <= NF; i++) if ($i == "coverage:") cov = $(i+1); printf "cover: %-40s %s\n", $2, cov }'

smt_pct="$(grep "^ok[[:space:]]*$SMT_PKG[[:space:]]" "$tmp" | awk '{ for (i = 1; i <= NF; i++) if ($i == "coverage:") print $(i+1) }' | tr -d '%')"
if [ -z "$smt_pct" ]; then
    echo "cover: FAIL no coverage reported for $SMT_PKG" >&2
    exit 1
fi

if awk "BEGIN { exit !($smt_pct < $SMT_FLOOR) }"; then
    echo "cover: $SMT_PKG coverage $smt_pct% is below the $SMT_FLOOR% floor" >&2
    if [ "${MLPSIM_COVER_GATE:-}" = "off" ]; then
        echo "cover: MLPSIM_COVER_GATE=off, reporting only" >&2
        exit 0
    fi
    echo "cover: FAIL (set MLPSIM_COVER_GATE=off to demote to report-only)" >&2
    exit 1
fi
echo "cover: PASS ($SMT_PKG at $smt_pct%, floor $SMT_FLOOR%)"

#!/bin/sh
# shard-smoke.sh — end-to-end smoke test of peer mode.
#
# Builds the real cmd/experiments binary and boots a fleet of three
# replicas (r0, r1, r2) that share ONE trace-cache directory — so the
# cross-host lease files, not a per-process flock, coordinate their
# spill builds — plus a coordinator-only observer whose id is on
# nobody's hash ring, so it owns zero sweep points and must assemble
# its whole answer from peer shards. Then:
#   1. fetches figure4 as CSV from a solo daemon (its own cache dir),
#   2. fetches the same exhibit through the observer,
#   3. diffs the two byte-for-byte,
#   4. asserts the observer's /metrics prove points were fetched from
#      peers with zero fetch errors (no silent local fallback),
#   5. SIGTERMs all four daemons and asserts clean drains.
set -eu

GO="${GO:-go}"
EXHIBIT="${EXHIBIT:-figure4}"
WARMUP="${WARMUP:-20000}"
MEASURE="${MEASURE:-60000}"

tmp="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "shard-smoke: building cmd/experiments"
"$GO" build -o "$tmp/experiments" ./cmd/experiments

# The fleet list must be complete before any replica starts, so the
# ports cannot be ephemeral; ask the OS for four free ones up front.
if command -v python3 >/dev/null 2>&1; then
    ports="$(python3 -c '
import socket
socks = [socket.socket() for _ in range(4)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks:
    s.close()
')"
else
    ports="28471 28472 28473 28474"
fi
set -- $ports
p0=$1 p1=$2 p2=$3 p3=$4
peers="r0=http://127.0.0.1:$p0,r1=http://127.0.0.1:$p1,r2=http://127.0.0.1:$p2"

echo "shard-smoke: starting solo daemon"
"$tmp/experiments" -serve 127.0.0.1:0 \
    -warmup "$WARMUP" -measure "$MEASURE" \
    -trace-cache-dir "$tmp/solo-atrace" >"$tmp/solo.log" 2>&1 &
pids="$pids $!"

echo "shard-smoke: starting 3 replicas sharing $tmp/atrace plus a non-owner observer"
for member in "r0=$p0" "r1=$p1" "r2=$p2" "obs=$p3"; do
    id="${member%%=*}"
    port="${member#*=}"
    "$tmp/experiments" -serve "127.0.0.1:$port" \
        -peer-id "$id" -peers "$peers" -lease-ttl 5s \
        -warmup "$WARMUP" -measure "$MEASURE" \
        -trace-cache-dir "$tmp/atrace" >"$tmp/$id.log" 2>&1 &
    pids="$pids $!"
done

wait_up() { # $1 = log file; prints the announced base URL
    _i=0
    while [ $_i -lt 100 ]; do
        _base="$(sed -n 's/^experiments: serving on //p' "$1" | head -n1)"
        if [ -n "$_base" ]; then printf '%s\n' "$_base"; return 0; fi
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "shard-smoke: FAIL daemon behind $1 never announced its address" >&2
    cat "$1" >&2
    exit 1
}

solo_base="$(wait_up "$tmp/solo.log")"
for id in r0 r1 r2 obs; do
    wait_up "$tmp/$id.log" >/dev/null
done
obs_base="http://127.0.0.1:$p3"
echo "shard-smoke: solo at $solo_base, fleet at $peers, observer at $obs_base"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

echo "shard-smoke: fetching $EXHIBIT from the solo daemon"
fetch "$solo_base/v1/exhibits/$EXHIBIT?format=csv" >"$tmp/solo.csv"

echo "shard-smoke: fetching $EXHIBIT through the non-owner observer"
fetch "$obs_base/v1/exhibits/$EXHIBIT?format=csv" >"$tmp/fleet.csv"

if ! diff -u "$tmp/solo.csv" "$tmp/fleet.csv"; then
    echo "shard-smoke: FAIL observer CSV differs from solo CSV" >&2
    exit 1
fi
echo "shard-smoke: observer and solo CSV are byte-identical"

fetch "$obs_base/metrics" >"$tmp/obs.metrics"
fetched="$(sed -n 's/^mlpsim_peer_points_fetched_total //p' "$tmp/obs.metrics")"
errors="$(sed -n 's/^mlpsim_peer_fetch_errors_total //p' "$tmp/obs.metrics")"
if [ -z "$fetched" ] || [ "$fetched" -eq 0 ]; then
    echo "shard-smoke: FAIL observer fetched 0 peer points; nothing was offloaded" >&2
    cat "$tmp/obs.metrics" >&2
    exit 1
fi
if [ -n "$errors" ] && [ "$errors" -ne 0 ]; then
    echo "shard-smoke: FAIL observer hit $errors peer fetch errors against a healthy fleet" >&2
    exit 1
fi
echo "shard-smoke: observer fetched $fetched points from its peers, 0 errors"

echo "shard-smoke: draining all daemons"
for p in $pids; do kill -TERM "$p" 2>/dev/null || true; done
for p in $pids; do
    if ! wait "$p"; then
        echo "shard-smoke: FAIL a daemon exited non-zero after SIGTERM" >&2
        tail -n 20 "$tmp"/*.log >&2
        exit 1
    fi
done
pids=""
for id in solo r0 r1 r2 obs; do
    if ! grep -q "drained" "$tmp/$id.log"; then
        echo "shard-smoke: FAIL $id never reported a clean drain" >&2
        cat "$tmp/$id.log" >&2
        exit 1
    fi
done
echo "shard-smoke: PASS (byte-identical shard answer, clean drains)"

package mlpsim_test

import (
	"fmt"

	"mlpsim"
)

// The minimal session: measure the database workload's MLP under the
// paper's default 64-entry configuration-C processor.
func ExampleSimulate() {
	res := mlpsim.Simulate(mlpsim.Database(1), mlpsim.DefaultProcessor(),
		mlpsim.Options{Warmup: 100_000, Measure: 200_000})
	fmt.Printf("MLP > 1: %t\n", res.MLP() > 1)
	// Output: MLP > 1: true
}

// Runahead execution removes the window-size and serialization
// termination conditions (§3.5); it beats any practical window.
func ExampleProcessorConfig_WithRunahead() {
	opts := mlpsim.Options{Warmup: 100_000, Measure: 200_000}
	conv := mlpsim.Simulate(mlpsim.Database(2),
		mlpsim.DefaultProcessor().WithIssue(mlpsim.ConfigD), opts)
	rae := mlpsim.Simulate(mlpsim.Database(2),
		mlpsim.DefaultProcessor().WithIssue(mlpsim.ConfigD).WithRunahead(), opts)
	fmt.Printf("runahead beats conventional: %t\n", rae.MLP() > conv.MLP())
	// Output: runahead beats conventional: true
}

// A pointer chase cannot overlap its misses: every miss address depends
// on the previous miss's data, so MLP is exactly 1 at any window size.
func ExampleSimulate_pointerChase() {
	res := mlpsim.Simulate(mlpsim.PointerChase(1),
		mlpsim.DefaultProcessor().WithWindow(2048).WithIssue(mlpsim.ConfigE),
		mlpsim.Options{Warmup: 50_000, Measure: 100_000})
	fmt.Printf("MLP = %.0f\n", res.MLP())
	// Output: MLP = 1
}

// Epoch burst sizes feed the finite-bandwidth memory model (§4.1's
// queueing-model use case).
func ExampleBurstCollector() {
	col := mlpsim.NewBurstCollector(32)
	cfg := mlpsim.DefaultProcessor()
	cfg.OnEpoch = col.OnEpoch
	mlpsim.Simulate(mlpsim.Database(3), cfg, mlpsim.Options{Warmup: 100_000, Measure: 200_000})
	one := col.MeanEpochCycles(mlpsim.MemoryModel{Channels: 1, ServiceCycles: 120, LeadCycles: 880})
	many := col.MeanEpochCycles(mlpsim.MemoryModel{Channels: 8, ServiceCycles: 120, LeadCycles: 880})
	fmt.Printf("one channel slower: %t\n", one > many)
	// Output: one channel slower: true
}

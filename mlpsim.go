// Package mlpsim reproduces "Microarchitecture Optimizations for
// Exploiting Memory-Level Parallelism" (Chou, Fahs & Abraham, ISCA 2004):
// the epoch model of MLP, the MLPsim trace-driven simulator built on it, a
// cycle-level validation simulator, and synthetic stand-ins for the
// paper's commercial workloads.
//
// The package is a facade over the implementation packages. A minimal
// session:
//
//	res := mlpsim.Simulate(mlpsim.Database(1), mlpsim.DefaultProcessor(), mlpsim.Options{})
//	fmt.Printf("MLP = %.2f\n", res.MLP())
//
// Processor configurations follow the paper's vocabulary: issue
// constraint configurations A–E (Table 2), issue-window and reorder-buffer
// sizes, in-order stall-on-miss/stall-on-use modes, runahead execution and
// missing-load value prediction.
package mlpsim

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/bpred"
	"mlpsim/internal/core"
	"mlpsim/internal/cyclesim"
	"mlpsim/internal/mem"
	"mlpsim/internal/queueing"
	"mlpsim/internal/smt"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

// Workload parameterizes a synthetic workload (see internal/workload).
type Workload = workload.Config

// Workload presets: the paper's three commercial applications plus
// single-mechanism micro-workloads.
var (
	Database     = workload.Database
	JBB          = workload.JBB
	Web          = workload.Web
	PointerChase = workload.PointerChase
	Stream       = workload.Stream
	Serialized   = workload.Serialized
	IBound       = workload.IBound
	Workloads    = workload.Presets
)

// ProcessorConfig is an MLPsim processor configuration.
type ProcessorConfig = core.Config

// Result is an MLPsim run result (MLP, access counts, epoch limiters).
type Result = core.Result

// Epoch is one epoch delivered through ProcessorConfig.OnEpoch.
type Epoch = core.Epoch

// Limiter is an epoch's window-termination condition (Figure 5).
type Limiter = core.Limiter

// NumLimiters is the number of limiter categories in Result.Limiters.
const NumLimiters = core.NumLimiters

// IssueConfig is a Table 2 issue-constraint configuration.
type IssueConfig = core.IssueConfig

// The five issue-constraint configurations of Table 2.
const (
	ConfigA = core.ConfigA
	ConfigB = core.ConfigB
	ConfigC = core.ConfigC
	ConfigD = core.ConfigD
	ConfigE = core.ConfigE
)

// Window modes.
const (
	OutOfOrder         = core.OutOfOrder
	InOrderStallOnMiss = core.InOrderStallOnMiss
	InOrderStallOnUse  = core.InOrderStallOnUse
)

// DefaultProcessor returns the paper's default configuration (§5.1):
// 64-entry issue window and ROB, 32-entry fetch buffer, configuration C.
func DefaultProcessor() ProcessorConfig { return core.Default() }

// HierarchyConfig describes the cache hierarchy.
type HierarchyConfig = mem.HierarchyConfig

// DefaultHierarchy returns the paper's cache hierarchy (32KB L1s, 2MB L2).
func DefaultHierarchy() HierarchyConfig { return mem.DefaultHierarchy() }

// Options selects the run length and the front-end models used to
// annotate the trace.
type Options struct {
	// Warmup instructions train caches and predictors before measurement
	// (default 500_000).
	Warmup int64
	// Measure instructions are simulated for statistics (default
	// 2_000_000; 0 keeps the default — use ProcessorConfig.
	// MaxInstructions for full control).
	Measure int64
	// Hierarchy overrides the cache configuration (zero value = paper
	// default).
	Hierarchy HierarchyConfig
	// PerfectBranchPrediction replaces the 64K gshare with an oracle.
	PerfectBranchPrediction bool
	// LastValuePredictor attaches the 16K-entry missing-load last-value
	// predictor so ProcessorConfig.ValuePredict has outcomes to consume.
	LastValuePredictor bool
}

func (o Options) defaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 500_000
	}
	if o.Measure == 0 {
		o.Measure = 2_000_000
	}
	return o
}

func (o Options) annotateConfig() annotate.Config {
	acfg := annotate.Config{Hierarchy: o.Hierarchy}
	if o.PerfectBranchPrediction {
		acfg.Branch = bpred.Perfect{}
	}
	if o.LastValuePredictor {
		acfg.Value = vpred.NewLastValue(vpred.DefaultEntries)
	}
	return acfg
}

// Simulate runs the epoch-model simulator: it generates the workload,
// annotates it through the cache hierarchy and branch predictor, warms
// up, and partitions the measured window into epochs.
func Simulate(w Workload, p ProcessorConfig, o Options) Result {
	o = o.defaults()
	g := workload.MustNew(w)
	a := annotate.New(g, o.annotateConfig())
	a.Warm(o.Warmup)
	if p.MaxInstructions == 0 {
		p.MaxInstructions = o.Measure
	}
	return core.NewEngine(a, p).Run()
}

// CycleConfig is a cycle-level simulator configuration.
type CycleConfig = cyclesim.Config

// CycleResult is a cycle-level simulation result (CPI, MLP(t) average).
type CycleResult = cyclesim.Result

// DefaultCycleProcessor returns the default cycle-simulator pipeline at
// the given off-chip latency in cycles.
func DefaultCycleProcessor(missPenalty int) CycleConfig {
	return cyclesim.Default(missPenalty)
}

// CycleSimulate runs the cycle-level validation simulator over the same
// annotated stream Simulate would see.
func CycleSimulate(w Workload, p CycleConfig, o Options) CycleResult {
	o = o.defaults()
	g := workload.MustNew(w)
	a := annotate.New(g, o.annotateConfig())
	a.Warm(o.Warmup)
	if p.MaxInstructions == 0 {
		p.MaxInstructions = o.Measure
	}
	return cyclesim.New(a, p).Run()
}

// --- extensions ------------------------------------------------------------

// SMTConfig configures a multithreaded-MLP simulation (the paper's §7
// future work); see internal/smt for the model and its assumptions.
type SMTConfig = smt.Config

// SMTResult is a multithreaded simulation result.
type SMTResult = smt.Result

// SimulateSMT runs K workloads on a multithreaded processor sharing the
// cache hierarchy and reports per-thread MLP plus combined-MLP bounds.
func SimulateSMT(cfg SMTConfig) SMTResult { return smt.Run(cfg) }

// MemoryModel is a finite-bandwidth (C-channel) memory system fed by
// epoch access bursts (the §4.1 queueing-model use case).
type MemoryModel = queueing.Model

// BurstCollector accumulates epoch burst sizes; attach its OnEpoch to
// ProcessorConfig.OnEpoch.
type BurstCollector = queueing.Collector

// NewBurstCollector builds a collector with burst buckets up to max.
func NewBurstCollector(max int) *BurstCollector { return queueing.NewCollector(max) }

// StoreHeavy and Strided are the extension micro-workloads.
var (
	StoreHeavy = workload.StoreHeavy
	Strided    = workload.Strided
)

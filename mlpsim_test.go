package mlpsim_test

import (
	"testing"

	"mlpsim"
)

func TestSimulateFacade(t *testing.T) {
	opts := mlpsim.Options{Warmup: 150_000, Measure: 400_000}
	res := mlpsim.Simulate(mlpsim.Database(1), mlpsim.DefaultProcessor(), opts)
	if res.Accesses == 0 || res.MLP() < 1 {
		t.Fatalf("facade run produced no MLP: %+v", res)
	}
	if res.Instructions != 400_000 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
}

func TestFacadeRunaheadBeatsBaseline(t *testing.T) {
	opts := mlpsim.Options{Warmup: 150_000, Measure: 400_000}
	base := mlpsim.Simulate(mlpsim.Database(2), mlpsim.DefaultProcessor().WithIssue(mlpsim.ConfigD), opts)
	rae := mlpsim.Simulate(mlpsim.Database(2), mlpsim.DefaultProcessor().WithIssue(mlpsim.ConfigD).WithRunahead(), opts)
	if rae.MLP() <= base.MLP() {
		t.Fatalf("RAE %.3f not above baseline %.3f", rae.MLP(), base.MLP())
	}
}

func TestFacadePerfectBranchPrediction(t *testing.T) {
	opts := mlpsim.Options{Warmup: 100_000, Measure: 300_000}
	popts := opts
	popts.PerfectBranchPrediction = true
	base := mlpsim.Simulate(mlpsim.Database(3), mlpsim.DefaultProcessor(), opts)
	perf := mlpsim.Simulate(mlpsim.Database(3), mlpsim.DefaultProcessor(), popts)
	if perf.MLP()+0.03 < base.MLP() {
		t.Fatalf("perfect BP lowered MLP: %.3f vs %.3f", perf.MLP(), base.MLP())
	}
}

func TestFacadeCycleSimulate(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level run")
	}
	opts := mlpsim.Options{Warmup: 150_000, Measure: 300_000}
	res := mlpsim.CycleSimulate(mlpsim.Database(4), mlpsim.DefaultCycleProcessor(500), opts)
	if res.CPI() <= 0 || res.MLP < 1 {
		t.Fatalf("cycle run implausible: %+v", res)
	}
}

func TestFacadeMicroWorkloads(t *testing.T) {
	opts := mlpsim.Options{Warmup: 50_000, Measure: 200_000}
	chase := mlpsim.Simulate(mlpsim.PointerChase(5), mlpsim.DefaultProcessor(), opts)
	stream := mlpsim.Simulate(mlpsim.Stream(5), mlpsim.DefaultProcessor(), opts)
	if chase.MLP() > 1.25 {
		t.Fatalf("pointer chase MLP = %.3f, want ≈ 1 (dependent misses)", chase.MLP())
	}
	if stream.MLP() < chase.MLP()+0.5 {
		t.Fatalf("stream MLP %.3f not well above chase %.3f", stream.MLP(), chase.MLP())
	}
}

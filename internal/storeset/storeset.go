// Package storeset implements a Chrysos & Emer store-set memory
// dependence predictor (ISCA 1998): a Store Set ID Table (SSIT) indexed
// by instruction PC, a Last Fetched Store Table (LFST) indexed by store
// set, and a per-set saturating confidence counter.
//
// The predictor runs during trace annotation, not inside the engine:
// each load is classified once, in program order, against the
// annotator-private ground-truth last-store map, and the resulting
// Outcome is baked into the annotated stream. The epoch-model engine
// then charges recovery or serialization cost per its configured
// disambiguation mode (see core.DisambMode) without re-running the
// predictor — so annotated traces stay cacheable under a pure
// configuration key, exactly like the prefetchers.
package storeset

import "fmt"

// Outcome classifies one load's dependence prediction against ground
// truth. It is stored in the annotated stream as a 2-bit field, so new
// values must stay within [0,3].
type Outcome uint8

const (
	// DepNone: no dependence predicted and none existed.
	DepNone Outcome = iota
	// DepHit: a dependence was predicted and matched the actual producing
	// store — the load waits exactly as the oracle would.
	DepHit
	// DepViolation: the load actually depended on an earlier store that
	// the predictor did not (correctly) identify. Speculative issue would
	// have read stale data; the machine pays a recovery flush.
	DepViolation
	// DepFalse: a dependence was predicted but none existed — the load is
	// needlessly serialized behind the last store.
	DepFalse

	numOutcomes = int(DepFalse) + 1
)

var outcomeNames = [numOutcomes]string{"None", "Hit", "Violation", "False"}

// String names the outcome.
func (o Outcome) String() string {
	if int(o) < numOutcomes {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Config sizes the predictor tables.
type Config struct {
	// SSITSize is the Store Set ID Table entry count (power of two).
	SSITSize int
	// LFSTSize is the Last Fetched Store Table entry count (power of
	// two); it also bounds the store-set ID space and the confidence
	// table.
	LFSTSize int
	// ConfThreshold is the minimum per-set confidence at which a
	// predicted dependence is acted on; 0 predicts on any assigned set.
	ConfThreshold uint8
}

// DefaultConfig returns the Chrysos & Emer paper's sizing: 4K-entry
// SSIT, 1K-entry LFST, predict on any assigned set.
func DefaultConfig() Config {
	return Config{SSITSize: 4096, LFSTSize: 1024}
}

// Validate reports sizing errors.
func (c Config) Validate() error {
	if c.SSITSize <= 0 || c.SSITSize&(c.SSITSize-1) != 0 {
		return fmt.Errorf("storeset: SSIT size %d not a positive power of two", c.SSITSize)
	}
	if c.LFSTSize <= 0 || c.LFSTSize&(c.LFSTSize-1) != 0 {
		return fmt.Errorf("storeset: LFST size %d not a positive power of two", c.LFSTSize)
	}
	return nil
}

// truth table geometry mirrors core.StoreTable: open-addressed, 0.5 max
// load factor, full clear past 64K distinct keys (stale producers
// resolve as retired).
const (
	truthClear = 1 << 16
	truthBits  = 17
	truthSize  = 1 << truthBits
	truthMask  = truthSize - 1
)

// truthTable is the annotator-side oracle: the program-order index and
// PC of the most recent store to each 8-byte-aligned address.
type truthTable struct {
	keys []uint64 // key+1; 0 means empty
	idx  []int64
	pc   []uint64
	used int
}

func (t *truthTable) init() {
	t.keys = make([]uint64, truthSize)
	t.idx = make([]int64, truthSize)
	t.pc = make([]uint64, truthSize)
}

func truthSlot(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> (64 - truthBits) & truthMask
}

func (t *truthTable) put(key uint64, idx int64, pc uint64) {
	k := key + 1
	for i := truthSlot(key); ; i = (i + 1) & truthMask {
		switch t.keys[i] {
		case k:
			t.idx[i], t.pc[i] = idx, pc
			return
		case 0:
			t.keys[i] = k
			t.idx[i], t.pc[i] = idx, pc
			t.used++
			if t.used > truthClear {
				for j := range t.keys {
					t.keys[j] = 0
				}
				t.used = 0
			}
			return
		}
	}
}

func (t *truthTable) get(key uint64) (idx int64, pc uint64, ok bool) {
	k := key + 1
	for i := truthSlot(key); ; i = (i + 1) & truthMask {
		switch t.keys[i] {
		case k:
			return t.idx[i], t.pc[i], true
		case 0:
			return 0, 0, false
		}
	}
}

// Predictor is one store-set predictor instance. It is not safe for
// concurrent use; each annotator owns its own.
type Predictor struct {
	cfg      Config
	ssitMask uint64
	ssit     []int32 // store-set ID per PC slot, -1 when unassigned
	lfst     []int64 // last fetched store index per set, -1 when none
	conf     []uint8 // saturating per-set confidence
	nextSSID uint32
	trained  bool
	truth    truthTable
}

// New builds a predictor; it panics on invalid sizing (configurations
// are produced by code, not end users), matching core.NewEngine.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg:      cfg,
		ssitMask: uint64(cfg.SSITSize) - 1,
		ssit:     make([]int32, cfg.SSITSize),
		lfst:     make([]int64, cfg.LFSTSize),
		conf:     make([]uint8, cfg.LFSTSize),
	}
	for i := range p.ssit {
		p.ssit[i] = -1
	}
	for i := range p.lfst {
		p.lfst[i] = -1
	}
	p.truth.init()
	return p
}

// Config returns the sizing the predictor was built with.
func (p *Predictor) Config() Config { return p.cfg }

// Untrained reports whether the predictor has observed no memory
// operations yet, so a fresh instance of the same Config is equivalent
// (the cache-keyability test, like the prefetchers').
func (p *Predictor) Untrained() bool { return !p.trained }

// slot maps a PC to its SSIT index. PCs are 4-byte aligned; the
// Fibonacci multiply spreads the dense PC footprint across the table.
func (p *Predictor) slot(pc uint64) uint64 {
	return ((pc >> 2) * 0x9E3779B97F4A7C15 >> 17) & p.ssitMask
}

// ObserveStore trains the predictor with store idx at pc writing ea: it
// becomes the ground-truth producer for the address, and the last
// fetched store of its set (if it belongs to one).
func (p *Predictor) ObserveStore(pc, ea uint64, idx int64) {
	p.trained = true
	p.truth.put(ea>>3, idx, pc)
	if id := p.ssit[p.slot(pc)]; id >= 0 {
		p.lfst[id] = idx
	}
}

// ObserveLoad classifies load idx at pc reading ea against ground truth
// and trains the tables: violations merge the load and store into one
// set (the Chrysos & Emer rule) and raise its confidence; false
// dependences decay it.
func (p *Predictor) ObserveLoad(pc, ea uint64, idx int64) Outcome {
	p.trained = true
	prodIdx, prodPC, hasProd := p.truth.get(ea >> 3)
	ls := p.ssit[p.slot(pc)]
	predIdx := int64(-1)
	if ls >= 0 && p.conf[ls] >= p.cfg.ConfThreshold {
		predIdx = p.lfst[ls]
	}
	switch {
	case hasProd && predIdx == prodIdx:
		p.bump(ls)
		return DepHit
	case hasProd:
		p.merge(pc, prodPC, prodIdx)
		return DepViolation
	case predIdx >= 0:
		p.decay(ls)
		return DepFalse
	default:
		return DepNone
	}
}

// merge assigns the violating load and its producing store to one store
// set: the smaller existing ID wins when both have one, a fresh ID is
// allocated round-robin when neither does. The set's LFST entry is
// pointed at the store that caused the violation (the recovery resync)
// and its confidence raised.
func (p *Predictor) merge(loadPC, storePC uint64, storeIdx int64) {
	li, si := p.slot(loadPC), p.slot(storePC)
	ls, ss := p.ssit[li], p.ssit[si]
	var id int32
	switch {
	case ls < 0 && ss < 0:
		id = int32(p.nextSSID) & int32(len(p.lfst)-1)
		p.nextSSID++
	case ls < 0:
		id = ss
	case ss < 0 || ls < ss:
		id = ls
	default:
		id = ss
	}
	p.ssit[li], p.ssit[si] = id, id
	p.lfst[id] = storeIdx
	p.bump(id)
}

func (p *Predictor) bump(id int32) {
	if id >= 0 && p.conf[id] < 0xFF {
		p.conf[id]++
	}
}

func (p *Predictor) decay(id int32) {
	if id >= 0 && p.conf[id] > 0 {
		p.conf[id]--
	}
}

package storeset

import (
	"math/rand"
	"testing"
)

// refPredictor is a map-based reference implementation of the exact
// store-set semantics: same SSIT slot aliasing, same merge rule, same
// confidence behaviour, with the open-addressed ground-truth table
// replaced by a plain map carrying the same clear-at-64K bound.
type refStore struct {
	idx int64
	pc  uint64
}

type refPredictor struct {
	cfg   Config
	ssit  map[uint64]int32
	lfst  map[int32]int64
	conf  map[int32]uint8
	next  uint32
	truth map[uint64]refStore
}

func newRef(cfg Config) *refPredictor {
	return &refPredictor{
		cfg:   cfg,
		ssit:  make(map[uint64]int32),
		lfst:  make(map[int32]int64),
		conf:  make(map[int32]uint8),
		truth: make(map[uint64]refStore),
	}
}

func (r *refPredictor) slot(pc uint64) uint64 {
	return ((pc >> 2) * 0x9E3779B97F4A7C15 >> 17) & (uint64(r.cfg.SSITSize) - 1)
}

func (r *refPredictor) observeStore(pc, ea uint64, idx int64) {
	key := ea >> 3
	_, existed := r.truth[key]
	r.truth[key] = refStore{idx, pc}
	if !existed && len(r.truth) > truthClear {
		r.truth = make(map[uint64]refStore)
	}
	if id, ok := r.ssit[r.slot(pc)]; ok {
		r.lfst[id] = idx
	}
}

func (r *refPredictor) observeLoad(pc, ea uint64, idx int64) Outcome {
	prod, hasProd := r.truth[ea>>3]
	ls, hasSet := r.ssit[r.slot(pc)]
	predIdx := int64(-1)
	if hasSet && r.conf[ls] >= r.cfg.ConfThreshold {
		if v, ok := r.lfst[ls]; ok {
			predIdx = v
		}
	}
	switch {
	case hasProd && predIdx == prod.idx:
		if r.conf[ls] < 0xFF {
			r.conf[ls]++
		}
		return DepHit
	case hasProd:
		li, si := r.slot(pc), r.slot(prod.pc)
		ls, hasL := r.ssit[li]
		ss, hasS := r.ssit[si]
		var id int32
		switch {
		case !hasL && !hasS:
			id = int32(r.next) & int32(r.cfg.LFSTSize-1)
			r.next++
		case !hasL:
			id = ss
		case !hasS || ls < ss:
			id = ls
		default:
			id = ss
		}
		r.ssit[li], r.ssit[si] = id, id
		r.lfst[id] = prod.idx
		if r.conf[id] < 0xFF {
			r.conf[id]++
		}
		return DepViolation
	case predIdx >= 0:
		if r.conf[ls] > 0 {
			r.conf[ls]--
		}
		return DepFalse
	default:
		return DepNone
	}
}

// TestPredictorMatchesMapReferenceRandom drives random load/store
// sequences through the flat predictor and the map reference in
// lock-step across random geometries. PC and address spaces are drawn
// small relative to the tables so that SSIT aliasing, set merging and
// confidence churn all fire constantly.
func TestPredictorMatchesMapReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		cfg := Config{
			SSITSize:      1 << (3 + rng.Intn(8)),
			LFSTSize:      1 << (2 + rng.Intn(6)),
			ConfThreshold: uint8(rng.Intn(4)),
		}
		p := New(cfg)
		ref := newRef(cfg)
		if !p.Untrained() {
			t.Fatal("fresh predictor reports trained")
		}
		pcSpace := uint64(4 * (1 + rng.Intn(cfg.SSITSize)))
		addrSpace := uint64(8 * (4 + rng.Intn(256)))
		for i := int64(0); i < 6000; i++ {
			pc := uint64(rng.Int63()) % pcSpace * 4
			ea := uint64(rng.Int63()) % addrSpace * 8
			if rng.Intn(3) == 0 {
				p.ObserveStore(pc, ea, i)
				ref.observeStore(pc, ea, i)
				continue
			}
			got := p.ObserveLoad(pc, ea, i)
			want := ref.observeLoad(pc, ea, i)
			if got != want {
				t.Fatalf("trial %d (cfg=%+v) op %d pc=%#x ea=%#x: outcome %v, reference %v",
					trial, cfg, i, pc, ea, got, want)
			}
		}
		if p.Untrained() {
			t.Fatal("exercised predictor reports untrained")
		}
	}
}

// TestPredictorLearnsDependence pins the training arc on a single
// store→load pair: first encounter is a violation (nothing predicted),
// every later encounter is a hit — and an unrelated load never pays for
// the pair's store set.
func TestPredictorLearnsDependence(t *testing.T) {
	p := New(DefaultConfig())
	const storePC, loadPC, otherPC = 0x1000, 0x2000, 0x3000
	idx := int64(0)
	p.ObserveStore(storePC, 0x800, idx)
	idx++
	if got := p.ObserveLoad(loadPC, 0x800, idx); got != DepViolation {
		t.Fatalf("first dependent load: %v, want DepViolation", got)
	}
	for round := 0; round < 5; round++ {
		idx++
		p.ObserveStore(storePC, 0x800, idx)
		idx++
		if got := p.ObserveLoad(loadPC, 0x800, idx); got != DepHit {
			t.Fatalf("round %d dependent load: %v, want DepHit", round, got)
		}
		idx++
		if got := p.ObserveLoad(otherPC, 0x9000+uint64(round)*64, idx); got != DepNone {
			t.Fatalf("round %d independent load: %v, want DepNone", round, got)
		}
	}
}

// TestPredictorFalseDependenceDecays pins the confidence decay: once a
// load's set keeps predicting dependences that never materialize, the
// counter decays below the threshold and the set goes quiet.
func TestPredictorFalseDependenceDecays(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConfThreshold = 1
	p := New(cfg)
	const storePC, loadPC = 0x1000, 0x2000
	idx := int64(0)
	// Train the pair: violation, then hits push confidence up to 3.
	p.ObserveStore(storePC, 0x800, idx)
	idx++
	p.ObserveLoad(loadPC, 0x800, idx)
	for i := 0; i < 2; i++ {
		idx++
		p.ObserveStore(storePC, 0x800, idx)
		idx++
		if got := p.ObserveLoad(loadPC, 0x800, idx); got != DepHit {
			t.Fatalf("training hit %d: %v", i, got)
		}
	}
	// Now the load reads addresses the store never wrote: false
	// dependences until confidence decays below the threshold, DepNone
	// after.
	falses := 0
	for i := 0; i < 8; i++ {
		idx++
		got := p.ObserveLoad(loadPC, 0x10000+uint64(i)*64, idx)
		switch got {
		case DepFalse:
			falses++
		case DepNone:
			if falses == 0 {
				t.Fatal("set went quiet before paying any false dependence")
			}
			return
		default:
			t.Fatalf("independent load %d: %v", i, got)
		}
	}
	t.Fatalf("confidence never decayed below threshold (%d false dependences)", falses)
}

// TestConfigValidate rejects non-power-of-two and non-positive sizings.
func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{SSITSize: 0, LFSTSize: 16},
		{SSITSize: 48, LFSTSize: 16},
		{SSITSize: 64, LFSTSize: 0},
		{SSITSize: 64, LFSTSize: 3},
		{SSITSize: -64, LFSTSize: 16},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated", cfg)
		}
	}
}

// FuzzStoreSetUpdate feeds arbitrary operation tapes through the
// SSIT/LFST update path against the map reference: every classification
// must agree and the tables must stay in range.
func FuzzStoreSetUpdate(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x20, 0x81, 0x10, 0x20, 0x02, 0x30, 0x40})
	f.Add([]byte{0x80, 0xFF, 0x00, 0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		cfg := Config{
			SSITSize:      1 << (2 + int(data[0]&0x07)),
			LFSTSize:      1 << (2 + int(data[1]&0x03)),
			ConfThreshold: data[2] & 0x07,
		}
		p := New(cfg)
		ref := newRef(cfg)
		idx := int64(0)
		for i := 3; i+2 < len(data); i += 3 {
			op, b1, b2 := data[i], data[i+1], data[i+2]
			pc := uint64(b1) * 4
			ea := uint64(b2) * 8
			idx++
			if op&0x80 != 0 {
				p.ObserveStore(pc, ea, idx)
				ref.observeStore(pc, ea, idx)
				continue
			}
			got := p.ObserveLoad(pc, ea, idx)
			want := ref.observeLoad(pc, ea, idx)
			if got != want {
				t.Fatalf("op %d pc=%#x ea=%#x: outcome %v, reference %v", i, pc, ea, got, want)
			}
			if int(got) >= numOutcomes {
				t.Fatalf("outcome %d out of range", got)
			}
		}
		for i, id := range p.ssit {
			if id < -1 || int(id) >= cfg.LFSTSize {
				t.Fatalf("ssit[%d]=%d out of range (LFST size %d)", i, id, cfg.LFSTSize)
			}
		}
		for id, last := range p.lfst {
			if last < -1 || last > idx {
				t.Fatalf("lfst[%d]=%d outside observed index range [%d,%d]", id, last, -1, idx)
			}
		}
	})
}

// Package cpi implements the paper's CPI decomposition (§2.2):
//
//	CPI = CPI_perf · (1 − Overlap_CM) + MissRate · MissPenalty / MLP
//
// The first term is the on-chip CPI; the second is the off-chip CPI. The
// model links MLPsim's timing-free MLP numbers back to overall
// performance (Tables 1 and 4, Figures 9 and 11).
package cpi

// Params carries the workload characterization needed by the model.
type Params struct {
	// CPIPerf is the CPI with a perfect furthest on-chip cache, measured
	// by a cycle simulator run with PerfectL2.
	CPIPerf float64
	// OverlapCM is the fractional overlap of compute cycles with off-chip
	// cycles (0..1).
	OverlapCM float64
	// MissRatePer100 is off-chip accesses per 100 instructions.
	MissRatePer100 float64
	// MissPenalty is the off-chip access latency in cycles.
	MissPenalty float64
}

// OnChip returns the on-chip CPI component: CPI_perf · (1 − Overlap_CM).
func (p Params) OnChip() float64 {
	return p.CPIPerf * (1 - p.OverlapCM)
}

// OffChip returns the off-chip CPI component for the given MLP.
func (p Params) OffChip(mlp float64) float64 {
	if mlp <= 0 {
		return 0
	}
	return p.MissRatePer100 / 100 * p.MissPenalty / mlp
}

// Estimate returns the modelled overall CPI for the given MLP.
func (p Params) Estimate(mlp float64) float64 {
	return p.OnChip() + p.OffChip(mlp)
}

// DeriveOverlap solves the model for Overlap_CM given a measured overall
// CPI and MLP: the paper derives Overlap_CM this way from two cycle-
// simulator runs. The result is clamped to [0, 1].
func DeriveOverlap(measuredCPI, cpiPerf, missRatePer100, missPenalty, mlp float64) float64 {
	if cpiPerf <= 0 || mlp <= 0 {
		return 0
	}
	offChip := missRatePer100 / 100 * missPenalty / mlp
	overlap := 1 - (measuredCPI-offChip)/cpiPerf
	if overlap < 0 {
		return 0
	}
	if overlap > 1 {
		return 1
	}
	return overlap
}

// Improvement returns the percentage performance improvement of newCPI
// over baseCPI (positive = faster).
func Improvement(baseCPI, newCPI float64) float64 {
	if newCPI <= 0 {
		return 0
	}
	return 100 * (baseCPI/newCPI - 1)
}

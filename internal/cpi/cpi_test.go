package cpi

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPaperFigure1Worked(t *testing.T) {
	// The Figure 1 example: Cycles=570, Cycles_perf=200, NumMiss=3,
	// MissPenalty=200, Overlap_CM=0.2, MLP=1.463. In per-instruction
	// terms the identity must hold for any instruction count; use 100.
	p := Params{
		CPIPerf:        2.0, // 200 cycles / 100 instructions
		OverlapCM:      0.2,
		MissRatePer100: 3,
		MissPenalty:    200,
	}
	got := p.Estimate(1.463)
	want := 2.0*0.8 + 0.03*200/1.463 // 1.6 + 4.1011... = 5.7011
	if !close(got, want) {
		t.Fatalf("Estimate = %v, want %v", got, want)
	}
	// 570 cycles / 100 instructions = 5.70 CPI.
	if math.Abs(got-5.70) > 0.01 {
		t.Fatalf("Estimate = %v, want ≈ 5.70 (the paper's worked example)", got)
	}
}

func TestComponents(t *testing.T) {
	p := Params{CPIPerf: 1.47, OverlapCM: 0.18, MissRatePer100: 0.84, MissPenalty: 1000}
	if !close(p.OnChip(), 1.47*0.82) {
		t.Fatalf("OnChip = %v", p.OnChip())
	}
	if !close(p.OffChip(1.38), 0.0084*1000/1.38) {
		t.Fatalf("OffChip = %v", p.OffChip(1.38))
	}
	// Table 1's database row at 1000 cycles: CPI ≈ 7.28.
	if got := p.Estimate(1.38); math.Abs(got-7.29) > 0.1 {
		t.Fatalf("database CPI estimate = %v, want ≈ 7.28", got)
	}
	if p.OffChip(0) != 0 {
		t.Fatal("OffChip with zero MLP must be 0")
	}
}

func TestDeriveOverlapRoundTrip(t *testing.T) {
	f := func(rawOverlap, rawMLP float64) bool {
		overlap := math.Mod(math.Abs(rawOverlap), 1)
		mlp := 1 + math.Mod(math.Abs(rawMLP), 4)
		p := Params{CPIPerf: 1.5, OverlapCM: overlap, MissRatePer100: 0.5, MissPenalty: 1000}
		cpi := p.Estimate(mlp)
		got := DeriveOverlap(cpi, p.CPIPerf, p.MissRatePer100, p.MissPenalty, mlp)
		return math.Abs(got-overlap) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveOverlapClamps(t *testing.T) {
	if got := DeriveOverlap(0.1, 1.5, 0.5, 1000, 1.5); got != 1 {
		t.Fatalf("overlap should clamp to 1, got %v", got)
	}
	if got := DeriveOverlap(100, 1.5, 0.5, 1000, 1.5); got != 0 {
		t.Fatalf("overlap should clamp to 0, got %v", got)
	}
	if got := DeriveOverlap(1, 0, 0.5, 1000, 1.5); got != 0 {
		t.Fatal("zero CPIPerf must return 0")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(2, 1); !close(got, 100) {
		t.Fatalf("halving CPI = %v%%, want 100%%", got)
	}
	if got := Improvement(1, 2); !close(got, -50) {
		t.Fatalf("doubling CPI = %v%%, want -50%%", got)
	}
	if got := Improvement(1, 0); got != 0 {
		t.Fatal("zero CPI must return 0")
	}
}

// Doubling MLP halves the off-chip component (the paper's motivating
// lever).
func TestMLPLeverage(t *testing.T) {
	p := Params{CPIPerf: 1.0, OverlapCM: 0, MissRatePer100: 1, MissPenalty: 1000}
	base := p.Estimate(1)   // 1 + 10 = 11
	double := p.Estimate(2) // 1 + 5 = 6
	if !close(base, 11) || !close(double, 6) {
		t.Fatalf("estimates = %v, %v", base, double)
	}
}

package annotate

import (
	"math/rand"
	"testing"

	"mlpsim/internal/mem"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/trace"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

// refPendingSet is the retained map-based reference for the annotator's
// pending-prefetch tracking (the map stored the issue index, but only
// membership was ever consulted).
type refPendingSet map[uint64]int64

func (r refPendingSet) insert(key uint64, idx int64) { r[key] = idx }
func (r refPendingSet) testAndClear(key uint64) bool {
	if _, ok := r[key]; ok {
		delete(r, key)
		return true
	}
	return false
}

// TestPendingTableMatchesMapReferenceRandom drives random insert and
// consume mixes through the open-addressed pending table and the map
// reference, with key spaces tight enough to force collisions,
// backward-shift deletions mid-chain, and several doubling growths.
func TestPendingTableMatchesMapReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		var tab pendingTable
		tab.init()
		ref := refPendingSet{}
		keySpace := 16 << uint(rng.Intn(9)) // up to 4096 > initial capacity: forces growth
		for i := 0; i < 8000; i++ {
			key := uint64(rng.Intn(keySpace))
			if rng.Intn(3) == 0 {
				got, want := tab.testAndClear(key), ref.testAndClear(key)
				if got != want {
					t.Fatalf("trial %d op %d testAndClear(%d) = %v, reference %v", trial, i, key, got, want)
				}
			} else {
				tab.insert(key)
				ref.insert(key, int64(i))
			}
			if tab.len() != len(ref) {
				t.Fatalf("trial %d op %d: len=%d, reference %d", trial, i, tab.len(), len(ref))
			}
		}
		for key := 0; key < keySpace; key++ {
			got, want := tab.testAndClear(uint64(key)), ref.testAndClear(uint64(key))
			if got != want {
				t.Fatalf("trial %d final membership of %d = %v, reference %v", trial, key, got, want)
			}
		}
	}
}

// sliceSourceFor materializes n raw instructions of a workload into an
// allocation-free SliceSource, isolating the annotator's own allocation
// behaviour from the generator's amortized buffer growth.
func sliceSourceFor(t *testing.T, cfg workload.Config, n int64) *trace.SliceSource {
	t.Helper()
	insts := trace.Collect(workload.MustNew(cfg), n)
	if int64(len(insts)) != n {
		t.Fatalf("collected %d instructions, want %d", len(insts), n)
	}
	return trace.NewSliceSource(insts)
}

// TestAnnotatorZeroAllocSteadyState pins the capture fast path at exactly
// zero allocations per instruction once warmed: the TLB, the prefetcher
// issued-line tables, the pending-prefetch table and the per-instruction
// predictor calls must all run allocation free, for both the plain
// default configuration and one exercising every optional engine.
func TestAnnotatorZeroAllocSteadyState(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{}},
		{"prefetchers+vpred", Config{
			IPrefetch: prefetch.NewSequential(4, mem.IFetch),
			DPrefetch: prefetch.NewStride(256, 4),
			Value:     vpred.NewLastValue(256),
		}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			const warm, steady = 100_000, 50_000
			src := sliceSourceFor(t, workload.Presets(1)[0], warm+3*steady)
			a := New(src, tc.cfg)
			a.Warm(warm)

			if allocs := testing.AllocsPerRun(steady, func() {
				if _, ok := a.Next(); !ok {
					t.Fatal("stream ended")
				}
			}); allocs != 0 {
				t.Errorf("Next allocates %.3f objects per instruction, want exactly 0", allocs)
			}

			var block [512]Inst
			if allocs := testing.AllocsPerRun(steady/len(block), func() {
				if a.AnnotateInto(block[:]) != len(block) {
					t.Fatal("stream ended")
				}
			}); allocs != 0 {
				t.Errorf("AnnotateInto allocates %.3f objects per block, want exactly 0", allocs)
			}
		})
	}
}

// TestAnnotateIntoMatchesNext pins the batch API to the iterator: the
// same source annotated block-wise and one-at-a-time must yield identical
// instructions and statistics, across uneven block sizes.
func TestAnnotateIntoMatchesNext(t *testing.T) {
	const n = 60_000
	w := workload.Presets(1)[0]
	cfg := Config{
		IPrefetch: prefetch.NewSequential(4, mem.IFetch),
		DPrefetch: prefetch.NewStride(256, 4),
	}
	cfgB := Config{
		IPrefetch: prefetch.NewSequential(4, mem.IFetch),
		DPrefetch: prefetch.NewStride(256, 4),
	}
	one := New(workload.MustNew(w), cfg)
	batch := New(workload.MustNew(w), cfgB)

	buf := make([]Inst, 1+997) // prime-sized blocks so boundaries drift
	var got int64
	for got < n {
		want := int64(len(buf))
		if n-got < want {
			want = n - got
		}
		k := batch.AnnotateInto(buf[:want])
		for i := 0; i < k; i++ {
			ref, ok := one.Next()
			if !ok {
				t.Fatal("reference stream ended early")
			}
			if buf[i] != ref {
				t.Fatalf("instruction %d: batch %+v != iterator %+v", got+int64(i), buf[i], ref)
			}
		}
		if int64(k) != want {
			t.Fatalf("AnnotateInto returned %d, want %d", k, want)
		}
		got += int64(k)
	}
	if batch.Stats() != one.Stats() {
		t.Fatalf("stats diverged: batch %+v, iterator %+v", batch.Stats(), one.Stats())
	}
	if batch.Position() != one.Position() {
		t.Fatalf("position diverged: %d vs %d", batch.Position(), one.Position())
	}
}

package annotate

import (
	"testing"

	"mlpsim/internal/bpred"
	"mlpsim/internal/isa"
	"mlpsim/internal/mem"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/trace"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

// seq builds a tiny hand-written trace.
func seq(insts ...isa.Inst) trace.Source { return trace.NewSliceSource(insts) }

func TestColdLoadIsDMiss(t *testing.T) {
	a := New(seq(
		isa.Inst{PC: 0x1000, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 2, EA: 0xabc0000},
		isa.Inst{PC: 0x1004, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 3, EA: 0xabc0000},
	), Config{})
	first, _ := a.Next()
	if !first.DMiss {
		t.Fatal("cold load must be a Dmiss")
	}
	second, _ := a.Next()
	if second.DMiss {
		t.Fatal("warm load must not be a Dmiss")
	}
	s := a.Stats()
	if s.DMisses != 1 || s.Instructions != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestIMissMarkedOncePerLine(t *testing.T) {
	// 17 sequential instructions cross one line boundary (64B = 16
	// instructions); the first instruction of each line gets the access.
	var insts []isa.Inst
	for i := 0; i < 17; i++ {
		insts = append(insts, isa.Inst{PC: 0x40000000 + uint64(i)*4, Class: isa.ALU,
			Src1: 16, Src2: 17, Dst: 18})
	}
	a := New(seq(insts...), Config{})
	var imisses int
	var idxs []int64
	for {
		in, ok := a.Next()
		if !ok {
			break
		}
		if in.IMiss {
			imisses++
			idxs = append(idxs, in.Index)
		}
	}
	if imisses != 2 {
		t.Fatalf("imisses = %d (%v), want 2", imisses, idxs)
	}
	if idxs[0] != 0 || idxs[1] != 16 {
		t.Fatalf("imiss indexes = %v, want [0 16]", idxs)
	}
}

func TestPrefetchMakesLoadHit(t *testing.T) {
	a := New(seq(
		isa.Inst{PC: 0x1000, Class: isa.Prefetch, Src1: 1, Src2: isa.NoReg, Dst: isa.NoReg, EA: 0xdef0000},
		isa.Inst{PC: 0x1004, Class: isa.ALU, Src1: 16, Src2: 17, Dst: 18},
		isa.Inst{PC: 0x1008, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 2, EA: 0xdef0008},
	), Config{})
	pf, _ := a.Next()
	if !pf.PMiss {
		t.Fatal("cold prefetch must be a Pmiss")
	}
	a.Next()
	ld, _ := a.Next()
	if ld.DMiss {
		t.Fatal("prefetched load must hit")
	}
	s := a.Stats()
	if s.PrefetchUsed != 1 || s.Prefetches != 1 {
		t.Fatalf("prefetch stats: %+v", s)
	}
}

func TestStoreMissesDoNotCount(t *testing.T) {
	a := New(seq(
		isa.Inst{PC: 0x1000, Class: isa.Store, Src1: 1, Src2: 2, Dst: isa.NoReg, EA: 0xcafe000},
		isa.Inst{PC: 0x1004, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 2, EA: 0xcafe000},
	), Config{})
	st, _ := a.Next()
	if st.OffChip() && st.DMiss {
		t.Fatal("store miss must not be a Dmiss")
	}
	ld, _ := a.Next()
	if ld.DMiss {
		t.Fatal("load after write-allocating store must hit")
	}
	// Only the instruction fetch of the test's first line goes off-chip;
	// the store's data miss must be invisible.
	if s := a.Stats(); s.DMisses != 0 || s.PMisses != 0 {
		t.Fatalf("data off-chip counts = %d/%d, want 0/0 (stores excluded)", s.DMisses, s.PMisses)
	}
}

func TestMispredictAnnotation(t *testing.T) {
	br := isa.Inst{PC: 0x1000, Class: isa.Branch, Src1: 16, Src2: isa.NoReg, Dst: isa.NoReg,
		Taken: true, Target: 0x1004}
	a := New(seq(br, br, br), Config{Branch: bpred.AlwaysWrong{}})
	for i := 0; i < 3; i++ {
		in, _ := a.Next()
		if !in.Mispred {
			t.Fatalf("branch %d not marked mispredicted", i)
		}
	}
	if a.Stats().Mispredicts != 3 || a.Stats().Branches != 3 {
		t.Fatalf("stats: %+v", a.Stats())
	}

	a = New(seq(br, br, br), Config{Branch: bpred.Perfect{}})
	for i := 0; i < 3; i++ {
		if in, _ := a.Next(); in.Mispred {
			t.Fatal("perfect predictor marked a mispredict")
		}
	}
}

func TestValuePredictionOnlyForMissingLoads(t *testing.T) {
	hot := isa.Inst{PC: 0x1000, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 2,
		EA: 0x111000, Value: 7}
	// Four cold loads at the same PC with the same value but distinct
	// lines: the first three build confidence, the fourth predicts.
	colds := make([]isa.Inst, 4)
	for i := range colds {
		colds[i] = isa.Inst{PC: 0x2000, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 2,
			EA: 0x7000000 + uint64(i)*0x100000, Value: 9}
	}
	a := New(seq(hot, hot, colds[0], colds[1], colds[2], colds[3]), Config{Value: vpred.NewLastValue(256)})
	a.Next() // hot: DMiss (cold caches) — consumed below
	a.Next()
	c1, _ := a.Next()
	if c1.VPOutcome != vpred.NoPredict {
		t.Fatalf("first missing load VP = %v, want NoPredict", c1.VPOutcome)
	}
	a.Next()
	a.Next()
	c4, _ := a.Next()
	if c4.VPOutcome != vpred.Correct {
		t.Fatalf("fourth missing load VP = %v, want Correct (confidence built)", c4.VPOutcome)
	}
	// Only the DMiss loads trained the predictor: total == number of
	// DMisses, not number of loads.
	vs := a.Stats().VP
	if total := vs.Total(); total != a.Stats().DMisses {
		t.Fatalf("VP observations %d != DMisses %d", total, a.Stats().DMisses)
	}
}

func TestWarmResetsStatsButKeepsState(t *testing.T) {
	g := workload.MustNew(workload.Database(23))
	a := New(g, Config{})
	if n := a.Warm(50000); n != 50000 {
		t.Fatalf("warmed %d", n)
	}
	if a.Stats().Instructions != 0 {
		t.Fatal("Warm did not reset stats")
	}
	// Measured segment sees a warmed L2: hot lines hit.
	a.Collect(50000)
	s := a.Stats()
	if s.Instructions != 50000 {
		t.Fatalf("measured %d", s.Instructions)
	}
	if s.OffChip == 0 {
		t.Fatal("database workload must have off-chip accesses")
	}
}

func TestDefaultConfigFillsIn(t *testing.T) {
	a := New(seq(), Config{})
	if a.Hierarchy().Config().L2.SizeBytes != 2<<20 {
		t.Fatal("default hierarchy not applied")
	}
	if _, ok := a.Next(); ok {
		t.Fatal("empty source must end immediately")
	}
}

func TestSmallerL2RaisesMissRate(t *testing.T) {
	run := func(l2 int) float64 {
		g := workload.MustNew(workload.Database(31))
		a := New(g, Config{Hierarchy: mem.DefaultHierarchy().WithL2Size(l2)})
		a.Warm(200000)
		a.Collect(500000)
		return a.Stats().MissRatePer100()
	}
	small := run(1 << 20)
	big := run(8 << 20)
	if big >= small {
		t.Fatalf("8MB L2 miss rate %.3f not below 1MB %.3f", big, small)
	}
}

func TestHardwareIPrefetcherCoversSequentialCode(t *testing.T) {
	// 64 sequential instructions over a cold region: without prefetching
	// every line (16 instructions) misses; with a depth-4 sequential
	// prefetcher only the first line does.
	mk := func() []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < 64; i++ {
			insts = append(insts, isa.Inst{PC: 0x40000000 + uint64(i)*4,
				Class: isa.ALU, Src1: 16, Src2: 17, Dst: 18})
		}
		return insts
	}
	plain := New(seq(mk()...), Config{})
	var baseMisses int
	for {
		in, ok := plain.Next()
		if !ok {
			break
		}
		if in.IMiss {
			baseMisses++
		}
	}
	if baseMisses != 4 {
		t.Fatalf("baseline I-misses = %d, want 4", baseMisses)
	}

	pf := prefetch.NewSequential(4, mem.IFetch)
	covered := New(seq(mk()...), Config{IPrefetch: pf})
	var pfMisses int
	for {
		in, ok := covered.Next()
		if !ok {
			break
		}
		if in.IMiss {
			pfMisses++
		}
	}
	if pfMisses != 1 {
		t.Fatalf("prefetched I-misses = %d, want 1 (only the first line)", pfMisses)
	}
	if pf.Stats().Useful == 0 {
		t.Fatal("prefetcher reported no useful lines")
	}
}

func TestHardwareDPrefetcherCoversStrides(t *testing.T) {
	// One load PC walking a 256-byte stride over cold data.
	var insts []isa.Inst
	for i := 0; i < 32; i++ {
		insts = append(insts, isa.Inst{PC: 0x1000, Class: isa.Load,
			Src1: 1, Src2: isa.NoReg, Dst: 2, EA: 0x50000000 + uint64(i)*256})
	}
	plain := New(seq(insts...), Config{})
	var base int
	for {
		in, ok := plain.Next()
		if !ok {
			break
		}
		if in.DMiss {
			base++
		}
	}
	covered := New(seq(insts...), Config{DPrefetch: prefetch.NewStride(256, 4)})
	var withPf int
	for {
		in, ok := covered.Next()
		if !ok {
			break
		}
		if in.DMiss {
			withPf++
		}
	}
	if base != 32 {
		t.Fatalf("baseline D-misses = %d, want 32", base)
	}
	if withPf > base/3 {
		t.Fatalf("stride prefetcher left %d of %d misses", withPf, base)
	}
}

// Package annotate performs the functional first pass over a trace: it
// runs every instruction through the cache hierarchy and the branch
// predictor in program order and marks the events the epoch model and the
// cycle simulator consume — off-chip data misses (Dmiss), off-chip useful
// prefetches (Pmiss), off-chip instruction fetches (Imiss) and branch
// mispredictions. It also classifies missing-load value predictability
// (Table 6).
//
// Running classification once, in trace order, keeps the miss stream
// identical across simulators so that MLPsim and the cycle-accurate
// simulator disagree only about *timing*, exactly as in the paper's
// validation experiment (Table 3).
package annotate

import (
	"mlpsim/internal/bpred"
	"mlpsim/internal/isa"
	"mlpsim/internal/mem"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/storeset"
	"mlpsim/internal/trace"
	"mlpsim/internal/vpred"
)

// Inst is one dynamic instruction with its microarchitectural events.
type Inst struct {
	isa.Inst
	// Index is the 0-based position in the dynamic instruction stream.
	Index int64
	// DMiss marks a load/atomic whose data access goes off-chip.
	DMiss bool
	// PMiss marks a software prefetch whose access goes off-chip.
	PMiss bool
	// IMiss marks an instruction whose fetch goes off-chip (set on the
	// first instruction of the missing line).
	IMiss bool
	// SMiss marks a store whose write-allocate access goes off-chip.
	// Store misses are invisible to MLP with infinite store buffers (the
	// paper's baseline assumption) but drive the store-MLP extension.
	SMiss bool
	// Mispred marks a mispredicted branch.
	Mispred bool
	// VPOutcome is the value-prediction outcome for DMiss loads (NoPredict
	// when value prediction is disabled or the instruction is not a
	// missing load).
	VPOutcome vpred.Outcome
	// Dep is the store-set dependence-prediction outcome for loads and
	// atomics (DepNone when no predictor is configured or the
	// instruction does not read memory).
	Dep storeset.Outcome
	// Line is the L2 line address of the data access (memory instructions
	// only); off-chip accesses to the same line in one epoch merge.
	Line uint64
	// ILine is the L2 line address of the instruction's fetch.
	ILine uint64
}

// OffChip reports whether the instruction initiates any off-chip access.
func (in *Inst) OffChip() bool { return in.DMiss || in.PMiss || in.IMiss }

// Config selects the hierarchy and predictors used for annotation.
type Config struct {
	// Hierarchy is the cache configuration; the zero value selects the
	// paper's default hierarchy.
	Hierarchy mem.HierarchyConfig
	// Branch is the branch predictor; nil selects the default gshare.
	// Use bpred.Perfect{} for the limit study's perfect prediction.
	Branch bpred.Predictor
	// Value is the missing-load value predictor; nil disables value
	// prediction (all outcomes NoPredict). Use vpred.Perfect{} for the
	// limit study.
	Value vpred.Predictor
	// IPrefetch, when non-nil, is a hardware sequential instruction
	// prefetcher (the §5.6 extension): lines it covers never become
	// I-misses.
	IPrefetch *prefetch.Sequential
	// DPrefetch, when non-nil, is a hardware stride data prefetcher:
	// loads whose lines it covers never become D-misses.
	DPrefetch *prefetch.Stride
	// StoreSets, when non-nil, is a store-set memory dependence
	// predictor: every load/atomic is classified against the actual
	// producing store and the Outcome recorded in Inst.Dep for the
	// engine's disambiguation modes.
	StoreSets *storeset.Predictor
}

// Stats summarizes the annotated stream since the last ResetStats.
type Stats struct {
	Instructions uint64
	DMisses      uint64
	PMisses      uint64
	IMisses      uint64
	OffChip      uint64 // DMisses + PMisses + IMisses
	SMisses      uint64 // off-chip store misses (not in OffChip)
	Branches     uint64
	Mispredicts  uint64
	Prefetches   uint64 // prefetch instructions seen
	PrefetchUsed uint64 // off-chip prefetches whose line was later demanded
	VP           vpred.Stats
}

// MissRatePer100 returns off-chip accesses per 100 instructions — the
// paper's "L2 Miss Rate (per 100 insts)" of Table 1.
func (s Stats) MissRatePer100() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 100 * float64(s.OffChip) / float64(s.Instructions)
}

// Annotator wraps a trace source and yields annotated instructions.
type Annotator struct {
	src trace.Source
	h   *mem.Hierarchy
	bp  bpred.Predictor
	vp  vpred.Predictor

	idx       int64
	prevILine uint64
	haveILine bool
	stats     Stats

	ipf *prefetch.Sequential
	dpf *prefetch.Stride
	ss  *storeset.Predictor

	// pendingPrefetch is the set of off-chip-prefetched lines awaiting a
	// demand access (which marks them useful).
	pendingPrefetch pendingTable

	// raw is the in-flight source instruction. It lives on the annotator
	// rather than the stack so the pointer handed to the branch and value
	// predictors does not force a per-instruction heap escape.
	raw isa.Inst
}

// New builds an annotator over src.
func New(src trace.Source, cfg Config) *Annotator {
	if cfg.Hierarchy.L2.SizeBytes == 0 {
		cfg.Hierarchy = mem.DefaultHierarchy()
	}
	bp := cfg.Branch
	if bp == nil {
		bp = bpred.NewGshare(bpred.DefaultGshare())
	}
	vp := cfg.Value
	if vp == nil {
		vp = vpred.None{}
	}
	a := &Annotator{
		src: src,
		h:   mem.NewHierarchy(cfg.Hierarchy),
		bp:  bp,
		vp:  vp,
		ipf: cfg.IPrefetch,
		dpf: cfg.DPrefetch,
		ss:  cfg.StoreSets,
	}
	a.pendingPrefetch.init()
	return a
}

// Next implements a trace.Source-like iterator over annotated
// instructions.
func (a *Annotator) Next() (Inst, bool) {
	var out Inst
	ok := a.annotateOne(&out)
	return out, ok
}

// AnnotateInto fills dst with the next annotated instructions, writing
// them in place, and returns the count delivered (short only at stream
// end). Batch consumers like the columnar capture use it to pull blocks
// instead of paying one call and one Inst copy per instruction.
func (a *Annotator) AnnotateInto(dst []Inst) int {
	n := 0
	for n < len(dst) && a.annotateOne(&dst[n]) {
		n++
	}
	return n
}

// annotateOne runs one instruction through the hierarchy and predictors,
// overwriting every field of *out. It is the whole-stream hot path and
// allocates nothing.
func (a *Annotator) annotateOne(out *Inst) bool {
	raw := &a.raw
	var ok bool
	if *raw, ok = a.src.Next(); !ok {
		return false
	}
	*out = Inst{Inst: *raw, Index: a.idx}
	a.idx++
	a.stats.Instructions++

	// Instruction fetch: one hierarchy access per new line. A hardware
	// instruction prefetcher runs behind the demand stream and covers
	// upcoming sequential lines.
	out.ILine = a.h.LineAddr(raw.PC)
	if !a.haveILine || out.ILine != a.prevILine {
		if a.h.Access(mem.IFetch, raw.PC) {
			out.IMiss = true
			a.stats.IMisses++
		}
		if a.ipf != nil {
			a.ipf.OnAccess(a.h, raw.PC)
		}
		a.prevILine = out.ILine
		a.haveILine = true
	}

	switch {
	case raw.Class == isa.Prefetch:
		out.Line = a.h.LineAddr(raw.EA)
		a.stats.Prefetches++
		if a.h.Access(mem.DRead, raw.EA) {
			out.PMiss = true
			a.stats.PMisses++
			a.pendingPrefetch.insert(out.Line)
		}
	case raw.Class.IsMemRead():
		out.Line = a.h.LineAddr(raw.EA)
		if a.h.Access(mem.DRead, raw.EA) {
			out.DMiss = true
			a.stats.DMisses++
			out.VPOutcome = vpred.Observe(a.vp, raw)
			a.stats.VP.Add(out.VPOutcome)
		}
		if a.dpf != nil && raw.Class == isa.Load {
			a.dpf.OnLoad(a.h, raw.PC, raw.EA)
		}
		if a.ss != nil {
			out.Dep = a.ss.ObserveLoad(raw.PC, raw.EA, out.Index)
			if raw.Class.IsMemWrite() { // CASA/LDSTUB read-modify-write
				a.ss.ObserveStore(raw.PC, raw.EA, out.Index)
			}
		}
		a.consumePrefetch(out.Line)
	case raw.Class == isa.Store:
		out.Line = a.h.LineAddr(raw.EA)
		// Stores allocate (write-allocate) but never count toward MLP:
		// with infinite store buffers their misses are invisible. The
		// SMiss flag feeds the finite-store-buffer extension.
		if a.h.Access(mem.DWrite, raw.EA) {
			out.SMiss = true
			a.stats.SMisses++
		}
		if a.ss != nil {
			a.ss.ObserveStore(raw.PC, raw.EA, out.Index)
		}
		a.consumePrefetch(out.Line)
	case raw.Class == isa.Branch:
		a.stats.Branches++
		if bpred.Mispredicted(a.bp, raw) {
			out.Mispred = true
			a.stats.Mispredicts++
		}
	}
	return true
}

// consumePrefetch marks a pending prefetched line as used.
func (a *Annotator) consumePrefetch(line uint64) {
	if a.pendingPrefetch.len() == 0 {
		return
	}
	if a.pendingPrefetch.testAndClear(line) {
		a.stats.PrefetchUsed++
	}
}

// Stats returns the counters accumulated since the last ResetStats.
func (a *Annotator) Stats() Stats {
	s := a.stats
	s.OffChip = s.DMisses + s.PMisses + s.IMisses
	return s
}

// Hierarchy exposes the underlying cache hierarchy (for its detailed
// statistics).
func (a *Annotator) Hierarchy() *mem.Hierarchy { return a.h }

// IPrefetch exposes the hardware instruction prefetcher (nil when none is
// configured). The annotated-trace capture reads its statistics so cached
// replays can report them without re-running the prefetcher.
func (a *Annotator) IPrefetch() *prefetch.Sequential { return a.ipf }

// DPrefetch exposes the hardware data prefetcher (nil when none is
// configured).
func (a *Annotator) DPrefetch() *prefetch.Stride { return a.dpf }

// Position returns the dynamic index of the next instruction the
// annotator will yield — the number of instructions consumed since New.
// Segmented captures use it to validate segment boundaries: an annotator
// warmed over the prefix [0, k) is in exactly the state a monolithic
// pass has after k instructions (generation is deterministic and
// ResetStats preserves all training state), so Position is the resume
// point.
func (a *Annotator) Position() int64 { return a.idx }

// ResetStats zeroes the statistics while preserving all training and
// cache state: call it at the end of the warm-up window.
func (a *Annotator) ResetStats() {
	a.stats = Stats{}
	a.h.ResetStats()
}

// Warm consumes n instructions (training caches and predictors), then
// resets statistics. It returns the number actually consumed.
func (a *Annotator) Warm(n int64) int64 {
	var i int64
	for i = 0; i < n; i++ {
		if _, ok := a.Next(); !ok {
			break
		}
	}
	a.ResetStats()
	return i
}

// Collect drains up to max annotated instructions (the whole stream when
// max < 0). The result is sized from max up front instead of growing from
// zero capacity append by append.
func (a *Annotator) Collect(max int64) []Inst {
	if max >= 0 {
		out := make([]Inst, max)
		return out[:a.AnnotateInto(out)]
	}
	var out []Inst
	for {
		n := len(out)
		out = append(out[:n], make([]Inst, 4096)...)
		got := a.AnnotateInto(out[n:])
		out = out[:n+got]
		if got < 4096 {
			return out
		}
	}
}

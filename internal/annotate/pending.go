package annotate

// pendingTable is an open-addressed, linear-probing set of line addresses
// with pending off-chip prefetches, replacing the pendingPrefetch
// `map[uint64]int64` on the annotation hot path (the stored issue index
// was never read back, so a set carries the same information). The load
// factor is bounded at 0.5: an insert crossing it doubles the table, so
// membership — and therefore the PrefetchUsed statistic — is bit-for-bit
// identical to the unbounded map it replaced
// (TestPendingTableMatchesMapReferenceRandom pins it). Growth stops once
// the table covers the workload's outstanding-prefetch footprint, after
// which insert/testAndClear allocate nothing.
type pendingTable struct {
	// keys holds line+1 so the zero value means an empty slot. Lines are
	// EA>>lineShift, so line+1 cannot wrap.
	keys      []uint64
	mask      uint64
	hashShift uint
	used      int
}

const pendingInitBits = 10

func (t *pendingTable) init() {
	t.keys = make([]uint64, 1<<pendingInitBits)
	t.mask = 1<<pendingInitBits - 1
	t.hashShift = 64 - pendingInitBits
}

func (t *pendingTable) slot(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> t.hashShift & t.mask
}

func (t *pendingTable) len() int { return t.used }

// insert adds key to the set (a no-op when present), doubling the table
// when the load factor would cross 0.5.
func (t *pendingTable) insert(key uint64) {
	k := key + 1
	i := t.slot(key)
	for t.keys[i] != 0 {
		if t.keys[i] == k {
			return
		}
		i = (i + 1) & t.mask
	}
	t.keys[i] = k
	t.used++
	if uint64(t.used) > (t.mask+1)/2 {
		t.grow()
	}
}

// testAndClear reports whether key is resident, removing it if so.
func (t *pendingTable) testAndClear(key uint64) bool {
	k := key + 1
	i := t.slot(key)
	for t.keys[i] != 0 {
		if t.keys[i] == k {
			t.deleteSlot(i)
			t.used--
			return true
		}
		i = (i + 1) & t.mask
	}
	return false
}

// deleteSlot empties slot i and backward-shifts the tail of its probe
// chain so later lookups never hit a false empty.
func (t *pendingTable) deleteSlot(i uint64) {
	j := i
	for {
		t.keys[i] = 0
		for {
			j = (j + 1) & t.mask
			if t.keys[j] == 0 {
				return
			}
			// Move j's key into the hole unless its home slot lies
			// cyclically within (i, j].
			h := t.slot(t.keys[j] - 1)
			if (j > i && (h <= i || h > j)) || (j < i && h <= i && h > j) {
				break
			}
		}
		t.keys[i] = t.keys[j]
		i = j
	}
}

func (t *pendingTable) grow() {
	old := t.keys
	size := 2 * uint64(len(old))
	t.keys = make([]uint64, size)
	t.mask = size - 1
	t.hashShift--
	for _, k := range old {
		if k == 0 {
			continue
		}
		i := t.slot(k - 1)
		for t.keys[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.keys[i] = k
	}
}

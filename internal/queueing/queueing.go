// Package queueing models a finite-bandwidth memory system fed by the
// epoch model's access bursts — the use case §4.1 names: "MLPsim can also
// be used as a simple processor model that accurately estimates the
// clustering of off-chip accesses in simulation-based queueing models of
// memory and system interconnects."
//
// The memory system has C independent channels, each serving one line
// fetch in S cycles. An epoch's k overlapped accesses arrive together and
// spread across the channels, so the epoch's memory time is
// ceil(k/C)·S instead of the fixed MissPenalty the unlimited-bandwidth
// CPI model assumes. High MLP is therefore only as good as the bandwidth
// that backs it: the sweep over C shows where a workload's clustering
// saturates its memory system.
package queueing

import (
	"fmt"

	"mlpsim/internal/core"
)

// Model is a C-channel deterministic-service memory system.
type Model struct {
	// Channels is the number of independent memory channels.
	Channels int
	// ServiceCycles is the per-line occupancy of one channel. The line's
	// total latency is LeadCycles + queueing + ServiceCycles; LeadCycles
	// covers the fixed interconnect traversal.
	ServiceCycles int
	// LeadCycles is the unloaded latency component.
	LeadCycles int
}

// Validate reports configuration errors.
func (m Model) Validate() error {
	if m.Channels <= 0 {
		return fmt.Errorf("queueing: channels %d must be positive", m.Channels)
	}
	if m.ServiceCycles <= 0 {
		return fmt.Errorf("queueing: service %d must be positive", m.ServiceCycles)
	}
	if m.LeadCycles < 0 {
		return fmt.Errorf("queueing: negative lead %d", m.LeadCycles)
	}
	return nil
}

// EpochCycles returns the memory time of an epoch with k simultaneous
// accesses: the channels drain ceil(k/C) rounds of service after the
// fixed lead time.
func (m Model) EpochCycles(k int) int64 {
	if k <= 0 {
		return 0
	}
	rounds := (k + m.Channels - 1) / m.Channels
	return int64(m.LeadCycles) + int64(rounds)*int64(m.ServiceCycles)
}

// Collector accumulates epoch burst sizes from an engine run (attach
// Collector.OnEpoch to core.Config.OnEpoch).
type Collector struct {
	// Sizes[k] counts epochs with k accesses (the last bucket aggregates
	// larger bursts).
	Sizes []uint64
	total uint64
}

// NewCollector builds a collector with burst-size buckets up to max.
func NewCollector(max int) *Collector {
	if max < 1 {
		panic("queueing: collector max must be >= 1")
	}
	return &Collector{Sizes: make([]uint64, max+1)}
}

// OnEpoch records one epoch.
func (c *Collector) OnEpoch(ep core.Epoch) {
	k := ep.Accesses
	if k >= len(c.Sizes) {
		k = len(c.Sizes) - 1
	}
	c.Sizes[k]++
	c.total++
}

// Epochs returns the number of recorded epochs.
func (c *Collector) Epochs() uint64 { return c.total }

// MeanEpochCycles returns the average memory time per epoch under the
// model — the quantity that replaces MissPenalty/MLP in the CPI equation
// when bandwidth is finite.
func (c *Collector) MeanEpochCycles(m Model) float64 {
	if c.total == 0 {
		return 0
	}
	var sum int64
	for k, n := range c.Sizes {
		sum += int64(n) * m.EpochCycles(k)
	}
	return float64(sum) / float64(c.total)
}

// OffChipCPI returns the off-chip CPI component under the model: total
// epoch memory time divided by the instruction count.
func (c *Collector) OffChipCPI(m Model, instructions int64) float64 {
	if instructions <= 0 {
		return 0
	}
	var sum int64
	for k, n := range c.Sizes {
		sum += int64(n) * m.EpochCycles(k)
	}
	return float64(sum) / float64(instructions)
}

// EffectivePenaltyInflation returns how much longer the average epoch
// takes under the model than with unlimited bandwidth (C = ∞, where every
// epoch costs LeadCycles + ServiceCycles).
func (c *Collector) EffectivePenaltyInflation(m Model) float64 {
	base := float64(m.LeadCycles + m.ServiceCycles)
	if base == 0 || c.total == 0 {
		return 1
	}
	return c.MeanEpochCycles(m) / base
}

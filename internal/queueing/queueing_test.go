package queueing

import (
	"math"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/workload"
)

func TestEpochCycles(t *testing.T) {
	m := Model{Channels: 2, ServiceCycles: 100, LeadCycles: 50}
	cases := map[int]int64{
		0: 0,
		1: 150, // one round
		2: 150,
		3: 250, // two rounds
		4: 250,
		5: 350,
	}
	for k, want := range cases {
		if got := m.EpochCycles(k); got != want {
			t.Errorf("EpochCycles(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestModelValidation(t *testing.T) {
	bad := []Model{
		{Channels: 0, ServiceCycles: 1},
		{Channels: 1, ServiceCycles: 0},
		{Channels: 1, ServiceCycles: 1, LeadCycles: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
	if err := (Model{Channels: 4, ServiceCycles: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorAccounting(t *testing.T) {
	c := NewCollector(8)
	for _, k := range []int{1, 1, 4, 12} { // 12 clamps into the top bucket
		c.OnEpoch(core.Epoch{Accesses: k})
	}
	if c.Epochs() != 4 {
		t.Fatalf("epochs = %d", c.Epochs())
	}
	if c.Sizes[1] != 2 || c.Sizes[4] != 1 || c.Sizes[8] != 1 {
		t.Fatalf("sizes = %v", c.Sizes)
	}
	m := Model{Channels: 4, ServiceCycles: 100, LeadCycles: 0}
	// epochs cost: 100, 100, 100, ceil(8/4)*100=200 → mean 125.
	if got := c.MeanEpochCycles(m); got != 125 {
		t.Fatalf("mean epoch cycles = %v, want 125", got)
	}
	if got := c.OffChipCPI(m, 1000); got != 0.5 {
		t.Fatalf("off-chip CPI = %v, want 0.5", got)
	}
	if got := c.EffectivePenaltyInflation(m); got != 1.25 {
		t.Fatalf("inflation = %v, want 1.25", got)
	}
}

func TestMoreChannelsNeverSlower(t *testing.T) {
	c := NewCollector(32)
	g := workload.MustNew(workload.Database(3))
	a := annotate.New(g, annotate.Config{})
	a.Warm(150_000)
	cfg := core.Default().WithIssue(core.ConfigD).WithRunahead()
	cfg.MaxInstructions = 400_000
	cfg.OnEpoch = c.OnEpoch
	res := core.NewEngine(a, cfg).Run()
	if c.Epochs() != res.Epochs {
		t.Fatalf("collector saw %d epochs, engine %d", c.Epochs(), res.Epochs)
	}
	prev := math.Inf(1)
	for _, channels := range []int{1, 2, 4, 8, 16} {
		m := Model{Channels: channels, ServiceCycles: 120, LeadCycles: 880}
		cpi := c.OffChipCPI(m, res.Instructions)
		if cpi > prev+1e-12 {
			t.Fatalf("off-chip CPI rose with channels: %.4f -> %.4f at %d", prev, cpi, channels)
		}
		prev = cpi
	}
	// One channel must be strictly worse than sixteen for a clustered,
	// runahead-boosted workload.
	one := c.OffChipCPI(Model{Channels: 1, ServiceCycles: 120, LeadCycles: 880}, res.Instructions)
	many := c.OffChipCPI(Model{Channels: 16, ServiceCycles: 120, LeadCycles: 880}, res.Instructions)
	if one <= many*1.02 {
		t.Fatalf("bandwidth made no difference: 1ch %.4f vs 16ch %.4f", one, many)
	}
}

func TestCollectorPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCollector(0) did not panic")
		}
	}()
	NewCollector(0)
}

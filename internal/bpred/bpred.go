// Package bpred models the front-end branch prediction structures from the
// paper's default configuration (§5.1): a 64K-entry gshare direction
// predictor, a 16K-entry branch target buffer and a 16-entry return address
// stack, plus a perfect predictor used by the limit study.
package bpred

import "mlpsim/internal/isa"

// Predictor predicts branch outcomes. Implementations are trained on every
// dynamic branch in trace order.
type Predictor interface {
	// Predict returns the predicted direction and, for taken predictions,
	// whether the target was correctly available (BTB hit). A branch is
	// mispredicted when the direction is wrong or when it is predicted
	// taken without a target.
	Predict(in *isa.Inst) (taken bool, targetKnown bool)
	// Update trains the predictor with the architectural outcome.
	Update(in *isa.Inst)
}

// Mispredicted runs one predict+update cycle and reports whether the
// branch would have been mispredicted. Non-branches are never mispredicted.
func Mispredicted(p Predictor, in *isa.Inst) bool {
	if in.Class != isa.Branch {
		return false
	}
	taken, targetKnown := p.Predict(in)
	p.Update(in)
	if taken != in.Taken {
		return true
	}
	// Correct taken prediction still misfetches without a target.
	return in.Taken && !targetKnown
}

// GshareConfig sizes the gshare predictor and its companion structures.
type GshareConfig struct {
	// Entries is the number of 2-bit counters (power of two).
	Entries int
	// HistoryBits is the global history length folded into the index.
	HistoryBits int
	// BTBEntries is the branch target buffer size (power of two);
	// 0 disables target modelling (targets always known).
	BTBEntries int
	// RASEntries is the return address stack depth. The synthetic traces
	// do not distinguish calls/returns, so the RAS is modelled as extra
	// BTB capacity for a subset of branches; it exists for configuration
	// fidelity.
	RASEntries int
}

// DefaultGshare returns the paper's 64K-entry gshare + 16K BTB + 16 RAS.
func DefaultGshare() GshareConfig {
	return GshareConfig{Entries: 64 << 10, HistoryBits: 14, BTBEntries: 16 << 10, RASEntries: 16}
}

// Gshare is the classic gshare predictor: a table of 2-bit saturating
// counters indexed by PC XOR global history.
type Gshare struct {
	cfg      GshareConfig
	mask     uint64
	histMask uint64
	counters []uint8
	history  uint64

	btbMask uint64
	btbTags []uint64 // tag+1; 0 = invalid
	btbTgt  []uint64

	predicts uint64
	mispred  uint64
}

// NewGshare builds the predictor. Entries and BTBEntries must be powers of
// two; the function panics otherwise (configurations are compile-time
// constants, not user input).
func NewGshare(cfg GshareConfig) *Gshare {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic("bpred: gshare entries must be a positive power of two")
	}
	if cfg.BTBEntries < 0 || (cfg.BTBEntries > 0 && cfg.BTBEntries&(cfg.BTBEntries-1) != 0) {
		panic("bpred: BTB entries must be zero or a power of two")
	}
	if cfg.HistoryBits < 0 || cfg.HistoryBits > 32 {
		panic("bpred: history bits out of range")
	}
	g := &Gshare{
		cfg:      cfg,
		mask:     uint64(cfg.Entries - 1),
		histMask: (1 << uint(cfg.HistoryBits)) - 1,
		counters: make([]uint8, cfg.Entries),
	}
	// Initialize counters to weakly taken: commercial codes are
	// branch-taken biased, and this matches common hardware reset state.
	for i := range g.counters {
		g.counters[i] = 2
	}
	if cfg.BTBEntries > 0 {
		g.btbMask = uint64(cfg.BTBEntries - 1)
		g.btbTags = make([]uint64, cfg.BTBEntries)
		g.btbTgt = make([]uint64, cfg.BTBEntries)
	}
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ (g.history & g.histMask)) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(in *isa.Inst) (bool, bool) {
	taken := g.counters[g.index(in.PC)] >= 2
	targetKnown := true
	if taken && g.btbTags != nil {
		slot := (in.PC >> 2) & g.btbMask
		targetKnown = g.btbTags[slot] == in.PC+1 && g.btbTgt[slot] == in.Target
	}
	return taken, targetKnown
}

// Update implements Predictor.
func (g *Gshare) Update(in *isa.Inst) {
	idx := g.index(in.PC)
	c := g.counters[idx]
	if in.Taken {
		if c < 3 {
			g.counters[idx] = c + 1
		}
	} else if c > 0 {
		g.counters[idx] = c - 1
	}
	g.history = (g.history << 1) & g.histMask
	if in.Taken {
		g.history |= 1
	}
	if in.Taken && g.btbTags != nil {
		slot := (in.PC >> 2) & g.btbMask
		g.btbTags[slot] = in.PC + 1
		g.btbTgt[slot] = in.Target
	}
	g.predicts++
}

// Stats returns (predictions, mispredictions) counted via Observe.
func (g *Gshare) Stats() (predicts, mispredicts uint64) { return g.predicts, g.mispred }

// Config returns the configuration the predictor was built with.
func (g *Gshare) Config() GshareConfig { return g.cfg }

// Untrained reports whether the predictor has never been updated — i.e.
// it is still in its reset state and interchangeable with any other
// freshly constructed Gshare of the same configuration.
func (g *Gshare) Untrained() bool { return g.predicts == 0 }

// Observe is a convenience combining Predict+Update while keeping the
// predictor's own misprediction statistics.
func (g *Gshare) Observe(in *isa.Inst) bool {
	m := Mispredicted(g, in)
	if m {
		g.mispred++
	}
	return m
}

// ResetStats zeroes statistics without dropping training state.
func (g *Gshare) ResetStats() { g.predicts, g.mispred = 0, 0 }

// Perfect is an oracle predictor: never mispredicts. Used by the limit
// study (perfBP) and by tests.
type Perfect struct{}

// Predict implements Predictor.
func (Perfect) Predict(in *isa.Inst) (bool, bool) { return in.Taken, true }

// Update implements Predictor.
func (Perfect) Update(*isa.Inst) {}

// AlwaysWrong mispredicts every conditional branch; it exists for failure
// injection in tests (every branch becomes a potential window terminator).
type AlwaysWrong struct{}

// Predict implements Predictor.
func (AlwaysWrong) Predict(in *isa.Inst) (bool, bool) { return !in.Taken, true }

// Update implements Predictor.
func (AlwaysWrong) Update(*isa.Inst) {}

// Static predicts a fixed direction (classic static predictors).
type Static struct {
	// Taken is the direction predicted for every branch.
	Taken bool
}

// Predict implements Predictor.
func (s Static) Predict(in *isa.Inst) (bool, bool) { return s.Taken, true }

// Update implements Predictor.
func (Static) Update(*isa.Inst) {}

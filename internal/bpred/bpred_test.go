package bpred

import (
	"math/rand"
	"testing"

	"mlpsim/internal/isa"
)

func branch(pc uint64, taken bool, target uint64) isa.Inst {
	return isa.Inst{PC: pc, Class: isa.Branch, Taken: taken, Target: target,
		Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg}
}

func TestGshareLearnsBiasedBranch(t *testing.T) {
	g := NewGshare(GshareConfig{Entries: 1024, HistoryBits: 8, BTBEntries: 256})
	in := branch(0x1000, true, 0x2000)
	var wrong int
	for i := 0; i < 100; i++ {
		if g.Observe(&in) {
			wrong++
		}
	}
	if wrong > 3 {
		t.Fatalf("always-taken branch mispredicted %d/100 times", wrong)
	}
	// Flip direction: it should re-learn within a few updates.
	in.Taken = false
	wrong = 0
	for i := 0; i < 100; i++ {
		if g.Observe(&in) {
			wrong++
		}
	}
	// After the flip the global history shifts through ~HistoryBits fresh
	// counter indexes before settling, so allow one misprediction per
	// history bit plus saturation slack.
	if wrong > 12 {
		t.Fatalf("after flip, mispredicted %d/100 times", wrong)
	}
}

func TestGshareLearnsAlternatingPatternViaHistory(t *testing.T) {
	g := NewGshare(GshareConfig{Entries: 4096, HistoryBits: 8, BTBEntries: 256})
	in := branch(0x1000, false, 0x2000)
	var wrongLate int
	for i := 0; i < 400; i++ {
		in.Taken = i%2 == 0
		m := g.Observe(&in)
		if i >= 200 && m {
			wrongLate++
		}
	}
	if wrongLate > 10 {
		t.Fatalf("alternating pattern mispredicted %d/200 after warm-up (history should capture it)", wrongLate)
	}
}

func TestGshareRandomBranchMispredictsOften(t *testing.T) {
	g := NewGshare(DefaultGshare())
	rng := rand.New(rand.NewSource(1))
	in := branch(0x1000, false, 0x2000)
	var wrong int
	const n = 10000
	for i := 0; i < n; i++ {
		in.Taken = rng.Intn(2) == 0
		if g.Observe(&in) {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.30 || rate > 0.70 {
		t.Fatalf("random branch misprediction rate %.2f, want ~0.5", rate)
	}
}

func TestGshareBTBMissCausesMisfetch(t *testing.T) {
	g := NewGshare(GshareConfig{Entries: 1024, HistoryBits: 0, BTBEntries: 16})
	in := branch(0x1000, true, 0x2000)
	// Train direction AND BTB.
	for i := 0; i < 10; i++ {
		g.Observe(&in)
	}
	if Mispredicted(g, &in) {
		t.Fatal("trained branch should predict correctly")
	}
	// Same counter index but different PC slot in the BTB: the direction
	// may predict taken while the BTB has no target -> misfetch.
	coldPC := in.PC + uint64(16*4) // different BTB slot (16 entries, word indexed)
	cold := branch(coldPC, true, 0x9999)
	taken, known := g.Predict(&cold)
	if taken && known {
		t.Fatal("BTB should not know a never-seen target")
	}
	// After one update the target is installed.
	g.Update(&cold)
	if m := Mispredicted(g, &cold); m {
		t.Fatal("after training, the target must be known")
	}
}

func TestGshareBTBDetectsTargetChange(t *testing.T) {
	g := NewGshare(GshareConfig{Entries: 1024, HistoryBits: 0, BTBEntries: 64})
	in := branch(0x1000, true, 0x2000)
	for i := 0; i < 8; i++ {
		g.Observe(&in)
	}
	// Same PC, new target (indirect-branch behaviour): must misfetch once.
	in.Target = 0x7777
	if !Mispredicted(g, &in) {
		t.Fatal("changed target must mispredict")
	}
	if Mispredicted(g, &in) {
		t.Fatal("retrained target must predict")
	}
}

func TestMispredictedIgnoresNonBranches(t *testing.T) {
	g := NewGshare(DefaultGshare())
	load := isa.Inst{PC: 0x1000, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 2}
	if Mispredicted(g, &load) {
		t.Fatal("non-branch cannot mispredict")
	}
}

func TestPerfectNeverMispredicts(t *testing.T) {
	p := Perfect{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		in := branch(uint64(rng.Intn(1<<20))*4, rng.Intn(2) == 0, uint64(rng.Intn(1<<20))*4)
		if Mispredicted(p, &in) {
			t.Fatal("perfect predictor mispredicted")
		}
	}
}

func TestAlwaysWrongAlwaysMispredicts(t *testing.T) {
	p := AlwaysWrong{}
	for _, taken := range []bool{true, false} {
		in := branch(0x1000, taken, 0x2000)
		if !Mispredicted(p, &in) {
			t.Fatal("AlwaysWrong predicted correctly")
		}
	}
}

func TestStaticPredictor(t *testing.T) {
	in := branch(0x1000, true, 0x2000)
	if Mispredicted(Static{Taken: true}, &in) {
		t.Fatal("static-taken should predict a taken branch")
	}
	if !Mispredicted(Static{Taken: false}, &in) {
		t.Fatal("static-not-taken should mispredict a taken branch")
	}
}

func TestGshareStats(t *testing.T) {
	g := NewGshare(GshareConfig{Entries: 256, HistoryBits: 4, BTBEntries: 64})
	in := branch(0x1000, true, 0x2000)
	for i := 0; i < 50; i++ {
		g.Observe(&in)
	}
	pred, mis := g.Stats()
	if pred != 50 {
		t.Fatalf("predicts = %d, want 50", pred)
	}
	if mis > 2 {
		t.Fatalf("mispredicts = %d for a monotone branch", mis)
	}
	g.ResetStats()
	if p, m := g.Stats(); p != 0 || m != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestNewGsharePanicsOnBadConfig(t *testing.T) {
	cases := []GshareConfig{
		{Entries: 0},
		{Entries: 100},
		{Entries: 256, BTBEntries: 100},
		{Entries: 256, HistoryBits: 64},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic: %+v", i, cfg)
				}
			}()
			NewGshare(cfg)
		}()
	}
}

func TestGshareDistinctBranchesDoNotDestructivelyAlias(t *testing.T) {
	// With enough entries, two opposite-biased branches at different PCs
	// must both be predictable.
	g := NewGshare(GshareConfig{Entries: 64 << 10, HistoryBits: 0, BTBEntries: 1024})
	a := branch(0x1000, true, 0x2000)
	b := branch(0x5000, false, 0)
	var wrong int
	for i := 0; i < 200; i++ {
		if g.Observe(&a) && i > 4 {
			wrong++
		}
		if g.Observe(&b) && i > 4 {
			wrong++
		}
	}
	if wrong > 0 {
		t.Fatalf("aliasing caused %d mispredictions", wrong)
	}
}

// Package stats provides the small statistical toolkit the experiments
// need: means, histograms, and the inter-miss-distance CDFs of Figure 2
// (observed distribution vs the uniform/geometric reference).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Ratio returns num/den, or 0 when den is 0. It centralizes the guarded
// divisions that MLP-style averages need.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Histogram counts integer-valued observations in caller-defined buckets.
type Histogram struct {
	// bounds[i] is the inclusive upper bound of bucket i; a final implicit
	// overflow bucket catches everything larger.
	bounds []int64
	counts []uint64
	total  uint64
}

// NewHistogram builds a histogram with the given ascending inclusive upper
// bounds. It panics if bounds are empty or not strictly ascending.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds)+1)}
}

// Add records one observation.
func (h *Histogram) Add(x int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return x <= h.bounds[i] })
	h.counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the count in bucket i (len(bounds) is the overflow bucket).
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Buckets returns the bucket upper bounds.
func (h *Histogram) Buckets() []int64 { return h.bounds }

// CDF returns, for each bound, the cumulative probability of an
// observation at or below that bound.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.bounds))
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i]
		out[i] = Ratio(float64(cum), float64(h.total))
	}
	return out
}

// DistanceRecorder accumulates distances between consecutive events in an
// instruction stream (the inter-miss distances of §2.3 / Figure 2).
type DistanceRecorder struct {
	last      int64
	havePrev  bool
	distances []int64
}

// Observe records that an event occurred at instruction index idx; the
// distance from the previous event is accumulated.
func (d *DistanceRecorder) Observe(idx int64) {
	if d.havePrev {
		d.distances = append(d.distances, idx-d.last)
	}
	d.last = idx
	d.havePrev = true
}

// Distances returns the recorded inter-event distances.
func (d *DistanceRecorder) Distances() []int64 { return d.distances }

// MeanDistance returns the average inter-event distance, or 0 when fewer
// than two events were observed.
func (d *DistanceRecorder) MeanDistance() float64 {
	if len(d.distances) == 0 {
		return 0
	}
	var sum int64
	for _, x := range d.distances {
		sum += x
	}
	return float64(sum) / float64(len(d.distances))
}

// CDFAt returns the empirical cumulative probability that the next event
// occurs within n instructions, for each n in points.
func (d *DistanceRecorder) CDFAt(points []int64) []float64 {
	sorted := make([]int64, len(d.distances))
	copy(sorted, d.distances)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]float64, len(points))
	for i, p := range points {
		// count of distances <= p
		k := sort.Search(len(sorted), func(j int) bool { return sorted[j] > p })
		out[i] = Ratio(float64(k), float64(len(sorted)))
	}
	return out
}

// UniformCDFAt returns the Figure 2 reference curve: the cumulative
// probability of encountering the next event within n instructions if
// events were uniformly (geometrically) distributed with the given mean
// inter-event distance.
func UniformCDFAt(meanDistance float64, points []int64) []float64 {
	out := make([]float64, len(points))
	if meanDistance <= 0 {
		return out
	}
	p := 1.0 / meanDistance
	if p > 1 {
		p = 1
	}
	for i, n := range points {
		out[i] = 1 - math.Pow(1-p, float64(n))
	}
	return out
}

// LogSpacedPoints returns points 1, 2, 4, ..., up to max (inclusive of the
// first point >= max), used as the X axis of Figure 2.
func LogSpacedPoints(max int64) []int64 {
	if max < 1 {
		return nil
	}
	var pts []int64
	for p := int64(1); ; p *= 2 {
		pts = append(pts, p)
		if p >= max {
			break
		}
	}
	return pts
}

// Percent formats a fraction as a percentage string with one decimal.
func Percent(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Summary holds moment statistics for a sample of measurements (used to
// report multi-seed experiment stability).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
}

// Summarize computes sample statistics for xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs)}
	if len(xs) < 2 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	return s
}

// CI95 returns the half-width of the ~95% confidence interval of the mean
// (normal approximation; fine for the n>=5 seed sweeps used here).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// RelCI95 returns CI95 as a fraction of the mean (0 when the mean is 0).
func (s Summary) RelCI95() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.CI95() / s.Mean
}

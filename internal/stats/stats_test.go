package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 4); got != 0.75 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Fatalf("Ratio by zero = %v, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, x := range []int64{1, 10, 11, 100, 101, 1000, 1001, 5000} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	want := []uint64{2, 2, 2, 2} // <=10, <=100, <=1000, overflow
	for i, w := range want {
		if got := h.Count(i); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	cdf := h.CDF()
	wantCDF := []float64{0.25, 0.5, 0.75}
	for i := range wantCDF {
		if math.Abs(cdf[i]-wantCDF[i]) > 1e-12 {
			t.Fatalf("cdf[%d] = %v, want %v", i, cdf[i], wantCDF[i])
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, bounds := range [][]int64{nil, {5, 5}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestDistanceRecorder(t *testing.T) {
	var d DistanceRecorder
	if d.MeanDistance() != 0 {
		t.Fatal("empty recorder mean must be 0")
	}
	for _, idx := range []int64{10, 20, 50, 60} {
		d.Observe(idx)
	}
	got := d.Distances()
	want := []int64{10, 30, 10}
	if len(got) != len(want) {
		t.Fatalf("distances = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distances = %v, want %v", got, want)
		}
	}
	if m := d.MeanDistance(); math.Abs(m-50.0/3) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	cdf := d.CDFAt([]int64{5, 10, 30, 100})
	wantCDF := []float64{0, 2.0 / 3, 1, 1}
	for i := range wantCDF {
		if math.Abs(cdf[i]-wantCDF[i]) > 1e-12 {
			t.Fatalf("cdf = %v, want %v", cdf, wantCDF)
		}
	}
}

func TestUniformCDF(t *testing.T) {
	pts := []int64{1, 10, 100}
	cdf := UniformCDFAt(10, pts)
	// p = 0.1: CDF(n) = 1-(0.9)^n
	want := []float64{0.1, 1 - math.Pow(0.9, 10), 1 - math.Pow(0.9, 100)}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-12 {
			t.Fatalf("uniform cdf = %v, want %v", cdf, want)
		}
	}
	if got := UniformCDFAt(0, pts); got[0] != 0 || got[2] != 0 {
		t.Fatal("zero mean must produce zero CDF")
	}
	// Mean below 1 clamps p to 1: event certain within 1 instruction.
	if got := UniformCDFAt(0.5, pts); got[0] != 1 {
		t.Fatal("sub-unit mean must clamp")
	}
}

func TestLogSpacedPoints(t *testing.T) {
	got := LogSpacedPoints(100)
	want := []int64{1, 2, 4, 8, 16, 32, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("points = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("points = %v, want %v", got, want)
		}
	}
	if LogSpacedPoints(0) != nil {
		t.Fatal("max<1 must return nil")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.123); got != "12.3%" {
		t.Fatalf("Percent = %q", got)
	}
}

// Property: a histogram CDF is monotone non-decreasing and ends <= 1.
func TestHistogramCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram([]int64{1, 2, 4, 8, 16, 32, 64})
		for i := 0; i < 1000; i++ {
			h.Add(int64(rng.Intn(200)))
		}
		cdf := h.CDF()
		prev := 0.0
		for _, c := range cdf {
			if c < prev || c > 1+1e-12 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the empirical CDF of geometrically spaced events approaches
// the analytic uniform CDF.
func TestGeometricMatchesUniformCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var d DistanceRecorder
	idx := int64(0)
	const p = 0.02
	for i := 0; i < 200000; i++ {
		idx++
		if rng.Float64() < p {
			d.Observe(idx)
		}
	}
	pts := []int64{10, 50, 100, 200}
	emp := d.CDFAt(pts)
	ana := UniformCDFAt(1/p, pts)
	for i := range pts {
		if math.Abs(emp[i]-ana[i]) > 0.03 {
			t.Fatalf("at %d: empirical %.3f vs analytic %.3f", pts[i], emp[i], ana[i])
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.CI95() <= 0 || s.RelCI95() <= 0 {
		t.Fatal("CI must be positive for a spread sample")
	}
	if got := Summarize(nil); got.N != 0 || got.CI95() != 0 {
		t.Fatal("empty summary")
	}
	if got := Summarize([]float64{3}); got.Mean != 3 || got.CI95() != 0 {
		t.Fatal("singleton summary")
	}
	if (Summary{N: 5, Mean: 0, StdDev: 1}).RelCI95() != 0 {
		t.Fatal("zero-mean RelCI95 must be 0")
	}
}

package cyclesim

import (
	"math"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/isa"
	"mlpsim/internal/workload"
)

type aiSource struct {
	insts []annotate.Inst
	pos   int
}

func (s *aiSource) Next() (annotate.Inst, bool) {
	if s.pos >= len(s.insts) {
		return annotate.Inst{}, false
	}
	in := s.insts[s.pos]
	s.pos++
	return in, true
}

func ld(dst, src1 isa.Reg, dmiss bool) annotate.Inst {
	return annotate.Inst{
		Inst:  isa.Inst{Class: isa.Load, Src1: src1, Src2: isa.NoReg, Dst: dst},
		DMiss: dmiss,
	}
}

func add(dst, s1, s2 isa.Reg) annotate.Inst {
	return annotate.Inst{Inst: isa.Inst{Class: isa.ALU, Src1: s1, Src2: s2, Dst: dst}}
}

func alu(n int) []annotate.Inst {
	var out []annotate.Inst
	for i := 0; i < n; i++ {
		out = append(out, add(16, 17, 18))
	}
	return out
}

func run(t *testing.T, insts []annotate.Inst, cfg Config) Result {
	t.Helper()
	return New(&aiSource{insts: insts}, cfg).Run()
}

func TestALUOnlyThroughput(t *testing.T) {
	res := run(t, alu(4000), Default(200))
	if res.Instructions != 4000 {
		t.Fatalf("retired %d", res.Instructions)
	}
	// Width-4 pipeline on a serial-free ALU stream: CPI near... the
	// stream is a dependence chain free mix; with identical registers the
	// adds chain (dst=16, src=17,18 → independent of each other), so CPI
	// should approach 1/width plus pipeline fill.
	if cpi := res.CPI(); cpi > 0.6 {
		t.Fatalf("ALU CPI = %.3f, want < 0.6", cpi)
	}
	if res.Accesses != 0 || res.MLP != 0 {
		t.Fatalf("ALU-only run saw accesses: %+v", res)
	}
}

func TestSingleMissCost(t *testing.T) {
	// 100 ALU + missing load + consumer + 100 ALU: run time ≈ compute +
	// penalty.
	insts := alu(100)
	insts = append(insts, ld(2, 1, true), add(3, 2, 2))
	insts = append(insts, alu(100)...)
	res := run(t, insts, Default(500))
	if res.Accesses != 1 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	if res.Cycles < 500 || res.Cycles > 700 {
		t.Fatalf("cycles = %d, want ≈ 550", res.Cycles)
	}
	if math.Abs(res.MLP-1) > 1e-9 {
		t.Fatalf("MLP = %v, want exactly 1", res.MLP)
	}
	// MLP cycles ≈ the miss latency.
	if res.MLPCycles < 499 || res.MLPCycles > 510 {
		t.Fatalf("MLP cycles = %d, want ≈ 500", res.MLPCycles)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// Two independent missing loads issued back to back overlap almost
	// fully: MLP ≈ 2, total time ≈ penalty.
	insts := []annotate.Inst{ld(2, 1, true), ld(3, 1, true)}
	insts = append(insts, alu(10)...)
	res := run(t, insts, Default(500))
	if res.Accesses != 2 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	if res.MLP < 1.9 {
		t.Fatalf("MLP = %.3f, want ≈ 2", res.MLP)
	}
	if res.Cycles > 520 {
		t.Fatalf("cycles = %d, want ≈ 505", res.Cycles)
	}
}

func TestDependentMissesSerialize(t *testing.T) {
	insts := []annotate.Inst{ld(2, 1, true), ld(3, 2, true)}
	res := run(t, insts, Default(500))
	if res.MLP > 1.01 {
		t.Fatalf("MLP = %.3f, want 1 (dependent misses)", res.MLP)
	}
	if res.Cycles < 1000 {
		t.Fatalf("cycles = %d, want > 1000 (two serialized misses)", res.Cycles)
	}
}

func TestWindowLimitsOverlap(t *testing.T) {
	// A missing load, then filler, then another independent missing load
	// beyond a tiny ROB: the second cannot enter the window until the
	// first completes.
	mk := func() []annotate.Inst {
		insts := []annotate.Inst{ld(2, 1, true)}
		insts = append(insts, alu(30)...)
		insts = append(insts, ld(3, 1, true))
		return insts
	}
	small := Default(500)
	small.IssueWindow, small.ROB = 8, 8
	res := run(t, mk(), small)
	if res.MLP > 1.05 {
		t.Fatalf("small window MLP = %.3f, want ≈ 1", res.MLP)
	}
	big := Default(500)
	big.IssueWindow, big.ROB = 64, 64
	res = run(t, mk(), big)
	if res.MLP < 1.8 {
		t.Fatalf("big window MLP = %.3f, want ≈ 2", res.MLP)
	}
}

func TestSerializingDrainsPipeline(t *testing.T) {
	// miss; membar; independent miss — the membar prevents overlap.
	insts := []annotate.Inst{
		ld(2, 1, true),
		{Inst: isa.Inst{Class: isa.MemBar, Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg}},
		ld(3, 1, true),
	}
	res := run(t, insts, Default(500))
	if res.MLP > 1.01 {
		t.Fatalf("MLP = %.3f, want 1 (serialized)", res.MLP)
	}
	if res.Cycles < 1000 {
		t.Fatalf("cycles = %d, want two full penalties", res.Cycles)
	}
}

func TestUnresolvableMispredictBlocksFetch(t *testing.T) {
	// Load miss feeds a mispredicted branch; the independent miss after
	// the branch cannot be fetched until the branch resolves.
	insts := []annotate.Inst{
		ld(2, 1, true),
		{Inst: isa.Inst{Class: isa.Branch, Src1: 2, Src2: isa.NoReg, Dst: isa.NoReg}, Mispred: true},
		ld(3, 1, true),
	}
	res := run(t, insts, Default(500))
	if res.MLP > 1.01 {
		t.Fatalf("MLP = %.3f, want 1", res.MLP)
	}
	// Resolvable mispredict (independent of the miss): costs only the
	// redirect, so the misses overlap.
	insts[1].Src1 = 7
	res = run(t, insts, Default(500))
	if res.MLP < 1.9 {
		t.Fatalf("resolvable mispredict MLP = %.3f, want ≈ 2", res.MLP)
	}
}

func TestImissBlocksFetch(t *testing.T) {
	insts := []annotate.Inst{
		ld(2, 1, true),
		func() annotate.Inst { in := add(4, 2, 3); in.IMiss = true; return in }(),
		ld(3, 1, true),
	}
	res := run(t, insts, Default(500))
	// The I-miss overlaps with the first load but gates the second: MLP
	// counts the overlapped I access.
	if res.Accesses != 3 {
		t.Fatalf("accesses = %d, want 3", res.Accesses)
	}
	// Phase 1: the load's and the I-fetch's accesses overlap for one
	// penalty (MLP 2); phase 2: the gated load runs alone for one penalty
	// (MLP 1) → average ≈ 1.5.
	if res.MLP < 1.4 || res.MLP > 1.6 {
		t.Fatalf("MLP = %.3f, want ≈ 1.5", res.MLP)
	}
}

func TestPerfectL2Run(t *testing.T) {
	insts := []annotate.Inst{ld(2, 1, true), add(3, 2, 2)}
	insts = append(insts, alu(50)...)
	cfg := Default(1000)
	cfg.PerfectL2 = true
	res := run(t, insts, cfg)
	if res.Accesses != 0 {
		t.Fatalf("perfect L2 counted %d accesses", res.Accesses)
	}
	if res.Cycles > 100 {
		t.Fatalf("perfect-L2 cycles = %d, want small", res.Cycles)
	}
}

func TestLoadPoliciesOrdering(t *testing.T) {
	// Independent miss after a dependent store address (paper example 4
	// flavour): config B blocks it, config C does not.
	mk := func() []annotate.Inst {
		return []annotate.Inst{
			ld(2, 1, true), // miss -> r2
			{Inst: isa.Inst{Class: isa.Store, Src1: 2, Src2: 5, Dst: isa.NoReg, EA: 0x9000}},
			ld(6, 1, true), // independent miss
		}
	}
	cfgB := Default(500)
	cfgB.Issue = core.ConfigB
	resB := run(t, mk(), cfgB)
	cfgC := Default(500)
	resC := run(t, mk(), cfgC)
	if resB.MLP > 1.05 {
		t.Fatalf("config B MLP = %.3f, want ≈ 1", resB.MLP)
	}
	if resC.MLP < 1.9 {
		t.Fatalf("config C MLP = %.3f, want ≈ 2", resC.MLP)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Default(500)
	bad.Issue = core.ConfigD
	if err := bad.Validate(); err == nil {
		t.Fatal("config D accepted (cycle sim supports A-C only)")
	}
	bad = Default(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero penalty accepted")
	}
	good := Default(200)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The headline validation: MLPsim and the cycle simulator agree on MLP,
// closely at 1000 cycles (Table 3's pattern).
func TestMLPsimValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million instruction validation")
	}
	for _, w := range workload.Presets(41) {
		for _, ic := range []core.IssueConfig{core.ConfigA, core.ConfigC} {
			mlpsimRes := func() core.Result {
				g := workload.MustNew(w)
				a := annotate.New(g, annotate.Config{})
				a.Warm(300_000)
				cfg := core.Default().WithIssue(ic)
				cfg.MaxInstructions = 400_000
				return core.NewEngine(a, cfg).Run()
			}()
			cycleRes := func() Result {
				g := workload.MustNew(w)
				a := annotate.New(g, annotate.Config{})
				a.Warm(300_000)
				cfg := Default(1000)
				cfg.Issue = ic
				cfg.MaxInstructions = 400_000
				return New(a, cfg).Run()
			}()
			m1, m2 := mlpsimRes.MLP(), cycleRes.MLP
			if m2 == 0 {
				t.Fatalf("%s/%v: cycle sim measured no MLP", w.Name, ic)
			}
			if rel := math.Abs(m1-m2) / m2; rel > 0.10 {
				t.Errorf("%s/%v: MLPsim %.3f vs CycleSim %.3f (%.1f%% apart)",
					w.Name, ic, m1, m2, 100*rel)
			}
		}
	}
}

func TestMSHRLimitsCycleSim(t *testing.T) {
	mk := func() []annotate.Inst {
		return []annotate.Inst{
			ld(2, 1, true), ld(3, 1, true), ld(4, 1, true), ld(5, 1, true),
		}
	}
	unlimited := run(t, mk(), Default(500))
	if unlimited.MLP < 3.8 {
		t.Fatalf("unlimited MLP = %.3f, want ≈ 4", unlimited.MLP)
	}
	cfg := Default(500)
	cfg.MSHRs = 2
	capped := run(t, mk(), cfg)
	if capped.MLP > 2.01 {
		t.Fatalf("2-MSHR MLP = %.3f, want ≤ 2", capped.MLP)
	}
	if capped.Accesses != 4 {
		t.Fatalf("accesses = %d, want 4 (conserved)", capped.Accesses)
	}
	if capped.Cycles <= unlimited.Cycles {
		t.Fatal("MSHR cap should lengthen the run")
	}
}

func TestMSHRGatesIFetchCycleSim(t *testing.T) {
	insts := []annotate.Inst{
		ld(2, 1, true),
		func() annotate.Inst { in := add(4, 9, 9); in.IMiss = true; return in }(),
		ld(3, 1, true),
	}
	cfg := Default(500)
	cfg.MSHRs = 1
	res := run(t, insts, cfg)
	if res.Accesses != 3 {
		t.Fatalf("accesses = %d, want 3 (conserved under MSHR gating)", res.Accesses)
	}
	if res.MLP > 1.01 {
		t.Fatalf("1-MSHR MLP = %.3f, want 1", res.MLP)
	}
}

func TestDecoupledROBHelpsCycleSim(t *testing.T) {
	// A miss, 40 filler (exceeding a 16-entry window's reach but not a
	// 128-entry ROB), then an independent miss: with the ROB decoupled
	// the dispatch window keeps draining the issue window, so the second
	// miss overlaps.
	mk := func() []annotate.Inst {
		insts := []annotate.Inst{ld(2, 1, true)}
		insts = append(insts, alu(40)...)
		insts = append(insts, ld(3, 1, true))
		return insts
	}
	coupled := Default(500)
	coupled.IssueWindow, coupled.ROB = 16, 16
	small := run(t, mk(), coupled)
	decoupled := Default(500)
	decoupled.IssueWindow, decoupled.ROB = 16, 128
	big := run(t, mk(), decoupled)
	if small.MLP > 1.05 {
		t.Fatalf("coupled MLP = %.3f, want ≈ 1", small.MLP)
	}
	if big.MLP < 1.8 {
		t.Fatalf("decoupled MLP = %.3f, want ≈ 2", big.MLP)
	}
}

func TestRetireWidthBoundsIPC(t *testing.T) {
	cfg := Default(200)
	cfg.RetireWidth = 1
	res := run(t, alu(4000), cfg)
	if cpi := res.CPI(); cpi < 0.95 {
		t.Fatalf("retire width 1 should pin CPI near 1, got %.3f", cpi)
	}
}

func TestCycleSimDeterminism(t *testing.T) {
	mk := func() core.AnnotatedSource {
		g := workload.MustNew(workload.Database(3))
		a := annotate.New(g, annotate.Config{})
		a.Warm(100_000)
		return a
	}
	cfg := Default(500)
	cfg.MaxInstructions = 150_000
	r1 := New(mk(), cfg).Run()
	r2 := New(mk(), cfg).Run()
	if r1.Cycles != r2.Cycles || r1.Accesses != r2.Accesses || r1.MLP != r2.MLP {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

func TestCycleSimConservesAccesses(t *testing.T) {
	g := workload.MustNew(workload.Database(5))
	a := annotate.New(g, annotate.Config{})
	a.Warm(100_000)
	var want uint64
	src := countingAISource{src: a, count: &want}
	cfg := Default(1000)
	cfg.MaxInstructions = 150_000
	res := New(&src, cfg).Run()
	if res.Accesses != want {
		t.Fatalf("cycle sim counted %d accesses, annotator produced %d", res.Accesses, want)
	}
}

type countingAISource struct {
	src   *annotate.Annotator
	count *uint64
}

func (c *countingAISource) Next() (annotate.Inst, bool) {
	in, ok := c.src.Next()
	if ok && in.OffChip() {
		*c.count++
		if in.IMiss && (in.DMiss || in.PMiss) {
			*c.count++
		}
	}
	return in, ok
}

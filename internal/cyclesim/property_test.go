package cyclesim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/isa"
)

// randomStream mirrors the core package's property-test generator: a
// random but well-formed annotated stream.
func randomStream(rng *rand.Rand, n int, missP, imissP, mispredP float64) []annotate.Inst {
	insts := make([]annotate.Inst, n)
	for i := range insts {
		var in annotate.Inst
		in.Index = int64(i)
		in.PC = 0x1000 + uint64(i)*4
		switch x := rng.Float64(); {
		case x < 0.18:
			in.Class = isa.Load
			in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Src2 = isa.NoReg
			in.Dst = isa.Reg(1 + rng.Intn(isa.NumRegs-1))
			in.EA = uint64(rng.Intn(1 << 28))
			in.DMiss = rng.Float64() < missP
		case x < 0.26:
			in.Class = isa.Store
			in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Src2 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Dst = isa.NoReg
			in.EA = uint64(rng.Intn(1 << 28))
		case x < 0.30:
			in.Class = isa.Prefetch
			in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Src2, in.Dst = isa.NoReg, isa.NoReg
			in.EA = uint64(rng.Intn(1 << 28))
			in.PMiss = rng.Float64() < missP
		case x < 0.42:
			in.Class = isa.Branch
			in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Src2, in.Dst = isa.NoReg, isa.NoReg
			in.Mispred = rng.Float64() < mispredP
		case x < 0.44:
			in.Class = isa.MemBar
			in.Src1, in.Src2, in.Dst = isa.NoReg, isa.NoReg, isa.NoReg
		default:
			in.Class = isa.ALU
			in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Src2 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Dst = isa.Reg(1 + rng.Intn(isa.NumRegs-1))
		}
		if rng.Float64() < imissP {
			in.IMiss = true
		}
		insts[i] = in
	}
	return insts
}

func expected(insts []annotate.Inst) uint64 {
	var n uint64
	for i := range insts {
		if insts[i].DMiss || insts[i].PMiss {
			n++
		}
		if insts[i].IMiss {
			n++
		}
	}
	return n
}

// Property: the cycle simulator terminates, retires everything, and
// conserves off-chip accesses on arbitrary random streams.
func TestCycleSimConservationProperty(t *testing.T) {
	f := func(seed int64, cfgSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		insts := randomStream(rng, 1500, 0.05, 0.01, 0.05)
		want := expected(insts)

		cfg := Default(200 + int(cfgSel%4)*250)
		switch cfgSel % 3 {
		case 0:
			cfg.Issue = core.ConfigA
		case 1:
			cfg.Issue = core.ConfigB
		}
		if cfgSel%5 == 0 {
			cfg.IssueWindow, cfg.ROB = 8, 8
		}
		if cfgSel%7 == 0 {
			cfg.MSHRs = 1 + int(cfgSel%4)
		}
		res := New(&aiSource{insts: insts}, cfg).Run()
		if res.Instructions != int64(len(insts)) {
			t.Logf("seed %d: retired %d of %d", seed, res.Instructions, len(insts))
			return false
		}
		if res.Accesses != want {
			t.Logf("seed %d: accesses %d, want %d", seed, res.Accesses, want)
			return false
		}
		if res.Accesses > 0 && res.MLP < 1 {
			t.Logf("seed %d: MLP %f < 1", seed, res.MLP)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Cross-validation: on the same random streams, MLPsim and the cycle
// simulator agree at a 1000-cycle latency within a modest tolerance —
// the Table 3 claim stress-tested far outside the calibrated workloads.
func TestEnginesAgreeOnRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		insts := randomStream(rng, 20000, 0.03, 0.002, 0.03)

		mlpsimCfg := core.Default()
		epochRes := core.NewEngine(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, mlpsimCfg).Run()

		cfg := Default(1000)
		cycleRes := New(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, cfg).Run()

		if cycleRes.MLP == 0 && epochRes.MLP() == 0 {
			continue
		}
		rel := math.Abs(epochRes.MLP()-cycleRes.MLP) / cycleRes.MLP
		if rel > 0.12 {
			t.Errorf("trial %d: MLPsim %.3f vs cycle sim %.3f (%.1f%% apart)",
				trial, epochRes.MLP(), cycleRes.MLP, 100*rel)
		}
	}
}

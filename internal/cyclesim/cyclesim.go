// Package cyclesim is the cycle-level out-of-order processor simulator
// used to validate MLPsim, standing in for the paper's proprietary
// cycle-accurate SPARC simulator (§5.2, Tables 1, 3 and 4).
//
// It models a conventional pipeline — fetch through a fetch buffer,
// rename/dispatch into an issue window and reorder buffer, oldest-first
// issue with the Table 2 constraint configurations A–C, latency-accurate
// execution, and in-order retirement — while measuring MLP(t) every cycle
// exactly as §2.1 prescribes: the number of useful off-chip accesses
// outstanding, averaged over the cycles where at least one is outstanding.
//
// Unlike MLPsim it is fully timing-aware: off-chip accesses issue and
// complete at their real cycles, so overlap is emergent rather than
// assumed. Agreement between the two (within a few percent at long
// off-chip latencies) is the paper's central validation result.
package cyclesim

import (
	"fmt"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/isa"
)

// Config parameterizes one cycle-simulator run.
type Config struct {
	// IssueWindow, ROB and FetchBuffer mirror the MLPsim structures.
	IssueWindow int
	ROB         int
	FetchBuffer int
	// Issue must be one of configurations A, B or C — like the paper's
	// cycle-accurate simulator, out-of-order branch issue is not
	// supported (§5.2).
	Issue core.IssueConfig
	// Widths of the pipeline stages (instructions per cycle).
	FetchWidth, DispatchWidth, IssueWidth, RetireWidth int
	// MissPenalty is the off-chip access latency in cycles (200-1000).
	MissPenalty int
	// L1Latency and L2Latency are the on-chip load-use latencies.
	L1Latency, L2Latency int
	// MispredictPenalty is the front-end refill delay after a mispredicted
	// branch resolves.
	MispredictPenalty int
	// MSHRs bounds the number of off-chip accesses outstanding at once;
	// 0 models the paper's unlimited baseline.
	MSHRs int
	// PerfectL2 treats every off-chip access as an L2 hit: the run
	// measures CPI_perf for the CPI decomposition of §2.2.
	PerfectL2 bool
	// MaxInstructions bounds the run (0 = entire stream).
	MaxInstructions int64
}

// Default returns the default pipeline matching MLPsim's default
// configuration (§5.1) at the given off-chip latency.
func Default(missPenalty int) Config {
	return Config{
		IssueWindow:       64,
		ROB:               64,
		FetchBuffer:       32,
		Issue:             core.ConfigC,
		FetchWidth:        4,
		DispatchWidth:     4,
		IssueWidth:        4,
		RetireWidth:       4,
		MissPenalty:       missPenalty,
		L1Latency:         2,
		L2Latency:         12,
		MispredictPenalty: 8,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.IssueWindow <= 0 || c.ROB < c.IssueWindow:
		return fmt.Errorf("cyclesim: bad window sizes IW=%d ROB=%d", c.IssueWindow, c.ROB)
	case c.Issue > core.ConfigC:
		return fmt.Errorf("cyclesim: issue configuration %v not supported (A-C only)", c.Issue)
	case c.FetchWidth <= 0 || c.DispatchWidth <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0:
		return fmt.Errorf("cyclesim: stage widths must be positive")
	case c.MissPenalty <= 0:
		return fmt.Errorf("cyclesim: miss penalty %d must be positive", c.MissPenalty)
	case c.L1Latency <= 0 || c.L2Latency < c.L1Latency:
		return fmt.Errorf("cyclesim: bad cache latencies L1=%d L2=%d", c.L1Latency, c.L2Latency)
	case c.FetchBuffer <= 0:
		return fmt.Errorf("cyclesim: fetch buffer must be positive")
	case c.MSHRs < 0:
		return fmt.Errorf("cyclesim: negative MSHR count %d", c.MSHRs)
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	Config       Config
	Instructions int64
	Cycles       int64
	// MLP is the measured average memory-level parallelism: useful
	// off-chip accesses outstanding averaged over non-zero cycles.
	MLP float64
	// MLPCycles is the number of cycles with at least one useful off-chip
	// access outstanding.
	MLPCycles int64
	// Accesses counts useful off-chip accesses issued.
	Accesses uint64
}

// CPI is cycles per instruction.
func (r *Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// MissRatePer100 is off-chip accesses per 100 instructions.
func (r *Result) MissRatePer100() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 100 * float64(r.Accesses) / float64(r.Instructions)
}

// robEntry is one in-flight instruction.
type robEntry struct {
	ai      annotate.Inst
	issued  bool
	doneAt  int64 // cycle the result becomes available (valid once issued)
	prod1   int64 // producer instruction indices (absolute)
	prod2   int64
	memProd int64
}

// eventHeap is a hand-rolled min-heap of completion cycles. Unlike a
// container/heap adapter it pushes and pops typed int64s — no
// interface{} boxing allocation per event — and its backing slice is
// reused across pops, so the steady state allocates nothing.
type eventHeap struct{ a []int64 }

func (h *eventHeap) len() int   { return len(h.a) }
func (h *eventHeap) min() int64 { return h.a[0] }

func (h *eventHeap) push(v int64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *eventHeap) pop() int64 {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	h.a = a[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && a[r] < a[l] {
			l = r
		}
		if a[i] <= a[l] {
			break
		}
		a[i], a[l] = a[l], a[i]
		i = l
	}
	return top
}

// inPlaceSource is the optional fetch fast path (mirroring the core
// engine): sources that can decode directly into a caller-provided Inst
// (e.g. atrace.Replay) skip the by-value copies of Next.
type inPlaceSource interface {
	NextInto(*annotate.Inst) bool
}

// Sim is one cycle-level simulation.
type Sim struct {
	cfg     Config
	src     core.AnnotatedSource
	srcInto inPlaceSource // src's fast path, nil when unsupported

	cycle int64
	// rob is a preallocated power-of-two ring of in-flight instructions;
	// robBase is the absolute index of the oldest entry. Entries retire
	// from the front. Capacity is fixed at construction (≥ cfg.ROB, the
	// dispatch gate), so steady-state operation never reallocates.
	rob      []robEntry
	robBase  int64
	robHead  int // ring offset of the oldest entry
	robCount int
	robMask  int
	nextIdx  int64
	unissued int

	// fetchQ is a preallocated power-of-two ring (≥ FetchBuffer+1: an
	// arriving off-chip I-line delivers its instruction past the normal
	// fetch gate).
	fetchQ     []annotate.Inst
	fetchHead  int
	fetchCount int
	fetchMask  int
	fetchStall int64
	// awaitBranch, when >= 0, is the absolute index of a fetched
	// mispredicted branch; fetch resumes after it resolves.
	awaitBranch int64
	// pendingIMiss holds an instruction whose fetch is waiting for an
	// off-chip line (valid when havePendingIMiss).
	pendingIMiss     annotate.Inst
	havePendingIMiss bool
	// fetchTmp stages the instruction being pulled from the source. It
	// lives on the Sim rather than the fetch stack so the pointer handed
	// to the source interface does not force a per-instruction heap
	// escape.
	fetchTmp       annotate.Inst
	pendingIMissAt int64
	srcDone        bool
	fetched        int64

	producers [isa.NumRegs]int64
	lastStore *core.StoreTable

	outstanding int
	completions eventHeap
	mlpSum      int64
	mlpCycles   int64
	accesses    uint64
	retired     int64
}

// New builds a simulation over the annotated source. It panics on invalid
// configurations.
func New(src core.AnnotatedSource, cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Sim{cfg: cfg, src: src, lastStore: core.NewStoreTable(), awaitBranch: -1}
	s.srcInto, _ = src.(inPlaceSource)
	for i := range s.producers {
		s.producers[i] = -1
	}
	s.rob = make([]robEntry, ringCap(cfg.ROB))
	s.robMask = len(s.rob) - 1
	s.fetchQ = make([]annotate.Inst, ringCap(cfg.FetchBuffer+1))
	s.fetchMask = len(s.fetchQ) - 1
	return s
}

// ringCap returns the smallest power of two ≥ n.
func ringCap(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// pull reads the next instruction from the source into *dst, using the
// in-place fast path when the source supports it.
func (s *Sim) pull(dst *annotate.Inst) bool {
	if s.srcInto != nil {
		return s.srcInto.NextInto(dst)
	}
	ai, ok := s.src.Next()
	if !ok {
		return false
	}
	*dst = ai
	return true
}

func (s *Sim) robLen() int { return s.robCount }

func (s *Sim) robAt(i int) *robEntry { return &s.rob[(s.robHead+i)&s.robMask] }

// robPush appends an entry at the ring tail, doubling the ring in the
// (configuration-error) case that the dispatch gate let it fill.
func (s *Sim) robPush(e robEntry) {
	if s.robCount == len(s.rob) {
		s.growROB()
	}
	s.rob[(s.robHead+s.robCount)&s.robMask] = e
	s.robCount++
}

func (s *Sim) growROB() {
	grown := make([]robEntry, 2*len(s.rob))
	for i := 0; i < s.robCount; i++ {
		grown[i] = s.rob[(s.robHead+i)&s.robMask]
	}
	s.rob = grown
	s.robMask = len(grown) - 1
	s.robHead = 0
}

func (s *Sim) fetchQLen() int { return s.fetchCount }

func (s *Sim) fetchQAt(i int) *annotate.Inst { return &s.fetchQ[(s.fetchHead+i)&s.fetchMask] }

func (s *Sim) fetchPush(ai annotate.Inst) {
	if s.fetchCount == len(s.fetchQ) {
		s.growFetchQ()
	}
	s.fetchQ[(s.fetchHead+s.fetchCount)&s.fetchMask] = ai
	s.fetchCount++
}

func (s *Sim) growFetchQ() {
	grown := make([]annotate.Inst, 2*len(s.fetchQ))
	for i := 0; i < s.fetchCount; i++ {
		grown[i] = s.fetchQ[(s.fetchHead+i)&s.fetchMask]
	}
	s.fetchQ = grown
	s.fetchMask = len(grown) - 1
	s.fetchHead = 0
}

// Run simulates to completion and returns the result.
func (s *Sim) Run() Result {
	for !s.finished() {
		s.cycle++
		s.doCompletions()
		progress := s.retire()
		progress += s.issue()
		progress += s.dispatch()
		progress += s.fetch()
		if s.outstanding > 0 {
			s.mlpSum += int64(s.outstanding)
			s.mlpCycles++
		}
		if progress == 0 {
			s.leap()
		}
	}
	res := Result{
		Config:       s.cfg,
		Instructions: s.retired,
		Cycles:       s.cycle,
		MLPCycles:    s.mlpCycles,
		Accesses:     s.accesses,
	}
	if s.mlpCycles > 0 {
		res.MLP = float64(s.mlpSum) / float64(s.mlpCycles)
	}
	return res
}

func (s *Sim) finished() bool {
	return s.srcDone && s.robLen() == 0 && s.fetchQLen() == 0 && !s.havePendingIMiss
}

// entryDone reports whether an issued entry's result is available.
func (s *Sim) entryDone(e *robEntry) bool {
	return e.issued && e.doneAt <= s.cycle
}

// latency returns the result latency for a data access.
func (s *Sim) latency(offChip bool) int64 {
	if offChip && !s.cfg.PerfectL2 {
		return int64(s.cfg.MissPenalty)
	}
	if offChip {
		return int64(s.cfg.L2Latency)
	}
	return int64(s.cfg.L1Latency)
}

// noteAccess registers one useful off-chip access outstanding for lat
// cycles.
func (s *Sim) noteAccess(lat int64) {
	s.outstanding++
	s.accesses++
	s.completions.push(s.cycle + lat)
}

func (s *Sim) doCompletions() {
	for s.completions.len() > 0 && s.completions.min() <= s.cycle {
		s.completions.pop()
		s.outstanding--
	}
}

func (s *Sim) retire() int {
	n := 0
	for n < s.cfg.RetireWidth && s.robLen() > 0 {
		e := s.robAt(0)
		if !s.entryDone(e) {
			break
		}
		s.robHead = (s.robHead + 1) & s.robMask
		s.robCount--
		s.robBase++
		s.retired++
		n++
	}
	return n
}

// opReady reports whether the producer at absolute index p has produced
// its value.
func (s *Sim) opReady(p int64) bool {
	if p < s.robBase {
		return true
	}
	i := p - s.robBase
	if i >= int64(s.robLen()) {
		return true
	}
	return s.entryDone(s.robAt(int(i)))
}

// issue picks ready, constraint-satisfying instructions oldest first. It
// returns the number issued.
func (s *Sim) issue() int {
	issued := 0
	var firstUnresolvedStore, unissuedMem, unissuedBranch, unissuedSerial int64 = -1, -1, -1, -1
	for i := 0; i < s.robLen() && issued < s.cfg.IssueWidth; i++ {
		e := s.robAt(i)
		abs := s.robBase + int64(i)
		if e.issued {
			continue
		}
		if s.tryIssue(abs, e, firstUnresolvedStore, unissuedMem, unissuedBranch, unissuedSerial) {
			issued++
		}
		if !e.issued {
			cls := e.ai.Class
			if cls.IsMemWrite() && firstUnresolvedStore < 0 && !s.opReady(e.prod1) {
				firstUnresolvedStore = abs
			}
			if (cls == isa.Load || cls.IsMemWrite()) && unissuedMem < 0 {
				unissuedMem = abs
			}
			if cls == isa.Branch && unissuedBranch < 0 {
				unissuedBranch = abs
			}
			if cls.IsSerializing() && unissuedSerial < 0 {
				unissuedSerial = abs
			}
		}
	}
	return issued
}

// tryIssue attempts to issue one entry under the configuration's
// constraints; it returns true if the entry issued this cycle.
func (s *Sim) tryIssue(abs int64, e *robEntry, firstUnresolvedStore, unissuedMem, unissuedBranch, unissuedSerial int64) bool {
	cls := e.ai.Class

	// A pending serializing instruction drains the pipeline: nothing
	// younger issues, and the serializing instruction itself issues only
	// from the ROB head.
	if unissuedSerial >= 0 && unissuedSerial < abs {
		return false
	}
	if cls.IsSerializing() && abs != s.robBase {
		return false
	}
	if !s.opReady(e.prod1) || !s.opReady(e.prod2) {
		return false
	}
	isLoadLike := cls.IsMemRead() && cls != isa.Prefetch
	if isLoadLike && e.memProd >= 0 && !s.opReady(e.memProd) {
		return false
	}
	if cls == isa.Branch && s.cfg.Issue.BranchesInOrder() &&
		unissuedBranch >= 0 && unissuedBranch < abs {
		return false
	}
	if isLoadLike {
		if s.cfg.Issue.LoadsInOrder() && unissuedMem >= 0 && unissuedMem < abs {
			return false
		}
		if s.cfg.Issue.LoadsWaitStoreAddr() && firstUnresolvedStore >= 0 && firstUnresolvedStore < abs {
			return false
		}
	}

	// Finite MSHRs: a new off-chip access waits for a free register.
	needsMSHR := !s.cfg.PerfectL2 &&
		((cls == isa.Prefetch && e.ai.PMiss) || (isLoadLike && e.ai.DMiss))
	if needsMSHR && s.cfg.MSHRs > 0 && s.outstanding >= s.cfg.MSHRs {
		return false
	}

	e.issued = true
	s.unissued--
	switch {
	case cls == isa.Prefetch:
		if e.ai.PMiss && !s.cfg.PerfectL2 {
			s.noteAccess(int64(s.cfg.MissPenalty))
		}
		e.doneAt = s.cycle + 1 // fire and forget
	case isLoadLike:
		lat := s.latency(e.ai.DMiss)
		if e.ai.DMiss && !s.cfg.PerfectL2 {
			s.noteAccess(lat)
		}
		e.doneAt = s.cycle + lat
	case cls == isa.Store:
		e.doneAt = s.cycle + 1 // commits from the store buffer
	case cls == isa.Branch:
		e.doneAt = s.cycle + 1
		if s.awaitBranch == abs {
			// Resolution redirects the front end.
			s.fetchStall = maxI64(s.fetchStall, e.doneAt+int64(s.cfg.MispredictPenalty))
			s.awaitBranch = -1
		}
	default:
		e.doneAt = s.cycle + 1
	}
	return true
}

func (s *Sim) dispatch() int {
	n := 0
	for n < s.cfg.DispatchWidth && s.fetchQLen() > 0 {
		if s.robLen() >= s.cfg.ROB || s.unissued >= s.cfg.IssueWindow {
			break
		}
		ai := *s.fetchQAt(0)
		s.fetchHead = (s.fetchHead + 1) & s.fetchMask
		s.fetchCount--
		e := robEntry{ai: ai, prod1: -1, prod2: -1, memProd: -1}
		j := s.nextIdx
		if ai.Src1 != isa.NoReg && ai.Src1 != isa.RegZero {
			e.prod1 = s.producers[ai.Src1]
		}
		if ai.Src2 != isa.NoReg && ai.Src2 != isa.RegZero {
			e.prod2 = s.producers[ai.Src2]
		}
		cls := ai.Class
		if cls.IsMemRead() && cls != isa.Prefetch {
			if p, ok := s.lastStore.Get(ai.EA >> 3); ok {
				e.memProd = p
			}
		}
		if cls.IsMemWrite() {
			s.lastStore.Put(ai.EA>>3, j)
		}
		if ai.HasDst() {
			s.producers[ai.Dst] = j
		}
		s.robPush(e)
		s.nextIdx++
		s.unissued++
		n++
	}
	return n
}

func (s *Sim) fetch() int {
	// An off-chip instruction fetch in flight delivers its instruction
	// when the line arrives. A fetch still waiting for a free MSHR issues
	// its access as soon as one drains.
	if s.havePendingIMiss {
		if s.pendingIMiss.IMiss {
			if s.cfg.MSHRs > 0 && s.outstanding >= s.cfg.MSHRs {
				return 0
			}
			s.noteAccess(int64(s.cfg.MissPenalty))
			s.pendingIMiss.IMiss = false
			s.pendingIMissAt = s.cycle + int64(s.cfg.MissPenalty)
			return 1
		}
		if s.cycle < s.pendingIMissAt {
			return 0
		}
		s.fetchPush(s.pendingIMiss)
		s.havePendingIMiss = false
		return 1
	}
	if s.cycle < s.fetchStall || s.awaitBranch >= 0 {
		return 0
	}
	n := 0
	for n < s.cfg.FetchWidth && s.fetchQLen() < s.cfg.FetchBuffer {
		if s.srcDone {
			break
		}
		if s.cfg.MaxInstructions > 0 && s.fetched >= s.cfg.MaxInstructions {
			s.srcDone = true
			break
		}
		ai := &s.fetchTmp
		if !s.pull(ai) {
			s.srcDone = true
			break
		}
		s.fetched++
		if ai.IMiss && !s.cfg.PerfectL2 && s.cfg.MSHRs > 0 && s.outstanding >= s.cfg.MSHRs {
			// No MSHR free: the fetch waits (IMiss stays set; the pending
			// branch above issues the access when a register drains).
			s.pendingIMiss, s.havePendingIMiss = *ai, true
			return n
		}
		if ai.IMiss && !s.cfg.PerfectL2 {
			// Fetch blocks until the line returns; the access overlaps
			// with whatever else is outstanding. In the CPI_perf run the
			// line comes from the (perfect) L2 instead.
			s.noteAccess(int64(s.cfg.MissPenalty))
			s.pendingIMissAt = s.cycle + int64(s.cfg.MissPenalty)
			ai.IMiss = false
			s.pendingIMiss, s.havePendingIMiss = *ai, true
			return n + 1
		}
		if ai.IMiss {
			// Perfect L2: a short front-end bubble.
			s.fetchStall = s.cycle + int64(s.cfg.L2Latency)
			ai.IMiss = false
			s.fetchPush(*ai)
			n++
			break
		}
		s.fetchPush(*ai)
		n++
		if ai.Class == isa.Branch && ai.Mispred {
			// Fetch proceeds down the wrong path until resolution; the
			// trace holds only correct-path instructions, so fetch waits
			// for the branch to resolve and redirect.
			s.awaitBranch = s.robBase + int64(s.robLen()) + int64(s.fetchQLen()) - 1
			break
		}
	}
	return n
}

// leap advances time to the next event when a cycle made no progress:
// everything in flight waits on a completion, an arriving I-line, or a
// front-end redirect.
func (s *Sim) leap() {
	next := int64(1 << 62)
	for i := 0; i < s.robLen(); i++ {
		e := s.robAt(i)
		if e.issued && e.doneAt > s.cycle && e.doneAt < next {
			next = e.doneAt
		}
	}
	if s.havePendingIMiss && !s.pendingIMiss.IMiss && s.pendingIMissAt < next {
		next = s.pendingIMissAt
	}
	if s.completions.len() > 0 && s.completions.min() > s.cycle && s.completions.min() < next {
		next = s.completions.min()
	}
	if s.fetchStall > s.cycle && s.fetchStall < next {
		next = s.fetchStall
	}
	if next >= 1<<62 {
		// No timed event: either we are finished, or the machine is
		// deadlocked (a bug).
		if !s.finished() {
			panic(fmt.Sprintf("cyclesim: deadlock at cycle %d (rob=%d fetchQ=%d)",
				s.cycle, s.robLen(), s.fetchQLen()))
		}
		return
	}
	if next <= s.cycle+1 {
		return
	}
	gap := next - s.cycle - 1
	if s.outstanding > 0 {
		s.mlpSum += int64(s.outstanding) * gap
		s.mlpCycles += gap
	}
	s.cycle += gap
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package cyclesim

import (
	"runtime"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/workload"
)

// TestCycleSimZeroAllocSteadyState pins the simulator's steady state at
// zero allocations per instruction: the ROB and fetch-queue rings are
// preallocated at construction and the completion heap is typed (no
// container/heap boxing), so a full run over 200K instructions may
// allocate only construction-scale amounts — heap-slice doublings of the
// completion heap, nothing proportional to the instruction count.
func TestCycleSimZeroAllocSteadyState(t *testing.T) {
	const n = 200_000
	a := annotate.New(workload.MustNew(workload.Presets(1)[0]), annotate.Config{})
	a.Warm(10_000)
	src := &aiSource{insts: a.Collect(n)}
	sim := New(src, Default(400))

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res := sim.Run()
	runtime.ReadMemStats(&m1)

	if res.Instructions != n {
		t.Fatalf("retired %d instructions, want %d", res.Instructions, n)
	}
	if allocs := m1.Mallocs - m0.Mallocs; allocs > 100 {
		t.Errorf("Run allocated %d objects over %d instructions, want construction-only (≤ 100)", allocs, n)
	}
}

package isa

import (
	"strings"
	"testing"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ALU:      "ALU",
		Load:     "Load",
		Store:    "Store",
		Branch:   "Branch",
		CASA:     "CASA",
		LDSTUB:   "LDSTUB",
		MemBar:   "MemBar",
		Prefetch: "Prefetch",
		NOP:      "NOP",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
		if !c.Valid() {
			t.Errorf("Class %s should be valid", want)
		}
	}
	if got := Class(200).String(); got != "Class(200)" {
		t.Errorf("unknown class string = %q", got)
	}
	if Class(200).Valid() {
		t.Error("Class(200) should be invalid")
	}
}

func TestSerializingClasses(t *testing.T) {
	for _, c := range []Class{CASA, LDSTUB, MemBar} {
		if !c.IsSerializing() {
			t.Errorf("%s must be serializing", c)
		}
	}
	for _, c := range []Class{ALU, Load, Store, Branch, Prefetch, NOP} {
		if c.IsSerializing() {
			t.Errorf("%s must not be serializing", c)
		}
	}
}

func TestMemoryClassPredicates(t *testing.T) {
	tests := []struct {
		c                  Class
		read, write, isMem bool
	}{
		{ALU, false, false, false},
		{Load, true, false, true},
		{Store, false, true, true},
		{Branch, false, false, false},
		{CASA, true, true, true},
		{LDSTUB, true, true, true},
		{MemBar, false, false, false},
		{Prefetch, true, false, true},
		{NOP, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.c.IsMemRead(); got != tt.read {
			t.Errorf("%s.IsMemRead() = %t, want %t", tt.c, got, tt.read)
		}
		if got := tt.c.IsMemWrite(); got != tt.write {
			t.Errorf("%s.IsMemWrite() = %t, want %t", tt.c, got, tt.write)
		}
		if got := tt.c.IsMem(); got != tt.isMem {
			t.Errorf("%s.IsMem() = %t, want %t", tt.c, got, tt.isMem)
		}
	}
}

func TestHasDst(t *testing.T) {
	in := Inst{Class: Load, Dst: 5}
	if !in.HasDst() {
		t.Error("load with dst=r5 must have a destination")
	}
	in.Dst = RegZero
	if in.HasDst() {
		t.Error("writes to the zero register must be discarded")
	}
	in.Dst = NoReg
	if in.HasDst() {
		t.Error("NoReg destination must report no destination")
	}
}

func TestSrcRegs(t *testing.T) {
	in := Inst{Class: ALU, Src1: 3, Src2: 7, Dst: 9}
	got := in.SrcRegs(nil)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("SrcRegs = %v, want [3 7]", got)
	}

	in = Inst{Class: ALU, Src1: RegZero, Src2: 7}
	got = in.SrcRegs(nil)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("SrcRegs with %%g0 source = %v, want [7]", got)
	}

	in = Inst{Class: NOP, Src1: NoReg, Src2: NoReg}
	if got := in.SrcRegs(nil); len(got) != 0 {
		t.Errorf("NOP SrcRegs = %v, want empty", got)
	}

	// Appending semantics: results are appended to the provided slice.
	buf := []Reg{1}
	in = Inst{Class: ALU, Src1: 2, Src2: NoReg}
	got = in.SrcRegs(buf)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("SrcRegs append = %v, want [1 2]", got)
	}
}

func TestInstString(t *testing.T) {
	in := Inst{PC: 0x1000, Class: Load, Src1: 2, Src2: NoReg, Dst: 4, EA: 0xbeef}
	s := in.String()
	for _, want := range []string{"Load", "0x1000", "0xbeef", "dst=r4", "src1=r2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	br := Inst{PC: 0x2000, Class: Branch, Src1: 1, Src2: NoReg, Dst: NoReg, Taken: true, Target: 0x3000}
	s = br.String()
	for _, want := range []string{"Branch", "taken=true", "tgt=0x3000"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestZeroValueIsNOP(t *testing.T) {
	var in Inst
	if in.Class != NOP && in.Class != ALU {
		// The zero value of Class is ALU (iota order); this test documents
		// the choice so a reorder is caught deliberately.
	}
	if in.Class != ALU {
		t.Errorf("zero-value Class = %v, want ALU (first enumerator)", in.Class)
	}
}

// Package isa defines the minimal SPARC-flavoured abstract instruction set
// consumed by the MLP simulators.
//
// The epoch model (Chou, Fahs & Abraham, ISCA 2004) is ISA-agnostic beyond
// instruction *classes*, register dependences, memory addresses and
// serializing semantics, so the package models exactly those: a dynamic
// instruction carries its class, up to two integer source registers, one
// destination register, an effective address for memory operations, a
// branch outcome, and a loaded value for value prediction.
package isa

import "fmt"

// Class is the behavioural class of an instruction. The classes mirror the
// instruction kinds the paper's epoch model distinguishes (§3).
type Class uint8

const (
	// ALU is any register-to-register computation (adds, logicals, shifts,
	// multiplies, FP ops...). The epoch model treats all of them as zero
	// latency on-chip computation.
	ALU Class = iota
	// Load is a memory read into a destination register.
	Load
	// Store is a memory write. Stores never contribute off-chip accesses to
	// MLP in the paper's definition (only instruction fetches, loads and
	// useful prefetches do).
	Store
	// Branch is a conditional or unconditional control transfer.
	Branch
	// CASA is the SPARC compare-and-swap used for locking (serializing).
	CASA
	// LDSTUB is the SPARC atomic load-store-unsigned-byte (serializing).
	LDSTUB
	// MemBar is the SPARC MEMBAR memory-ordering barrier (serializing).
	MemBar
	// Prefetch is a software read prefetch. A prefetch that misses the
	// on-chip hierarchy counts toward MLP when useful.
	Prefetch
	// NOP is an instruction with no register or memory effect.
	NOP

	numClasses = int(NOP) + 1
)

var classNames = [numClasses]string{
	"ALU", "Load", "Store", "Branch", "CASA", "LDSTUB", "MemBar", "Prefetch", "NOP",
}

// String returns the mnemonic-style name of the class.
func (c Class) String() string {
	if int(c) < numClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Valid reports whether c is one of the defined instruction classes.
func (c Class) Valid() bool { return int(c) < numClasses }

// IsSerializing reports whether the class drains the pipeline in a
// straightforward implementation (§3.2.2): CASA, LDSTUB and MEMBAR.
func (c Class) IsSerializing() bool {
	return c == CASA || c == LDSTUB || c == MemBar
}

// IsMemRead reports whether the class reads memory (and can therefore be a
// missing load / missing prefetch).
func (c Class) IsMemRead() bool {
	return c == Load || c == Prefetch || c == CASA || c == LDSTUB
}

// IsMemWrite reports whether the class writes memory.
func (c Class) IsMemWrite() bool {
	return c == Store || c == CASA || c == LDSTUB
}

// IsMem reports whether the class touches data memory at all.
func (c Class) IsMem() bool { return c.IsMemRead() || c.IsMemWrite() }

// Reg is an architectural register number. The model uses a flat integer
// register file; register 0 is hard-wired to zero as on SPARC (%g0) and
// never creates a dependence.
type Reg uint8

// NumRegs is the number of architectural registers modelled.
const NumRegs = 32

// RegZero is the hard-wired zero register (%g0): reads from it never create
// dependences and writes to it are discarded.
const RegZero Reg = 0

// NoReg marks an unused register slot in an instruction.
const NoReg Reg = 0xFF

// Inst is one dynamic instruction in the dynamic instruction stream (DIS).
//
// The zero value is an ALU instruction at PC 0 that reads and writes %g0,
// i.e. an instruction with no dependences or memory behaviour.
type Inst struct {
	// PC is the virtual address of the instruction. Instruction-cache
	// behaviour is derived from it (64-byte lines hold 16 instructions).
	PC uint64
	// Class selects the behaviour of the instruction.
	Class Class
	// Src1, Src2 are source registers; NoReg when unused. For loads, Src1
	// is the address base. For stores, Src1 is the address base and Src2
	// the data source. For branches, Src1 (and optionally Src2) are the
	// condition inputs.
	Src1, Src2 Reg
	// Dst is the destination register, NoReg when the instruction produces
	// no register result (stores, branches, membar, nop, prefetch).
	Dst Reg
	// EA is the effective data address for memory instructions.
	EA uint64
	// Taken is the actual outcome for branches.
	Taken bool
	// Target is the branch target address (used by the BTB model).
	Target uint64
	// Value is the data value loaded by a Load/CASA/LDSTUB; it feeds the
	// value predictor. For other classes it is ignored.
	Value uint64
}

// HasDst reports whether the instruction produces a register value that
// later instructions can depend on (writes to %g0 are discarded).
func (in *Inst) HasDst() bool { return in.Dst != NoReg && in.Dst != RegZero }

// SrcRegs appends the instruction's architecturally meaningful source
// registers to dst and returns it. Reads of %g0 are omitted because they
// never create dependences.
func (in *Inst) SrcRegs(dst []Reg) []Reg {
	if in.Src1 != NoReg && in.Src1 != RegZero {
		dst = append(dst, in.Src1)
	}
	if in.Src2 != NoReg && in.Src2 != RegZero {
		dst = append(dst, in.Src2)
	}
	return dst
}

// String renders a compact human-readable form, e.g.
// "Load pc=0x1000 r4<-[0xbeef] src=r2".
func (in *Inst) String() string {
	s := fmt.Sprintf("%s pc=%#x", in.Class, in.PC)
	if in.Class.IsMem() {
		s += fmt.Sprintf(" ea=%#x", in.EA)
	}
	if in.HasDst() {
		s += fmt.Sprintf(" dst=r%d", in.Dst)
	}
	if in.Src1 != NoReg {
		s += fmt.Sprintf(" src1=r%d", in.Src1)
	}
	if in.Src2 != NoReg {
		s += fmt.Sprintf(" src2=r%d", in.Src2)
	}
	if in.Class == Branch {
		s += fmt.Sprintf(" taken=%t tgt=%#x", in.Taken, in.Target)
	}
	return s
}

package mem

// HierarchyConfig describes the paper's default on-chip hierarchy
// (§5.1): 32KB 4-way 64B L1 I and D caches, a 2MB 4-way 64B shared L2,
// no L3, and a 2K-entry shared TLB.
type HierarchyConfig struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig
	// L3 is an optional third-level cache (zero value = absent, the
	// paper's default). §2.1 anticipates future parts with on-chip L3s:
	// with one configured, an access is off-chip only when it misses the
	// L3.
	L3 CacheConfig
	// TLBEntries is the size of the shared TLB (0 disables TLB modelling).
	TLBEntries int
	// PageBytes is the virtual page size used by the TLB.
	PageBytes int
}

// HasL3 reports whether an L3 is configured.
func (h HierarchyConfig) HasL3() bool { return h.L3.SizeBytes > 0 }

// WithL3 returns a copy with an L3 of the given capacity (4-way, 64B
// lines).
func (h HierarchyConfig) WithL3(bytes int) HierarchyConfig {
	h.L3 = CacheConfig{SizeBytes: bytes, Assoc: 4, LineBytes: 64}
	return h
}

// DefaultHierarchy returns the paper's default configuration.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:        CacheConfig{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64},
		L1D:        CacheConfig{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64},
		L2:         CacheConfig{SizeBytes: 2 << 20, Assoc: 4, LineBytes: 64},
		TLBEntries: 2048,
		PageBytes:  8 << 10,
	}
}

// WithL2Size returns a copy of the configuration with the L2 capacity
// replaced (used by the Figure 7 cache-size sweep).
func (h HierarchyConfig) WithL2Size(bytes int) HierarchyConfig {
	h.L2.SizeBytes = bytes
	return h
}

// AccessKind distinguishes the three kinds of hierarchy lookups.
type AccessKind uint8

const (
	// IFetch is an instruction fetch (L1I then L2).
	IFetch AccessKind = iota
	// DRead is a data read: load, atomic, or demand part of a prefetch.
	DRead
	// DWrite is a data write (write-allocate, so it fills like a read).
	DWrite
)

// Hierarchy is the functional two-level cache hierarchy plus TLB. An access
// is *off-chip* exactly when it misses the shared L2; that is the paper's
// definition of a long-latency access. TLB misses are modelled as on-chip
// events (a hardware walk that hits the on-chip caches) and are only
// reported statistically.
type Hierarchy struct {
	cfg HierarchyConfig
	l1i *Cache
	l1d *Cache
	l2  *Cache
	l3  *Cache // nil when absent
	tlb *TLB

	ifetches, imisses uint64 // L2-missing instruction fetches
	dreads, dmisses   uint64 // L2-missing data reads
	dwrites           uint64
	offChip           uint64 // all L2 misses (reads, writes, fetches)
}

// NewHierarchy builds the hierarchy. It panics on invalid geometry.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		l1i: NewCache(cfg.L1I),
		l1d: NewCache(cfg.L1D),
		l2:  NewCache(cfg.L2),
	}
	if cfg.HasL3() {
		h.l3 = NewCache(cfg.L3)
	}
	if cfg.TLBEntries > 0 {
		h.tlb = NewTLB(cfg.TLBEntries, cfg.PageBytes)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// LineAddr maps a byte address to an L2 line address (the granularity at
// which off-chip accesses merge).
func (h *Hierarchy) LineAddr(addr uint64) uint64 { return h.l2.LineAddr(addr) }

// Access performs one lookup and returns true when the access goes
// off-chip (misses the L2). All levels allocate on miss.
func (h *Hierarchy) Access(kind AccessKind, addr uint64) bool {
	if h.tlb != nil && kind != IFetch {
		h.tlb.Access(addr)
	}
	var l1 *Cache
	switch kind {
	case IFetch:
		l1 = h.l1i
		h.ifetches++
	case DRead:
		l1 = h.l1d
		h.dreads++
	case DWrite:
		l1 = h.l1d
		h.dwrites++
	default:
		panic("mem: unknown access kind")
	}
	if l1.Access(addr) {
		return false
	}
	if h.l2.Access(addr) {
		return false
	}
	if h.l3 != nil && h.l3.Access(addr) {
		return false
	}
	h.offChip++
	switch kind {
	case IFetch:
		h.imisses++
	case DRead:
		h.dmisses++
	}
	return true
}

// ProbeOffChip reports whether addr would go off-chip for the given kind,
// without changing any state.
func (h *Hierarchy) ProbeOffChip(kind AccessKind, addr uint64) bool {
	l1 := h.l1d
	if kind == IFetch {
		l1 = h.l1i
	}
	if l1.Probe(addr) || h.l2.Probe(addr) {
		return false
	}
	return h.l3 == nil || !h.l3.Probe(addr)
}

// InsertLine installs the line containing addr into the L2 and the
// appropriate L1 (modelling a completed fill or prefetch).
func (h *Hierarchy) InsertLine(kind AccessKind, addr uint64) {
	if h.l3 != nil {
		h.l3.Insert(addr)
	}
	h.l2.Insert(addr)
	if kind == IFetch {
		h.l1i.Insert(addr)
	} else {
		h.l1d.Insert(addr)
	}
}

// Stats summarizes hierarchy behaviour since the last ResetStats.
type Stats struct {
	IFetches      uint64 // instruction-fetch lookups (one per new line fetched)
	IFetchOffChip uint64 // instruction fetches that went off-chip
	DReads        uint64
	DReadOffChip  uint64
	DWrites       uint64
	OffChipTotal  uint64 // all L2 misses including writes
	L1IMisses     uint64
	L1DMisses     uint64
	L2Misses      uint64
	L3Misses      uint64
	TLBMisses     uint64
	TLBAccesses   uint64
}

// Stats returns the current counters.
func (h *Hierarchy) Stats() Stats {
	_, l1im := h.l1i.Stats()
	_, l1dm := h.l1d.Stats()
	_, l2m := h.l2.Stats()
	var l3m uint64
	if h.l3 != nil {
		_, l3m = h.l3.Stats()
	}
	s := Stats{
		IFetches:      h.ifetches,
		IFetchOffChip: h.imisses,
		DReads:        h.dreads,
		DReadOffChip:  h.dmisses,
		DWrites:       h.dwrites,
		OffChipTotal:  h.offChip,
		L1IMisses:     l1im,
		L1DMisses:     l1dm,
		L2Misses:      l2m,
		L3Misses:      l3m,
	}
	if h.tlb != nil {
		s.TLBAccesses, s.TLBMisses = h.tlb.Stats()
	}
	return s
}

// ResetStats zeroes all counters while keeping cache and TLB contents —
// used at the end of the warm-up window.
func (h *Hierarchy) ResetStats() {
	h.l1i.ResetStats()
	h.l1d.ResetStats()
	h.l2.ResetStats()
	if h.l3 != nil {
		h.l3.ResetStats()
	}
	if h.tlb != nil {
		h.tlb.ResetStats()
	}
	h.ifetches, h.imisses = 0, 0
	h.dreads, h.dmisses = 0, 0
	h.dwrites = 0
	h.offChip = 0
}

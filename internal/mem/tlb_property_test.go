package mem

import (
	"math/rand"
	"testing"
)

// refTLB is the retained map-based reference implementation the
// open-addressed TLB replaced: an LRU stamp map whose miss path scans all
// resident stamps for the minimum. The flat TLB must reproduce its
// hit/miss outcomes, statistics and resident count exactly — the clock is
// strictly increasing, so min-stamp eviction is LRU eviction.
type refTLB struct {
	entries   int
	pageShift uint
	stamp     map[uint64]uint64
	clock     uint64

	accesses uint64
	misses   uint64
}

func newRefTLB(entries, pageBytes int) *refTLB {
	shift := uint(0)
	for 1<<shift != pageBytes {
		shift++
	}
	return &refTLB{
		entries:   entries,
		pageShift: shift,
		stamp:     make(map[uint64]uint64, entries+1),
	}
}

func (t *refTLB) Access(addr uint64) bool {
	page := addr >> t.pageShift
	t.clock++
	t.accesses++
	if _, ok := t.stamp[page]; ok {
		t.stamp[page] = t.clock
		return true
	}
	t.misses++
	if len(t.stamp) >= t.entries {
		var victim uint64
		oldest := t.clock + 1
		for p, s := range t.stamp {
			if s < oldest {
				oldest = s
				victim = p
			}
		}
		delete(t.stamp, victim)
	}
	t.stamp[page] = t.clock
	return false
}

// TestTLBMatchesMapReferenceRandom drives random access sequences through
// the open-addressed TLB and the map-based reference in lock-step across
// random geometries. Page spaces are drawn a little larger than the entry
// count, so the tables run at full occupancy and evict on a large
// fraction of accesses — the pressure path where LRU order, index
// deletion and victim choice must all agree.
func TestTLBMatchesMapReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		entries := 1 + rng.Intn(96)
		pageBytes := 1 << (9 + rng.Intn(6))
		// Alternate tight pressure (constant evictions), moderate reuse,
		// and a sparse space (mostly compulsory misses).
		var pageSpace int
		switch trial % 3 {
		case 0:
			pageSpace = entries + 1 + rng.Intn(entries+1)
		case 1:
			pageSpace = 2*entries + rng.Intn(4*entries)
		default:
			pageSpace = 64 * (entries + 1)
		}
		tlb := NewTLB(entries, pageBytes)
		ref := newRefTLB(entries, pageBytes)
		for i := 0; i < 4000; i++ {
			addr := uint64(rng.Intn(pageSpace))*uint64(pageBytes) + uint64(rng.Intn(pageBytes))
			got, want := tlb.Access(addr), ref.Access(addr)
			if got != want {
				t.Fatalf("trial %d (entries=%d space=%d) access %d addr %#x: hit=%v, reference %v",
					trial, entries, pageSpace, i, addr, got, want)
			}
			if tlb.Len() != len(ref.stamp) {
				t.Fatalf("trial %d access %d: Len=%d, reference %d", trial, i, tlb.Len(), len(ref.stamp))
			}
		}
		acc, miss := tlb.Stats()
		if acc != ref.accesses || miss != ref.misses {
			t.Fatalf("trial %d: stats (%d,%d), reference (%d,%d)", trial, acc, miss, ref.accesses, ref.misses)
		}
	}
}

// TestTLBResidentSetMatchesReference replays a pressured sequence and then
// probes every page the reference holds (and a band it does not): the two
// implementations must agree on exactly which translations survived.
func TestTLBResidentSetMatchesReference(t *testing.T) {
	const entries, pageBytes = 32, 4096
	rng := rand.New(rand.NewSource(7))
	tlb := NewTLB(entries, pageBytes)
	ref := newRefTLB(entries, pageBytes)
	for i := 0; i < 2000; i++ {
		addr := uint64(rng.Intn(3*entries)) * pageBytes
		tlb.Access(addr)
		ref.Access(addr)
	}
	// Probing mutates LRU state identically on both sides, so agreement
	// must hold for every consecutive probe.
	for page := uint64(0); page < 3*entries; page++ {
		_, want := ref.stamp[page]
		// A hit on the flat table without a corresponding reference entry
		// (or vice versa) means the resident sets diverged.
		if got := tlb.Access(page * pageBytes); got != want {
			t.Fatalf("page %d: resident=%v, reference %v", page, got, want)
		}
		ref.Access(page * pageBytes)
	}
}

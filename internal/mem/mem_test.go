package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{SizeBytes: 0, Assoc: 4, LineBytes: 64},
		{SizeBytes: 32 << 10, Assoc: 0, LineBytes: 64},
		{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 48},
		{SizeBytes: 100, Assoc: 4, LineBytes: 64},
		{SizeBytes: 3 * 64 * 4, Assoc: 4, LineBytes: 64}, // 3 sets: not a power of two
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if got := good.Sets(); got != 128 {
		t.Errorf("Sets = %d, want 128", got)
	}
}

func TestCacheHitMissBasics(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, Assoc: 2, LineBytes: 64}) // 8 sets
	if c.Access(0x1000) {
		t.Fatal("first access must miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x103F) {
		t.Fatal("same-line access must hit")
	}
	if c.Access(0x1040) {
		t.Fatal("next-line access must miss")
	}
	acc, miss := c.Stats()
	if acc != 4 || miss != 2 {
		t.Fatalf("stats = (%d,%d), want (4,2)", acc, miss)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way, 1 set: size = 2 lines.
	c := NewCache(CacheConfig{SizeBytes: 128, Assoc: 2, LineBytes: 64})
	c.Access(0x0)  // miss: {0}
	c.Access(0x40) // miss: {0,1}
	c.Access(0x0)  // hit, 0 more recent than 1
	c.Access(0x80) // miss, evicts line 1 (LRU)
	if !c.Probe(0x0) {
		t.Fatal("line 0 should survive (was MRU)")
	}
	if c.Probe(0x40) {
		t.Fatal("line 1 should have been evicted (was LRU)")
	}
	if !c.Probe(0x80) {
		t.Fatal("line 2 should be present")
	}
}

func TestCacheProbeDoesNotPerturb(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 128, Assoc: 2, LineBytes: 64})
	c.Access(0x0)
	c.Access(0x40)
	// Probing line 0 must NOT refresh it.
	for i := 0; i < 10; i++ {
		c.Probe(0x0)
	}
	c.Access(0x80) // evicts LRU = line 0 (line 1 is MRU)
	if c.Probe(0x0) {
		t.Fatal("probe must not refresh recency")
	}
	acc, miss := c.Stats()
	if acc != 3 || miss != 3 {
		t.Fatalf("probe perturbed stats: (%d,%d)", acc, miss)
	}
}

func TestCacheTouch(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 128, Assoc: 2, LineBytes: 64})
	if c.Touch(0x0) {
		t.Fatal("touch of absent line must miss")
	}
	if c.Probe(0x0) {
		t.Fatal("touch must not allocate")
	}
	c.Access(0x0)
	c.Access(0x40)
	if !c.Touch(0x0) {
		t.Fatal("touch of resident line must hit")
	}
	c.Access(0x80) // now line 1 (0x40) is LRU and is evicted
	if !c.Probe(0x0) {
		t.Fatal("touch must refresh recency")
	}
	if c.Probe(0x40) {
		t.Fatal("0x40 should have been the victim")
	}
}

func TestCacheInsert(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 128, Assoc: 2, LineBytes: 64})
	c.Insert(0x0)
	if !c.Probe(0x0) {
		t.Fatal("insert must make the line resident")
	}
	acc, miss := c.Stats()
	if acc != 0 || miss != 0 {
		t.Fatal("insert must not count as a demand access")
	}
	// Insert respects LRU on conflict.
	c.Insert(0x40)
	c.Insert(0x0) // refresh 0
	c.Insert(0x80)
	if c.Probe(0x40) {
		t.Fatal("insert should evict LRU")
	}
}

func TestCacheFlushAndResetStats(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, Assoc: 2, LineBytes: 64})
	for i := uint64(0); i < 20; i++ {
		c.Access(i * 64)
	}
	c.ResetStats()
	if acc, miss := c.Stats(); acc != 0 || miss != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	if !c.Probe(19 * 64) {
		t.Fatal("ResetStats must not drop contents")
	}
	c.Flush()
	if c.Probe(19 * 64) {
		t.Fatal("Flush must drop contents")
	}
}

// Property: a cache never reports more misses than accesses, and a
// fully-covered working set that fits in the cache has zero steady-state
// misses.
func TestCacheProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache(CacheConfig{SizeBytes: 4096, Assoc: 4, LineBytes: 64})
		// Working set of 32 lines in 64-line cache: after one pass, all hits.
		lines := make([]uint64, 32)
		for i := range lines {
			lines[i] = uint64(i) * 64 * 997 // scattered sets
		}
		for _, a := range lines {
			c.Access(a)
		}
		c.ResetStats()
		for pass := 0; pass < 4; pass++ {
			for _, i := range rng.Perm(len(lines)) {
				c.Access(lines[i])
			}
		}
		acc, miss := c.Stats()
		return miss == 0 && acc == 4*32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		c := NewCache(CacheConfig{SizeBytes: 2048, Assoc: 2, LineBytes: 64})
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 10000; i++ {
			c.Access(uint64(rng.Intn(1 << 16)))
		}
		return c.Stats()
	}
	a1, m1 := run()
	a2, m2 := run()
	if a1 != a2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", a1, m1, a2, m2)
	}
}

func TestHierarchyOffChipClassification(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	if !h.Access(DRead, 0xdead000) {
		t.Fatal("cold read must go off-chip")
	}
	if h.Access(DRead, 0xdead000) {
		t.Fatal("warm read must stay on-chip")
	}
	// L1D miss but L2 hit stays on-chip: evict from tiny L1 by conflict.
	// Fill L1D's set for address A with enough conflicting lines.
	base := uint64(0x100000)
	setStride := uint64(h.Config().L1D.SizeBytes / h.Config().L1D.Assoc) // bytes per way
	h.Access(DRead, base)
	for i := uint64(1); i <= 8; i++ {
		h.Access(DRead, base+i*setStride)
	}
	if h.ProbeOffChip(DRead, base) {
		t.Fatal("line evicted from L1D must still hit in L2")
	}
	if h.Access(DRead, base) {
		t.Fatal("L2 hit must not be off-chip")
	}
}

func TestHierarchyIFetchUsesL1I(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	if !h.Access(IFetch, 0x40000000) {
		t.Fatal("cold fetch must go off-chip")
	}
	if h.Access(IFetch, 0x40000000) {
		t.Fatal("warm fetch must hit")
	}
	// A data access to the same line must hit in (shared) L2 even though
	// it misses the (split) L1D.
	if h.Access(DRead, 0x40000000) {
		t.Fatal("data access to I-line must hit shared L2")
	}
	s := h.Stats()
	if s.IFetches != 2 || s.IFetchOffChip != 1 {
		t.Fatalf("ifetch stats = %d/%d, want 2/1", s.IFetches, s.IFetchOffChip)
	}
	if s.DReads != 1 || s.DReadOffChip != 0 {
		t.Fatalf("dread stats = %d/%d, want 1/0", s.DReads, s.DReadOffChip)
	}
}

func TestHierarchyInsertLine(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.InsertLine(DRead, 0xabc0000)
	if h.ProbeOffChip(DRead, 0xabc0000) {
		t.Fatal("inserted line must be on-chip")
	}
	if h.Access(DRead, 0xabc0000) {
		t.Fatal("access after insert must hit")
	}
}

func TestHierarchyWriteAllocate(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	if !h.Access(DWrite, 0x5000000) {
		t.Fatal("cold write goes off-chip (write-allocate)")
	}
	if h.Access(DRead, 0x5000000) {
		t.Fatal("read after write-allocate must hit")
	}
	s := h.Stats()
	if s.DWrites != 1 {
		t.Fatalf("DWrites = %d", s.DWrites)
	}
	// Write misses count in OffChipTotal but not in DReadOffChip.
	if s.OffChipTotal != 1 || s.DReadOffChip != 0 {
		t.Fatalf("off-chip counts = total %d, dread %d", s.OffChipTotal, s.DReadOffChip)
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	for i := uint64(0); i < 100; i++ {
		h.Access(DRead, i*64*12345)
	}
	h.ResetStats()
	s := h.Stats()
	if s.DReads != 0 || s.OffChipTotal != 0 || s.L2Misses != 0 {
		t.Fatalf("ResetStats left counters: %+v", s)
	}
	// Contents preserved.
	if h.Access(DRead, 99*64*12345) {
		t.Fatal("ResetStats must not flush contents")
	}
}

func TestWithL2Size(t *testing.T) {
	cfg := DefaultHierarchy().WithL2Size(8 << 20)
	if cfg.L2.SizeBytes != 8<<20 {
		t.Fatal("WithL2Size did not apply")
	}
	if cfg.L1D.SizeBytes != 32<<10 {
		t.Fatal("WithL2Size must not touch L1")
	}
	// Larger L2 yields fewer or equal misses on the same stream.
	run := func(l2 int) uint64 {
		h := NewHierarchy(DefaultHierarchy().WithL2Size(l2))
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200000; i++ {
			h.Access(DRead, uint64(rng.Intn(6<<20))&^63)
		}
		return h.Stats().OffChipTotal
	}
	small, big := run(1<<20), run(8<<20)
	if big >= small {
		t.Fatalf("8MB L2 misses (%d) not below 1MB L2 misses (%d)", big, small)
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(4, 8192)
	if tlb.Access(0x0000) {
		t.Fatal("cold TLB access must miss")
	}
	if !tlb.Access(0x1fff) {
		t.Fatal("same-page access must hit")
	}
	if tlb.Access(0x2000) {
		t.Fatal("next page must miss")
	}
	for p := uint64(2); p < 5; p++ {
		tlb.Access(p * 8192)
	}
	if tlb.Len() != 4 {
		t.Fatalf("TLB holds %d entries, want capacity 4", tlb.Len())
	}
	// Page 0 was LRU (pages 1..4 touched after): must have been evicted.
	if tlb.Access(0x0000) {
		t.Fatal("evicted page must miss")
	}
	acc, miss := tlb.Stats()
	if acc != 7 || miss != 6 {
		t.Fatalf("stats = (%d,%d), want (7,6)", acc, miss)
	}
	tlb.ResetStats()
	if a, m := tlb.Stats(); a != 0 || m != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestTLBPanicsOnBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTLB(0, 8192) },
		func() { NewTLB(16, 3000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad TLB config did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNewCachePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad cache config did not panic")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 100, Assoc: 3, LineBytes: 48})
}

func TestOptionalL3(t *testing.T) {
	cfg := DefaultHierarchy().WithL3(16 << 20)
	if !cfg.HasL3() {
		t.Fatal("WithL3 did not configure an L3")
	}
	h := NewHierarchy(cfg)
	// First access: misses all levels.
	if !h.Access(DRead, 0xabcd000) {
		t.Fatal("cold read must go off-chip even with an L3")
	}
	// Evict from L1D and L2 via conflict traffic; the L3 keeps it on-chip.
	setStrideL1 := uint64(h.Config().L1D.SizeBytes / h.Config().L1D.Assoc)
	setStrideL2 := uint64(h.Config().L2.SizeBytes / h.Config().L2.Assoc)
	for i := uint64(1); i <= 8; i++ {
		h.Access(DRead, 0xabcd000+i*setStrideL1)
		h.Access(DRead, 0xabcd000+i*setStrideL2)
	}
	if h.Access(DRead, 0xabcd000) {
		t.Fatal("L3-resident line went off-chip")
	}
	s := h.Stats()
	if s.L3Misses == 0 {
		t.Fatal("L3 recorded no misses")
	}
	// A no-L3 hierarchy would have gone off-chip on the same stream.
	h2 := NewHierarchy(DefaultHierarchy())
	h2.Access(DRead, 0xabcd000)
	for i := uint64(1); i <= 8; i++ {
		h2.Access(DRead, 0xabcd000+i*setStrideL1)
		h2.Access(DRead, 0xabcd000+i*setStrideL2)
	}
	if !h2.Access(DRead, 0xabcd000) {
		t.Fatal("without an L3 the evicted line must go off-chip")
	}
	// InsertLine covers the L3 too.
	h.InsertLine(DRead, 0x9990000)
	if h.ProbeOffChip(DRead, 0x9990000) {
		t.Fatal("inserted line must be on-chip")
	}
	h.ResetStats()
	if h.Stats().L3Misses != 0 {
		t.Fatal("ResetStats left L3 counters")
	}
}

// Package mem models the on-chip memory hierarchy used to classify
// off-chip accesses: set-associative LRU caches, a two-level (L1 + shared
// L2) hierarchy and a TLB.
//
// The simulators only need a functional model — which accesses leave the
// chip — not a timing model; timing is owned by the epoch model
// (internal/core) and the cycle simulator (internal/cyclesim).
package mem

import "fmt"

// CacheConfig describes one cache's geometry.
type CacheConfig struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the set associativity (ways).
	Assoc int
	// LineBytes is the cache line size.
	LineBytes int
}

// Validate checks the geometry for internal consistency.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("mem: size %d must be positive", c.SizeBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("mem: associativity %d must be positive", c.Assoc)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: line size %d must be a positive power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("mem: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	sets := lines / c.Assoc
	if sets <= 0 || sets*c.Assoc != lines {
		return fmt.Errorf("mem: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: set count %d must be a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int { return c.SizeBytes / c.LineBytes / c.Assoc }

// Cache is a set-associative cache with true-LRU replacement. Tags record
// line addresses; there is no data storage (functional model).
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	setMask   uint64
	// tags[set*assoc+way] holds the line address + 1 (0 means invalid).
	tags []uint64
	// lru[set*assoc+way] holds a recency stamp; larger is more recent.
	lru   []uint64
	clock uint64

	accesses uint64
	misses   uint64
}

// NewCache builds a cache. It panics on invalid geometry: configurations
// are programmer-supplied constants, not runtime inputs.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	n := cfg.Sets() * cfg.Assoc
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(cfg.Sets() - 1),
		tags:      make([]uint64, n),
		lru:       make([]uint64, n),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr maps a byte address to its line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// Access looks up addr, allocating the line on a miss (allocate-on-miss for
// both reads and writes; the paper's hierarchy is write-allocate). It
// returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	return c.accessLine(c.LineAddr(addr), true)
}

// Probe reports whether addr currently hits, without updating replacement
// state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	line := c.LineAddr(addr)
	set := int(line & c.setMask)
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == line+1 {
			return true
		}
	}
	return false
}

// Touch updates recency for addr if present, without allocating. It is used
// when a second access in the same epoch should refresh LRU but must not
// double-count a miss.
func (c *Cache) Touch(addr uint64) bool {
	return c.accessLine(c.LineAddr(addr), false)
}

// Insert forces the line containing addr into the cache (used for
// prefetches and for modelling fills from runahead).
func (c *Cache) Insert(addr uint64) {
	line := c.LineAddr(addr)
	set := int(line & c.setMask)
	base := set * c.cfg.Assoc
	c.clock++
	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.tags[i] == line+1 {
			c.lru[i] = c.clock
			return
		}
		if c.tags[i] == 0 {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.tags[victim] = line + 1
	c.lru[victim] = c.clock
}

func (c *Cache) accessLine(line uint64, allocate bool) bool {
	set := int(line & c.setMask)
	base := set * c.cfg.Assoc
	c.clock++
	if allocate {
		c.accesses++
	}
	victim := base
	empty := -1
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.tags[i] == line+1 {
			c.lru[i] = c.clock
			return true
		}
		if c.tags[i] == 0 && empty < 0 {
			empty = i
		} else if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	if !allocate {
		return false
	}
	c.misses++
	if empty >= 0 {
		victim = empty
	}
	c.tags[victim] = line + 1
	c.lru[victim] = c.clock
	return false
}

// Stats returns (accesses, misses) counted by Access.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// ResetStats zeroes the access/miss counters without disturbing contents.
// It is called at the end of a warm-up window.
func (c *Cache) ResetStats() { c.accesses, c.misses = 0, 0 }

// Flush invalidates all lines and zeroes statistics.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.clock = 0
	c.ResetStats()
}

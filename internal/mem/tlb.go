package mem

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement, modelled at page granularity. The paper's default
// configuration has a 2K-entry shared TLB; TLB misses are treated as
// on-chip events (hardware table walk) and affect no MLP accounting, so
// only hit/miss statistics are exposed.
type TLB struct {
	entries   int
	pageShift uint
	// order is an LRU list from most- to least-recently used page numbers,
	// backed by a map for O(1) membership. For 2K entries a doubly linked
	// list via maps of prev/next indices would be overkill; we use a
	// map + clock sweep like the caches.
	stamp map[uint64]uint64
	clock uint64

	accesses uint64
	misses   uint64
}

// NewTLB builds a TLB with the given entry count and page size. Page size
// must be a power of two.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 {
		panic("mem: TLB entries must be positive")
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("mem: TLB page size must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift != pageBytes {
		shift++
	}
	return &TLB{
		entries:   entries,
		pageShift: shift,
		stamp:     make(map[uint64]uint64, entries+1),
	}
}

// Access looks up the page containing addr, allocating on a miss and
// evicting the least recently used page when full. It returns true on a
// hit.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageShift
	t.clock++
	t.accesses++
	if _, ok := t.stamp[page]; ok {
		t.stamp[page] = t.clock
		return true
	}
	t.misses++
	if len(t.stamp) >= t.entries {
		var victim uint64
		oldest := t.clock + 1
		for p, s := range t.stamp {
			if s < oldest {
				oldest = s
				victim = p
			}
		}
		delete(t.stamp, victim)
	}
	t.stamp[page] = t.clock
	return false
}

// Stats returns (accesses, misses).
func (t *TLB) Stats() (accesses, misses uint64) { return t.accesses, t.misses }

// ResetStats zeroes the counters without dropping translations.
func (t *TLB) ResetStats() { t.accesses, t.misses = 0, 0 }

// Len returns the number of resident translations.
func (t *TLB) Len() int { return len(t.stamp) }

package mem

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement, modelled at page granularity. The paper's default
// configuration has a 2K-entry shared TLB; TLB misses are treated as
// on-chip events (hardware table walk) and affect no MLP accounting, so
// only hit/miss statistics are exposed.
//
// The resident set lives in flat arrays: an open-addressed linear-probing
// index (page -> node, sized at twice the entry count so the load factor
// never exceeds 0.5, mirroring core.StoreTable) over node storage threaded
// with an intrusive doubly-linked LRU list. Every access is O(1) — the old
// map-based implementation rescanned all resident stamps on each miss to
// find the LRU victim, which dominated the annotation hot path. The
// clock-stamp ordering it used is exactly LRU order (the clock was
// strictly increasing), so hit/miss outcomes, eviction victims and all
// statistics are bit-identical; TestTLBMatchesMapReferenceRandom pins
// that against the retained map-based reference.
type TLB struct {
	entries   int
	pageShift uint

	// Open-addressed index: idxKeys[i] holds page+1 (0 = empty slot) and
	// idxVals[i] the node index. Pages are addr>>pageShift, so page+1
	// cannot wrap.
	idxKeys   []uint64
	idxVals   []int32
	mask      uint64
	hashShift uint

	// Node storage: pages[n] is resident, linked MRU-first through
	// prev/next (-1 terminated).
	pages []uint64
	prev  []int32
	next  []int32
	head  int32
	tail  int32
	used  int

	accesses uint64
	misses   uint64
}

// NewTLB builds a TLB with the given entry count and page size. Page size
// must be a power of two.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 {
		panic("mem: TLB entries must be positive")
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("mem: TLB page size must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift != pageBytes {
		shift++
	}
	bits := uint(1)
	for 1<<bits < 2*entries {
		bits++
	}
	return &TLB{
		entries:   entries,
		pageShift: shift,
		idxKeys:   make([]uint64, 1<<bits),
		idxVals:   make([]int32, 1<<bits),
		mask:      uint64(1<<bits - 1),
		hashShift: 64 - bits,
		pages:     make([]uint64, entries),
		prev:      make([]int32, entries),
		next:      make([]int32, entries),
		head:      -1,
		tail:      -1,
	}
}

// slot is a Fibonacci hash: page numbers are heavily clustered, and the
// multiply spreads consecutive keys across the index.
func (t *TLB) slot(page uint64) uint64 {
	return (page * 0x9E3779B97F4A7C15) >> t.hashShift & t.mask
}

// lookup returns the node holding page, or -1.
func (t *TLB) lookup(page uint64) int32 {
	k := page + 1
	for i := t.slot(page); ; i = (i + 1) & t.mask {
		switch t.idxKeys[i] {
		case k:
			return t.idxVals[i]
		case 0:
			return -1
		}
	}
}

// idxInsert records page -> n in the index. The caller guarantees page is
// absent and the index is at most half full, so probing terminates.
func (t *TLB) idxInsert(page uint64, n int32) {
	i := t.slot(page)
	for t.idxKeys[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.idxKeys[i] = page + 1
	t.idxVals[i] = n
}

// idxDelete removes page from the index with backward-shift deletion, so
// no tombstones accumulate and probe chains stay contiguous.
func (t *TLB) idxDelete(page uint64) {
	k := page + 1
	i := t.slot(page)
	for t.idxKeys[i] != k {
		i = (i + 1) & t.mask
	}
	j := i
	for {
		t.idxKeys[i] = 0
		for {
			j = (j + 1) & t.mask
			if t.idxKeys[j] == 0 {
				return
			}
			// Move j's entry into the hole unless its home slot lies
			// cyclically within (i, j] — then the hole does not break its
			// probe chain.
			h := t.slot(t.idxKeys[j] - 1)
			if (j > i && (h <= i || h > j)) || (j < i && h <= i && h > j) {
				break
			}
		}
		t.idxKeys[i] = t.idxKeys[j]
		t.idxVals[i] = t.idxVals[j]
		i = j
	}
}

// unlink removes node n from the LRU list.
func (t *TLB) unlink(n int32) {
	if t.prev[n] >= 0 {
		t.next[t.prev[n]] = t.next[n]
	} else {
		t.head = t.next[n]
	}
	if t.next[n] >= 0 {
		t.prev[t.next[n]] = t.prev[n]
	} else {
		t.tail = t.prev[n]
	}
}

// pushFront makes node n the MRU.
func (t *TLB) pushFront(n int32) {
	t.prev[n] = -1
	t.next[n] = t.head
	if t.head >= 0 {
		t.prev[t.head] = n
	}
	t.head = n
	if t.tail < 0 {
		t.tail = n
	}
}

// Access looks up the page containing addr, allocating on a miss and
// evicting the least recently used page when full. It returns true on a
// hit.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageShift
	t.accesses++
	if n := t.lookup(page); n >= 0 {
		if t.head != n {
			t.unlink(n)
			t.pushFront(n)
		}
		return true
	}
	t.misses++
	var n int32
	if t.used >= t.entries {
		n = t.tail
		t.unlink(n)
		t.idxDelete(t.pages[n])
	} else {
		n = int32(t.used)
		t.used++
	}
	t.pages[n] = page
	t.idxInsert(page, n)
	t.pushFront(n)
	return false
}

// Stats returns (accesses, misses).
func (t *TLB) Stats() (accesses, misses uint64) { return t.accesses, t.misses }

// ResetStats zeroes the counters without dropping translations.
func (t *TLB) ResetStats() { t.accesses, t.misses = 0, 0 }

// Len returns the number of resident translations.
func (t *TLB) Len() int { return t.used }

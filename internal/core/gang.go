package core

import "mlpsim/internal/annotate"

// gangRingInsts is the initial broadcast-ring capacity (instructions).
// The scheduler always steps the engine furthest behind, which keeps the
// run-ahead spread near one epoch's consumption; the ring doubles on the
// rare occasions (e.g. a miss-free stretch consumed whole by one epoch)
// that the spread genuinely outruns it.
const gangRingInsts = 4096

// gangRing decodes the annotated stream exactly once — one NextInto per
// dynamic instruction — and binds each instruction's dependence links
// exactly once, broadcasting both to every engine in the gang. The ring
// is stored as parallel columns, keyed by absolute instruction index:
//
//	meta — the packed metaWord (flags + class predicates)
//	lnk  — the six dependence links, kept together because the epoch
//	       model reads them as a unit per execution attempt
//	ai   — the full decoded annotate.Inst, allocated only when a scalar
//	       fallback engine rides the ring (SoA engines run on meta+lnk
//	       alone, so an all-SoA gang never stores the wide struct)
//
// Links and meta are a pure function of the stream (register renaming,
// store forwarding, same-class predecessor chains), so engines fed from
// the ring skip their own binder and StoreTable entirely.
type gangRing struct {
	src     AnnotatedSource
	srcInto inPlaceSource
	bind    *binder

	meta []metaWord
	lnk  []links
	ai   []annotate.Inst // nil unless a scalar consumer needs decoded insts
	// scratch is the decode target when no ai column exists.
	scratch annotate.Inst

	mask int64
	// head is the absolute count of decoded instructions; the ring holds
	// [tail, head).
	head int64
	// tail is a cached lower bound on the lowest index any live consumer
	// still needs, refreshed lazily when the ring looks full. Scalar
	// cursors need their read position; SoA engines need their retire
	// frontier (their whole window reads the ring in place).
	tail int64
	eof  bool

	consumers []ringConsumer
}

// ringConsumer is one engine's claim on ring entries: lowWater is the
// lowest absolute index it may still read, and done reports that it has
// finished and releases the claim.
type ringConsumer interface {
	lowWater() int64
	finished() bool
}

// gangCursor is a scalar engine's private read position in the ring. It
// satisfies AnnotatedSource and the linkedSource fast path; engines copy
// entries out of the ring, never mutate them in place.
type gangCursor struct {
	ring *gangRing
	pos  int64
	done bool
}

func (c *gangCursor) lowWater() int64 { return c.pos }
func (c *gangCursor) finished() bool  { return c.done }

func newGangRing(src AnnotatedSource, wantAI bool, capHint int) *gangRing {
	n := pow2ceil(capHint)
	if n < gangRingInsts {
		n = gangRingInsts
	}
	r := &gangRing{
		src:  src,
		bind: newBinder(),
		meta: make([]metaWord, n),
		lnk:  make([]links, n),
		mask: int64(n) - 1,
	}
	if wantAI {
		r.ai = make([]annotate.Inst, n)
	}
	r.srcInto, _ = src.(inPlaceSource)
	return r
}

func (r *gangRing) newCursor() *gangCursor {
	c := &gangCursor{ring: r}
	r.consumers = append(r.consumers, c)
	return c
}

// refreshTail recomputes the cached tail from the live consumers.
func (r *gangRing) refreshTail() {
	min := r.head
	for _, c := range r.consumers {
		if !c.finished() {
			if low := c.lowWater(); low < min {
				min = low
			}
		}
	}
	r.tail = min
}

// grow doubles the ring, re-placing the live entries.
func (r *gangRing) grow() {
	n := 2 * len(r.lnk)
	meta := make([]metaWord, n)
	lnk := make([]links, n)
	var ai []annotate.Inst
	if r.ai != nil {
		ai = make([]annotate.Inst, n)
	}
	mask := int64(n) - 1
	for j := r.tail; j < r.head; j++ {
		meta[j&mask] = r.meta[j&r.mask]
		lnk[j&mask] = r.lnk[j&r.mask]
		if ai != nil {
			ai[j&mask] = r.ai[j&r.mask]
		}
	}
	r.meta, r.lnk, r.ai, r.mask = meta, lnk, ai, mask
}

// ensure decodes (and binds) until instruction pos is in the ring; it
// returns false when the stream ends first.
func (r *gangRing) ensure(pos int64) bool {
	for pos >= r.head {
		if r.eof {
			return false
		}
		if r.head-r.tail >= int64(len(r.lnk)) {
			r.refreshTail()
			if r.head-r.tail >= int64(len(r.lnk)) {
				r.grow()
			}
		}
		i := r.head & r.mask
		dst := &r.scratch
		if r.ai != nil {
			dst = &r.ai[i]
		}
		ok := false
		if r.srcInto != nil {
			ok = r.srcInto.NextInto(dst)
		} else {
			var ai annotate.Inst
			if ai, ok = r.src.Next(); ok {
				*dst = ai
			}
		}
		if !ok {
			r.eof = true
			return false
		}
		r.bind.bind(dst, r.head, &r.lnk[i])
		r.meta[i] = packMeta(dst)
		r.head++
	}
	return true
}

// NextLinked copies the cursor's next instruction and its pre-bound
// links out of the ring.
func (c *gangCursor) NextLinked(dst *annotate.Inst, ln *links) bool {
	if !c.ring.ensure(c.pos) {
		return false
	}
	i := c.pos & c.ring.mask
	*dst = c.ring.ai[i]
	*ln = c.ring.lnk[i]
	c.pos++
	return true
}

// Next satisfies AnnotatedSource; engines always take the NextLinked
// fast path, this exists only to fit the NewEngine signature.
func (c *gangCursor) Next() (annotate.Inst, bool) {
	var ai annotate.Inst
	var ln links
	ok := c.NextLinked(&ai, &ln)
	return ai, ok
}

// SoAEligible reports whether cfg can run on the gang's structure-of-
// arrays fast path. The fast path implements the uniform window-
// termination structure every out-of-order configuration shares; configs
// whose flags diverge from it — in-order disciplines, runahead, value
// prediction, non-oracle memory disambiguation, finite MSHR files or
// store buffers, or an epoch observer — fall back to the scalar
// slotState engine inside the same gang.
func SoAEligible(cfg Config) bool {
	return cfg.Mode == OutOfOrder &&
		!cfg.Runahead &&
		!cfg.ValuePredict && !cfg.PerfectVP &&
		cfg.Disamb == DisambOracle &&
		cfg.MSHRs == 0 && cfg.StoreBuffer == 0 &&
		cfg.OnEpoch == nil
}

// GangRunStats reports how one gang's instructions were processed: on
// the SoA fast path or by scalar-fallback engines. The split is decided
// per config (an engine either satisfies SoAEligible or it does not), so
// the instruction counts expose the divergence rate of a sweep's config
// mix.
type GangRunStats struct {
	SoAInsts    uint64
	ScalarInsts uint64
}

// gangMember is one engine of a gang plus its scheduling state. Exactly
// one of soa/eng is non-nil.
type gangMember struct {
	soa *soaEngine
	eng *Engine
	cur *gangCursor // non-nil iff eng is (the scalar engines read via cursors)
	// soloSrc marks the degenerate single-scalar gang that runs straight
	// off the source with no ring.
	done bool
}

// pos is the member's scheduling position: the next instruction it will
// consume from the stream.
func (m *gangMember) pos() int64 {
	if m.soa != nil {
		return m.soa.fetchEnd
	}
	if m.cur != nil {
		return m.cur.pos
	}
	return m.eng.srcPulled
}

func (m *gangMember) step() bool {
	if m.soa != nil {
		return m.soa.step()
	}
	return m.eng.step()
}

func (m *gangMember) finish() Result {
	if m.soa != nil {
		return m.soa.finish()
	}
	return m.eng.finish()
}

// release marks the member finished so the ring tail can move past it.
func (m *gangMember) release() {
	m.done = true
	if m.soa != nil {
		m.soa.done = true
	}
	if m.cur != nil {
		m.cur.done = true
	}
}

// Gang steps one engine per config in lock-step over a single decode of
// an annotated stream. Construct with NewGang (so steady-state Run stays
// allocation-free) and call Run once.
type Gang struct {
	ring    *gangRing
	members []gangMember
	results []Result
	stats   GangRunStats
	ran     bool
}

// NewGang builds the ring and engines for cfgs without running them.
// Configs on the SoA fast path get a structure-of-arrays stepper that
// reads meta words and links directly from the shared ring; the rest get
// scalar engines fed through private cursors. A single scalar config
// skips the ring entirely and runs straight off the source.
func NewGang(src AnnotatedSource, cfgs []Config) *Gang {
	g := &Gang{
		members: make([]gangMember, len(cfgs)),
		results: make([]Result, len(cfgs)),
	}
	if len(cfgs) == 0 {
		return g
	}
	if len(cfgs) == 1 && !SoAEligible(cfgs[0]) {
		g.members[0] = gangMember{eng: NewEngine(src, cfgs[0])}
		return g
	}
	wantAI := false
	maxROB := 0
	for _, cfg := range cfgs {
		if !SoAEligible(cfg) {
			wantAI = true
		} else if cfg.ROB > maxROB {
			maxROB = cfg.ROB
		}
	}
	// SoA engines hold ring entries down to their retire frontier, so the
	// ring must span at least the largest SoA window plus scheduling
	// spread; starting there avoids growth doubling during the run.
	ring := newGangRing(src, wantAI, 2*(maxROB+1))
	g.ring = ring
	for i, cfg := range cfgs {
		if SoAEligible(cfg) {
			g.members[i] = gangMember{soa: newSoAEngine(ring, cfg)}
			ring.consumers = append(ring.consumers, g.members[i].soa)
		} else {
			cur := ring.newCursor()
			g.members[i] = gangMember{eng: NewEngine(cur, cfg), cur: cur}
		}
	}
	return g
}

// Run drives every engine to completion and returns their results in
// config order. Results are bit-identical to running each config alone
// against its own copy of the stream: every engine sees the full stream,
// links and meta words are the same pure function of the stream a solo
// engine computes, and engines never share mutable state — so the
// lock-step schedule below affects only performance, never results.
//
// Scheduling is single-threaded: each round steps one epoch of the
// engine whose stream position is furthest behind (ties to the lowest
// index). That engine holds the ring's tail, so stepping it first bounds
// the decode spread; faster engines simply find their entries already
// decoded. An engine that exhausts its stream (EOF or MaxInstructions)
// keeps being stepped until its window drains, then releases its claim
// so the tail can move past it.
func (g *Gang) Run() []Result {
	if g.ran {
		return g.results
	}
	g.ran = true
	live := 0
	for i := range g.members {
		if g.members[i].soa != nil || g.members[i].eng != nil {
			live++
		}
	}
	for live > 0 {
		pick := -1
		var pickPos int64
		for i := range g.members {
			m := &g.members[i]
			if m.done {
				continue
			}
			if p := m.pos(); pick < 0 || p < pickPos {
				pick, pickPos = i, p
			}
		}
		m := &g.members[pick]
		if !m.step() {
			g.results[pick] = m.finish()
			if m.soa != nil {
				g.stats.SoAInsts += uint64(g.results[pick].Instructions)
			} else {
				g.stats.ScalarInsts += uint64(g.results[pick].Instructions)
			}
			m.release()
			live--
		}
	}
	return g.results
}

// Stats reports the gang's fast-path/fallback instruction split. Valid
// after Run.
func (g *Gang) Stats() GangRunStats { return g.stats }

// RunGang runs one engine per config over a single decode of src and
// returns their results in config order. It is NewGang(src, cfgs).Run();
// callers that want the divergence stats or allocation-free repeated
// timing construct the Gang explicitly.
func RunGang(src AnnotatedSource, cfgs []Config) []Result {
	return NewGang(src, cfgs).Run()
}

package core

import "mlpsim/internal/annotate"

// gangRingInsts is the initial broadcast-ring capacity (instructions).
// The scheduler always steps the engine furthest behind, which keeps the
// run-ahead spread near one epoch's consumption; the ring doubles on the
// rare occasions (e.g. a miss-free stretch consumed whole by one epoch)
// that the spread genuinely outruns it.
const gangRingInsts = 4096

// gangEntry is one decoded instruction plus its pre-bound dependence
// links, shared read-only by every engine in the gang.
type gangEntry struct {
	ai annotate.Inst
	ln links
}

// gangRing decodes the annotated stream exactly once — one NextInto per
// dynamic instruction — and binds each instruction's dependence links
// exactly once, broadcasting both to K cursors. Links are a pure
// function of the stream (register renaming, store forwarding, same-
// class predecessor chains), so engines fed by a cursor skip their own
// binder and StoreTable entirely.
type gangRing struct {
	src     AnnotatedSource
	srcInto inPlaceSource
	bind    *binder

	buf  []gangEntry
	mask int64
	// head is the absolute count of decoded instructions; the ring holds
	// [tail, head).
	head int64
	// tail is a cached lower bound on the slowest live cursor, refreshed
	// lazily when the ring looks full.
	tail int64
	eof  bool

	cursors []*gangCursor
}

// gangCursor is one engine's private read position in the ring. It
// satisfies AnnotatedSource and the linkedSource fast path; engines copy
// entries out of the ring, never mutate them in place.
type gangCursor struct {
	ring *gangRing
	pos  int64
	done bool
}

func newGangRing(src AnnotatedSource) *gangRing {
	r := &gangRing{
		src:  src,
		bind: newBinder(),
		buf:  make([]gangEntry, gangRingInsts),
		mask: gangRingInsts - 1,
	}
	r.srcInto, _ = src.(inPlaceSource)
	return r
}

func (r *gangRing) newCursor() *gangCursor {
	c := &gangCursor{ring: r}
	r.cursors = append(r.cursors, c)
	return c
}

// refreshTail recomputes the cached tail from the live cursors.
func (r *gangRing) refreshTail() {
	min := r.head
	for _, c := range r.cursors {
		if !c.done && c.pos < min {
			min = c.pos
		}
	}
	r.tail = min
}

// grow doubles the ring, re-placing the live entries.
func (r *gangRing) grow() {
	n := 2 * len(r.buf)
	buf := make([]gangEntry, n)
	mask := int64(n) - 1
	for j := r.tail; j < r.head; j++ {
		buf[j&mask] = r.buf[j&r.mask]
	}
	r.buf, r.mask = buf, mask
}

// ensure decodes (and binds) until instruction pos is in the ring; it
// returns false when the stream ends first.
func (r *gangRing) ensure(pos int64) bool {
	for pos >= r.head {
		if r.eof {
			return false
		}
		if r.head-r.tail >= int64(len(r.buf)) {
			r.refreshTail()
			if r.head-r.tail >= int64(len(r.buf)) {
				r.grow()
			}
		}
		ent := &r.buf[r.head&r.mask]
		ok := false
		if r.srcInto != nil {
			ok = r.srcInto.NextInto(&ent.ai)
		} else {
			var ai annotate.Inst
			if ai, ok = r.src.Next(); ok {
				ent.ai = ai
			}
		}
		if !ok {
			r.eof = true
			return false
		}
		r.bind.bind(&ent.ai, r.head, &ent.ln)
		r.head++
	}
	return true
}

// NextLinked copies the cursor's next instruction and its pre-bound
// links out of the ring.
func (c *gangCursor) NextLinked(dst *annotate.Inst, ln *links) bool {
	if !c.ring.ensure(c.pos) {
		return false
	}
	ent := &c.ring.buf[c.pos&c.ring.mask]
	*dst = ent.ai
	*ln = ent.ln
	c.pos++
	return true
}

// Next satisfies AnnotatedSource; engines always take the NextLinked
// fast path, this exists only to fit the NewEngine signature.
func (c *gangCursor) Next() (annotate.Inst, bool) {
	var ai annotate.Inst
	var ln links
	ok := c.NextLinked(&ai, &ln)
	return ai, ok
}

// RunGang runs one engine per config over a single decode of src and
// returns their results in config order. Results are bit-identical to
// running each config alone against its own copy of the stream: every
// engine sees the full stream through a private cursor, links are the
// same pure function of the stream a solo engine computes, and engines
// never share mutable state — so the lock-step schedule below affects
// only performance, never results.
//
// Scheduling is single-threaded: each round steps one epoch of the
// engine whose cursor is furthest behind (ties to the lowest index).
// That engine holds the ring's tail, so stepping it first bounds the
// run-ahead spread; faster engines simply find their entries already
// decoded. An engine that exhausts its stream (EOF or MaxInstructions)
// keeps being stepped until its window drains, then releases its cursor
// so the tail can move past it.
func RunGang(src AnnotatedSource, cfgs []Config) []Result {
	results := make([]Result, len(cfgs))
	if len(cfgs) == 0 {
		return results
	}
	if len(cfgs) == 1 {
		results[0] = NewEngine(src, cfgs[0]).Run()
		return results
	}

	ring := newGangRing(src)
	engines := make([]*Engine, len(cfgs))
	for i, cfg := range cfgs {
		engines[i] = NewEngine(ring.newCursor(), cfg)
	}

	live := len(cfgs)
	for live > 0 {
		pick := -1
		for i, eng := range engines {
			if eng == nil {
				continue
			}
			if pick < 0 || ring.cursors[i].pos < ring.cursors[pick].pos {
				pick = i
			}
		}
		if !engines[pick].step() {
			results[pick] = engines[pick].finish()
			ring.cursors[pick].done = true
			engines[pick] = nil
			live--
		}
	}
	return results
}

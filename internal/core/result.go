package core

import "fmt"

// Limiter is the condition that prevented more MLP from being uncovered in
// an epoch (Figure 5's categories, plus value-misprediction recovery).
type Limiter uint8

const (
	// LimImissStart: the epoch trigger was a missing instruction fetch;
	// fetch is blocking so nothing can overlap.
	LimImissStart Limiter = iota
	// LimMaxwin: the issue window or reorder buffer filled.
	LimMaxwin
	// LimMispredBr: a mispredicted branch dependent on an outstanding
	// miss could not resolve.
	LimMispredBr
	// LimImissEnd: an instruction fetch miss ended a window begun by a
	// data access.
	LimImissEnd
	// LimMissingLoad: an earlier missing load blocked later loads
	// (configuration A only).
	LimMissingLoad
	// LimDepStore: a store with an unresolved (miss-dependent) address
	// blocked later loads (configurations A and B).
	LimDepStore
	// LimSerialize: a serializing instruction required a pipeline drain.
	LimSerialize
	// LimVPMisp: a wrong value prediction forced a recovery flush
	// (conventional mode with value prediction only).
	LimVPMisp
	// LimDepMispred: a load issued past a store it actually depended on
	// (store-set dependence misprediction), forcing a recovery flush.
	LimDepMispred
	// LimRunahead: the maximum runahead distance was reached.
	LimRunahead
	// LimMSHR: all miss-status holding registers were occupied, so no
	// further off-chip access could issue (finite-MSHR extension).
	LimMSHR
	// LimStoreBuf: the finite store buffer filled with outstanding store
	// misses (store-MLP extension, the paper's §7 future work).
	LimStoreBuf
	// LimEnd: the instruction stream ended.
	LimEnd

	// NumLimiters is the number of limiter categories.
	NumLimiters = int(LimEnd) + 1
)

var limiterNames = [NumLimiters]string{
	"Imiss start", "Maxwin", "Mispred br", "Imiss end",
	"Missing load", "Dep store", "Serialize", "VP misp", "Dep mispred",
	"Runahead limit", "MSHR full", "Store buffer", "End of trace",
}

// String returns the Figure 5 label.
func (l Limiter) String() string {
	if int(l) < NumLimiters {
		return limiterNames[l]
	}
	return fmt.Sprintf("Limiter(%d)", uint8(l))
}

// Epoch describes one completed epoch (delivered via Config.OnEpoch).
type Epoch struct {
	// Seq is the 0-based epoch number.
	Seq uint64
	// Trigger is the dynamic index of the instruction that initiated the
	// epoch's first off-chip access.
	Trigger int64
	// Accesses is the number of useful off-chip accesses issued.
	Accesses int
	// DAccesses, PAccesses, IAccesses split Accesses by kind.
	DAccesses, PAccesses, IAccesses int
	// Limiter is the condition that ended the epoch.
	Limiter Limiter
	// Executed lists the dynamic indices of instructions executed in this
	// epoch, in program order (only populated when OnEpoch is set).
	Executed []int64
	// AccessIdx lists the dynamic indices whose off-chip accesses issued
	// in this epoch.
	AccessIdx []int64
}

// Result summarizes one MLPsim run.
type Result struct {
	// Config echoes the configuration that produced the result.
	Config Config
	// Instructions is the number of dynamic instructions consumed.
	Instructions int64
	// Epochs is the number of epochs containing at least one access.
	Epochs uint64
	// Accesses is the number of useful off-chip accesses.
	Accesses uint64
	// DAccesses, PAccesses, IAccesses split Accesses by kind.
	DAccesses, PAccesses, IAccesses uint64
	// SAccesses counts off-chip store misses (excluded from Accesses and
	// MLP, per the paper's definition) and StoreEpochs the epochs
	// containing at least one: together they give the store-MLP extension
	// metric.
	SAccesses   uint64
	StoreEpochs uint64
	// Limiters counts epochs by their limiting condition.
	Limiters [NumLimiters]uint64
	// DepMispredicts counts recovery flushes charged to store-set
	// dependence mispredictions (DisambStoreSets only).
	DepMispredicts uint64
	// DepSerializes counts loads needlessly serialized behind a store: a
	// predicted-but-false dependence under DisambStoreSets, or any
	// store-blocked load under DisambConservative.
	DepSerializes uint64
}

// StoreMLP is the average number of store misses per epoch that has one —
// the §7 "store MLP" future-work metric, measured like MLP but over store
// write-allocate traffic.
func (r *Result) StoreMLP() float64 {
	if r.StoreEpochs == 0 {
		return 0
	}
	return float64(r.SAccesses) / float64(r.StoreEpochs)
}

// MLP is average memory-level parallelism: useful off-chip accesses per
// epoch (§2.1). It is 0 when no access was observed.
func (r *Result) MLP() float64 {
	if r.Epochs == 0 {
		return 0
	}
	return float64(r.Accesses) / float64(r.Epochs)
}

// MissRatePer100 is useful off-chip accesses per 100 instructions.
func (r *Result) MissRatePer100() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 100 * float64(r.Accesses) / float64(r.Instructions)
}

// LimiterFracs returns each limiter's share of all epochs.
func (r *Result) LimiterFracs() [NumLimiters]float64 {
	var out [NumLimiters]float64
	if r.Epochs == 0 {
		return out
	}
	for i, n := range r.Limiters {
		out[i] = float64(n) / float64(r.Epochs)
	}
	return out
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: MLP=%.3f (accesses=%d epochs=%d over %d insts)",
		r.Config.Name(), r.MLP(), r.Accesses, r.Epochs, r.Instructions)
}

package core

import (
	"math/rand"
	"reflect"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/vpred"
)

// sprinkleVP stamps pseudo-random value-prediction outcomes on the
// missing loads so the gang test exercises the vpCut/vpWrong paths.
func sprinkleVP(rng *rand.Rand, insts []annotate.Inst) {
	for i := range insts {
		if !insts[i].DMiss {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			insts[i].VPOutcome = vpred.Correct
		case 1:
			insts[i].VPOutcome = vpred.Wrong
		default:
			insts[i].VPOutcome = vpred.NoPredict
		}
	}
}

// randomGangConfig draws one engine configuration spanning the space the
// exhibits sweep: mixed window sizes, issue policies A–E, in-order
// modes, runahead, value prediction, finite MSHRs/store buffers, and
// MaxInstructions on some members.
func randomGangConfig(rng *rand.Rand, streamLen int) Config {
	cfg := Default()
	sizes := []int{4, 16, 32, 64, 128, 256}
	cfg.IssueWindow = sizes[rng.Intn(len(sizes))]
	cfg.ROB = cfg.IssueWindow
	cfg.FetchBuffer = []int{0, 8, 32}[rng.Intn(3)]
	cfg.Issue = []IssueConfig{ConfigA, ConfigB, ConfigC, ConfigD, ConfigE}[rng.Intn(5)]
	switch rng.Intn(8) {
	case 0:
		cfg.Mode = InOrderStallOnMiss
	case 1:
		cfg.Mode = InOrderStallOnUse
	case 2:
		cfg.Runahead = true
		cfg.MaxRunahead = []int{128, 512}[rng.Intn(2)]
	}
	switch rng.Intn(4) {
	case 0:
		cfg.ValuePredict = true
	case 1:
		cfg.PerfectVP = true
	}
	if rng.Intn(3) == 0 {
		cfg.MSHRs = 1 + rng.Intn(8)
	}
	if rng.Intn(4) == 0 {
		cfg.StoreBuffer = 1 + rng.Intn(4)
	}
	if rng.Intn(4) == 0 {
		cfg.PerfectBP = true
	}
	if rng.Intn(4) == 0 {
		cfg.PerfectIFetch = true
	}
	if rng.Intn(3) == 0 {
		cfg.MaxInstructions = int64(1 + rng.Intn(streamLen))
	}
	return cfg
}

// TestRunGangMatchesSequentialRandom is the core-level gang property
// test: for random streams and random config vectors, RunGang must be
// bit-identical to running each config alone over its own copy of the
// stream.
func TestRunGangMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	for trial := 0; trial < 20; trial++ {
		n := 2000 + rng.Intn(6000)
		insts := randomStream(rng, n, 0.06, 0.01, 0.04, 0.02)
		sprinkleVP(rng, insts)

		k := 2 + rng.Intn(7)
		cfgs := make([]Config, k)
		for i := range cfgs {
			cfgs[i] = randomGangConfig(rng, n)
		}

		want := make([]Result, k)
		for i, cfg := range cfgs {
			want[i] = NewEngine(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, cfg).Run()
		}
		got := RunGang(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, cfgs)

		for i := range cfgs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("trial %d config %d (%s): gang result differs from sequential\ngang: %+v\nsolo: %+v",
					trial, i, cfgs[i].Name(), got[i], want[i])
			}
		}
	}
}

// TestRunGangRingGrowth forces the broadcast ring past its initial
// capacity: a miss-free prefix is consumed whole by the big window's
// first epoch while a stall-on-miss member crawls, so the cursor spread
// exceeds gangRingInsts and the ring must double without corrupting
// entries the slow engine has yet to read.
func TestRunGangRingGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 4 * gangRingInsts
	insts := randomStream(rng, n, 0, 0, 0, 0) // no misses: epochs span the stream
	// A sparse tail of misses so the slow engine still terminates windows.
	for i := n / 2; i < n; i += 997 {
		insts[i].DMiss = true
	}

	fast := Default()
	fast.IssueWindow, fast.ROB = 256, 256
	slow := Default()
	slow.Mode = InOrderStallOnMiss

	cfgs := []Config{fast, slow}
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = NewEngine(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, cfg).Run()
	}
	got := RunGang(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, cfgs)
	for i := range cfgs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("config %d (%s): gang result differs after ring growth\ngang: %+v\nsolo: %+v",
				i, cfgs[i].Name(), got[i], want[i])
		}
	}
}

// TestRunGangDegenerate pins the trivial shapes: empty and singleton
// config vectors.
func TestRunGangDegenerate(t *testing.T) {
	if got := RunGang(&aiSource{}, nil); len(got) != 0 {
		t.Fatalf("RunGang(nil configs) = %v, want empty", got)
	}
	rng := rand.New(rand.NewSource(7))
	insts := randomStream(rng, 3000, 0.05, 0.01, 0.04, 0.02)
	want := NewEngine(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, Default()).Run()
	got := RunGang(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, []Config{Default()})
	if !reflect.DeepEqual(got[0], want) {
		t.Fatalf("singleton gang differs from solo run\ngang: %+v\nsolo: %+v", got[0], want)
	}
}

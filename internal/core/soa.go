package core

import (
	"fmt"
	"math"
	"math/bits"
)

// soaEngine is the gang's structure-of-arrays stepper: the epoch model
// specialized to the uniform out-of-order window-termination structure
// (SoAEligible configs) and transposed so the hot per-slot state lives in
// parallel arrays instead of the scalar engine's 80-byte slotState ring.
//
// The transposition is driven by access pattern:
//
//   - executed becomes a packed bitmask (execBits), so the phase-1
//     revisit — which the scalar engine performs as a full window walk
//     over pointer-rich structs every epoch — collapses to a
//     trailing-zeros scan over a handful of complement words that visits
//     only the genuinely unexecuted slots;
//   - avail and complete collapse into one readyAt epoch per slot: in
//     the eligible subset they are always equal (a missing load's value
//     and its reorder-buffer entry both arrive one epoch after issue,
//     and value prediction — the only thing that splits them — is a
//     divergent flag handled by the scalar fallback);
//   - counted, countedS, imissDone and the vp* flags vanish entirely:
//     with unlimited MSHRs an I-miss is always recorded at fetch (never
//     deferred and revisited), execute runs at most once per slot, and
//     the vp flags are scalar-fallback territory.
//
// Decoded instructions are never copied: the stepper reads the gang
// ring's meta words and links in place, holding entries down to its
// retire frontier via the ringConsumer claim. Per-engine perfect-feature
// rewrites are a single and-not with metaClear at each read.
// notExecuted is the readyAt sentinel for a slot that has not executed.
// Folding the executed flag into readyAt makes the three hottest
// predicates (resultReady, producerExecuted, advanceRetire's commit
// check) a single load and compare each.
const notExecuted = math.MaxInt64

type soaEngine struct {
	cfg  Config
	ring *gangRing

	// Cached ring columns and bounds: rmeta/rlnk/rmask shadow the ring's
	// slices (resynced on the rare ring growth via the rmask guard), and
	// rhead shadows ring.head (refreshed at step entry and after each
	// ensure) so the fetch fast path never chases the ring pointer.
	rmeta []metaWord
	rlnk  []links
	rmask int64
	rhead int64

	// Per-slot SoA state, indexed by absolute instruction index & mask.
	// The capacity pow2ceil(ROB+1) is exact: phase 2 terminates the
	// window before fetch whenever fetchEnd-retire would reach ROB, so
	// unlike the scalar ring this one never grows. readyAt is the epoch a
	// slot's result becomes consumable (notExecuted until the slot
	// executes); execBits mirrors "executed" as a packed bitmask for the
	// phase-1 complement scan only.
	execBits []uint64
	readyAt  []int64
	mask     int64

	// sat lists pending instructions beyond fetchEnd whose I-miss was
	// already issued by a fetch-buffer scan ("fetch satisfied; arrives
	// with this epoch"). The scalar engine records this by clearing IMiss
	// on its private pending copy; the SoA stepper cannot mutate the
	// shared ring, so it remembers the indices instead. Entries are
	// distinct indices in (fetchEnd, fetchEnd+FetchBuffer], so the
	// preallocated capacity FetchBuffer is a hard bound.
	sat []int64

	fetchEnd int64
	retire   int64
	unexec   int64
	// limit is MaxInstructions as an absolute index bound (MaxInt64 when
	// unbounded); the stream may also end earlier at the ring's EOF.
	limit int64
	eof   bool
	done  bool

	epoch int64
	ep    epochState
	res   Result

	// Hoisted configuration: the issue-policy booleans and window bounds
	// the per-instruction loop tests.
	metaClear          metaWord
	serializing        bool
	branchesInOrder    bool
	loadsInOrder       bool
	loadsWaitStoreAddr bool
	rob                int64
	issueWindow        int64
	fetchBuffer        int64
}

// lowWater / finished implement ringConsumer: the engine reads ring
// entries in place for its whole live window [retire, fetchEnd) plus the
// fetch-buffer lookahead, so the claim is the retire frontier.
func (e *soaEngine) lowWater() int64 { return e.retire }
func (e *soaEngine) finished() bool  { return e.done }

func newSoAEngine(ring *gangRing, cfg Config) *soaEngine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if !SoAEligible(cfg) {
		panic(fmt.Sprintf("core: config %s is not SoA-eligible", cfg.Name()))
	}
	n := int64(pow2ceil(cfg.ROB + 1))
	e := &soaEngine{
		cfg:      cfg,
		ring:     ring,
		execBits: make([]uint64, (n+63)/64),
		readyAt:  make([]int64, n),
		mask:     n - 1,
		sat:      make([]int64, 0, cfg.FetchBuffer),
		limit:    math.MaxInt64,

		metaClear:          metaClearFor(cfg),
		serializing:        cfg.Issue.Serializing(),
		branchesInOrder:    cfg.Issue.BranchesInOrder(),
		loadsInOrder:       cfg.Issue.LoadsInOrder(),
		loadsWaitStoreAddr: cfg.Issue.LoadsWaitStoreAddr(),
		rob:                int64(cfg.ROB),
		issueWindow:        int64(cfg.IssueWindow),
		fetchBuffer:        int64(cfg.FetchBuffer),
	}
	if cfg.MaxInstructions > 0 {
		e.limit = cfg.MaxInstructions
	}
	for i := range e.readyAt {
		e.readyAt[i] = notExecuted
	}
	e.syncRing()
	return e
}

// syncRing refreshes the cached ring columns and head.
func (e *soaEngine) syncRing() {
	e.rmeta, e.rlnk, e.rmask = e.ring.meta, e.ring.lnk, e.ring.mask
	e.rhead = e.ring.head
}

// ensure extends the ring through instruction j, keeping the cached
// columns coherent across growth. Callers check j < e.rhead first.
func (e *soaEngine) ensure(j int64) bool {
	if !e.ring.ensure(j) {
		return false
	}
	if e.rmask != e.ring.mask {
		e.rmeta, e.rlnk, e.rmask = e.ring.meta, e.ring.lnk, e.ring.mask
	}
	e.rhead = e.ring.head
	return true
}

// metaAt returns instruction j's meta word with this engine's perfect-
// feature rewrites applied. Valid for any decoded j >= retire.
func (e *soaEngine) metaAt(j int64) metaWord {
	return e.rmeta[j&e.rmask] &^ e.metaClear
}

func (e *soaEngine) executed(j int64) bool {
	return e.readyAt[j&e.mask] != notExecuted
}

// resultReady reports whether producer p's result can be consumed in the
// current epoch (scalar resultReady, on SoA state: notExecuted > any
// epoch, so one compare covers both the executed and available checks).
func (e *soaEngine) resultReady(p int64) bool {
	if p < e.retire { // covers p < 0: retire is never negative
		return true
	}
	return e.readyAt[p&e.mask] <= e.epoch
}

// producerExecuted reports whether slot p has executed (issued).
func (e *soaEngine) producerExecuted(p int64) bool {
	if p < e.retire {
		return true
	}
	return e.readyAt[p&e.mask] != notExecuted
}

// advanceRetire moves the commit frontier past completed work.
func (e *soaEngine) advanceRetire() {
	j := e.retire
	for j < e.fetchEnd && e.readyAt[j&e.mask] <= e.epoch {
		j++
	}
	e.retire = j
}

// execute marks slot j executed in the current epoch, counting its
// off-chip access if it has one (scalar execute, specialized: counted
// and countedS are implied by the at-most-once execution, and avail ==
// complete == readyAt).
func (e *soaEngine) execute(j int64, m metaWord, ep *epochState) {
	s := j & e.mask
	e.execBits[s>>6] |= 1 << (uint64(s) & 63)
	e.unexec--
	ready := e.epoch
	if m&metaMiss != 0 {
		kind := accD
		if m&metaPMiss != 0 {
			kind = accP
		}
		ep.record(j, kind, false)
		if m&metaDMiss != 0 {
			// Data returns at the end of this epoch.
			ready = e.epoch + 1
		}
	}
	if m&metaSMiss != 0 {
		ep.sAccesses++
	}
	e.readyAt[s] = ready
}

// tryExecute attempts to execute slot j in the current epoch (scalar
// tryExecute restricted to the SoA-eligible subset: no runahead, no
// deferred I-miss revisit, no MSHR/store-buffer caps, no value
// prediction — so the only outcomes are execOK and execBlocked).
func (e *soaEngine) tryExecute(j int64, m metaWord, ep *epochState) execResult {
	// Serializing instructions drain the pipeline in configurations A–D.
	if e.serializing && m&metaSerializing != 0 {
		e.advanceRetire()
		if e.retire != j {
			return execBlocked
		}
		e.execute(j, m, ep)
		return execOK
	}

	ln := &e.rlnk[j&e.rmask]
	if !e.resultReady(ln.prod1) || !e.resultReady(ln.prod2) {
		return execBlocked
	}

	// True memory dependence: a load must wait for the latest earlier
	// same-address store to execute (forwarding).
	if m&metaLoadLike != 0 && ln.memProd >= 0 && !e.producerExecuted(ln.memProd) {
		return execBlocked
	}

	if m&metaBranch != 0 && e.branchesInOrder && !e.producerExecuted(ln.prevBranch) {
		return execBlocked
	}

	if m&metaLoadLike != 0 {
		if e.loadsInOrder && !e.producerExecuted(ln.prevMem) {
			if m&metaDMiss != 0 {
				if ep.firstUnresolvedStore >= 0 && ep.firstUnresolvedStore < j {
					ep.block(j, LimDepStore)
				} else {
					ep.block(j, LimMissingLoad)
				}
			}
			return execBlocked
		}
		if e.loadsWaitStoreAddr &&
			ep.firstUnresolvedStore >= 0 && ep.firstUnresolvedStore < j {
			if m&metaDMiss != 0 {
				ep.block(j, LimDepStore)
			}
			return execBlocked
		}
	}

	e.execute(j, m, ep)
	return execOK
}

// noteUnresolvedStore records the first still-unexecuted store in scan
// order whose address is not yet resolved. Callers only reach it for
// slots that remained unexecuted after their execution attempt.
func (e *soaEngine) noteUnresolvedStore(j int64, m metaWord, ep *epochState) {
	if m&metaMemWrite == 0 || ep.firstUnresolvedStore >= 0 {
		return
	}
	if !e.resultReady(e.rlnk[j&e.rmask].prod1) {
		ep.firstUnresolvedStore = j
	}
}

// revisit is phase 1 of the epoch: retry every unexecuted slot in
// [retire, fetchEnd) in program order. The unexecuted set is walked via
// the complement of execBits, one trailing-zeros scan per 64-slot word —
// executing slot j only ever flips j's own bit, so a per-word snapshot
// taken on entry stays valid for the rest of the word.
func (e *soaEngine) revisit(ep *epochState) {
	lo, hi := e.retire, e.fetchEnd
	if lo >= hi {
		return
	}
	capSlots := e.mask + 1
	s0 := lo & e.mask
	// The live window occupies at most two contiguous slot ranges:
	// [s0, min(cap, s0+n)) and, on wrap, [0, remainder).
	first := hi - lo
	if s0+first > capSlots {
		first = capSlots - s0
	}
	e.revisitRange(s0, s0+first, lo, ep)
	if rest := (hi - lo) - first; rest > 0 {
		e.revisitRange(0, rest, lo+first, ep)
	}
}

// revisitRange scans the contiguous slot range [a, b) whose slot a holds
// absolute instruction base.
func (e *soaEngine) revisitRange(a, b, base int64, ep *epochState) {
	for w := a >> 6; w<<6 < b; w++ {
		word := ^e.execBits[w] // 1 = unexecuted
		wbase := w << 6
		if wbase < a {
			word &= ^uint64(0) << (uint64(a) & 63)
		}
		if b-wbase < 64 {
			word &= (1 << (uint64(b-wbase) & 63)) - 1
		}
		for word != 0 {
			s := wbase + int64(bits.TrailingZeros64(word))
			word &= word - 1
			j := base + (s - a)
			m := e.metaAt(j)
			if e.tryExecute(j, m, ep) != execOK {
				e.noteUnresolvedStore(j, m, ep)
			}
		}
	}
}

// consumeSat pops j from the satisfied-I-miss list, reporting whether a
// fetch-buffer scan already issued this instruction's I-miss.
func (e *soaEngine) consumeSat(j int64) bool {
	for i, jj := range e.sat {
		if jj == j {
			e.sat[i] = e.sat[len(e.sat)-1]
			e.sat = e.sat[:len(e.sat)-1]
			return true
		}
	}
	return false
}

// fetchBufferScan models the fetch buffer after a Maxwin termination:
// the front end keeps fetching up to FetchBuffer instructions; an I-miss
// found there is issued in (and overlaps with) the current epoch. The
// scan stops at a mispredicted branch — beyond it the front end is on
// the wrong path.
func (e *soaEngine) fetchBufferScan(ep *epochState) {
	for k := int64(0); k < e.fetchBuffer; k++ {
		jj := e.fetchEnd + k
		if jj >= e.limit || (jj >= e.rhead && !e.ensure(jj)) {
			return
		}
		m := e.metaAt(jj)
		if m&metaBranch != 0 && m&metaMispred != 0 {
			return
		}
		if m&metaIMiss != 0 && !e.satisfied(jj) {
			ep.record(jj, accI, false)
			e.sat = append(e.sat, jj)
			return
		}
	}
}

func (e *soaEngine) satisfied(jj int64) bool {
	for _, s := range e.sat {
		if s == jj {
			return true
		}
	}
	return false
}

// runEpoch runs phases 1 and 2 of one out-of-order epoch (scalar
// runEpochOoO, specialized: rae is false, MSHRs and the store buffer are
// unlimited, and a fetched I-miss is never deferred).
func (e *soaEngine) runEpoch(ep *epochState) {
	e.advanceRetire()
	e.revisit(ep)
	e.advanceRetire()

	// An unexecuted fetch blocker at the window tail stalls fetch for the
	// whole epoch: the front end sits on a wrong path (unresolvable
	// mispredicted branch) or a drained pipeline (serializing
	// instruction).
	if e.fetchEnd > e.retire && !e.executed(e.fetchEnd-1) {
		tm := e.metaAt(e.fetchEnd - 1)
		if tm&metaBranch != 0 && tm&metaMispred != 0 {
			ep.terminate(e.fetchEnd-1, LimMispredBr)
			return
		}
		if e.serializing && tm&metaSerializing != 0 {
			ep.terminate(e.fetchEnd-1, LimSerialize)
			return
		}
	}

	// Phase 2: fetch and execute until a window termination condition.
	// The loop body inlines the fetch and the common case — a plain
	// instruction with no policy-relevant flags either executes (both
	// producers ready) or parks — with ring columns and bounds hoisted
	// into locals. The scalar model re-runs advanceRetire every
	// iteration, but within phase 2 that is a no-op unless the slot at
	// the commit frontier itself just executed: only the newly fetched
	// slot ever executes here (older slots are retried in phase 1 only),
	// and an executed slot's readyAt never changes — so retire is updated
	// in place on the retire==j executions instead.
	const slowMask = metaSerializing | metaLoadLike | metaBranch |
		metaMiss | metaSMiss | metaMemWrite | metaMispred
	rmeta, rlnk, rmask := e.rmeta, e.rlnk, e.rmask
	readyAt, execBits, mask := e.readyAt, e.execBits, e.mask
	epoch, clear := e.epoch, e.metaClear
	for {
		j := e.fetchEnd
		if j-e.retire >= e.rob || e.unexec >= e.issueWindow {
			ep.terminate(j, LimMaxwin)
			e.fetchBufferScan(ep)
			return
		}

		if e.eof || j >= e.limit {
			e.eof = true
			ep.terminate(j, LimEnd)
			return
		}
		if j >= e.rhead {
			if !e.ensure(j) {
				e.eof = true
				ep.terminate(j, LimEnd)
				return
			}
			rmeta, rlnk, rmask = e.rmeta, e.rlnk, e.rmask
		}
		m := rmeta[j&rmask] &^ clear
		s := j & mask
		bit := uint64(1) << (uint64(s) & 63)

		// A missing instruction fetch blocks the front end; the access
		// itself overlaps with this epoch — unless a fetch-buffer scan
		// already issued it.
		if m&metaIMiss != 0 {
			if len(e.sat) > 0 && e.consumeSat(j) {
				m &^= metaIMiss
			} else {
				execBits[s>>6] &^= bit
				readyAt[s] = notExecuted
				e.fetchEnd = j + 1
				e.unexec++
				lim := LimImissEnd
				if ep.accesses == 0 {
					lim = LimImissStart
				}
				ep.record(j, accI, false)
				ep.terminate(j, lim)
				return
			}
		}

		if m&slowMask == 0 {
			e.fetchEnd = j + 1
			ln := &rlnk[j&rmask]
			p1, p2 := ln.prod1, ln.prod2
			if (p1 < e.retire || readyAt[p1&mask] <= epoch) &&
				(p2 < e.retire || readyAt[p2&mask] <= epoch) {
				execBits[s>>6] |= bit
				readyAt[s] = epoch
				if e.retire == j {
					e.retire = j + 1
				}
			} else {
				execBits[s>>6] &^= bit
				readyAt[s] = notExecuted
				e.unexec++
			}
			continue
		}

		// Slow path: the slot is being reused, clear the previous
		// occupant's state before the full policy ladder.
		execBits[s>>6] &^= bit
		readyAt[s] = notExecuted
		e.fetchEnd = j + 1
		e.unexec++
		if e.tryExecute(j, m, ep) == execBlocked {
			if m&metaBranch != 0 && m&metaMispred != 0 {
				ep.terminate(j, LimMispredBr)
				return
			}
			if e.serializing && m&metaSerializing != 0 {
				ep.terminate(j, LimSerialize)
				return
			}
			e.noteUnresolvedStore(j, m, ep)
		} else if e.retire == j && readyAt[s] <= epoch {
			e.retire = j + 1
		}
	}
}

// step runs one epoch; it returns false when the stream is exhausted and
// no work remains. It mirrors Engine.step exactly (the OnEpoch branch is
// absent because observers are SoA-ineligible).
func (e *soaEngine) step() bool {
	if e.eof && e.retire >= e.fetchEnd {
		return false
	}
	// Other gang members may have advanced (or grown) the ring between
	// this engine's steps; re-anchor the cached columns once per epoch.
	e.syncRing()
	e.epoch++
	before := e.fetchEnd
	unexecBefore := e.unexec
	e.ep = epochState{firstUnresolvedStore: -1, blockIdx: -1}
	ep := &e.ep

	e.runEpoch(ep)

	if ep.sAccesses > 0 {
		e.res.StoreEpochs++
		e.res.SAccesses += uint64(ep.sAccesses)
	}
	if ep.accesses > 0 {
		e.res.Epochs++
		e.res.Accesses += uint64(ep.accesses)
		e.res.DAccesses += uint64(ep.dAccesses)
		e.res.PAccesses += uint64(ep.pAccesses)
		e.res.IAccesses += uint64(ep.iAccesses)
		lim := ep.limiter
		if ep.blockIdx >= 0 && ep.blockIdx <= ep.termIdx {
			lim = ep.blockLim
		}
		e.res.Limiters[lim]++
	}

	// Progress guard: an epoch must fetch, execute or access something.
	if e.fetchEnd == before && e.unexec == unexecBefore && ep.accesses == 0 && !e.eof {
		panic(fmt.Sprintf("core: SoA epoch %d made no progress at instruction %d", e.epoch, e.fetchEnd))
	}
	return true
}

// finish seals and returns the accumulated result.
func (e *soaEngine) finish() Result {
	e.res.Config = e.cfg
	e.res.Instructions = e.fetchEnd
	return e.res
}

package core

import (
	"math/rand"
	"testing"
)

// refStoreMap is the semantics oracle: the exact map-based last-store
// tracking the engine used before StoreTable, including the
// clear-past-64K rebuild that drops the just-inserted entry.
type refStoreMap struct {
	m map[uint64]int64
}

func newRefStoreMap() *refStoreMap { return &refStoreMap{m: make(map[uint64]int64)} }

func (r *refStoreMap) Get(key uint64) (int64, bool) {
	v, ok := r.m[key]
	return v, ok
}

func (r *refStoreMap) Put(key uint64, val int64) {
	r.m[key] = val
	if len(r.m) > storeTableClear {
		r.m = make(map[uint64]int64)
	}
}

// storeKeys mixes the address patterns the engine actually sees: dense
// strides (array scans), a hot working set, and sparse pointer chasing.
func storeKeys(rng *rand.Rand, n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		switch rng.Intn(3) {
		case 0:
			keys[i] = uint64(i) * 8 // strided
		case 1:
			keys[i] = uint64(rng.Intn(1 << 10)) // hot set
		default:
			keys[i] = rng.Uint64() >> 16 // sparse
		}
	}
	return keys
}

// TestStoreTableMatchesMap drives table and reference map with an
// identical operation stream — long enough to cross the clear threshold
// several times — and demands identical observable behaviour.
func TestStoreTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	table := NewStoreTable()
	ref := newRefStoreMap()

	const ops = 1_200_000 // ~300k distinct-key inserts: several clears
	keys := storeKeys(rng, ops)
	for i, key := range keys {
		if rng.Intn(4) == 0 {
			table.Put(key, int64(i))
			ref.Put(key, int64(i))
			continue
		}
		gv, gok := table.Get(key)
		wv, wok := ref.Get(key)
		if gok != wok || (gok && gv != wv) {
			t.Fatalf("op %d key %#x: table (%d,%t), map (%d,%t)", i, key, gv, gok, wv, wok)
		}
	}
	if table.Len() != len(ref.m) {
		t.Errorf("table holds %d keys, map holds %d", table.Len(), len(ref.m))
	}
}

// TestStoreTableClear pins the clear boundary exactly: inserting distinct
// keys up to the threshold keeps them all; one more wipes everything,
// including the key that triggered the clear.
func TestStoreTableClear(t *testing.T) {
	table := NewStoreTable()
	for i := 0; i < storeTableClear; i++ {
		table.Put(uint64(i), int64(i))
	}
	if table.Len() != storeTableClear {
		t.Fatalf("table holds %d keys at the threshold, want %d", table.Len(), storeTableClear)
	}
	if v, ok := table.Get(0); !ok || v != 0 {
		t.Fatalf("key 0 = (%d,%t) before clear, want (0,true)", v, ok)
	}
	table.Put(uint64(storeTableClear), 99)
	if table.Len() != 0 {
		t.Errorf("table holds %d keys after clear, want 0", table.Len())
	}
	if _, ok := table.Get(uint64(storeTableClear)); ok {
		t.Error("clear-triggering key survived; the old map dropped it too")
	}
	// Updating an existing key must never trigger a clear.
	table.Put(7, 1)
	for i := 0; i < 3; i++ {
		table.Put(7, int64(i))
	}
	if v, ok := table.Get(7); !ok || v != 2 {
		t.Errorf("key 7 = (%d,%t), want (2,true)", v, ok)
	}
}

// benchStoreOps is one mixed Get/Put pass over a prepared key schedule,
// shared by both benchmark variants.
const benchOps = 1 << 16

func benchKeys() []uint64 {
	return storeKeys(rand.New(rand.NewSource(7)), benchOps)
}

// BenchmarkLastStoreMap measures the built-in map the engine used before.
func BenchmarkLastStoreMap(b *testing.B) {
	keys := benchKeys()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ref := newRefStoreMap()
		var sink int64
		for i, key := range keys {
			if i&3 == 0 {
				ref.Put(key, int64(i))
			} else if v, ok := ref.Get(key); ok {
				sink += v
			}
		}
		_ = sink
	}
}

// BenchmarkStoreTable measures the open-addressed replacement on the same
// schedule.
func BenchmarkStoreTable(b *testing.B) {
	keys := benchKeys()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		table := NewStoreTable()
		var sink int64
		for i, key := range keys {
			if i&3 == 0 {
				table.Put(key, int64(i))
			} else if v, ok := table.Get(key); ok {
				sink += v
			}
		}
		_ = sink
	}
}

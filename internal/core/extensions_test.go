package core

import (
	"strings"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
)

// smiss builds a store with an off-chip write-allocate miss.
func smiss(addrReg, dataReg isa.Reg, ea uint64) annotate.Inst {
	in := st(addrReg, dataReg, ea)
	in.SMiss = true
	return in
}

func TestMSHRCapsEpochAccesses(t *testing.T) {
	mk := func() *aiSource {
		return src(
			ld(2, 1, true),
			ld(3, 1, true),
			ld(4, 1, true),
			ld(5, 1, true),
		)
	}
	// Unlimited: all four overlap.
	epochs, res := runEpochs(t, mk(), cfgWindow(64, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0, 1, 2, 3}})
	if res.MLP() != 4 {
		t.Fatalf("unlimited MLP = %v", res.MLP())
	}
	// Two MSHRs: two accesses per epoch.
	cfg := cfgWindow(64, ConfigC)
	cfg.MSHRs = 2
	epochs, res = runEpochs(t, mk(), cfg)
	wantAccesses(t, epochs, [][]int64{{0, 1}, {2, 3}})
	if res.MLP() != 2 {
		t.Fatalf("2-MSHR MLP = %v", res.MLP())
	}
	if epochs[0].Limiter != LimMSHR {
		t.Fatalf("limiter = %v, want MSHR full", epochs[0].Limiter)
	}
	// One MSHR: fully serialized.
	cfg.MSHRs = 1
	_, res = runEpochs(t, mk(), cfg)
	if res.MLP() != 1 {
		t.Fatalf("1-MSHR MLP = %v", res.MLP())
	}
}

func TestMSHRAppliesToRunahead(t *testing.T) {
	mk := func() *aiSource {
		return src(
			ld(2, 1, true),
			ld(3, 1, true),
			ld(4, 1, true),
			ld(5, 1, true),
		)
	}
	cfg := cfgWindow(4, ConfigD).WithRunahead()
	cfg.MSHRs = 2
	_, res := runEpochs(t, mk(), cfg)
	if res.MLP() != 2 {
		t.Fatalf("runahead with 2 MSHRs MLP = %v, want 2", res.MLP())
	}
}

func TestMSHRGatesImiss(t *testing.T) {
	s := src(
		ld(2, 1, true),
		imiss(add(4, 9, 9)),
		ld(5, 1, true),
	)
	cfg := cfgWindow(64, ConfigC)
	cfg.MSHRs = 1
	epochs, res := runEpochs(t, s, cfg)
	// Each access gets its own epoch: load, then the I-fetch, then load.
	if res.Epochs != 3 || res.MLP() != 1 {
		t.Fatalf("epochs=%d MLP=%v, want 3 serialized epochs", res.Epochs, res.MLP())
	}
	if epochs[0].Limiter != LimMSHR {
		t.Fatalf("limiter = %v", epochs[0].Limiter)
	}
}

func TestMSHRInOrder(t *testing.T) {
	s := src(
		pf(1, true),
		pf(1, true),
		pf(1, true),
	)
	cfg := Config{Mode: InOrderStallOnMiss, MSHRs: 2}
	_, res := runEpochs(t, s, cfg)
	// Two prefetches share the first epoch, the third gets its own:
	// MLP = (2+1)/2.
	if res.MLP() != 1.5 {
		t.Fatalf("in-order 2-MSHR prefetch MLP = %v, want 1.5", res.MLP())
	}
}

func TestStoreMLPCounting(t *testing.T) {
	s := src(
		smiss(1, 16, 0x1000),
		smiss(1, 16, 0x2000),
		ld(2, 1, true),
	)
	_, res := runEpochs(t, s, cfgWindow(64, ConfigC))
	// Store misses never join Accesses/MLP...
	if res.Accesses != 1 || res.MLP() != 1 {
		t.Fatalf("store misses leaked into MLP: %+v", res)
	}
	// ...but are tracked separately.
	if res.SAccesses != 2 || res.StoreEpochs != 1 {
		t.Fatalf("store accounting: S=%d epochs=%d, want 2/1", res.SAccesses, res.StoreEpochs)
	}
	if res.StoreMLP() != 2 {
		t.Fatalf("store MLP = %v, want 2", res.StoreMLP())
	}
}

func TestFiniteStoreBufferBlocksWindow(t *testing.T) {
	mk := func() *aiSource {
		return src(
			smiss(1, 16, 0x1000),
			smiss(1, 17, 0x2000),
			smiss(1, 18, 0x3000),
			ld(2, 1, true), // independent load after the stores
		)
	}
	// Infinite store buffer: stores are invisible; the load's epoch is
	// the only one.
	_, res := runEpochs(t, mk(), cfgWindow(64, ConfigC))
	if res.Epochs != 1 || res.StoreEpochs != 1 || res.SAccesses != 3 {
		t.Fatalf("baseline store run: %+v", res)
	}
	// One-entry store buffer: each store miss drains before the next
	// store can issue; the load still issues with the FIRST store's epoch
	// (loads are not blocked by the store buffer).
	cfg := cfgWindow(64, ConfigC)
	cfg.StoreBuffer = 1
	_, res = runEpochs(t, mk(), cfg)
	if res.StoreEpochs != 3 || res.SAccesses != 3 {
		t.Fatalf("1-entry SB: StoreEpochs=%d SAccesses=%d, want 3/3", res.StoreEpochs, res.SAccesses)
	}
	if res.StoreMLP() != 1 {
		t.Fatalf("1-entry SB store MLP = %v, want 1", res.StoreMLP())
	}
	if res.Limiters[LimStoreBuf] == 0 {
		t.Fatal("no store-buffer limiter recorded")
	}
}

func TestStoreBufferIgnoredInRunahead(t *testing.T) {
	s := src(
		ld(2, 1, true), // trigger
		smiss(1, 16, 0x1000),
		smiss(1, 17, 0x2000),
		ld(3, 1, true),
	)
	cfg := cfgWindow(64, ConfigD).WithRunahead()
	cfg.StoreBuffer = 1
	_, res := runEpochs(t, s, cfg)
	// Runahead stores do not update state: both loads overlap regardless
	// of the store buffer.
	if res.MLP() != 2 {
		t.Fatalf("runahead MLP with tiny SB = %v, want 2", res.MLP())
	}
}

func TestExtensionConfigValidation(t *testing.T) {
	cfg := Default()
	cfg.MSHRs = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative MSHRs accepted")
	}
	cfg = Default()
	cfg.StoreBuffer = -2
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative store buffer accepted")
	}
}

func TestTimelineRendering(t *testing.T) {
	var tl Timeline
	s := src(
		ld(2, 1, true),
		ld(3, 1, true),
		add(4, 2, 2),
		ld(5, 4, true),
	)
	cfg := cfgWindow(64, ConfigC)
	cfg.OnEpoch = tl.OnEpoch
	NewEngine(s, cfg).Run()
	out := tl.String()
	if !strings.Contains(out, "##") {
		t.Fatalf("first epoch should show two overlapped accesses:\n%s", out)
	}
	if !strings.Contains(out, "access(es)") || !strings.Contains(out, "ends:") {
		t.Fatalf("missing annotations:\n%s", out)
	}
	// Cap behaviour.
	capped := Timeline{MaxEpochs: 1}
	s2 := src(ld(2, 1, true), ld(3, 2, true), ld(4, 3, true))
	cfg2 := cfgWindow(64, ConfigC)
	cfg2.OnEpoch = capped.OnEpoch
	NewEngine(s2, cfg2).Run()
	if n := strings.Count(capped.String(), "ends:"); n != 1 {
		t.Fatalf("MaxEpochs=1 rendered %d epochs", n)
	}
	var empty Timeline
	if !strings.Contains(empty.String(), "no epochs") {
		t.Fatal("empty timeline broken")
	}
}

package core

// StoreTable maps 8-byte-aligned store addresses (EA>>3) to the absolute
// index of the most recent store, replacing the built-in map on the fetch
// hot path (~17% of cached-replay engine time went to map lookups). It is
// an open-addressed, linear-probing table with the exact clear-at-64K
// semantics of the map it replaces: once an insert pushes the number of
// distinct keys past storeTableClear, the whole table resets and stale
// producers resolve as retired — identical to the old
// `lastStore = make(map[uint64]int64)` rebuild, so simulated results are
// bit-for-bit unchanged. Both the epoch-model engine and the cycle
// simulator use it for store-to-load memory dependences.
//
// The table is sized at 2x the clear threshold, so the load factor never
// exceeds 0.5 and probes stay short; no growth path is needed.

const (
	// storeTableClear matches the old map's bound: a table exceeding this
	// many distinct keys is cleared.
	storeTableClear = 1 << 16
	storeTableBits  = 17
	storeTableSize  = 1 << storeTableBits
	storeTableMask  = storeTableSize - 1
)

// StoreTable is the open-addressed last-store map. The zero value is not
// usable; call NewStoreTable.
type StoreTable struct {
	// keys holds key+1 so the zero value means an empty slot. Keys are
	// EA>>3, so key+1 cannot wrap.
	keys []uint64
	vals []int64
	used int
}

// NewStoreTable returns an empty table.
func NewStoreTable() *StoreTable {
	return &StoreTable{
		keys: make([]uint64, storeTableSize),
		vals: make([]int64, storeTableSize),
	}
}

// storeSlot is a Fibonacci hash: store addresses are heavily strided, and
// the multiply spreads consecutive keys across the table.
func storeSlot(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> (64 - storeTableBits) & storeTableMask
}

// Get returns the last-store index recorded for key.
func (t *StoreTable) Get(key uint64) (int64, bool) {
	k := key + 1
	for i := storeSlot(key); ; i = (i + 1) & storeTableMask {
		switch t.keys[i] {
		case k:
			return t.vals[i], true
		case 0:
			return 0, false
		}
	}
}

// Put records val as the most recent store to key, clearing the table
// when it would exceed storeTableClear distinct keys (matching the old
// map semantics, which also dropped the just-inserted entry).
func (t *StoreTable) Put(key uint64, val int64) {
	k := key + 1
	for i := storeSlot(key); ; i = (i + 1) & storeTableMask {
		switch t.keys[i] {
		case k:
			t.vals[i] = val
			return
		case 0:
			t.keys[i] = k
			t.vals[i] = val
			t.used++
			if t.used > storeTableClear {
				t.clear()
			}
			return
		}
	}
}

func (t *StoreTable) clear() {
	for i := range t.keys {
		t.keys[i] = 0
	}
	t.used = 0
}

// Len returns the number of distinct keys held.
func (t *StoreTable) Len() int { return t.used }

package core

import "mlpsim/internal/isa"

// runEpochInOrder runs one epoch of the in-order models (§3.3).
//
// In-order issue admits at most one stalled instruction: the window tail.
// Stall-on-miss terminates the window at a missing load itself (after
// issuing its access); stall-on-use terminates at the first instruction
// whose operands depend on an outstanding miss. Missing prefetches and an
// in-flight missing load may overlap in both disciplines; serializing
// instructions and I-misses terminate windows exactly as out of order.
func (e *Engine) runEpochInOrder(ep *epochState) {
	e.advanceRetire()
	for {
		var (
			s *slot
			j int64
		)
		// Revisit the stalled tail instruction, if any; otherwise fetch.
		if e.fetchEnd > e.base && e.fetchEnd > 0 && e.retire < e.fetchEnd && !e.at(e.fetchEnd-1).executed {
			j = e.fetchEnd - 1
			s = e.at(j)
		} else {
			j = e.fetchEnd
			s = e.fetchNext()
			if s == nil {
				ep.terminate(j, LimEnd)
				return
			}
		}
		if s.ai.IMiss && !s.imissDone {
			if e.cfg.MSHRs > 0 && ep.accesses >= e.cfg.MSHRs {
				ep.terminate(j, LimMSHR)
				return
			}
			s.imissDone = true
			lim := LimImissEnd
			if ep.accesses == 0 {
				lim = LimImissStart
			}
			ep.record(e, j, accI)
			ep.terminate(j, lim)
			return
		}

		// Operand or forwarding stall: only outstanding misses can cause
		// one in order, so this is the stall-on-use window termination.
		if !e.srcsReady(s) || (s.memProd >= 0 && !e.producerExecuted(s.memProd)) {
			lim := LimMissingLoad
			if s.ai.Class == isa.Branch && s.ai.Mispred {
				lim = LimMispredBr
			}
			ep.terminate(j, lim)
			return
		}

		if e.cfg.MSHRs > 0 && (s.ai.DMiss || s.ai.PMiss) && !s.counted &&
			ep.accesses >= e.cfg.MSHRs {
			ep.terminate(j, LimMSHR)
			return
		}
		if e.cfg.StoreBuffer > 0 && s.ai.SMiss && !s.countedS &&
			ep.sAccesses >= e.cfg.StoreBuffer {
			ep.terminate(j, LimStoreBuf)
			return
		}

		if s.ai.Class.IsSerializing() {
			e.advanceRetire()
			if ep.accesses > 0 || e.retire < j {
				ep.terminate(j, LimSerialize)
				return
			}
		}

		e.execute(j, s, ep)
		e.advanceRetire()

		if s.ai.DMiss && e.cfg.Mode == InOrderStallOnMiss {
			// Issue stalls as soon as the miss is detected.
			ep.terminate(j, LimMissingLoad)
			return
		}
	}
}

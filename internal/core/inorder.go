package core

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
)

// runEpochInOrder runs one epoch of the in-order models (§3.3).
//
// In-order issue admits at most one stalled instruction: the window tail.
// Stall-on-miss terminates the window at a missing load itself (after
// issuing its access); stall-on-use terminates at the first instruction
// whose operands depend on an outstanding miss. Missing prefetches and an
// in-flight missing load may overlap in both disciplines; serializing
// instructions and I-misses terminate windows exactly as out of order.
func (e *Engine) runEpochInOrder(ep *epochState) {
	e.advanceRetire()
	for {
		var (
			ai *annotate.Inst
			st *slotState
			j  int64
		)
		// Revisit the stalled tail instruction, if any; otherwise fetch.
		if e.fetchEnd > 0 && e.retire < e.fetchEnd && !e.stateAt(e.fetchEnd-1).executed {
			j = e.fetchEnd - 1
			ai = e.instAt(j)
			st = e.stateAt(j)
		} else {
			j = e.fetchEnd
			ai, st = e.fetchNext()
			if ai == nil {
				ep.terminate(j, LimEnd)
				return
			}
		}
		if ai.IMiss && !st.imissDone {
			if e.cfg.MSHRs > 0 && ep.accesses >= e.cfg.MSHRs {
				ep.terminate(j, LimMSHR)
				return
			}
			st.imissDone = true
			lim := LimImissEnd
			if ep.accesses == 0 {
				lim = LimImissStart
			}
			ep.record(j, accI, e.cfg.OnEpoch != nil)
			ep.terminate(j, lim)
			return
		}

		// Operand or forwarding stall: only outstanding misses can cause
		// one in order, so this is the stall-on-use window termination.
		if !e.srcsReady(st) || (st.memProd >= 0 && !e.producerExecuted(st.memProd)) {
			lim := LimMissingLoad
			if ai.Class == isa.Branch && ai.Mispred {
				lim = LimMispredBr
			}
			ep.terminate(j, lim)
			return
		}

		if e.cfg.MSHRs > 0 && (ai.DMiss || ai.PMiss) && !st.counted &&
			ep.accesses >= e.cfg.MSHRs {
			ep.terminate(j, LimMSHR)
			return
		}
		if e.cfg.StoreBuffer > 0 && ai.SMiss && !st.countedS &&
			ep.sAccesses >= e.cfg.StoreBuffer {
			ep.terminate(j, LimStoreBuf)
			return
		}

		if ai.Class.IsSerializing() {
			e.advanceRetire()
			if ep.accesses > 0 || e.retire < j {
				ep.terminate(j, LimSerialize)
				return
			}
		}

		e.execute(j, ai, st, ep)
		e.advanceRetire()

		if ai.DMiss && e.cfg.Mode == InOrderStallOnMiss {
			// Issue stalls as soon as the miss is detected.
			ep.terminate(j, LimMissingLoad)
			return
		}
	}
}

package core

// Stepper drives one engine epoch at a time, exposing the per-epoch
// observables an external scheduler needs: fetch position, window
// occupancy and the running access/epoch totals. It is the cursor half
// of the gang machinery (gangMember steps engines the same way) exported
// for callers that interleave engines over *different* streams — the SMT
// policy engine steps K per-thread engines in lock-step, reading each
// one's state between epochs. Per-thread streams are never SoA-eligible
// (no shared decode), so the Stepper always runs the scalar path.
type Stepper struct {
	e *Engine
}

// NewStepper builds a stepper over src; it panics on invalid
// configurations, exactly like NewEngine.
func NewStepper(src AnnotatedSource, cfg Config) *Stepper {
	return &Stepper{e: NewEngine(src, cfg)}
}

// Step runs one epoch. It returns false when the stream is exhausted and
// no fetched work remains; stepping to exhaustion and calling Finish is
// bit-identical to Engine.Run.
func (s *Stepper) Step() bool { return s.e.step() }

// Finish seals and returns the accumulated result.
func (s *Stepper) Finish() Result { return s.e.finish() }

// Fetched returns the number of instructions fetched so far (one past
// the last fetched instruction's index).
func (s *Stepper) Fetched() int64 { return s.e.fetchEnd }

// Unretired returns the fetched-but-unretired instruction count — the
// live window occupancy an ICOUNT-style fetch policy ranks threads by.
func (s *Stepper) Unretired() int64 { return s.e.fetchEnd - s.e.retire }

// Accesses returns the off-chip accesses recorded so far.
func (s *Stepper) Accesses() uint64 { return s.e.res.Accesses }

// Epochs returns the access-bearing epochs completed so far.
func (s *Stepper) Epochs() uint64 { return s.e.res.Epochs }

package core

import (
	"math/rand"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
)

// replayStream builds an annotated-trace stream from a random
// instruction mix so the engine runs against the real replay decoder
// (the production fetch path).
func replayStream(n int) *atrace.Stream {
	rng := rand.New(rand.NewSource(1234))
	insts := randomStream(rng, n, 0.05, 0.01, 0.04, 0.02)
	b := atrace.NewBuilder(6, int64(n))
	for i := range insts {
		b.Append(insts[i])
	}
	return b.Finish(annotate.Stats{})
}

// TestEngineRunZeroAllocSteadyState asserts the satellite guarantee
// behind BENCH_5: with the slot ring and pending buffer preallocated
// from the Config window bounds, replay-driven Run is exactly 0 allocs
// and 0 bytes per op in steady state — engine construction excluded.
func TestEngineRunZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	st := replayStream(200_000)
	configs := []Config{
		Default(),
		Default().WithWindow(256).WithIssue(ConfigA),
		func() Config {
			c := Default()
			c.Runahead, c.MaxRunahead = true, 512
			return c
		}(),
		func() Config {
			c := Default()
			c.Mode = InOrderStallOnUse
			return c
		}(),
	}
	for _, cfg := range configs {
		cfg := cfg
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := NewEngine(st.Replay(), cfg)
				b.StartTimer()
				e.Run()
			}
		})
		if a, bytes := r.AllocsPerOp(), r.AllocedBytesPerOp(); a != 0 || bytes != 0 {
			t.Errorf("%s: Run = %d allocs/op, %d B/op; want exactly 0/0", cfg.Name(), a, bytes)
		}
	}
}

// TestRunGangZeroAllocSteadyState extends the guarantee to the gang
// path: once NewGang has built the ring and engines, Run allocates
// nothing (ring growth aside, which the min-position schedule avoids on
// miss-bearing streams). The config vectors cover K=1 (the BENCH_5
// residual), the pure SoA fast path, the pure scalar fallback, and a
// mixed gang where both ride one ring.
func TestRunGangZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	st := replayStream(200_000)
	inorder := Default()
	inorder.Mode = InOrderStallOnUse
	vectors := map[string][]Config{
		"k1-soa":    {Default()},
		"k1-scalar": {inorder},
		"soa": {
			Default(),
			Default().WithWindow(32),
			Default().WithWindow(128).WithIssue(ConfigA),
		},
		"mixed": {
			Default(),
			inorder,
			Default().WithWindow(64).WithIssue(ConfigE),
		},
	}
	for name, cfgs := range vectors {
		cfgs := cfgs
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := NewGang(st.Replay(), cfgs)
				b.StartTimer()
				g.Run()
			}
		})
		if a, bytes := r.AllocsPerOp(), r.AllocedBytesPerOp(); a != 0 || bytes != 0 {
			t.Errorf("%s: Gang.Run = %d allocs/op, %d B/op; want exactly 0/0", name, a, bytes)
		}
	}
}

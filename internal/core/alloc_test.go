package core

import (
	"math/rand"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
)

// replayStream builds an annotated-trace stream from a random
// instruction mix so the engine runs against the real replay decoder
// (the production fetch path).
func replayStream(n int) *atrace.Stream {
	rng := rand.New(rand.NewSource(1234))
	insts := randomStream(rng, n, 0.05, 0.01, 0.04, 0.02)
	b := atrace.NewBuilder(6, int64(n))
	for i := range insts {
		b.Append(insts[i])
	}
	return b.Finish(annotate.Stats{})
}

// TestEngineRunZeroAllocSteadyState asserts the satellite guarantee
// behind BENCH_5: with the slot ring and pending buffer preallocated
// from the Config window bounds, replay-driven Run is exactly 0 allocs
// and 0 bytes per op in steady state — engine construction excluded.
func TestEngineRunZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	st := replayStream(200_000)
	configs := []Config{
		Default(),
		Default().WithWindow(256).WithIssue(ConfigA),
		func() Config {
			c := Default()
			c.Runahead, c.MaxRunahead = true, 512
			return c
		}(),
		func() Config {
			c := Default()
			c.Mode = InOrderStallOnUse
			return c
		}(),
	}
	for _, cfg := range configs {
		cfg := cfg
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := NewEngine(st.Replay(), cfg)
				b.StartTimer()
				e.Run()
			}
		})
		if a, bytes := r.AllocsPerOp(), r.AllocedBytesPerOp(); a != 0 || bytes != 0 {
			t.Errorf("%s: Run = %d allocs/op, %d B/op; want exactly 0/0", cfg.Name(), a, bytes)
		}
	}
}

// TestRunGangZeroAllocSteadyState extends the guarantee to the gang
// path: once the ring, cursors and engines exist, stepping a gang over
// the replay stream allocates nothing (ring growth aside, which the
// min-cursor schedule avoids on miss-bearing streams).
func TestRunGangZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	st := replayStream(200_000)
	cfgs := []Config{
		Default(),
		Default().WithWindow(32),
		Default().WithWindow(128).WithIssue(ConfigA),
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ring := newGangRing(st.Replay())
			engines := make([]*Engine, len(cfgs))
			for k, cfg := range cfgs {
				engines[k] = NewEngine(ring.newCursor(), cfg)
			}
			b.StartTimer()
			live := len(engines)
			for live > 0 {
				pick := -1
				for k, eng := range engines {
					if eng == nil {
						continue
					}
					if pick < 0 || ring.cursors[k].pos < ring.cursors[pick].pos {
						pick = k
					}
				}
				if !engines[pick].step() {
					engines[pick].finish()
					ring.cursors[pick].done = true
					engines[pick] = nil
					live--
				}
			}
		}
	})
	if a, bytes := r.AllocsPerOp(), r.AllocedBytesPerOp(); a != 0 || bytes != 0 {
		t.Errorf("gang loop = %d allocs/op, %d B/op; want exactly 0/0", a, bytes)
	}
}

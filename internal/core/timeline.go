package core

import (
	"fmt"
	"strings"
)

// Timeline renders epochs in the style of the paper's Figures 1 and 3:
// each epoch is a period of on-chip computation (light, '.') followed by
// its overlapped off-chip accesses (dark, '#'), with the access count and
// the terminating condition annotated. The X axis is dynamic instructions
// (the epoch model has no cycle axis); the memory segment is drawn at a
// fixed width since all of an epoch's accesses complete together.
//
// Attach Timeline.OnEpoch to Config.OnEpoch and render with String after
// the run.
type Timeline struct {
	// MaxEpochs bounds how many epochs are kept (default 32).
	MaxEpochs int
	// ComputeScale is instructions per '.' cell (default 16).
	ComputeScale int

	epochs  []Epoch
	prevEnd int64
}

// OnEpoch records one epoch (use as Config.OnEpoch).
func (t *Timeline) OnEpoch(ep Epoch) {
	max := t.MaxEpochs
	if max == 0 {
		max = 32
	}
	if len(t.epochs) < max {
		t.epochs = append(t.epochs, ep)
	}
}

// String renders the recorded epochs.
func (t *Timeline) String() string {
	scale := t.ComputeScale
	if scale == 0 {
		scale = 16
	}
	var b strings.Builder
	b.WriteString("epoch timeline ('.' = on-chip compute, '#' = overlapped off-chip accesses)\n")
	b.WriteString(fmt.Sprintf("x axis: dynamic instructions, %d per compute cell\n\n", scale))
	prevEnd := int64(0)
	for i, ep := range t.epochs {
		start := ep.Trigger
		compute := int((start - prevEnd) / int64(scale))
		if compute < 0 {
			compute = 0
		}
		if compute > 60 {
			compute = 60
		}
		lastIdx := start
		if n := len(ep.AccessIdx); n > 0 {
			lastIdx = ep.AccessIdx[n-1]
		}
		prevEnd = lastIdx + 1

		b.WriteString(fmt.Sprintf("%4d @%-9d %s", i, start, strings.Repeat(".", compute)))
		// One '#' bar row summary: the access count as stacked bars.
		bars := ep.Accesses
		if bars > 12 {
			bars = 12
		}
		b.WriteString("[")
		b.WriteString(strings.Repeat("#", bars))
		b.WriteString("]")
		b.WriteString(fmt.Sprintf(" %d access(es), ends: %s\n", ep.Accesses, ep.Limiter))
	}
	if len(t.epochs) == 0 {
		b.WriteString("(no epochs)\n")
	}
	return b.String()
}

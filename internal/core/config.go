// Package core implements the paper's primary contribution: the epoch
// model of memory-level parallelism and MLPsim, the trace-driven simulator
// built on it (§3, §4.1).
//
// The engine partitions an annotated dynamic instruction stream into epoch
// sets by tracking register and memory dependences and applying the window
// termination conditions implied by a microarchitecture configuration:
// issue window and reorder buffer occupancy, serializing instructions,
// instruction-fetch misses and unresolvable branch mispredictions. MLP is
// the ratio of useful off-chip accesses to epochs.
package core

import "fmt"

// IssueConfig is one of the paper's five issue-constraint configurations
// (Table 2), ordered from most to least constrained.
type IssueConfig uint8

const (
	// ConfigA: loads issue in order w.r.t. other loads and stores,
	// branches in order, serializing instructions drain the pipeline.
	ConfigA IssueConfig = iota
	// ConfigB: loads issue out of order but wait for earlier store
	// addresses to resolve; branches in order; serializing.
	ConfigB
	// ConfigC: loads speculate past earlier stores; branches in order;
	// serializing. This is the paper's default configuration.
	ConfigC
	// ConfigD: loads speculate; branches issue out of order; serializing.
	ConfigD
	// ConfigE: loads speculate; branches out of order; serializing
	// instructions do not drain the pipeline.
	ConfigE

	numConfigs = int(ConfigE) + 1
)

// String returns the paper's single-letter name.
func (c IssueConfig) String() string {
	if int(c) < numConfigs {
		return string(rune('A' + c))
	}
	return fmt.Sprintf("IssueConfig(%d)", uint8(c))
}

// ParseIssueConfig converts "A".."E" (case insensitive) to an IssueConfig.
func ParseIssueConfig(s string) (IssueConfig, error) {
	if len(s) == 1 {
		switch s[0] {
		case 'A', 'a':
			return ConfigA, nil
		case 'B', 'b':
			return ConfigB, nil
		case 'C', 'c':
			return ConfigC, nil
		case 'D', 'd':
			return ConfigD, nil
		case 'E', 'e':
			return ConfigE, nil
		}
	}
	return ConfigA, fmt.Errorf("core: unknown issue configuration %q", s)
}

// LoadsInOrder reports whether loads must issue in order w.r.t. other
// loads and stores (configuration A).
func (c IssueConfig) LoadsInOrder() bool { return c == ConfigA }

// LoadsWaitStoreAddr reports whether loads wait for earlier store
// addresses to resolve (configurations A and B).
func (c IssueConfig) LoadsWaitStoreAddr() bool { return c <= ConfigB }

// BranchesInOrder reports whether branches issue in order w.r.t. other
// branches (configurations A, B, C).
func (c IssueConfig) BranchesInOrder() bool { return c <= ConfigC }

// Serializing reports whether serializing instructions drain the pipeline
// (configurations A through D).
func (c IssueConfig) Serializing() bool { return c <= ConfigD }

// WindowMode selects the instruction-windowing discipline (§3.3).
type WindowMode uint8

const (
	// OutOfOrder is the standard out-of-order issue processor.
	OutOfOrder WindowMode = iota
	// InOrderStallOnMiss stalls instruction issue when a load misses.
	InOrderStallOnMiss
	// InOrderStallOnUse stalls instruction issue when a missing load's
	// data is used by a subsequent instruction.
	InOrderStallOnUse
)

// String names the mode.
func (m WindowMode) String() string {
	switch m {
	case OutOfOrder:
		return "out-of-order"
	case InOrderStallOnMiss:
		return "in-order stall-on-miss"
	case InOrderStallOnUse:
		return "in-order stall-on-use"
	}
	return fmt.Sprintf("WindowMode(%d)", uint8(m))
}

// DisambMode selects how the engine disambiguates memory dependences —
// i.e. what a load pays to issue past earlier stores.
type DisambMode uint8

const (
	// DisambOracle is the paper's baseline: loads wait on exactly their
	// actual producing store (perfect disambiguation via the lastStore
	// links). Bit-identical to the engine before disambiguation modes
	// existed.
	DisambOracle DisambMode = iota
	// DisambStoreSets consumes the annotator's store-set predictions
	// (annotate.Inst.Dep): a DepViolation load pays a recovery flush that
	// terminates the window; a DepFalse load serializes behind the last
	// fetched store.
	DisambStoreSets
	// DisambConservative never speculates: every load waits for every
	// earlier store in the window to execute — the no-prediction lower
	// bound.
	DisambConservative

	numDisambModes = int(DisambConservative) + 1
)

// String names the mode.
func (m DisambMode) String() string {
	switch m {
	case DisambOracle:
		return "oracle"
	case DisambStoreSets:
		return "store-sets"
	case DisambConservative:
		return "conservative"
	}
	return fmt.Sprintf("DisambMode(%d)", uint8(m))
}

// Config is one MLPsim processor configuration.
type Config struct {
	// IssueWindow is the issue-window (reservation station) entry count.
	IssueWindow int
	// ROB is the reorder buffer entry count. The paper's §5.3.2 decouples
	// it from the issue window; most experiments set them equal.
	ROB int
	// FetchBuffer is the fetch-buffer depth: after a Maxwin termination,
	// fetch may run this many instructions further and an I-miss found
	// there still overlaps with the epoch. The paper's default is 32.
	FetchBuffer int
	// Issue selects the Table 2 issue-constraint configuration.
	Issue IssueConfig
	// Mode selects out-of-order or one of the in-order disciplines.
	Mode WindowMode
	// Disamb selects the memory-disambiguation model (oracle, store-set
	// prediction, or always-conservative). Only the out-of-order mode
	// supports non-oracle disambiguation.
	Disamb DisambMode
	// Runahead enables runahead execution (§3.5): on a missing-load
	// trigger the processor checkpoints and speculates up to MaxRunahead
	// instructions with all window termination conditions removed except
	// I-misses and unresolvable mispredictions.
	Runahead bool
	// MaxRunahead is the maximum runahead distance in instructions
	// (paper: 2048).
	MaxRunahead int
	// ValuePredict consumes the annotator's missing-load value-prediction
	// outcomes (§3.6): a correct prediction cuts the dependence on the
	// missing load; a wrong one costs a recovery flush in conventional
	// mode and is harmless in runahead mode.
	ValuePredict bool
	// PerfectVP treats every missing load as correctly value-predicted
	// (limit study, §5.6).
	PerfectVP bool
	// PerfectBP ignores branch mispredictions (limit study).
	PerfectBP bool
	// PerfectIFetch treats instruction fetches as always on-chip (perfect
	// instruction prefetching; limit study).
	PerfectIFetch bool
	// MSHRs bounds the number of off-chip accesses outstanding at once
	// (miss-status holding registers); 0 models the paper's unlimited
	// baseline. A full MSHR file blocks further misses until the epoch's
	// accesses complete.
	MSHRs int
	// StoreBuffer bounds the number of off-chip store misses outstanding
	// at once; 0 models the paper's infinite store buffer (§3). A full
	// store buffer blocks further stores — and, through them, the window —
	// the paper's §7 store-MLP future work.
	StoreBuffer int
	// MaxInstructions bounds the run (0 = until the stream ends).
	MaxInstructions int64
	// OnEpoch, when non-nil, receives every completed epoch; tests use it
	// to check epoch sets against the paper's worked examples. Excluded
	// from JSON: funcs don't marshal, and Results (which embed Config)
	// travel over the peer API and the exhibit json endpoints.
	OnEpoch func(Epoch) `json:"-"`
}

// Default returns the paper's default processor configuration (§5.1):
// 32-entry fetch buffer, 64-entry issue window and ROB, configuration C.
func Default() Config {
	return Config{
		IssueWindow: 64,
		ROB:         64,
		FetchBuffer: 32,
		Issue:       ConfigC,
		Mode:        OutOfOrder,
		MaxRunahead: 2048,
	}
}

// WithIssue returns a copy with the issue configuration replaced.
func (c Config) WithIssue(ic IssueConfig) Config { c.Issue = ic; return c }

// WithWindow returns a copy with both the issue window and ROB set to n.
func (c Config) WithWindow(n int) Config { c.IssueWindow, c.ROB = n, n; return c }

// WithROB returns a copy with only the ROB size replaced (decoupled
// reorder buffer, §5.3.2).
func (c Config) WithROB(n int) Config { c.ROB = n; return c }

// WithRunahead returns a copy with runahead execution enabled.
func (c Config) WithRunahead() Config { c.Runahead = true; return c }

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Mode == OutOfOrder {
		if c.IssueWindow <= 0 {
			return fmt.Errorf("core: issue window %d must be positive", c.IssueWindow)
		}
		if c.ROB < c.IssueWindow {
			return fmt.Errorf("core: ROB %d smaller than issue window %d", c.ROB, c.IssueWindow)
		}
	}
	if c.FetchBuffer < 0 {
		return fmt.Errorf("core: fetch buffer %d negative", c.FetchBuffer)
	}
	if c.Runahead && c.MaxRunahead <= 0 {
		return fmt.Errorf("core: runahead enabled with MaxRunahead %d", c.MaxRunahead)
	}
	if int(c.Issue) >= numConfigs {
		return fmt.Errorf("core: invalid issue configuration %d", c.Issue)
	}
	if c.MSHRs < 0 || c.StoreBuffer < 0 {
		return fmt.Errorf("core: negative MSHR (%d) or store buffer (%d) size", c.MSHRs, c.StoreBuffer)
	}
	if int(c.Disamb) >= numDisambModes {
		return fmt.Errorf("core: invalid disambiguation mode %d", c.Disamb)
	}
	if c.Disamb != DisambOracle && c.Mode != OutOfOrder {
		return fmt.Errorf("core: disambiguation mode %s requires the out-of-order window mode", c.Disamb)
	}
	return nil
}

// Name renders the paper's shorthand, e.g. "64C", "64D/256",
// "RAE", "64D+VP".
func (c Config) Name() string {
	switch c.Mode {
	case InOrderStallOnMiss:
		return "in-order stall-on-miss"
	case InOrderStallOnUse:
		return "in-order stall-on-use"
	}
	s := fmt.Sprintf("%d%s", c.IssueWindow, c.Issue)
	if c.ROB != c.IssueWindow {
		s += fmt.Sprintf("/%d", c.ROB)
	}
	if c.Runahead {
		s += "+RAE"
	}
	if c.ValuePredict {
		s += "+VP"
	}
	if c.PerfectVP {
		s += ".perfVP"
	}
	if c.PerfectBP {
		s += ".perfBP"
	}
	if c.PerfectIFetch {
		s += ".perfI"
	}
	switch c.Disamb {
	case DisambStoreSets:
		s += ".ss"
	case DisambConservative:
		s += ".consv"
	}
	return s
}

package core

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
	"mlpsim/internal/storeset"
)

// accessKind classifies one off-chip access.
type accessKind uint8

const (
	accD accessKind = iota // missing load / atomic
	accP                   // missing prefetch
	accI                   // missing instruction fetch
)

// record counts one off-chip access at instruction j. track carries the
// caller's OnEpoch observation (the SoA stepper always passes false:
// observers are SoA-ineligible).
func (ep *epochState) record(j int64, kind accessKind, track bool) {
	if ep.accesses == 0 {
		ep.trigger = j
		ep.epoch.Trigger = j
	}
	ep.accesses++
	switch kind {
	case accD:
		ep.dAccesses++
	case accP:
		ep.pAccesses++
	case accI:
		ep.iAccesses++
	}
	if track {
		ep.epoch.AccessIdx = append(ep.epoch.AccessIdx, j)
	}
}

// terminate records the window termination point and cause.
func (ep *epochState) terminate(idx int64, lim Limiter) {
	ep.termIdx = idx
	ep.limiter = lim
}

// block records the earliest Figure-5 blocking event (a missing load held
// back by the load-ordering or store-address policy).
func (ep *epochState) block(idx int64, lim Limiter) {
	if ep.blockIdx < 0 {
		ep.blockIdx = idx
		ep.blockLim = lim
	}
}

// execResult is the outcome of one execution attempt.
type execResult uint8

const (
	execOK execResult = iota
	execBlocked
	execVPFlush
	// execDepFlush: the load issued past a store it depended on (store-set
	// dependence misprediction); the machine pays a recovery flush.
	execDepFlush
)

// tryExecute attempts to execute slot j in the current epoch under the
// engine's issue policies. rae relaxes the conventional constraints
// (runahead execution, §3.5).
func (e *Engine) tryExecute(j int64, ai *annotate.Inst, st *slotState, ep *epochState, rae bool) execResult {
	cls := ai.Class

	// A slot whose instruction fetch is still pending (possible only when
	// a full MSHR file deferred the I-access at fetch time) must issue
	// its fetch before it can execute; the line arrives at the end of the
	// epoch that issues it.
	if ai.IMiss && !st.imissDone {
		if e.cfg.MSHRs > 0 && ep.accesses >= e.cfg.MSHRs {
			ep.block(j, LimMSHR)
			return execBlocked
		}
		st.imissDone = true
		ep.record(j, accI, e.cfg.OnEpoch != nil)
		return execBlocked
	}

	// Serializing instructions drain the pipeline in configurations A–D;
	// runahead is purely speculative and ignores them.
	if !rae && e.cfg.Issue.Serializing() && cls.IsSerializing() {
		e.advanceRetire()
		if e.retire != j {
			return execBlocked
		}
		e.execute(j, ai, st, ep)
		return execOK
	}

	// Finite MSHRs: a new off-chip access cannot issue while all miss
	// registers are occupied by this epoch's outstanding accesses.
	if e.cfg.MSHRs > 0 && (ai.DMiss || ai.PMiss) && !st.counted &&
		ep.accesses >= e.cfg.MSHRs {
		ep.block(j, LimMSHR)
		return execBlocked
	}
	// Finite store buffer (conventional mode; runahead stores do not
	// update state and bypass it).
	if !rae && e.cfg.StoreBuffer > 0 && ai.SMiss && !st.countedS &&
		ep.sAccesses >= e.cfg.StoreBuffer {
		ep.block(j, LimStoreBuf)
		return execBlocked
	}

	if !e.srcsReady(st) {
		// A consumer of a wrongly value-predicted missing load costs a
		// recovery flush in conventional mode.
		if !rae && e.cfg.ValuePredict && !e.cfg.PerfectVP {
			if p := e.vpWrongProducer(st); p >= 0 {
				e.stateAt(p).vpHandled = true
				return execVPFlush
			}
		}
		return execBlocked
	}

	// True memory dependence: a load must wait for the latest earlier
	// same-address store to execute (forwarding). Runahead stores do not
	// update state, so runahead ignores this. Under store-set prediction a
	// load the predictor failed to cover does not wait — it issues, reads
	// stale data, and pays a recovery flush when the violation is found.
	isLoadLike := cls.IsMemRead() && cls != isa.Prefetch
	if !rae && isLoadLike && st.memProd >= 0 && !e.producerExecuted(st.memProd) {
		if e.cfg.Disamb == DisambStoreSets && ai.Dep == storeset.DepViolation && !st.depHandled {
			st.depHandled = true
			return execDepFlush
		}
		return execBlocked
	}

	// Non-oracle disambiguation: false or conservative dependence
	// predictions serialize the load behind stores it does not actually
	// depend on (the memProd wait above already cleared, so any block
	// here is needless cost the oracle would not pay).
	if !rae && isLoadLike && e.cfg.Disamb != DisambOracle && e.disambBlocked(j, ai, st, ep) {
		return execBlocked
	}

	if !rae && cls == isa.Branch && e.cfg.Issue.BranchesInOrder() &&
		!e.producerExecuted(st.prevBranch) {
		return execBlocked
	}

	if !rae && isLoadLike {
		if e.cfg.Issue.LoadsInOrder() && !e.producerExecuted(st.prevMem) {
			if ai.DMiss {
				if ep.firstUnresolvedStore >= 0 && ep.firstUnresolvedStore < j {
					ep.block(j, LimDepStore)
				} else {
					ep.block(j, LimMissingLoad)
				}
			}
			return execBlocked
		}
		if e.cfg.Issue.LoadsWaitStoreAddr() &&
			ep.firstUnresolvedStore >= 0 && ep.firstUnresolvedStore < j {
			if ai.DMiss {
				ep.block(j, LimDepStore)
			}
			return execBlocked
		}
	}

	// Stores execute once address and data are ready (checked via
	// srcsReady above).
	e.execute(j, ai, st, ep)
	return execOK
}

// vpWrongProducer returns the index of an outstanding wrongly-predicted
// producer of the slot, or -1.
func (e *Engine) vpWrongProducer(st *slotState) int64 {
	for _, p := range [2]int64{st.prod1, st.prod2} {
		if p < 0 || p < e.retire {
			continue
		}
		ps := e.stateAt(p)
		if ps.executed && ps.avail > e.epoch && ps.vpWrong && !ps.vpHandled {
			return p
		}
	}
	return -1
}

// disambBlocked applies the non-oracle serialization costs: a
// predicted-but-false dependence (store sets) holds the load behind the
// last fetched store; conservative disambiguation holds it behind every
// unexecuted earlier store. Both are counted once per load as a needless
// serialize, and a blocked missing load charges the epoch's Figure-5
// category to the dependent-store condition.
func (e *Engine) disambBlocked(j int64, ai *annotate.Inst, st *slotState, ep *epochState) bool {
	switch e.cfg.Disamb {
	case DisambStoreSets:
		if ai.Dep != storeset.DepFalse || e.producerExecuted(st.prevStore) {
			return false
		}
	case DisambConservative:
		if ep.firstUnexecStore < 0 || ep.firstUnexecStore >= j {
			return false
		}
	default:
		return false
	}
	if !st.depSerCounted {
		st.depSerCounted = true
		e.res.DepSerializes++
	}
	if ai.DMiss {
		ep.block(j, LimDepStore)
	}
	return true
}

// noteUnresolvedStore records the first store in scan order whose address
// is not yet resolved (configurations A and B block later loads on it),
// and — under conservative disambiguation — the first store not yet
// executed (every later load serializes behind it).
func (e *Engine) noteUnresolvedStore(j int64, ai *annotate.Inst, st *slotState, ep *epochState) {
	if !ai.Class.IsMemWrite() || st.executed {
		return
	}
	if e.cfg.Disamb == DisambConservative && ep.firstUnexecStore < 0 {
		ep.firstUnexecStore = j
	}
	if ep.firstUnresolvedStore >= 0 {
		return
	}
	if !e.resultReady(st.prod1) {
		ep.firstUnresolvedStore = j
	}
}

// runEpochOoO runs one epoch of the out-of-order (or runahead) model.
func (e *Engine) runEpochOoO(ep *epochState) {
	rae := e.cfg.Runahead
	e.advanceRetire()

	// Phase 1: revisit deferred instructions in program order. Earlier
	// epochs' misses have completed, so dependence chains resolve here.
	for j := e.retire; j < e.fetchEnd; j++ {
		st := e.stateAt(j)
		if !st.executed {
			ai := e.instAt(j)
			e.tryExecute(j, ai, st, ep, rae)
			e.noteUnresolvedStore(j, ai, st, ep)
		}
	}
	e.advanceRetire()

	// An unexecuted fetch blocker at the window tail stalls fetch for the
	// whole epoch: the front end sits on a wrong path (unresolvable
	// mispredicted branch) or a drained pipeline (serializing
	// instruction).
	if e.fetchEnd > e.retire {
		tst := e.stateAt(e.fetchEnd - 1)
		if !tst.executed {
			tai := e.instAt(e.fetchEnd - 1)
			if tai.Class == isa.Branch && tai.Mispred {
				ep.terminate(e.fetchEnd-1, LimMispredBr)
				return
			}
			if !rae && e.cfg.Issue.Serializing() && tai.Class.IsSerializing() {
				ep.terminate(e.fetchEnd-1, LimSerialize)
				return
			}
		}
	}

	// Phase 2: fetch and execute until a window termination condition.
	for {
		j := e.fetchEnd

		if rae {
			// The runahead distance is anchored at the oldest incomplete
			// instruction (the checkpointed trigger in hardware terms): a
			// missing-load trigger blocks retirement, so the window
			// extends MaxRunahead beyond it; fire-and-forget prefetch
			// triggers do not stall and impose no bound.
			e.advanceRetire()
			if j-e.retire >= int64(e.cfg.MaxRunahead) {
				ep.terminate(j, LimRunahead)
				return
			}
		} else {
			e.advanceRetire()
			if j-e.retire >= int64(e.cfg.ROB) || e.unexec >= e.cfg.IssueWindow {
				ep.terminate(j, LimMaxwin)
				e.fetchBufferScan(ep)
				return
			}
		}

		ai, st := e.fetchNext()
		if ai == nil {
			ep.terminate(j, LimEnd)
			return
		}

		// A missing instruction fetch blocks the front end; the access
		// itself overlaps with this epoch — unless the MSHR file is full,
		// in which case the fetch must wait for the next epoch.
		if ai.IMiss && !st.imissDone {
			if e.cfg.MSHRs > 0 && ep.accesses >= e.cfg.MSHRs {
				ep.terminate(j, LimMSHR)
				return
			}
			st.imissDone = true
			lim := LimImissEnd
			if ep.accesses == 0 {
				lim = LimImissStart
			}
			ep.record(j, accI, e.cfg.OnEpoch != nil)
			ep.terminate(j, lim)
			return
		}

		switch e.tryExecute(j, ai, st, ep, rae) {
		case execVPFlush:
			ep.terminate(j, LimVPMisp)
			return
		case execDepFlush:
			e.res.DepMispredicts++
			ep.terminate(j, LimDepMispred)
			return
		case execBlocked:
			if ai.Class == isa.Branch && ai.Mispred {
				ep.terminate(j, LimMispredBr)
				return
			}
			if !rae && e.cfg.Issue.Serializing() && ai.Class.IsSerializing() {
				ep.terminate(j, LimSerialize)
				return
			}
			e.noteUnresolvedStore(j, ai, st, ep)
		}
	}
}

// fetchBufferScan models the fetch buffer: after a Maxwin termination the
// front end keeps fetching up to FetchBuffer instructions; an I-miss found
// there is issued in (and overlaps with) the current epoch. The scan stops
// at a mispredicted branch — beyond it the front end is on the wrong path.
func (e *Engine) fetchBufferScan(ep *epochState) {
	for k := int64(0); k < int64(e.cfg.FetchBuffer); k++ {
		var ai *annotate.Inst
		if e.pendHead+k < e.pendTail {
			ai = &e.pending[(e.pendHead+k)&e.pendMask].ai
		} else {
			p := &e.pending[e.pendTail&e.pendMask]
			if !e.pullSource(&p.ai, &p.ln) {
				return
			}
			e.pendTail++
			ai = &p.ai
		}
		if ai.Class == isa.Branch && ai.Mispred && !e.cfg.PerfectBP {
			return
		}
		if ai.IMiss && !e.cfg.PerfectIFetch {
			if e.cfg.MSHRs > 0 && ep.accesses >= e.cfg.MSHRs {
				return
			}
			ep.record(ai.Index, accI, e.cfg.OnEpoch != nil)
			ai.IMiss = false // fetch satisfied; arrives with this epoch
			return
		}
	}
}

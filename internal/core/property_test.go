package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
)

// randomStream builds a random but well-formed annotated stream: register
// producers are arbitrary, miss/mispredict/imiss flags are sprinkled at
// the given rates. It stresses the engine far outside the calibrated
// workloads.
func randomStream(rng *rand.Rand, n int, missP, imissP, mispredP, serialP float64) []annotate.Inst {
	insts := make([]annotate.Inst, n)
	for i := range insts {
		var in annotate.Inst
		in.Index = int64(i)
		in.PC = 0x1000 + uint64(i)*4
		switch x := rng.Float64(); {
		case x < 0.18:
			in.Class = isa.Load
			in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Src2 = isa.NoReg
			in.Dst = isa.Reg(1 + rng.Intn(isa.NumRegs-1))
			in.EA = uint64(rng.Intn(1 << 28))
			in.DMiss = rng.Float64() < missP
		case x < 0.26:
			in.Class = isa.Store
			in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Src2 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Dst = isa.NoReg
			in.EA = uint64(rng.Intn(1 << 28))
		case x < 0.30:
			in.Class = isa.Prefetch
			in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Src2, in.Dst = isa.NoReg, isa.NoReg
			in.EA = uint64(rng.Intn(1 << 28))
			in.PMiss = rng.Float64() < missP
		case x < 0.42:
			in.Class = isa.Branch
			in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Src2, in.Dst = isa.NoReg, isa.NoReg
			in.Mispred = rng.Float64() < mispredP
		case x < 0.42+serialP:
			if rng.Intn(2) == 0 {
				in.Class = isa.MemBar
				in.Src1, in.Src2, in.Dst = isa.NoReg, isa.NoReg, isa.NoReg
			} else {
				in.Class = isa.CASA
				in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
				in.Src2 = isa.Reg(rng.Intn(isa.NumRegs))
				in.Dst = isa.Reg(1 + rng.Intn(isa.NumRegs-1))
				in.EA = uint64(rng.Intn(1 << 20))
				in.DMiss = rng.Float64() < missP/4
			}
		default:
			in.Class = isa.ALU
			in.Src1 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Src2 = isa.Reg(rng.Intn(isa.NumRegs))
			in.Dst = isa.Reg(1 + rng.Intn(isa.NumRegs-1))
		}
		if rng.Float64() < imissP {
			in.IMiss = true
		}
		insts[i] = in
	}
	return insts
}

// expectedAccesses counts the off-chip accesses a stream carries.
func expectedAccesses(insts []annotate.Inst) uint64 {
	var n uint64
	for i := range insts {
		if insts[i].DMiss || insts[i].PMiss {
			n++
		}
		if insts[i].IMiss {
			n++
		}
	}
	return n
}

// Property: for arbitrary random streams and arbitrary configurations the
// engine terminates, conserves accesses exactly, produces MLP >= 1 when
// any access exists, and its limiter counts sum to the epoch count.
func TestEngineConservationProperty(t *testing.T) {
	f := func(seed int64, sizeSel, cfgSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		insts := randomStream(rng, 2000, 0.05, 0.01, 0.05, 0.02)
		want := expectedAccesses(insts)

		cfg := Default()
		cfg.FetchBuffer = int(sizeSel) % 40
		switch cfgSel % 10 {
		case 0:
			cfg.Mode = InOrderStallOnMiss
		case 1:
			cfg.Mode = InOrderStallOnUse
		case 2:
			cfg = cfg.WithWindow(4)
		case 3:
			cfg = cfg.WithWindow(16).WithIssue(ConfigA)
		case 4:
			cfg = cfg.WithWindow(64).WithIssue(ConfigB)
		case 5:
			cfg = cfg.WithIssue(ConfigD).WithRunahead()
		case 6:
			cfg = cfg.WithWindow(32).WithROB(256).WithIssue(ConfigE)
		case 7:
			cfg = cfg.WithIssue(ConfigD)
			cfg.PerfectBP = true
		case 8:
			cfg = cfg.WithWindow(64).WithIssue(ConfigC)
			cfg.Disamb = DisambStoreSets
			sprinkleDeps(rng, insts)
		default:
			cfg = cfg.WithWindow(32).WithIssue(ConfigB)
			cfg.Disamb = DisambConservative
			sprinkleDeps(rng, insts)
		}
		res := NewEngine(&aiSource{insts: insts}, cfg).Run()

		if cfg.PerfectBP || cfg.PerfectIFetch {
			// Rewrites change the expected count; skip conservation.
		} else if res.Accesses != want {
			t.Logf("seed %d cfg %d: accesses %d, want %d", seed, cfgSel%10, res.Accesses, want)
			return false
		}
		if res.Accesses > 0 && res.MLP() < 1 {
			t.Logf("MLP %f < 1", res.MLP())
			return false
		}
		var sum uint64
		for _, n := range res.Limiters {
			sum += n
		}
		if sum != res.Epochs {
			t.Logf("limiters sum %d != epochs %d", sum, res.Epochs)
			return false
		}
		return res.Instructions == int64(len(insts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: for the same random stream, MLP never decreases when the
// window grows (same issue configuration).
func TestEngineWindowMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		insts := randomStream(rng, 3000, 0.06, 0.005, 0.03, 0.01)
		prev := -1.0
		for _, size := range []int{4, 16, 64, 256} {
			res := NewEngine(&aiSource{insts: append([]annotate.Inst(nil), insts...)},
				cfgWindow(size, ConfigC)).Run()
			mlp := res.MLP()
			if mlp < prev-1e-9 {
				t.Logf("seed %d: MLP fell %f -> %f at window %d", seed, prev, mlp, size)
				return false
			}
			prev = mlp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: relaxing issue constraints A->E never lowers MLP on the same
// stream.
func TestEngineIssueMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		insts := randomStream(rng, 3000, 0.06, 0.005, 0.03, 0.02)
		prev := -1.0
		for _, ic := range []IssueConfig{ConfigA, ConfigB, ConfigC, ConfigD, ConfigE} {
			res := NewEngine(&aiSource{insts: append([]annotate.Inst(nil), insts...)},
				cfgWindow(64, ic)).Run()
			if res.MLP() < prev-1e-9 {
				t.Logf("seed %d: MLP fell %f -> %f at %v", seed, prev, res.MLP(), ic)
				return false
			}
			prev = res.MLP()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: extreme streams must not wedge or panic.
func TestEngineExtremeStreams(t *testing.T) {
	cases := map[string][]annotate.Inst{
		"empty": nil,
		"single-miss": {
			{Inst: isa.Inst{Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 2}, DMiss: true},
		},
		"all-imiss": func() []annotate.Inst {
			var out []annotate.Inst
			for i := 0; i < 200; i++ {
				in := add(9, 9, 9)
				in.IMiss = true
				out = append(out, in)
			}
			return out
		}(),
		"all-serializing": func() []annotate.Inst {
			var out []annotate.Inst
			for i := 0; i < 200; i++ {
				if i%2 == 0 {
					out = append(out, ld(2, 1, true))
				} else {
					out = append(out, membar())
				}
			}
			return out
		}(),
		"all-mispredicted": func() []annotate.Inst {
			var out []annotate.Inst
			for i := 0; i < 200; i++ {
				out = append(out, ld(2, 1, true), br(2, true))
			}
			return out
		}(),
		"dependence-chain": func() []annotate.Inst {
			var out []annotate.Inst
			for i := 0; i < 300; i++ {
				out = append(out, ld(2, 2, true)) // each depends on the last
			}
			return out
		}(),
	}
	configs := []Config{
		cfgWindow(4, ConfigA),
		cfgWindow(64, ConfigC),
		cfgWindow(64, ConfigD).WithRunahead(),
		{Mode: InOrderStallOnMiss},
		{Mode: InOrderStallOnUse},
	}
	for name, insts := range cases {
		for _, cfg := range configs {
			src := &aiSource{insts: append([]annotate.Inst(nil), insts...)}
			for i := range src.insts {
				src.insts[i].Index = int64(i)
			}
			res := NewEngine(src, cfg).Run()
			if res.Instructions != int64(len(insts)) {
				t.Errorf("%s/%s: consumed %d of %d", name, cfg.Name(), res.Instructions, len(insts))
			}
			if want := expectedAccesses(insts); res.Accesses != want {
				t.Errorf("%s/%s: accesses %d, want %d", name, cfg.Name(), res.Accesses, want)
			}
		}
	}
}

// The all-dependent chain must produce MLP exactly 1 in every
// configuration, including runahead: dependences are the model's floor.
func TestDependentChainMLPFloor(t *testing.T) {
	var insts []annotate.Inst
	for i := 0; i < 300; i++ {
		insts = append(insts, ld(2, 2, true))
	}
	for _, cfg := range []Config{
		cfgWindow(64, ConfigE),
		cfgWindow(64, ConfigD).WithRunahead(),
		{Mode: InOrderStallOnUse},
	} {
		src := &aiSource{insts: append([]annotate.Inst(nil), insts...)}
		res := NewEngine(src, cfg).Run()
		if res.MLP() != 1 {
			t.Errorf("%s: dependent chain MLP = %v, want exactly 1", cfg.Name(), res.MLP())
		}
	}
}

// Determinism: the whole pipeline (generation, annotation, epoch engine)
// is bit-reproducible for a fixed seed.
func TestEngineEndToEndDeterminism(t *testing.T) {
	run := func() Result {
		src := &aiSource{insts: randomStream(rand.New(rand.NewSource(77)), 5000, 0.05, 0.01, 0.04, 0.02)}
		return NewEngine(src, Default().WithIssue(ConfigD).WithRunahead()).Run()
	}
	a, b := run(), run()
	if a.Accesses != b.Accesses || a.Epochs != b.Epochs || a.Limiters != b.Limiters {
		t.Fatalf("non-deterministic results: %+v vs %+v", a, b)
	}
}

package core

import (
	"fmt"

	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
	"mlpsim/internal/vpred"
)

// AnnotatedSource yields annotated instructions (see internal/annotate).
type AnnotatedSource interface {
	Next() (annotate.Inst, bool)
}

// inPlaceSource is an optional fast path: sources that can decode
// directly into a caller-provided Inst (e.g. atrace.Replay) skip the
// by-value copies of Next. annotate.Inst is large enough that routing it
// through return values is measurable on the fetch path.
type inPlaceSource interface {
	NextInto(*annotate.Inst) bool
}

// linkedSource is the gang fast path: a source that delivers each
// instruction together with its pre-computed dependence links. Engines
// fed by one skip their own binder (and its StoreTable) entirely — the
// links are a pure function of the stream, so a gang computes them once
// and broadcasts (see gang.go).
type linkedSource interface {
	NextLinked(*annotate.Inst, *links) bool
}

// links are one instruction's dependence edges, bound in program order.
// They depend only on the instruction stream, never on the engine
// configuration.
type links struct {
	// prod1, prod2 are the register producers (renaming).
	prod1, prod2 int64
	// memProd is the most recent earlier store to the same address.
	memProd int64
	// prevMem / prevStore / prevBranch chain same-class predecessors for
	// the issue-ordering policies.
	prevMem, prevStore, prevBranch int64
}

// slotState is the hot, per-engine mutable half of an in-flight dynamic
// instruction. The decoded annotate.Inst (cold after fetch: mostly read
// once per execution attempt) lives in a parallel ring so the per-step
// working set stays small.
type slotState struct {
	links

	// avail is the epoch from which the slot's result can be consumed
	// (valid once executed). On-chip results are available in their
	// execution epoch; missing loads deliver data one epoch later — unless
	// their value was correctly predicted (vpCut).
	avail int64
	// complete is the epoch from which the slot can retire. A missing
	// load completes one epoch after issue even when value-predicted: the
	// prediction frees its consumers, not its reorder-buffer entry.
	complete int64

	executed bool
	// counted marks that the slot's off-chip access has been recorded.
	counted bool
	// countedS marks that the slot's off-chip *store* access has been
	// recorded (store-MLP extension).
	countedS bool
	// imissDone marks that the slot's instruction-fetch miss has been
	// issued (the line arrives at the end of that epoch).
	imissDone bool
	// vpCut marks a missing load whose value was correctly predicted:
	// dependents need not wait for the data.
	vpCut bool
	// vpWrong marks a missing load with a wrong value prediction
	// (conventional mode pays a recovery flush at its first consumer).
	vpWrong bool
	// vpHandled marks that the wrong prediction's flush already happened.
	vpHandled bool
	// depHandled marks that the slot's dependence-misprediction flush
	// already happened (DisambStoreSets charges it once per load).
	depHandled bool
	// depSerCounted marks that the slot's needless serialization behind a
	// store has been counted (once per load).
	depSerCounted bool
}

// binder computes dependence links in program order: register renaming
// via the producers table, store forwarding via the bounded StoreTable,
// and the same-class predecessor chains. One binder serves either a
// single engine or a whole gang — binding at pull time is equivalent to
// binding at window entry because instructions enter the window in pull
// order.
type binder struct {
	producers                               [isa.NumRegs]int64
	lastStore                               *StoreTable
	prevMemIdx, prevStoreIdx, prevBranchIdx int64
}

func newBinder() *binder {
	b := &binder{lastStore: NewStoreTable()}
	for i := range b.producers {
		b.producers[i] = -1
	}
	b.prevMemIdx, b.prevStoreIdx, b.prevBranchIdx = -1, -1, -1
	return b
}

// bind fills in instruction j's links and updates the binding state.
func (b *binder) bind(ai *annotate.Inst, j int64, ln *links) {
	ln.prod1, ln.prod2, ln.memProd = -1, -1, -1
	ln.prevMem, ln.prevStore, ln.prevBranch = -1, -1, -1

	if ai.Src1 != isa.NoReg && ai.Src1 != isa.RegZero {
		ln.prod1 = b.producers[ai.Src1]
	}
	if ai.Src2 != isa.NoReg && ai.Src2 != isa.RegZero {
		ln.prod2 = b.producers[ai.Src2]
	}
	cls := ai.Class
	if cls.IsMemRead() && cls != isa.Prefetch {
		if p, ok := b.lastStore.Get(ai.EA >> 3); ok {
			ln.memProd = p
		}
	}
	if cls == isa.Load || cls == isa.Store || cls == isa.CASA || cls == isa.LDSTUB {
		ln.prevMem = b.prevMemIdx
		b.prevMemIdx = j
		// Loads carry the link too: non-oracle disambiguation serializes a
		// predicted-dependent load behind the last fetched store.
		ln.prevStore = b.prevStoreIdx
	}
	if cls.IsMemWrite() {
		b.prevStoreIdx = j
		// Bounded table; stale producers resolve as retired.
		b.lastStore.Put(ai.EA>>3, j)
	}
	if cls == isa.Branch {
		ln.prevBranch = b.prevBranchIdx
		b.prevBranchIdx = j
	}
	if ai.HasDst() {
		b.producers[ai.Dst] = j
	}
}

// pendInst is one fetched-but-undispatched instruction in the pending
// ring (filled by the fetch-buffer scan).
type pendInst struct {
	ai annotate.Inst
	ln links
}

// Engine is the MLPsim epoch-model engine.
type Engine struct {
	cfg       Config
	src       AnnotatedSource
	srcInto   inPlaceSource // src's fast path, nil when unsupported
	srcLinked linkedSource  // gang fast path, nil when unsupported

	// The window is a power-of-two ring of live slots [retire, fetchEnd),
	// indexed by absolute instruction index & mask. Decoded instructions
	// and mutable state live in parallel rings (hot/cold split). Capacity
	// is sized from the Config window bounds at NewEngine time and only
	// grows (doubling) if the live set outruns it, so the steady-state
	// fetch path never allocates.
	insts []annotate.Inst
	state []slotState
	mask  int64

	// fetchEnd is one past the last fetched instruction.
	fetchEnd int64
	// retire is the commit frontier: every slot below it has executed and
	// its result is available in the current epoch.
	retire int64
	// unexec counts fetched-but-unexecuted slots (issue-window occupancy).
	unexec int
	eof    bool

	// bind is the engine's private binder; nil when srcLinked delivers
	// pre-bound links.
	bind *binder

	// pending holds instructions pulled from the source by the fetch
	// buffer scan but not yet dispatched into the window: a power-of-two
	// ring of at most FetchBuffer entries, preallocated at NewEngine.
	pending            []pendInst
	pendMask           int64
	pendHead, pendTail int64

	srcPulled int64

	epoch int64
	// ep is the current epoch's accumulator, hoisted out of step so the
	// hot loop reuses one instance.
	ep  epochState
	res Result
}

// pullSource reads one instruction (and its links) from the underlying
// source, honouring MaxInstructions and applying the perfect-feature
// rewrites.
func (e *Engine) pullSource(dst *annotate.Inst, ln *links) bool {
	if e.cfg.MaxInstructions > 0 && e.srcPulled >= e.cfg.MaxInstructions {
		return false
	}
	switch {
	case e.srcLinked != nil:
		if !e.srcLinked.NextLinked(dst, ln) {
			return false
		}
	case e.srcInto != nil:
		if !e.srcInto.NextInto(dst) {
			return false
		}
		e.bind.bind(dst, e.srcPulled, ln)
	default:
		ai, ok := e.src.Next()
		if !ok {
			return false
		}
		*dst = ai
		e.bind.bind(dst, e.srcPulled, ln)
	}
	e.srcPulled++
	// The rewrites only touch IMiss/Mispred, which the binder never
	// reads, so binding before them is safe.
	if e.cfg.PerfectIFetch {
		dst.IMiss = false
	}
	if e.cfg.PerfectBP {
		dst.Mispred = false
	}
	return true
}

// ringSize returns the slot-ring capacity for cfg: enough for the
// largest possible live set where the window bound is known (out of
// order), a modest start the ring grows from where it is workload-
// dependent (in order: outstanding prefetches can pile up behind a
// stalled tail).
func ringSize(cfg Config) int {
	switch {
	case cfg.Mode == OutOfOrder && cfg.Runahead:
		return pow2ceil(cfg.MaxRunahead + 1)
	case cfg.Mode == OutOfOrder:
		return pow2ceil(cfg.ROB + 1)
	default:
		return 256
	}
}

// pow2ceil returns the smallest power of two >= n (minimum 1).
func pow2ceil(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewEngine builds an engine; it panics on invalid configurations
// (configurations are produced by code, not end users).
func NewEngine(src AnnotatedSource, cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		cfg: cfg,
		src: src,
	}
	e.srcInto, _ = src.(inPlaceSource)
	e.srcLinked, _ = src.(linkedSource)
	if e.srcLinked == nil {
		e.bind = newBinder()
	}
	n := ringSize(cfg)
	e.insts = make([]annotate.Inst, n)
	e.state = make([]slotState, n)
	e.mask = int64(n) - 1
	p := pow2ceil(cfg.FetchBuffer + 1)
	e.pending = make([]pendInst, p)
	e.pendMask = int64(p) - 1
	return e
}

// Run processes the stream to completion (or cfg.MaxInstructions) and
// returns the result.
func (e *Engine) Run() Result {
	for e.step() {
	}
	return e.finish()
}

// finish seals and returns the accumulated result. Used by Run and by
// the gang runner, which drives step directly.
func (e *Engine) finish() Result {
	e.res.Config = e.cfg
	e.res.Instructions = e.fetchEnd
	return e.res
}

// step runs one epoch; it returns false when the stream is exhausted and
// no work remains.
func (e *Engine) step() bool {
	if e.eof && e.retire >= e.fetchEnd {
		return false
	}
	e.epoch++
	before := e.fetchEnd
	executedBefore := e.unexec
	e.ep = epochState{firstUnresolvedStore: -1, firstUnexecStore: -1, blockIdx: -1}
	ep := &e.ep

	if e.cfg.Mode == OutOfOrder {
		e.runEpochOoO(ep)
	} else {
		e.runEpochInOrder(ep)
	}

	if ep.sAccesses > 0 {
		e.res.StoreEpochs++
		e.res.SAccesses += uint64(ep.sAccesses)
	}
	if ep.accesses > 0 {
		e.res.Epochs++
		e.res.Accesses += uint64(ep.accesses)
		e.res.DAccesses += uint64(ep.dAccesses)
		e.res.PAccesses += uint64(ep.pAccesses)
		e.res.IAccesses += uint64(ep.iAccesses)
		lim := ep.limiter
		if ep.blockIdx >= 0 && ep.blockIdx <= ep.termIdx {
			lim = ep.blockLim
		}
		e.res.Limiters[lim]++
		if e.cfg.OnEpoch != nil {
			ep.epoch.Seq = e.res.Epochs - 1
			ep.epoch.Accesses = ep.accesses
			ep.epoch.DAccesses = ep.dAccesses
			ep.epoch.PAccesses = ep.pAccesses
			ep.epoch.IAccesses = ep.iAccesses
			ep.epoch.Limiter = lim
			e.cfg.OnEpoch(ep.epoch)
		}
	}

	// Progress guard: an epoch must fetch, execute or access something.
	if e.fetchEnd == before && e.unexec == executedBefore && ep.accesses == 0 && !e.eof {
		panic(fmt.Sprintf("core: epoch %d made no progress at instruction %d", e.epoch, e.fetchEnd))
	}
	return true
}

// epochState accumulates one epoch's events.
type epochState struct {
	accesses             int
	dAccesses            int
	pAccesses            int
	iAccesses            int
	trigger              int64
	sAccesses            int
	limiter              Limiter
	termIdx              int64 // index where the window terminated
	blockIdx             int64 // earliest Fig-5 blocking event (config A/B load blocks)
	blockLim             Limiter
	firstUnresolvedStore int64
	// firstUnexecStore is the first not-yet-executed store in scan order
	// (DisambConservative serializes every later load behind it).
	firstUnexecStore int64
	epoch            Epoch
}

// stateAt returns the mutable state of the slot at absolute index j.
// Valid only for live indices [retire, fetchEnd); below retire the ring
// position may have been reused (callers guard with p < e.retire).
func (e *Engine) stateAt(j int64) *slotState {
	return &e.state[j&e.mask]
}

// instAt returns the decoded instruction at absolute index j (same
// validity rule as stateAt).
func (e *Engine) instAt(j int64) *annotate.Inst {
	return &e.insts[j&e.mask]
}

// growRing doubles the window ring, re-placing the live slots.
func (e *Engine) growRing() {
	n := 2 * len(e.state)
	insts := make([]annotate.Inst, n)
	state := make([]slotState, n)
	mask := int64(n) - 1
	for j := e.retire; j < e.fetchEnd; j++ {
		insts[j&mask] = e.insts[j&e.mask]
		state[j&mask] = e.state[j&e.mask]
	}
	e.insts, e.state, e.mask = insts, state, mask
}

// fetchNext pulls the next instruction into the window; its links were
// bound at pull time. It returns nils at (or beyond) end of stream.
func (e *Engine) fetchNext() (*annotate.Inst, *slotState) {
	if e.eof {
		return nil, nil
	}
	j := e.fetchEnd
	if j-e.retire >= int64(len(e.state)) {
		e.growRing()
	}
	ai := &e.insts[j&e.mask]
	st := &e.state[j&e.mask]
	if e.pendHead < e.pendTail {
		p := &e.pending[e.pendHead&e.pendMask]
		e.pendHead++
		*ai = p.ai
		st.links = p.ln
	} else if !e.pullSource(ai, &st.links) {
		e.eof = true
		return nil, nil
	}
	// The ring slot is being reused: reset the per-engine state (the
	// decode above fully overwrote ai and links).
	st.avail, st.complete = 0, 0
	st.executed, st.counted, st.countedS = false, false, false
	st.imissDone, st.vpCut, st.vpWrong, st.vpHandled = false, false, false, false
	st.depHandled, st.depSerCounted = false, false

	if ai.DMiss {
		switch {
		case e.cfg.PerfectVP:
			st.vpCut = true
		case e.cfg.ValuePredict && ai.VPOutcome == vpred.Correct:
			st.vpCut = true
		case e.cfg.ValuePredict && ai.VPOutcome == vpred.Wrong:
			st.vpWrong = true
		}
	}

	e.fetchEnd++
	e.unexec++
	return ai, st
}

// advanceRetire moves the commit frontier past completed work, freeing
// ring slots for reuse.
func (e *Engine) advanceRetire() {
	for e.retire < e.fetchEnd {
		st := e.stateAt(e.retire)
		if !st.executed || st.complete > e.epoch {
			break
		}
		e.retire++
	}
}

// resultReady reports whether producer p's result can be consumed in the
// current epoch.
func (e *Engine) resultReady(p int64) bool {
	if p < 0 || p < e.retire {
		return true
	}
	st := e.stateAt(p)
	return st.executed && st.avail <= e.epoch
}

// srcsReady reports whether all register sources of a slot are available.
func (e *Engine) srcsReady(st *slotState) bool {
	return e.resultReady(st.prod1) && e.resultReady(st.prod2)
}

// producerExecuted reports whether slot p has executed (issued).
func (e *Engine) producerExecuted(p int64) bool {
	if p < 0 || p < e.retire {
		return true
	}
	return e.stateAt(p).executed
}

// execute marks slot j executed in the current epoch, counting its
// off-chip access if it has one.
func (e *Engine) execute(j int64, ai *annotate.Inst, st *slotState, ep *epochState) {
	st.executed = true
	e.unexec--
	st.avail = e.epoch
	st.complete = e.epoch
	if (ai.DMiss || ai.PMiss) && !st.counted {
		st.counted = true
		kind := accD
		if ai.PMiss {
			kind = accP
		}
		ep.record(j, kind, e.cfg.OnEpoch != nil)
	}
	if ai.SMiss && !st.countedS {
		st.countedS = true
		ep.sAccesses++
	}
	if ai.DMiss {
		// Data returns at the end of this epoch. A correctly predicted
		// value (vpCut) lets consumers proceed immediately, but the load
		// itself still occupies its reorder-buffer entry until the data
		// returns.
		st.complete = e.epoch + 1
		if !st.vpCut {
			st.avail = e.epoch + 1
		}
	}
	if e.cfg.OnEpoch != nil {
		ep.epoch.Executed = append(ep.epoch.Executed, j)
	}
}

package core

import (
	"fmt"

	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
	"mlpsim/internal/vpred"
)

// AnnotatedSource yields annotated instructions (see internal/annotate).
type AnnotatedSource interface {
	Next() (annotate.Inst, bool)
}

// inPlaceSource is an optional fast path: sources that can decode
// directly into a caller-provided Inst (e.g. atrace.Replay) skip the
// by-value copies of Next. annotate.Inst is large enough that routing it
// through return values is measurable on the fetch path.
type inPlaceSource interface {
	NextInto(*annotate.Inst) bool
}

// slot is one in-flight dynamic instruction.
type slot struct {
	ai annotate.Inst

	executed bool
	// avail is the epoch from which the slot's result can be consumed
	// (valid once executed). On-chip results are available in their
	// execution epoch; missing loads deliver data one epoch later — unless
	// their value was correctly predicted (vpCut).
	avail int64
	// complete is the epoch from which the slot can retire. A missing
	// load completes one epoch after issue even when value-predicted: the
	// prediction frees its consumers, not its reorder-buffer entry.
	complete int64
	// counted marks that the slot's off-chip access has been recorded.
	counted bool
	// countedS marks that the slot's off-chip *store* access has been
	// recorded (store-MLP extension).
	countedS bool
	// imissDone marks that the slot's instruction-fetch miss has been
	// issued (the line arrives at the end of that epoch).
	imissDone bool
	// vpCut marks a missing load whose value was correctly predicted:
	// dependents need not wait for the data.
	vpCut bool
	// vpWrong marks a missing load with a wrong value prediction
	// (conventional mode pays a recovery flush at its first consumer).
	vpWrong bool
	// vpHandled marks that the wrong prediction's flush already happened.
	vpHandled bool

	// Producer links, bound at fetch time (register renaming).
	prod1, prod2 int64
	// memProd is the most recent earlier store to the same address.
	memProd int64
	// prevMem / prevStore / prevBranch chain same-class predecessors for
	// the issue-ordering policies.
	prevMem, prevStore, prevBranch int64
}

// Engine is the MLPsim epoch-model engine.
type Engine struct {
	cfg     Config
	src     AnnotatedSource
	srcInto inPlaceSource // src's fast path, nil when unsupported

	buf  []slot
	base int64 // absolute index of buf[0]
	// fetchEnd is one past the last fetched instruction.
	fetchEnd int64
	// retire is the commit frontier: every slot below it has executed and
	// its result is available in the current epoch.
	retire int64
	// unexec counts fetched-but-unexecuted slots (issue-window occupancy).
	unexec int
	eof    bool

	producers                               [isa.NumRegs]int64
	lastStore                               *StoreTable
	prevMemIdx, prevStoreIdx, prevBranchIdx int64

	// pending holds instructions pulled from the source by the fetch
	// buffer scan but not yet dispatched into the window.
	pending   []annotate.Inst
	srcPulled int64

	epoch int64
	res   Result
}

// pullSource reads one instruction from the underlying source into *dst,
// honouring MaxInstructions and applying the perfect-feature rewrites.
func (e *Engine) pullSource(dst *annotate.Inst) bool {
	if e.cfg.MaxInstructions > 0 && e.srcPulled >= e.cfg.MaxInstructions {
		return false
	}
	if e.srcInto != nil {
		if !e.srcInto.NextInto(dst) {
			return false
		}
	} else {
		ai, ok := e.src.Next()
		if !ok {
			return false
		}
		*dst = ai
	}
	e.srcPulled++
	if e.cfg.PerfectIFetch {
		dst.IMiss = false
	}
	if e.cfg.PerfectBP {
		dst.Mispred = false
	}
	return true
}

// NewEngine builds an engine; it panics on invalid configurations
// (configurations are produced by code, not end users).
func NewEngine(src AnnotatedSource, cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		cfg:       cfg,
		src:       src,
		lastStore: NewStoreTable(),
	}
	e.srcInto, _ = src.(inPlaceSource)
	for i := range e.producers {
		e.producers[i] = -1
	}
	e.prevMemIdx, e.prevStoreIdx, e.prevBranchIdx = -1, -1, -1
	return e
}

// Run processes the stream to completion (or cfg.MaxInstructions) and
// returns the result.
func (e *Engine) Run() Result {
	for e.step() {
	}
	e.res.Config = e.cfg
	e.res.Instructions = e.fetchEnd
	return e.res
}

// step runs one epoch; it returns false when the stream is exhausted and
// no work remains.
func (e *Engine) step() bool {
	if e.eof && e.retire >= e.fetchEnd {
		return false
	}
	e.epoch++
	before := e.fetchEnd
	executedBefore := e.unexec
	var ep epochState
	ep.firstUnresolvedStore = -1
	ep.blockIdx = -1

	if e.cfg.Mode == OutOfOrder {
		e.runEpochOoO(&ep)
	} else {
		e.runEpochInOrder(&ep)
	}

	if ep.sAccesses > 0 {
		e.res.StoreEpochs++
		e.res.SAccesses += uint64(ep.sAccesses)
	}
	if ep.accesses > 0 {
		e.res.Epochs++
		e.res.Accesses += uint64(ep.accesses)
		e.res.DAccesses += uint64(ep.dAccesses)
		e.res.PAccesses += uint64(ep.pAccesses)
		e.res.IAccesses += uint64(ep.iAccesses)
		lim := ep.limiter
		if ep.blockIdx >= 0 && ep.blockIdx <= ep.termIdx {
			lim = ep.blockLim
		}
		e.res.Limiters[lim]++
		if e.cfg.OnEpoch != nil {
			ep.epoch.Seq = e.res.Epochs - 1
			ep.epoch.Accesses = ep.accesses
			ep.epoch.DAccesses = ep.dAccesses
			ep.epoch.PAccesses = ep.pAccesses
			ep.epoch.IAccesses = ep.iAccesses
			ep.epoch.Limiter = lim
			e.cfg.OnEpoch(ep.epoch)
		}
	}

	// Progress guard: an epoch must fetch, execute or access something.
	if e.fetchEnd == before && e.unexec == executedBefore && ep.accesses == 0 && !e.eof {
		panic(fmt.Sprintf("core: epoch %d made no progress at instruction %d", e.epoch, e.fetchEnd))
	}
	return true
}

// epochState accumulates one epoch's events.
type epochState struct {
	accesses             int
	dAccesses            int
	pAccesses            int
	iAccesses            int
	trigger              int64
	sAccesses            int
	limiter              Limiter
	termIdx              int64 // index where the window terminated
	blockIdx             int64 // earliest Fig-5 blocking event (config A/B load blocks)
	blockLim             Limiter
	firstUnresolvedStore int64
	epoch                Epoch
}

// at returns the slot at absolute index j.
func (e *Engine) at(j int64) *slot {
	if j < e.base {
		panic(fmt.Sprintf("core: slot %d below window base %d", j, e.base))
	}
	return &e.buf[j-e.base]
}

// fetchNext pulls the next instruction into the window, binding its
// producer links. It returns nil at (or beyond) end of stream.
func (e *Engine) fetchNext() *slot {
	if e.eof {
		return nil
	}
	// Reserve the slot and decode into it in place: a slot (and the Inst
	// inside it) is large enough that staging it in locals costs a
	// per-instruction memcpy.
	e.buf = append(e.buf, slot{})
	s := &e.buf[len(e.buf)-1]
	if len(e.pending) > 0 {
		s.ai = e.pending[0]
		e.pending = e.pending[1:]
	} else if !e.pullSource(&s.ai) {
		e.eof = true
		e.buf = e.buf[:len(e.buf)-1]
		return nil
	}
	s.prod1, s.prod2, s.memProd = -1, -1, -1
	s.prevMem, s.prevStore, s.prevBranch = -1, -1, -1
	ai := &s.ai
	j := e.fetchEnd

	if ai.DMiss {
		switch {
		case e.cfg.PerfectVP:
			s.vpCut = true
		case e.cfg.ValuePredict && ai.VPOutcome == vpred.Correct:
			s.vpCut = true
		case e.cfg.ValuePredict && ai.VPOutcome == vpred.Wrong:
			s.vpWrong = true
		}
	}

	// Bind register producers in program order.
	if ai.Src1 != isa.NoReg && ai.Src1 != isa.RegZero {
		s.prod1 = e.producers[ai.Src1]
	}
	if ai.Src2 != isa.NoReg && ai.Src2 != isa.RegZero {
		s.prod2 = e.producers[ai.Src2]
	}
	cls := ai.Class
	if cls.IsMemRead() && cls != isa.Prefetch {
		if p, ok := e.lastStore.Get(ai.EA >> 3); ok {
			s.memProd = p
		}
	}
	if cls == isa.Load || cls == isa.Store || cls == isa.CASA || cls == isa.LDSTUB {
		s.prevMem = e.prevMemIdx
		e.prevMemIdx = j
	}
	if cls.IsMemWrite() {
		s.prevStore = e.prevStoreIdx
		e.prevStoreIdx = j
		// Bounded table; stale producers resolve as retired.
		e.lastStore.Put(ai.EA>>3, j)
	}
	if cls == isa.Branch {
		s.prevBranch = e.prevBranchIdx
		e.prevBranchIdx = j
	}
	if ai.HasDst() {
		e.producers[ai.Dst] = j
	}

	e.fetchEnd++
	e.unexec++
	return s
}

// advanceRetire moves the commit frontier past completed work and
// compacts the window buffer.
func (e *Engine) advanceRetire() {
	for e.retire < e.fetchEnd {
		s := e.at(e.retire)
		if !s.executed || s.complete > e.epoch {
			break
		}
		e.retire++
	}
	// Compact when at least half the buffer (and a meaningful amount) is
	// dead.
	drop := e.retire - e.base
	if drop > 4096 && drop >= int64(len(e.buf))/2 {
		n := copy(e.buf, e.buf[drop:])
		e.buf = e.buf[:n]
		e.base = e.retire
	}
}

// resultReady reports whether producer p's result can be consumed in the
// current epoch.
func (e *Engine) resultReady(p int64) bool {
	if p < 0 || p < e.retire {
		return true
	}
	s := e.at(p)
	return s.executed && s.avail <= e.epoch
}

// srcsReady reports whether all register sources of slot s are available.
func (e *Engine) srcsReady(s *slot) bool {
	return e.resultReady(s.prod1) && e.resultReady(s.prod2)
}

// producerExecuted reports whether slot p has executed (issued).
func (e *Engine) producerExecuted(p int64) bool {
	if p < 0 || p < e.retire {
		return true
	}
	return e.at(p).executed
}

// execute marks slot j executed in the current epoch, counting its
// off-chip access if it has one.
func (e *Engine) execute(j int64, s *slot, ep *epochState) {
	s.executed = true
	e.unexec--
	s.avail = e.epoch
	s.complete = e.epoch
	if (s.ai.DMiss || s.ai.PMiss) && !s.counted {
		s.counted = true
		kind := accD
		if s.ai.PMiss {
			kind = accP
		}
		ep.record(e, j, kind)
	}
	if s.ai.SMiss && !s.countedS {
		s.countedS = true
		ep.sAccesses++
	}
	if s.ai.DMiss {
		// Data returns at the end of this epoch. A correctly predicted
		// value (vpCut) lets consumers proceed immediately, but the load
		// itself still occupies its reorder-buffer entry until the data
		// returns.
		s.complete = e.epoch + 1
		if !s.vpCut {
			s.avail = e.epoch + 1
		}
	}
	if e.cfg.OnEpoch != nil {
		ep.epoch.Executed = append(ep.epoch.Executed, j)
	}
}

package core_test

import (
	"reflect"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/workload"
)

// TestStepperMatchesRun pins that stepping an engine epoch-at-a-time
// through the exported cursor is bit-identical to Engine.Run, and that
// the per-epoch observables are monotone and land on the final result's
// totals.
func TestStepperMatchesRun(t *testing.T) {
	for _, w := range workload.Presets(11) {
		newSrc := func() core.AnnotatedSource {
			a := annotate.New(workload.MustNew(w), annotate.Config{})
			a.Warm(100_000)
			return a
		}
		cfg := core.Default()
		cfg.MaxInstructions = 300_000

		want := core.NewEngine(newSrc(), cfg).Run()

		st := core.NewStepper(newSrc(), cfg)
		var prevFetch int64
		var prevAcc, prevEp uint64
		steps := 0
		for st.Step() {
			steps++
			if st.Fetched() < prevFetch || st.Accesses() < prevAcc || st.Epochs() < prevEp {
				t.Fatalf("%s: stepper observables went backwards at step %d", w.Name, steps)
			}
			if st.Unretired() < 0 || st.Unretired() > st.Fetched() {
				t.Fatalf("%s: unretired %d outside [0, fetched %d]", w.Name, st.Unretired(), st.Fetched())
			}
			prevFetch, prevAcc, prevEp = st.Fetched(), st.Accesses(), st.Epochs()
		}
		got := st.Finish()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: stepped result diverged from Run:\n%+v\nvs\n%+v", w.Name, got, want)
		}
		if st.Accesses() != got.Accesses || st.Epochs() != got.Epochs || st.Fetched() != got.Instructions {
			t.Fatalf("%s: stepper totals disagree with the sealed result", w.Name)
		}
		if steps == 0 {
			t.Fatalf("%s: stepper made no steps", w.Name)
		}
	}
}

//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so the exact-allocation assertions skip.
const raceEnabled = true

package core

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
)

// metaWord is the packed, config-independent summary of one decoded
// instruction: the annotation flags plus the class predicates the hot
// loops test. The gang ring computes it once per dynamic instruction at
// bind time; the SoA stepper then runs entirely on meta words and links,
// never touching the 100-odd-byte annotate.Inst again. Per-engine
// perfect-feature rewrites (PerfectIFetch, PerfectBP) become a single
// and-not with the engine's metaClear mask, so the ring can stay
// read-only and shared.
type metaWord uint32

const (
	metaDMiss metaWord = 1 << iota
	metaPMiss
	metaIMiss
	metaSMiss
	metaMispred
	// metaBranch through metaMemWrite are the class predicates the epoch
	// model branches on, precomputed so the stepper never switches on
	// isa.Class.
	metaBranch
	metaSerializing
	// metaLoadLike: IsMemRead and not a prefetch — the instructions that
	// wait on store forwarding and the load-ordering policies.
	metaLoadLike
	metaMemWrite
	// metaMiss is DMiss|PMiss folded into one bit: "executing this slot
	// issues an off-chip data access".
	metaMiss
)

// packMeta summarizes a decoded, bound instruction. The flag bits carry
// the raw annotation; engines with perfect features clear bits via
// metaClear at read time, mirroring the pullSource rewrites.
func packMeta(ai *annotate.Inst) metaWord {
	var m metaWord
	if ai.DMiss {
		m |= metaDMiss | metaMiss
	}
	if ai.PMiss {
		m |= metaPMiss | metaMiss
	}
	if ai.IMiss {
		m |= metaIMiss
	}
	if ai.SMiss {
		m |= metaSMiss
	}
	if ai.Mispred {
		m |= metaMispred
	}
	cls := ai.Class
	if cls == isa.Branch {
		m |= metaBranch
	}
	if cls.IsSerializing() {
		m |= metaSerializing
	}
	if cls.IsMemRead() && cls != isa.Prefetch {
		m |= metaLoadLike
	}
	if cls.IsMemWrite() {
		m |= metaMemWrite
	}
	return m
}

// metaClearFor returns the per-engine mask of flag bits a configuration's
// perfect features erase from every fetched instruction.
func metaClearFor(cfg Config) metaWord {
	var clear metaWord
	if cfg.PerfectIFetch {
		clear |= metaIMiss
	}
	if cfg.PerfectBP {
		clear |= metaMispred
	}
	return clear
}

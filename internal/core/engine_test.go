package core

import (
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
	"mlpsim/internal/vpred"
)

// --- hand-built annotated streams -----------------------------------------

type aiSource struct {
	insts []annotate.Inst
	pos   int
}

func (s *aiSource) Next() (annotate.Inst, bool) {
	if s.pos >= len(s.insts) {
		return annotate.Inst{}, false
	}
	in := s.insts[s.pos]
	s.pos++
	return in, true
}

func src(insts ...annotate.Inst) *aiSource {
	for i := range insts {
		insts[i].Index = int64(i)
		if insts[i].PC == 0 {
			insts[i].PC = 0x1000 + uint64(i)*4
		}
	}
	return &aiSource{insts: insts}
}

func ld(dst, src1 isa.Reg, dmiss bool) annotate.Inst {
	return annotate.Inst{
		Inst:  isa.Inst{Class: isa.Load, Src1: src1, Src2: isa.NoReg, Dst: dst},
		DMiss: dmiss,
	}
}

func add(dst, s1, s2 isa.Reg) annotate.Inst {
	return annotate.Inst{Inst: isa.Inst{Class: isa.ALU, Src1: s1, Src2: s2, Dst: dst}}
}

func st(addrReg, dataReg isa.Reg, ea uint64) annotate.Inst {
	return annotate.Inst{Inst: isa.Inst{Class: isa.Store, Src1: addrReg, Src2: dataReg,
		Dst: isa.NoReg, EA: ea}}
}

func membar() annotate.Inst {
	return annotate.Inst{Inst: isa.Inst{Class: isa.MemBar, Src1: isa.NoReg, Src2: isa.NoReg,
		Dst: isa.NoReg}}
}

func br(src1 isa.Reg, mispred bool) annotate.Inst {
	return annotate.Inst{
		Inst:    isa.Inst{Class: isa.Branch, Src1: src1, Src2: isa.NoReg, Dst: isa.NoReg},
		Mispred: mispred,
	}
}

func imiss(in annotate.Inst) annotate.Inst { in.IMiss = true; return in }

func pf(src1 isa.Reg, pmiss bool) annotate.Inst {
	return annotate.Inst{
		Inst:  isa.Inst{Class: isa.Prefetch, Src1: src1, Src2: isa.NoReg, Dst: isa.NoReg},
		PMiss: pmiss,
	}
}

// runEpochs runs the engine, returning the per-epoch access-index sets.
func runEpochs(t *testing.T, s AnnotatedSource, cfg Config) ([]Epoch, Result) {
	t.Helper()
	var epochs []Epoch
	cfg.OnEpoch = func(ep Epoch) { epochs = append(epochs, ep) }
	res := NewEngine(s, cfg).Run()
	return epochs, res
}

func wantAccesses(t *testing.T, epochs []Epoch, want [][]int64) {
	t.Helper()
	if len(epochs) != len(want) {
		t.Fatalf("got %d epochs, want %d: %+v", len(epochs), len(want), epochs)
	}
	for i, w := range want {
		got := epochs[i].AccessIdx
		if len(got) != len(w) {
			t.Fatalf("epoch %d accesses = %v, want %v", i, got, w)
		}
		for k := range w {
			if got[k] != w[k] {
				t.Fatalf("epoch %d accesses = %v, want %v", i, got, w)
			}
		}
	}
}

func cfgWindow(n int, ic IssueConfig) Config {
	c := Default()
	c.IssueWindow, c.ROB = n, n
	c.Issue = ic
	c.FetchBuffer = 0
	return c
}

// --- the paper's worked examples -------------------------------------------

// Example 1 (§3.2.1): issue window/ROB size 4 terminates the window at i4.
// Epoch sets {i1,i4}, {i2,i3,i5}; MLP = (1+2)/2 = 1.5.
func TestPaperExample1WindowSize(t *testing.T) {
	s := src(
		ld(2, 1, true), // i1: load (r1)->r2  Dmiss
		add(4, 2, 3),   // i2: add r2,r3->r4
		ld(5, 4, true), // i3: load (r4)->r5  Dmiss
		add(2, 0, 1),   // i4: add r0,r1->r2
		ld(8, 7, true), // i5: load (r7)->r8  Dmiss
	)
	epochs, res := runEpochs(t, s, cfgWindow(4, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0}, {2, 4}})
	if mlp := res.MLP(); mlp != 1.5 {
		t.Fatalf("MLP = %v, want 1.5", mlp)
	}
	if epochs[0].Limiter != LimMaxwin {
		t.Fatalf("epoch 0 limiter = %v, want Maxwin", epochs[0].Limiter)
	}
}

// Example 2 (§3.2.2): a MEMBAR terminates the window. Epoch sets
// {i1,i2}, {i3,i4,i5}; MLP = (1+2)/2 = 1.5.
func TestPaperExample2Serializing(t *testing.T) {
	s := src(
		ld(2, 1, true), // i1: Dmiss
		membar(),       // i2
		add(4, 2, 3),   // i3
		ld(5, 4, true), // i4: Dmiss
		ld(8, 7, true), // i5: Dmiss
	)
	epochs, res := runEpochs(t, s, cfgWindow(64, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0}, {3, 4}})
	if mlp := res.MLP(); mlp != 1.5 {
		t.Fatalf("MLP = %v, want 1.5", mlp)
	}
	if epochs[0].Limiter != LimSerialize {
		t.Fatalf("epoch 0 limiter = %v, want Serialize", epochs[0].Limiter)
	}
	// Configuration E removes the serializing constraint: i4 and i5 no
	// longer wait for i1... i4 depends on i1 via r2->r4, so only i5
	// overlaps with i1.
	s2 := src(
		ld(2, 1, true),
		membar(),
		add(4, 2, 3),
		ld(5, 4, true),
		ld(8, 7, true),
	)
	epochs, res = runEpochs(t, s2, cfgWindow(64, ConfigE))
	wantAccesses(t, epochs, [][]int64{{0, 4}, {3}})
	if mlp := res.MLP(); mlp != 1.5 {
		t.Fatalf("config E MLP = %v", mlp)
	}
}

// Example 3 (§3.2.3-4): an I-miss ends the first window; an unresolvable
// mispredicted branch ends the second. Epoch sets {i1,i2f}, {i2,i3},
// {i4,i5}; MLP = (2+1+1)/3 = 1.33.
func TestPaperExample3ImissAndMispredict(t *testing.T) {
	s := src(
		ld(2, 1, true),      // i1: Dmiss
		imiss(add(4, 2, 3)), // i2: Imiss, depends on i1
		ld(5, 4, true),      // i3: Dmiss, depends on i2
		br(5, true),         // i4: mispredicted, depends on i3
		ld(8, 7, true),      // i5: Dmiss
	)
	epochs, res := runEpochs(t, s, cfgWindow(64, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0, 1}, {2}, {4}})
	if got, want := res.MLP(), 4.0/3.0; got != want {
		t.Fatalf("MLP = %v, want %v", got, want)
	}
	if epochs[0].Limiter != LimImissEnd {
		t.Fatalf("epoch 0 limiter = %v, want Imiss end", epochs[0].Limiter)
	}
	if epochs[1].Limiter != LimMispredBr {
		t.Fatalf("epoch 1 limiter = %v, want Mispred br", epochs[1].Limiter)
	}
}

// Example 4 (§3.4.1): the three load issue policies.
func TestPaperExample4LoadPolicies(t *testing.T) {
	mk := func() *aiSource {
		return src(
			ld(2, 1, true),   // i1: load 8(r1)->r2   Dmiss
			ld(3, 2, true),   // i2: load 0(r2)->r3   Dmiss (dep i1)
			ld(4, 1, true),   // i3: load 108(r1)->r4 Dmiss (independent)
			st(3, 5, 0x9000), // i4: store r5->0(r3)  (address dep on i2)
			ld(6, 1, true),   // i5: load 388(r1)->r6 Dmiss (independent)
		)
	}
	// Policy 1 (config A): {i1}, {i2,i3}, {i4,i5}.
	epochs, _ := runEpochs(t, mk(), cfgWindow(64, ConfigA))
	wantAccesses(t, epochs, [][]int64{{0}, {1, 2}, {4}})

	// Policy 2 (config B): {i1,i3}, {i2}, {i4,i5}.
	epochs, _ = runEpochs(t, mk(), cfgWindow(64, ConfigB))
	wantAccesses(t, epochs, [][]int64{{0, 2}, {1}, {4}})

	// Policy 3 (config C): {i1,i3,i5}, {i2}, {i4}.
	epochs, _ = runEpochs(t, mk(), cfgWindow(64, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0, 2, 4}, {1}})
}

// Example 5 (§3.4.2): the two branch issue policies.
func TestPaperExample5BranchPolicies(t *testing.T) {
	mk := func() *aiSource {
		return src(
			ld(2, 1, true), // i1: load 8(r1)->r2 Dmiss
			br(2, false),   // i2: beq r2 (dep i1, predicted correctly)
			br(1, true),    // i3: beq r1 (mispredicted; operands ready)
			ld(4, 1, true), // i4: load 108(r1)->r4 Dmiss
		)
	}
	// Policy 1 (in-order branches, config C): {i1}, {i2,i3,i4}.
	epochs, _ := runEpochs(t, mk(), cfgWindow(64, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0}, {3}})
	if epochs[0].Limiter != LimMispredBr {
		t.Fatalf("limiter = %v, want Mispred br", epochs[0].Limiter)
	}

	// Policy 2 (out-of-order branches, config D): {i1,i3,i4}, {i2}.
	epochs, _ = runEpochs(t, mk(), cfgWindow(64, ConfigD))
	wantAccesses(t, epochs, [][]int64{{0, 3}})
}

// --- additional behavioural tests ------------------------------------------

func TestImissStartIsBlocking(t *testing.T) {
	s := src(
		imiss(add(4, 2, 3)), // trigger is an I-miss: nothing overlaps
		ld(5, 1, true),
		ld(6, 1, true),
	)
	epochs, res := runEpochs(t, s, cfgWindow(64, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0}, {1, 2}})
	if epochs[0].Limiter != LimImissStart {
		t.Fatalf("limiter = %v, want Imiss start", epochs[0].Limiter)
	}
	if res.IAccesses != 1 || res.DAccesses != 2 {
		t.Fatalf("access kinds: %+v", res)
	}
}

func TestPrefetchesOverlapWithoutStalling(t *testing.T) {
	s := src(
		pf(1, true),
		pf(1, true),
		ld(2, 1, true),
		add(3, 2, 2), // consumer of the missing load
		ld(4, 3, true),
	)
	epochs, res := runEpochs(t, s, cfgWindow(64, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0, 1, 2}, {4}})
	if res.PAccesses != 2 {
		t.Fatalf("prefetch accesses = %d", res.PAccesses)
	}
	_ = epochs
}

func TestCorrectlyPredictedBranchDoesNotTerminate(t *testing.T) {
	s := src(
		ld(2, 1, true),
		br(2, false), // depends on the miss but predicted correctly
		ld(4, 1, true),
	)
	epochs, _ := runEpochs(t, s, cfgWindow(64, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0, 2}})
}

func TestResolvableMispredictDoesNotTerminate(t *testing.T) {
	s := src(
		ld(2, 1, true),
		br(3, true), // mispredicted but r3 is on-chip: resolves in-epoch
		ld(4, 1, true),
	)
	epochs, _ := runEpochs(t, s, cfgWindow(64, ConfigD))
	wantAccesses(t, epochs, [][]int64{{0, 2}})
}

func TestMemoryDependenceForwarding(t *testing.T) {
	// Store to address X whose data depends on a miss; a later load from X
	// must wait for the store even under config C.
	s := src(
		ld(2, 1, true), // miss producing r2
		annotate.Inst{Inst: isa.Inst{Class: isa.Store, Src1: 1, Src2: 2, Dst: isa.NoReg, EA: 0x5000}},
		annotate.Inst{Inst: isa.Inst{Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 5, EA: 0x5000},
			DMiss: true},
		ld(6, 1, true), // independent miss
	)
	epochs, _ := runEpochs(t, s, cfgWindow(64, ConfigC))
	// i2 (store data) waits on i1; i3 (same address) waits on i2; i4 free.
	wantAccesses(t, epochs, [][]int64{{0, 3}, {2}})
}

func TestRunaheadIgnoresWindowAndSerialization(t *testing.T) {
	// Window of 4 with a MEMBAR: conventional config C gets three epochs;
	// runahead overlaps everything independent.
	mk := func() *aiSource {
		return src(
			ld(2, 1, true), // i1 Dmiss (trigger)
			add(4, 2, 3),   // dep on i1
			membar(),       // serializing
			ld(5, 1, true), // independent Dmiss
			add(9, 9, 9),
			add(10, 9, 9),
			ld(6, 1, true), // independent Dmiss
			ld(7, 6, true), // dep on previous miss
		)
	}
	cfg := cfgWindow(4, ConfigD)
	_, conv := runEpochs(t, mk(), cfg)

	raeCfg := cfg.WithRunahead()
	epochs, rae := runEpochs(t, mk(), raeCfg)
	if rae.MLP() <= conv.MLP() {
		t.Fatalf("runahead MLP %.3f not above conventional %.3f", rae.MLP(), conv.MLP())
	}
	// First epoch overlaps i1, i4(idx 3) and i7(idx 6).
	wantAccesses(t, epochs, [][]int64{{0, 3, 6}, {7}})
}

func TestRunaheadDistanceLimit(t *testing.T) {
	// A miss, 10 filler, then another miss; runahead distance 8 cannot
	// reach the second miss.
	insts := []annotate.Inst{ld(2, 1, true)}
	for i := 0; i < 10; i++ {
		insts = append(insts, add(9, 9, 9))
	}
	insts = append(insts, ld(5, 1, true))
	cfg := cfgWindow(4, ConfigD).WithRunahead()
	cfg.MaxRunahead = 8
	epochs, _ := runEpochs(t, src(insts...), cfg)
	wantAccesses(t, epochs, [][]int64{{0}, {11}})
	if epochs[0].Limiter != LimRunahead {
		t.Fatalf("limiter = %v, want Runahead limit", epochs[0].Limiter)
	}
}

func TestPerfectBPRemovesMispredTermination(t *testing.T) {
	mk := func() *aiSource {
		return src(
			ld(2, 1, true),
			br(2, true), // unresolvable mispredict
			ld(4, 1, true),
		)
	}
	epochs, _ := runEpochs(t, mk(), cfgWindow(64, ConfigD))
	wantAccesses(t, epochs, [][]int64{{0}, {2}})

	cfg := cfgWindow(64, ConfigD)
	cfg.PerfectBP = true
	epochs, _ = runEpochs(t, mk(), cfg)
	wantAccesses(t, epochs, [][]int64{{0, 2}})
}

func TestPerfectIFetchRemovesImiss(t *testing.T) {
	mk := func() *aiSource {
		return src(
			ld(2, 1, true),
			imiss(add(4, 2, 3)),
			ld(5, 1, true),
		)
	}
	epochs, _ := runEpochs(t, mk(), cfgWindow(64, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0, 1}, {2}})

	cfg := cfgWindow(64, ConfigC)
	cfg.PerfectIFetch = true
	epochs, _ = runEpochs(t, mk(), cfg)
	wantAccesses(t, epochs, [][]int64{{0, 2}})
}

func TestPerfectVPCutsDependences(t *testing.T) {
	mk := func() *aiSource {
		return src(
			ld(2, 1, true), // miss
			ld(3, 2, true), // dependent miss
			ld(4, 3, true), // chain
		)
	}
	epochs, _ := runEpochs(t, mk(), cfgWindow(64, ConfigC))
	wantAccesses(t, epochs, [][]int64{{0}, {1}, {2}})

	cfg := cfgWindow(64, ConfigC)
	cfg.PerfectVP = true
	epochs, res := runEpochs(t, mk(), cfg)
	wantAccesses(t, epochs, [][]int64{{0, 1, 2}})
	if res.MLP() != 3 {
		t.Fatalf("perfect VP MLP = %v, want 3", res.MLP())
	}
}

func TestInOrderStallOnMissVsUse(t *testing.T) {
	mk := func() *aiSource {
		return src(
			ld(2, 1, true), // miss
			ld(3, 1, true), // independent miss
			add(4, 2, 2),   // first use of r2
			ld(5, 1, true), // independent miss after the use
		)
	}
	// Stall-on-miss: window ends at the first missing load.
	cfg := Config{Mode: InOrderStallOnMiss}
	epochs, _ := runEpochs(t, mk(), cfg)
	wantAccesses(t, epochs, [][]int64{{0}, {1}, {3}})

	// Stall-on-use: the second load overlaps; the use terminates.
	cfg = Config{Mode: InOrderStallOnUse}
	epochs, _ = runEpochs(t, mk(), cfg)
	wantAccesses(t, epochs, [][]int64{{0, 1}, {3}})
}

func TestInOrderPrefetchesOverlap(t *testing.T) {
	s := src(
		pf(1, true),
		pf(1, true),
		ld(2, 1, true),
	)
	cfg := Config{Mode: InOrderStallOnMiss}
	epochs, res := runEpochs(t, s, cfg)
	wantAccesses(t, epochs, [][]int64{{0, 1, 2}})
	if res.MLP() != 3 {
		t.Fatalf("in-order prefetch MLP = %v, want 3", res.MLP())
	}
}

func TestInOrderSerializing(t *testing.T) {
	s := src(
		ld(2, 1, true),
		membar(),
		ld(3, 1, true),
	)
	cfg := Config{Mode: InOrderStallOnUse}
	epochs, _ := runEpochs(t, s, cfg)
	wantAccesses(t, epochs, [][]int64{{0}, {2}})
	if epochs[0].Limiter != LimSerialize {
		t.Fatalf("limiter = %v, want Serialize", epochs[0].Limiter)
	}
}

func TestValuePredictionCorrectCutsDependence(t *testing.T) {
	mkv := func(outcome1 vpred.Outcome) *aiSource {
		s := src(
			ld(2, 1, true),
			ld(3, 2, true),
		)
		s.insts[0].VPOutcome = outcome1
		return s
	}
	cfg := cfgWindow(64, ConfigC)
	cfg.ValuePredict = true

	epochs, _ := runEpochs(t, mkv(vpred.Correct), cfg)
	wantAccesses(t, epochs, [][]int64{{0, 1}})

	epochs, _ = runEpochs(t, mkv(vpred.NoPredict), cfg)
	wantAccesses(t, epochs, [][]int64{{0}, {1}})
}

func TestValuePredictionWrongFlushesWindow(t *testing.T) {
	s := src(
		ld(2, 1, true),
		add(3, 2, 2),   // consumer of the wrongly predicted load
		ld(4, 1, true), // would otherwise overlap
	)
	s.insts[0].VPOutcome = vpred.Wrong
	cfg := cfgWindow(64, ConfigC)
	cfg.ValuePredict = true
	epochs, _ := runEpochs(t, s, cfg)
	// The consumer triggers a recovery flush: i3's miss lands in epoch 2.
	wantAccesses(t, epochs, [][]int64{{0}, {2}})
	if epochs[0].Limiter != LimVPMisp {
		t.Fatalf("limiter = %v, want VP misp", epochs[0].Limiter)
	}
}

func TestFetchBufferFindsImissAfterMaxwin(t *testing.T) {
	// Window 2 fills on the miss + dependent; an I-miss two instructions
	// later is still found by the 32-entry fetch buffer and overlaps.
	s := src(
		ld(2, 1, true),
		add(3, 2, 2),
		add(9, 9, 9),
		imiss(add(8, 8, 8)),
		ld(4, 1, true),
	)
	cfg := cfgWindow(2, ConfigC)
	cfg.FetchBuffer = 32
	epochs, res := runEpochs(t, s, cfg)
	if len(epochs) == 0 || epochs[0].IAccesses != 1 || epochs[0].DAccesses != 1 {
		t.Fatalf("epoch 0 should contain the Dmiss and the fetch-buffered Imiss: %+v", epochs)
	}
	if res.IAccesses != 1 {
		t.Fatalf("IAccesses = %d", res.IAccesses)
	}

	// Without a fetch buffer the I-miss waits for the next epoch.
	s2 := src(
		ld(2, 1, true),
		add(3, 2, 2),
		add(9, 9, 9),
		imiss(add(8, 8, 8)),
		ld(4, 1, true),
	)
	cfg.FetchBuffer = 0
	epochs, _ = runEpochs(t, s2, cfg)
	if epochs[0].IAccesses != 0 {
		t.Fatalf("epoch 0 without fetch buffer should not see the Imiss: %+v", epochs[0])
	}
}

func TestMaxInstructionsBound(t *testing.T) {
	var insts []annotate.Inst
	for i := 0; i < 100; i++ {
		insts = append(insts, add(9, 9, 9))
	}
	cfg := cfgWindow(64, ConfigC)
	cfg.MaxInstructions = 40
	res := NewEngine(src(insts...), cfg).Run()
	if res.Instructions != 40 {
		t.Fatalf("instructions = %d, want 40", res.Instructions)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Mode: OutOfOrder, IssueWindow: 0, ROB: 64},
		{Mode: OutOfOrder, IssueWindow: 64, ROB: 32},
		{Mode: OutOfOrder, IssueWindow: 4, ROB: 4, FetchBuffer: -1},
		{Mode: OutOfOrder, IssueWindow: 4, ROB: 4, Runahead: true, MaxRunahead: 0},
		{Mode: OutOfOrder, IssueWindow: 4, ROB: 4, Issue: IssueConfig(9)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestIssueConfigPredicates(t *testing.T) {
	if !ConfigA.LoadsInOrder() || ConfigB.LoadsInOrder() {
		t.Fatal("LoadsInOrder wrong")
	}
	if !ConfigB.LoadsWaitStoreAddr() || ConfigC.LoadsWaitStoreAddr() {
		t.Fatal("LoadsWaitStoreAddr wrong")
	}
	if !ConfigC.BranchesInOrder() || ConfigD.BranchesInOrder() {
		t.Fatal("BranchesInOrder wrong")
	}
	if !ConfigD.Serializing() || ConfigE.Serializing() {
		t.Fatal("Serializing wrong")
	}
	for s, want := range map[string]IssueConfig{"A": ConfigA, "b": ConfigB, "E": ConfigE} {
		got, err := ParseIssueConfig(s)
		if err != nil || got != want {
			t.Fatalf("ParseIssueConfig(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseIssueConfig("Z"); err == nil {
		t.Fatal("Z accepted")
	}
}

func TestConfigName(t *testing.T) {
	c := Default()
	if c.Name() != "64C" {
		t.Fatalf("Name = %q", c.Name())
	}
	if got := c.WithIssue(ConfigD).WithROB(256).Name(); got != "64D/256" {
		t.Fatalf("Name = %q", got)
	}
	if got := c.WithRunahead().Name(); got != "64C+RAE" {
		t.Fatalf("Name = %q", got)
	}
}

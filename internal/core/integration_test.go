package core_test

import (
	"math"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

// measure runs one MLPsim configuration over a freshly generated,
// identically annotated stream.
func measure(t *testing.T, wcfg workload.Config, cfg core.Config, n int64, vp bool) core.Result {
	t.Helper()
	g, err := workload.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := annotate.Config{}
	if vp {
		acfg.Value = vpred.NewLastValue(vpred.DefaultEntries)
	}
	a := annotate.New(g, acfg)
	a.Warm(200_000)
	cfg.MaxInstructions = n
	return core.NewEngine(a, cfg).Run()
}

const testN = 600_000

func TestMLPAtLeastOne(t *testing.T) {
	for _, w := range workload.Presets(3) {
		res := measure(t, w, core.Default(), testN, false)
		if res.Accesses == 0 {
			t.Fatalf("%s: no off-chip accesses", w.Name)
		}
		if mlp := res.MLP(); mlp < 1 {
			t.Fatalf("%s: MLP %.3f < 1", w.Name, mlp)
		}
	}
}

func TestMLPMonotoneInWindowSize(t *testing.T) {
	w := workload.Database(5)
	prev := 0.0
	for _, size := range []int{16, 32, 64, 128, 256} {
		res := measure(t, w, core.Default().WithWindow(size), testN, false)
		mlp := res.MLP()
		if mlp+0.02 < prev { // allow sampling jitter
			t.Fatalf("MLP decreased with window size %d: %.3f -> %.3f", size, prev, mlp)
		}
		prev = mlp
	}
}

func TestMLPMonotoneInIssueConfig(t *testing.T) {
	for _, w := range workload.Presets(7) {
		prev := 0.0
		for _, ic := range []core.IssueConfig{core.ConfigA, core.ConfigB, core.ConfigC, core.ConfigD, core.ConfigE} {
			res := measure(t, w, core.Default().WithWindow(128).WithIssue(ic), testN, false)
			mlp := res.MLP()
			if mlp+0.02 < prev {
				t.Fatalf("%s: MLP decreased A->E at %v: %.3f -> %.3f", w.Name, ic, prev, mlp)
			}
			prev = mlp
		}
	}
}

func TestOutOfOrderBeatsInOrder(t *testing.T) {
	for _, w := range workload.Presets(9) {
		som := measure(t, w, core.Config{Mode: core.InOrderStallOnMiss}, testN, false)
		sou := measure(t, w, core.Config{Mode: core.InOrderStallOnUse}, testN, false)
		ooo := measure(t, w, core.Default(), testN, false)
		big := measure(t, w, core.Default().WithWindow(256), testN, false)
		if som.MLP() < 1 || sou.MLP()+0.02 < som.MLP() {
			t.Fatalf("%s: stall-on-use (%.3f) below stall-on-miss (%.3f)",
				w.Name, sou.MLP(), som.MLP())
		}
		// SPECweb99's software prefetches let the in-order models pool
		// accesses across window-free epochs, so its 64-entry OoO MLP
		// only ties stall-on-use; the 256-entry window separates cleanly.
		// (The paper's web OoO advantage is similarly the smallest.)
		if ooo.MLP()+0.07 < sou.MLP() {
			t.Fatalf("%s: out-of-order (%.3f) clearly below in-order (%.3f)",
				w.Name, ooo.MLP(), sou.MLP())
		}
		if big.MLP() <= sou.MLP() {
			t.Fatalf("%s: 256-entry out-of-order (%.3f) not above in-order (%.3f)",
				w.Name, big.MLP(), sou.MLP())
		}
	}
}

// The paper notes (§5.4.1) that runahead results are identical to the
// "INF" configuration: issue window = ROB = 2048 with configuration E.
func TestRunaheadEquivalentToInfiniteWindow(t *testing.T) {
	for _, w := range workload.Presets(11) {
		rae := measure(t, w, core.Default().WithIssue(core.ConfigD).WithRunahead(), testN, false)
		inf := measure(t, w, core.Default().WithWindow(2048).WithIssue(core.ConfigE), testN, false)
		if math.Abs(rae.MLP()-inf.MLP()) > 0.02*inf.MLP() {
			t.Fatalf("%s: RAE MLP %.4f != INF MLP %.4f", w.Name, rae.MLP(), inf.MLP())
		}
	}
}

func TestRunaheadBeatsConventional(t *testing.T) {
	for _, w := range workload.Presets(13) {
		conv := measure(t, w, core.Default().WithIssue(core.ConfigD), testN, false)
		rae := measure(t, w, core.Default().WithIssue(core.ConfigD).WithRunahead(), testN, false)
		if rae.MLP() <= conv.MLP() {
			t.Fatalf("%s: RAE MLP %.3f not above conventional %.3f", w.Name, rae.MLP(), conv.MLP())
		}
	}
}

func TestDecoupledROBImprovesMLP(t *testing.T) {
	w := workload.Database(15)
	base := measure(t, w, core.Default().WithIssue(core.ConfigD), testN, false)
	big := measure(t, w, core.Default().WithIssue(core.ConfigD).WithROB(256), testN, false)
	if big.MLP() <= base.MLP() {
		t.Fatalf("enlarged ROB MLP %.3f not above %.3f", big.MLP(), base.MLP())
	}
}

func TestPerfectFeaturesOnlyImprove(t *testing.T) {
	w := workload.Database(17)
	base := measure(t, w, core.Default().WithIssue(core.ConfigD).WithRunahead(), testN, false)
	for _, mod := range []func(*core.Config){
		func(c *core.Config) { c.PerfectVP = true },
		func(c *core.Config) { c.PerfectBP = true },
	} {
		cfg := core.Default().WithIssue(core.ConfigD).WithRunahead()
		mod(&cfg)
		res := measure(t, w, cfg, testN, false)
		if res.MLP()+0.02 < base.MLP() {
			t.Fatalf("perfect feature lowered MLP: %.3f vs base %.3f (%s)",
				res.MLP(), base.MLP(), cfg.Name())
		}
	}
}

// Perfect instruction prefetching removes I-misses from both the access
// count and the termination conditions. Its MLP effect depends on whether
// the removed accesses were exposed (singleton epochs) or riding along
// data bursts; CPI always improves because the misses themselves
// disappear. Here we check the structural effects plus the strongly
// I-bound case, where MLP must rise.
func TestPerfectIFetchStructure(t *testing.T) {
	for _, w := range []workload.Config{workload.Web(17), workload.IBound(17)} {
		cfg := core.Default().WithIssue(core.ConfigD).WithRunahead()
		base := measure(t, w, cfg, testN, false)
		cfg.PerfectIFetch = true
		pi := measure(t, w, cfg, testN, false)
		if pi.IAccesses != 0 {
			t.Fatalf("%s: perfI left %d I-accesses", w.Name, pi.IAccesses)
		}
		if pi.Accesses >= base.Accesses {
			t.Fatalf("%s: perfI did not reduce accesses (%d vs %d)", w.Name, pi.Accesses, base.Accesses)
		}
		if pi.Epochs >= base.Epochs {
			t.Fatalf("%s: perfI did not reduce epochs (%d vs %d)", w.Name, pi.Epochs, base.Epochs)
		}
		if pi.MLP() <= base.MLP() {
			t.Fatalf("%s: perfI MLP %.3f not above %.3f", w.Name, pi.MLP(), base.MLP())
		}
	}
}

func TestEpochPartitionConservation(t *testing.T) {
	// Every annotated off-chip access must be counted exactly once across
	// all epochs (no loss, no duplication).
	g := workload.MustNew(workload.Database(19))
	a := annotate.New(g, annotate.Config{})
	a.Warm(100_000)

	var want uint64
	counting := countingSource{src: a, missCount: &want}
	cfg := core.Default()
	cfg.MaxInstructions = 300_000
	res := core.NewEngine(&counting, cfg).Run()
	if res.Accesses != want {
		t.Fatalf("engine counted %d accesses, annotator produced %d", res.Accesses, want)
	}
}

type countingSource struct {
	src       *annotate.Annotator
	missCount *uint64
}

func (c *countingSource) Next() (annotate.Inst, bool) {
	in, ok := c.src.Next()
	if ok && in.OffChip() {
		*c.missCount++
		if in.IMiss && (in.DMiss || in.PMiss) {
			*c.missCount++ // both a fetch miss and a data miss
		}
	}
	return in, ok
}

func TestLimiterDistributionSums(t *testing.T) {
	for _, w := range workload.Presets(21) {
		res := measure(t, w, core.Default(), testN, false)
		var sum uint64
		for _, n := range res.Limiters {
			sum += n
		}
		if sum != res.Epochs {
			t.Fatalf("%s: limiter counts sum to %d, epochs %d", w.Name, sum, res.Epochs)
		}
	}
}

func TestSerializationDominatesJBBAtLargeWindows(t *testing.T) {
	// §5.3.1: at large windows, serializing constraints are the most
	// serious impediment for SPECjbb2000 (config D keeps serialization).
	res := measure(t, workload.JBB(23), core.Default().WithWindow(1024).WithIssue(core.ConfigD), testN, false)
	fr := res.LimiterFracs()
	if fr[core.LimSerialize] < 0.3 {
		t.Fatalf("JBB at 1024D: serialize fraction %.3f, want dominant (>0.3); %v", fr[core.LimSerialize], res.Limiters)
	}
	// Removing serialization (config E) must raise MLP noticeably: a
	// 1024-entry window spans several inter-burst distances, but CASAs
	// every ~150 instructions chop it up under configuration D.
	e := measure(t, workload.JBB(23), core.Default().WithWindow(1024).WithIssue(core.ConfigE), testN, false)
	if e.MLP() <= res.MLP()*1.05 {
		t.Fatalf("config E MLP %.3f not >5%% above config D %.3f", e.MLP(), res.MLP())
	}
}

func TestValuePredictionHelpsWithRunahead(t *testing.T) {
	w := workload.Database(25)
	base := measure(t, w, core.Default().WithIssue(core.ConfigD).WithRunahead(), testN, true)
	cfg := core.Default().WithIssue(core.ConfigD).WithRunahead()
	cfg.ValuePredict = true
	vp := measure(t, w, cfg, testN, true)
	if vp.MLP() <= base.MLP() {
		t.Fatalf("VP+RAE MLP %.3f not above RAE %.3f", vp.MLP(), base.MLP())
	}
}

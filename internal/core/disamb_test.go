package core

import (
	"math/rand"
	"strings"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
	"mlpsim/internal/storeset"
)

// sprinkleDeps stamps arbitrary (not necessarily truth-consistent)
// dependence outcomes on load-like instructions: the engine must stay
// well-formed for any Dep column, the same robustness contract the VP
// outcomes have.
func sprinkleDeps(rng *rand.Rand, insts []annotate.Inst) {
	for i := range insts {
		cls := insts[i].Class
		if cls.IsMemRead() && cls != isa.Prefetch {
			insts[i].Dep = storeset.Outcome(rng.Intn(4))
		}
	}
}

// stampDeps classifies every load against a real store-set predictor in
// program order — exactly the annotator's wiring — so the Dep column is
// consistent with the stream's actual store→load dependences.
func stampDeps(insts []annotate.Inst, cfg storeset.Config) {
	p := storeset.New(cfg)
	for i := range insts {
		in := &insts[i]
		cls := in.Class
		switch {
		case cls == isa.Prefetch:
		case cls.IsMemRead():
			in.Dep = p.ObserveLoad(in.PC, in.EA, in.Index)
			if cls.IsMemWrite() {
				p.ObserveStore(in.PC, in.EA, in.Index)
			}
		case cls == isa.Store:
			p.ObserveStore(in.PC, in.EA, in.Index)
		}
	}
}

// TestDisambValidateAndName pins the mode plumbing: non-oracle modes
// require the out-of-order window, and the config shorthand names them.
func TestDisambValidateAndName(t *testing.T) {
	for _, mode := range []DisambMode{DisambStoreSets, DisambConservative} {
		cfg := Default()
		cfg.Disamb = mode
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v out-of-order: unexpected error %v", mode, err)
		}
		cfg.Mode = InOrderStallOnMiss
		if err := cfg.Validate(); err == nil {
			t.Errorf("%v in-order: validated", mode)
		}
	}
	bad := Default()
	bad.Disamb = DisambMode(7)
	if err := bad.Validate(); err == nil {
		t.Error("invalid mode value validated")
	}
	ss := Default()
	ss.Disamb = DisambStoreSets
	if !strings.HasSuffix(ss.Name(), ".ss") {
		t.Errorf("store-sets name %q lacks .ss", ss.Name())
	}
	consv := Default()
	consv.Disamb = DisambConservative
	if !strings.HasSuffix(consv.Name(), ".consv") {
		t.Errorf("conservative name %q lacks .consv", consv.Name())
	}
	if Default().Name() != "64C" {
		t.Errorf("oracle name changed: %q", Default().Name())
	}
}

// Scenario: a load the predictor failed to cover (DepViolation) issues
// past its still-outstanding producing store and pays a recovery flush
// that terminates the window; the oracle simply waits.
func TestDisambViolationFlush(t *testing.T) {
	build := func() *aiSource {
		l0 := ld(2, 1, true)
		l0.EA = 0x100
		s1 := st(2, 3, 0x200) // address depends on the missing load
		l2 := ld(4, 1, true)
		l2.EA = 0x200 // true dependence on s1
		l2.Dep = storeset.DepViolation
		return src(l0, s1, l2)
	}

	oracle := cfgWindow(64, ConfigC)
	resO := NewEngine(build(), oracle).Run()
	if resO.DepMispredicts != 0 || resO.DepSerializes != 0 {
		t.Fatalf("oracle charged dep events: %+v", resO)
	}
	if resO.Limiters[LimDepMispred] != 0 {
		t.Fatalf("oracle epochs terminated by dep mispredict: %+v", resO.Limiters)
	}

	ssCfg := cfgWindow(64, ConfigC)
	ssCfg.Disamb = DisambStoreSets
	resS := NewEngine(build(), ssCfg).Run()
	if resS.DepMispredicts != 1 {
		t.Fatalf("store-sets DepMispredicts = %d, want 1", resS.DepMispredicts)
	}
	if resS.Limiters[LimDepMispred] != 1 {
		t.Fatalf("store-sets LimDepMispred epochs = %d, want 1", resS.Limiters[LimDepMispred])
	}
	// Both modes conserve the two off-chip accesses.
	if resO.Accesses != 2 || resS.Accesses != 2 {
		t.Fatalf("accesses oracle=%d storesets=%d, want 2", resO.Accesses, resS.Accesses)
	}
}

// Scenario: a predicted-but-false dependence (DepFalse) needlessly
// serializes an independent missing load behind the last store, cutting
// MLP from 2 to 1; conservative mode pays the same without any
// prediction. The oracle overlaps both misses in one epoch.
func TestDisambFalseDependenceSerializes(t *testing.T) {
	build := func() *aiSource {
		l0 := ld(2, 1, true)
		l0.EA = 0x100
		s1 := st(2, 3, 0x200) // address depends on the missing load
		l2 := ld(4, 1, true)
		l2.EA = 0x300 // independent of s1
		l2.Dep = storeset.DepFalse
		return src(l0, s1, l2)
	}

	oracle := cfgWindow(64, ConfigC)
	resO := NewEngine(build(), oracle).Run()
	if got := resO.MLP(); got != 2 {
		t.Fatalf("oracle MLP = %v, want 2 (both misses overlap)", got)
	}

	for _, mode := range []DisambMode{DisambStoreSets, DisambConservative} {
		cfg := cfgWindow(64, ConfigC)
		cfg.Disamb = mode
		res := NewEngine(build(), cfg).Run()
		if got := res.MLP(); got != 1 {
			t.Fatalf("%v MLP = %v, want 1 (load serialized behind the store)", mode, got)
		}
		if res.DepSerializes != 1 {
			t.Fatalf("%v DepSerializes = %d, want 1", mode, res.DepSerializes)
		}
		if res.DepMispredicts != 0 {
			t.Fatalf("%v DepMispredicts = %d, want 0", mode, res.DepMispredicts)
		}
		if res.Accesses != resO.Accesses {
			t.Fatalf("%v accesses %d != oracle %d", mode, res.Accesses, resO.Accesses)
		}
	}
}

// depStream generates a random stream whose memory footprint is small
// enough that store→load dependences actually occur, with the Dep
// column stamped by a real predictor (truth-consistent annotations).
func depStream(rng *rand.Rand, n int, sscfg storeset.Config) []annotate.Inst {
	insts := randomStream(rng, n, 0.35, 0.01, 0.03, 0.02)
	for i := range insts {
		if insts[i].Class.IsMem() {
			insts[i].EA = insts[i].EA % 512 * 8
		}
	}
	stampDeps(insts, sscfg)
	return insts
}

// TestDisambMatchesBruteForceReferenceRandom checks each disambiguation
// mode's execution orders against a brute-force reference disambiguator
// over random streams: per-load producing stores from an unbounded
// program-order address scan, conservative store barriers, and false-
// dependence serialization — plus conservation and counter consistency.
// Epochs are observed via OnEpoch; instructions executed in unobserved
// (access-free) epochs have unknown order, and pairs involving them are
// skipped (the miss rate is drawn high so such epochs are rare).
func TestDisambMatchesBruteForceReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	modes := []struct {
		name string
		cfg  func() Config
	}{
		{"oracle", func() Config { return cfgWindow(64, ConfigC) }},
		{"storesets-small", func() Config {
			c := cfgWindow(64, ConfigC)
			c.Disamb = DisambStoreSets
			return c
		}},
		{"storesets-configA", func() Config {
			c := cfgWindow(32, ConfigA)
			c.Disamb = DisambStoreSets
			return c
		}},
		{"conservative", func() Config {
			c := cfgWindow(64, ConfigC)
			c.Disamb = DisambConservative
			return c
		}},
		{"conservative-configB", func() Config {
			c := cfgWindow(16, ConfigB)
			c.Disamb = DisambConservative
			return c
		}},
	}
	for trial := 0; trial < 8; trial++ {
		sscfg := storeset.Config{
			SSITSize:      1 << (4 + rng.Intn(6)),
			LFSTSize:      1 << (3 + rng.Intn(4)),
			ConfThreshold: uint8(rng.Intn(3)),
		}
		insts := depStream(rng, 2500, sscfg)

		// Brute-force reference disambiguator: program-order address scan
		// with an unbounded map (the footprint stays far below the
		// engine's 64K StoreTable clear bound, so the two agree).
		memProdOf := make([]int64, len(insts))
		prevStoreOf := make([]int64, len(insts))
		var storeIdxs []int64
		last := make(map[uint64]int64)
		prevStore := int64(-1)
		for i := range insts {
			in := &insts[i]
			memProdOf[i], prevStoreOf[i] = -1, prevStore
			cls := in.Class
			if cls.IsMemRead() && cls != isa.Prefetch {
				if p, ok := last[in.EA>>3]; ok {
					memProdOf[i] = p
				}
			}
			if cls.IsMemWrite() {
				last[in.EA>>3] = int64(i)
				prevStore = int64(i)
				storeIdxs = append(storeIdxs, int64(i))
			}
		}

		for _, m := range modes {
			cfg := m.cfg()
			var epochs []Epoch
			cfg.OnEpoch = func(ep Epoch) { epochs = append(epochs, ep) }
			res := NewEngine(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, cfg).Run()

			if want := expectedAccesses(insts); res.Accesses != want {
				t.Fatalf("trial %d %s: accesses %d, want %d", trial, m.name, res.Accesses, want)
			}
			var sum uint64
			for _, n := range res.Limiters {
				sum += n
			}
			if sum != res.Epochs {
				t.Fatalf("trial %d %s: limiters sum %d != epochs %d", trial, m.name, sum, res.Epochs)
			}
			switch cfg.Disamb {
			case DisambOracle:
				if res.DepMispredicts != 0 || res.DepSerializes != 0 {
					t.Fatalf("trial %d %s: oracle charged dep events: %d/%d",
						trial, m.name, res.DepMispredicts, res.DepSerializes)
				}
			case DisambConservative:
				if res.DepMispredicts != 0 {
					t.Fatalf("trial %d %s: conservative mode flushed %d times",
						trial, m.name, res.DepMispredicts)
				}
			case DisambStoreSets:
				if res.DepMispredicts < res.Limiters[LimDepMispred] {
					t.Fatalf("trial %d %s: %d flushes but %d flush-terminated epochs",
						trial, m.name, res.DepMispredicts, res.Limiters[LimDepMispred])
				}
			}

			// Execution order: epoch by epoch, list position by position.
			order := make(map[int64]int, len(insts))
			seq := 0
			for _, ep := range epochs {
				for _, j := range ep.Executed {
					order[j] = seq
					seq++
				}
			}
			known := func(j int64) (int, bool) { o, ok := order[j]; return o, ok }
			checked := 0
			for j := range insts {
				cls := insts[j].Class
				if !cls.IsMemRead() || cls == isa.Prefetch {
					continue
				}
				oj, ok := known(int64(j))
				if !ok {
					continue
				}
				// All modes: the producing store executes (forwards) first.
				if mp := memProdOf[j]; mp >= 0 {
					if om, ok := known(mp); ok {
						checked++
						if om >= oj {
							t.Fatalf("trial %d %s: load %d executed (order %d) before its producing store %d (order %d)",
								trial, m.name, j, oj, mp, om)
						}
					}
				}
				switch cfg.Disamb {
				case DisambConservative:
					// Every earlier store executes first.
					for _, s := range storeIdxs {
						if s >= int64(j) {
							break
						}
						if os, ok := known(s); ok {
							checked++
							if os >= oj {
								t.Fatalf("trial %d %s: load %d (order %d) overtook earlier store %d (order %d)",
									trial, m.name, j, oj, s, os)
							}
						}
					}
				case DisambStoreSets:
					// A false dependence serializes behind the last store.
					if insts[j].Dep == storeset.DepFalse && prevStoreOf[j] >= 0 {
						if op, ok := known(prevStoreOf[j]); ok {
							checked++
							if op >= oj {
								t.Fatalf("trial %d %s: DepFalse load %d (order %d) overtook last store %d (order %d)",
									trial, m.name, j, oj, prevStoreOf[j], op)
							}
						}
					}
				}
			}
			if checked == 0 {
				t.Fatalf("trial %d %s: reference check exercised no pairs", trial, m.name)
			}
		}
	}
}

package core

import (
	"math/rand"
	"reflect"
	"testing"

	"mlpsim/internal/annotate"
)

// divergentGangs enumerates config vectors that deliberately mix the SoA
// fast path with every scalar-fallback trigger: in-order disciplines,
// runahead, value prediction, finite MSHR files and store buffers, and
// epoch observers. Each vector is checked to actually split both ways,
// so the property test below always exercises SoA engines and scalar
// engines sharing one ring.
func divergentGangs(onEpoch func(Epoch)) [][]Config {
	ooo := func(win int, is IssueConfig) Config {
		return Default().WithWindow(win).WithIssue(is)
	}
	inorder := func(mode WindowMode) Config {
		c := Default()
		c.Mode = mode
		return c
	}
	mshr := func(n int) Config {
		c := Default().WithWindow(64)
		c.MSHRs = n
		return c
	}
	runahead := func() Config {
		c := Default().WithIssue(ConfigD)
		c.Runahead, c.MaxRunahead = true, 256
		return c
	}
	vp := func() Config {
		c := Default().WithWindow(128)
		c.ValuePredict = true
		return c
	}
	sb := func(n int) Config {
		c := Default().WithIssue(ConfigB)
		c.StoreBuffer = n
		return c
	}
	disamb := func(mode DisambMode) Config {
		c := Default().WithWindow(64)
		c.Disamb = mode
		return c
	}
	observed := Default().WithWindow(32)
	observed.OnEpoch = onEpoch
	return [][]Config{
		// Mixed execution disciplines.
		{ooo(64, ConfigE), inorder(InOrderStallOnUse), ooo(128, ConfigA), inorder(InOrderStallOnMiss)},
		// Mixed MSHR limits: unlimited rides SoA, finite falls back.
		{mshr(0), mshr(1), mshr(4), ooo(256, ConfigC)},
		// Speculation mix: runahead and value prediction against plain OoO.
		{runahead(), ooo(64, ConfigD), vp(), ooo(32, ConfigE)},
		// Store-buffer limits plus an epoch observer.
		{sb(1), ooo(64, ConfigB), sb(4), observed},
		// Memory disambiguation modes: oracle rides SoA, the speculative
		// and conservative disambiguators fall back.
		{disamb(DisambStoreSets), ooo(64, ConfigC), disamb(DisambConservative), ooo(16, ConfigA)},
	}
}

// TestRunGangDivergentMatchesSequential is the divergence slow-path
// property test: gangs of deliberately flag-divergent configs — where
// SoA-eligible and fallback engines share the broadcast ring — must stay
// bit-identical to running each config alone. Streams carry data,
// prefetch, instruction and store misses plus mispredictions so every
// fallback trigger fires. Run under -race (see `make test`), it also
// checks the ring sharing is free of unsynchronized access.
func TestRunGangDivergentMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1789))
	var observedGang, observedSolo int
	gangs := divergentGangs(func(Epoch) { observedGang++ })
	for gi, cfgs := range gangs {
		soa, scalar := 0, 0
		for _, cfg := range cfgs {
			if SoAEligible(cfg) {
				soa++
			} else {
				scalar++
			}
		}
		if soa == 0 || scalar == 0 {
			t.Fatalf("gang %d does not diverge: %d SoA, %d scalar members", gi, soa, scalar)
		}

		for trial := 0; trial < 5; trial++ {
			n := 3000 + rng.Intn(5000)
			insts := randomStream(rng, n, 0.06, 0.02, 0.03, 0.02)
			sprinkleVP(rng, insts)
			sprinkleDeps(rng, insts)

			want := make([]Result, len(cfgs))
			for i, cfg := range cfgs {
				solo := cfg
				if solo.OnEpoch != nil {
					solo.OnEpoch = func(Epoch) { observedSolo++ }
				}
				want[i] = NewEngine(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, solo).Run()
			}

			g := NewGang(&aiSource{insts: append([]annotate.Inst(nil), insts...)}, cfgs)
			got := g.Run()
			for i := range cfgs {
				// Func fields are never deeply equal unless nil; the
				// observer's effect is compared via the counters below.
				got[i].Config.OnEpoch, want[i].Config.OnEpoch = nil, nil
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("gang %d trial %d config %d (%s): divergent gang result differs from sequential\ngang: %+v\nsolo: %+v",
						gi, trial, i, cfgs[i].Name(), got[i], want[i])
				}
			}

			st := g.Stats()
			if st.SoAInsts == 0 || st.ScalarInsts == 0 {
				t.Fatalf("gang %d trial %d: stats do not reflect divergence: %+v", gi, trial, st)
			}
		}
	}
	if observedGang == 0 || observedGang != observedSolo {
		t.Fatalf("epoch observer fired %d times in gangs, %d solo; want equal and nonzero", observedGang, observedSolo)
	}
}

package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecoder feeds arbitrary bytes to the trace decoder: it must reject
// or cleanly EOF on everything without panicking, and every instruction
// it does produce must be structurally valid.
func FuzzDecoder(f *testing.F) {
	// Seed with a real trace prefix and some corruptions of it.
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, 3)
	if err != nil {
		f.Fatal(err)
	}
	for _, in := range sampleInsts(50, 1) {
		if err := enc.Encode(in); err != nil {
			f.Fatal(err)
		}
	}
	enc.Flush()
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte(magic))
	f.Add([]byte{})
	mut := append([]byte(nil), raw...)
	for i := len(magic) + 2; i < len(mut); i += 7 {
		mut[i] ^= 0xA5
	}
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		for i := 0; i < 10000; i++ {
			in, err := dec.Decode()
			if err != nil {
				if err != io.EOF && err == nil {
					t.Fatal("nil error with failure")
				}
				return
			}
			if !in.Class.Valid() {
				t.Fatalf("decoder produced invalid class %d", in.Class)
			}
		}
	})
}

// FuzzRoundTrip checks that any instruction the decoder accepts re-encodes
// and re-decodes identically (idempotent normalization).
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(10))
	f.Add(int64(42), uint8(100))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8) {
		n := int(nRaw)%100 + 1
		insts := sampleInsts(n, seed)

		var buf bytes.Buffer
		enc, err := NewEncoder(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range insts {
			if err := enc.Encode(in); err != nil {
				t.Fatal(err)
			}
		}
		enc.Flush()

		dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var decoded []struct{ a, b uint64 }
		var firstPass []byte
		{
			var buf2 bytes.Buffer
			enc2, _ := NewEncoder(&buf2, 0)
			for {
				in, err := dec.Decode()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				decoded = append(decoded, struct{ a, b uint64 }{in.PC, in.EA})
				if err := enc2.Encode(in); err != nil {
					t.Fatal(err)
				}
			}
			enc2.Flush()
			firstPass = buf2.Bytes()
		}
		// Second pass must be byte-identical (stable normalization).
		dec2, err := NewDecoder(bytes.NewReader(firstPass))
		if err != nil {
			t.Fatal(err)
		}
		var buf3 bytes.Buffer
		enc3, _ := NewEncoder(&buf3, 0)
		i := 0
		for {
			in, err := dec2.Decode()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if in.PC != decoded[i].a || in.EA != decoded[i].b {
				t.Fatalf("re-decode diverged at %d", i)
			}
			i++
			if err := enc3.Encode(in); err != nil {
				t.Fatal(err)
			}
		}
		enc3.Flush()
		if !bytes.Equal(firstPass, buf3.Bytes()) {
			t.Fatal("re-encoding is not stable")
		}
	})
}

// FuzzRoundTripV2 is the version-2 analogue: annotated records (with
// arbitrary annotation bytes and a header meta blob) must survive an
// encode→decode→re-encode cycle byte-identically, and the decoded
// annotation flags must match what was encoded.
func FuzzRoundTripV2(f *testing.F) {
	f.Add(int64(1), uint8(10), []byte("meta"))
	f.Add(int64(42), uint8(100), []byte{})
	f.Add(int64(7), uint8(33), []byte{0xff, 0x00, 0x7f})
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, meta []byte) {
		n := int(nRaw)%100 + 1
		insts := sampleInsts(n, seed)
		annots := make([]AnnotFlags, n)
		rng := seed
		for i := range annots {
			rng = rng*6364136223846793005 + 1442695040888963407
			annots[i] = AnnotFlags(rng >> 33)
		}

		var buf bytes.Buffer
		enc, err := NewEncoderV2(&buf, uint64(n), meta)
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range insts {
			if err := enc.EncodeAnnotated(in, annots[i]); err != nil {
				t.Fatal(err)
			}
		}
		enc.Flush()

		dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Version() != 2 {
			t.Fatalf("version %d, want 2", dec.Version())
		}
		if !bytes.Equal(dec.Meta(), meta) {
			t.Fatalf("meta %x, want %x", dec.Meta(), meta)
		}
		var buf2 bytes.Buffer
		enc2, _ := NewEncoderV2(&buf2, uint64(n), meta)
		i := 0
		for {
			in, af, err := dec.DecodeAnnotated()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if i >= n {
				t.Fatalf("decoded more than %d records", n)
			}
			if af != annots[i] {
				t.Fatalf("record %d: annot %08b, want %08b", i, af, annots[i])
			}
			if err := enc2.EncodeAnnotated(in, af); err != nil {
				t.Fatal(err)
			}
			i++
		}
		if i != n {
			t.Fatalf("decoded %d records, want %d", i, n)
		}
		enc2.Flush()
		// A decoder-normalized stream re-encodes byte-identically.
		dec2, err := NewDecoder(bytes.NewReader(buf2.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var buf3 bytes.Buffer
		enc3, _ := NewEncoderV2(&buf3, uint64(n), meta)
		for {
			in, af, err := dec2.DecodeAnnotated()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := enc3.EncodeAnnotated(in, af); err != nil {
				t.Fatal(err)
			}
		}
		enc3.Flush()
		if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
			t.Fatal("v2 re-encoding is not stable")
		}
	})
}

// TestV1EncoderRejectsAnnotations pins the version gate.
func TestV1EncoderRejectsAnnotations(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.EncodeAnnotated(sampleInsts(1, 1)[0], AnnotDMiss); err == nil {
		t.Fatal("v1 encoder accepted an annotated record")
	}
}

// Package trace provides dynamic-instruction-stream sources and a compact
// binary on-disk trace format.
//
// All simulators in this repository are trace driven, exactly like the
// paper's MLPsim: they consume a stream of isa.Inst records produced either
// by a synthetic workload generator (internal/workload) or by decoding a
// stored trace file.
package trace

import (
	"errors"
	"io"

	"mlpsim/internal/isa"
)

// Source yields a dynamic instruction stream. Implementations are not safe
// for concurrent use.
type Source interface {
	// Next returns the next dynamic instruction. It returns ok=false when
	// the stream is exhausted; the returned instruction is then undefined.
	Next() (in isa.Inst, ok bool)
}

// SliceSource adapts a materialized instruction slice into a Source.
type SliceSource struct {
	insts []isa.Inst
	pos   int
}

// NewSliceSource returns a Source that replays insts in order. The slice is
// not copied; the caller must not mutate it while the source is in use.
func NewSliceSource(insts []isa.Inst) *SliceSource {
	return &SliceSource{insts: insts}
}

// Next implements Source.
func (s *SliceSource) Next() (isa.Inst, bool) {
	if s.pos >= len(s.insts) {
		return isa.Inst{}, false
	}
	in := s.insts[s.pos]
	s.pos++
	return in, true
}

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the underlying slice.
func (s *SliceSource) Len() int { return len(s.insts) }

// FuncSource adapts a generator function into a Source.
type FuncSource func() (isa.Inst, bool)

// Next implements Source.
func (f FuncSource) Next() (isa.Inst, bool) { return f() }

// Limit wraps src so that at most n instructions are delivered.
func Limit(src Source, n int64) Source {
	remaining := n
	return FuncSource(func() (isa.Inst, bool) {
		if remaining <= 0 {
			return isa.Inst{}, false
		}
		remaining--
		return src.Next()
	})
}

// Skip discards the next n instructions from src, returning the number
// actually discarded (fewer if the stream ends early). It is used to
// implement warm-up windows where caches and predictors train but no
// statistics are collected by a downstream consumer.
func Skip(src Source, n int64) int64 {
	var discarded int64
	for discarded < n {
		if _, ok := src.Next(); !ok {
			break
		}
		discarded++
	}
	return discarded
}

// Collect drains up to max instructions from src into a fresh slice.
// max < 0 collects the entire stream.
func Collect(src Source, max int64) []isa.Inst {
	var out []isa.Inst
	for max < 0 || int64(len(out)) < max {
		in, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}

// ErrStop can be returned by a ForEach callback to halt iteration without
// reporting an error to the caller.
var ErrStop = errors.New("trace: stop iteration")

// ForEach applies fn to every instruction in src. It stops early and
// returns nil if fn returns ErrStop, or propagates any other error.
func ForEach(src Source, fn func(isa.Inst) error) error {
	for {
		in, ok := src.Next()
		if !ok {
			return nil
		}
		if err := fn(in); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
}

// Tee returns a Source that forwards src while appending every delivered
// instruction to sink. It is used by tools that simulate and record
// simultaneously.
func Tee(src Source, sink *[]isa.Inst) Source {
	return FuncSource(func() (isa.Inst, bool) {
		in, ok := src.Next()
		if ok {
			*sink = append(*sink, in)
		}
		return in, ok
	})
}

// Concat returns a Source that yields all instructions of each source in
// turn.
func Concat(srcs ...Source) Source {
	idx := 0
	return FuncSource(func() (isa.Inst, bool) {
		for idx < len(srcs) {
			if in, ok := srcs[idx].Next(); ok {
				return in, true
			}
			idx++
		}
		return isa.Inst{}, false
	})
}

// CountingSource wraps a Source and counts delivered instructions.
type CountingSource struct {
	Src Source
	N   int64
}

// Next implements Source.
func (c *CountingSource) Next() (isa.Inst, bool) {
	in, ok := c.Src.Next()
	if ok {
		c.N++
	}
	return in, ok
}

// ReaderSource adapts an io.Reader of the binary trace format into a
// Source. Decoding errors terminate the stream; call Err to distinguish a
// clean EOF from a corrupt trace.
type ReaderSource struct {
	dec *Decoder
	err error
}

// NewReaderSource creates a ReaderSource, reading and validating the trace
// header immediately.
func NewReaderSource(r io.Reader) (*ReaderSource, error) {
	dec, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return &ReaderSource{dec: dec}, nil
}

// Next implements Source.
func (rs *ReaderSource) Next() (isa.Inst, bool) {
	if rs.err != nil {
		return isa.Inst{}, false
	}
	in, err := rs.dec.Decode()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			rs.err = err
		}
		return isa.Inst{}, false
	}
	return in, true
}

// Err returns the first decoding error encountered, or nil if the stream
// ended cleanly (or has not ended yet).
func (rs *ReaderSource) Err() error { return rs.err }

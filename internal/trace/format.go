package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mlpsim/internal/isa"
)

// Binary trace format.
//
// Header: 8-byte magic "MLPTRC\x00" + version byte, then a uvarint
// instruction-count hint (0 when unknown / streaming). Version 2 headers
// additionally carry a uvarint-length opaque metadata blob (producers
// store annotation parameters there).
//
// Each record is delta-encoded against the previous instruction to keep
// traces compact:
//
//	flags   byte    bit0: EA present, bit1: Taken, bit2: Target present,
//	                bit3: Value present, bit4: PC is prev+4 (no PC field)
//	annot   byte    version 2 only: annotation events (see AnnotFlags)
//	class   byte
//	regs    2 bytes (src1, src2) + 1 byte dst
//	pc      uvarint zig-zag delta from previous PC (if bit4 clear)
//	ea      uvarint zig-zag delta from previous EA (if bit0 set)
//	target  uvarint zig-zag delta from PC (if bit2 set)
//	value   uvarint raw (if bit3 set)

const (
	magic        = "MLPTRC\x00"
	formatVer    = 1
	formatVerAnn = 2
	flagEA       = 1 << 0
	flagTaken    = 1 << 1
	flagTarget   = 1 << 2
	flagValue    = 1 << 3
	flagSeqPC    = 1 << 4
	instrBytes4  = 4 // fixed SPARC instruction size used for sequential PCs
)

// AnnotFlags packs the per-instruction annotation events of a version-2
// record into one byte: five event bits plus a 2-bit value-prediction
// outcome.
type AnnotFlags uint8

const (
	AnnotDMiss   AnnotFlags = 1 << 0
	AnnotPMiss   AnnotFlags = 1 << 1
	AnnotIMiss   AnnotFlags = 1 << 2
	AnnotSMiss   AnnotFlags = 1 << 3
	AnnotMispred AnnotFlags = 1 << 4

	annotVPShift = 5
	annotVPMask  = 3 << annotVPShift
)

// WithVPOutcome returns a copy with the 2-bit value-prediction outcome set.
func (a AnnotFlags) WithVPOutcome(o uint8) AnnotFlags {
	return (a &^ annotVPMask) | AnnotFlags(o&3)<<annotVPShift
}

// VPOutcome extracts the 2-bit value-prediction outcome.
func (a AnnotFlags) VPOutcome() uint8 { return uint8(a) >> annotVPShift & 3 }

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encoder writes instructions in the binary trace format.
type Encoder struct {
	w      *bufio.Writer
	ver    byte
	prevPC uint64
	prevEA uint64
	buf    []byte
	n      int64
}

// NewEncoder writes a version-1 trace header and returns an Encoder.
// countHint may be 0 when the final instruction count is unknown.
func NewEncoder(w io.Writer, countHint uint64) (*Encoder, error) {
	return newEncoder(w, formatVer, countHint, nil)
}

// NewEncoderV2 writes a version-2 (annotated) trace header and returns an
// Encoder. meta is an opaque producer-defined blob stored in the header
// (may be nil).
func NewEncoderV2(w io.Writer, countHint uint64, meta []byte) (*Encoder, error) {
	return newEncoder(w, formatVerAnn, countHint, meta)
}

func newEncoder(w io.Writer, ver byte, countHint uint64, meta []byte) (*Encoder, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	if err := bw.WriteByte(ver); err != nil {
		return nil, fmt.Errorf("trace: writing version: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], countHint)
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, fmt.Errorf("trace: writing count hint: %w", err)
	}
	if ver >= formatVerAnn {
		n = binary.PutUvarint(tmp[:], uint64(len(meta)))
		if _, err := bw.Write(tmp[:n]); err != nil {
			return nil, fmt.Errorf("trace: writing meta length: %w", err)
		}
		if _, err := bw.Write(meta); err != nil {
			return nil, fmt.Errorf("trace: writing meta: %w", err)
		}
	}
	return &Encoder{w: bw, ver: ver, buf: make([]byte, 0, 64)}, nil
}

// Encode appends one instruction to the trace. On a version-2 encoder the
// annotation byte is written as zero; use EncodeAnnotated to set it.
func (e *Encoder) Encode(in isa.Inst) error {
	return e.EncodeAnnotated(in, 0)
}

// EncodeAnnotated appends one instruction together with its annotation
// events. The annotation byte is only representable in version-2 traces;
// on a version-1 encoder a non-zero annot is an error.
func (e *Encoder) EncodeAnnotated(in isa.Inst, annot AnnotFlags) error {
	if annot != 0 && e.ver < formatVerAnn {
		return fmt.Errorf("trace: annotated records require a v2 encoder (NewEncoderV2)")
	}
	e.buf = e.buf[:0]
	var flags byte
	if in.Class.IsMem() {
		flags |= flagEA
	}
	if in.Taken {
		flags |= flagTaken
	}
	if in.Class == isa.Branch && in.Target != 0 {
		flags |= flagTarget
	}
	if in.Class.IsMemRead() && in.Class != isa.Prefetch {
		flags |= flagValue
	}
	if in.PC == e.prevPC+instrBytes4 {
		flags |= flagSeqPC
	}
	e.buf = append(e.buf, flags)
	if e.ver >= formatVerAnn {
		e.buf = append(e.buf, byte(annot))
	}
	e.buf = append(e.buf, byte(in.Class), byte(in.Src1), byte(in.Src2), byte(in.Dst))
	if flags&flagSeqPC == 0 {
		e.buf = binary.AppendUvarint(e.buf, zigzag(int64(in.PC)-int64(e.prevPC)))
	}
	if flags&flagEA != 0 {
		e.buf = binary.AppendUvarint(e.buf, zigzag(int64(in.EA)-int64(e.prevEA)))
		e.prevEA = in.EA
	}
	if flags&flagTarget != 0 {
		e.buf = binary.AppendUvarint(e.buf, zigzag(int64(in.Target)-int64(in.PC)))
	}
	if flags&flagValue != 0 {
		e.buf = binary.AppendUvarint(e.buf, in.Value)
	}
	e.prevPC = in.PC
	e.n++
	if _, err := e.w.Write(e.buf); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", e.n, err)
	}
	return nil
}

// Count returns the number of instructions encoded so far.
func (e *Encoder) Count() int64 { return e.n }

// Flush writes any buffered data to the underlying writer.
func (e *Encoder) Flush() error {
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	return nil
}

// Decoder reads instructions from the binary trace format. It accepts
// both version-1 and version-2 (annotated) traces.
type Decoder struct {
	r         *bufio.Reader
	ver       byte
	prevPC    uint64
	prevEA    uint64
	countHint uint64
	meta      []byte
}

// NewDecoder validates the trace header and returns a Decoder.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:len(magic)])
	}
	ver := hdr[len(magic)]
	if ver != formatVer && ver != formatVerAnn {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d or %d)", ver, formatVer, formatVerAnn)
	}
	hint, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count hint: %w", err)
	}
	d := &Decoder{r: br, ver: ver, countHint: hint}
	if ver >= formatVerAnn {
		mlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading meta length: %w", err)
		}
		const maxMeta = 1 << 20
		if mlen > maxMeta {
			return nil, fmt.Errorf("trace: meta blob too large (%d bytes)", mlen)
		}
		d.meta = make([]byte, mlen)
		if _, err := io.ReadFull(br, d.meta); err != nil {
			return nil, fmt.Errorf("trace: reading meta: %w", noEOF(err))
		}
	}
	return d, nil
}

// CountHint returns the instruction-count hint recorded in the header
// (0 when the producer did not know the final count).
func (d *Decoder) CountHint() uint64 { return d.countHint }

// Version returns the format version of the trace being decoded.
func (d *Decoder) Version() int { return int(d.ver) }

// Meta returns the opaque header metadata blob of a version-2 trace
// (nil for version 1).
func (d *Decoder) Meta() []byte { return d.meta }

// Decode returns the next instruction, or io.EOF at the clean end of the
// trace. Any other error indicates corruption. On version-2 traces the
// annotation byte is read and discarded; use DecodeAnnotated to keep it.
func (d *Decoder) Decode() (isa.Inst, error) {
	in, _, err := d.DecodeAnnotated()
	return in, err
}

// DecodeAnnotated returns the next instruction together with its
// annotation events (always zero on version-1 traces).
func (d *Decoder) DecodeAnnotated() (isa.Inst, AnnotFlags, error) {
	var in isa.Inst
	var annot AnnotFlags
	flags, err := d.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return in, 0, io.EOF
		}
		return in, 0, fmt.Errorf("trace: reading flags: %w", err)
	}
	if d.ver >= formatVerAnn {
		b, err := d.r.ReadByte()
		if err != nil {
			return in, 0, fmt.Errorf("trace: reading annotation byte: %w", noEOF(err))
		}
		annot = AnnotFlags(b)
	}
	var fixed [4]byte
	if _, err := io.ReadFull(d.r, fixed[:]); err != nil {
		return in, 0, fmt.Errorf("trace: truncated record: %w", noEOF(err))
	}
	in.Class = isa.Class(fixed[0])
	if !in.Class.Valid() {
		return in, 0, fmt.Errorf("trace: invalid instruction class %d", fixed[0])
	}
	in.Src1, in.Src2, in.Dst = isa.Reg(fixed[1]), isa.Reg(fixed[2]), isa.Reg(fixed[3])
	in.Taken = flags&flagTaken != 0

	if flags&flagSeqPC != 0 {
		in.PC = d.prevPC + instrBytes4
	} else {
		delta, err := binary.ReadUvarint(d.r)
		if err != nil {
			return in, 0, fmt.Errorf("trace: reading pc delta: %w", noEOF(err))
		}
		in.PC = uint64(int64(d.prevPC) + unzigzag(delta))
	}
	d.prevPC = in.PC

	if flags&flagEA != 0 {
		delta, err := binary.ReadUvarint(d.r)
		if err != nil {
			return in, 0, fmt.Errorf("trace: reading ea delta: %w", noEOF(err))
		}
		in.EA = uint64(int64(d.prevEA) + unzigzag(delta))
		d.prevEA = in.EA
	}
	if flags&flagTarget != 0 {
		delta, err := binary.ReadUvarint(d.r)
		if err != nil {
			return in, 0, fmt.Errorf("trace: reading target delta: %w", noEOF(err))
		}
		in.Target = uint64(int64(in.PC) + unzigzag(delta))
	}
	if flags&flagValue != 0 {
		v, err := binary.ReadUvarint(d.r)
		if err != nil {
			return in, 0, fmt.Errorf("trace: reading value: %w", noEOF(err))
		}
		in.Value = v
	}
	return in, annot, nil
}

// noEOF converts io.EOF into io.ErrUnexpectedEOF so that a record truncated
// mid-way is reported as corruption rather than a clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"mlpsim/internal/isa"
)

func sampleInsts(n int, seed int64) []isa.Inst {
	rng := rand.New(rand.NewSource(seed))
	insts := make([]isa.Inst, n)
	pc := uint64(0x10000)
	for i := range insts {
		var in isa.Inst
		in.PC = pc
		switch rng.Intn(6) {
		case 0:
			in.Class = isa.Load
			in.Src1 = isa.Reg(rng.Intn(32))
			in.Src2 = isa.NoReg
			in.Dst = isa.Reg(1 + rng.Intn(31))
			in.EA = uint64(rng.Int63n(1 << 40))
			in.Value = rng.Uint64() >> uint(rng.Intn(64))
		case 1:
			in.Class = isa.Store
			in.Src1 = isa.Reg(rng.Intn(32))
			in.Src2 = isa.Reg(rng.Intn(32))
			in.Dst = isa.NoReg
			in.EA = uint64(rng.Int63n(1 << 40))
		case 2:
			in.Class = isa.Branch
			in.Src1 = isa.Reg(rng.Intn(32))
			in.Src2 = isa.NoReg
			in.Dst = isa.NoReg
			in.Taken = rng.Intn(2) == 0
			in.Target = pc + uint64(rng.Intn(4096))*4 - 2048*4
		case 3:
			in.Class = isa.MemBar
			in.Src1, in.Src2, in.Dst = isa.NoReg, isa.NoReg, isa.NoReg
		case 4:
			in.Class = isa.Prefetch
			in.Src1 = isa.Reg(rng.Intn(32))
			in.Src2, in.Dst = isa.NoReg, isa.NoReg
			in.EA = uint64(rng.Int63n(1 << 40))
		default:
			in.Class = isa.ALU
			in.Src1 = isa.Reg(rng.Intn(32))
			in.Src2 = isa.Reg(rng.Intn(32))
			in.Dst = isa.Reg(1 + rng.Intn(31))
		}
		insts[i] = in
		if rng.Intn(8) == 0 {
			pc = uint64(rng.Int63n(1 << 30))
		} else {
			pc += 4
		}
	}
	return insts
}

func TestSliceSource(t *testing.T) {
	insts := sampleInsts(10, 1)
	src := NewSliceSource(insts)
	if src.Len() != 10 {
		t.Fatalf("Len = %d, want 10", src.Len())
	}
	for i := 0; i < 10; i++ {
		in, ok := src.Next()
		if !ok {
			t.Fatalf("Next #%d: unexpected end", i)
		}
		if in != insts[i] {
			t.Fatalf("Next #%d = %v, want %v", i, in, insts[i])
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("Next past end should report !ok")
	}
	src.Reset()
	if in, ok := src.Next(); !ok || in != insts[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimitAndSkip(t *testing.T) {
	insts := sampleInsts(100, 2)
	src := NewSliceSource(insts)
	if n := Skip(src, 30); n != 30 {
		t.Fatalf("Skip = %d, want 30", n)
	}
	lim := Limit(src, 50)
	got := Collect(lim, -1)
	if len(got) != 50 {
		t.Fatalf("collected %d, want 50", len(got))
	}
	if got[0] != insts[30] {
		t.Fatalf("first after skip = %v, want %v", got[0], insts[30])
	}
	// Skipping past the end reports the truncated count.
	src2 := NewSliceSource(insts[:5])
	if n := Skip(src2, 10); n != 5 {
		t.Fatalf("Skip past end = %d, want 5", n)
	}
}

func TestForEach(t *testing.T) {
	insts := sampleInsts(20, 3)
	var seen int
	err := ForEach(NewSliceSource(insts), func(isa.Inst) error {
		seen++
		if seen == 7 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach returned %v", err)
	}
	if seen != 7 {
		t.Fatalf("seen = %d, want 7 (ErrStop should halt)", seen)
	}
	boom := errors.New("boom")
	err = ForEach(NewSliceSource(insts), func(isa.Inst) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("ForEach error = %v, want boom", err)
	}
}

func TestTeeAndConcat(t *testing.T) {
	a := sampleInsts(5, 4)
	b := sampleInsts(7, 5)
	var sink []isa.Inst
	src := Tee(Concat(NewSliceSource(a), NewSliceSource(b)), &sink)
	got := Collect(src, -1)
	if len(got) != 12 || len(sink) != 12 {
		t.Fatalf("got %d, sink %d, want 12 each", len(got), len(sink))
	}
	for i := range got {
		if got[i] != sink[i] {
			t.Fatalf("tee mismatch at %d", i)
		}
	}
	if got[0] != a[0] || got[5] != b[0] {
		t.Fatal("concat ordering wrong")
	}
}

func TestCountingSource(t *testing.T) {
	cs := &CountingSource{Src: NewSliceSource(sampleInsts(9, 6))}
	Collect(cs, -1)
	if cs.N != 9 {
		t.Fatalf("counted %d, want 9", cs.N)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	insts := sampleInsts(5000, 7)
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, uint64(len(insts)))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if err := enc.Encode(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if enc.Count() != int64(len(insts)) {
		t.Fatalf("encoded count = %d", enc.Count())
	}

	dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.CountHint() != uint64(len(insts)) {
		t.Fatalf("count hint = %d", dec.CountHint())
	}
	for i, want := range insts {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		// Prefetch value and non-branch targets are not round-tripped;
		// normalize those before comparing.
		norm := want
		if !norm.Class.IsMemRead() || norm.Class == isa.Prefetch {
			norm.Value = 0
		}
		if norm.Class != isa.Branch {
			norm.Target = 0
		}
		if got != norm {
			t.Fatalf("decode #%d = %+v, want %+v", i, got, norm)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("decode past end = %v, want io.EOF", err)
	}
}

func TestReaderSource(t *testing.T) {
	insts := sampleInsts(100, 8)
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf, 0)
	for _, in := range insts {
		if err := enc.Encode(in); err != nil {
			t.Fatal(err)
		}
	}
	enc.Flush()

	rs, err := NewReaderSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(rs, -1)
	if len(got) != 100 {
		t.Fatalf("read %d instructions, want 100", len(got))
	}
	if rs.Err() != nil {
		t.Fatalf("clean stream reported error %v", rs.Err())
	}
}

func TestDecoderRejectsCorruptHeader(t *testing.T) {
	if _, err := NewDecoder(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Right magic, wrong version.
	raw := append([]byte(magic), 99, 0)
	if _, err := NewDecoder(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated header.
	if _, err := NewDecoder(bytes.NewReader([]byte(magic[:3]))); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestDecoderRejectsTruncatedRecord(t *testing.T) {
	insts := sampleInsts(10, 9)
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf, 0)
	for _, in := range insts {
		enc.Encode(in)
	}
	enc.Flush()
	raw := buf.Bytes()

	// Chop the stream mid-record and check we get a hard error, not EOF,
	// on some prefix (the first record starts right after the header).
	hdr := len(magic) + 1 + 1 // magic + version + 1-byte uvarint hint (0)
	sawCorrupt := false
	for cut := hdr + 1; cut < len(raw); cut++ {
		dec, err := NewDecoder(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue
		}
		for {
			_, err = dec.Decode()
			if err != nil {
				break
			}
		}
		if err != io.EOF {
			sawCorrupt = true
			break
		}
	}
	if !sawCorrupt {
		t.Fatal("no truncation point produced a corruption error")
	}
}

func TestDecoderRejectsInvalidClass(t *testing.T) {
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf, 0)
	enc.Encode(isa.Inst{Class: isa.ALU, Src1: 1, Src2: 2, Dst: 3, PC: 4})
	enc.Flush()
	raw := buf.Bytes()
	// The class byte of the first record is right after flags.
	hdr := len(magic) + 1 + 1
	raw[hdr+1] = 200
	dec, err := NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(); err == nil {
		t.Fatal("invalid class accepted")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encode→decode is the identity on the normalized instruction
// space, for arbitrary generated traces.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		insts := sampleInsts(n, seed)
		var buf bytes.Buffer
		enc, err := NewEncoder(&buf, 0)
		if err != nil {
			return false
		}
		for _, in := range insts {
			if err := enc.Encode(in); err != nil {
				return false
			}
		}
		if err := enc.Flush(); err != nil {
			return false
		}
		dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for _, want := range insts {
			got, err := dec.Decode()
			if err != nil {
				return false
			}
			if got.PC != want.PC || got.Class != want.Class || got.EA != want.EA ||
				got.Src1 != want.Src1 || got.Src2 != want.Src2 || got.Dst != want.Dst ||
				got.Taken != want.Taken {
				return false
			}
		}
		_, err = dec.Decode()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowBasic(t *testing.T) {
	insts := sampleInsts(1000, 10)
	w := NewWindow(NewSliceSource(insts))
	for i := int64(0); i < 1000; i++ {
		in, ok := w.At(i)
		if !ok {
			t.Fatalf("At(%d): unexpected end", i)
		}
		if *in != insts[i] {
			t.Fatalf("At(%d) mismatch", i)
		}
	}
	if _, ok := w.At(1000); ok {
		t.Fatal("At past end should fail")
	}
	if !w.EOF() {
		t.Fatal("EOF should be set after exhausting the source")
	}
	if w.End() != 1000 {
		t.Fatalf("End = %d, want 1000", w.End())
	}
	// Random re-access within the retained window.
	in, ok := w.At(123)
	if !ok || *in != insts[123] {
		t.Fatal("re-access failed")
	}
}

func TestWindowRelease(t *testing.T) {
	insts := sampleInsts(10000, 11)
	w := NewWindow(NewSliceSource(insts))
	if _, ok := w.At(9999); !ok {
		t.Fatal("fetch to end failed")
	}
	before := w.Buffered()
	w.Release(8000)
	if w.Buffered() >= before {
		t.Fatalf("Release did not compact: %d -> %d", before, w.Buffered())
	}
	if w.Base() != 8000 {
		t.Fatalf("Base = %d, want 8000", w.Base())
	}
	in, ok := w.At(8000)
	if !ok || *in != insts[8000] {
		t.Fatal("access at new base failed")
	}
	// Access below the compacted base must panic: it is a caller bug.
	defer func() {
		if recover() == nil {
			t.Fatal("At below base did not panic")
		}
	}()
	w.At(7999)
}

func TestWindowReleasePastEndClamps(t *testing.T) {
	insts := sampleInsts(10, 12)
	w := NewWindow(NewSliceSource(insts))
	w.At(9)
	w.Release(100) // beyond end: clamps, full drop
	if w.Base() != 10 || w.Buffered() != 0 {
		t.Fatalf("Base=%d Buffered=%d, want 10,0", w.Base(), w.Buffered())
	}
}

package trace

import (
	"fmt"

	"mlpsim/internal/isa"
)

// Window provides random access to a sliding region of a Source, addressed
// by absolute dynamic-instruction index (0-based position in the stream).
//
// The epoch-model engine needs to revisit instructions that were fetched
// but deferred to later epochs, and runahead mode re-executes from the
// checkpointed epoch trigger, so pure forward iteration is not enough. The
// Window buffers everything between the oldest unreleased index and the
// furthest index demanded so far, fetching lazily from the Source.
type Window struct {
	src  Source
	buf  []isa.Inst
	base int64 // absolute index of buf[0]
	eof  bool
	end  int64 // absolute index one past the last fetched instruction
}

// NewWindow wraps src in a Window.
func NewWindow(src Source) *Window {
	return &Window{src: src}
}

// At returns a pointer to the instruction at absolute index i, fetching
// from the source as needed. ok is false once i is at or beyond the end of
// the stream. At panics if i addresses an instruction that has already been
// released — that is a bug in the caller's window management.
func (w *Window) At(i int64) (*isa.Inst, bool) {
	if i < w.base {
		panic(fmt.Sprintf("trace: Window.At(%d) below released base %d", i, w.base))
	}
	for i >= w.end {
		if w.eof {
			return nil, false
		}
		in, ok := w.src.Next()
		if !ok {
			w.eof = true
			return nil, false
		}
		w.buf = append(w.buf, in)
		w.end++
	}
	return &w.buf[i-w.base], true
}

// Release discards buffered instructions below absolute index upto. Callers
// release entries once no epoch can ever revisit them (they have retired).
func (w *Window) Release(upto int64) {
	if upto <= w.base {
		return
	}
	if upto > w.end {
		upto = w.end
	}
	drop := upto - w.base
	// Compact only when a meaningful prefix is dead, to amortize the copy.
	if drop >= int64(len(w.buf))/2 && drop > 1024 || drop == int64(len(w.buf)) {
		n := copy(w.buf, w.buf[drop:])
		w.buf = w.buf[:n]
		w.base = upto
	}
}

// Base returns the lowest absolute index that is still addressable.
func (w *Window) Base() int64 { return w.base }

// End returns one past the highest absolute index fetched so far.
func (w *Window) End() int64 { return w.end }

// EOF reports whether the underlying source has been exhausted.
func (w *Window) EOF() bool { return w.eof }

// Buffered returns the number of instructions currently held in memory.
func (w *Window) Buffered() int { return len(w.buf) }

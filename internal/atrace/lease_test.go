package atrace

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"mlpsim/internal/annotate"
	"mlpsim/internal/workload"
)

// leaseTestCache builds a diskCache in lease mode with an injected clock.
func leaseTestCache(t *testing.T, dir, owner string, ttl time.Duration, now func() time.Time) *diskCache {
	t.Helper()
	d := newDiskCache(dir)
	d.leaseOwner = owner
	d.leaseTTL = ttl
	d.leasePoll = time.Millisecond
	if now != nil {
		d.now = now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return d
}

func readLease(t *testing.T, path string) leaseInfo {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read lease: %v", err)
	}
	var li leaseInfo
	if err := json.Unmarshal(data, &li); err != nil {
		t.Fatalf("parse lease: %v", err)
	}
	return li
}

// TestLeaseExpiryBoundary pins the expiry rule with an injected clock,
// like the sweep-age boundary tests: one nanosecond before the recorded
// expiry the lease is still held; at the expiry instant it is stale and
// a peer steals it.
func TestLeaseExpiryBoundary(t *testing.T) {
	dir := t.TempDir()
	base := time.Now()
	dA := leaseTestCache(t, dir, "a", time.Minute, func() time.Time { return base })
	path := dA.leasePath("cafebabe")
	if claimed, err := dA.tryClaimLease(path); err != nil || !claimed {
		t.Fatalf("initial claim: claimed=%v err=%v", claimed, err)
	}
	if li := readLease(t, path); li.Owner != "a" || li.Expires != base.Add(time.Minute).UnixNano() {
		t.Fatalf("lease record %+v, want owner a expiring at +1m", li)
	}

	dB := leaseTestCache(t, dir, "b", time.Minute, nil)
	dB.now = func() time.Time { return base.Add(time.Minute - time.Nanosecond) }
	if claimed, err := dB.tryClaimLease(path); err != nil || claimed {
		t.Fatalf("claim 1ns before expiry: claimed=%v err=%v, want held", claimed, err)
	}
	if n := dB.leasesStolen.Load(); n != 0 {
		t.Fatalf("unexpired lease counted as stolen (%d)", n)
	}

	dB.now = func() time.Time { return base.Add(time.Minute) }
	if claimed, err := dB.tryClaimLease(path); err != nil || !claimed {
		t.Fatalf("claim at expiry instant: claimed=%v err=%v, want stolen", claimed, err)
	}
	if n := dB.leasesStolen.Load(); n != 1 {
		t.Fatalf("%d leases stolen, want 1", n)
	}
	if li := readLease(t, path); li.Owner != "b" {
		t.Fatalf("lease owner %q after steal, want b", li.Owner)
	}
}

// TestLeaseRenewalPreventsSteal: a live holder renews every TTL/3, so a
// peer polling well past the original TTL never steals; release hands
// the lease over promptly.
func TestLeaseRenewalPreventsSteal(t *testing.T) {
	dir := t.TempDir()
	const ttl = 300 * time.Millisecond
	dA := leaseTestCache(t, dir, "a", ttl, nil)
	unlock, err := dA.lockKey("feedface")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	dB := leaseTestCache(t, dir, "b", ttl, nil)
	acquired := make(chan struct{})
	go func() {
		u, err := dB.lockKey("feedface")
		if err == nil {
			u()
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("peer acquired a lease its live holder was renewing")
	case <-time.After(3 * ttl):
	}
	unlock()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("peer never acquired the lease after release")
	}
	if n := dB.leasesStolen.Load(); n != 0 {
		t.Fatalf("peer stole %d leases; release should have handed it over cleanly", n)
	}
	// Both unlocks ran; the lease file must be gone.
	if _, err := os.Stat(dA.leasePath("feedface")); !os.IsNotExist(err) {
		t.Errorf("lease file survived both releases: %v", err)
	}
}

// TestLeaseSkewedClockPublishSafety is the satellite's skewed-clock
// scenario: replica A holds a lease it (slow clock) believes valid
// while replica B (clock 10 minutes ahead) sees it expired, steals it,
// builds and publishes. A then completes its own build and publishes
// over B's — a stale-but-unexpired lease holder. Determinism plus
// atomic publication make the duplicate harmless: the spill stays
// valid and bit-identical, nothing quarantines, and the byte-cap index
// charges the key exactly once.
func TestLeaseSkewedClockPublishSafety(t *testing.T) {
	dir := t.TempDir()
	w := workload.Presets(27)[0]
	key := Key{Workload: w, Annot: "lease-skew", Warmup: testWarmup, Measure: testMeasure}
	hash := keyHash(key)
	mono := captureStream(t, w, annotate.Config{})
	newAnn := func() *annotate.Annotator {
		return annotate.New(workload.MustNew(w), annotate.Config{})
	}

	cA := NewCache()
	cA.SetDir(dir)
	cA.SetSegments(testMeasure/3, 1)
	cA.SetLease("a", 100*time.Millisecond)
	unlockA, err := cA.disk.lockKey(hash) // A claims and stalls mid-build
	if err != nil {
		t.Fatalf("A acquire: %v", err)
	}

	cB := NewCache()
	cB.SetDir(dir)
	cB.SetSegments(testMeasure/3, 1)
	cB.SetLease("b", 100*time.Millisecond)
	cB.disk.leasePoll = time.Millisecond
	cB.disk.now = func() time.Time { return time.Now().Add(10 * time.Minute) } // fast clock
	spec := BuildSpec{NewAnnotator: newAnn, Warmup: testWarmup, Measure: testMeasure}
	tB := cB.GetTrace(key, spec)
	assertSameReplay(t, mono, tB)
	if n := cB.disk.leasesStolen.Load(); n != 1 {
		t.Fatalf("B stole %d leases, want 1 (A's, seen expired through the skew)", n)
	}

	// A, still believing it holds the lease, finishes and publishes too.
	p := CaptureSegmentedToFile(cA.disk.spillPath(hash), SegSpec{
		NewAnnotator: newAnn, Warmup: testWarmup, Measure: testMeasure,
		SegmentInsts: testMeasure / 3, Workers: 1,
	})
	if _, err := p.Wait(); err != nil {
		t.Fatalf("A's duplicate build: %v", err)
	}
	if err := p.PublishErr(); err != nil {
		t.Fatalf("A's duplicate publish: %v", err)
	}
	cA.disk.recordPublished(hash, key, cA.disk.spillBytes(hash))
	unlockA()

	// The spill is still whole, bit-identical, unquarantined, and
	// charged exactly once.
	tr, err := OpenSpill(cA.disk.spillPath(hash))
	if err != nil {
		t.Fatalf("spill after duplicate publish: %v", err)
	}
	assertSameReplay(t, mono, tr)
	if got := cA.Stats().Quarantined + cB.Stats().Quarantined; got != 0 {
		t.Errorf("%d quarantines after duplicate publish, want 0", got)
	}
	if marks, _ := filepath.Glob(filepath.Join(dir, "*"+corruptMark+"*")); len(marks) != 0 {
		t.Errorf("corrupt-marked files after duplicate publish: %v", marks)
	}
	want := cA.disk.spillBytes(hash)
	cA.disk.withIndex(func(idx *indexFile) {
		if e, ok := idx.Entries[hash]; !ok || e.Bytes != want {
			t.Errorf("index entry %+v, want exactly %d bytes charged once", e, want)
		}
	})
}

const (
	leaseHelperEnvDir   = "MLPSIM_ATRACE_LEASE_HELPER_DIR"
	leaseHelperEnvOwner = "MLPSIM_ATRACE_LEASE_HELPER_OWNER"
	leaseHelperEnvCrash = "MLPSIM_ATRACE_LEASE_HELPER_CRASH"
)

func leaseHelperKey() (Key, workload.Config) {
	w := workload.Presets(28)[0]
	return Key{Workload: w, Annot: "lease-multiproc", Warmup: testWarmup, Measure: testMeasure}, w
}

// TestLeaseBuildHelper is the subprocess body for the lease
// crash-recovery test: one segmented GetTrace in lease mode. With the
// crash env set it dies between the second publish temp write and its
// rename — the lease is written and segment 0 landed, segment 1 and the
// manifest never do: SIGKILL between lease write and segment publish.
func TestLeaseBuildHelper(t *testing.T) {
	dir := os.Getenv(leaseHelperEnvDir)
	if dir == "" {
		t.Skip("helper for TestLeaseCrashRecovery; set " + leaseHelperEnvDir + " to run")
	}
	if os.Getenv(leaseHelperEnvCrash) != "" {
		writes := 0
		testCrashBeforeRename = func() {
			if writes++; writes == 2 {
				os.Exit(42)
			}
		}
	}
	c := NewCache()
	c.SetDir(dir)
	c.SetSegments(testMeasure/3, 1)
	c.SetLease(os.Getenv(leaseHelperEnvOwner), time.Second)
	key, w := leaseHelperKey()
	s := c.GetTrace(key, BuildSpec{
		NewAnnotator: func() *annotate.Annotator {
			return annotate.New(workload.MustNew(w), annotate.Config{})
		},
		Warmup:  testWarmup,
		Measure: testMeasure,
	})
	if os.Getenv(leaseHelperEnvCrash) != "" {
		t.Fatal("helper survived its crash point")
	}
	if s.Len() != testMeasure {
		t.Fatalf("trace length %d, want %d", s.Len(), testMeasure)
	}
	st := c.Stats()
	fmt.Printf("HELPER_BUILDS=%d\n", st.Builds)
	fmt.Printf("HELPER_STOLEN=%d\n", st.LeasesStolen)
}

// TestLeaseCrashRecovery kills a lease-holding builder between lease
// write and full segment publication, then asserts a peer reclaims the
// key after expiry: the stale lease is stolen (not waited on forever),
// the in-flight segment is rebuilt in place, the trace publishes whole,
// and nothing is quarantined or double-charged.
func TestLeaseCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	dir := t.TempDir()
	key, _ := leaseHelperKey()
	hash := keyHash(key)
	manifest := filepath.Join(dir, hash+spillExt)

	cmd := exec.Command(exe, "-test.run", "^TestLeaseBuildHelper$", "-test.v")
	cmd.Env = append(os.Environ(), leaseHelperEnvDir+"="+dir,
		leaseHelperEnvOwner+"=dead", leaseHelperEnvCrash+"=1")
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 42 {
		t.Fatalf("crash helper exited with %v, want code 42\n%s", err, out)
	}

	// The dead builder's claim is visible: its lease file names it, no
	// manifest landed, and segment 0 is an orphan.
	leasePath := filepath.Join(dir, hash+leaseExt)
	if li := readLease(t, leasePath); li.Owner != "dead" {
		t.Fatalf("lease owner %q after crash, want dead", li.Owner)
	}
	if _, err := os.Stat(manifest); !os.IsNotExist(err) {
		t.Fatalf("manifest visible after mid-publish crash: %v", err)
	}
	if _, err := os.Stat(segmentPath(manifest, 0)); err != nil {
		t.Fatalf("expected orphan segment 0 from the crashed builder: %v", err)
	}

	// A peer replica must reclaim the key: poll out the 1s lease,
	// steal, rebuild everything, publish.
	cmd = exec.Command(exe, "-test.run", "^TestLeaseBuildHelper$", "-test.v")
	cmd.Env = append(os.Environ(), leaseHelperEnvDir+"="+dir, leaseHelperEnvOwner+"=peer")
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("peer helper failed: %v\n%s", err, out)
	}
	if n, ok := parseHelperInt(string(out), "HELPER_BUILDS="); !ok || n != 1 {
		t.Fatalf("peer reported %d builds (ok=%v), want 1\n%s", n, ok, out)
	}
	if n, ok := parseHelperInt(string(out), "HELPER_STOLEN="); !ok || n != 1 {
		t.Fatalf("peer reported %d stolen leases (ok=%v), want 1\n%s", n, ok, out)
	}

	// Recovery is complete: whole trace, no quarantine, lease released,
	// and the byte-cap index charges exactly the bytes on disk (the
	// orphan segment was overwritten in place, not double-counted).
	tr, err := OpenSpill(manifest)
	if err != nil {
		t.Fatalf("reclaimed trace unreadable: %v", err)
	}
	if tr.Len() != testMeasure {
		t.Errorf("reclaimed trace holds %d instructions, want %d", tr.Len(), testMeasure)
	}
	if marks, _ := filepath.Glob(filepath.Join(dir, "*"+corruptMark+"*")); len(marks) != 0 {
		t.Errorf("recovery quarantined files: %v", marks)
	}
	if _, err := os.Stat(leasePath); !os.IsNotExist(err) {
		t.Errorf("lease file not released after recovery: %v", err)
	}
	d := newDiskCache(dir)
	want := d.spillBytes(hash)
	d.withIndex(func(idx *indexFile) {
		if e, ok := idx.Entries[hash]; !ok || e.Bytes != want {
			t.Errorf("index entry %+v, want exactly %d bytes charged once", e, want)
		}
	})
}

func parseHelperInt(out, prefix string) (int, bool) {
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), prefix); ok {
			n, err := strconv.Atoi(rest)
			if err != nil {
				return 0, false
			}
			return n, true
		}
	}
	return 0, false
}

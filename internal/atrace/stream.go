// Package atrace materializes one functional annotation pass into a
// compact, immutable columnar store that can be replayed any number of
// times. Annotation (cache hierarchy + branch predictor + value predictor
// over warmup+measure windows) costs ~250ns/inst and is byte-identical
// across every engine configuration, so experiment sweeps that fan dozens
// of core/cyclesim configs over the same workload waste almost all of
// their wall clock re-deriving the same stream. Capturing the stream once
// and replaying it (~20ns/inst, zero allocations) removes that redundancy
// without changing a single simulated event.
package atrace

import (
	"encoding/binary"

	"mlpsim/internal/annotate"
	"mlpsim/internal/isa"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/storeset"
	"mlpsim/internal/vpred"
)

// packVPODep packs the 2-bit value-prediction outcome and the 2-bit
// store-set dependence outcome into the one-byte vpo column: low nibble
// VPOutcome, high nibble Dep. Streams captured before dependence
// prediction existed decode Dep as zero (DepNone), so the on-disk
// column format (and every spill already published) is unchanged.
func packVPODep(vpo vpred.Outcome, dep storeset.Outcome) uint8 {
	return uint8(vpo) | uint8(dep)<<4
}

// Source is a sequential cursor over an annotated instruction window.
// NextInto is the zero-copy variant the engines' fetch paths detect and
// prefer; both methods yield the exact annotate.Inst values the annotator
// emitted.
type Source interface {
	Next() (annotate.Inst, bool)
	NextInto(*annotate.Inst) bool
}

// Trace is a replayable annotated instruction window: either a single
// monolithic Stream or a SegStream chaining fixed-size segments. Every
// implementation is immutable and safe for concurrent use once built;
// Source returns an independent cursor per call.
type Trace interface {
	Len() int64
	FirstIndex() int64
	LineShift() uint8
	Stats() annotate.Stats
	IPrefetchStats() (prefetch.Stats, bool)
	DPrefetchStats() (prefetch.Stats, bool)
	MemBytes() int64
	Mapped() bool
	Source() Source
}

// Stream is an immutable struct-of-arrays encoding of an annotated
// instruction window. All replays decode the same columns; a Stream is
// safe for concurrent use once built.
type Stream struct {
	n          int64
	firstIndex int64
	lineShift  uint8

	// Fixed-width columns, one entry per instruction.
	class []uint8
	src1  []uint8
	src2  []uint8
	dst   []uint8
	vpo   []uint8

	// Packed event bitsets (bit i = instruction i).
	dmiss   []uint64
	pmiss   []uint64
	imiss   []uint64
	smiss   []uint64
	mispred []uint64
	taken   []uint64
	hasTgt  []uint64

	// Variable-width columns: zig-zag uvarint deltas. pc holds one delta
	// per instruction (vs previous PC); ea one per memory instruction
	// (vs previous EA); tgt one per branch-with-target (vs own PC); val
	// one raw uvarint per non-prefetch memory read.
	pc  []byte
	ea  []byte
	tgt []byte
	val []byte

	stats annotate.Stats

	// Hardware-prefetcher statistics captured with the stream (zero when
	// the annotation configuration had no prefetchers). Replays of a cached
	// stream report these instead of re-running the engines.
	ipfStats, dpfStats prefetch.Stats
	hasIPF, hasDPF     bool

	// mapped, when non-nil, owns the memory-mapped columnar spill file the
	// columns above are views into; it is kept alive by this reference and
	// unmapped by a finalizer once the stream is unreachable.
	mapped *mapping
}

// Len returns the number of instructions in the stream.
func (s *Stream) Len() int64 { return s.n }

// FirstIndex returns the dynamic index of the first instruction (the
// number of instructions consumed before capture, i.e. the warmup).
func (s *Stream) FirstIndex() int64 { return s.firstIndex }

// LineShift returns log2 of the L2 line size used to derive Line/ILine.
func (s *Stream) LineShift() uint8 { return s.lineShift }

// Stats returns the annotator statistics accumulated over exactly the
// captured window (what a direct annotator would report after draining
// the same instructions post-warmup).
func (s *Stream) Stats() annotate.Stats { return s.stats }

// IPrefetchStats returns the hardware instruction prefetcher statistics
// captured with the stream; ok is false when the annotation configuration
// had no instruction prefetcher.
func (s *Stream) IPrefetchStats() (prefetch.Stats, bool) { return s.ipfStats, s.hasIPF }

// DPrefetchStats returns the hardware data prefetcher statistics captured
// with the stream.
func (s *Stream) DPrefetchStats() (prefetch.Stats, bool) { return s.dpfStats, s.hasDPF }

// Mapped reports whether the stream's columns are views over a
// memory-mapped spill file rather than resident heap.
func (s *Stream) Mapped() bool { return s.mapped != nil && !s.mapped.heap }

// MemBytes returns the approximate heap footprint of the stream, used
// for cache accounting. A memory-mapped stream occupies file pages (the
// OS page cache), not Go heap, so it accounts only a small constant.
func (s *Stream) MemBytes() int64 {
	if s.Mapped() {
		return 4096
	}
	b := int64(cap(s.class) + cap(s.src1) + cap(s.src2) + cap(s.dst) + cap(s.vpo))
	b += 8 * int64(cap(s.dmiss)+cap(s.pmiss)+cap(s.imiss)+cap(s.smiss)+cap(s.mispred)+cap(s.taken)+cap(s.hasTgt))
	b += int64(cap(s.pc) + cap(s.ea) + cap(s.tgt) + cap(s.val))
	return b + 256
}

func bitsetWords(n int64) int64 { return (n + 63) / 64 }

func getBit(bs []uint64, i int64) bool { return bs[i>>6]&(1<<uint(i&63)) != 0 }

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Builder accumulates annotated instructions into a Stream.
type Builder struct {
	s      Stream
	prevPC uint64
	prevEA uint64
	first  bool
}

// NewBuilder starts a stream whose Line/ILine fields are derived with the
// given line shift (log2 of the L2 line size). sizeHint preallocates for
// the expected instruction count (0 is fine).
func NewBuilder(lineShift uint8, sizeHint int64) *Builder {
	b := &Builder{first: true}
	b.s.lineShift = lineShift
	if sizeHint > 0 {
		b.s.class = make([]uint8, 0, sizeHint)
		b.s.src1 = make([]uint8, 0, sizeHint)
		b.s.src2 = make([]uint8, 0, sizeHint)
		b.s.dst = make([]uint8, 0, sizeHint)
		b.s.vpo = make([]uint8, 0, sizeHint)
		words := bitsetWords(sizeHint)
		b.s.dmiss = make([]uint64, 0, words)
		b.s.pmiss = make([]uint64, 0, words)
		b.s.imiss = make([]uint64, 0, words)
		b.s.smiss = make([]uint64, 0, words)
		b.s.mispred = make([]uint64, 0, words)
		b.s.taken = make([]uint64, 0, words)
		b.s.hasTgt = make([]uint64, 0, words)
		b.s.pc = make([]byte, 0, 2*sizeHint)
		b.s.ea = make([]byte, 0, 2*sizeHint)
	}
	return b
}

func setBit(bs *[]uint64, i int64, v bool) {
	w := i >> 6
	for int64(len(*bs)) <= w {
		*bs = append(*bs, 0)
	}
	if v {
		(*bs)[w] |= 1 << uint(i&63)
	}
}

// Append adds one annotated instruction. Instructions must be appended in
// stream order; the first instruction's Index becomes FirstIndex.
func (b *Builder) Append(in annotate.Inst) {
	if b.first {
		b.s.firstIndex = in.Index
		b.first = false
	}
	i := b.s.n
	b.s.n++
	b.s.class = append(b.s.class, uint8(in.Class))
	b.s.src1 = append(b.s.src1, uint8(in.Src1))
	b.s.src2 = append(b.s.src2, uint8(in.Src2))
	b.s.dst = append(b.s.dst, uint8(in.Dst))
	b.s.vpo = append(b.s.vpo, packVPODep(in.VPOutcome, in.Dep))
	setBit(&b.s.dmiss, i, in.DMiss)
	setBit(&b.s.pmiss, i, in.PMiss)
	setBit(&b.s.imiss, i, in.IMiss)
	setBit(&b.s.smiss, i, in.SMiss)
	setBit(&b.s.mispred, i, in.Mispred)
	setBit(&b.s.taken, i, in.Taken)
	hasTgt := in.Class == isa.Branch && in.Target != 0
	setBit(&b.s.hasTgt, i, hasTgt)

	b.s.pc = binary.AppendUvarint(b.s.pc, zigzag(int64(in.PC)-int64(b.prevPC)))
	b.prevPC = in.PC
	if in.Class.IsMem() {
		b.s.ea = binary.AppendUvarint(b.s.ea, zigzag(int64(in.EA)-int64(b.prevEA)))
		b.prevEA = in.EA
	}
	if hasTgt {
		b.s.tgt = binary.AppendUvarint(b.s.tgt, zigzag(int64(in.Target)-int64(in.PC)))
	}
	if in.Class.IsMemRead() && in.Class != isa.Prefetch {
		b.s.val = binary.AppendUvarint(b.s.val, in.Value)
	}
}

// AppendBlock adds a block of annotated instructions column by column:
// one pass per fixed-width column, one bulk extension per bitset, then
// the data-dependent varint columns — a transpose at the block boundary
// instead of a full per-instruction Append. Instructions must be in
// stream order; interleaving with Append is allowed.
func (b *Builder) AppendBlock(block []annotate.Inst) {
	if len(block) == 0 {
		return
	}
	if b.first {
		b.s.firstIndex = block[0].Index
		b.first = false
	}
	base := b.s.n
	b.s.n += int64(len(block))

	for i := range block {
		b.s.class = append(b.s.class, uint8(block[i].Class))
	}
	for i := range block {
		b.s.src1 = append(b.s.src1, uint8(block[i].Src1))
	}
	for i := range block {
		b.s.src2 = append(b.s.src2, uint8(block[i].Src2))
	}
	for i := range block {
		b.s.dst = append(b.s.dst, uint8(block[i].Dst))
	}
	for i := range block {
		b.s.vpo = append(b.s.vpo, packVPODep(block[i].VPOutcome, block[i].Dep))
	}

	words := bitsetWords(b.s.n)
	b.s.dmiss = growWords(b.s.dmiss, words)
	b.s.pmiss = growWords(b.s.pmiss, words)
	b.s.imiss = growWords(b.s.imiss, words)
	b.s.smiss = growWords(b.s.smiss, words)
	b.s.mispred = growWords(b.s.mispred, words)
	b.s.taken = growWords(b.s.taken, words)
	b.s.hasTgt = growWords(b.s.hasTgt, words)
	for i := range block {
		in := &block[i]
		w, bit := (base+int64(i))>>6, uint(base+int64(i))&63
		if in.DMiss {
			b.s.dmiss[w] |= 1 << bit
		}
		if in.PMiss {
			b.s.pmiss[w] |= 1 << bit
		}
		if in.IMiss {
			b.s.imiss[w] |= 1 << bit
		}
		if in.SMiss {
			b.s.smiss[w] |= 1 << bit
		}
		if in.Mispred {
			b.s.mispred[w] |= 1 << bit
		}
		if in.Taken {
			b.s.taken[w] |= 1 << bit
		}
		if in.Class == isa.Branch && in.Target != 0 {
			b.s.hasTgt[w] |= 1 << bit
		}
	}

	for i := range block {
		in := &block[i]
		b.s.pc = binary.AppendUvarint(b.s.pc, zigzag(int64(in.PC)-int64(b.prevPC)))
		b.prevPC = in.PC
		if in.Class.IsMem() {
			b.s.ea = binary.AppendUvarint(b.s.ea, zigzag(int64(in.EA)-int64(b.prevEA)))
			b.prevEA = in.EA
		}
		if in.Class == isa.Branch && in.Target != 0 {
			b.s.tgt = binary.AppendUvarint(b.s.tgt, zigzag(int64(in.Target)-int64(in.PC)))
		}
		if in.Class.IsMemRead() && in.Class != isa.Prefetch {
			b.s.val = binary.AppendUvarint(b.s.val, in.Value)
		}
	}
}

// growWords zero-extends a bitset to the given word count.
func growWords(bs []uint64, words int64) []uint64 {
	for int64(len(bs)) < words {
		bs = append(bs, 0)
	}
	return bs
}

// Finish seals the stream, attaching the annotator statistics for the
// captured window.
func (b *Builder) Finish(stats annotate.Stats) *Stream {
	b.s.stats = stats
	s := b.s
	b.s = Stream{}
	return &s
}

// captureBlock is the fused-capture batch size: large enough to
// amortize the per-block column transpose, small enough that the
// annotate.Inst staging buffer (~100 bytes each) stays cache resident.
const captureBlock = 2048

// Capture drains up to max instructions from a (typically pre-warmed)
// annotator into a new Stream. The annotator's post-drain Stats are
// stored on the stream. Annotation and encoding are fused block-wise:
// AnnotateInto fills a reusable staging buffer and AppendBlock
// transposes it into the columns, instead of one call pair plus an
// Inst copy per instruction.
func Capture(a *annotate.Annotator, max int64) *Stream {
	shift := lineShiftOf(a.Hierarchy().Config().L2.LineBytes)
	b := NewBuilder(shift, max)
	buf := make([]annotate.Inst, captureBlock)
	for left := max; left > 0; {
		want := int64(len(buf))
		if left < want {
			want = left
		}
		got := a.AnnotateInto(buf[:want])
		b.AppendBlock(buf[:got])
		left -= int64(got)
		if int64(got) < want {
			break
		}
	}
	s := b.Finish(a.Stats())
	if p := a.IPrefetch(); p != nil {
		s.ipfStats, s.hasIPF = p.Stats(), true
	}
	if p := a.DPrefetch(); p != nil {
		s.dpfStats, s.hasDPF = p.Stats(), true
	}
	return s
}

func lineShiftOf(lineBytes int) uint8 {
	var shift uint8
	for 1<<shift != lineBytes {
		shift++
		if shift > 63 {
			panic("atrace: line size not a power of two")
		}
	}
	return shift
}

// Replay is a sequential, zero-allocation decoder over a Stream. It
// implements the engines' AnnotatedSource contract and reproduces the
// exact annotate.Inst values the annotator emitted, including Index,
// Line and ILine. Each replay has independent position state; create one
// per engine run.
type Replay struct {
	s      *Stream
	i      int64
	pcOff  int
	eaOff  int
	tgtOff int
	valOff int
	prevPC uint64
	prevEA uint64
}

// Replay returns a fresh replay cursor positioned at the first
// instruction.
func (s *Stream) Replay() *Replay { return &Replay{s: s} }

// Source returns a fresh replay cursor, satisfying the Trace interface.
func (s *Stream) Source() Source { return s.Replay() }

// Next returns the next annotated instruction in the stream.
func (r *Replay) Next() (annotate.Inst, bool) {
	var out annotate.Inst
	ok := r.NextInto(&out)
	return out, ok
}

// NextInto decodes the next instruction directly into *dst, avoiding the
// by-value copies of Next. It overwrites every field of *dst. The engines
// detect this method and use it on their fetch path.
func (r *Replay) NextInto(dst *annotate.Inst) bool {
	s := r.s
	if r.i >= s.n {
		return false
	}
	i := r.i
	r.i++

	out := dst
	*out = annotate.Inst{}
	out.Index = s.firstIndex + i
	out.Class = isa.Class(s.class[i])
	out.Src1 = isa.Reg(s.src1[i])
	out.Src2 = isa.Reg(s.src2[i])
	out.Dst = isa.Reg(s.dst[i])
	out.VPOutcome = vpred.Outcome(s.vpo[i] & 0x0F)
	out.Dep = storeset.Outcome(s.vpo[i] >> 4)
	out.DMiss = getBit(s.dmiss, i)
	out.PMiss = getBit(s.pmiss, i)
	out.IMiss = getBit(s.imiss, i)
	out.SMiss = getBit(s.smiss, i)
	out.Mispred = getBit(s.mispred, i)
	out.Taken = getBit(s.taken, i)

	d, n := binary.Uvarint(s.pc[r.pcOff:])
	r.pcOff += n
	out.PC = uint64(int64(r.prevPC) + unzigzag(d))
	r.prevPC = out.PC
	out.ILine = out.PC >> s.lineShift

	if out.Class.IsMem() {
		d, n = binary.Uvarint(s.ea[r.eaOff:])
		r.eaOff += n
		out.EA = uint64(int64(r.prevEA) + unzigzag(d))
		r.prevEA = out.EA
		out.Line = out.EA >> s.lineShift
	}
	if getBit(s.hasTgt, i) {
		d, n = binary.Uvarint(s.tgt[r.tgtOff:])
		r.tgtOff += n
		out.Target = uint64(int64(out.PC) + unzigzag(d))
	}
	if out.Class.IsMemRead() && out.Class != isa.Prefetch {
		v, n := binary.Uvarint(s.val[r.valOff:])
		r.valOff += n
		out.Value = v
	}
	return true
}

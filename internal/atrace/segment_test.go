package atrace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/mem"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

// segSpecFor builds a SegSpec over the standard test window. acfg must be
// reconstructible per call (workers each get a fresh annotator).
func segSpecFor(w workload.Config, acfg func() annotate.Config, segInsts int64, workers int) SegSpec {
	return SegSpec{
		NewAnnotator: func() *annotate.Annotator {
			return annotate.New(workload.MustNew(w), acfg())
		},
		Warmup:       testWarmup,
		Measure:      testMeasure,
		SegmentInsts: segInsts,
		Workers:      workers,
	}
}

// TestSegmentedMatchesMonolithic is the bit-identity check of the
// tentpole: a multi-worker segmented capture must replay the exact
// instruction sequence of one monolithic pass and report identical
// aggregate annotator and prefetcher statistics — including a last
// segment shorter than the nominal size.
func TestSegmentedMatchesMonolithic(t *testing.T) {
	w := workload.Presets(21)[0]
	acfg := func() annotate.Config {
		return annotate.Config{
			IPrefetch: prefetch.NewSequential(4, mem.IFetch),
			DPrefetch: prefetch.NewStride(1024, 4),
			Value:     vpred.NewLastValue(vpred.DefaultEntries),
		}
	}
	mono := captureStream(t, w, acfg())

	// 120000 / 50000 -> segments of 50k, 50k, 20k across 3 workers.
	p := CaptureSegmented(segSpecFor(w, acfg, 50_000, 3))
	ss, err := p.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if ss.Segments() != 3 {
		t.Fatalf("segments %d, want 3", ss.Segments())
	}
	if ss.Len() != mono.Len() || ss.FirstIndex() != mono.FirstIndex() {
		t.Fatalf("geometry (n=%d first=%d), want (n=%d first=%d)",
			ss.Len(), ss.FirstIndex(), mono.Len(), mono.FirstIndex())
	}
	if got, want := ss.Stats(), mono.Stats(); got != want {
		t.Errorf("aggregate stats %+v, want %+v", got, want)
	}
	ipf, ok := ss.IPrefetchStats()
	mipf, _ := mono.IPrefetchStats()
	if !ok || ipf != mipf {
		t.Errorf("iprefetch stats %+v (ok=%v), want %+v", ipf, ok, mipf)
	}
	dpf, ok := ss.DPrefetchStats()
	mdpf, _ := mono.DPrefetchStats()
	if !ok || dpf != mdpf {
		t.Errorf("dprefetch stats %+v (ok=%v), want %+v", dpf, ok, mdpf)
	}
	assertSameReplay(t, mono, ss)
}

// TestSegmentedFileRoundTrip: the MLPCOLS2 spill written by the pipelined
// writer reopens memory-mapped and bit-identical to the monolithic pass.
func TestSegmentedFileRoundTrip(t *testing.T) {
	w := workload.Presets(22)[1]
	acfg := func() annotate.Config { return annotate.Config{} }
	mono := captureStream(t, w, acfg())

	base := filepath.Join(t.TempDir(), "trace.acol")
	p := CaptureSegmentedToFile(base, segSpecFor(w, acfg, 40_000, 2))
	built, err := p.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := p.PublishErr(); err != nil {
		t.Fatalf("PublishErr: %v", err)
	}
	if !built.Mapped() {
		t.Error("builder's own segments not memory-mapped after publication")
	}
	if !IsSegmentedFile(base) {
		t.Fatal("manifest not recognised as MLPCOLS2")
	}
	for k := 0; k < built.Segments(); k++ {
		if _, err := os.Stat(segmentPath(base, k)); err != nil {
			t.Fatalf("segment %d missing: %v", k, err)
		}
	}

	ss, err := OpenSegmentedFile(base)
	if err != nil {
		t.Fatalf("OpenSegmentedFile: %v", err)
	}
	if !ss.Mapped() {
		t.Error("reopened segments not memory-mapped")
	}
	if got, want := ss.Stats(), mono.Stats(); got != want {
		t.Errorf("reopened stats %+v, want %+v", got, want)
	}
	assertSameReplay(t, mono, ss)

	// OpenSpill dispatches on the magic.
	via, err := OpenSpill(base)
	if err != nil {
		t.Fatalf("OpenSpill: %v", err)
	}
	if _, ok := via.(*SegStream); !ok {
		t.Errorf("OpenSpill returned %T, want *SegStream", via)
	}
}

// TestSegmentStreaming proves the pipeline property: a consumer drains
// segment 0 while the final segment is still unpublished.
func TestSegmentStreaming(t *testing.T) {
	w := workload.Presets(23)[2]
	spec := segSpecFor(w, func() annotate.Config { return annotate.Config{} }, 40_000, 1)
	gate := make(chan struct{})
	segs := int((testMeasure + 40_000 - 1) / 40_000)
	spec.publish = func(k int, s *Stream) (*Stream, error) {
		if k == segs-1 {
			<-gate // hold the last segment back until the consumer is done with segment 0
		}
		return nil, nil
	}

	p := CaptureSegmented(spec)
	src := p.Source()
	var inst annotate.Inst
	for i := int64(0); i < 40_000; i++ {
		if !src.NextInto(&inst) {
			t.Fatalf("stream ended at %d, before segment 0 was drained", i)
		}
	}
	select {
	case <-p.ready[segs-1]:
		t.Fatal("final segment published before the gate opened")
	default:
	}
	close(gate)
	n := int64(40_000)
	for src.NextInto(&inst) {
		n++
	}
	if n != testMeasure {
		t.Fatalf("streamed %d instructions, want %d", n, testMeasure)
	}
	if _, err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// segCacheSpec is the BuildSpec used by the segmented disk-cache tests.
func segCacheSpec(w workload.Config) BuildSpec {
	return BuildSpec{
		NewAnnotator: func() *annotate.Annotator {
			return annotate.New(workload.MustNew(w), annotate.Config{})
		},
		Warmup:  testWarmup,
		Measure: testMeasure,
	}
}

// TestSegmentedDiskCache: a cache configured for segmented capture spills
// an MLPCOLS2 trace; a second cache loads it from disk (no rebuild),
// memory-mapped and bit-identical; a corrupted segment quarantines the
// whole key and a third cache rebuilds cleanly.
func TestSegmentedDiskCache(t *testing.T) {
	dir := t.TempDir()
	w := workload.Presets(24)[0]
	key := Key{Workload: w, Annot: "seg", Warmup: testWarmup, Measure: testMeasure}
	mono := captureStream(t, w, annotate.Config{})

	c1 := NewCache()
	c1.SetDir(dir)
	c1.SetSegments(50_000, 2)
	t1 := c1.GetTrace(key, segCacheSpec(w))
	if st := c1.Stats(); st.Builds != 1 {
		t.Fatalf("first cache: %d builds, want 1", st.Builds)
	}
	manifest := filepath.Join(dir, keyHash(key)+spillExt)
	if !IsSegmentedFile(manifest) {
		t.Fatal("spill is not a segmented manifest")
	}
	assertSameReplay(t, mono, t1)

	c2 := NewCache()
	c2.SetDir(dir)
	c2.SetSegments(50_000, 2)
	t2 := c2.GetTrace(key, segCacheSpec(w))
	if st := c2.Stats(); st.DiskHits != 1 || st.Builds != 0 {
		t.Fatalf("second cache stats %+v, want 1 disk hit and 0 builds", st)
	}
	if !t2.Mapped() {
		t.Error("disk-loaded segmented trace not memory-mapped")
	}
	assertSameReplay(t, mono, t2)

	// Flip one byte inside segment 1: the whole key must quarantine
	// (manifest + all segments moved aside) and rebuild.
	seg1 := segmentPath(manifest, 1)
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := NewCache()
	c3.SetDir(dir)
	c3.SetSegments(50_000, 2)
	t3 := c3.GetTrace(key, segCacheSpec(w))
	if st := c3.Stats(); st.Quarantined != 1 || st.Builds != 1 {
		t.Fatalf("third cache stats %+v, want 1 quarantine and 1 rebuild", st)
	}
	assertSameReplay(t, mono, t3)
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*"+corruptMark+"*"))
	if len(quarantined) < 2 {
		t.Errorf("quarantine moved %d files aside, want manifest plus segments (%v)", len(quarantined), quarantined)
	}
	if !IsSegmentedFile(manifest) {
		t.Error("rebuild did not republish a segmented manifest")
	}
}

// TestSegmentedDiskEviction pins byte-cap eviction's two regimes for
// segmented spills: a margin overage trims only tail segments of the
// LRU victim (leaving a sidecar-named rebuildable hole, segment 0
// live), while a deep overage still removes the whole key — manifest,
// every segment file AND the eviction sidecar.
func TestSegmentedDiskEviction(t *testing.T) {
	dir := t.TempDir()
	w := workload.Presets(25)[0]
	key1 := Key{Workload: w, Annot: "evict1", Warmup: testWarmup, Measure: testMeasure}
	key2 := Key{Workload: w, Annot: "evict2", Warmup: testWarmup, Measure: testMeasure}
	key3 := Key{Workload: w, Annot: "evict3", Warmup: testWarmup, Measure: testMeasure}

	c := NewCache()
	c.SetDir(dir)
	c.SetSegments(50_000, 2)
	c.GetTrace(key1, segCacheSpec(w))
	size := newDiskCache(dir).spillBytes(keyHash(key1))
	if size <= 0 {
		t.Fatal("first spill reports no bytes")
	}
	// Room for ~1.5 spills: publishing key2 overshoots by ~half a spill,
	// which partial eviction covers by trimming key1's tail.
	c.SetDiskCapBytes(size + size/2)
	c.GetTrace(key2, segCacheSpec(w))
	if st := c.Stats(); st.DiskEvictions != 0 || st.SegEvictions == 0 {
		t.Fatalf("stats %+v, want 0 whole-key evictions and > 0 segment evictions", st)
	}
	h1 := keyHash(key1)
	manifest1 := filepath.Join(dir, h1+spillExt)
	if !IsSegmentedFile(manifest1) {
		t.Error("trimmed spill lost its manifest")
	}
	if _, err := os.Stat(segmentPath(manifest1, 0)); err != nil {
		t.Errorf("segment 0 must stay live after a partial trim: %v", err)
	}
	if missing, ok := newDiskCache(dir).evictedHole(manifest1); !ok || len(missing) == 0 {
		t.Errorf("trimmed spill's hole (%v, named=%v) not rebuildable", missing, ok)
	}

	// Deep overage: a cap far below the victims' sizes removes whole
	// keys — key1's remains (sidecar included) and then key2.
	c.SetDiskCapBytes(size / 2)
	c.GetTrace(key3, segCacheSpec(w))
	if st := c.Stats(); st.DiskEvictions != 2 {
		t.Fatalf("stats %+v, want 2 whole-key evictions", st)
	}
	for _, h := range []string{h1, keyHash(key2)} {
		left, _ := filepath.Glob(filepath.Join(dir, h+"*"))
		for _, p := range left {
			if !strings.HasSuffix(p, ".lock") {
				t.Errorf("evicted spill left %s behind", p)
			}
		}
	}
	if _, err := OpenSpill(filepath.Join(dir, keyHash(key3)+spillExt)); err != nil {
		t.Errorf("surviving spill unreadable: %v", err)
	}
}

// TestTouchNoPhantomEntry: a touch racing a concurrent eviction (spill
// already gone) must not insert a zero-byte index entry.
func TestTouchNoPhantomEntry(t *testing.T) {
	d := newDiskCache(t.TempDir())
	d.touch("deadbeef")
	d.withIndex(func(idx *indexFile) {
		if e, ok := idx.Entries["deadbeef"]; ok {
			t.Errorf("phantom index entry %+v for a spill that does not exist", e)
		}
	})
}

// TestTouchAdoptsUnindexedSpill: the companion positive case — a spill
// that predates the index is adopted with its real byte size.
func TestTouchAdoptsUnindexedSpill(t *testing.T) {
	d := newDiskCache(t.TempDir())
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	if err := os.WriteFile(d.spillPath("cafe"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	d.touch("cafe")
	d.withIndex(func(idx *indexFile) {
		e, ok := idx.Entries["cafe"]
		if !ok || e.Bytes != int64(len(payload)) {
			t.Errorf("adopted entry %+v (ok=%v), want %d bytes", e, ok, len(payload))
		}
	})
}

// TestSweepReclaimsLitter: the publish-time sweep removes aged temp
// files, orphaned segment files, quarantined spills, and stale lock
// files — while keeping everything that belongs to a live spill.
func TestSweepReclaimsLitter(t *testing.T) {
	d := newDiskCache(t.TempDir())
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	mk := func(name string) string {
		p := filepath.Join(d.dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	tmp := mk(tmpPrefix + "abandoned")
	orphan := mk("dead.acol.seg0000") // no dead.acol manifest
	corrupt := mk("old.acol" + corruptMark + "1.2")
	staleLock := mk("gone.lock") // no gone.acol manifest
	live := mk("live.acol")
	liveSeg := mk("live.acol.seg0000")
	liveLock := mk("live.lock")

	d.tmpMaxAge = -1 // any age exceeds the bound
	d.corruptMaxAge = -1
	d.withIndex(func(idx *indexFile) {
		if litter := d.sweepLocked(idx); litter != 0 {
			t.Errorf("aged sweep kept %d litter bytes, want 0", litter)
		}
	})
	for _, p := range []string{tmp, orphan, corrupt, staleLock} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("sweep left litter %s behind", p)
		}
	}
	for _, p := range []string{live, liveSeg, liveLock} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("sweep removed live file %s: %v", p, err)
		}
	}
	if got := d.swept.Load(); got != 4 {
		t.Errorf("swept counter %d, want 4", got)
	}
}

// TestSweepKeepsYoungLitter: litter younger than the age bounds stays on
// disk and its bytes are charged against the directory capacity.
func TestSweepKeepsYoungLitter(t *testing.T) {
	d := newDiskCache(t.TempDir())
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	body := []byte("0123456789") // 10 bytes each
	if err := os.WriteFile(filepath.Join(d.dir, tmpPrefix+"young"), body, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d.dir, "young.acol"+corruptMark+"9.9"), body, 0o644); err != nil {
		t.Fatal(err)
	}
	d.withIndex(func(idx *indexFile) {
		if litter := d.sweepLocked(idx); litter != 20 {
			t.Errorf("young sweep reported %d litter bytes, want 20", litter)
		}
	})
	if got := d.swept.Load(); got != 0 {
		t.Errorf("swept counter %d, want 0 (nothing aged out)", got)
	}
}

// TestLitterCountsAgainstCap: young quarantined bytes tighten byte-cap
// eviction — the same index fits without litter but evicts with it.
func TestLitterCountsAgainstCap(t *testing.T) {
	d := newDiskCache(t.TempDir())
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 100)
	for _, h := range []string{"aaaa", "bbbb"} {
		if err := os.WriteFile(d.spillPath(h), body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seed := func(idx *indexFile) {
		idx.Entries["aaaa"] = indexEntry{Key: "a", Bytes: 100, LastUsed: 1}
		idx.Entries["bbbb"] = indexEntry{Key: "b", Bytes: 100, LastUsed: 2}
	}
	d.capBytes = 250

	d.withIndex(func(idx *indexFile) {
		seed(idx)
		d.evictIndexed(idx, "bbbb", 0) // 200 <= 250: nothing to do
		if len(idx.Entries) != 2 {
			t.Fatalf("evicted without litter pressure: %d entries left", len(idx.Entries))
		}
		d.evictIndexed(idx, "bbbb", 100) // 300 > 250: LRU "aaaa" must go
		if _, ok := idx.Entries["aaaa"]; ok {
			t.Error("litter bytes did not force eviction of the LRU spill")
		}
		if _, ok := idx.Entries["bbbb"]; !ok {
			t.Error("eviction removed the just-published entry")
		}
	})
	if _, err := os.Stat(d.spillPath("aaaa")); !os.IsNotExist(err) {
		t.Error("evicted spill file still on disk")
	}
}

package atrace

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"mlpsim/internal/annotate"
)

// SegSpec describes a segmented capture: how to build the annotation
// pass and how to split the measured window into segments.
//
// Because workload generation is deterministic per seed, each worker can
// reconstruct the exact annotator state at any segment boundary by
// re-running generation+annotation from instruction 0 (a fresh annotator
// warmed over the full prefix). That keeps every segment bit-identical
// to the corresponding window of a monolithic pass without sharing any
// mutable state between workers.
type SegSpec struct {
	// NewAnnotator returns a fresh, unwarmed annotator positioned at
	// dynamic instruction 0. It must be safe to call from multiple
	// goroutines and every annotator it returns must be deterministic and
	// independent (fresh generator, fresh predictors).
	NewAnnotator func() *annotate.Annotator
	// Warmup instructions are consumed (training caches and predictors)
	// before the first captured instruction.
	Warmup int64
	// Measure instructions are captured.
	Measure int64
	// SegmentInsts is the nominal per-segment instruction count; <= 0 or
	// >= Measure captures a single segment.
	SegmentInsts int64
	// Workers bounds the parallel capture goroutines (<= 0 = GOMAXPROCS).
	// Each worker warms once and then captures a contiguous run of
	// segments, so worker w's extra warm-up cost is the prefix before its
	// first segment.
	Workers int

	// publish, when set, is called once per completed segment (from the
	// worker that built it, in completion order across workers). It may
	// return a replacement stream — e.g. a memory-mapped reopen of the
	// published file — that the pending capture hands out instead of the
	// heap copy. A publish error is recorded (PublishErr) but does not
	// fail the capture: the heap segment stays usable.
	publish func(k int, s *Stream) (*Stream, error)
	// finish, when set, runs after every segment has resolved and the
	// aggregate SegStream validated, before Wait unblocks — the hook that
	// writes the manifest. Skipped when any publish call failed.
	finish func(ss *SegStream) error
}

func (spec SegSpec) segmentCount() (segInsts int64, k int) {
	segInsts = spec.SegmentInsts
	if segInsts <= 0 || segInsts >= spec.Measure {
		return spec.Measure, 1
	}
	return segInsts, int((spec.Measure + segInsts - 1) / segInsts)
}

// capture runs the monolithic path: one fresh annotator, warmed, drained.
func (spec SegSpec) capture() *Stream {
	a := spec.NewAnnotator()
	a.Warm(spec.Warmup)
	return Capture(a, spec.Measure)
}

// PendingCapture is a segmented capture in flight. Consumers may stream
// instructions (Source) or block per segment (Segment) while later
// segments are still being built; Wait blocks until the whole window is
// captured and returns the assembled trace.
type PendingCapture struct {
	segInsts int64
	segN     []int64

	mu     sync.Mutex
	segs   []*Stream
	errs   []error
	ready  []chan struct{}
	pubErr error
	pval   any

	done     chan struct{}
	final    *SegStream
	finalErr error
}

// CaptureSegmented starts a parallel segmented capture of spec's window
// and returns immediately; segments become available as workers finish
// them.
func CaptureSegmented(spec SegSpec) *PendingCapture {
	segInsts, count := spec.segmentCount()
	p := &PendingCapture{
		segInsts: segInsts,
		segN:     make([]int64, count),
		segs:     make([]*Stream, count),
		errs:     make([]error, count),
		ready:    make([]chan struct{}, count),
		done:     make(chan struct{}),
	}
	for k := range p.ready {
		p.ready[k] = make(chan struct{})
	}
	for k := 0; k < count; k++ {
		n := segInsts
		if rest := spec.Measure - int64(k)*segInsts; rest < n {
			n = rest
		}
		p.segN[k] = n
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}
	// Contiguous split: worker w captures segments [lo, hi) from a single
	// annotator warmed once over the prefix before lo.
	lo := 0
	for w := 0; w < workers; w++ {
		hi := (count*(w+1) + workers - 1) / workers
		if hi > count {
			hi = count
		}
		go p.runWorker(spec, lo, hi)
		lo = hi
	}

	go func() {
		for _, ch := range p.ready {
			<-ch
		}
		p.finalize(spec)
		close(p.done)
	}()
	return p
}

func (p *PendingCapture) runWorker(spec SegSpec, lo, hi int) {
	next := lo
	defer func() {
		pv := recover()
		p.mu.Lock()
		if pv != nil && p.pval == nil {
			p.pval = pv
		}
		p.mu.Unlock()
		// Resolve any segments this worker never delivered so waiters
		// do not hang.
		for k := next; k < hi; k++ {
			err := fmt.Errorf("atrace: capture worker failed before segment %d", k)
			if pv != nil {
				err = fmt.Errorf("atrace: capture worker panicked before segment %d: %v", k, pv)
			}
			p.deliver(&next, k, nil, err)
		}
	}()

	a := spec.NewAnnotator()
	skip := spec.Warmup + int64(lo)*p.segInsts
	if a.Warm(skip); a.Position() != skip {
		panic(fmt.Sprintf("atrace: source ended during warm-up (%d of %d instructions)", a.Position(), skip))
	}
	for k := lo; k < hi; k++ {
		if k > lo {
			// Segment boundary: statistics restart so each segment carries
			// its own delta; all cache/predictor training state carries over.
			a.ResetStats()
		}
		s := Capture(a, p.segN[k])
		var err error
		switch {
		case s.Len() != p.segN[k]:
			err = fmt.Errorf("atrace: segment %d captured %d instructions, want %d", k, s.Len(), p.segN[k])
		case s.Len() > 0 && s.FirstIndex() != spec.Warmup+int64(k)*p.segInsts:
			err = fmt.Errorf("atrace: segment %d starts at %d, want %d", k, s.FirstIndex(), spec.Warmup+int64(k)*p.segInsts)
		case spec.publish != nil:
			if rs, perr := spec.publish(k, s); perr != nil {
				p.mu.Lock()
				if p.pubErr == nil {
					p.pubErr = perr
				}
				p.mu.Unlock()
			} else if rs != nil {
				s = rs
			}
		}
		p.deliver(&next, k, s, err)
		if err != nil {
			// The annotator's position is unreliable after a short capture;
			// the deferred cleanup resolves this worker's remaining segments.
			return
		}
	}
}

func (p *PendingCapture) deliver(next *int, k int, s *Stream, err error) {
	p.mu.Lock()
	p.segs[k] = s
	p.errs[k] = err
	p.mu.Unlock()
	close(p.ready[k])
	*next = k + 1
}

func (p *PendingCapture) finalize(spec SegSpec) {
	if p.pval != nil {
		p.finalErr = fmt.Errorf("atrace: capture panicked: %v", p.pval)
		return
	}
	for _, err := range p.errs {
		if err != nil {
			p.finalErr = err
			return
		}
	}
	ss, err := NewSegStream(p.segs, p.segInsts)
	if err != nil {
		p.finalErr = err
		return
	}
	if spec.finish != nil && p.pubErr == nil {
		if err := spec.finish(ss); err != nil {
			p.pubErr = err
		}
	}
	p.final = ss
}

// Segments returns the number of segments the capture was split into.
func (p *PendingCapture) Segments() int { return len(p.segN) }

// SegmentInsts returns the nominal per-segment instruction count.
func (p *PendingCapture) SegmentInsts() int64 { return p.segInsts }

// Segment blocks until segment k is captured (and, for disk-backed
// captures, published) and returns it.
func (p *PendingCapture) Segment(k int) (*Stream, error) {
	<-p.ready[k]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.segs[k], p.errs[k]
}

// Wait blocks until the whole window is captured and returns the
// assembled trace. A panic in a capture worker is re-raised here.
func (p *PendingCapture) Wait() (*SegStream, error) {
	<-p.done
	if p.pval != nil {
		panic(p.pval)
	}
	return p.final, p.finalErr
}

// PublishErr reports the first error hit while publishing segments or
// the manifest (nil while publication is still in progress or after a
// fully successful one). The captured trace itself stays usable — a
// publish failure only means the spill did not land on disk.
func (p *PendingCapture) PublishErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pubErr
}

// Source returns a streaming cursor over the capture: it yields segment
// 0's instructions as soon as that segment is published, blocking at
// each segment boundary until the next segment is ready — replay runs
// concurrently with the tail of the capture. The cursor stops early if a
// segment fails; use Wait to observe errors.
func (p *PendingCapture) Source() Source { return &pendingReplay{p: p} }

type pendingReplay struct {
	p   *PendingCapture
	k   int
	cur *Replay
}

func (r *pendingReplay) Next() (annotate.Inst, bool) {
	var out annotate.Inst
	ok := r.NextInto(&out)
	return out, ok
}

func (r *pendingReplay) NextInto(dst *annotate.Inst) bool {
	for {
		if r.cur != nil && r.cur.NextInto(dst) {
			return true
		}
		r.cur = nil
		if r.k >= r.p.Segments() {
			return false
		}
		s, err := r.p.Segment(r.k)
		r.k++
		if err != nil || s == nil {
			return false
		}
		r.cur = s.Replay()
	}
}

// CaptureSegmentedToFile runs a segmented capture that publishes each
// segment to "<base>.seg%04d" (temp file + atomic rename) the moment it
// completes, then writes the MLPCOLS2 manifest at base last — so a
// concurrent process sees either no trace or a complete one, while
// in-process consumers can stream segments as they land. Published
// segments are re-opened memory-mapped, keeping the builder's heap flat.
func CaptureSegmentedToFile(base string, spec SegSpec) *PendingCapture {
	spec.publish = func(k int, s *Stream) (*Stream, error) {
		dst := segmentPath(base, k)
		_, err := writeAtomic(filepath.Dir(base), ".acol-tmp-*", dst, func(f *os.File) error {
			return WriteColumnar(f, s)
		})
		if err != nil {
			return nil, err
		}
		ms, err := OpenColumnarFile(dst)
		if err != nil {
			// The published bytes are unreadable; treat as a publish
			// failure but keep the heap copy for the caller.
			return nil, err
		}
		return ms, nil
	}
	spec.finish = func(ss *SegStream) error {
		segBytes := make([]int64, ss.Segments())
		for k := range segBytes {
			fi, err := os.Stat(segmentPath(base, k))
			if err != nil {
				return err
			}
			segBytes[k] = fi.Size()
		}
		_, err := writeAtomic(filepath.Dir(base), ".acol-tmp-*", base, func(f *os.File) error {
			return writeManifest(f, ss, segBytes)
		})
		return err
	}
	return CaptureSegmented(spec)
}

package atrace

import (
	"bytes"
	"os"
	"sync/atomic"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/workload"
)

// TestPartialEvictionRebuildsOnlyMissing is the acceptance test for
// partial segment eviction: trim the tail of a segmented spill under
// the byte cap, then prove a fresh cache rebuilds ONLY the evicted
// segments — one warm pass for the contiguous run, not a full-trace
// rebuild — bit-identical to the originals, with the byte-cap index
// recharged to exactly the bytes on disk.
func TestPartialEvictionRebuildsOnlyMissing(t *testing.T) {
	dir := t.TempDir()
	w := workload.Presets(26)[0]
	key := Key{Workload: w, Annot: "segevict-rebuild", Warmup: testWarmup, Measure: testMeasure}
	hash := keyHash(key)
	mono := captureStream(t, w, annotate.Config{})

	var factoryCalls atomic.Int64
	spec := BuildSpec{
		NewAnnotator: func() *annotate.Annotator {
			factoryCalls.Add(1)
			return annotate.New(workload.MustNew(w), annotate.Config{})
		},
		Warmup:  testWarmup,
		Measure: testMeasure,
	}
	newSegCache := func() *Cache {
		c := NewCache()
		c.SetDir(dir)
		c.SetSegments(testMeasure/4, 2) // 4 segments
		return c
	}

	c1 := newSegCache()
	assertSameReplay(t, mono, c1.GetTrace(key, spec))
	d := newDiskCache(dir)
	base := d.spillPath(hash)
	origSeg := make(map[int][]byte)
	for k := 2; k <= 3; k++ {
		data, err := os.ReadFile(segmentPath(base, k))
		if err != nil {
			t.Fatalf("segment %d after build: %v", k, err)
		}
		origSeg[k] = data
	}
	callsFullBuild := factoryCalls.Load() // 2 capture workers

	// Trim exactly the last two segments off the tail.
	want := int64(len(origSeg[2]) + len(origSeg[3]))
	var freed int64
	d.withIndex(func(idx *indexFile) { freed = d.evictSegments(idx, hash, want) })
	if freed != want {
		t.Fatalf("evictSegments freed %d bytes, want %d", freed, want)
	}
	if n := d.segEvictions.Load(); n != 2 {
		t.Fatalf("%d segment evictions, want 2", n)
	}
	for k := 2; k <= 3; k++ {
		if _, err := os.Stat(segmentPath(base, k)); !os.IsNotExist(err) {
			t.Fatalf("segment %d still present after eviction: %v", k, err)
		}
	}
	for k := 0; k <= 1; k++ {
		if _, err := os.Stat(segmentPath(base, k)); err != nil {
			t.Fatalf("live segment %d disturbed by tail eviction: %v", k, err)
		}
	}
	ev := readEvicted(base)
	if len(ev) != 2 || !ev[2] || !ev[3] {
		t.Fatalf("sidecar names %v, want exactly {2,3}", ev)
	}

	// A fresh cache hits the hole and rebuilds only the missing run.
	c2 := newSegCache()
	before := factoryCalls.Load()
	assertSameReplay(t, mono, c2.GetTrace(key, spec))
	if delta := factoryCalls.Load() - before; delta != 1 {
		t.Errorf("rebuild used %d annotators, want 1 (one warm pass for the contiguous run [2,3])", delta)
	}
	st := c2.Stats()
	if st.SegRebuilds != 2 {
		t.Errorf("SegRebuilds = %d, want 2", st.SegRebuilds)
	}
	if st.Builds != 1 || st.DiskHits != 0 {
		t.Errorf("Builds=%d DiskHits=%d, want the rebuild counted as 1 build, 0 disk hits", st.Builds, st.DiskHits)
	}
	if st.Quarantined != 0 || st.DiskEvictions != 0 {
		t.Errorf("Quarantined=%d DiskEvictions=%d, want 0/0 — a hole is not corruption", st.Quarantined, st.DiskEvictions)
	}
	// Rebuilt segments are bit-identical to the originals.
	for k := 2; k <= 3; k++ {
		data, err := os.ReadFile(segmentPath(base, k))
		if err != nil {
			t.Fatalf("rebuilt segment %d: %v", k, err)
		}
		if !bytes.Equal(data, origSeg[k]) {
			t.Errorf("rebuilt segment %d differs from the original bytes", k)
		}
	}
	// Sidecar cleared, index recharged to exactly the bytes on disk.
	if evAfter := readEvicted(base); len(evAfter) != 0 {
		t.Errorf("sidecar still names %v after rebuild", evAfter)
	}
	wantBytes := d.spillBytes(hash)
	d.withIndex(func(idx *indexFile) {
		if e, ok := idx.Entries[hash]; !ok || e.Bytes != wantBytes {
			t.Errorf("index entry %+v, want exactly %d bytes (no double-charge)", e, wantBytes)
		}
	})

	// Third cache: the repaired spill is a plain disk hit, no annotator.
	c3 := newSegCache()
	before = factoryCalls.Load()
	assertSameReplay(t, mono, c3.GetTrace(key, spec))
	if delta := factoryCalls.Load() - before; delta != 0 {
		t.Errorf("disk hit after repair spawned %d annotators, want 0", delta)
	}
	if st := c3.Stats(); st.DiskHits != 1 || st.Builds != 0 {
		t.Errorf("DiskHits=%d Builds=%d after repair, want pure disk hit", st.DiskHits, st.Builds)
	}
	if callsFullBuild < 2 {
		t.Errorf("full build used %d annotators, expected at least the 2 capture workers", callsFullBuild)
	}
}

package atrace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Partial segment eviction.
//
// Whole-key LRU eviction throws away gigabytes to reclaim megabytes
// when the directory is barely over its cap. Segmented spills allow a
// finer move: remove only tail segments of a victim and leave a
// *rebuildable hole* — the manifest stays, a sidecar names the evicted
// segments, and the next reader re-captures just the missing windows
// (deterministic replay from the workload seed) instead of the whole
// key.
//
// Invariant: a segment file may be missing from disk only while the
// sidecar names it. The sidecar is written before the segment file is
// unlinked, so a crash between the two steps leaves a named-but-present
// segment (harmless: present wins); the reverse order could leave an
// anonymous hole, which readers must treat as corruption. A missing
// segment NOT named by the sidecar still quarantines the whole key.
//
// Sidecar layout: "<hash>.acol.evict", JSON {"evicted":[k,...]},
// written atomically and removed when the last hole is rebuilt.

// evictStateSuffix follows the spill extension: "<hash>.acol.evict".
const evictStateSuffix = ".evict"

type evictState struct {
	Evicted []int `json:"evicted"`
}

// readEvicted returns the set of segment indices the sidecar beside the
// manifest at base names as evicted; empty on absence or damage (a
// damaged sidecar just means holes quarantine as plain corruption).
func readEvicted(base string) map[int]bool {
	data, err := os.ReadFile(base + evictStateSuffix)
	if err != nil {
		return nil
	}
	var st evictState
	if json.Unmarshal(data, &st) != nil {
		return nil
	}
	ev := make(map[int]bool, len(st.Evicted))
	for _, k := range st.Evicted {
		ev[k] = true
	}
	return ev
}

// writeEvicted atomically replaces the sidecar beside base with ev; an
// empty set removes it.
func (d *diskCache) writeEvicted(base string, ev map[int]bool) error {
	path := base + evictStateSuffix
	if len(ev) == 0 {
		err := os.Remove(path)
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	st := evictState{Evicted: make([]int, 0, len(ev))}
	for k := range ev {
		st.Evicted = append(st.Evicted, k)
	}
	sort.Ints(st.Evicted)
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	_, err = writeAtomic(d.dir, tmpPrefix+"*", path, func(f *os.File) error {
		_, werr := f.Write(append(data, '\n'))
		return werr
	})
	return err
}

// SegmentsEvictedError reports that a segmented spill is structurally
// sound but has holes: the listed segments were evicted under the byte
// cap and can be rebuilt in place. It deliberately does not wrap
// ErrCorruptSpill — holes are expected state, not damage.
type SegmentsEvictedError struct {
	Missing []int
}

func (e *SegmentsEvictedError) Error() string {
	return fmt.Sprintf("atrace: %d segment(s) evicted %v; rebuild required", len(e.Missing), e.Missing)
}

// missingSegments parses the manifest at path and returns the indices
// of segment files absent from disk.
func missingSegments(path string) ([]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	man, err := parseManifest(data)
	if err != nil {
		return nil, err
	}
	var missing []int
	for k := range man.segN {
		if _, err := os.Stat(segmentPath(path, k)); os.IsNotExist(err) {
			missing = append(missing, k)
		}
	}
	return missing, nil
}

// evictedHole reports whether the spill at path fails to open only
// because of missing segments that are all named by the eviction
// sidecar — a rebuildable hole rather than corruption.
func (d *diskCache) evictedHole(path string) ([]int, bool) {
	ev := readEvicted(path)
	if len(ev) == 0 {
		return nil, false
	}
	missing, err := missingSegments(path)
	if err != nil || len(missing) == 0 {
		return nil, false
	}
	for _, k := range missing {
		if !ev[k] {
			return nil, false
		}
	}
	return missing, true
}

// evictSegments removes tail segments of h's spill until want bytes are
// freed, updating the sidecar before unlinking (see the invariant
// above) and h's index entry after. Segment 0 always stays live so the
// key keeps a replayable head, and monolithic spills free nothing.
// Returns the bytes actually freed.
func (d *diskCache) evictSegments(idx *indexFile, h string, want int64) int64 {
	base := d.spillPath(h)
	if !IsSegmentedFile(base) {
		return 0
	}
	data, err := os.ReadFile(base)
	if err != nil {
		return 0
	}
	man, err := parseManifest(data)
	if err != nil {
		return 0
	}
	ev := readEvicted(base)
	if ev == nil {
		ev = make(map[int]bool)
	}
	var plan []int
	var freed int64
	for k := len(man.segN) - 1; k >= 1 && freed < want; k-- {
		if ev[k] {
			continue
		}
		fi, err := os.Stat(segmentPath(base, k))
		if err != nil {
			continue
		}
		plan = append(plan, k)
		freed += fi.Size()
	}
	if len(plan) == 0 {
		return 0
	}
	for _, k := range plan {
		ev[k] = true
	}
	if err := d.writeEvicted(base, ev); err != nil {
		return 0
	}
	for _, k := range plan {
		os.Remove(segmentPath(base, k))
		d.segEvictions.Add(1)
	}
	if e, ok := idx.Entries[h]; ok {
		if e.Bytes -= freed; e.Bytes < 0 {
			e.Bytes = 0
		}
		idx.Entries[h] = e
	}
	return freed
}

// rebuildSegments re-captures exactly the missing segments of hash's
// spill in place, then strictly re-opens and revalidates the whole key.
// The manifest is the authority for geometry (segment sizes may predate
// the current SetSegments configuration), and the rebuilt bytes must
// match its recorded per-segment sizes exactly — determinism is what
// makes holes cheap, and a size mismatch means spec no longer describes
// the spill (caller quarantines and rebuilds fully). Contiguous runs of
// holes share one annotator: warm over the prefix once, then capture
// segment after segment with a stats reset at each boundary, exactly
// like a capture worker — so rebuilt segments are bit-identical to the
// originals.
func (d *diskCache) rebuildSegments(hash string, key Key, spec SegSpec, missing []int) (Trace, error) {
	base := d.spillPath(hash)
	data, err := os.ReadFile(base)
	if err != nil {
		return nil, err
	}
	man, err := parseManifest(data)
	if err != nil {
		return nil, err
	}
	if man.firstIndex != spec.Warmup || man.n != spec.Measure {
		return nil, fmt.Errorf("atrace: spill window [%d, +%d) does not match spec [%d, +%d)",
			man.firstIndex, man.n, spec.Warmup, spec.Measure)
	}
	for i := 0; i < len(missing); {
		// Contiguous run [missing[i], missing[j-1]].
		j := i + 1
		for j < len(missing) && missing[j] == missing[j-1]+1 {
			j++
		}
		a := spec.NewAnnotator()
		skip := man.firstIndex + int64(missing[i])*man.segInsts
		if a.Warm(skip); a.Position() != skip {
			return nil, fmt.Errorf("atrace: source ended during rebuild warm-up (%d of %d instructions)", a.Position(), skip)
		}
		for _, k := range missing[i:j] {
			if k > missing[i] {
				a.ResetStats()
			}
			s := Capture(a, man.segN[k])
			if s.Len() != man.segN[k] {
				return nil, fmt.Errorf("atrace: rebuilt segment %d captured %d instructions, want %d", k, s.Len(), man.segN[k])
			}
			size, err := writeAtomic(d.dir, tmpPrefix+"*", segmentPath(base, k), func(f *os.File) error {
				return WriteColumnar(f, s)
			})
			if err != nil {
				return nil, err
			}
			if size != man.segBytes[k] {
				return nil, fmt.Errorf("atrace: rebuilt segment %d is %d bytes, manifest promises %d (non-deterministic build spec?)", k, size, man.segBytes[k])
			}
			d.segRebuilds.Add(1)
		}
		i = j
	}
	// Strict reopen: CRCs, geometry and aggregate stats all re-checked.
	t, err := OpenSpill(base)
	if err != nil {
		return nil, err
	}
	// Clear the rebuilt holes from the sidecar and re-charge the bytes —
	// entry.Bytes is recomputed from disk, so eviction accounting cannot
	// drift (no double-charge, no under-count).
	d.withIndex(func(idx *indexFile) {
		ev := readEvicted(base)
		for _, k := range missing {
			delete(ev, k)
		}
		d.writeEvicted(base, ev)
		e, ok := idx.Entries[hash]
		if !ok {
			e = indexEntry{Key: key.String()}
		}
		e.Bytes = d.spillBytes(hash)
		e.LastUsed = time.Now().UnixNano()
		idx.Entries[hash] = e
		d.evictIndexed(idx, hash, 0)
	})
	return t, nil
}

package atrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"unsafe"
)

// Columnar spill format ("MLPCOLS1"): the on-disk twin of Stream's
// struct-of-arrays layout, designed so a reader can memory-map the file
// and use the column sections in place — replay then reads pages straight
// from the OS page cache instead of resident Go heap.
//
// Layout (all integers little-endian):
//
//	0   8  magic "MLPCOLS1"
//	8   4  uint32 header length H (payload start, 8-byte aligned)
//	12  1  lineShift
//	13  3  padding (zero)
//	16  8  int64  firstIndex
//	24  8  int64  n (instruction count)
//	32  8  int64  total file size (truncation check)
//	40  4  uint32 CRC-32C (Castagnoli) of file[H:] (corruption check)
//	44  4  uint32 meta blob length M
//	48  M  meta blob (same uvarint encoding as the v2 trace header)
//	48+M   16 x (uint64 offset, uint64 length) section table
//	H  ...  sections, each 8-byte aligned, zero padded between
//
// Sections, in order: class, src1, src2, dst, vpo (n bytes each); the
// seven packed event bitsets (ceil(n/64) uint64 words each, stored
// little-endian); pc, ea, tgt, val (varint byte columns).
const (
	colMagic      = "MLPCOLS1"
	colHeaderMin  = 48
	colSectionCnt = 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptSpill marks a columnar spill file that is structurally
// invalid, truncated, or fails its checksum. The disk cache quarantines
// such files and rebuilds instead of crashing.
var ErrCorruptSpill = errors.New("atrace: corrupt columnar spill")

func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrCorruptSpill, fmt.Sprintf(format, args...))
}

// mapping owns the backing bytes of a columnar stream: either a read-only
// memory mapping (unmapped when released) or a plain heap buffer on
// platforms without mmap support.
type mapping struct {
	data []byte
	heap bool
}

func (m *mapping) release() {
	if m == nil || m.heap || m.data == nil {
		return
	}
	munmap(m.data)
	m.data = nil
}

// hostLittleEndian gates the zero-copy []byte -> []uint64 bitset views:
// the format stores bitset words little-endian, so big-endian hosts
// decode them into heap copies instead.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func align8(n int64) int64 { return (n + 7) &^ 7 }

// colSections lists the stream's sections in file order. The returned
// slices alias the stream.
func colSections(s *Stream) [colSectionCnt][]byte {
	u64 := func(ws []uint64) []byte {
		if len(ws) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&ws[0])), 8*len(ws))
	}
	return [colSectionCnt][]byte{
		s.class, s.src1, s.src2, s.dst, s.vpo,
		u64(s.dmiss), u64(s.pmiss), u64(s.imiss), u64(s.smiss),
		u64(s.mispred), u64(s.taken), u64(s.hasTgt),
		s.pc, s.ea, s.tgt, s.val,
	}
}

// WriteColumnar writes the stream to w in the columnar spill format.
// On big-endian hosts the bitset words are byte-swapped to the on-disk
// little-endian order.
func WriteColumnar(w io.Writer, s *Stream) error {
	meta := encodeMeta(s)
	secs := colSections(s)
	if !hostLittleEndian {
		for i := 5; i < 12; i++ {
			secs[i] = swapWords(secs[i])
		}
	}

	headerLen := align8(colHeaderMin + int64(len(meta)) + colSectionCnt*16)
	var table [colSectionCnt][2]uint64
	off := headerLen
	for i, sec := range secs {
		table[i][0] = uint64(off)
		table[i][1] = uint64(len(sec))
		off = align8(off + int64(len(sec)))
	}
	fileSize := off

	var pad [8]byte
	crc := uint32(0)
	pos := headerLen
	for _, sec := range secs {
		crc = crc32.Update(crc, crcTable, sec)
		pos += int64(len(sec))
		if gap := align8(pos) - pos; gap > 0 {
			crc = crc32.Update(crc, crcTable, pad[:gap])
			pos += gap
		}
	}

	hdr := make([]byte, colHeaderMin, headerLen)
	copy(hdr, colMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(headerLen))
	hdr[12] = s.lineShift
	binary.LittleEndian.PutUint64(hdr[16:], uint64(s.firstIndex))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(s.n))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(fileSize))
	binary.LittleEndian.PutUint32(hdr[40:], crc)
	binary.LittleEndian.PutUint32(hdr[44:], uint32(len(meta)))
	hdr = append(hdr, meta...)
	for _, te := range table {
		hdr = binary.LittleEndian.AppendUint64(hdr, te[0])
		hdr = binary.LittleEndian.AppendUint64(hdr, te[1])
	}
	hdr = append(hdr, make([]byte, headerLen-int64(len(hdr)))...)

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	pos = headerLen
	for _, sec := range secs {
		if _, err := bw.Write(sec); err != nil {
			return err
		}
		pos += int64(len(sec))
		if gap := align8(pos) - pos; gap > 0 {
			if _, err := bw.Write(pad[:gap]); err != nil {
				return err
			}
			pos += gap
		}
	}
	return bw.Flush()
}

// swapWords returns a copy of an 8-byte-aligned section with each uint64
// word byte-swapped (big-endian host <-> little-endian file).
func swapWords(b []byte) []byte {
	out := make([]byte, len(b))
	for i := 0; i+8 <= len(b); i += 8 {
		v := *(*uint64)(unsafe.Pointer(&b[i]))
		binary.LittleEndian.PutUint64(out[i:], v)
	}
	return out
}

// WriteColumnarFile writes the stream to path in the columnar format.
func WriteColumnarFile(path string, s *Stream) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteColumnar(f, s); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// OpenColumnarFile opens a columnar spill, validating its size, structure
// and checksum. On unix the column sections are views over a read-only
// memory mapping (released by a finalizer when the stream becomes
// unreachable); elsewhere the file is read into the heap. Corruption or
// truncation returns an error wrapping ErrCorruptSpill.
func OpenColumnarFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < colHeaderMin {
		return nil, corruptf("%s: %d bytes, below minimum header", path, size)
	}

	m, err := mmapFile(f, size)
	if err != nil {
		m, err = readFileMapping(f, size)
		if err != nil {
			return nil, err
		}
	}
	s, err := streamFromColumnar(m.data)
	if err != nil {
		m.release()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.mapped = m
	if !m.heap {
		runtime.SetFinalizer(s, func(s *Stream) { s.mapped.release() })
	}
	return s, nil
}

// readFileMapping is the portable fallback: the whole file read into one
// 8-byte-aligned heap buffer.
func readFileMapping(f *os.File, size int64) (*mapping, error) {
	words := make([]uint64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, corruptf("short read: %v", err)
	}
	return &mapping{data: buf, heap: true}, nil
}

// streamFromColumnar builds a Stream whose columns are views into data.
func streamFromColumnar(data []byte) (*Stream, error) {
	if string(data[:8]) != colMagic {
		return nil, corruptf("bad magic %q", data[:8])
	}
	headerLen := int64(binary.LittleEndian.Uint32(data[8:]))
	lineShift := data[12]
	firstIndex := int64(binary.LittleEndian.Uint64(data[16:]))
	n := int64(binary.LittleEndian.Uint64(data[24:]))
	fileSize := int64(binary.LittleEndian.Uint64(data[32:]))
	wantCRC := binary.LittleEndian.Uint32(data[40:])
	metaLen := int64(binary.LittleEndian.Uint32(data[44:]))

	if fileSize != int64(len(data)) {
		return nil, corruptf("header promises %d bytes, file has %d (truncated?)", fileSize, len(data))
	}
	if n < 0 || lineShift > 63 {
		return nil, corruptf("invalid geometry n=%d shift=%d", n, lineShift)
	}
	tableOff := colHeaderMin + metaLen
	if metaLen < 0 || metaLen > 1<<20 || align8(tableOff+colSectionCnt*16) != headerLen || headerLen > fileSize {
		return nil, corruptf("invalid header geometry (meta %d bytes, header %d)", metaLen, headerLen)
	}
	if got := crc32.Checksum(data[headerLen:], crcTable); got != wantCRC {
		return nil, corruptf("checksum mismatch (want %08x, got %08x)", wantCRC, got)
	}

	meta, err := decodeMeta(data[colHeaderMin:tableOff])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSpill, err)
	}
	if meta.n != n || meta.firstIndex != firstIndex || meta.lineShift != lineShift {
		return nil, corruptf("meta blob disagrees with header geometry")
	}

	var secs [colSectionCnt][]byte
	pos := headerLen
	for i := 0; i < colSectionCnt; i++ {
		off := int64(binary.LittleEndian.Uint64(data[tableOff+int64(i)*16:]))
		length := int64(binary.LittleEndian.Uint64(data[tableOff+int64(i)*16+8:]))
		if off != pos || length < 0 || off+length > fileSize {
			return nil, corruptf("section %d out of bounds (off %d len %d)", i, off, length)
		}
		secs[i] = data[off : off+length : off+length]
		pos = align8(off + length)
	}
	words := bitsetWords(n)
	for i := 0; i < 5; i++ {
		if int64(len(secs[i])) != n {
			return nil, corruptf("fixed column %d has %d bytes, want %d", i, len(secs[i]), n)
		}
	}
	for i := 5; i < 12; i++ {
		if int64(len(secs[i])) != 8*words {
			return nil, corruptf("bitset %d has %d bytes, want %d", i, len(secs[i]), 8*words)
		}
	}

	s := &Stream{n: n, firstIndex: firstIndex, lineShift: lineShift}
	meta.apply(s)
	s.class, s.src1, s.src2, s.dst, s.vpo = secs[0], secs[1], secs[2], secs[3], secs[4]
	s.dmiss = bitsetSection(secs[5])
	s.pmiss = bitsetSection(secs[6])
	s.imiss = bitsetSection(secs[7])
	s.smiss = bitsetSection(secs[8])
	s.mispred = bitsetSection(secs[9])
	s.taken = bitsetSection(secs[10])
	s.hasTgt = bitsetSection(secs[11])
	s.pc, s.ea, s.tgt, s.val = secs[12], secs[13], secs[14], secs[15]
	return s, nil
}

// bitsetSection interprets an 8-byte-aligned little-endian section as
// []uint64: zero-copy on little-endian hosts, decoded copy otherwise.
func bitsetSection(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// IsColumnarFile reports whether path starts with the columnar magic.
// Unreadable files return false and fail later with a real error.
func IsColumnarFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false
	}
	return string(hdr[:]) == colMagic
}

package atrace

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/cyclesim"
	"mlpsim/internal/mem"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/workload"
)

// openColumnarHeap opens a spill through the portable read-into-heap
// fallback, bypassing mmap, so tests can compare both paths on one host.
func openColumnarHeap(t *testing.T, path string) *Stream {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	m, err := readFileMapping(f, fi.Size())
	if err != nil {
		t.Fatalf("readFileMapping: %v", err)
	}
	s, err := streamFromColumnar(m.data)
	if err != nil {
		t.Fatalf("streamFromColumnar: %v", err)
	}
	s.mapped = m
	return s
}

// assertSameReplay drains both streams and fails on the first difference.
func assertSameReplay(t *testing.T, want, got Trace) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("stream length %d, want %d", got.Len(), want.Len())
	}
	if got.Stats() != want.Stats() {
		t.Errorf("stats %+v, want %+v", got.Stats(), want.Stats())
	}
	rw, rg := want.Source(), got.Source()
	for i := int64(0); ; i++ {
		wi, wok := rw.Next()
		gi, gok := rg.Next()
		if wok != gok {
			t.Fatalf("inst %d: replays end at different points (want ok=%t, got ok=%t)", i, wok, gok)
		}
		if !wok {
			return
		}
		if gi != wi {
			t.Fatalf("inst %d: got %+v, want %+v", i, gi, wi)
		}
	}
}

// TestColumnarRoundTrip: a spill opened from disk — memory-mapped where
// the platform allows, and through the heap fallback — replays
// bit-identically to the in-heap stream that produced it, including the
// prefetcher statistics carried in the metadata.
func TestColumnarRoundTrip(t *testing.T) {
	w := workload.Strided(9)
	acfg := annotate.Config{
		IPrefetch: prefetch.NewSequential(4, mem.IFetch),
		DPrefetch: prefetch.NewStride(1024, 4),
	}
	s := captureStream(t, w, acfg)
	path := filepath.Join(t.TempDir(), "s"+spillExt)
	if err := WriteColumnarFile(path, s); err != nil {
		t.Fatalf("WriteColumnarFile: %v", err)
	}
	if !IsColumnarFile(path) {
		t.Error("IsColumnarFile is false for a fresh spill")
	}

	mapped, err := OpenColumnarFile(path)
	if err != nil {
		t.Fatalf("OpenColumnarFile: %v", err)
	}
	assertSameReplay(t, s, mapped)
	heap := openColumnarHeap(t, path)
	assertSameReplay(t, s, heap)

	for name, got := range map[string]*Stream{"mapped": mapped, "heap": heap} {
		if ist, ok := got.IPrefetchStats(); !ok || ist != mustIPF(t, s) {
			t.Errorf("%s: I-prefetch stats %+v ok=%t, want %+v", name, ist, ok, mustIPF(t, s))
		}
		if dst, ok := got.DPrefetchStats(); !ok || dst != mustDPF(t, s) {
			t.Errorf("%s: D-prefetch stats %+v ok=%t, want %+v", name, dst, ok, mustDPF(t, s))
		}
	}
	if mapped.Mapped() && mapped.MemBytes() >= s.MemBytes() {
		t.Errorf("mapped stream reports %d heap bytes, want far below the in-heap %d", mapped.MemBytes(), s.MemBytes())
	}
}

func mustIPF(t *testing.T, s *Stream) prefetch.Stats {
	t.Helper()
	st, ok := s.IPrefetchStats()
	if !ok {
		t.Fatal("source stream carries no I-prefetch stats")
	}
	return st
}

func mustDPF(t *testing.T, s *Stream) prefetch.Stats {
	t.Helper()
	st, ok := s.DPrefetchStats()
	if !ok {
		t.Fatal("source stream carries no D-prefetch stats")
	}
	return st
}

// TestColumnarEngineGolden: for every workload preset, both engines
// produce bit-identical results whether they replay the in-heap stream,
// the memory-mapped spill, or the heap-fallback load of the same spill.
func TestColumnarEngineGolden(t *testing.T) {
	for _, w := range workload.Presets(13) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			s := captureStream(t, w, annotate.Config{})
			path := filepath.Join(t.TempDir(), "s"+spillExt)
			if err := WriteColumnarFile(path, s); err != nil {
				t.Fatal(err)
			}
			mapped, err := OpenColumnarFile(path)
			if err != nil {
				t.Fatal(err)
			}
			heap := openColumnarHeap(t, path)

			cfg := core.Default().WithIssue(core.ConfigD).WithRunahead()
			want := core.NewEngine(s.Replay(), cfg).Run()
			ccfg := cyclesim.Default(400)
			cwant := cyclesim.New(s.Replay(), ccfg).Run()
			for name, st := range map[string]*Stream{"mapped": mapped, "heap": heap} {
				if got := core.NewEngine(st.Replay(), cfg).Run(); !reflect.DeepEqual(got, want) {
					t.Errorf("%s replay core result differs\ngot:  %+v\nwant: %+v", name, got, want)
				}
				if got := cyclesim.New(st.Replay(), ccfg).Run(); !reflect.DeepEqual(got, cwant) {
					t.Errorf("%s replay cyclesim result differs\ngot:  %+v\nwant: %+v", name, got, cwant)
				}
			}
		})
	}
}

// corruptOneSpill flips a byte in the directory's single spill file and
// returns its path.
func corruptOneSpill(t *testing.T, dir string) string {
	t.Helper()
	spills, err := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if err != nil || len(spills) != 1 {
		t.Fatalf("want exactly one spill, got %v (err %v)", spills, err)
	}
	b, err := os.ReadFile(spills[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(spills[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	return spills[0]
}

// TestCorruptSpillQuarantined: a spill with a flipped byte fails its
// checksum on open, is moved aside rather than deleted, and the key is
// rebuilt and republished.
func TestCorruptSpillQuarantined(t *testing.T) {
	dir := t.TempDir()
	w := workload.Presets(8)[0]
	key := Key{Workload: w, Annot: "corrupt", Warmup: testWarmup, Measure: testMeasure}
	// Heap-resident reference: the cached copies are memory-mapped over the
	// spill this test is about to damage, so they cannot serve as oracle.
	ref := captureStream(t, w, annotate.Config{})

	c1 := NewCache()
	c1.SetDir(dir)
	c1.Get(key, func() *Stream { return captureStream(t, w, annotate.Config{}) })
	path := corruptOneSpill(t, dir)

	if _, err := OpenColumnarFile(path); !errors.Is(err, ErrCorruptSpill) {
		t.Fatalf("open of corrupted spill: err %v, want ErrCorruptSpill", err)
	}

	c2 := NewCache()
	c2.SetDir(dir)
	var rebuilt bool
	s2 := c2.Get(key, func() *Stream { rebuilt = true; return captureStream(t, w, annotate.Config{}) })
	if !rebuilt {
		t.Fatal("corrupted spill was served instead of rebuilt")
	}
	assertSameReplay(t, ref, s2)
	if st := c2.Stats(); st.Quarantined != 1 {
		t.Errorf("quarantined %d, want 1 (stats %+v)", st.Quarantined, st)
	}
	moved, _ := filepath.Glob(filepath.Join(dir, "*.corrupt.*"))
	if len(moved) != 1 {
		t.Errorf("quarantine files %v, want exactly one", moved)
	}
	// The rebuild must have republished a valid spill.
	c3 := NewCache()
	c3.SetDir(dir)
	c3.Get(key, func() *Stream { t.Error("republished spill missing; rebuilt again"); return ref })
	if st := c3.Stats(); st.DiskHits != 1 {
		t.Errorf("post-quarantine disk hits %d, want 1", st.DiskHits)
	}
}

// TestTruncatedSpillQuarantined: a spill cut short (e.g. by a full disk or
// a killed writer that bypassed the atomic rename) is detected by the
// recorded file size and quarantined.
func TestTruncatedSpillQuarantined(t *testing.T) {
	dir := t.TempDir()
	w := workload.Presets(8)[1]
	key := Key{Workload: w, Annot: "trunc", Warmup: testWarmup, Measure: testMeasure}

	c1 := NewCache()
	c1.SetDir(dir)
	c1.Get(key, func() *Stream { return captureStream(t, w, annotate.Config{}) })
	spills, _ := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if len(spills) != 1 {
		t.Fatalf("want one spill, got %v", spills)
	}
	fi, err := os.Stat(spills[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(spills[0], fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenColumnarFile(spills[0]); !errors.Is(err, ErrCorruptSpill) {
		t.Fatalf("open of truncated spill: err %v, want ErrCorruptSpill", err)
	}
	c2 := NewCache()
	c2.SetDir(dir)
	var rebuilt bool
	c2.Get(key, func() *Stream { rebuilt = true; return captureStream(t, w, annotate.Config{}) })
	if !rebuilt {
		t.Fatal("truncated spill was served instead of rebuilt")
	}
	if st := c2.Stats(); st.Quarantined != 1 {
		t.Errorf("quarantined %d, want 1", st.Quarantined)
	}
}

// TestDiskEviction: the spill directory respects its byte cap, evicting
// least-recently-used spills but never the one just published.
func TestDiskEviction(t *testing.T) {
	dir := t.TempDir()
	w := workload.Presets(4)[0]
	mkKey := func(i int) (Key, workload.Config) {
		cfg := w
		cfg.Seed = int64(i + 200)
		return Key{Workload: cfg, Annot: "evict", Warmup: 1000, Measure: 20_000}, cfg
	}
	build := func(cfg workload.Config) *Stream {
		a := annotate.New(workload.MustNew(cfg), annotate.Config{})
		a.Warm(1000)
		return Capture(a, 20_000)
	}

	c := NewCache()
	c.SetDir(dir)
	k0, w0 := mkKey(0)
	c.Get(k0, func() *Stream { return build(w0) })
	fi, err := os.Stat(filepath.Join(dir, keyHash(k0)+spillExt))
	if err != nil {
		t.Fatalf("first spill not published: %v", err)
	}
	// Cap fits ~1.5 spills: publishing the second must evict the first.
	c.SetDiskCapBytes(fi.Size() + fi.Size()/2)
	k1, w1 := mkKey(1)
	c.Get(k1, func() *Stream { return build(w1) })

	if _, err := os.Stat(filepath.Join(dir, keyHash(k1)+spillExt)); err != nil {
		t.Errorf("just-published spill evicted: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, keyHash(k0)+spillExt)); !os.IsNotExist(err) {
		t.Errorf("LRU spill still present (err %v), want evicted", err)
	}
	if st := c.Stats(); st.DiskEvictions != 1 {
		t.Errorf("disk evictions %d, want 1", st.DiskEvictions)
	}
}

// TestOpenColumnarRejectsGarbage covers the structural validations that
// run before the checksum: bad magic and impossible header fields.
func TestOpenColumnarRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, blob := range map[string][]byte{
		"empty":     {},
		"short":     []byte("MLPCOLS1"),
		"bad-magic": append([]byte("NOTMYFMT"), make([]byte, 256)...),
		"zeros":     make([]byte, 512),
	} {
		path := filepath.Join(dir, name+spillExt)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenColumnarFile(path); !errors.Is(err, ErrCorruptSpill) {
			t.Errorf("%s: err %v, want ErrCorruptSpill", name, err)
		}
		// IsColumnarFile only sniffs the magic, so "short" legitimately
		// passes the sniff; everything else must fail it.
		if name != "short" && IsColumnarFile(path) {
			t.Errorf("%s: IsColumnarFile true, want false", name)
		}
	}
}

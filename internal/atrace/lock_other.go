//go:build !unix

package atrace

import (
	"os"
	"time"
)

// staleLockAge bounds how long a fallback lock file is honoured: a
// process that died while holding the lock would otherwise wedge every
// later run. Annotation builds finish well inside this window.
const staleLockAge = 10 * time.Minute

// lockFile emulates an exclusive lock with O_CREATE|O_EXCL polling on
// platforms without flock. Unlike flock, the lock is identified by file
// existence, so crashed holders leave the file behind; locks older than
// staleLockAge are broken.
func lockFile(path string) (unlock func(), err error) {
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(path) }, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		if fi, serr := os.Stat(path); serr == nil && time.Since(fi.ModTime()) > staleLockAge {
			os.Remove(path)
			continue
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// sweepLockFile removes a stale fallback lock file. Existence IS the
// lock here, so only files past the stale age (which lockFile would
// break anyway) are safe to unlink.
func sweepLockFile(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || time.Since(fi.ModTime()) <= staleLockAge {
		return false
	}
	return os.Remove(path) == nil
}

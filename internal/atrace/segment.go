package atrace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"mlpsim/internal/annotate"
	"mlpsim/internal/prefetch"
)

// Segmented spill format ("MLPCOLS2"): a manifest plus K per-segment
// column files, sharding one annotated window into fixed-size segments.
// Each segment is a complete, self-validating MLPCOLS1 file (CRC'd and
// individually mmap-able), so segments can be published as capture
// finishes them and replay can start streaming segment 0 while later
// segments are still being built. The manifest is written last — its
// atomic rename is what makes the whole trace visible to other processes.
//
// Manifest layout (all integers little-endian):
//
//	0   8  magic "MLPCOLS2"
//	8   4  uint32 manifest file size (truncation check)
//	12  4  uint32 CRC-32C (Castagnoli) of file[16:]
//	16  1  lineShift
//	17  3  padding (zero)
//	20  4  uint32 K (segment count, >= 1)
//	24  8  int64  firstIndex
//	32  8  int64  n (total instruction count)
//	40  8  int64  segInsts (nominal instructions per segment)
//	48  4  uint32 aggregate meta blob length M
//	52  M  aggregate meta blob (same uvarint encoding as MLPCOLS1)
//	52+M   K x (int64 n_k, int64 bytes_k) segment records
//
// Segment k lives beside the manifest as "<manifest>.seg%04d". Segment
// boundary rule: segment k's stream starts at dynamic index
// firstIndex + k*segInsts, carries exactly the annotator-statistics
// *delta* over its own window, and the prefetcher statistics cumulative
// through its end — so the aggregate stats are the sum of segment deltas
// and the last segment's prefetcher counters, bit-identical to one
// monolithic pass.
const (
	segMagic     = "MLPCOLS2"
	segHeaderMin = 52
	segMaxCount  = 1 << 20
)

var segSuffixRe = regexp.MustCompile(`\.seg\d{4}$`)

// segmentPath names segment k of the manifest at base.
func segmentPath(base string, k int) string { return fmt.Sprintf("%s.seg%04d", base, k) }

// segmentFiles lists the existing segment files beside the manifest at
// base, in unspecified order.
func segmentFiles(base string) []string {
	matches, err := filepath.Glob(base + ".seg*")
	if err != nil {
		return nil
	}
	var out []string
	for _, m := range matches {
		if segSuffixRe.MatchString(m) {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// addStats accumulates one segment's annotator-statistics delta.
func addStats(a, b annotate.Stats) annotate.Stats {
	a.Instructions += b.Instructions
	a.DMisses += b.DMisses
	a.PMisses += b.PMisses
	a.IMisses += b.IMisses
	a.OffChip += b.OffChip
	a.SMisses += b.SMisses
	a.Branches += b.Branches
	a.Mispredicts += b.Mispredicts
	a.Prefetches += b.Prefetches
	a.PrefetchUsed += b.PrefetchUsed
	a.VP.Correct += b.VP.Correct
	a.VP.Wrong += b.VP.Wrong
	a.VP.NoPredict += b.VP.NoPredict
	return a
}

// SegStream is a Trace chaining contiguous segment Streams. It reports
// aggregate statistics (sum of per-segment deltas; prefetcher counters
// from the final segment) and replays the segments back to back,
// bit-identical to the monolithic Stream over the same window.
type SegStream struct {
	segs       []*Stream
	n          int64
	firstIndex int64
	lineShift  uint8
	segInsts   int64

	stats              annotate.Stats
	ipfStats, dpfStats prefetch.Stats
	hasIPF, hasDPF     bool
}

// NewSegStream assembles contiguous segments into one trace. segInsts is
// the nominal per-segment instruction count (only the last segment may be
// shorter). It validates contiguity: segment k must start exactly where
// segment k-1 ended.
func NewSegStream(segs []*Stream, segInsts int64) (*SegStream, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("atrace: segmented stream needs at least one segment")
	}
	ss := &SegStream{
		segs:       segs,
		firstIndex: segs[0].FirstIndex(),
		lineShift:  segs[0].LineShift(),
		segInsts:   segInsts,
	}
	next := ss.firstIndex
	for k, s := range segs {
		if s.LineShift() != ss.lineShift {
			return nil, fmt.Errorf("atrace: segment %d line shift %d != %d", k, s.LineShift(), ss.lineShift)
		}
		if s.Len() > 0 && s.FirstIndex() != next {
			return nil, fmt.Errorf("atrace: segment %d starts at %d, want %d (gap or overlap)", k, s.FirstIndex(), next)
		}
		next = s.FirstIndex() + s.Len()
		ss.n += s.Len()
		ss.stats = addStats(ss.stats, s.Stats())
	}
	last := segs[len(segs)-1]
	ss.ipfStats, ss.hasIPF = last.IPrefetchStats()
	ss.dpfStats, ss.hasDPF = last.DPrefetchStats()
	return ss, nil
}

// Len returns the total instruction count across all segments.
func (ss *SegStream) Len() int64 { return ss.n }

// FirstIndex returns the dynamic index of the first instruction.
func (ss *SegStream) FirstIndex() int64 { return ss.firstIndex }

// LineShift returns log2 of the L2 line size used to derive Line/ILine.
func (ss *SegStream) LineShift() uint8 { return ss.lineShift }

// Stats returns the aggregate annotator statistics over the whole window
// (the sum of the per-segment deltas).
func (ss *SegStream) Stats() annotate.Stats { return ss.stats }

// IPrefetchStats returns the instruction-prefetcher statistics through
// the end of the window (the final segment's cumulative counters).
func (ss *SegStream) IPrefetchStats() (prefetch.Stats, bool) { return ss.ipfStats, ss.hasIPF }

// DPrefetchStats returns the data-prefetcher statistics through the end
// of the window.
func (ss *SegStream) DPrefetchStats() (prefetch.Stats, bool) { return ss.dpfStats, ss.hasDPF }

// MemBytes sums the segments' footprints for cache accounting.
func (ss *SegStream) MemBytes() int64 {
	var b int64
	for _, s := range ss.segs {
		b += s.MemBytes()
	}
	return b + 256
}

// Mapped reports whether every segment is a view over a memory-mapped
// spill file.
func (ss *SegStream) Mapped() bool {
	for _, s := range ss.segs {
		if !s.Mapped() {
			return false
		}
	}
	return true
}

// Segments returns the number of segments.
func (ss *SegStream) Segments() int { return len(ss.segs) }

// Segment returns segment k.
func (ss *SegStream) Segment(k int) *Stream { return ss.segs[k] }

// SegmentInsts returns the nominal per-segment instruction count.
func (ss *SegStream) SegmentInsts() int64 { return ss.segInsts }

// Source returns a fresh cursor chaining the segments in order.
func (ss *SegStream) Source() Source { return &SegReplay{segs: ss.segs} }

func (ss *SegStream) metaInfo() metaInfo {
	return metaInfo{
		lineShift: ss.lineShift, firstIndex: ss.firstIndex, n: ss.n, stats: ss.stats,
		ipfStats: ss.ipfStats, dpfStats: ss.dpfStats, hasIPF: ss.hasIPF, hasDPF: ss.hasDPF,
	}
}

// SegReplay is a zero-allocation cursor chaining segment replays; it
// yields exactly the instruction sequence a monolithic Replay would.
type SegReplay struct {
	segs []*Stream
	k    int
	cur  *Replay
}

// Next returns the next annotated instruction.
func (r *SegReplay) Next() (annotate.Inst, bool) {
	var out annotate.Inst
	ok := r.NextInto(&out)
	return out, ok
}

// NextInto decodes the next instruction into *dst, advancing across
// segment boundaries transparently.
func (r *SegReplay) NextInto(dst *annotate.Inst) bool {
	for {
		if r.cur != nil && r.cur.NextInto(dst) {
			return true
		}
		if r.k >= len(r.segs) {
			return false
		}
		r.cur = r.segs[r.k].Replay()
		r.k++
	}
}

// writeManifest renders the MLPCOLS2 manifest for ss, whose segment files
// occupy segBytes[k] bytes each.
func writeManifest(w io.Writer, ss *SegStream, segBytes []int64) error {
	if len(segBytes) != len(ss.segs) {
		return fmt.Errorf("atrace: %d segment sizes for %d segments", len(segBytes), len(ss.segs))
	}
	meta := encodeMetaInfo(ss.metaInfo())
	size := segHeaderMin + len(meta) + 16*len(ss.segs)
	buf := make([]byte, segHeaderMin, size)
	copy(buf, segMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(size))
	buf[16] = ss.lineShift
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(ss.segs)))
	binary.LittleEndian.PutUint64(buf[24:], uint64(ss.firstIndex))
	binary.LittleEndian.PutUint64(buf[32:], uint64(ss.n))
	binary.LittleEndian.PutUint64(buf[40:], uint64(ss.segInsts))
	binary.LittleEndian.PutUint32(buf[48:], uint32(len(meta)))
	buf = append(buf, meta...)
	for k, s := range ss.segs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Len()))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(segBytes[k]))
	}
	binary.LittleEndian.PutUint32(buf[12:], crc32.Checksum(buf[16:], crcTable))
	_, err := w.Write(buf)
	return err
}

// segManifest is the decoded manifest of a segmented spill.
type segManifest struct {
	lineShift  uint8
	firstIndex int64
	n          int64
	segInsts   int64
	meta       metaInfo
	segN       []int64
	segBytes   []int64
}

func parseManifest(data []byte) (*segManifest, error) {
	if len(data) < segHeaderMin || string(data[:8]) != segMagic {
		return nil, corruptf("not a segmented manifest")
	}
	size := int64(binary.LittleEndian.Uint32(data[8:]))
	if size != int64(len(data)) {
		return nil, corruptf("manifest promises %d bytes, file has %d (truncated?)", size, len(data))
	}
	wantCRC := binary.LittleEndian.Uint32(data[12:])
	if got := crc32.Checksum(data[16:], crcTable); got != wantCRC {
		return nil, corruptf("manifest checksum mismatch (want %08x, got %08x)", wantCRC, got)
	}
	m := &segManifest{
		lineShift:  data[16],
		firstIndex: int64(binary.LittleEndian.Uint64(data[24:])),
		n:          int64(binary.LittleEndian.Uint64(data[32:])),
		segInsts:   int64(binary.LittleEndian.Uint64(data[40:])),
	}
	k := int64(binary.LittleEndian.Uint32(data[20:]))
	metaLen := int64(binary.LittleEndian.Uint32(data[48:]))
	if k < 1 || k > segMaxCount || m.lineShift > 63 || m.n < 0 {
		return nil, corruptf("invalid manifest geometry (K=%d n=%d shift=%d)", k, m.n, m.lineShift)
	}
	if metaLen < 0 || segHeaderMin+metaLen+16*k != int64(len(data)) {
		return nil, corruptf("manifest geometry disagrees with size (meta %d, K %d)", metaLen, k)
	}
	meta, err := decodeMeta(data[segHeaderMin : segHeaderMin+metaLen])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSpill, err)
	}
	if meta.n != m.n || meta.firstIndex != m.firstIndex || meta.lineShift != m.lineShift {
		return nil, corruptf("manifest meta blob disagrees with header geometry")
	}
	m.meta = meta
	recs := data[segHeaderMin+metaLen:]
	var total int64
	for i := int64(0); i < k; i++ {
		n := int64(binary.LittleEndian.Uint64(recs[16*i:]))
		b := int64(binary.LittleEndian.Uint64(recs[16*i+8:]))
		if n < 0 || b < 0 {
			return nil, corruptf("segment %d record invalid (n=%d bytes=%d)", i, n, b)
		}
		total += n
		m.segN = append(m.segN, n)
		m.segBytes = append(m.segBytes, b)
	}
	if total != m.n {
		return nil, corruptf("segment counts sum to %d, manifest promises %d", total, m.n)
	}
	return m, nil
}

// IsSegmentedFile reports whether path starts with the MLPCOLS2 magic.
func IsSegmentedFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false
	}
	return string(hdr[:]) == segMagic
}

// OpenSegmentedFile opens the manifest at path and every segment file
// beside it, validating the manifest checksum, each segment's own CRC,
// and cross-checking the per-segment geometry and the aggregate
// statistics against the manifest. Segments are memory-mapped like any
// MLPCOLS1 spill. Any structural failure — including a missing segment
// file — returns an error wrapping ErrCorruptSpill so the disk cache
// quarantines the whole key and rebuilds.
func OpenSegmentedFile(path string) (*SegStream, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	man, err := parseManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	segs := make([]*Stream, len(man.segN))
	for k := range segs {
		sp := segmentPath(path, k)
		s, err := OpenColumnarFile(sp)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("%s: %w", path, corruptf("segment %d missing (%s)", k, sp))
			}
			return nil, err
		}
		if s.Len() != man.segN[k] {
			return nil, fmt.Errorf("%s: %w", path, corruptf("segment %d holds %d insts, manifest promises %d", k, s.Len(), man.segN[k]))
		}
		segs[k] = s
	}
	ss, err := NewSegStream(segs, man.segInsts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w: %v", path, ErrCorruptSpill, err)
	}
	if ss.n != man.n || ss.firstIndex != man.firstIndex || ss.stats != man.meta.stats ||
		ss.hasIPF != man.meta.hasIPF || ss.ipfStats != man.meta.ipfStats ||
		ss.hasDPF != man.meta.hasDPF || ss.dpfStats != man.meta.dpfStats {
		return nil, fmt.Errorf("%s: %w", path, corruptf("segment aggregate disagrees with manifest meta"))
	}
	return ss, nil
}

// OpenSpill opens an on-disk annotated trace of either columnar format:
// a segmented MLPCOLS2 manifest (plus its segment files) or a monolithic
// MLPCOLS1 spill.
func OpenSpill(path string) (Trace, error) {
	if IsSegmentedFile(path) {
		return OpenSegmentedFile(path)
	}
	return OpenColumnarFile(path)
}

package atrace

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/workload"
)

// helperEnvDir names the env var that flips TestDiskCacheHelper from a
// no-op into a cache client run by TestCrossProcessSingleflight.
const helperEnvDir = "MLPSIM_ATRACE_HELPER_DIR"

// helperKey is the one key every helper process asks for.
func helperKey() (Key, workload.Config) {
	w := workload.Presets(17)[0]
	return Key{Workload: w, Annot: "multiproc", Warmup: testWarmup, Measure: testMeasure}, w
}

// TestDiskCacheHelper is the subprocess body: it opens the shared
// directory, performs one Get, and reports how many annotation passes it
// ran on stdout. It skips itself under normal `go test` invocations.
func TestDiskCacheHelper(t *testing.T) {
	dir := os.Getenv(helperEnvDir)
	if dir == "" {
		t.Skip("helper for TestCrossProcessSingleflight; set " + helperEnvDir + " to run")
	}
	c := NewCache()
	c.SetDir(dir)
	key, w := helperKey()
	s := c.Get(key, func() *Stream { return captureStream(t, w, annotate.Config{}) })
	if s.Len() != testMeasure {
		t.Fatalf("stream length %d, want %d", s.Len(), testMeasure)
	}
	fmt.Printf("HELPER_BUILDS=%d\n", c.Stats().Builds)
}

// TestCrossProcessSingleflight launches N copies of this test binary
// against one cache directory and asserts the flock protocol let exactly
// one of them annotate; the rest must load the published spill.
func TestCrossProcessSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	dir := t.TempDir()

	const procs = 4
	outputs := make([]string, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(exe, "-test.run", "^TestDiskCacheHelper$", "-test.v")
			cmd.Env = append(os.Environ(), helperEnvDir+"="+dir)
			out, err := cmd.CombinedOutput()
			outputs[i], errs[i] = string(out), err
		}(i)
	}
	wg.Wait()

	totalBuilds := 0
	for i := 0; i < procs; i++ {
		if errs[i] != nil {
			t.Fatalf("helper %d failed: %v\n%s", i, errs[i], outputs[i])
		}
		n, ok := parseHelperBuilds(outputs[i])
		if !ok {
			t.Fatalf("helper %d printed no HELPER_BUILDS line:\n%s", i, outputs[i])
		}
		totalBuilds += n
	}
	if totalBuilds != 1 {
		t.Errorf("%d processes performed %d annotation passes in total, want exactly 1", procs, totalBuilds)
	}

	key, _ := helperKey()
	if _, err := os.Stat(filepath.Join(dir, keyHash(key)+spillExt)); err != nil {
		t.Errorf("shared spill missing after the race: %v", err)
	}
	// All lock files must be released (flock drops with the fd; the
	// portable fallback unlinks), so a fresh process can still build.
	c := NewCache()
	c.SetDir(dir)
	var rebuilt bool
	c.Get(key, func() *Stream { rebuilt = true; return nil })
	if rebuilt {
		t.Error("published spill not readable by a later process")
	}
}

func parseHelperBuilds(out string) (int, bool) {
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "HELPER_BUILDS="); ok {
			n, err := strconv.Atoi(rest)
			if err != nil {
				return 0, false
			}
			return n, true
		}
	}
	return 0, false
}

package atrace

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/workload"
)

// helperEnvDir names the env var that flips TestDiskCacheHelper from a
// no-op into a cache client run by TestCrossProcessSingleflight.
const helperEnvDir = "MLPSIM_ATRACE_HELPER_DIR"

// helperKey is the one key every helper process asks for.
func helperKey() (Key, workload.Config) {
	w := workload.Presets(17)[0]
	return Key{Workload: w, Annot: "multiproc", Warmup: testWarmup, Measure: testMeasure}, w
}

// TestDiskCacheHelper is the subprocess body: it opens the shared
// directory, performs one Get, and reports how many annotation passes it
// ran on stdout. It skips itself under normal `go test` invocations.
func TestDiskCacheHelper(t *testing.T) {
	dir := os.Getenv(helperEnvDir)
	if dir == "" {
		t.Skip("helper for TestCrossProcessSingleflight; set " + helperEnvDir + " to run")
	}
	c := NewCache()
	c.SetDir(dir)
	key, w := helperKey()
	s := c.Get(key, func() *Stream { return captureStream(t, w, annotate.Config{}) })
	if s.Len() != testMeasure {
		t.Fatalf("stream length %d, want %d", s.Len(), testMeasure)
	}
	fmt.Printf("HELPER_BUILDS=%d\n", c.Stats().Builds)
}

// TestCrossProcessSingleflight launches N copies of this test binary
// against one cache directory and asserts the flock protocol let exactly
// one of them annotate; the rest must load the published spill.
func TestCrossProcessSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	dir := t.TempDir()

	const procs = 4
	outputs := make([]string, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(exe, "-test.run", "^TestDiskCacheHelper$", "-test.v")
			cmd.Env = append(os.Environ(), helperEnvDir+"="+dir)
			out, err := cmd.CombinedOutput()
			outputs[i], errs[i] = string(out), err
		}(i)
	}
	wg.Wait()

	totalBuilds := 0
	for i := 0; i < procs; i++ {
		if errs[i] != nil {
			t.Fatalf("helper %d failed: %v\n%s", i, errs[i], outputs[i])
		}
		n, ok := parseHelperBuilds(outputs[i])
		if !ok {
			t.Fatalf("helper %d printed no HELPER_BUILDS line:\n%s", i, outputs[i])
		}
		totalBuilds += n
	}
	if totalBuilds != 1 {
		t.Errorf("%d processes performed %d annotation passes in total, want exactly 1", procs, totalBuilds)
	}

	key, _ := helperKey()
	if _, err := os.Stat(filepath.Join(dir, keyHash(key)+spillExt)); err != nil {
		t.Errorf("shared spill missing after the race: %v", err)
	}
	// All lock files must be released (flock drops with the fd; the
	// portable fallback unlinks), so a fresh process can still build.
	c := NewCache()
	c.SetDir(dir)
	var rebuilt bool
	c.Get(key, func() *Stream { rebuilt = true; return nil })
	if rebuilt {
		t.Error("published spill not readable by a later process")
	}
}

const (
	// segHelperEnvDir points TestSegmentedBuildHelper at a shared cache
	// directory; segHelperEnvCrash additionally makes it exit mid-publish.
	segHelperEnvDir   = "MLPSIM_ATRACE_SEG_HELPER_DIR"
	segHelperEnvCrash = "MLPSIM_ATRACE_SEG_HELPER_CRASH"
)

// TestSegmentedBuildHelper is the subprocess body for the crash-recovery
// test: one segmented GetTrace against the shared directory. With the
// crash env set it installs the writeAtomic hook and dies (os.Exit)
// between writing the second publish temp file and renaming it — after
// segment 0 landed, before segment 1 and the manifest.
func TestSegmentedBuildHelper(t *testing.T) {
	dir := os.Getenv(segHelperEnvDir)
	if dir == "" {
		t.Skip("helper for TestCrashDuringPublishRecovery; set " + segHelperEnvDir + " to run")
	}
	if os.Getenv(segHelperEnvCrash) != "" {
		writes := 0
		testCrashBeforeRename = func() {
			if writes++; writes == 2 {
				os.Exit(42)
			}
		}
	}
	c := NewCache()
	c.SetDir(dir)
	c.SetSegments(testMeasure/3, 1)
	key, w := helperKey()
	s := c.GetTrace(key, BuildSpec{
		NewAnnotator: func() *annotate.Annotator {
			return annotate.New(workload.MustNew(w), annotate.Config{})
		},
		Warmup:  testWarmup,
		Measure: testMeasure,
	})
	if os.Getenv(segHelperEnvCrash) != "" {
		t.Fatal("helper survived its crash point")
	}
	if s.Len() != testMeasure {
		t.Fatalf("trace length %d, want %d", s.Len(), testMeasure)
	}
	fmt.Printf("HELPER_BUILDS=%d\n", c.Stats().Builds)
}

// TestCrashDuringPublishRecovery kills a builder process between writing
// a publish temp file and its rename, then asserts the protocol's crash
// guarantees: no partial trace is ever visible, the litter (published
// orphan segment + abandoned temp file) is reclaimed by the sweep, and
// the next process simply rebuilds.
func TestCrashDuringPublishRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	dir := t.TempDir()
	key, _ := helperKey()
	manifest := filepath.Join(dir, keyHash(key)+spillExt)

	cmd := exec.Command(exe, "-test.run", "^TestSegmentedBuildHelper$", "-test.v")
	cmd.Env = append(os.Environ(), segHelperEnvDir+"="+dir, segHelperEnvCrash+"=1")
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 42 {
		t.Fatalf("crash helper exited with %v, want code 42\n%s", err, out)
	}

	// No manifest may exist — the crash happened before it was written, so
	// other processes must see "no trace at all".
	if _, err := os.Stat(manifest); !os.IsNotExist(err) {
		t.Fatalf("manifest visible after a mid-publish crash: %v", err)
	}
	// The crash left exactly the litter the sweep is for: segment 0
	// published as an orphan, and segment 1's abandoned temp file.
	if _, err := os.Stat(segmentPath(manifest, 0)); err != nil {
		t.Fatalf("expected orphan segment 0 from the crashed builder: %v", err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, tmpPrefix+"*"))
	if len(tmps) != 1 {
		t.Fatalf("expected 1 abandoned temp file, found %v", tmps)
	}

	// An aged sweep reclaims all three pieces of litter: the orphan
	// segment, the abandoned temp file, and the dead builder's lock file
	// (its manifest never landed, and no process holds the flock).
	d := newDiskCache(dir)
	d.tmpMaxAge = -1
	d.withIndex(func(idx *indexFile) { d.sweepLocked(idx) })
	if got := d.swept.Load(); got != 3 {
		t.Errorf("sweep reclaimed %d files, want 3 (orphan segment + temp + stale lock)", got)
	}
	for _, p := range append([]string{segmentPath(manifest, 0)}, tmps...) {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("sweep left %s behind", p)
		}
	}

	// The next process rebuilds from scratch and publishes a full trace.
	cmd = exec.Command(exe, "-test.run", "^TestSegmentedBuildHelper$", "-test.v")
	cmd.Env = append(os.Environ(), segHelperEnvDir+"="+dir)
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("rebuild helper failed: %v\n%s", err, out)
	}
	if n, ok := parseHelperBuilds(string(out)); !ok || n != 1 {
		t.Fatalf("rebuild helper reported %d builds (ok=%v), want 1\n%s", n, ok, out)
	}
	if tr, err := OpenSpill(manifest); err != nil {
		t.Errorf("republished trace unreadable: %v", err)
	} else if tr.Len() != testMeasure {
		t.Errorf("republished trace holds %d instructions, want %d", tr.Len(), testMeasure)
	}
}

func parseHelperBuilds(out string) (int, bool) {
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "HELPER_BUILDS="); ok {
			n, err := strconv.Atoi(rest)
			if err != nil {
				return 0, false
			}
			return n, true
		}
	}
	return 0, false
}

//go:build unix

package atrace

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so replay reads hit
// the OS page cache instead of resident Go heap. The repo takes no
// external dependencies, hence raw syscall rather than x/sys.
func mmapFile(f *os.File, size int64) (*mapping, error) {
	if size <= 0 {
		return nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

func munmap(data []byte) {
	// Best effort: an unmap failure only leaks address space.
	_ = syscall.Munmap(data)
}

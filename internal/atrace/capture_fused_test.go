package atrace

import (
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/mem"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/workload"
)

// newAnnotatorPair builds two identical annotators over independent
// generators of the same workload, so the fused and the per-instruction
// capture paths consume bit-identical raw streams.
func newAnnotatorPair(w workload.Config) (*annotate.Annotator, *annotate.Annotator) {
	mk := func() *annotate.Annotator {
		return annotate.New(workload.MustNew(w), annotate.Config{
			IPrefetch: prefetch.NewSequential(4, mem.IFetch),
			DPrefetch: prefetch.NewStride(256, 4),
		})
	}
	return mk(), mk()
}

// TestCaptureFusedMatchesPerInst pins the fused block capture
// (AnnotateInto + AppendBlock) to the per-instruction reference path
// (Next + Append): the replayed instructions, stats and encoded column
// sizes must be identical, including at non-block-multiple lengths.
func TestCaptureFusedMatchesPerInst(t *testing.T) {
	w := workload.Presets(1)[0]
	for _, n := range []int64{0, 1, captureBlock - 1, captureBlock, captureBlock + 1, 3*captureBlock + 317} {
		fusedA, refA := newAnnotatorPair(w)
		fusedA.Warm(5000)
		refA.Warm(5000)

		fused := Capture(fusedA, n)

		shift := lineShiftOf(refA.Hierarchy().Config().L2.LineBytes)
		b := NewBuilder(shift, n)
		for i := int64(0); i < n; i++ {
			in, ok := refA.Next()
			if !ok {
				break
			}
			b.Append(in)
		}
		ref := b.Finish(refA.Stats())

		if fused.Len() != ref.Len() {
			t.Fatalf("n=%d: fused len %d, reference %d", n, fused.Len(), ref.Len())
		}
		if fused.FirstIndex() != ref.FirstIndex() {
			t.Fatalf("n=%d: first index %d vs %d", n, fused.FirstIndex(), ref.FirstIndex())
		}
		if fused.Stats() != ref.Stats() {
			t.Fatalf("n=%d: stats diverged\nfused %+v\nref   %+v", n, fused.Stats(), ref.Stats())
		}
		fr, rr := fused.Replay(), ref.Replay()
		var fi, ri annotate.Inst
		for i := int64(0); ; i++ {
			fok, rok := fr.NextInto(&fi), rr.NextInto(&ri)
			if fok != rok {
				t.Fatalf("n=%d: replay length diverged at %d", n, i)
			}
			if !fok {
				break
			}
			if fi != ri {
				t.Fatalf("n=%d inst %d:\nfused %+v\nref   %+v", n, i, fi, ri)
			}
		}
	}
}

// TestAppendBlockInterleavesWithAppend pins the documented contract that
// AppendBlock and Append may be mixed on one builder.
func TestAppendBlockInterleavesWithAppend(t *testing.T) {
	const n = 4 * 1024
	w := workload.Presets(1)[0]
	blockA, refA := newAnnotatorPair(w)

	insts := blockA.Collect(n)
	shift := lineShiftOf(blockA.Hierarchy().Config().L2.LineBytes)

	mixed := NewBuilder(shift, n)
	for off := 0; off < len(insts); {
		if off%3 == 0 { // single appends at uneven points
			mixed.Append(insts[off])
			off++
			continue
		}
		end := off + 333
		if end > len(insts) {
			end = len(insts)
		}
		mixed.AppendBlock(insts[off:end])
		off = end
	}
	ms := mixed.Finish(blockA.Stats())

	ref := NewBuilder(shift, n)
	for i := int64(0); i < n; i++ {
		in, ok := refA.Next()
		if !ok {
			break
		}
		ref.Append(in)
	}
	rs := ref.Finish(refA.Stats())

	fr, rr := ms.Replay(), rs.Replay()
	var fi, ri annotate.Inst
	for i := 0; ; i++ {
		fok, rok := fr.NextInto(&fi), rr.NextInto(&ri)
		if fok != rok {
			t.Fatalf("length diverged at %d", i)
		}
		if !fok {
			break
		}
		if fi != ri {
			t.Fatalf("inst %d: mixed %+v != reference %+v", i, fi, ri)
		}
	}
}

package atrace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"mlpsim/internal/annotate"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/trace"
	"mlpsim/internal/vpred"
)

func vpredOutcome(v uint8) vpred.Outcome { return vpred.Outcome(v) }

// On-disk form: a version-2 trace (see internal/trace) whose header meta
// blob carries the stream geometry and the captured-window statistics,
// and whose per-record annotation byte carries the event flags.

// Meta blob versions: v1 carries geometry + annotator stats (16 uvarint
// fields); v2 appends the hardware-prefetcher statistics captured with
// the stream (6 more fields). Writers emit v2; readers accept both.
const (
	metaVersion1 = 1
	metaVersion  = 2

	metaFieldsV1 = 16
	metaFieldsV2 = 22
)

func encodeMeta(s *Stream) []byte {
	return encodeMetaInfo(metaInfo{
		lineShift: s.lineShift, firstIndex: s.firstIndex, n: s.n, stats: s.stats,
		ipfStats: s.ipfStats, dpfStats: s.dpfStats, hasIPF: s.hasIPF, hasDPF: s.hasDPF,
	})
}

func encodeMetaInfo(m metaInfo) []byte {
	var b []byte
	put := func(v uint64) { b = binary.AppendUvarint(b, v) }
	putBool := func(v bool) {
		if v {
			put(1)
		} else {
			put(0)
		}
	}
	put(metaVersion)
	put(uint64(m.lineShift))
	put(uint64(m.firstIndex))
	put(uint64(m.n))
	st := m.stats
	for _, v := range []uint64{
		st.Instructions, st.DMisses, st.PMisses, st.IMisses, st.SMisses,
		st.Branches, st.Mispredicts, st.Prefetches, st.PrefetchUsed,
		st.VP.Correct, st.VP.Wrong, st.VP.NoPredict,
	} {
		put(v)
	}
	putBool(m.hasIPF)
	put(m.ipfStats.Issued)
	put(m.ipfStats.Useful)
	putBool(m.hasDPF)
	put(m.dpfStats.Issued)
	put(m.dpfStats.Useful)
	return b
}

// metaInfo is the decoded header metadata of a stream spill.
type metaInfo struct {
	lineShift          uint8
	firstIndex, n      int64
	stats              annotate.Stats
	ipfStats, dpfStats prefetch.Stats
	hasIPF, hasDPF     bool
}

// apply copies the decoded metadata that is not re-derivable from the
// records onto a stream.
func (m *metaInfo) apply(s *Stream) {
	s.stats = m.stats
	s.ipfStats, s.hasIPF = m.ipfStats, m.hasIPF
	s.dpfStats, s.hasDPF = m.dpfStats, m.hasDPF
}

func decodeMeta(b []byte) (metaInfo, error) {
	var m metaInfo
	vals := make([]uint64, 0, metaFieldsV2)
	for len(b) > 0 {
		v, sz := binary.Uvarint(b)
		if sz <= 0 {
			return m, fmt.Errorf("atrace: corrupt meta blob")
		}
		b = b[sz:]
		vals = append(vals, v)
	}
	if len(vals) < 1 {
		return m, fmt.Errorf("atrace: empty meta blob")
	}
	switch vals[0] {
	case metaVersion1:
		if len(vals) != metaFieldsV1 {
			return m, fmt.Errorf("atrace: v1 meta blob has %d fields (want %d)", len(vals), metaFieldsV1)
		}
	case metaVersion:
		if len(vals) != metaFieldsV2 {
			return m, fmt.Errorf("atrace: v2 meta blob has %d fields (want %d)", len(vals), metaFieldsV2)
		}
	default:
		return m, fmt.Errorf("atrace: unsupported meta version %d", vals[0])
	}
	if vals[1] > 63 {
		return m, fmt.Errorf("atrace: invalid line shift %d", vals[1])
	}
	m.lineShift = uint8(vals[1])
	m.firstIndex = int64(vals[2])
	m.n = int64(vals[3])
	m.stats = annotate.Stats{
		Instructions: vals[4], DMisses: vals[5], PMisses: vals[6],
		IMisses: vals[7], SMisses: vals[8], Branches: vals[9],
		Mispredicts: vals[10], Prefetches: vals[11], PrefetchUsed: vals[12],
	}
	m.stats.VP.Correct, m.stats.VP.Wrong, m.stats.VP.NoPredict = vals[13], vals[14], vals[15]
	m.stats.OffChip = m.stats.DMisses + m.stats.PMisses + m.stats.IMisses
	if vals[0] >= metaVersion {
		m.hasIPF = vals[16] != 0
		m.ipfStats = prefetch.Stats{Issued: vals[17], Useful: vals[18]}
		m.hasDPF = vals[19] != 0
		m.dpfStats = prefetch.Stats{Issued: vals[20], Useful: vals[21]}
	}
	return m, nil
}

func annotFlagsOf(in annotate.Inst) trace.AnnotFlags {
	var af trace.AnnotFlags
	if in.DMiss {
		af |= trace.AnnotDMiss
	}
	if in.PMiss {
		af |= trace.AnnotPMiss
	}
	if in.IMiss {
		af |= trace.AnnotIMiss
	}
	if in.SMiss {
		af |= trace.AnnotSMiss
	}
	if in.Mispred {
		af |= trace.AnnotMispred
	}
	return af.WithVPOutcome(uint8(in.VPOutcome))
}

// WriteStream writes the stream to w in the v2 annotated trace format.
func WriteStream(w io.Writer, s *Stream) error {
	enc, err := trace.NewEncoderV2(w, uint64(s.n), encodeMeta(s))
	if err != nil {
		return err
	}
	r := s.Replay()
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		if err := enc.EncodeAnnotated(in.Inst, annotFlagsOf(in)); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// ReadStream rebuilds a Stream from a v2 annotated trace produced by
// WriteStream (or by cmd/tracegen -annotate).
func ReadStream(r io.Reader) (*Stream, error) {
	dec, err := trace.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return ReadStreamFrom(dec)
}

// ReadStreamFrom rebuilds a Stream from an already-opened v2 decoder.
func ReadStreamFrom(dec *trace.Decoder) (*Stream, error) {
	if dec.Version() < 2 {
		return nil, fmt.Errorf("atrace: trace is not annotated (version %d)", dec.Version())
	}
	meta, err := decodeMeta(dec.Meta())
	if err != nil {
		return nil, err
	}
	b := NewBuilder(meta.lineShift, meta.n)
	idx := meta.firstIndex
	for {
		raw, af, err := dec.DecodeAnnotated()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		in := annotate.Inst{
			Inst:      raw,
			Index:     idx,
			DMiss:     af&trace.AnnotDMiss != 0,
			PMiss:     af&trace.AnnotPMiss != 0,
			IMiss:     af&trace.AnnotIMiss != 0,
			SMiss:     af&trace.AnnotSMiss != 0,
			Mispred:   af&trace.AnnotMispred != 0,
			VPOutcome: vpredOutcome(af.VPOutcome()),
		}
		idx++
		b.Append(in)
	}
	s := b.Finish(meta.stats)
	meta.apply(s)
	if s.n != meta.n {
		return nil, fmt.Errorf("atrace: trace holds %d records, meta promised %d", s.n, meta.n)
	}
	if s.n == 0 {
		s.firstIndex = meta.firstIndex
	}
	return s, nil
}

// WriteFile writes the stream to path in the v2 annotated trace format.
func WriteFile(path string, s *Stream) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteStream(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a stream previously written with WriteFile.
func ReadFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStream(f)
}

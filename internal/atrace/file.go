package atrace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"mlpsim/internal/annotate"
	"mlpsim/internal/trace"
	"mlpsim/internal/vpred"
)

func vpredOutcome(v uint8) vpred.Outcome { return vpred.Outcome(v) }

// On-disk form: a version-2 trace (see internal/trace) whose header meta
// blob carries the stream geometry and the captured-window statistics,
// and whose per-record annotation byte carries the event flags.

const metaVersion = 1

func encodeMeta(s *Stream) []byte {
	var b []byte
	put := func(v uint64) { b = binary.AppendUvarint(b, v) }
	put(metaVersion)
	put(uint64(s.lineShift))
	put(uint64(s.firstIndex))
	put(uint64(s.n))
	st := s.stats
	for _, v := range []uint64{
		st.Instructions, st.DMisses, st.PMisses, st.IMisses, st.SMisses,
		st.Branches, st.Mispredicts, st.Prefetches, st.PrefetchUsed,
		st.VP.Correct, st.VP.Wrong, st.VP.NoPredict,
	} {
		put(v)
	}
	return b
}

func decodeMeta(b []byte) (lineShift uint8, firstIndex, n int64, stats annotate.Stats, err error) {
	vals := make([]uint64, 0, 16)
	for len(b) > 0 {
		v, sz := binary.Uvarint(b)
		if sz <= 0 {
			return 0, 0, 0, stats, fmt.Errorf("atrace: corrupt meta blob")
		}
		b = b[sz:]
		vals = append(vals, v)
	}
	if len(vals) != 16 {
		return 0, 0, 0, stats, fmt.Errorf("atrace: meta blob has %d fields (want 16)", len(vals))
	}
	if vals[0] != metaVersion {
		return 0, 0, 0, stats, fmt.Errorf("atrace: unsupported meta version %d", vals[0])
	}
	if vals[1] > 63 {
		return 0, 0, 0, stats, fmt.Errorf("atrace: invalid line shift %d", vals[1])
	}
	lineShift = uint8(vals[1])
	firstIndex = int64(vals[2])
	n = int64(vals[3])
	stats = annotate.Stats{
		Instructions: vals[4], DMisses: vals[5], PMisses: vals[6],
		IMisses: vals[7], SMisses: vals[8], Branches: vals[9],
		Mispredicts: vals[10], Prefetches: vals[11], PrefetchUsed: vals[12],
	}
	stats.VP.Correct, stats.VP.Wrong, stats.VP.NoPredict = vals[13], vals[14], vals[15]
	stats.OffChip = stats.DMisses + stats.PMisses + stats.IMisses
	return lineShift, firstIndex, n, stats, nil
}

func annotFlagsOf(in annotate.Inst) trace.AnnotFlags {
	var af trace.AnnotFlags
	if in.DMiss {
		af |= trace.AnnotDMiss
	}
	if in.PMiss {
		af |= trace.AnnotPMiss
	}
	if in.IMiss {
		af |= trace.AnnotIMiss
	}
	if in.SMiss {
		af |= trace.AnnotSMiss
	}
	if in.Mispred {
		af |= trace.AnnotMispred
	}
	return af.WithVPOutcome(uint8(in.VPOutcome))
}

// WriteStream writes the stream to w in the v2 annotated trace format.
func WriteStream(w io.Writer, s *Stream) error {
	enc, err := trace.NewEncoderV2(w, uint64(s.n), encodeMeta(s))
	if err != nil {
		return err
	}
	r := s.Replay()
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		if err := enc.EncodeAnnotated(in.Inst, annotFlagsOf(in)); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// ReadStream rebuilds a Stream from a v2 annotated trace produced by
// WriteStream (or by cmd/tracegen -annotate).
func ReadStream(r io.Reader) (*Stream, error) {
	dec, err := trace.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return ReadStreamFrom(dec)
}

// ReadStreamFrom rebuilds a Stream from an already-opened v2 decoder.
func ReadStreamFrom(dec *trace.Decoder) (*Stream, error) {
	if dec.Version() < 2 {
		return nil, fmt.Errorf("atrace: trace is not annotated (version %d)", dec.Version())
	}
	lineShift, firstIndex, n, stats, err := decodeMeta(dec.Meta())
	if err != nil {
		return nil, err
	}
	b := NewBuilder(lineShift, n)
	idx := firstIndex
	for {
		raw, af, err := dec.DecodeAnnotated()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		in := annotate.Inst{
			Inst:      raw,
			Index:     idx,
			DMiss:     af&trace.AnnotDMiss != 0,
			PMiss:     af&trace.AnnotPMiss != 0,
			IMiss:     af&trace.AnnotIMiss != 0,
			SMiss:     af&trace.AnnotSMiss != 0,
			Mispred:   af&trace.AnnotMispred != 0,
			VPOutcome: vpredOutcome(af.VPOutcome()),
		}
		idx++
		b.Append(in)
	}
	s := b.Finish(stats)
	if s.n != n {
		return nil, fmt.Errorf("atrace: trace holds %d records, meta promised %d", s.n, n)
	}
	if s.n == 0 {
		s.firstIndex = firstIndex
	}
	return s, nil
}

// WriteFile writes the stream to path in the v2 annotated trace format.
func WriteFile(path string, s *Stream) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteStream(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a stream previously written with WriteFile.
func ReadFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStream(f)
}

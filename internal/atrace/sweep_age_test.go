package atrace

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"mlpsim/internal/annotate"
	"mlpsim/internal/workload"
)

// litterFile drops one file with an exact modification time into dir.
func litterFile(t *testing.T, dir, name string, size int, mtime time.Time) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	return path
}

// sweepAt runs one directory sweep with the cache clock pinned to now,
// returning the kept-litter byte total.
func sweepAt(d *diskCache, now time.Time) (litterBytes int64) {
	d.now = func() time.Time { return now }
	d.withIndex(func(idx *indexFile) { litterBytes = d.sweepLocked(idx) })
	return litterBytes
}

// TestSweepAgeBoundaryExact pins the reclamation rule at the exact
// young/aged threshold: litter whose age equals the bound is still
// young (kept, its bytes charged against the capacity); one nanosecond
// older and it is reclaimed. Covered for both litter classes — temp
// files (tmpMaxAge) and quarantined spills (corruptMaxAge).
func TestSweepAgeBoundaryExact(t *testing.T) {
	base := time.Now().Truncate(time.Second) // whole seconds survive every filesystem's mtime granularity
	cases := []struct {
		name string
		file string
		age  func(d *diskCache) time.Duration
	}{
		{"temp file", tmpPrefix + "boundary", func(d *diskCache) time.Duration { return d.tmpMaxAge }},
		{"orphan segment", "feedbeef" + spillExt + ".seg0000", func(d *diskCache) time.Duration { return d.tmpMaxAge }},
		{"quarantined spill", "deadbeef" + spillExt + corruptMark + "1.2", func(d *diskCache) time.Duration { return d.corruptMaxAge }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := newDiskCache(dir)
			const size = 1024
			path := litterFile(t, dir, tc.file, size, base)
			maxAge := tc.age(d)

			// Age == bound exactly: young. Kept, and its bytes count.
			if got := sweepAt(d, base.Add(maxAge)); got != size {
				t.Errorf("litter aged exactly maxAge: charged %d bytes, want %d (kept)", got, size)
			}
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("litter aged exactly maxAge was reclaimed: %v", err)
			}
			if n := d.swept.Load(); n != 0 {
				t.Errorf("swept counter %d after a keep-everything sweep, want 0", n)
			}

			// One nanosecond past the bound: aged. Reclaimed, zero charge.
			if got := sweepAt(d, base.Add(maxAge+time.Nanosecond)); got != 0 {
				t.Errorf("aged litter still charged %d bytes after reclamation", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("litter aged past maxAge survived the sweep: %v", err)
			}
			if n := d.swept.Load(); n != 1 {
				t.Errorf("swept counter %d, want 1", n)
			}
		})
	}
}

// TestSweepSparesLockHeldByLiveProcess: a lock file whose spill is gone
// is normally litter, but never while a live process holds the flock —
// unlinking it would let two builders publish the same key through
// different inodes. Only after release may the sweep reclaim it.
func TestSweepSparesLockHeldByLiveProcess(t *testing.T) {
	dir := t.TempDir()
	d := newDiskCache(dir)
	lockPath := filepath.Join(dir, "cafef00d.lock")

	// Hold the lock the way a live builder does (no spill beside it, so
	// the sweep sees a candidate). lockFile keeps its own descriptor, so
	// this models any live PID, in-process or not.
	unlock, err := lockFile(lockPath)
	if err != nil {
		t.Fatal(err)
	}
	aged := time.Now().Add(365 * 24 * time.Hour) // far past every age bound
	sweepAt(d, aged)
	if _, err := os.Stat(lockPath); err != nil {
		t.Fatalf("sweep reclaimed a lock held by a live process: %v", err)
	}
	if n := d.swept.Load(); n != 0 {
		t.Errorf("swept counter %d while the lock was held, want 0", n)
	}

	// Released: now it is provably unheld and reclaimable.
	unlock()
	sweepAt(d, aged)
	if _, err := os.Stat(lockPath); !os.IsNotExist(err) {
		t.Errorf("released stale lock survived the sweep: %v", err)
	}
}

// TestRepeatedQuarantineChargesBytesOnce: the same key going corrupt
// twice (quarantine, rebuild, republish, corrupt again, quarantine)
// must leave exactly one charge per corrupt byte on disk — each
// quarantined generation is litter once, and none of those bytes may
// also be charged through a stale index entry. A quarantine that finds
// nothing left to move (the losing side of a reader race) must not
// inflate the Quarantined counter either.
func TestRepeatedQuarantineChargesBytesOnce(t *testing.T) {
	dir := t.TempDir()
	w := workload.Presets(8)[2]
	key := Key{Workload: w, Annot: "requarantine", Warmup: testWarmup, Measure: testMeasure}
	build := func() *Stream { return captureStream(t, w, annotate.Config{}) }

	for round := 0; round < 2; round++ {
		c := NewCache()
		c.SetDir(dir)
		c.Get(key, build)
		corruptOneSpill(t, dir)

		c2 := NewCache()
		c2.SetDir(dir)
		rebuilt := false
		c2.Get(key, func() *Stream { rebuilt = true; return build() })
		if !rebuilt {
			t.Fatalf("round %d: corrupted spill served instead of rebuilt", round)
		}
		if st := c2.Stats(); st.Quarantined != 1 {
			t.Fatalf("round %d: quarantined %d, want 1", round, st.Quarantined)
		}
	}

	// Two generations of the same key moved aside, under distinct names.
	moved, err := filepath.Glob(filepath.Join(dir, "*"+corruptMark+"*"))
	if err != nil || len(moved) != 2 {
		t.Fatalf("quarantine files %v (err %v), want exactly two", moved, err)
	}
	var wantLitter int64
	for _, p := range moved {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		wantLitter += fi.Size()
	}

	// The sweep charges each quarantined byte exactly once.
	d := newDiskCache(dir)
	if got := sweepAt(d, time.Now()); got != wantLitter {
		t.Errorf("young quarantine litter charged %d bytes, want %d (each corrupt byte once)", got, wantLitter)
	}
	// The index must hold only the live republished spill, sized to it:
	// quarantined bytes double-charged through a stale entry would shrink
	// the effective capacity on every corruption.
	spills, _ := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if len(spills) != 1 {
		t.Fatalf("live spills %v, want exactly one", spills)
	}
	fi, err := os.Stat(spills[0])
	if err != nil {
		t.Fatal(err)
	}
	var indexed int64
	d.withIndex(func(idx *indexFile) {
		for _, e := range idx.Entries {
			indexed += e.Bytes
		}
	})
	if indexed != fi.Size() {
		t.Errorf("index charges %d bytes, want %d (the live spill only)", indexed, fi.Size())
	}

	// A quarantine with nothing left to move (reader-race loser) is not
	// counted again.
	before := d.quarantined.Load()
	d.quarantine("0000000000000000000000000000dead")
	if got := d.quarantined.Load(); got != before {
		t.Errorf("empty quarantine bumped the counter %d -> %d", before, got)
	}

	// Aged past the post-mortem window both generations are reclaimed,
	// the charge drops to zero, and the live spill survives.
	if got := sweepAt(d, time.Now().Add(d.corruptMaxAge+time.Hour)); got != 0 {
		t.Errorf("aged quarantine litter still charged %d bytes", got)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*"+corruptMark+"*")); len(left) != 0 {
		t.Errorf("aged quarantine files survived the sweep: %v", left)
	}
	if _, err := os.Stat(spills[0]); err != nil {
		t.Errorf("live spill reclaimed by the quarantine sweep: %v", err)
	}
}

// TestSweepKeepsLockWithLiveSpill: a lock whose spill still exists is
// not litter at all, held or not — live keys keep their locks for
// reuse.
func TestSweepKeepsLockWithLiveSpill(t *testing.T) {
	dir := t.TempDir()
	d := newDiskCache(dir)
	old := time.Now().Add(-48 * time.Hour)
	litterFile(t, dir, "0123abcd"+spillExt, 64, old)
	lockPath := litterFile(t, dir, "0123abcd.lock", 0, old)

	sweepAt(d, time.Now().Add(365*24*time.Hour))
	if _, err := os.Stat(lockPath); err != nil {
		t.Errorf("sweep reclaimed the lock of a live spill: %v", err)
	}
}

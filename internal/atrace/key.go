package atrace

import (
	"fmt"

	"mlpsim/internal/annotate"
	"mlpsim/internal/bpred"
	"mlpsim/internal/mem"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/storeset"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

// Key identifies one annotated stream: a workload generated from its
// seed, annotated under a canonical annotation configuration, with fixed
// warmup and measure windows. Key is comparable and usable as a map key.
type Key struct {
	Workload workload.Config
	// Annot is the canonical string form of the annotation configuration
	// (from ConfigKey).
	Annot   string
	Warmup  int64
	Measure int64
}

// String renders the key canonically (stable across processes; used to
// derive on-disk cache filenames).
func (k Key) String() string {
	return fmt.Sprintf("w{%+v}|a{%s}|warm%d|meas%d", k.Workload, k.Annot, k.Warmup, k.Measure)
}

// ConfigKey derives a canonical cache key string for an annotation
// configuration, plus a factory that builds an equivalent fresh
// configuration (new predictor and prefetcher instances, so a cached
// build never trains or aliases the caller's objects).
//
// ok is false when the configuration cannot be keyed safely:
//   - a stateful predictor or prefetcher instance has already been trained
//     (its state is not captured by the configuration alone), or
//   - the predictor is of an unknown user-supplied type.
//
// Untrained stride/sequential hardware prefetchers are deterministic
// functions of their configuration, so they are keyable: the capture
// stores their statistics in the stream metadata (Stream.IPrefetchStats /
// DPrefetchStats) for callers that would otherwise read them off the
// instances after a direct run.
//
// Unkeyable configurations simply fall back to the direct
// annotate-per-run path; correctness never depends on keyability.
func ConfigKey(acfg annotate.Config) (key string, fresh func() annotate.Config, ok bool) {
	ipfKey, ipfFresh := "none", func() *prefetch.Sequential { return nil }
	if p := acfg.IPrefetch; p != nil {
		if !p.Untrained() {
			return "", nil, false
		}
		depth, kind := p.Depth, p.Kind
		ipfKey = fmt.Sprintf("seq{depth:%d,kind:%d}", depth, kind)
		ipfFresh = func() *prefetch.Sequential { return prefetch.NewSequential(depth, kind) }
	}
	dpfKey, dpfFresh := "none", func() *prefetch.Stride { return nil }
	if p := acfg.DPrefetch; p != nil {
		if !p.Untrained() {
			return "", nil, false
		}
		entries, depth := p.Entries(), p.Depth
		dpfKey = fmt.Sprintf("stride{entries:%d,depth:%d}", entries, depth)
		dpfFresh = func() *prefetch.Stride { return prefetch.NewStride(entries, depth) }
	}
	h := acfg.Hierarchy
	if h.L2.SizeBytes == 0 {
		h = mem.DefaultHierarchy()
	}

	var bKey string
	var bFresh func() bpred.Predictor
	switch bp := acfg.Branch.(type) {
	case nil:
		cfg := bpred.DefaultGshare()
		bKey = fmt.Sprintf("gshare{%+v}", cfg)
		bFresh = func() bpred.Predictor { return bpred.NewGshare(cfg) }
	case *bpred.Gshare:
		if !bp.Untrained() {
			return "", nil, false
		}
		cfg := bp.Config()
		bKey = fmt.Sprintf("gshare{%+v}", cfg)
		bFresh = func() bpred.Predictor { return bpred.NewGshare(cfg) }
	case bpred.Perfect:
		bKey = "perfect"
		bFresh = func() bpred.Predictor { return bpred.Perfect{} }
	case bpred.AlwaysWrong:
		bKey = "alwayswrong"
		bFresh = func() bpred.Predictor { return bpred.AlwaysWrong{} }
	case bpred.Static:
		taken := bp.Taken
		bKey = fmt.Sprintf("static{taken:%t}", taken)
		bFresh = func() bpred.Predictor { return bpred.Static{Taken: taken} }
	default:
		return "", nil, false
	}

	var vKey string
	var vFresh func() vpred.Predictor
	switch vp := acfg.Value.(type) {
	case nil:
		vKey = "none"
		vFresh = func() vpred.Predictor { return nil }
	case vpred.None:
		vKey = "none"
		vFresh = func() vpred.Predictor { return vpred.None{} }
	case vpred.Perfect:
		vKey = "perfect"
		vFresh = func() vpred.Predictor { return vpred.Perfect{} }
	case *vpred.LastValue:
		if !vp.Untrained() {
			return "", nil, false
		}
		entries := vp.Entries()
		vKey = fmt.Sprintf("lastvalue{entries:%d}", entries)
		vFresh = func() vpred.Predictor { return vpred.NewLastValue(entries) }
	default:
		return "", nil, false
	}

	// The store-set token is appended only when a predictor is configured,
	// so keys (and the spills derived from them) predating dependence
	// prediction remain byte-identical and stay valid.
	ssSuffix, ssFresh := "", func() *storeset.Predictor { return nil }
	if p := acfg.StoreSets; p != nil {
		if !p.Untrained() {
			return "", nil, false
		}
		cfg := p.Config()
		ssSuffix = fmt.Sprintf("|ss{ssit:%d,lfst:%d,conf:%d}", cfg.SSITSize, cfg.LFSTSize, cfg.ConfThreshold)
		ssFresh = func() *storeset.Predictor { return storeset.New(cfg) }
	}

	key = fmt.Sprintf("h{%+v}|bp{%s}|vp{%s}|ipf{%s}|dpf{%s}%s", h, bKey, vKey, ipfKey, dpfKey, ssSuffix)
	hCopy := h
	fresh = func() annotate.Config {
		return annotate.Config{
			Hierarchy: hCopy, Branch: bFresh(), Value: vFresh(),
			IPrefetch: ipfFresh(), DPrefetch: dpfFresh(), StoreSets: ssFresh(),
		}
	}
	return key, fresh, true
}

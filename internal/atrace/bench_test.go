package atrace

import (
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/workload"
)

// BenchmarkAnnotateStream measures the full annotation pass (generator +
// hierarchy + predictors) per instruction — the cost the cache pays once
// per key.
func BenchmarkAnnotateStream(b *testing.B) {
	w := workload.Presets(1)[0]
	a := annotate.New(workload.MustNew(w), annotate.Config{})
	a.Warm(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := a.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}

// BenchmarkCaptureStream measures annotation plus columnar capture — the
// true per-key build cost.
func BenchmarkCaptureStream(b *testing.B) {
	w := workload.Presets(1)[0]
	a := annotate.New(workload.MustNew(w), annotate.Config{})
	a.Warm(100_000)
	bu := NewBuilder(6, int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, ok := a.Next()
		if !ok {
			b.Fatal("stream ended")
		}
		bu.Append(in)
	}
}

// BenchmarkCaptureFused measures the fused block path Capture actually
// runs (AnnotateInto staging + AppendBlock column transpose).
func BenchmarkCaptureFused(b *testing.B) {
	w := workload.Presets(1)[0]
	a := annotate.New(workload.MustNew(w), annotate.Config{})
	a.Warm(100_000)
	bu := NewBuilder(6, int64(b.N))
	buf := make([]annotate.Inst, captureBlock)
	b.ReportAllocs()
	b.ResetTimer()
	for left := b.N; left > 0; {
		want := len(buf)
		if left < want {
			want = left
		}
		got := a.AnnotateInto(buf[:want])
		if got < want {
			b.Fatal("stream ended")
		}
		bu.AppendBlock(buf[:got])
		left -= got
	}
}

// BenchmarkReplayStream measures decoding a captured stream — the cost
// every cached engine run pays per instruction. It must be allocation
// free.
func BenchmarkReplayStream(b *testing.B) {
	w := workload.Presets(1)[0]
	a := annotate.New(workload.MustNew(w), annotate.Config{})
	a.Warm(100_000)
	s := Capture(a, 1_000_000)
	r := s.Replay()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Next(); !ok {
			r = s.Replay()
		}
	}
}

// TestReplayAllocFree pins the zero-allocation property of the replay
// hot path.
func TestReplayAllocFree(t *testing.T) {
	w := workload.Presets(1)[0]
	a := annotate.New(workload.MustNew(w), annotate.Config{})
	a.Warm(10_000)
	s := Capture(a, 50_000)
	r := s.Replay()
	allocs := testing.AllocsPerRun(10_000, func() {
		if _, ok := r.Next(); !ok {
			r = s.Replay()
		}
	})
	if allocs > 0.01 {
		t.Errorf("replay allocates %.2f objects per instruction, want 0", allocs)
	}
}

//go:build unix

package atrace

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory flock on path (creating it if
// needed), blocking until the lock is granted. The returned function
// releases the lock. Locks are per-open-file, so N processes (or
// goroutines holding separate descriptors) serialize on the same path —
// the cross-process singleflight the disk cache builds on. Lock files are
// left in place; holding none of their bytes, they cost one inode each.
func lockFile(path string) (unlock func(), err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		// Closing the descriptor releases the flock.
		f.Close()
	}, nil
}

// sweepLockFile removes a stale lock file, but only when no process
// holds it: a non-blocking flock must be grantable first. Unlinking
// while holding the lock means any process that raced us to open the
// old inode will serialize against it and then rebuild harmlessly —
// publication stays atomic either way.
func sweepLockFile(path string) bool {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return false
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return false // held by a live process
	}
	return os.Remove(path) == nil
}

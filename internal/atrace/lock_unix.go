//go:build unix

package atrace

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory flock on path (creating it if
// needed), blocking until the lock is granted. The returned function
// releases the lock. Locks are per-open-file, so N processes (or
// goroutines holding separate descriptors) serialize on the same path —
// the cross-process singleflight the disk cache builds on. Lock files are
// left in place; holding none of their bytes, they cost one inode each.
func lockFile(path string) (unlock func(), err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		// Closing the descriptor releases the flock.
		f.Close()
	}, nil
}

package atrace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// Cross-host build leases.
//
// The per-key flock (lock_unix.go) serializes builders on one host, but
// flock does not travel: on a cache directory shared between hosts
// (NFS, a mounted volume) two daemons would build the same key
// concurrently and, worse, hold each other's locks invisibly. Lease
// files make the claim protocol filesystem-portable:
//
//	<hash>.lease   JSON {owner, expires_unix_nano}
//
// Acquisition is an atomic link(2) of a fully-written temp file — the
// classic shared-filesystem lock: create-if-absent with the content
// already in place, so a reader never observes a half-written lease.
// The holder renews by temp-file + rename (atomic replace) every TTL/3;
// a lease whose expiry has passed is stale and any peer may steal it
// (remove + re-link). Release removes the file iff it is still ours.
//
// Leases are *work deduplication*, not a safety mechanism. Trace builds
// are deterministic — two processes that both believe they hold the
// lease publish bit-identical spills, and publication is already safe
// against concurrency (temp file + atomic rename, CRC validation on
// open, quarantine on mismatch). So a stale-but-unexpired lease held by
// a skewed clock can waste a build, never corrupt one; the skewed-clock
// test pins exactly that. All expiry decisions use the cache's injected
// clock (diskCache.now) so boundary behavior is testable.
const leaseExt = ".lease"

// DefaultLeaseTTL is the lease expiry used when SetLease gets ttl <= 0:
// long enough that renewal (every TTL/3) tolerates scheduling hiccups,
// short enough that a crashed builder's key is reclaimed promptly.
const DefaultLeaseTTL = 30 * time.Second

// leaseInfo is the on-disk lease record.
type leaseInfo struct {
	Owner   string `json:"owner"`
	Expires int64  `json:"expires_unix_nano"`
}

// leasePollDefault is how often a blocked claimer re-probes the lease;
// a field on diskCache so tests can shrink it.
const leasePollDefault = 25 * time.Millisecond

func (d *diskCache) leasePath(hash string) string {
	return filepath.Join(d.dir, hash+leaseExt)
}

// tryClaimLease makes one non-blocking attempt to take the lease at
// path. It returns claimed=false when another owner holds an unexpired
// lease; expired or malformed leases are stolen (removed) first, and
// racing stealers are resolved by the link: exactly one claimer wins,
// the rest see EEXIST and retry.
func (d *diskCache) tryClaimLease(path string) (claimed bool, err error) {
	if data, rerr := os.ReadFile(path); rerr == nil {
		var li leaseInfo
		if json.Unmarshal(data, &li) == nil && li.Owner != "" {
			if li.Expires > d.now().UnixNano() {
				return false, nil
			}
			// Expired: steal. Count only the remover, not racing losers.
			if os.Remove(path) == nil {
				d.leasesStolen.Add(1)
			}
		} else {
			// Malformed lease (torn write through a non-atomic channel,
			// truncation): nothing can ever release it, so reclaim it.
			os.Remove(path)
		}
	}
	li := leaseInfo{Owner: d.leaseOwner, Expires: d.now().Add(d.leaseTTL).UnixNano()}
	data, err := json.Marshal(li)
	if err != nil {
		return false, err
	}
	tmp, err := os.CreateTemp(d.dir, tmpPrefix+"*")
	if err != nil {
		return false, err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return false, err
	}
	if err := tmp.Close(); err != nil {
		return false, err
	}
	if err := os.Link(tmpName, path); err != nil {
		if os.IsExist(err) {
			return false, nil // lost the race; caller polls again
		}
		return false, err
	}
	d.leasesAcquired.Add(1)
	return true, nil
}

// acquireLease blocks (polling) until this cache owns the lease for
// hash, then starts a background renewer. The returned unlock stops the
// renewer and releases the lease if it is still ours.
func (d *diskCache) acquireLease(hash string) (unlock func(), err error) {
	path := d.leasePath(hash)
	for {
		claimed, err := d.tryClaimLease(path)
		if err != nil {
			return nil, err
		}
		if claimed {
			break
		}
		time.Sleep(d.leasePoll)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go d.renewLease(path, stop, done)
	return func() {
		close(stop)
		<-done
		d.releaseLease(path)
	}, nil
}

// renewLease extends the lease every TTL/3 until stopped. If the lease
// file vanishes or changes owner (a peer stole it after our expiry —
// e.g. this process was paused past the TTL), renewal stops quietly:
// the build keeps running, and its eventual publish is still safe by
// the determinism argument above.
func (d *diskCache) renewLease(path string, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	interval := d.leaseTTL / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			data, err := os.ReadFile(path)
			if err != nil {
				return // vanished: stolen and maybe re-claimed; stop renewing
			}
			var li leaseInfo
			if json.Unmarshal(data, &li) != nil || li.Owner != d.leaseOwner {
				return // not ours anymore
			}
			li.Expires = d.now().Add(d.leaseTTL).UnixNano()
			renewed, err := json.Marshal(li)
			if err != nil {
				return
			}
			// Atomic replace; if a stealer removed the file between our read
			// and this rename we harmlessly re-assert the lease we believe we
			// hold — the stealer's next probe sees it unexpired and waits.
			if _, err := writeAtomic(d.dir, tmpPrefix+"*", path, func(f *os.File) error {
				_, werr := f.Write(append(renewed, '\n'))
				return werr
			}); err != nil {
				return
			}
		}
	}
}

// releaseLease removes the lease iff this cache still owns it.
func (d *diskCache) releaseLease(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var li leaseInfo
	if json.Unmarshal(data, &li) != nil || li.Owner != d.leaseOwner {
		return
	}
	os.Remove(path)
}

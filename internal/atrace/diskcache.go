package atrace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultDiskCapBytes bounds the spill directory; paper-scale streams run
// to gigabytes each, so the default holds a handful before evicting.
const DefaultDiskCapBytes = 32 << 30

const (
	spillExt      = ".acol"
	indexName     = "index.json"
	indexLockName = "index.lock"
)

// diskCache is the shared on-disk half of Cache: a directory of columnar
// spill files coordinated across processes.
//
// Layout of the directory:
//
//	<hash>.acol        columnar spill (hash = sha256 of the canonical key)
//	<hash>.lock        per-key build lock (flock); cross-process singleflight
//	index.json         hash -> {key, bytes, last_used}; LRU eviction state
//	index.lock         guards every index.json read-modify-write
//	<hash>.corrupt.*   quarantined spills that failed validation
//
// Protocol: readers open the spill directly (no lock) and touch the index
// on success. A miss takes <hash>.lock, re-checks the spill (another
// process may have published while we waited), builds if still absent,
// publishes via temp-file + rename (atomic on POSIX), then updates the
// index and evicts over-capacity entries — all before releasing the key
// lock. Corrupt or truncated spills are renamed aside, never trusted.
type diskCache struct {
	dir      string
	capBytes int64

	quarantined atomic.Uint64
	evictions   atomic.Uint64
}

func newDiskCache(dir string) *diskCache {
	return &diskCache{dir: dir, capBytes: DefaultDiskCapBytes}
}

// keyHash derives the on-disk name for a key: a hash of its canonical
// string form.
func keyHash(key Key) string {
	sum := sha256.Sum256([]byte(key.String()))
	return hex.EncodeToString(sum[:16])
}

func (d *diskCache) spillPath(hash string) string { return filepath.Join(d.dir, hash+spillExt) }

// lockKey serializes builders of one key across processes.
func (d *diskCache) lockKey(hash string) (unlock func(), err error) {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return nil, err
	}
	return lockFile(filepath.Join(d.dir, hash+".lock"))
}

// load opens the spill for key if present and valid. Corrupt files are
// quarantined so the caller rebuilds instead of crashing; the error then
// wraps ErrCorruptSpill.
func (d *diskCache) load(hash string) (*Stream, error) {
	path := d.spillPath(hash)
	s, err := OpenColumnarFile(path)
	if err != nil {
		if errors.Is(err, ErrCorruptSpill) {
			d.quarantine(hash, path)
		}
		return nil, err
	}
	d.touch(hash)
	return s, nil
}

// quarantine moves a failed spill aside (keeping it for post-mortems) and
// drops its index entry, so the key rebuilds cleanly.
func (d *diskCache) quarantine(hash, path string) {
	dst := fmt.Sprintf("%s.corrupt.%d.%d", filepath.Join(d.dir, hash), os.Getpid(), time.Now().UnixNano())
	if err := os.Rename(path, dst); err != nil && !os.IsNotExist(err) {
		// Could not move it aside; remove so the rebuild can publish.
		os.Remove(path)
	}
	d.quarantined.Add(1)
	d.withIndex(func(idx *indexFile) { delete(idx.Entries, hash) })
}

// publish atomically installs a freshly built stream as the spill for
// key and records it in the index, evicting over-capacity entries.
func (d *diskCache) publish(hash string, key Key, s *Stream) (string, error) {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(d.dir, ".acol-tmp-*")
	if err != nil {
		return "", err
	}
	if err := WriteColumnar(tmp, s); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	path := d.spillPath(hash)
	fi, err := os.Stat(tmp.Name())
	if err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	d.withIndex(func(idx *indexFile) {
		idx.Entries[hash] = indexEntry{Key: key.String(), Bytes: fi.Size(), LastUsed: time.Now().UnixNano()}
		d.evictIndexed(idx, hash)
	})
	return path, nil
}

// touch refreshes a spill's LRU position after a disk hit.
func (d *diskCache) touch(hash string) {
	d.withIndex(func(idx *indexFile) {
		e, ok := idx.Entries[hash]
		if !ok {
			// Spill exists but predates the index (or the index was lost);
			// adopt it so eviction accounting sees it.
			if fi, err := os.Stat(d.spillPath(hash)); err == nil {
				e.Bytes = fi.Size()
			}
		}
		e.LastUsed = time.Now().UnixNano()
		idx.Entries[hash] = e
	})
}

// evictIndexed removes least-recently-used spills until the directory
// fits capBytes, never evicting keep (the entry just published).
func (d *diskCache) evictIndexed(idx *indexFile, keep string) {
	if d.capBytes <= 0 {
		return
	}
	var total int64
	hashes := make([]string, 0, len(idx.Entries))
	for h, e := range idx.Entries {
		total += e.Bytes
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool {
		return idx.Entries[hashes[i]].LastUsed < idx.Entries[hashes[j]].LastUsed
	})
	for _, h := range hashes {
		if total <= d.capBytes {
			break
		}
		if h == keep {
			continue
		}
		total -= idx.Entries[h].Bytes
		delete(idx.Entries, h)
		os.Remove(d.spillPath(h))
		d.evictions.Add(1)
	}
}

// indexEntry is one spill's record in index.json.
type indexEntry struct {
	Key      string `json:"key"`
	Bytes    int64  `json:"bytes"`
	LastUsed int64  `json:"last_used_unix_nano"`
}

type indexFile struct {
	Version int                   `json:"version"`
	Entries map[string]indexEntry `json:"entries"`
}

// withIndex runs fn over the index under the cross-process index lock,
// then writes the result back atomically. An unreadable or corrupt index
// is replaced rather than trusted. Index failures are deliberately
// swallowed: the index only drives eviction accounting, and losing it
// merely delays eviction — it never affects correctness.
func (d *diskCache) withIndex(fn func(*indexFile)) {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return
	}
	unlock, err := lockFile(filepath.Join(d.dir, indexLockName))
	if err != nil {
		return
	}
	defer unlock()

	idx := indexFile{Version: 1, Entries: make(map[string]indexEntry)}
	path := filepath.Join(d.dir, indexName)
	if data, err := os.ReadFile(path); err == nil {
		if json.Unmarshal(data, &idx) != nil || idx.Entries == nil {
			idx = indexFile{Version: 1, Entries: make(map[string]indexEntry)}
		}
	}
	fn(&idx)
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, ".index-tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

package atrace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// DefaultDiskCapBytes bounds the spill directory; paper-scale streams run
// to gigabytes each, so the default holds a handful before evicting.
const DefaultDiskCapBytes = 32 << 30

const (
	spillExt      = ".acol"
	indexName     = "index.json"
	indexLockName = "index.lock"

	tmpPrefix      = ".acol-tmp-"
	indexTmpPrefix = ".index-tmp-"
	corruptMark    = ".corrupt."

	// sweepTmpMaxAge bounds how long abandoned temp files (and orphaned
	// segment files whose manifest never landed) survive: long enough that
	// no live builder's in-flight file is ever reclaimed, short enough
	// that crashed builders do not leak disk.
	sweepTmpMaxAge = time.Hour
	// sweepCorruptMaxAge bounds how long quarantined spills are kept for
	// post-mortems before the sweep reclaims them. Until then their bytes
	// count against the directory capacity.
	sweepCorruptMaxAge = 24 * time.Hour
)

// testCrashBeforeRename, when set (by the multi-process crash test),
// runs between writing a publish temp file and renaming it into place.
var testCrashBeforeRename func()

// writeAtomic writes dst via a temp file in dir plus an atomic rename,
// returning the published size. On any failure the temp file is removed
// and dst is untouched.
func writeAtomic(dir, tmpPattern, dst string, write func(*os.File) error) (int64, error) {
	tmp, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return 0, err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	fi, err := os.Stat(tmp.Name())
	if err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if testCrashBeforeRename != nil {
		testCrashBeforeRename()
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return fi.Size(), nil
}

// diskCache is the shared on-disk half of Cache: a directory of columnar
// spill files coordinated across processes.
//
// Layout of the directory:
//
//	<hash>.acol          spill (hash = sha256 of the canonical key): a
//	                     monolithic MLPCOLS1 stream or an MLPCOLS2 manifest
//	<hash>.acol.segNNNN  segment files of a segmented spill
//	<hash>.lock          per-key build lock (flock); cross-process singleflight
//	index.json           hash -> {key, bytes, last_used}; LRU eviction state
//	index.lock           guards every index.json read-modify-write
//	*.corrupt.*          quarantined spills that failed validation
//
// Protocol: readers open the spill directly (no lock) and touch the index
// on success. A miss takes <hash>.lock, re-checks the spill (another
// process may have published while we waited), builds if still absent,
// publishes via temp-file + rename (atomic on POSIX), then updates the
// index and evicts over-capacity entries — all before releasing the key
// lock. Segmented builds publish each segment file as it completes and
// the manifest last, so cross-process visibility is still all-or-nothing.
// Corrupt or truncated spills are renamed aside, never trusted.
//
// Lifecycle of litter: every publish also sweeps the directory (under the
// index lock) — abandoned temp files and manifest-less segment files
// older than tmpMaxAge are removed, quarantined *.corrupt.* files are
// kept for corruptMaxAge (their bytes counting against capBytes) and then
// removed, and lock files whose spill is gone are unlinked when provably
// unheld (see sweepLockFile).
type diskCache struct {
	dir      string
	capBytes int64

	// Sweep age bounds; fields so tests can force immediate reclamation.
	tmpMaxAge     time.Duration
	corruptMaxAge time.Duration
	// now is the sweep's clock; a field so tests can pin litter ages
	// exactly at the young/aged boundary. Lease expiry decisions use it
	// too (see lease.go), so clock-skew scenarios are testable.
	now func() time.Time

	// leaseOwner, when non-empty, switches per-key build coordination
	// from flock to cross-host lease files with leaseTTL expiry (see
	// lease.go); leasePoll is a blocked claimer's re-probe interval.
	leaseOwner string
	leaseTTL   time.Duration
	leasePoll  time.Duration

	quarantined    atomic.Uint64
	evictions      atomic.Uint64
	swept          atomic.Uint64
	segEvictions   atomic.Uint64
	segRebuilds    atomic.Uint64
	leasesAcquired atomic.Uint64
	leasesStolen   atomic.Uint64
}

func newDiskCache(dir string) *diskCache {
	return &diskCache{
		dir:           dir,
		capBytes:      DefaultDiskCapBytes,
		tmpMaxAge:     sweepTmpMaxAge,
		corruptMaxAge: sweepCorruptMaxAge,
		now:           time.Now,
		leasePoll:     leasePollDefault,
	}
}

// keyHash derives the on-disk name for a key: a hash of its canonical
// string form.
func keyHash(key Key) string {
	sum := sha256.Sum256([]byte(key.String()))
	return hex.EncodeToString(sum[:16])
}

func (d *diskCache) spillPath(hash string) string { return filepath.Join(d.dir, hash+spillExt) }

// spillFiles lists the files making up one key's spill: the manifest (or
// monolithic spill) plus any segment files.
func (d *diskCache) spillFiles(hash string) []string {
	base := d.spillPath(hash)
	files := []string{base}
	files = append(files, segmentFiles(base)...)
	return files
}

// spillBytes sums the on-disk size of one key's spill; 0 when the spill
// is gone.
func (d *diskCache) spillBytes(hash string) int64 {
	var total int64
	if fi, err := os.Stat(d.spillPath(hash)); err != nil {
		return 0
	} else {
		total = fi.Size()
	}
	for _, p := range segmentFiles(d.spillPath(hash)) {
		if fi, err := os.Stat(p); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// lockKey serializes builders of one key across processes: flock on a
// single host, lease files (lease.go) when a lease owner is configured
// and the directory may be shared between hosts.
func (d *diskCache) lockKey(hash string) (unlock func(), err error) {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return nil, err
	}
	if d.leaseOwner != "" {
		return d.acquireLease(hash)
	}
	return lockFile(filepath.Join(d.dir, hash+".lock"))
}

// load opens the spill for key if present and valid. Corrupt files are
// quarantined so the caller rebuilds instead of crashing; the error then
// wraps ErrCorruptSpill. One exception: a segmented spill whose only
// defect is missing segments all named by the eviction sidecar is a
// rebuildable hole, reported as *SegmentsEvictedError without touching
// the (still perfectly good) remaining files.
func (d *diskCache) load(hash string) (Trace, error) {
	path := d.spillPath(hash)
	t, err := OpenSpill(path)
	if err != nil {
		if errors.Is(err, ErrCorruptSpill) {
			if missing, ok := d.evictedHole(path); ok {
				return nil, &SegmentsEvictedError{Missing: missing}
			}
			d.quarantine(hash)
		}
		return nil, err
	}
	d.touch(hash)
	return t, nil
}

// quarantine moves a failed spill — manifest and any segment files —
// aside (keeping them for post-mortems; the sweep reclaims them after
// corruptMaxAge) and drops its index entry, so the key rebuilds cleanly.
// The Quarantined counter tracks spills actually moved aside: when two
// readers race on the same corrupt spill, the loser finds nothing left
// to move and must not count the same quarantine twice.
func (d *diskCache) quarantine(hash string) {
	mark := fmt.Sprintf("%s%d.%d", corruptMark, os.Getpid(), time.Now().UnixNano())
	moved := false
	for _, p := range d.spillFiles(hash) {
		if err := os.Rename(p, p+mark); err == nil {
			moved = true
		} else if !os.IsNotExist(err) {
			// Could not move it aside; remove so the rebuild can publish.
			os.Remove(p)
			moved = true
		}
	}
	os.Remove(d.spillPath(hash) + evictStateSuffix)
	if moved {
		d.quarantined.Add(1)
	}
	d.withIndex(func(idx *indexFile) { delete(idx.Entries, hash) })
}

// publish atomically installs a freshly built monolithic stream as the
// spill for key and records it in the index, evicting over-capacity
// entries.
func (d *diskCache) publish(hash string, key Key, s *Stream) (string, error) {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return "", err
	}
	path := d.spillPath(hash)
	size, err := writeAtomic(d.dir, tmpPrefix+"*", path, func(f *os.File) error {
		return WriteColumnar(f, s)
	})
	if err != nil {
		return "", err
	}
	d.recordPublished(hash, key, size)
	return path, nil
}

// recordPublished indexes a just-published spill, sweeps directory
// litter, and evicts over-capacity entries.
func (d *diskCache) recordPublished(hash string, key Key, bytes int64) {
	d.withIndex(func(idx *indexFile) {
		litter := d.sweepLocked(idx)
		idx.Entries[hash] = indexEntry{Key: key.String(), Bytes: bytes, LastUsed: time.Now().UnixNano()}
		d.evictIndexed(idx, hash, litter)
	})
}

// touch refreshes a spill's LRU position after a disk hit.
func (d *diskCache) touch(hash string) {
	d.withIndex(func(idx *indexFile) {
		e, ok := idx.Entries[hash]
		if !ok {
			// Spill exists but predates the index (or the index was lost);
			// adopt it so eviction accounting sees it. If the spill is
			// already gone (a concurrent eviction won the race), do NOT
			// insert: a phantom zero-byte entry would never count toward,
			// nor be reclaimed by, byte-cap eviction.
			b := d.spillBytes(hash)
			if b <= 0 {
				return
			}
			e.Bytes = b
		}
		e.LastUsed = time.Now().UnixNano()
		idx.Entries[hash] = e
	})
}

// evictIndexed removes least-recently-used spills until the directory —
// including litterBytes of unindexed litter (young quarantined files) —
// fits capBytes, never evicting keep (the entry just published). When
// the remaining overage is smaller than a victim, only tail segments of
// that victim are evicted (a rebuildable hole, see segevict.go) instead
// of the whole key — the margin costs a partial rebuild, not a full one.
func (d *diskCache) evictIndexed(idx *indexFile, keep string, litterBytes int64) {
	if d.capBytes <= 0 {
		return
	}
	total := litterBytes
	hashes := make([]string, 0, len(idx.Entries))
	for h, e := range idx.Entries {
		total += e.Bytes
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool {
		return idx.Entries[hashes[i]].LastUsed < idx.Entries[hashes[j]].LastUsed
	})
	for _, h := range hashes {
		if total <= d.capBytes {
			break
		}
		if h == keep {
			continue
		}
		if over := total - d.capBytes; over < idx.Entries[h].Bytes {
			total -= d.evictSegments(idx, h, over)
			if total <= d.capBytes {
				break
			}
			// Partial trim could not free enough (nothing evictable left
			// but segment 0, or not a segmented spill): fall through to
			// whole-key eviction with the entry's remaining bytes.
		}
		total -= idx.Entries[h].Bytes
		delete(idx.Entries, h)
		for _, p := range d.spillFiles(h) {
			os.Remove(p)
		}
		os.Remove(d.spillPath(h) + evictStateSuffix)
		d.evictions.Add(1)
	}
}

// sweepLocked reclaims directory litter; the caller holds the index
// lock. Removed: temp files and orphaned segment files (no manifest)
// older than tmpMaxAge, quarantined *.corrupt.* files older than
// corruptMaxAge, and lock files whose spill is gone when provably
// unheld. Returns the byte total of litter that was kept (young corrupt
// and temp files), so eviction can charge it against the capacity.
func (d *diskCache) sweepLocked(idx *indexFile) (litterBytes int64) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	now := d.now()
	manifests := make(map[string]bool)
	for _, de := range ents {
		if name := de.Name(); strings.HasSuffix(name, spillExt) {
			manifests[name] = true
		}
	}
	reap := func(de os.DirEntry, maxAge time.Duration) {
		fi, err := de.Info()
		if err != nil {
			return
		}
		if now.Sub(fi.ModTime()) > maxAge {
			if os.Remove(filepath.Join(d.dir, de.Name())) == nil {
				d.swept.Add(1)
			}
			return
		}
		litterBytes += fi.Size()
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || name == indexName || name == indexLockName {
			continue
		}
		switch {
		case strings.HasPrefix(name, tmpPrefix) || strings.HasPrefix(name, indexTmpPrefix):
			reap(de, d.tmpMaxAge)
		case strings.Contains(name, corruptMark):
			reap(de, d.corruptMaxAge)
		case strings.HasSuffix(name, evictStateSuffix):
			// Eviction sidecar whose manifest is gone (whole key evicted or
			// quarantined between the two removals): plain litter.
			if !manifests[strings.TrimSuffix(name, evictStateSuffix)] {
				reap(de, d.tmpMaxAge)
			}
		case strings.HasSuffix(name, leaseExt):
			// A lease names an in-flight claim. Expired ones are reclaimable
			// by definition (any claimer may steal them), so reap on sight;
			// unexpired ones are live litter whose bytes we keep charging.
			// Unreadable or malformed leases fall back to mtime aging.
			var li leaseInfo
			if data, rerr := os.ReadFile(filepath.Join(d.dir, name)); rerr == nil && json.Unmarshal(data, &li) == nil && li.Owner != "" {
				if li.Expires <= now.UnixNano() {
					if os.Remove(filepath.Join(d.dir, name)) == nil {
						d.swept.Add(1)
					}
				} else if fi, ferr := de.Info(); ferr == nil {
					litterBytes += fi.Size()
				}
			} else {
				reap(de, d.tmpMaxAge)
			}
		case strings.HasSuffix(name, ".lock"):
			// A lock file is litter only once its spill is gone (evicted or
			// never built); live keys keep theirs for reuse. Unlinking is
			// delegated to the platform shim, which only removes locks no
			// process holds.
			if !manifests[strings.TrimSuffix(name, ".lock")+spillExt] {
				if sweepLockFile(filepath.Join(d.dir, name)) {
					d.swept.Add(1)
				}
			}
		case segSuffixRe.MatchString(name):
			// Segment file whose manifest never landed (builder crashed
			// between segment publication and the manifest rename).
			if i := strings.LastIndex(name, ".seg"); i > 0 && !manifests[name[:i]] {
				reap(de, d.tmpMaxAge)
			}
		}
	}
	return litterBytes
}

// indexEntry is one spill's record in index.json.
type indexEntry struct {
	Key      string `json:"key"`
	Bytes    int64  `json:"bytes"`
	LastUsed int64  `json:"last_used_unix_nano"`
}

type indexFile struct {
	Version int                   `json:"version"`
	Entries map[string]indexEntry `json:"entries"`
}

// withIndex runs fn over the index under the cross-process index lock,
// then writes the result back atomically. An unreadable or corrupt index
// is replaced rather than trusted. Index failures are deliberately
// swallowed: the index only drives eviction accounting, and losing it
// merely delays eviction — it never affects correctness.
func (d *diskCache) withIndex(fn func(*indexFile)) {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return
	}
	unlock, err := lockFile(filepath.Join(d.dir, indexLockName))
	if err != nil {
		return
	}
	defer unlock()

	idx := indexFile{Version: 1, Entries: make(map[string]indexEntry)}
	path := filepath.Join(d.dir, indexName)
	if data, err := os.ReadFile(path); err == nil {
		if json.Unmarshal(data, &idx) != nil || idx.Entries == nil {
			idx = indexFile{Version: 1, Entries: make(map[string]indexEntry)}
		}
	}
	fn(&idx)
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, indexTmpPrefix+"*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

//go:build !unix

package atrace

import (
	"errors"
	"os"
)

var errMmapUnsupported = errors.New("atrace: mmap not supported on this platform")

// mmapFile always fails on non-unix platforms; OpenColumnarFile falls
// back to reading the spill into an aligned heap buffer (same format,
// same replay semantics, just resident memory instead of page cache).
func mmapFile(f *os.File, size int64) (*mapping, error) {
	return nil, errMmapUnsupported
}

func munmap(data []byte) {}

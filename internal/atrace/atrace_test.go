package atrace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/bpred"
	"mlpsim/internal/isa"
	"mlpsim/internal/mem"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

const (
	testWarmup  = 50_000
	testMeasure = 120_000
)

func captureStream(t testing.TB, w workload.Config, acfg annotate.Config) *Stream {
	t.Helper()
	a := annotate.New(workload.MustNew(w), acfg)
	a.Warm(testWarmup)
	return Capture(a, testMeasure)
}

func directInsts(w workload.Config, acfg annotate.Config) ([]annotate.Inst, annotate.Stats) {
	a := annotate.New(workload.MustNew(w), acfg)
	a.Warm(testWarmup)
	insts := a.Collect(testMeasure)
	return insts, a.Stats()
}

// TestReplayMatchesDirect is the core fidelity check: the replayed stream
// must be field-for-field identical to what a direct annotator yields,
// for every workload preset.
func TestReplayMatchesDirect(t *testing.T) {
	for _, w := range workload.Presets(7) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, wantStats := directInsts(w, annotate.Config{})
			s := captureStream(t, w, annotate.Config{})
			if s.Len() != int64(len(want)) {
				t.Fatalf("stream length %d, want %d", s.Len(), len(want))
			}
			if got := s.Stats(); got != wantStats {
				t.Errorf("stream stats %+v, want %+v", got, wantStats)
			}
			r := s.Replay()
			for i, wi := range want {
				gi, ok := r.Next()
				if !ok {
					t.Fatalf("replay ended early at %d", i)
				}
				if gi != wi {
					t.Fatalf("inst %d: replay %+v, want %+v", i, gi, wi)
				}
			}
			if _, ok := r.Next(); ok {
				t.Fatal("replay yielded extra instructions")
			}
		})
	}
}

// TestReplayMatchesDirectValuePrediction covers the VPOutcome column.
func TestReplayMatchesDirectValuePrediction(t *testing.T) {
	w := workload.Presets(3)[0]
	acfgFor := func() annotate.Config {
		return annotate.Config{Value: vpred.NewLastValue(vpred.DefaultEntries)}
	}
	want, wantStats := directInsts(w, acfgFor())
	s := captureStream(t, w, acfgFor())
	if got := s.Stats(); got != wantStats {
		t.Errorf("stream stats %+v, want %+v", got, wantStats)
	}
	r := s.Replay()
	var vpSeen bool
	for i, wi := range want {
		gi, ok := r.Next()
		if !ok {
			t.Fatalf("replay ended early at %d", i)
		}
		if gi != wi {
			t.Fatalf("inst %d: replay %+v, want %+v", i, gi, wi)
		}
		if gi.VPOutcome != vpred.NoPredict {
			vpSeen = true
		}
	}
	if !vpSeen {
		t.Error("no value-prediction outcomes in test window; coverage too weak")
	}
}

// TestReplaysAreIndependent: two concurrent cursors over one stream do
// not interfere.
func TestReplaysAreIndependent(t *testing.T) {
	w := workload.Presets(5)[1]
	s := captureStream(t, w, annotate.Config{})
	r1, r2 := s.Replay(), s.Replay()
	// Advance r1 halfway, then run r2 fully, then finish r1.
	half := s.Len() / 2
	for i := int64(0); i < half; i++ {
		r1.Next()
	}
	var n2 int64
	for {
		if _, ok := r2.Next(); !ok {
			break
		}
		n2++
	}
	var n1 = half
	for {
		if _, ok := r1.Next(); !ok {
			break
		}
		n1++
	}
	if n1 != s.Len() || n2 != s.Len() {
		t.Fatalf("cursors saw %d / %d instructions, want %d", n1, n2, s.Len())
	}
}

// TestStreamRoundTrip: WriteStream/ReadStream preserve every column and
// the stored statistics.
func TestStreamRoundTrip(t *testing.T) {
	w := workload.Presets(11)[2]
	s := captureStream(t, w, annotate.Config{})
	var buf bytes.Buffer
	if err := WriteStream(&buf, s); err != nil {
		t.Fatalf("WriteStream: %v", err)
	}
	got, err := ReadStream(&buf)
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round-tripped stream differs")
		if got.n != s.n || got.firstIndex != s.firstIndex || got.lineShift != s.lineShift {
			t.Errorf("geometry: got (n=%d first=%d shift=%d), want (n=%d first=%d shift=%d)",
				got.n, got.firstIndex, got.lineShift, s.n, s.firstIndex, s.lineShift)
		}
		if got.stats != s.stats {
			t.Errorf("stats: got %+v, want %+v", got.stats, s.stats)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.atrace")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// TestConfigKey covers keyability rules.
func TestConfigKey(t *testing.T) {
	k0, fresh, ok := ConfigKey(annotate.Config{})
	if !ok {
		t.Fatal("zero config must be keyable")
	}
	// nil branch and an explicit untrained default gshare share a stream.
	k1, _, ok := ConfigKey(annotate.Config{Branch: bpred.NewGshare(bpred.DefaultGshare())})
	if !ok || k1 != k0 {
		t.Errorf("untrained default gshare key %q, want %q", k1, k0)
	}
	// A trained gshare is not keyable.
	g := bpred.NewGshare(bpred.DefaultGshare())
	g.Update(&isa.Inst{Class: isa.Branch, Taken: true})
	if _, _, ok := ConfigKey(annotate.Config{Branch: g}); ok {
		t.Error("trained gshare must not be keyable")
	}
	// Prefetchers: nil and untrained deterministic instances are keyable,
	// trained ones are not (their table state is invisible to the key).
	if _, _, ok := ConfigKey(annotate.Config{IPrefetch: nil, DPrefetch: nil}); !ok {
		t.Error("nil prefetchers must stay keyable")
	}
	pcfg := annotate.Config{
		IPrefetch: prefetch.NewSequential(4, mem.IFetch),
		DPrefetch: prefetch.NewStride(1024, 4),
	}
	kp, pFresh, ok := ConfigKey(pcfg)
	if !ok || kp == k0 {
		t.Errorf("untrained prefetcher config must be keyable and distinct: %q vs %q", kp, k0)
	}
	kp2, _, _ := ConfigKey(annotate.Config{
		IPrefetch: prefetch.NewSequential(8, mem.IFetch),
		DPrefetch: prefetch.NewStride(1024, 4),
	})
	if kp2 == kp {
		t.Error("prefetcher depth must be part of the key")
	}
	pc1, pc2 := pFresh(), pFresh()
	if pc1.IPrefetch == pc2.IPrefetch || pc1.DPrefetch == pc2.DPrefetch {
		t.Error("fresh() must not reuse prefetcher instances")
	}
	if pc1.IPrefetch == pcfg.IPrefetch || pc1.DPrefetch == pcfg.DPrefetch {
		t.Error("fresh() must not alias the caller's prefetcher instances")
	}
	trained := prefetch.NewStride(1024, 4)
	trained.OnLoad(mem.NewHierarchy(mem.DefaultHierarchy()), 0x400, 0x1000)
	if _, _, ok := ConfigKey(annotate.Config{DPrefetch: trained}); ok {
		t.Error("trained stride prefetcher must not be keyable")
	}
	// Value predictors.
	kv, _, ok := ConfigKey(annotate.Config{Value: vpred.NewLastValue(1 << 10)})
	if !ok || kv == k0 {
		t.Errorf("last-value config must be keyable and distinct: %q vs %q", kv, k0)
	}
	// fresh() must build new predictor instances each call.
	c1, c2 := fresh(), fresh()
	if c1.Branch == c2.Branch {
		t.Error("fresh() must not reuse stateful predictor instances")
	}
}

// TestCacheSingleflight: concurrent Gets for one key run one build.
func TestCacheSingleflight(t *testing.T) {
	w := workload.Presets(2)[0]
	c := NewCache()
	var builds atomic.Int64
	key := Key{Workload: w, Annot: "test", Warmup: testWarmup, Measure: testMeasure}
	build := func() *Stream {
		builds.Add(1)
		return captureStream(t, w, annotate.Config{})
	}
	const goroutines = 8
	streams := make([]Trace, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			streams[i] = c.Get(key, build)
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if streams[i] != streams[0] {
			t.Errorf("goroutine %d got a different stream pointer", i)
		}
	}
	st := c.Stats()
	if st.Builds != 1 || st.Hits+st.Misses != goroutines {
		t.Errorf("stats %+v inconsistent with %d gets", st, goroutines)
	}
}

// TestCacheBuildPanic: a panicking build propagates to all waiters and
// the key is retryable afterwards.
func TestCacheBuildPanic(t *testing.T) {
	c := NewCache()
	key := Key{Annot: "panic"}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic to propagate")
			}
		}()
		c.Get(key, func() *Stream { panic("boom") })
	}()
	s := c.Get(key, func() *Stream { return &Stream{} })
	if s == nil {
		t.Fatal("retry after panic returned nil")
	}
}

// TestCacheEviction: exceeding the byte cap drops LRU entries but never
// the most recent one.
func TestCacheEviction(t *testing.T) {
	c := NewCache()
	w := workload.Presets(4)[0]
	mk := func(i int) (Key, *Stream) {
		cfg := w
		cfg.Seed = int64(i + 100)
		a := annotate.New(workload.MustNew(cfg), annotate.Config{})
		a.Warm(1000)
		return Key{Workload: cfg, Annot: "e"}, Capture(a, 5000)
	}
	k0, s0 := mk(0)
	c.Get(k0, func() *Stream { return s0 })
	c.SetCapBytes(s0.MemBytes() + s0.MemBytes()/2) // room for ~1.5 streams
	k1, s1 := mk(1)
	c.Get(k1, func() *Stream { return s1 })
	st := c.Stats()
	if st.Streams != 1 {
		t.Errorf("after eviction %d streams cached, want 1", st.Streams)
	}
	// k1 must have survived (most recent).
	var rebuilt bool
	c.Get(k1, func() *Stream { rebuilt = true; return s1 })
	if rebuilt {
		t.Error("most-recently-used stream was evicted")
	}
}

// TestCacheDiskSpill: a second cache instance sharing the directory loads
// from disk instead of re-annotating, and the loaded stream is identical.
func TestCacheDiskSpill(t *testing.T) {
	dir := t.TempDir()
	w := workload.Presets(6)[0]
	key := Key{Workload: w, Annot: "spill", Warmup: testWarmup, Measure: testMeasure}

	c1 := NewCache()
	c1.SetDir(dir)
	s1 := c1.Get(key, func() *Stream { return captureStream(t, w, annotate.Config{}) })

	c2 := NewCache()
	c2.SetDir(dir)
	var rebuilt bool
	s2 := c2.Get(key, func() *Stream { rebuilt = true; return nil })
	if rebuilt {
		t.Fatal("second cache re-annotated despite disk spill")
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("disk hits %d, want 1", st.DiskHits)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("disk-loaded stream differs from built stream")
	}
}

package atrace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/workload"
)

// buildSegmentedSpill captures a tiny segmented trace (manifest plus
// segment files) at path and returns the manifest bytes and every
// segment file's bytes.
func buildSegmentedSpill(tb testing.TB, path string) (manifest []byte, segs [][]byte) {
	tb.Helper()
	w := workload.Presets(17)[0]
	p := CaptureSegmentedToFile(path, SegSpec{
		NewAnnotator: func() *annotate.Annotator {
			return annotate.New(workload.MustNew(w), annotate.Config{})
		},
		Warmup:       2_000,
		Measure:      3_000,
		SegmentInsts: 1_000,
		Workers:      2,
	})
	if _, err := p.Wait(); err != nil {
		tb.Fatalf("segmented capture: %v", err)
	}
	if err := p.PublishErr(); err != nil {
		tb.Fatalf("segmented publish: %v", err)
	}
	manifest, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	for _, sp := range segmentFiles(path) {
		data, err := os.ReadFile(sp)
		if err != nil {
			tb.Fatal(err)
		}
		segs = append(segs, data)
	}
	return manifest, segs
}

// FuzzOpenSegmentManifest feeds arbitrary bytes to the MLPCOLS2
// manifest parser through the full disk-cache load path, with real
// segment files sitting beside the manifest. The contract under fuzz:
// never panic; either the spill opens and replays, or the load fails
// with the manifest quarantined (moved aside) so the key rebuilds —
// a corrupt or truncated manifest must never wedge the cache.
func FuzzOpenSegmentManifest(f *testing.F) {
	valid, segData := buildSegmentedSpill(f, filepath.Join(f.TempDir(), "seed"+spillExt))

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(valid[:len(valid)/2])             // truncated mid-manifest
	f.Add(append(bytes.Clone(valid), 0xff)) // trailing garbage breaks the size check
	for _, off := range []int{8, 12, 16, 20, 24, 32, 40, 48, len(valid) - 1} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0x5a
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		d := newDiskCache(dir)
		const hash = "00ff00ff"
		path := d.spillPath(hash)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		for k, sd := range segData {
			if err := os.WriteFile(segmentPath(path, k), sd, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		tr, err := d.load(hash)
		if err == nil {
			// The bytes parsed as a whole spill (the untouched seed, or a
			// mutation the CRC could not distinguish — vanishingly rare).
			// It must then actually replay.
			src := tr.Source()
			var inst annotate.Inst
			var n int64
			for src.NextInto(&inst) {
				n++
			}
			if n != tr.Len() {
				t.Fatalf("opened spill replays %d instructions, promises %d", n, tr.Len())
			}
			return
		}
		if !errors.Is(err, ErrCorruptSpill) {
			t.Fatalf("load failed with a non-corruption error: %v", err)
		}
		// Corruption must quarantine: the manifest is moved aside so the
		// next Get rebuilds instead of tripping over it forever.
		if _, serr := os.Stat(path); !os.IsNotExist(serr) {
			t.Fatalf("corrupt manifest still in place after load: %v", serr)
		}
		if d.quarantined.Load() == 0 {
			t.Fatal("quarantine counter not bumped for a corrupt manifest")
		}
	})
}

// TestOpenSegmentManifestSeedCorpus double-checks the two interesting
// seed shapes outside the fuzz engine: the valid manifest opens, and a
// CRC-broken copy of it quarantines.
func TestOpenSegmentManifestSeedCorpus(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "x"+spillExt)
	valid, _ := buildSegmentedSpill(t, base)

	if tr, err := OpenSegmentedFile(base); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	} else if tr.Len() != 3_000 {
		t.Fatalf("valid manifest opened with %d insts, want 3000", tr.Len())
	}

	mut := bytes.Clone(valid)
	mut[len(mut)-1] ^= 0x5a // breaks a segment record and the CRC
	if err := os.WriteFile(base, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenSegmentedFile(base)
	if err == nil || !errors.Is(err, ErrCorruptSpill) {
		t.Fatalf("CRC-broken manifest error = %v, want ErrCorruptSpill", err)
	}
}

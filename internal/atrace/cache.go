package atrace

import (
	"container/list"
	"errors"
	"os"
	"sync"
	"time"

	"mlpsim/internal/annotate"
)

// DefaultCapBytes is the default in-memory cache capacity. A Default-scale
// (8M instruction) stream is roughly 100MB, so this holds the handful of
// distinct annotation configurations a full experiment batch touches.
// Memory-mapped streams account almost nothing against it: their columns
// live in the OS page cache, not the Go heap.
const DefaultCapBytes = 8 << 30

// Cache is a keyed store of annotated traces with single-flight build
// deduplication: concurrent Get calls for the same key block on one build
// instead of annotating in parallel. Eviction is LRU by approximate byte
// footprint; evicted traces stay valid for replays already in flight
// (they are immutable), the cache merely drops its reference.
//
// With Dir set, the directory becomes a cache shared across processes:
// misses memory-map a columnar spill file when one exists (replay then
// reads pages from the OS page cache rather than resident heap), and
// builders coordinate through per-key file locks so N concurrent
// processes perform exactly one annotation pass per key. Publication is
// atomic (temp file + rename), corrupt or truncated spills are
// quarantined and rebuilt, and an on-disk index drives byte-cap LRU
// eviction of the directory. See diskCache for the layout and protocol.
//
// With SetSegments configured, GetTrace builds split the measured window
// into fixed-size segments captured by parallel workers (see SegSpec)
// and spill as an MLPCOLS2 manifest plus per-segment files.
type Cache struct {
	mu         sync.Mutex
	capBytes   int64
	size       int64
	disk       *diskCache
	entries    map[Key]*entry
	order      *list.List // front = most recently used
	segInsts   int64
	segWorkers int
	leaseOwner string
	leaseTTL   time.Duration

	hits     uint64
	misses   uint64
	builds   uint64
	diskHits uint64
}

type entry struct {
	key   Key
	ready chan struct{} // closed when trace (or panic) is set
	trace Trace
	pval  any // panic value propagated to waiters
	elem  *list.Element
	bytes int64
}

// NewCache returns an in-memory cache with DefaultCapBytes capacity.
func NewCache() *Cache {
	return &Cache{
		capBytes: DefaultCapBytes,
		entries:  make(map[Key]*entry),
		order:    list.New(),
	}
}

// SetCapBytes adjusts the in-memory capacity (<= 0 means unbounded) and
// evicts immediately if over the new capacity.
func (c *Cache) SetCapBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capBytes = n
	c.evictLocked()
}

// SetDir enables the shared on-disk cache rooted at dir (created on
// first write). An empty dir disables it.
func (c *Cache) SetDir(dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dir == "" {
		c.disk = nil
		return
	}
	c.disk = newDiskCache(dir)
	c.disk.leaseOwner = c.leaseOwner
	c.disk.leaseTTL = c.leaseTTL
}

// SetLease switches cross-process build coordination from flock to
// cross-host lease files: owner identifies this process in lease
// records (must be unique across all processes sharing the directory —
// e.g. the daemon's peer id), ttl is the lease expiry renewed by live
// builders. An empty owner restores flock coordination. Order with
// SetDir does not matter.
func (c *Cache) SetLease(owner string, ttl time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if owner != "" && ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	c.leaseOwner = owner
	c.leaseTTL = ttl
	if c.disk != nil {
		c.disk.leaseOwner = owner
		if ttl > 0 {
			c.disk.leaseTTL = ttl
		}
	}
}

// SetDiskCapBytes bounds the spill directory's total size (<= 0 means
// unbounded); least-recently-used spills are evicted at publish time.
// Takes effect only after SetDir.
func (c *Cache) SetDiskCapBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disk != nil {
		c.disk.capBytes = n
	}
}

// SetSegments configures segmented capture for GetTrace builds: the
// measured window splits into segments of insts instructions captured by
// up to workers parallel workers (0 = GOMAXPROCS). insts <= 0 restores
// the monolithic single-pass capture.
func (c *Cache) SetSegments(insts int64, workers int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.segInsts = insts
	c.segWorkers = workers
}

// Stats reports cache effectiveness counters.
type CacheStats struct {
	Hits          uint64 // Get calls served from memory (or by joining a build)
	Misses        uint64 // Get calls that had to build or load
	Builds        uint64 // annotation passes actually executed
	DiskHits      uint64 // misses served from the on-disk spill
	Quarantined   uint64 // corrupt spill files moved aside
	DiskEvictions uint64 // spill files evicted for directory capacity
	Swept         uint64 // litter files reclaimed by the directory sweep
	SegEvictions  uint64 // individual segments evicted under the byte cap
	SegRebuilds   uint64 // evicted segments rebuilt on demand
	LeasesTaken   uint64 // cross-host build leases acquired
	LeasesStolen  uint64 // expired leases reclaimed from dead owners
	Bytes         int64  // current in-memory footprint
	Streams       int    // traces currently held
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Hits: c.hits, Misses: c.misses, Builds: c.builds, DiskHits: c.diskHits,
		Bytes: c.size, Streams: len(c.entries),
	}
	if c.disk != nil {
		st.Quarantined = c.disk.quarantined.Load()
		st.DiskEvictions = c.disk.evictions.Load()
		st.Swept = c.disk.swept.Load()
		st.SegEvictions = c.disk.segEvictions.Load()
		st.SegRebuilds = c.disk.segRebuilds.Load()
		st.LeasesTaken = c.disk.leasesAcquired.Load()
		st.LeasesStolen = c.disk.leasesStolen.Load()
	}
	return st
}

// BuildSpec tells the cache how to reconstruct the annotation pass for a
// key, so segmented builds can run independent workers (each worker gets
// its own fresh annotator and re-warms the prefix before its segments).
type BuildSpec struct {
	// NewAnnotator returns a fresh, unwarmed annotator at instruction 0;
	// it must be safe to call concurrently.
	NewAnnotator func() *annotate.Annotator
	// Warmup and Measure fix the captured window, matching the key.
	Warmup, Measure int64
}

// capture is the monolithic build: warm once, drain the window.
func (spec BuildSpec) capture() *Stream {
	a := spec.NewAnnotator()
	a.Warm(spec.Warmup)
	return Capture(a, spec.Measure)
}

// Get returns the trace for key, building it with build() exactly once
// per key no matter how many goroutines ask concurrently — and, with a
// cache directory set, exactly once across processes too. A panic in
// build is propagated to every waiter and the entry is removed so a later
// Get can retry.
func (c *Cache) Get(key Key, build func() *Stream) Trace {
	return c.get(key, func(disk *diskCache) (Trace, bool) {
		return c.obtain(disk, key, func() Trace { return build() })
	})
}

// GetTrace returns the trace for key, building it from spec on a miss
// with the same single-flight guarantees as Get. When segmented capture
// is configured (SetSegments), the build shards the window across
// parallel workers and spills a segmented MLPCOLS2 trace.
func (c *Cache) GetTrace(key Key, spec BuildSpec) Trace {
	c.mu.Lock()
	segInsts, segWorkers := c.segInsts, c.segWorkers
	c.mu.Unlock()
	segmented := segInsts > 0 && segInsts < spec.Measure
	return c.get(key, func(disk *diskCache) (Trace, bool) {
		if !segmented {
			return c.obtain(disk, key, func() Trace { return spec.capture() })
		}
		return c.obtainSegmented(disk, key, SegSpec{
			NewAnnotator: spec.NewAnnotator,
			Warmup:       spec.Warmup,
			Measure:      spec.Measure,
			SegmentInsts: segInsts,
			Workers:      segWorkers,
		})
	})
}

// get is the single-flight core shared by Get and GetTrace.
func (c *Cache) get(key Key, obtain func(disk *diskCache) (Trace, bool)) Trace {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.order.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		if e.pval != nil {
			panic(e.pval)
		}
		return e.trace
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	disk := c.disk
	c.mu.Unlock()

	var t Trace
	var fromDisk bool
	func() {
		defer func() {
			if pv := recover(); pv != nil {
				e.pval = pv
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
				close(e.ready)
				panic(pv)
			}
		}()
		t, fromDisk = obtain(disk)
	}()

	e.trace = t
	e.bytes = t.MemBytes()
	c.mu.Lock()
	if fromDisk {
		c.diskHits++
	} else {
		c.builds++
	}
	e.elem = c.order.PushFront(e)
	c.size += e.bytes
	c.evictLocked()
	c.mu.Unlock()
	close(e.ready)
	return t
}

// obtain resolves one cache miss with a monolithic build: disk load when
// possible, otherwise a build coordinated through the per-key
// cross-process lock.
func (c *Cache) obtain(disk *diskCache, key Key, build func() Trace) (t Trace, fromDisk bool) {
	if disk == nil {
		return build(), false
	}
	hash := keyHash(key)
	if loaded, err := disk.load(hash); err == nil {
		return loaded, true
	}
	unlock, err := disk.lockKey(hash)
	if err != nil {
		// Lock machinery unavailable (read-only dir, ...): degrade to an
		// uncoordinated local build.
		return build(), false
	}
	defer unlock()
	// Another process may have published while we waited for the lock.
	loaded, lerr := disk.load(hash)
	if lerr == nil {
		return loaded, true
	}
	var see *SegmentsEvictedError
	if errors.As(lerr, &see) {
		// A partially-evicted segmented spill, but this caller builds
		// monolithically (no SegSpec to rebuild holes from). Clear the
		// segmented remains so the monolithic publish below does not
		// leave orphan segment files shadowed by a same-named manifest.
		disk.quarantine(hash)
	}
	t = build()
	if s, ok := t.(*Stream); ok {
		if path, err := disk.publish(hash, key, s); err == nil {
			// Re-open the published spill memory-mapped so even the building
			// process replays from the page cache and the heap copy can be
			// collected. A failed re-open just keeps the heap stream.
			if ms, merr := OpenColumnarFile(path); merr == nil {
				t = ms
			}
		}
	}
	return t, false
}

// obtainSegmented resolves one cache miss with a pipelined segmented
// build: segments are captured by parallel workers and published to the
// spill directory as they complete, the manifest landing last.
func (c *Cache) obtainSegmented(disk *diskCache, key Key, spec SegSpec) (Trace, bool) {
	buildInMemory := func() Trace {
		ss, err := CaptureSegmented(spec).Wait()
		if err != nil {
			panic(err)
		}
		return ss
	}
	if disk == nil {
		return buildInMemory(), false
	}
	hash := keyHash(key)
	if loaded, err := disk.load(hash); err == nil {
		return loaded, true
	}
	unlock, err := disk.lockKey(hash)
	if err != nil {
		return buildInMemory(), false
	}
	defer unlock()
	loaded, lerr := disk.load(hash)
	if lerr == nil {
		return loaded, true
	}
	var see *SegmentsEvictedError
	if errors.As(lerr, &see) {
		// Rebuild only the evicted segments in place; counted as a build
		// (annotation work ran), with SegRebuilds recording how little.
		if t, rerr := disk.rebuildSegments(hash, key, spec, see.Missing); rerr == nil {
			return t, false
		}
		// The holes cannot be filled (spec drifted from the manifest,
		// disk trouble): fall back to a clean full rebuild.
		disk.quarantine(hash)
	}
	if err := os.MkdirAll(disk.dir, 0o755); err != nil {
		return buildInMemory(), false
	}
	p := CaptureSegmentedToFile(disk.spillPath(hash), spec)
	ss, err := p.Wait()
	if err != nil {
		panic(err)
	}
	// A publish failure (disk full, ...) leaves no manifest behind; the
	// heap-backed trace is still good, it just is not shared on disk.
	if p.PublishErr() == nil {
		disk.recordPublished(hash, key, disk.spillBytes(hash))
	}
	return ss, false
}

// evictLocked drops least-recently-used completed entries until the cache
// fits its capacity. Entries still building are never evicted (they are
// not in the LRU list yet).
func (c *Cache) evictLocked() {
	if c.capBytes <= 0 {
		return
	}
	for c.size > c.capBytes && c.order.Len() > 1 {
		back := c.order.Back()
		e := back.Value.(*entry)
		c.order.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.size -= e.bytes
	}
}

package atrace

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"
)

// DefaultCapBytes is the default in-memory cache capacity. A Default-scale
// (8M instruction) stream is roughly 100MB, so this holds the handful of
// distinct annotation configurations a full experiment batch touches.
const DefaultCapBytes = 8 << 30

// Cache is a keyed store of annotated streams with single-flight build
// deduplication: concurrent Get calls for the same key block on one build
// instead of annotating in parallel. Eviction is LRU by approximate byte
// footprint; evicted streams stay valid for replays already in flight
// (they are immutable), the cache merely drops its reference.
//
// With Dir set, built streams are also spilled to disk in the v2 trace
// format and misses try the disk before annotating, so the expensive pass
// is shared across CLI invocations.
type Cache struct {
	mu       sync.Mutex
	capBytes int64
	size     int64
	dir      string
	entries  map[Key]*entry
	order    *list.List // front = most recently used

	hits     uint64
	misses   uint64
	builds   uint64
	diskHits uint64
}

type entry struct {
	key    Key
	ready  chan struct{} // closed when stream (or panic) is set
	stream *Stream
	pval   any // panic value propagated to waiters
	elem   *list.Element
	bytes  int64
}

// NewCache returns an in-memory cache with DefaultCapBytes capacity.
func NewCache() *Cache {
	return &Cache{
		capBytes: DefaultCapBytes,
		entries:  make(map[Key]*entry),
		order:    list.New(),
	}
}

// SetCapBytes adjusts the in-memory capacity (<= 0 means unbounded) and
// evicts immediately if over the new capacity.
func (c *Cache) SetCapBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capBytes = n
	c.evictLocked()
}

// SetDir enables the on-disk spill path rooted at dir (created on first
// write). An empty dir disables spilling.
func (c *Cache) SetDir(dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dir = dir
}

// Stats reports cache effectiveness counters.
type CacheStats struct {
	Hits     uint64 // Get calls served from memory (or by joining a build)
	Misses   uint64 // Get calls that had to build or load
	Builds   uint64 // annotation passes actually executed
	DiskHits uint64 // misses served from the on-disk spill
	Bytes    int64  // current in-memory footprint
	Streams  int    // streams currently held
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Builds: c.builds, DiskHits: c.diskHits,
		Bytes: c.size, Streams: len(c.entries),
	}
}

// Get returns the stream for key, building it with build() exactly once
// per key no matter how many goroutines ask concurrently. A panic in
// build is propagated to every waiter and the entry is removed so a later
// Get can retry.
func (c *Cache) Get(key Key, build func() *Stream) *Stream {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.order.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		if e.pval != nil {
			panic(e.pval)
		}
		return e.stream
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	dir := c.dir
	c.mu.Unlock()

	var s *Stream
	var fromDisk bool
	func() {
		defer func() {
			if pv := recover(); pv != nil {
				e.pval = pv
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
				close(e.ready)
				panic(pv)
			}
		}()
		if dir != "" {
			if loaded, err := ReadFile(c.spillPath(dir, key)); err == nil {
				s, fromDisk = loaded, true
			}
		}
		if s == nil {
			s = build()
		}
	}()

	e.stream = s
	e.bytes = s.MemBytes()
	c.mu.Lock()
	if fromDisk {
		c.diskHits++
	} else {
		c.builds++
	}
	e.elem = c.order.PushFront(e)
	c.size += e.bytes
	c.evictLocked()
	c.mu.Unlock()
	close(e.ready)

	if dir != "" && !fromDisk {
		// Best-effort spill; a failed write only costs future re-builds.
		_ = writeFileAtomic(c.spillPath(dir, key), s)
	}
	return s
}

// evictLocked drops least-recently-used completed entries until the cache
// fits its capacity. Entries still building are never evicted (they are
// not in the LRU list yet).
func (c *Cache) evictLocked() {
	if c.capBytes <= 0 {
		return
	}
	for c.size > c.capBytes && c.order.Len() > 1 {
		back := c.order.Back()
		e := back.Value.(*entry)
		c.order.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.size -= e.bytes
	}
}

// spillPath derives the on-disk filename for a key: a hash of its
// canonical string form.
func (c *Cache) spillPath(dir string, key Key) string {
	sum := sha256.Sum256([]byte(key.String()))
	return filepath.Join(dir, hex.EncodeToString(sum[:16])+".atrace")
}

func writeFileAtomic(path string, s *Stream) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".atrace-*")
	if err != nil {
		return err
	}
	if err := WriteStream(tmp, s); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

package atrace

import (
	"container/list"
	"sync"
)

// DefaultCapBytes is the default in-memory cache capacity. A Default-scale
// (8M instruction) stream is roughly 100MB, so this holds the handful of
// distinct annotation configurations a full experiment batch touches.
// Memory-mapped streams account almost nothing against it: their columns
// live in the OS page cache, not the Go heap.
const DefaultCapBytes = 8 << 30

// Cache is a keyed store of annotated streams with single-flight build
// deduplication: concurrent Get calls for the same key block on one build
// instead of annotating in parallel. Eviction is LRU by approximate byte
// footprint; evicted streams stay valid for replays already in flight
// (they are immutable), the cache merely drops its reference.
//
// With Dir set, the directory becomes a cache shared across processes:
// misses memory-map a columnar spill file when one exists (replay then
// reads pages from the OS page cache rather than resident heap), and
// builders coordinate through per-key file locks so N concurrent
// processes perform exactly one annotation pass per key. Publication is
// atomic (temp file + rename), corrupt or truncated spills are
// quarantined and rebuilt, and an on-disk index drives byte-cap LRU
// eviction of the directory. See diskCache for the layout and protocol.
type Cache struct {
	mu       sync.Mutex
	capBytes int64
	size     int64
	disk     *diskCache
	entries  map[Key]*entry
	order    *list.List // front = most recently used

	hits     uint64
	misses   uint64
	builds   uint64
	diskHits uint64
}

type entry struct {
	key    Key
	ready  chan struct{} // closed when stream (or panic) is set
	stream *Stream
	pval   any // panic value propagated to waiters
	elem   *list.Element
	bytes  int64
}

// NewCache returns an in-memory cache with DefaultCapBytes capacity.
func NewCache() *Cache {
	return &Cache{
		capBytes: DefaultCapBytes,
		entries:  make(map[Key]*entry),
		order:    list.New(),
	}
}

// SetCapBytes adjusts the in-memory capacity (<= 0 means unbounded) and
// evicts immediately if over the new capacity.
func (c *Cache) SetCapBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capBytes = n
	c.evictLocked()
}

// SetDir enables the shared on-disk cache rooted at dir (created on
// first write). An empty dir disables it.
func (c *Cache) SetDir(dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dir == "" {
		c.disk = nil
		return
	}
	c.disk = newDiskCache(dir)
}

// SetDiskCapBytes bounds the spill directory's total size (<= 0 means
// unbounded); least-recently-used spills are evicted at publish time.
// Takes effect only after SetDir.
func (c *Cache) SetDiskCapBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disk != nil {
		c.disk.capBytes = n
	}
}

// Stats reports cache effectiveness counters.
type CacheStats struct {
	Hits          uint64 // Get calls served from memory (or by joining a build)
	Misses        uint64 // Get calls that had to build or load
	Builds        uint64 // annotation passes actually executed
	DiskHits      uint64 // misses served from the on-disk spill
	Quarantined   uint64 // corrupt spill files moved aside
	DiskEvictions uint64 // spill files evicted for directory capacity
	Bytes         int64  // current in-memory footprint
	Streams       int    // streams currently held
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Hits: c.hits, Misses: c.misses, Builds: c.builds, DiskHits: c.diskHits,
		Bytes: c.size, Streams: len(c.entries),
	}
	if c.disk != nil {
		st.Quarantined = c.disk.quarantined.Load()
		st.DiskEvictions = c.disk.evictions.Load()
	}
	return st
}

// Get returns the stream for key, building it with build() exactly once
// per key no matter how many goroutines ask concurrently — and, with a
// cache directory set, exactly once across processes too. A panic in
// build is propagated to every waiter and the entry is removed so a later
// Get can retry.
func (c *Cache) Get(key Key, build func() *Stream) *Stream {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.order.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		if e.pval != nil {
			panic(e.pval)
		}
		return e.stream
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	disk := c.disk
	c.mu.Unlock()

	var s *Stream
	var fromDisk bool
	func() {
		defer func() {
			if pv := recover(); pv != nil {
				e.pval = pv
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
				close(e.ready)
				panic(pv)
			}
		}()
		s, fromDisk = c.obtain(disk, key, build)
	}()

	e.stream = s
	e.bytes = s.MemBytes()
	c.mu.Lock()
	if fromDisk {
		c.diskHits++
	} else {
		c.builds++
	}
	e.elem = c.order.PushFront(e)
	c.size += e.bytes
	c.evictLocked()
	c.mu.Unlock()
	close(e.ready)
	return s
}

// obtain resolves one cache miss: disk load when possible, otherwise a
// build coordinated through the per-key cross-process lock.
func (c *Cache) obtain(disk *diskCache, key Key, build func() *Stream) (s *Stream, fromDisk bool) {
	if disk == nil {
		return build(), false
	}
	hash := keyHash(key)
	if loaded, err := disk.load(hash); err == nil {
		return loaded, true
	}
	unlock, err := disk.lockKey(hash)
	if err != nil {
		// Lock machinery unavailable (read-only dir, ...): degrade to an
		// uncoordinated local build.
		return build(), false
	}
	defer unlock()
	// Another process may have published while we waited for the lock.
	if loaded, err := disk.load(hash); err == nil {
		return loaded, true
	}
	s = build()
	if path, err := disk.publish(hash, key, s); err == nil {
		// Re-open the published spill memory-mapped so even the building
		// process replays from the page cache and the heap copy can be
		// collected. A failed re-open just keeps the heap stream.
		if ms, merr := OpenColumnarFile(path); merr == nil {
			s = ms
		}
	}
	return s, false
}

// evictLocked drops least-recently-used completed entries until the cache
// fits its capacity. Entries still building are never evicted (they are
// not in the LRU list yet).
func (c *Cache) evictLocked() {
	if c.capBytes <= 0 {
		return
	}
	for c.size > c.capBytes && c.order.Len() > 1 {
		back := c.order.Back()
		e := back.Value.(*entry)
		c.order.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.size -= e.bytes
	}
}

// Package plot renders small ASCII charts for the experiment harness:
// line charts for the figure sweeps (Figures 2, 4, 6, 7) and bar charts
// for the comparison figures (Figures 8-11). The output is terminal
// text, so every figure of the paper can be *seen*, not just tabulated.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points. X values must be ascending;
// all series of a chart share the X axis.
type Series struct {
	Name string
	Y    []float64
}

// Line renders a multi-series line chart of the given terminal size.
// xs labels the shared X axis. Each series is drawn with its own marker
// rune; a legend follows the chart.
func Line(title string, xs []float64, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	if len(xs) == 0 || len(series) == 0 {
		return title + "\n(no data)\n"
	}

	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Y {
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if math.IsInf(minY, 1) {
		return title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom keeps points off the frame.
	span := maxY - minY
	minY -= span * 0.05
	maxY += span * 0.05

	markers := []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}

	minX, maxX := xs[0], xs[len(xs)-1]
	if maxX == minX {
		maxX = minX + 1
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(width-1))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int((maxY - y) / (maxY - minY) * float64(height-1))
		return clamp(r, 0, height-1)
	}

	for si, s := range series {
		m := markers[si%len(markers)]
		prevC, prevR := -1, -1
		for i, y := range s.Y {
			if i >= len(xs) {
				break
			}
			c, r := col(xs[i]), row(y)
			if prevC >= 0 {
				drawSegment(grid, prevC, prevR, c, r, '.')
			}
			prevC, prevR = c, r
		}
		// Draw markers after connector dots so they stay visible.
		for i, y := range s.Y {
			if i >= len(xs) {
				break
			}
			grid[row(y)][col(xs[i])] = m
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	yLabelW := 8
	for r := 0; r < height; r++ {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%*.2f |%s\n", yLabelW, yVal, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", yLabelW+1))
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	// X labels: first, middle, last.
	lbl := make([]rune, width+yLabelW+2)
	for i := range lbl {
		lbl[i] = ' '
	}
	place := func(x float64, c int) {
		s := trimFloat(x)
		start := yLabelW + 2 + c - len(s)/2
		start = clamp(start, 0, len(lbl)-len(s))
		copy(lbl[start:], []rune(s))
	}
	place(minX, 0)
	place((minX+maxX)/2, width/2)
	place(maxX, width-1)
	b.WriteString(strings.TrimRight(string(lbl), " "))
	b.WriteString("\n")
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Bar renders a horizontal bar chart: one labelled bar per value.
func Bar(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	if len(labels) == 0 || len(labels) != len(values) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	maxV := math.Inf(-1)
	labelW := 0
	for i, l := range labels {
		maxV = math.Max(maxV, values[i])
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	for i, l := range labels {
		n := int(values[i] / maxV * float64(width))
		n = clamp(n, 0, width)
		fmt.Fprintf(&b, "%-*s |%s %s\n", labelW, l, strings.Repeat("█", n), trimFloat(values[i]))
	}
	return b.String()
}

// drawSegment draws a sparse dotted connector between two chart points.
func drawSegment(grid [][]rune, c0, r0, c1, r1 int, ch rune) {
	steps := maxInt(absInt(c1-c0), absInt(r1-r0))
	for i := 1; i < steps; i++ {
		c := c0 + (c1-c0)*i/steps
		r := r0 + (r1-r0)*i/steps
		if grid[r][c] == ' ' {
			grid[r][c] = ch
		}
	}
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

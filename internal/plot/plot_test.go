package plot

import (
	"strings"
	"testing"
)

func TestLineBasics(t *testing.T) {
	out := Line("test chart",
		[]float64{1, 2, 4, 8},
		[]Series{
			{Name: "up", Y: []float64{1, 2, 3, 4}},
			{Name: "down", Y: []float64{4, 3, 2, 1}},
		}, 40, 10)
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing markers")
	}
	lines := strings.Split(out, "\n")
	// Title + height rows + axis + labels + 2 legend rows (+ trailing).
	if len(lines) < 10+4 {
		t.Fatalf("too few lines: %d\n%s", len(lines), out)
	}
	// The rising series' marker in the top row should be near the right
	// edge, the falling series' near the left.
	topRow := lines[1]
	starIdx := strings.IndexRune(topRow, '*')
	oIdx := strings.IndexRune(topRow, 'o')
	if starIdx < 0 || oIdx < 0 {
		t.Fatalf("top row should contain both maxima: %q", topRow)
	}
	if starIdx < oIdx {
		t.Fatalf("rising max should be right of falling max: %q", topRow)
	}
}

func TestLineDegenerate(t *testing.T) {
	if out := Line("empty", nil, nil, 40, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
	// Constant series must not divide by zero.
	out := Line("flat", []float64{1, 2}, []Series{{Name: "c", Y: []float64{5, 5}}}, 30, 6)
	if !strings.Contains(out, "c") {
		t.Fatal("flat series broke rendering")
	}
	// Single point.
	out = Line("one", []float64{3}, []Series{{Name: "p", Y: []float64{1}}}, 30, 6)
	if !strings.Contains(out, "*") {
		t.Fatal("single point not drawn")
	}
}

func TestLineClampsTinySizes(t *testing.T) {
	out := Line("tiny", []float64{1, 2}, []Series{{Name: "s", Y: []float64{1, 2}}}, 1, 1)
	if len(out) == 0 {
		t.Fatal("tiny chart empty")
	}
}

func TestBar(t *testing.T) {
	out := Bar("bars", []string{"short", "a-longer-label"}, []float64{1, 2}, 20)
	if !strings.Contains(out, "bars") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d\n%s", len(lines), out)
	}
	// The longer value gets the longer bar.
	if strings.Count(lines[1], "█") >= strings.Count(lines[2], "█") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
	// The max bar fills the width.
	if strings.Count(lines[2], "█") != 20 {
		t.Fatalf("max bar = %d cells, want 20", strings.Count(lines[2], "█"))
	}
}

func TestBarDegenerate(t *testing.T) {
	if out := Bar("none", nil, nil, 20); !strings.Contains(out, "no data") {
		t.Fatal("empty bar chart")
	}
	if out := Bar("mismatch", []string{"a"}, nil, 20); !strings.Contains(out, "no data") {
		t.Fatal("mismatched lengths accepted")
	}
	out := Bar("zeros", []string{"z"}, []float64{0}, 20)
	if !strings.Contains(out, "z") {
		t.Fatal("zero bar broke rendering")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{1.5: "1.5", 2.0: "2", 0.25: "0.25", 10.10: "10.1"}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

package prefetch

// lineTable is a fixed-capacity, open-addressed, linear-probing set of
// line addresses, replacing the `map[uint64]bool` issued-line sets on the
// prefetcher hot paths. It preserves the maps' clear-at-threshold
// semantics exactly: an insert that pushes the number of resident keys
// past clearAt empties the whole table, dropping the just-inserted key —
// identical to the old `issued = make(map[uint64]bool)` rebuild, so
// usefulness accounting is bit-for-bit unchanged
// (TestLineTableMatchesMapReferenceRandom pins it against the retained
// map reference).
//
// Clearing is O(1): slots carry an epoch tag and a clear just bumps the
// current epoch, so no allocation or memset happens on the hot path. The
// table is sized at twice the clear threshold, keeping the load factor
// at or below 0.5 and probes short; removal uses backward-shift deletion
// so no tombstones accumulate.
type lineTable struct {
	keys      []uint64
	ep        []uint32
	cur       uint32
	mask      uint64
	hashShift uint
	used      int
	clearAt   int
}

const (
	// issuedClear matches the old maps' bound: a set exceeding this many
	// lines is emptied.
	issuedClear = 1 << 15
	issuedBits  = 16
)

// newLineTable builds an empty table of 1<<bits slots that clears itself
// once an insert pushes it past clearAt keys. clearAt must be at most
// half the slot count.
func newLineTable(bits uint, clearAt int) *lineTable {
	if clearAt > 1<<(bits-1) {
		panic("prefetch: line table clear threshold above half capacity")
	}
	return &lineTable{
		keys:      make([]uint64, 1<<bits),
		ep:        make([]uint32, 1<<bits),
		cur:       1,
		mask:      uint64(1)<<bits - 1,
		hashShift: 64 - bits,
		clearAt:   clearAt,
	}
}

// slot is a Fibonacci hash: line addresses are heavily strided, and the
// multiply spreads consecutive keys across the table.
func (t *lineTable) slot(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> t.hashShift & t.mask
}

// len returns the number of resident keys.
func (t *lineTable) len() int { return t.used }

// insert adds key to the set (a no-op when present), clearing the whole
// table when it would exceed clearAt keys.
func (t *lineTable) insert(key uint64) {
	i := t.slot(key)
	for t.ep[i] == t.cur {
		if t.keys[i] == key {
			return
		}
		i = (i + 1) & t.mask
	}
	t.keys[i] = key
	t.ep[i] = t.cur
	t.used++
	if t.used > t.clearAt {
		t.clear()
	}
}

// testAndClear reports whether key is resident, removing it if so.
func (t *lineTable) testAndClear(key uint64) bool {
	i := t.slot(key)
	for t.ep[i] == t.cur {
		if t.keys[i] == key {
			t.deleteSlot(i)
			t.used--
			return true
		}
		i = (i + 1) & t.mask
	}
	return false
}

// deleteSlot empties slot i and backward-shifts the tail of its probe
// chain so later lookups never hit a false empty.
func (t *lineTable) deleteSlot(i uint64) {
	j := i
	for {
		t.ep[i] = 0
		for {
			j = (j + 1) & t.mask
			if t.ep[j] != t.cur {
				return
			}
			// Move j's key into the hole unless its home slot lies
			// cyclically within (i, j] — then the hole does not break its
			// probe chain.
			h := t.slot(t.keys[j])
			if (j > i && (h <= i || h > j)) || (j < i && h <= i && h > j) {
				break
			}
		}
		t.keys[i] = t.keys[j]
		t.ep[i] = t.cur
		i = j
	}
}

// clear empties the table by advancing the epoch; slot contents are
// reused in place on the next fill.
func (t *lineTable) clear() {
	t.used = 0
	t.cur++
	if t.cur == 0 {
		// Epoch wrap (once per 2^32 clears): physically reset the tags so
		// ancient slots cannot alias the new epoch.
		for i := range t.ep {
			t.ep[i] = 0
		}
		t.cur = 1
	}
}

package prefetch

import (
	"math/rand"
	"testing"
)

// refLineSet is the retained map-based reference the open-addressed
// lineTable replaced: inserts past the clear threshold rebuild the map,
// dropping every key including the one just inserted.
type refLineSet struct {
	m       map[uint64]bool
	clearAt int
}

func newRefLineSet(clearAt int) *refLineSet {
	return &refLineSet{m: make(map[uint64]bool), clearAt: clearAt}
}

func (r *refLineSet) insert(key uint64) {
	r.m[key] = true
	if len(r.m) > r.clearAt {
		r.m = make(map[uint64]bool)
	}
}

func (r *refLineSet) testAndClear(key uint64) bool {
	if r.m[key] {
		delete(r.m, key)
		return true
	}
	return false
}

// TestLineTableMatchesMapReferenceRandom drives random insert/testAndClear
// mixes through the lineTable and the map reference in lock-step. Small
// clear thresholds force frequent epoch clears (the table-pressure edge
// the prefetchers hit after 32K issued lines), and tight key spaces force
// long probe chains and backward-shift deletions mid-chain.
func TestLineTableMatchesMapReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		bits := uint(4 + rng.Intn(5))
		clearAt := 1 << (bits - 1)
		if trial%2 == 0 {
			clearAt = 1 + rng.Intn(1<<(bits-1))
		}
		keySpace := clearAt + 1 + rng.Intn(3*clearAt)
		tab := newLineTable(bits, clearAt)
		ref := newRefLineSet(clearAt)
		for i := 0; i < 6000; i++ {
			key := uint64(rng.Intn(keySpace)) * 0x40
			if rng.Intn(3) == 0 {
				got, want := tab.testAndClear(key), ref.testAndClear(key)
				if got != want {
					t.Fatalf("trial %d (bits=%d clearAt=%d) op %d testAndClear(%#x) = %v, reference %v",
						trial, bits, clearAt, i, key, got, want)
				}
			} else {
				tab.insert(key)
				ref.insert(key)
			}
			if tab.len() != len(ref.m) {
				t.Fatalf("trial %d op %d: len=%d, reference %d", trial, i, tab.len(), len(ref.m))
			}
		}
		// Final membership must agree key-for-key.
		for key := 0; key < keySpace; key++ {
			k := uint64(key) * 0x40
			got, want := tab.testAndClear(k), ref.testAndClear(k)
			if got != want {
				t.Fatalf("trial %d final membership of %#x = %v, reference %v", trial, k, got, want)
			}
		}
	}
}

// TestLineTableEpochClearDropsInsertedKey pins the exact rebuild semantics
// of the old map: the insert that crosses the threshold is itself dropped.
func TestLineTableEpochClearDropsInsertedKey(t *testing.T) {
	tab := newLineTable(4, 4)
	for k := uint64(0); k < 4; k++ {
		tab.insert(k)
	}
	if tab.len() != 4 {
		t.Fatalf("len = %d, want 4", tab.len())
	}
	tab.insert(99)
	if tab.len() != 0 {
		t.Fatalf("len after threshold insert = %d, want 0 (cleared)", tab.len())
	}
	if tab.testAndClear(99) {
		t.Fatal("threshold-crossing key survived the clear")
	}
	// The table is fully reusable after a clear.
	tab.insert(7)
	if !tab.testAndClear(7) {
		t.Fatal("insert after clear not visible")
	}
}

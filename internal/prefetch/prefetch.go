// Package prefetch implements hardware prefetch engines, the extension
// the paper's limit study motivates: §5.6 finds large MLP headroom in
// perfect instruction prefetching and names it "the most promising avenue
// for further improving MLP" for SPECweb99 and the database workload.
//
// Two engines are provided:
//
//   - Sequential: a next-N-line instruction prefetcher. On every demand
//     fetch of a new line it prefetches the following Depth lines —
//     straight-line code makes it highly accurate, and cold-function
//     excursions (the dominant I-miss source in commercial code) are
//     almost entirely covered after the first line.
//   - Stride: a PC-indexed stride data prefetcher. A load site that
//     twice repeats the same address delta prefetches Depth strides
//     ahead. It helps regular array scans and does nothing for pointer
//     chases — an honest negative result the ablation experiment shows.
//
// The engines are functional (which lines get moved on-chip early), not
// timed: a covered miss becomes an on-chip hit, matching the epoch
// model's treatment of timely prefetches.
package prefetch

import (
	"fmt"

	"mlpsim/internal/mem"
)

// Stats counts a prefetch engine's activity.
type Stats struct {
	// Issued counts prefetch requests sent to the hierarchy.
	Issued uint64
	// Useful counts prefetched lines later hit by a demand access (as
	// reported back via Useful()).
	Useful uint64
}

// Accuracy is the useful fraction of issued prefetches.
func (s Stats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// Sequential is a next-N-line prefetcher (typically for instruction
// fetch). It tracks the last demand line and, when the line changes,
// prefetches the next Depth sequential lines.
type Sequential struct {
	// Depth is how many lines ahead to prefetch.
	Depth int
	// Kind selects which hierarchy port fills (IFetch for an instruction
	// prefetcher).
	Kind mem.AccessKind

	lastLine uint64
	haveLast bool
	touched  bool
	// issuedLines remembers recently prefetched lines for usefulness
	// accounting (bounded, epoch-cleared past issuedClear keys — the old
	// map's rebuild threshold).
	issuedLines *lineTable
	stats       Stats
}

// Untrained reports whether the engine has observed no accesses yet, so a
// fresh NewSequential(Depth, Kind) is equivalent to this instance. The
// annotated-trace cache uses this to key prefetcher configurations.
func (p *Sequential) Untrained() bool { return !p.touched }

// NewSequential builds a sequential prefetcher of the given depth.
func NewSequential(depth int, kind mem.AccessKind) *Sequential {
	if depth <= 0 {
		panic(fmt.Sprintf("prefetch: depth %d must be positive", depth))
	}
	return &Sequential{Depth: depth, Kind: kind, issuedLines: newLineTable(issuedBits, issuedClear)}
}

// OnAccess informs the prefetcher of a demand access to addr; it inserts
// prefetched lines directly into the hierarchy.
func (p *Sequential) OnAccess(h *mem.Hierarchy, addr uint64) {
	p.touched = true
	line := h.LineAddr(addr)
	if p.haveLast && line == p.lastLine {
		return
	}
	p.lastLine, p.haveLast = line, true
	if p.issuedLines.testAndClear(line) {
		p.stats.Useful++
	}
	for i := 1; i <= p.Depth; i++ {
		next := (line + uint64(i)) * 64
		if h.ProbeOffChip(p.Kind, next) {
			h.InsertLine(p.Kind, next)
			p.stats.Issued++
			p.issuedLines.insert(line + uint64(i))
		}
	}
}

// Stats returns the engine's counters.
func (p *Sequential) Stats() Stats { return p.stats }

// strideEntry is one stride-table row.
type strideEntry struct {
	tag      uint64
	lastAddr uint64
	stride   int64
	conf     uint8
}

// Stride is a PC-indexed stride data prefetcher with 2-bit confidence.
type Stride struct {
	// Depth is how many strides ahead to prefetch once confident.
	Depth int

	mask    uint64
	table   []strideEntry
	touched bool
	issued  *lineTable
	stats   Stats
}

// Entries returns the stride-table size the prefetcher was built with.
func (p *Stride) Entries() int { return len(p.table) }

// Untrained reports whether the engine has observed no loads yet, so a
// fresh NewStride(Entries, Depth) is equivalent to this instance.
func (p *Stride) Untrained() bool { return !p.touched }

// NewStride builds a stride prefetcher with the given table size (power
// of two) and depth.
func NewStride(entries, depth int) *Stride {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("prefetch: stride table entries must be a positive power of two")
	}
	if depth <= 0 {
		panic("prefetch: stride depth must be positive")
	}
	return &Stride{
		Depth:  depth,
		mask:   uint64(entries - 1),
		table:  make([]strideEntry, entries),
		issued: newLineTable(issuedBits, issuedClear),
	}
}

// OnLoad informs the prefetcher of a demand load at pc touching addr.
func (p *Stride) OnLoad(h *mem.Hierarchy, pc, addr uint64) {
	p.touched = true
	if p.issued.testAndClear(h.LineAddr(addr)) {
		p.stats.Useful++
	}
	e := &p.table[(pc>>2)&p.mask]
	if e.tag != pc+1 {
		*e = strideEntry{tag: pc + 1, lastAddr: addr}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	switch {
	case stride == 0:
		return
	case stride == e.stride:
		if e.conf < 3 {
			e.conf++
		}
	default:
		e.stride = stride
		e.conf = 0
		return
	}
	if e.conf < 2 {
		return
	}
	for i := 1; i <= p.Depth; i++ {
		next := uint64(int64(addr) + stride*int64(i))
		if h.ProbeOffChip(mem.DRead, next) {
			h.InsertLine(mem.DRead, next)
			p.stats.Issued++
			p.issued.insert(h.LineAddr(next))
		}
	}
}

// Stats returns the engine's counters.
func (p *Stride) Stats() Stats { return p.stats }

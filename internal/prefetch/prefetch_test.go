package prefetch

import (
	"testing"

	"mlpsim/internal/mem"
)

func TestSequentialCoversNextLines(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchy())
	p := NewSequential(4, mem.IFetch)

	// Demand access to a cold line: the next four lines get covered.
	base := uint64(0x40000000)
	h.Access(mem.IFetch, base)
	p.OnAccess(h, base)
	for i := uint64(1); i <= 4; i++ {
		if h.ProbeOffChip(mem.IFetch, base+i*64) {
			t.Fatalf("line +%d not covered", i)
		}
	}
	if !h.ProbeOffChip(mem.IFetch, base+5*64) {
		t.Fatal("line +5 should not be covered (depth 4)")
	}
	if p.Stats().Issued != 4 {
		t.Fatalf("issued = %d, want 4", p.Stats().Issued)
	}

	// Walking forward marks the prefetches useful.
	for i := uint64(1); i <= 4; i++ {
		h.Access(mem.IFetch, base+i*64)
		p.OnAccess(h, base+i*64)
	}
	if got := p.Stats().Useful; got != 4 {
		t.Fatalf("useful = %d, want 4", got)
	}
}

func TestSequentialSameLineNoReissue(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchy())
	p := NewSequential(2, mem.IFetch)
	for i := 0; i < 10; i++ {
		p.OnAccess(h, 0x40000000+uint64(i)*4) // same 64B line
	}
	if p.Stats().Issued != 2 {
		t.Fatalf("issued = %d, want 2 (one line transition)", p.Stats().Issued)
	}
}

func TestStrideLearnsAndCovers(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchy())
	p := NewStride(256, 4)
	pc := uint64(0x1000)
	const stride = 256
	base := uint64(0x50000000)
	// First accesses train; once confident, lines ahead get covered.
	for i := uint64(0); i < 8; i++ {
		addr := base + i*stride
		h.Access(mem.DRead, addr)
		p.OnLoad(h, pc, addr)
	}
	if p.Stats().Issued == 0 {
		t.Fatal("confident stride issued nothing")
	}
	// The next strided address must now be on-chip.
	if h.ProbeOffChip(mem.DRead, base+8*stride) {
		t.Fatal("next strided line not covered")
	}
	if p.Stats().Useful == 0 {
		t.Fatal("no prefetch marked useful")
	}
}

func TestStrideIgnoresRandomPattern(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchy())
	p := NewStride(256, 4)
	pc := uint64(0x1000)
	addrs := []uint64{0x50000000, 0x51234000, 0x50f00800, 0x52345678, 0x50abc000}
	for _, a := range addrs {
		h.Access(mem.DRead, a)
		p.OnLoad(h, pc, a)
	}
	if p.Stats().Issued != 0 {
		t.Fatalf("random pattern issued %d prefetches", p.Stats().Issued)
	}
}

func TestStrideConfidenceResetsOnChange(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchy())
	p := NewStride(256, 2)
	pc := uint64(0x1000)
	a := uint64(0x50000000)
	for i := 0; i < 5; i++ {
		p.OnLoad(h, pc, a)
		a += 128
	}
	issued := p.Stats().Issued
	if issued == 0 {
		t.Fatal("stride never became confident")
	}
	// Change the stride: no new prefetches until retrained.
	a += 9999
	p.OnLoad(h, pc, a)
	a += 64
	p.OnLoad(h, pc, a)
	if p.Stats().Issued != issued {
		t.Fatalf("prefetched during retraining: %d -> %d", issued, p.Stats().Issued)
	}
}

func TestAccuracy(t *testing.T) {
	s := Stats{Issued: 10, Useful: 7}
	if s.Accuracy() != 0.7 {
		t.Fatalf("accuracy = %v", s.Accuracy())
	}
	if (Stats{}).Accuracy() != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}

func TestConstructorsPanicOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSequential(0, mem.IFetch) },
		func() { NewStride(100, 2) },
		func() { NewStride(256, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad constructor arg did not panic")
				}
			}()
			fn()
		}()
	}
}

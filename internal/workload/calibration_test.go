package workload_test

// Calibration tests: the preset workloads must keep the structural
// characteristics the paper reports for its commercial workloads
// (Table 1, Figure 2, Table 6). Bands are deliberately generous — they
// protect the *shape* (orderings, clustering, predictability mix), not
// exact values.

import (
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/stats"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

type profile struct {
	missRate  float64 // off-chip accesses per 100 instructions
	imissFrac float64 // I-misses / all off-chip accesses
	mispred   float64 // branch misprediction rate
	vpCorrect float64
	vpWrong   float64
	vpNoPred  float64
	meanDist  float64
	cdf32     float64 // observed P(next miss within 32 instructions)
	uni32     float64 // geometric reference at 32 instructions
	prefUsed  float64 // fraction of off-chip prefetches later demanded
	pmisses   uint64
}

func measure(t *testing.T, cfg workload.Config) profile {
	t.Helper()
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := annotate.New(g, annotate.Config{Value: vpred.NewLastValue(vpred.DefaultEntries)})
	a.Warm(500_000)
	var rec stats.DistanceRecorder
	for i := 0; i < 1_500_000; i++ {
		in, ok := a.Next()
		if !ok {
			t.Fatal("stream ended")
		}
		if in.OffChip() {
			rec.Observe(in.Index)
		}
	}
	s := a.Stats()
	c, w, np := s.VP.Fractions()
	p := profile{
		missRate:  s.MissRatePer100(),
		imissFrac: float64(s.IMisses) / float64(s.OffChip),
		mispred:   float64(s.Mispredicts) / float64(s.Branches),
		vpCorrect: c, vpWrong: w, vpNoPred: np,
		meanDist: rec.MeanDistance(),
		pmisses:  s.PMisses,
	}
	p.cdf32 = rec.CDFAt([]int64{32})[0]
	p.uni32 = stats.UniformCDFAt(rec.MeanDistance(), []int64{32})[0]
	if s.PMisses > 0 {
		p.prefUsed = float64(s.PrefetchUsed) / float64(s.PMisses)
	}
	return p
}

func between(t *testing.T, name, what string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s: %s = %.4f, want in [%.4f, %.4f]", name, what, got, lo, hi)
	}
}

func TestCalibrationAgainstPaperCharacteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a multi-million-instruction run")
	}
	db := measure(t, workload.Database(1))
	jbb := measure(t, workload.JBB(1))
	web := measure(t, workload.Web(1))

	// Table 1: L2 miss rates 0.84 / 0.19 / 0.09 per 100 instructions.
	between(t, "Database", "miss rate", db.missRate, 0.55, 1.1)
	between(t, "SPECjbb2000", "miss rate", jbb.missRate, 0.12, 0.30)
	between(t, "SPECweb99", "miss rate", web.missRate, 0.05, 0.16)
	if !(db.missRate > jbb.missRate && jbb.missRate > web.missRate) {
		t.Errorf("miss rate ordering broken: %.3f / %.3f / %.3f",
			db.missRate, jbb.missRate, web.missRate)
	}

	// §5.3.1: I-misses matter for Database and SPECweb99, not SPECjbb2000.
	between(t, "Database", "imiss fraction", db.imissFrac, 0.05, 0.30)
	between(t, "SPECjbb2000", "imiss fraction", jbb.imissFrac, 0, 0.12)
	between(t, "SPECweb99", "imiss fraction", web.imissFrac, 0.05, 0.30)

	// Figure 2: misses are far more clustered than a uniform distribution.
	for _, w := range []struct {
		name string
		p    profile
	}{{"Database", db}, {"SPECjbb2000", jbb}, {"SPECweb99", web}} {
		if w.p.cdf32 < 2.2*w.p.uni32 {
			t.Errorf("%s: observed CDF@32 %.3f not clustered vs uniform %.3f",
				w.name, w.p.cdf32, w.p.uni32)
		}
		if w.p.cdf32 < 0.25 {
			t.Errorf("%s: observed CDF@32 %.3f too flat", w.name, w.p.cdf32)
		}
	}

	// Table 6: value predictor outcome mix (paper: DB 42/7/51,
	// JBB 20/3/77, Web 25/5/70).
	between(t, "Database", "VP correct", db.vpCorrect, 0.30, 0.55)
	between(t, "Database", "VP wrong", db.vpWrong, 0.01, 0.15)
	between(t, "Database", "VP no-predict", db.vpNoPred, 0.35, 0.65)
	between(t, "SPECjbb2000", "VP correct", jbb.vpCorrect, 0.08, 0.32)
	between(t, "SPECjbb2000", "VP no-predict", jbb.vpNoPred, 0.62, 0.92)
	between(t, "SPECweb99", "VP correct", web.vpCorrect, 0.05, 0.40)
	between(t, "SPECweb99", "VP no-predict", web.vpNoPred, 0.55, 0.92)

	// Branch misprediction rates must be plausible for 64K gshare on
	// commercial codes.
	for _, w := range []struct {
		name string
		p    profile
	}{{"Database", db}, {"SPECjbb2000", jbb}, {"SPECweb99", web}} {
		between(t, w.name, "mispredict rate", w.p.mispred, 0.02, 0.16)
	}

	// SPECweb99's software prefetches exist and are almost all useful.
	if web.pmisses == 0 {
		t.Error("SPECweb99: no off-chip prefetches")
	}
	between(t, "SPECweb99", "prefetch useful fraction", web.prefUsed, 0.90, 1.0)

	// Inter-miss mean distances scale like the paper's 119 / 526 / 1111.
	between(t, "Database", "mean inter-miss distance", db.meanDist, 80, 220)
	between(t, "SPECjbb2000", "mean inter-miss distance", jbb.meanDist, 330, 800)
	between(t, "SPECweb99", "mean inter-miss distance", web.meanDist, 700, 1700)
}

func TestCalibrationStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a multi-million-instruction run")
	}
	a := measure(t, workload.Database(11))
	b := measure(t, workload.Database(12))
	if rel := a.missRate / b.missRate; rel < 0.8 || rel > 1.25 {
		t.Errorf("miss rate unstable across seeds: %.3f vs %.3f", a.missRate, b.missRate)
	}
}

// Package workload synthesizes dynamic instruction streams with the
// structural properties of the paper's three commercial workloads — a
// database workload, SPECjbb2000 and SPECweb99 — which are proprietary and
// unavailable.
//
// The epoch model consumes only structural trace properties: which
// accesses leave the chip, how misses cluster, which miss addresses depend
// on earlier missing loads, where serializing instructions and
// data-dependent (unresolvable) branches fall, and how predictable load
// values are. Each generator is a parameterized transaction-processing
// loop that reproduces those distributions:
//
//   - hot vs cold data regions control the L2 miss rate,
//   - cold accesses are emitted in bursts to reproduce the clustering of
//     Figure 2,
//   - pointer chases create register-dependent miss chains,
//   - lock sections emit CASA/MEMBAR serializing instructions,
//   - calls into a multi-megabyte cold code pool create instruction-fetch
//     misses,
//   - per-site value classes control last-value-predictor accuracy
//     (Table 6),
//   - branches with outcomes derived from missed loads create
//     unresolvable mispredictions.
package workload

import "fmt"

// Config parameterizes one synthetic workload. The presets in presets.go
// are calibrated so that the paper's default processor configuration
// reproduces the Table 1 characteristics (miss rate ordering, MLP range,
// clustering) of each workload.
type Config struct {
	// Name labels the workload in reports.
	Name string
	// Seed drives all pseudo-randomness; a given (Config, Seed) pair
	// yields a bit-identical trace.
	Seed int64

	// TxInstr is the approximate number of instructions per transaction.
	TxInstr int

	// Data footprint.
	//
	// HotBytes is the size of the frequently-reused data region (should
	// fit in the L2); ColdBytes is the size of the rarely-reused region
	// (should be far larger than the L2 so cold accesses go off-chip);
	// WarmBytes is a marginal region a few times the default L2 size —
	// its hit rate tracks L2 capacity, making the workload sensitive to
	// the Figure 7 cache-size sweep. 0 disables the warm region.
	HotBytes  int64
	ColdBytes int64
	WarmBytes int64
	// WarmBurstFrac redirects this fraction of independent burst accesses
	// to the warm region (clustered marginal misses: a larger L2 removes
	// misses from high-MLP epochs, so MLP falls — the database/SPECjbb2000
	// behaviour in Figure 7). WarmComputeFrac redirects this fraction of
	// hot compute loads there (isolated marginal misses: a larger L2
	// removes MLP-1 epochs, so MLP rises — the SPECweb99 behaviour).
	WarmBurstFrac   float64
	WarmComputeFrac float64
	// WarmReuseFrac is the probability that a warm access revisits the
	// line touched WarmReuseDist warm-accesses earlier instead of a fresh
	// line. The revisit interval in instructions is WarmReuseDist divided
	// by the warm access rate; whether the revisit hits depends on whether
	// the L2 has evicted the line by then — that is the entire Figure 7
	// capacity lever, so WarmReuseDist must be sized so the interval falls
	// between the retention times of the smallest and largest swept L2.
	WarmReuseFrac float64
	WarmReuseDist int

	// BurstsPerTx is the expected number of cold-access bursts per
	// transaction; BurstMin/BurstMax bound the number of cold accesses in
	// one burst; BurstGapMax is the maximum number of filler instructions
	// between two cold accesses of the same burst. Small gaps inside
	// bursts and large gaps between bursts produce the clustered
	// inter-miss distances of Figure 2.
	BurstsPerTx float64
	BurstMin    int
	BurstMax    int
	BurstGapMax int

	// ChaseFrac is the fraction of cold accesses that are pointer-chase
	// steps (address dependent on the previous chase load's value):
	// dependent misses that fundamentally serialize into separate epochs.
	ChaseFrac float64
	// PrefetchFrac is the fraction of independent cold accesses that are
	// software-prefetched ahead of use (SPECweb99's useful prefetches).
	PrefetchFrac float64
	// DepStoreFrac is the probability, per burst access, of emitting a
	// store whose address depends on a recent cold load (blocks later
	// loads under issue configurations A and B).
	DepStoreFrac float64
	// DepBranchFrac is the probability, per burst access, of emitting a
	// branch whose outcome depends on a recent cold load's value
	// (candidate unresolvable misprediction).
	DepBranchFrac float64

	// LockEvery is the average number of instructions between lock
	// sections (CASA ... MEMBAR + unlock store); 0 disables locking.
	// SPECjbb2000's Java object locking makes CASA >0.6% of instructions.
	LockEvery int
	// LockedBurstFrac is the probability that a cold burst is executed as
	// a sequence of locked mini-sections (1-2 accesses each bracketed by
	// CASA ... MEMBAR), the shape of Java synchronized object access.
	// Serializing configurations cannot overlap across the mini-sections;
	// configuration E and runahead can — the paper's SPECjbb2000
	// signature (§5.3.1, §5.4.1).
	LockedBurstFrac float64

	// Cold code pool (instruction footprint).
	//
	// ColdFuncs cold functions of ColdFuncInstr instructions each are laid
	// out beyond the hot code; ColdCallsPerTx is the expected number of
	// calls into the pool per transaction. 0 disables I-misses.
	ColdFuncs      int
	ColdFuncInstr  int
	ColdCallsPerTx float64

	// Value predictability mix over *cold* load sites (hot sites are
	// always constant-valued): fractions of sites whose values are
	// constant, strided, or random. They need not sum to 1; the remainder
	// is random. Pointer-chase loads always carry the true next pointer
	// and are inherently hard to predict.
	ValueConstFrac  float64
	ValueStrideFrac float64
	// ValueChurn is the per-execution probability that a constant-valued
	// site's value changes (the store that invalidates it). Churn is what
	// produces Table 6's small-but-nonzero Wrong fractions: a confident
	// last-value predictor mispredicts once per change, then rebuilds.
	ValueChurn float64

	// RandomBranchFrac is the fraction of filler branches with
	// data-independent random outcomes (they mispredict but resolve
	// on-chip). The remainder are biased/loop branches.
	RandomBranchFrac float64

	// ColdStoreFrac redirects this fraction of compute stores to the cold
	// region: off-chip store misses that exercise the store-MLP extension
	// (§7 future work). 0 keeps all stores hot, the paper's setting.
	ColdStoreFrac float64

	// ColdStride, when positive, makes independent cold-burst accesses
	// walk the cold region with this byte stride instead of jumping
	// randomly — the regular array-scan pattern a hardware stride
	// prefetcher can cover (prefetcher-ablation workloads only).
	ColdStride int64

	// BurstSites is the size of the burst-code instance pool. Each burst
	// executes its routine at one of BurstSites+burstHotSites PC bases
	// spaced 4 bytes apart: the bases share cache lines (no extra I-miss
	// footprint) but give the value predictor, branch predictor and BTB
	// distinct PCs, reproducing the huge static-site populations of real
	// commercial codes (>16K missing-load sites overwhelm a 16K-entry
	// last-value predictor, producing the paper's large no-predict
	// fractions in Table 6). 0 keeps a single instance per routine.
	BurstSites int
	// BurstSiteHotProb is the probability that an independent or prefetch
	// burst runs at one of the few "hot" bases (predictor-resident sites,
	// the source of correct value predictions). Chase bursts always use
	// the cold tail: pointer values are unpredictable anyway and real
	// traversal code is spread thin.
	BurstSiteHotProb float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.TxInstr < 32:
		return fmt.Errorf("workload %s: TxInstr %d too small", c.Name, c.TxInstr)
	case c.HotBytes < 4096:
		return fmt.Errorf("workload %s: HotBytes %d too small", c.Name, c.HotBytes)
	case c.ColdBytes < c.HotBytes:
		return fmt.Errorf("workload %s: ColdBytes %d below HotBytes", c.Name, c.ColdBytes)
	case c.BurstMin < 1 || c.BurstMax < c.BurstMin:
		return fmt.Errorf("workload %s: bad burst bounds [%d,%d]", c.Name, c.BurstMin, c.BurstMax)
	case c.ChaseFrac < 0 || c.ChaseFrac > 1:
		return fmt.Errorf("workload %s: ChaseFrac %f out of range", c.Name, c.ChaseFrac)
	case c.PrefetchFrac < 0 || c.PrefetchFrac > 1:
		return fmt.Errorf("workload %s: PrefetchFrac %f out of range", c.Name, c.PrefetchFrac)
	case c.ColdFuncs > 0 && c.ColdFuncInstr < 16:
		return fmt.Errorf("workload %s: ColdFuncInstr %d too small", c.Name, c.ColdFuncInstr)
	case c.ValueConstFrac+c.ValueStrideFrac > 1:
		return fmt.Errorf("workload %s: value class fractions exceed 1", c.Name)
	}
	return nil
}

// WithSeed returns a copy of the configuration with a different seed.
func (c Config) WithSeed(seed int64) Config {
	c.Seed = seed
	return c
}

package workload_test

// The paper warms for 50M instructions and measures 100M, relying on the
// workloads being transaction-oriented with no phase changes (§4.2). Our
// synthetic workloads are stationary by construction; this test verifies
// it by comparing statistics across consecutive halves of a run, which is
// what licenses the shorter default run lengths used elsewhere.

import (
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/workload"
)

func halfStats(t *testing.T, a *annotate.Annotator, n int64) (missRate, mispred float64) {
	t.Helper()
	a.ResetStats()
	for i := int64(0); i < n; i++ {
		if _, ok := a.Next(); !ok {
			t.Fatal("stream ended")
		}
	}
	s := a.Stats()
	return s.MissRatePer100(), float64(s.Mispredicts) / float64(s.Branches)
}

func TestWorkloadsAreStationary(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million instruction run")
	}
	const half = 1_500_000
	for _, cfg := range workload.Presets(29) {
		g := workload.MustNew(cfg)
		a := annotate.New(g, annotate.Config{})
		a.Warm(1_000_000)
		m1, b1 := halfStats(t, a, half)
		m2, b2 := halfStats(t, a, half)
		if rel := m1 / m2; rel < 0.85 || rel > 1.18 {
			t.Errorf("%s: miss rate drifts between halves: %.3f vs %.3f", cfg.Name, m1, m2)
		}
		if rel := b1 / b2; rel < 0.8 || rel > 1.25 {
			t.Errorf("%s: mispredict rate drifts between halves: %.4f vs %.4f", cfg.Name, b1, b2)
		}
	}
}

package workload

import (
	"math/rand"

	"mlpsim/internal/isa"
)

// progBuilder lays routines out at increasing PCs in the hot code region
// and assigns per-site behaviour.
type progBuilder struct {
	cfg *Config
	rng *rand.Rand
	pc  uint64
}

func buildProgram(cfg *Config, rng *rand.Rand) *program {
	b := &progBuilder{cfg: cfg, rng: rng, pc: hotCodeBase}
	p := &program{}

	for i := 0; i < 8; i++ {
		p.compute = append(p.compute, b.computeRoutine(40))
	}
	for i := 0; i < 4; i++ {
		p.chase = append(p.chase, b.chaseRoutine(false))
		p.chaseDepBr = append(p.chaseDepBr, b.chaseRoutine(true))
	}
	coldDsts := []isa.Reg{regColdA, regColdB, regColdC}
	gapMax := maxInt(1, cfg.BurstGapMax)
	for i := 0; i < 10; i++ {
		dst := coldDsts[i%len(coldDsts)]
		gap := 1 + i*gapMax/10
		p.indep = append(p.indep, b.indepRoutine(dst, gap, false, false))
	}
	for i := 0; i < 4; i++ {
		dst := coldDsts[i%len(coldDsts)]
		gap := 1 + i*gapMax/4
		p.indepDepSt = append(p.indepDepSt, b.indepRoutine(dst, gap, true, false))
		p.indepDepBr = append(p.indepDepBr, b.indepRoutine(dst, gap, false, true))
	}
	for i := 0; i < 3; i++ {
		p.prefetch = append(p.prefetch, b.prefetchRoutine())
	}
	for i := 0; i < 8; i++ {
		p.useLoads = append(p.useLoads, b.useLoadRoutine())
	}
	p.lock = b.lockRoutine()
	if cfg.ColdFuncs > 0 {
		p.coldBody = b.coldBodyRoutine(cfg.ColdFuncInstr)
		p.coldFuncs = cfg.ColdFuncs
	}
	return p
}

// add appends a site at the next PC and returns its index.
func (b *progBuilder) addTo(r *routine, s site) int {
	s.pc = b.pc
	b.pc += 4
	r.sites = append(r.sites, s)
	return len(r.sites) - 1
}

// gap advances the PC without emitting a site, separating routines so
// their cache lines do not blend.
func (b *progBuilder) gap(n int) { b.pc += uint64(n) * 4 }

func (b *progBuilder) fillerSite() site {
	dst := fillerRegs[b.rng.Intn(len(fillerRegs))]
	s1 := fillerRegs[b.rng.Intn(len(fillerRegs))]
	s2 := fillerRegs[b.rng.Intn(len(fillerRegs))]
	if b.rng.Intn(8) == 0 {
		s1 = regHotLoadA // occasionally consume loaded data
	}
	return site{class: isa.ALU, src1: s1, src2: s2, dst: dst, role: roleFiller}
}

func (b *progBuilder) counterSite() site {
	return site{class: isa.ALU, src1: regCounter, src2: isa.NoReg, dst: regCounter, role: roleCounter}
}

func (b *progBuilder) hotLoadSite(dst isa.Reg) site {
	return site{class: isa.Load, src1: regGlobal, src2: isa.NoReg, dst: dst,
		role: roleHotLoad, vclass: valConst, vseed: b.rng.Uint64()}
}

func (b *progBuilder) hotStoreSite() site {
	return site{class: isa.Store, src1: regGlobal, src2: fillerRegs[b.rng.Intn(len(fillerRegs))],
		dst: isa.NoReg, role: roleHotStore}
}

func (b *progBuilder) biasedBranchSite() site {
	kind := brBiased
	if b.rng.Float64() < b.cfg.RandomBranchFrac {
		kind = brRandom
	}
	return site{class: isa.Branch, src1: regCounter, src2: isa.NoReg, dst: isa.NoReg,
		role: roleBranch, branch: kind, biasP: 0.95}
}

// coldValueClass assigns a value class per the configured site mix.
func (b *progBuilder) coldValueClass() valueKind {
	x := b.rng.Float64()
	switch {
	case x < b.cfg.ValueConstFrac:
		return valConst
	case x < b.cfg.ValueConstFrac+b.cfg.ValueStrideFrac:
		return valStride
	default:
		return valRandom
	}
}

// computeRoutine is straight-line hot-path filler.
func (b *progBuilder) computeRoutine(n int) *routine {
	r := &routine{}
	hotDst := regHotLoadA
	for i := 0; i < n; i++ {
		switch x := b.rng.Float64(); {
		case x < 0.62:
			b.addTo(r, b.fillerSite())
		case x < 0.77:
			b.addTo(r, b.hotLoadSite(hotDst))
			if hotDst == regHotLoadA {
				hotDst = regHotLoadB
			} else {
				hotDst = regHotLoadA
			}
		case x < 0.85:
			b.addTo(r, b.hotStoreSite())
		default:
			b.addTo(r, b.biasedBranchSite())
		}
	}
	b.gap(8)
	return r
}

// loopify marks [start, len) as the loop body and appends the counter
// increment and back-edge branch that close it.
func (b *progBuilder) loopify(r *routine, start int) {
	b.addTo(r, b.counterSite())
	backEdge := site{class: isa.Branch, src1: regCounter, src2: isa.NoReg, dst: isa.NoReg,
		role: roleBranch, branch: brLoop, loopTarget: r.sites[start].pc}
	b.addTo(r, backEdge)
	r.bodyStart = start
	r.bodyEnd = len(r.sites)
	b.gap(8)
}

// chaseRoutine is a pointer-chase loop: each iteration's load address is
// the previous iteration's loaded value.
func (b *progBuilder) chaseRoutine(depBranch bool) *routine {
	r := &routine{}
	start := b.addTo(r, site{class: isa.Load, src1: regChase, src2: isa.NoReg, dst: regChase,
		role: roleChase, vclass: valPtr})
	b.addTo(r, b.fillerSite())
	b.addTo(r, b.fillerSite())
	if depBranch {
		b.addTo(r, site{class: isa.Branch, src1: regChase, src2: isa.NoReg, dst: isa.NoReg,
			role: roleBranch, branch: brDataDep})
	}
	b.loopify(r, start)
	return r
}

// indepRoutine is a burst loop of independent cold loads with a fixed
// filler gap, optionally followed by a dependent store or branch. The
// loaded value is consumed mid-gap, as real code does: out-of-order issue
// does not care, but in-order stall-on-use issue stalls there.
func (b *progBuilder) indepRoutine(dst isa.Reg, gap int, depStore, depBranch bool) *routine {
	r := &routine{}
	start := b.addTo(r, site{class: isa.Load, src1: regGlobal, src2: isa.NoReg, dst: dst,
		role: roleColdLoad, vclass: b.coldValueClass(), vseed: b.rng.Uint64()})
	for i := 0; i < gap; i++ {
		b.addTo(r, b.fillerSite())
		if i == gap/2 {
			b.addTo(r, site{class: isa.ALU, src1: dst, src2: fillerRegs[1],
				dst: fillerRegs[2], role: roleFiller})
		}
	}
	if depStore {
		b.addTo(r, site{class: isa.Store, src1: dst, src2: fillerRegs[0], dst: isa.NoReg,
			role: roleDepStore})
	}
	if depBranch {
		b.addTo(r, site{class: isa.Branch, src1: dst, src2: isa.NoReg, dst: isa.NoReg,
			role: roleBranch, branch: brDataDep})
	}
	b.loopify(r, start)
	return r
}

// prefetchRoutine issues software prefetches of future cold loads.
func (b *progBuilder) prefetchRoutine() *routine {
	r := &routine{}
	start := b.addTo(r, site{class: isa.Prefetch, src1: regGlobal, src2: isa.NoReg, dst: isa.NoReg,
		role: rolePrefetch})
	b.addTo(r, b.fillerSite())
	b.loopify(r, start)
	return r
}

// useLoadRoutine consumes previously prefetched addresses with demand
// loads (which hit, making the prefetches useful).
func (b *progBuilder) useLoadRoutine() *routine {
	r := &routine{}
	start := b.addTo(r, site{class: isa.Load, src1: regGlobal, src2: isa.NoReg, dst: regUse,
		role: roleUseLoad, vclass: b.coldValueClass(), vseed: b.rng.Uint64()})
	b.addTo(r, b.fillerSite())
	b.addTo(r, site{class: isa.ALU, src1: regUse, src2: fillerRegs[0], dst: fillerRegs[3],
		role: roleFiller})
	b.addTo(r, b.fillerSite())
	b.loopify(r, start)
	return r
}

// lockRoutine is a critical section: CASA acquire, a short body, MEMBAR,
// unlock store.
func (b *progBuilder) lockRoutine() *routine {
	r := &routine{}
	b.addTo(r, site{class: isa.CASA, src1: regLockBase, src2: regLockVal, dst: regLockVal,
		role: roleCASA})
	for i := 0; i < 6; i++ {
		b.addTo(r, b.fillerSite())
	}
	b.addTo(r, site{class: isa.MemBar, src1: isa.NoReg, src2: isa.NoReg, dst: isa.NoReg,
		role: roleMemBar})
	b.addTo(r, site{class: isa.Store, src1: regLockBase, src2: regLockVal, dst: isa.NoReg,
		role: roleUnlock})
	b.addTo(r, b.fillerSite())
	b.gap(8)
	return r
}

// coldBodyRoutine is the shared body template of the cold function pool;
// PCs are routine-relative (instantiated at each function's base address).
func (b *progBuilder) coldBodyRoutine(n int) *routine {
	save := b.pc
	b.pc = 0
	r := &routine{}
	for i := 0; i < n; i++ {
		if b.rng.Float64() < 0.12 {
			b.addTo(r, b.biasedBranchSite())
		} else {
			b.addTo(r, b.fillerSite())
		}
	}
	b.pc = save
	return r
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package workload

// Micro-workloads: small, single-mechanism configurations used by the
// examples and by tests that need one behaviour in isolation.

// PointerChase returns a workload whose cold accesses are all dependent
// pointer-chase steps: the worst case for MLP (every miss is its own
// epoch, MLP ≈ 1 regardless of window size).
func PointerChase(seed int64) Config {
	return Config{
		Name:             "PointerChase",
		Seed:             seed,
		TxInstr:          600,
		HotBytes:         64 << 10,
		ColdBytes:        256 << 20,
		BurstsPerTx:      2,
		BurstMin:         4,
		BurstMax:         8,
		BurstGapMax:      3,
		ChaseFrac:        1.0,
		ValueConstFrac:   0,
		ValueStrideFrac:  0,
		RandomBranchFrac: 0.05,
	}
}

// Stream returns a workload whose cold accesses are all independent:
// the best case for MLP (every burst overlaps fully, limited only by the
// window).
func Stream(seed int64) Config {
	return Config{
		Name:             "Stream",
		Seed:             seed,
		TxInstr:          600,
		HotBytes:         64 << 10,
		ColdBytes:        256 << 20,
		BurstsPerTx:      2,
		BurstMin:         4,
		BurstMax:         8,
		BurstGapMax:      3,
		ChaseFrac:        0,
		ValueConstFrac:   0.5,
		ValueStrideFrac:  0.2,
		RandomBranchFrac: 0.05,
	}
}

// Serialized returns a workload dominated by lock sections: serializing
// instructions every few dozen instructions strangle MLP until runahead
// (or issue configuration E) removes the constraint.
func Serialized(seed int64) Config {
	cfg := Stream(seed)
	cfg.Name = "Serialized"
	cfg.LockEvery = 60
	return cfg
}

// Strided returns a Stream variant whose cold accesses walk the region
// with a fixed stride: regular enough for a hardware stride prefetcher to
// cover (the prefetcher-extension ablation), unlike the random Stream.
func Strided(seed int64) Config {
	cfg := Stream(seed)
	cfg.Name = "Strided"
	cfg.ColdStride = 256
	return cfg
}

// StoreHeavy returns a Stream variant where a third of the compute
// stores write to the cold region: with write-allocate caches every such
// store misses off-chip, the traffic the paper's §7 store-MLP future work
// targets.
func StoreHeavy(seed int64) Config {
	cfg := Stream(seed)
	cfg.Name = "StoreHeavy"
	cfg.ColdStoreFrac = 0.33
	return cfg
}

// IBound returns a workload dominated by instruction-fetch misses from a
// large cold code pool: epochs triggered by I-misses expose their full
// latency and MLP stays near 1.
func IBound(seed int64) Config {
	cfg := Stream(seed)
	cfg.Name = "IBound"
	cfg.BurstsPerTx = 0.4
	cfg.ColdFuncs = 4096
	cfg.ColdFuncInstr = 64
	cfg.ColdCallsPerTx = 2.5
	return cfg
}

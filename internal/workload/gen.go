package workload

import (
	"fmt"
	"math/rand"

	"mlpsim/internal/isa"
)

// Memory map of the synthetic process. Regions are disjoint by
// construction; addresses never wrap between them for any configured size.
const (
	hotCodeBase  = 0x0010_0000 // hot code (transaction fabric)
	coldCodeBase = 0x0100_0000 // cold function pool (I-miss source)
	lockBase     = 0x0F00_0000 // lock words (hot, shared)
	hotDataBase  = 0x1000_0000 // hot data region
	warmDataBase = 0x3000_0000 // warm (L2-marginal) data region
	coldDataBase = 0x4000_0000 // cold data region
	numLocks     = 64
)

// role describes what a static instruction site does when instantiated.
type role uint8

const (
	roleFiller   role = iota // plain ALU over hot registers
	roleCounter              // loop-counter increment ALU
	roleHotLoad              // load from the hot data region
	roleHotStore             // store to the hot data region
	roleColdLoad             // independent load from the cold data region
	roleChase                // pointer-chase step (EA = previous value)
	rolePrefetch             // software prefetch of a future cold load
	roleUseLoad              // load of a previously prefetched address
	roleDepStore             // store whose address depends on a cold load
	roleCASA                 // lock acquire
	roleMemBar               // memory barrier
	roleUnlock               // lock release store
	roleBranch               // conditional branch
)

// branchKind describes a branch site's outcome behaviour.
type branchKind uint8

const (
	brNone    branchKind = iota
	brBiased             // taken with fixed probability (predictable)
	brRandom             // 50/50, data independent (resolves on-chip)
	brLoop               // loop back-edge: taken until the trip count runs out
	brDataDep            // outcome = bit of the last cold-loaded value
)

// valueKind describes the value stream a load site produces (drives the
// last-value predictor's Table 6 accuracy).
type valueKind uint8

const (
	valConst  valueKind = iota // same value every execution
	valStride                  // arithmetic progression
	valRandom                  // fresh pseudo-random value each execution
	valPtr                     // pointer-chase: value is the next node address
)

// site is one static instruction with fixed PC, registers and behaviour.
// Mutable fields (stride counter) are per-generator because each Generator
// builds its own program.
type site struct {
	pc         uint64
	class      isa.Class
	src1, src2 isa.Reg
	dst        isa.Reg
	role       role
	branch     branchKind
	biasP      float64
	vclass     valueKind
	vseed      uint64 // per-site value seed
	strideN    uint64 // mutable: executions so far (for valStride)
	loopTarget uint64 // static back-edge target (routine-relative PC)
}

// routine is a static straight-line code fragment, optionally with a loop
// body [bodyStart, bodyEnd) whose final site is the back-edge branch.
type routine struct {
	sites     []site
	bodyStart int
	bodyEnd   int
}

// program is the static code of one workload. Burst routines come in
// several variants per family so that per-site value-class draws average
// out to the configured fractions.
type program struct {
	compute    []*routine // filler variants
	chase      []*routine // pointer-chase burst loops
	chaseDepBr []*routine // chase loops with a data-dependent branch
	indep      []*routine // independent cold-load burst loops
	indepDepSt []*routine // independent loops with a dependent store
	indepDepBr []*routine // independent loops with a dependent branch
	prefetch   []*routine // software-prefetch burst loops
	useLoads   []*routine // demand loads of prefetched lines
	lock       *routine   // CASA ... MEMBAR ... unlock
	coldBody   *routine   // shared body template for cold functions
	coldFuncs  int        // number of cold function instances
}

func pick(rng interface{ Intn(int) int }, rs []*routine) *routine {
	return rs[rng.Intn(len(rs))]
}

// Register conventions. Miss-carrying registers are disjoint from filler
// registers so that filler never accidentally depends on an outstanding
// miss.
const (
	regGlobal   = isa.Reg(1) // global data base; never written
	regChase    = isa.Reg(3) // pointer-chase cursor
	regColdA    = isa.Reg(5) // independent cold-load destinations
	regColdB    = isa.Reg(6)
	regColdC    = isa.Reg(7)
	regUse      = isa.Reg(8)  // prefetched-line demand loads
	regHotLoadA = isa.Reg(24) // hot data loads
	regHotLoadB = isa.Reg(25)
	regCounter  = isa.Reg(27) // loop counters
	regLockBase = isa.Reg(28) // lock-word base; never written
	regLockVal  = isa.Reg(30) // CASA data register
)

var fillerRegs = []isa.Reg{16, 17, 18, 19, 20, 21, 22, 23}

// Generator synthesizes an endless dynamic instruction stream for one
// workload configuration. It implements trace.Source.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	prog *program

	queue []isa.Inst
	qpos  int

	chaseCur     uint64
	lastColdVal  uint64
	lockEA       uint64
	prefAddrs    []uint64
	warmRing     []uint64 // fresh warm lines awaiting replay; warmPos is the head
	warmPos      int
	coldCursor   uint64
	burstWarm    bool
	sinceLock    int
	pendingCalls int
	instrCount   int64
}

// New validates cfg and builds a generator.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	g.prog = buildProgram(&cfg, g.rng)
	g.chaseCur = g.chaseNext(0xdeadbeef)
	return g, nil
}

// MustNew is New but panics on configuration errors; presets are validated
// by tests, so callers use MustNew with them.
func MustNew(cfg Config) *Generator {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Next implements trace.Source. The stream is infinite; wrap with
// trace.Limit to bound it.
func (g *Generator) Next() (isa.Inst, bool) {
	for g.qpos >= len(g.queue) {
		g.queue = g.queue[:0]
		g.qpos = 0
		g.genTransaction()
	}
	in := g.queue[g.qpos]
	g.qpos++
	g.instrCount++
	return in, true
}

// chaseNext draws the pointer-chase successor: a fresh random line-aligned
// node of the cold region. A pure function of the current address would
// collapse into a ~sqrt(N)-node rho cycle whose footprint fits in the L2
// (killing the misses the chase exists to produce), so the walk is driven
// by the generator's seeded stream instead; the traversal never revisits
// enough to warm the cache, like a fresh B-tree descent per lookup.
func (g *Generator) chaseNext(cur uint64) uint64 {
	_ = cur
	lines := uint64(g.cfg.ColdBytes) / 64
	return coldDataBase + uint64(g.rng.Int63n(int64(lines)))*64 + 8
}

func (g *Generator) coldAddr() uint64 {
	if g.cfg.ColdStride > 0 {
		g.coldCursor = (g.coldCursor + uint64(g.cfg.ColdStride)) % uint64(g.cfg.ColdBytes)
		return coldDataBase + g.coldCursor&^7
	}
	lines := uint64(g.cfg.ColdBytes) / 64
	return coldDataBase + uint64(g.rng.Int63n(int64(lines)))*64
}

func (g *Generator) hotAddr() uint64 {
	return hotDataBase + uint64(g.rng.Int63n(g.cfg.HotBytes))&^7
}

// warmAddr draws from the L2-marginal region. Fresh random lines are
// recorded in a replay queue; once the queue holds more than
// WarmReuseDist unreplayed lines, accesses replay the queue head with
// probability WarmReuseFrac — revisiting each fresh line exactly once, in
// order, a delay ≥ WarmReuseDist fresh lines later (like rescanning
// B-tree inner nodes a few transactions later). Whether the replay hits
// depends on whether the L2 still holds the line: the Figure 7 capacity
// lever.
func (g *Generator) warmAddr() uint64 {
	k := g.cfg.WarmReuseDist
	if k > 0 && len(g.warmRing)-g.warmPos > k && g.rng.Float64() < g.cfg.WarmReuseFrac {
		// Replay the oldest unreplayed fresh line (written ≥ k fresh
		// accesses ago). Pops are FIFO, so a replayed burst revisits an
		// old burst's lines contiguously and in order.
		a := g.warmRing[g.warmPos]
		g.warmPos++
		if g.warmPos > 4096 && g.warmPos >= len(g.warmRing)/2 {
			g.warmRing = append(g.warmRing[:0], g.warmRing[g.warmPos:]...)
			g.warmPos = 0
		}
		return a
	}
	lines := uint64(g.cfg.WarmBytes) / 64
	a := warmDataBase + uint64(g.rng.Int63n(int64(lines)))*64
	if k > 0 {
		g.warmRing = append(g.warmRing, a)
	}
	return a
}

// genTransaction appends one transaction's instructions to the queue.
func (g *Generator) genTransaction() {
	cfg := &g.cfg

	nBursts := sampleCount(g.rng, cfg.BurstsPerTx)
	nColdCalls := sampleCount(g.rng, cfg.ColdCallsPerTx)

	// Estimate the burst instruction cost so compute chunks absorb the
	// remaining budget.
	avgBurst := (cfg.BurstMin + cfg.BurstMax) / 2
	burstCost := nBursts * avgBurst * (3 + cfg.BurstGapMax/2)
	coldCost := nColdCalls * cfg.ColdFuncInstr
	computeBudget := cfg.TxInstr - burstCost - coldCost
	if computeBudget < 32 {
		computeBudget = 32
	}
	segments := nBursts + 1
	chunk := computeBudget / segments
	g.pendingCalls += nColdCalls

	for s := 0; s < segments; s++ {
		g.emitCompute(chunk + g.rng.Intn(chunk/2+1) - chunk/4)
		if s < nBursts {
			g.emitBurst()
		}
	}
}

// emitCompute emits ~n instructions of hot-path filler, interleaving lock
// sections at the configured cadence and placing at most one pending cold
// call at a random position inside the chunk (cold code excursions are
// decorrelated from data bursts).
func (g *Generator) emitCompute(n int) {
	callAt := -1
	if g.pendingCalls > 0 && g.prog.coldFuncs > 0 {
		callAt = g.rng.Intn(n + 1)
	}
	emitted := 0
	for n > 0 {
		if callAt >= 0 && emitted >= callAt {
			callAt = -1
			g.pendingCalls--
			g.emitColdCall()
		}
		if g.cfg.LockEvery > 0 && g.sinceLock >= g.cfg.LockEvery {
			g.sinceLock = 0
			k := g.runRoutine(g.prog.lock, 1)
			n -= k
			emitted += k
			continue
		}
		r := g.prog.compute[g.rng.Intn(len(g.prog.compute))]
		k := g.runRoutine(r, 1)
		n -= k
		emitted += k
	}
}

// emitBurst emits one cold-access burst: a chase burst, a prefetch burst
// or an independent burst, per the configured mix.
func (g *Generator) emitBurst() {
	k := g.cfg.BurstMin
	if g.cfg.BurstMax > g.cfg.BurstMin {
		k += g.rng.Intn(g.cfg.BurstMax - g.cfg.BurstMin + 1)
	}
	switch {
	case g.rng.Float64() < g.cfg.ChaseFrac:
		r := pick(g.rng, g.prog.chase)
		if g.rng.Float64() < g.cfg.DepBranchFrac {
			r = pick(g.rng, g.prog.chaseDepBr)
		}
		g.runRoutineAt(r, k, g.burstBase(false))
	case g.rng.Float64() < g.cfg.PrefetchFrac:
		base := g.burstBase(true)
		g.prefAddrs = g.prefAddrs[:0]
		g.runRoutineAt(pick(g.rng, g.prog.prefetch), k, base)
		// A short gap before the demand loads, then consume the
		// prefetched addresses in order.
		g.runRoutine(g.prog.compute[0], 1)
		g.runRoutineAt(pick(g.rng, g.prog.useLoads), k, base)
	default:
		r := pick(g.rng, g.prog.indep)
		switch x := g.rng.Float64(); {
		case x < g.cfg.DepStoreFrac:
			r = pick(g.rng, g.prog.indepDepSt)
		case x < g.cfg.DepStoreFrac+g.cfg.DepBranchFrac:
			r = pick(g.rng, g.prog.indepDepBr)
		}
		// A warm burst scans L2-marginal data (e.g. B-tree inner nodes):
		// every access of the burst goes to the warm region, and the
		// burst is tight (small-gap variant), so a larger L2 eliminates
		// whole high-MLP epochs — the Figure 7 database/SPECjbb2000
		// behaviour.
		if g.cfg.WarmBytes > 0 && g.rng.Float64() < g.cfg.WarmBurstFrac {
			g.burstWarm = true
			r = g.prog.indep[g.rng.Intn(3)]
		}
		base := g.burstBase(true)
		if g.rng.Float64() < g.cfg.LockedBurstFrac {
			// Locked mini-sections: 1-2 accesses per critical section.
			for k > 0 {
				m := 1 + g.rng.Intn(2)
				if m > k {
					m = k
				}
				g.runRoutine(g.prog.lock, 1)
				g.runRoutineAt(r, m, base)
				k -= m
			}
			g.burstWarm = false
			return
		}
		g.runRoutineAt(r, k, base)
		g.burstWarm = false
	}
}

// burstHotSites is the number of predictor-resident burst-code instances
// (the "hot" subset of the site pool).
const burstHotSites = 16

// burstBase picks the PC base for a burst-routine instance. Bases are
// spaced 4 bytes apart: distinct predictor indexes, shared I-cache lines.
func (g *Generator) burstBase(hotEligible bool) uint64 {
	if g.cfg.BurstSites <= 0 {
		return 0
	}
	if hotEligible && g.rng.Float64() < g.cfg.BurstSiteHotProb {
		return uint64(g.rng.Intn(burstHotSites)) * 4
	}
	return uint64(burstHotSites+g.rng.Intn(g.cfg.BurstSites)) * 4
}

// emitColdCall emits one excursion into the cold code pool.
func (g *Generator) emitColdCall() {
	f := g.rng.Intn(g.prog.coldFuncs)
	base := uint64(coldCodeBase) + uint64(f)*uint64(len(g.prog.coldBody.sites))*4
	g.runRoutineAt(g.prog.coldBody, 1, base)
}

// runRoutine instantiates the routine with trips loop iterations and
// returns the number of instructions emitted.
func (g *Generator) runRoutine(r *routine, trips int) int {
	return g.runRoutineAt(r, trips, 0)
}

func (g *Generator) runRoutineAt(r *routine, trips int, pcBase uint64) int {
	emitted := 0
	emitRange := func(lo, hi int, lastTrip bool) {
		for i := lo; i < hi; i++ {
			g.emitSite(&r.sites[i], pcBase, lastTrip)
			emitted++
		}
	}
	if r.bodyEnd > r.bodyStart && trips > 1 {
		emitRange(0, r.bodyStart, false)
		for t := 0; t < trips; t++ {
			emitRange(r.bodyStart, r.bodyEnd, t == trips-1)
		}
		emitRange(r.bodyEnd, len(r.sites), false)
	} else {
		emitRange(0, len(r.sites), true)
	}
	return emitted
}

// emitSite instantiates one static site into a dynamic instruction.
// lastTrip tells loop back-edges to fall through.
func (g *Generator) emitSite(s *site, pcBase uint64, lastTrip bool) {
	in := isa.Inst{
		PC:    pcBase + s.pc,
		Class: s.class,
		Src1:  s.src1,
		Src2:  s.src2,
		Dst:   s.dst,
	}
	switch s.role {
	case roleFiller, roleCounter:
		// Nothing dynamic.
	case roleHotLoad:
		in.EA = g.hotAddr()
		if g.cfg.WarmBytes > 0 && g.rng.Float64() < g.cfg.WarmComputeFrac {
			in.EA = g.warmAddr()
		}
		in.Value = g.siteValue(s)
	case roleHotStore:
		in.EA = g.hotAddr()
		if g.cfg.ColdStoreFrac > 0 && g.rng.Float64() < g.cfg.ColdStoreFrac {
			in.EA = g.coldAddr()
		}
	case roleColdLoad:
		in.EA = g.coldAddr()
		if g.burstWarm {
			in.EA = g.warmAddr()
		}
		in.Value = g.siteValue(s)
		g.lastColdVal = in.Value
	case roleChase:
		in.EA = g.chaseCur
		next := g.chaseNext(g.chaseCur)
		in.Value = next
		g.chaseCur = next
		g.lastColdVal = next
	case rolePrefetch:
		addr := g.coldAddr()
		in.EA = addr
		g.prefAddrs = append(g.prefAddrs, addr)
	case roleUseLoad:
		if len(g.prefAddrs) > 0 {
			in.EA = g.prefAddrs[0]
			g.prefAddrs = g.prefAddrs[1:]
		} else {
			in.EA = g.coldAddr()
		}
		in.Value = g.siteValue(s)
	case roleDepStore:
		// The store's address register holds the last cold value; keep the
		// modelled EA inside the cold region.
		in.EA = coldDataBase + g.lastColdVal%uint64(g.cfg.ColdBytes)&^7
	case roleCASA:
		in.EA = lockBase + uint64(g.rng.Intn(numLocks))*64
		in.Value = uint64(g.rng.Intn(2))
		g.lockEA = in.EA
	case roleMemBar:
		// Nothing dynamic.
	case roleUnlock:
		in.EA = g.lockEA
	case roleBranch:
		in.Taken, in.Target = g.branchOutcome(s, pcBase, lastTrip)
	default:
		panic(fmt.Sprintf("workload: unhandled role %d", s.role))
	}
	g.queue = append(g.queue, in)
	g.sinceLock++
}

// branchOutcome resolves a branch site's direction and target.
func (g *Generator) branchOutcome(s *site, pcBase uint64, lastTrip bool) (bool, uint64) {
	var taken bool
	switch s.branch {
	case brBiased:
		taken = g.rng.Float64() < s.biasP
	case brRandom:
		taken = g.rng.Intn(2) == 0
	case brLoop:
		taken = !lastTrip
	case brDataDep:
		taken = g.lastColdVal&1 == 1
	default:
		taken = false
	}
	// The target must agree with the PC of the next emitted instruction so
	// the fetch stream stays consistent: loop back-edges jump to the body
	// start; every other branch falls through (its direction still
	// exercises the predictor).
	target := s.pc + pcBase + 4
	if s.branch == brLoop && taken {
		target = pcBase + s.loopTarget
	}
	return taken, target
}

// siteValue produces the next value of a load site per its value class.
func (g *Generator) siteValue(s *site) uint64 {
	switch s.vclass {
	case valConst:
		if g.cfg.ValueChurn > 0 && g.rng.Float64() < g.cfg.ValueChurn {
			s.vseed = g.rng.Uint64()
		}
		return s.vseed
	case valStride:
		s.strideN++
		return s.vseed + s.strideN*8
	default:
		return g.rng.Uint64()
	}
}

// mix64 is splitmix64's finalizer: a cheap, high-quality 64-bit mixer used
// for deterministic address hashing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sampleCount draws a non-negative integer with the given expectation:
// floor(mean) plus a Bernoulli trial on the fraction.
func sampleCount(rng *rand.Rand, mean float64) int {
	n := int(mean)
	if rng.Float64() < mean-float64(n) {
		n++
	}
	return n
}

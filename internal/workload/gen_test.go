package workload

import (
	"testing"

	"mlpsim/internal/isa"
	"mlpsim/internal/trace"
)

func collectN(t *testing.T, cfg Config, n int64) []isa.Inst {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", cfg.Name, err)
	}
	return trace.Collect(trace.Limit(g, n), -1)
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range Presets(1) {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	for _, cfg := range []Config{PointerChase(1), Stream(1), Serialized(1), IBound(1)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, cfg := range Presets(7) {
		a := collectN(t, cfg, 20000)
		b := collectN(t, cfg, 20000)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", cfg.Name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: instruction %d differs: %v vs %v", cfg.Name, i, a[i], b[i])
			}
		}
	}
}

func TestGeneratorSeedChangesStream(t *testing.T) {
	a := collectN(t, Database(1), 5000)
	b := collectN(t, Database(2), 5000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorStreamIsInfinite(t *testing.T) {
	g := MustNew(Database(3))
	for i := 0; i < 100000; i++ {
		if _, ok := g.Next(); !ok {
			t.Fatal("generator ended")
		}
	}
}

func TestInstructionMix(t *testing.T) {
	for _, cfg := range Presets(11) {
		insts := collectN(t, cfg, 300000)
		counts := map[isa.Class]int{}
		for i := range insts {
			counts[insts[i].Class]++
		}
		n := float64(len(insts))
		if frac := float64(counts[isa.ALU]) / n; frac < 0.4 || frac > 0.9 {
			t.Errorf("%s: ALU fraction %.2f out of [0.4,0.9]", cfg.Name, frac)
		}
		if frac := float64(counts[isa.Load]) / n; frac < 0.05 || frac > 0.4 {
			t.Errorf("%s: load fraction %.2f out of [0.05,0.4]", cfg.Name, frac)
		}
		if frac := float64(counts[isa.Branch]) / n; frac < 0.03 || frac > 0.35 {
			t.Errorf("%s: branch fraction %.2f out of [0.03,0.35]", cfg.Name, frac)
		}
		if counts[isa.Store] == 0 {
			t.Errorf("%s: no stores", cfg.Name)
		}
	}
}

func TestJBBHasSerializingDensity(t *testing.T) {
	insts := collectN(t, JBB(5), 500000)
	casa := 0
	for i := range insts {
		if insts[i].Class == isa.CASA {
			casa++
		}
	}
	frac := float64(casa) / float64(len(insts))
	// The paper reports CASA > 0.6% of dynamic instructions in SPECjbb2000.
	if frac < 0.004 || frac > 0.012 {
		t.Fatalf("JBB CASA fraction %.4f, want ≈0.006", frac)
	}
}

func TestWebHasPrefetches(t *testing.T) {
	insts := collectN(t, Web(5), 500000)
	pf := 0
	for i := range insts {
		if insts[i].Class == isa.Prefetch {
			pf++
		}
	}
	if pf == 0 {
		t.Fatal("Web workload emitted no software prefetches")
	}
	// Every prefetch must be followed (eventually) by a demand load of the
	// same line; check the multiset of prefetched lines is covered.
	lines := map[uint64]int{}
	covered := 0
	for i := range insts {
		switch insts[i].Class {
		case isa.Prefetch:
			lines[insts[i].EA>>6]++
		case isa.Load:
			if lines[insts[i].EA>>6] > 0 {
				lines[insts[i].EA>>6]--
				covered++
			}
		}
	}
	if float64(covered) < 0.9*float64(pf) {
		t.Fatalf("only %d of %d prefetches were consumed by loads", covered, pf)
	}
}

func TestChaseChainIsRegisterDependent(t *testing.T) {
	insts := collectN(t, PointerChase(9), 200000)
	// Every chase load: Src1 = Dst = regChase, and the EA of chase load
	// k+1 equals the Value of chase load k.
	var prevVal uint64
	seen := 0
	for i := range insts {
		in := &insts[i]
		if in.Class == isa.Load && in.Src1 == regChase && in.Dst == regChase {
			if seen > 0 && in.EA != prevVal {
				t.Fatalf("chase load %d: EA %#x != previous value %#x", seen, in.EA, prevVal)
			}
			prevVal = in.Value
			seen++
		}
	}
	if seen < 100 {
		t.Fatalf("only %d chase loads in 200k instructions", seen)
	}
}

func TestColdAddressesAreCold(t *testing.T) {
	insts := collectN(t, Stream(13), 100000)
	for i := range insts {
		in := &insts[i]
		if in.Class == isa.Load && (in.Dst == regColdA || in.Dst == regColdB || in.Dst == regColdC) {
			if in.EA < coldDataBase {
				t.Fatalf("cold load EA %#x below cold region", in.EA)
			}
		}
		if in.Class == isa.CASA && (in.EA < lockBase || in.EA >= lockBase+numLocks*64) {
			t.Fatalf("CASA EA %#x outside lock region", in.EA)
		}
	}
}

func TestLoopBranchTargetsAreConsistent(t *testing.T) {
	// A taken loop back-edge (backward branch) must target the PC of the
	// next instruction: the fetch stream loops over the burst body.
	// (Forward branches fall through by construction; their targets are
	// only BTB training data, and control transfers between routines are
	// implicit.)
	insts := collectN(t, Database(17), 100000)
	backEdges := 0
	for i := 0; i+1 < len(insts); i++ {
		in := &insts[i]
		if in.Class != isa.Branch || !in.Taken || in.Target >= in.PC {
			continue
		}
		backEdges++
		if in.Target != insts[i+1].PC {
			t.Fatalf("taken back-edge at %#x targets %#x but next PC is %#x",
				in.PC, in.Target, insts[i+1].PC)
		}
	}
	if backEdges == 0 {
		t.Fatal("no loop back-edges observed")
	}
}

func TestIBoundHasColdCode(t *testing.T) {
	insts := collectN(t, IBound(19), 200000)
	coldPCs := 0
	for i := range insts {
		if insts[i].PC >= coldCodeBase && insts[i].PC < lockBase {
			coldPCs++
		}
	}
	if coldPCs == 0 {
		t.Fatal("IBound never executed cold code")
	}
	hot := collectN(t, JBB(19), 200000)
	for i := range hot {
		if hot[i].PC >= coldCodeBase && hot[i].PC < lockBase {
			t.Fatal("JBB must have a hot-only code footprint")
		}
	}
}

func TestConfigValidationErrors(t *testing.T) {
	bad := []Config{
		{Name: "tiny", TxInstr: 4, HotBytes: 1 << 20, ColdBytes: 1 << 26, BurstMin: 1, BurstMax: 2},
		{Name: "hot", TxInstr: 1000, HotBytes: 16, ColdBytes: 1 << 26, BurstMin: 1, BurstMax: 2},
		{Name: "cold", TxInstr: 1000, HotBytes: 1 << 20, ColdBytes: 1 << 10, BurstMin: 1, BurstMax: 2},
		{Name: "burst", TxInstr: 1000, HotBytes: 1 << 20, ColdBytes: 1 << 26, BurstMin: 5, BurstMax: 2},
		{Name: "chase", TxInstr: 1000, HotBytes: 1 << 20, ColdBytes: 1 << 26, BurstMin: 1, BurstMax: 2, ChaseFrac: 1.5},
		{Name: "vals", TxInstr: 1000, HotBytes: 1 << 20, ColdBytes: 1 << 26, BurstMin: 1, BurstMax: 2, ValueConstFrac: 0.8, ValueStrideFrac: 0.4},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %q accepted", cfg.Name)
		}
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{Name: "bad"})
}

func TestWithSeed(t *testing.T) {
	cfg := Database(1).WithSeed(99)
	if cfg.Seed != 99 {
		t.Fatal("WithSeed did not apply")
	}
	if cfg.Name != "Database" {
		t.Fatal("WithSeed must not change other fields")
	}
}

func TestStridedWorkloadWalksColdRegion(t *testing.T) {
	insts := collectN(t, Strided(21), 100000)
	var prev uint64
	var seen int
	for i := range insts {
		in := &insts[i]
		if in.Class == isa.Load && in.EA >= coldDataBase &&
			(in.Dst == regColdA || in.Dst == regColdB || in.Dst == regColdC) {
			if seen > 0 && in.EA > prev && in.EA-prev != uint64(Strided(21).ColdStride)&^7 {
				// Strides are constant except at region wrap.
				if in.EA-prev > uint64(Strided(21).ColdStride) {
					t.Fatalf("stride broke: %#x -> %#x", prev, in.EA)
				}
			}
			prev = in.EA
			seen++
		}
	}
	if seen < 50 {
		t.Fatalf("only %d strided cold loads", seen)
	}
}

func TestStoreHeavyEmitsColdStores(t *testing.T) {
	insts := collectN(t, StoreHeavy(23), 100000)
	var cold, total int
	for i := range insts {
		if insts[i].Class == isa.Store {
			total++
			if insts[i].EA >= coldDataBase {
				cold++
			}
		}
	}
	if total == 0 || cold == 0 {
		t.Fatalf("stores: %d total, %d cold", total, cold)
	}
	frac := float64(cold) / float64(total)
	if frac < 0.15 || frac > 0.5 {
		t.Fatalf("cold store fraction %.2f, want ≈ 0.33", frac)
	}
	// The plain Stream workload keeps stores hot.
	plain := collectN(t, Stream(23), 100000)
	for i := range plain {
		if plain[i].Class == isa.Store && plain[i].EA >= coldDataBase {
			t.Fatal("Stream emitted a cold store")
		}
	}
}

func TestByName(t *testing.T) {
	names := map[string]string{
		"database": "Database", "db": "Database",
		"jbb": "SPECjbb2000", "specjbb2000": "SPECjbb2000",
		"web": "SPECweb99", "specweb99": "SPECweb99",
		"chase": "PointerChase", "stream": "Stream",
		"serialized": "Serialized", "ibound": "IBound",
		"strided": "Strided", "storeheavy": "StoreHeavy",
	}
	for in, want := range names {
		cfg, err := ByName(in, 7)
		if err != nil {
			t.Fatalf("ByName(%q): %v", in, err)
		}
		if cfg.Name != want || cfg.Seed != 7 {
			t.Fatalf("ByName(%q) = %s/%d, want %s/7", in, cfg.Name, cfg.Seed, want)
		}
	}
	if _, err := ByName("nonsense", 1); err == nil {
		t.Fatal("bogus name accepted")
	}
}

package workload

import "fmt"

// The three preset configurations stand in for the paper's commercial
// workloads. They are calibrated (see calibration_test.go) so that under
// the paper's default processor configuration:
//
//   - the database workload has the highest off-chip miss rate
//     (≈0.8/100 instructions) with a mix of dependent (pointer-chase) and
//     independent misses, noticeable serializing instructions, and
//     instruction-fetch misses from a large cold code pool;
//   - SPECjbb2000 has a much lower miss rate (≈0.2/100), strongly
//     clustered, mostly dependent misses, frequent CASA locking (>0.6% of
//     instructions) and a hot code footprint (no I-misses);
//   - SPECweb99 has the lowest miss rate (≈0.1/100), extremely clustered
//     independent misses, useful software prefetches and some I-misses.

// Database returns the database-workload stand-in.
func Database(seed int64) Config {
	return Config{
		Name:             "Database",
		Seed:             seed,
		TxInstr:          2600,
		HotBytes:         256 << 10,
		ColdBytes:        512 << 20,
		WarmBytes:        6 << 20,
		WarmBurstFrac:    0.45,
		WarmReuseFrac:    0.85,
		WarmReuseDist:    4096,
		BurstsPerTx:      3.3,
		BurstMin:         4,
		BurstMax:         8,
		BurstGapMax:      45,
		ChaseFrac:        0.40,
		PrefetchFrac:     0,
		DepStoreFrac:     0.20,
		DepBranchFrac:    0.10,
		LockEvery:        900,
		LockedBurstFrac:  0.15,
		ColdFuncs:        8192,
		ColdFuncInstr:    96,
		ColdCallsPerTx:   0.55,
		ValueConstFrac:   0.95,
		ValueStrideFrac:  0.02,
		ValueChurn:       0.006,
		RandomBranchFrac: 0.04,
		BurstSites:       8 << 10,
		BurstSiteHotProb: 0.75,
	}
}

// JBB returns the SPECjbb2000 stand-in.
func JBB(seed int64) Config {
	return Config{
		Name:             "SPECjbb2000",
		Seed:             seed,
		TxInstr:          2600,
		HotBytes:         384 << 10,
		ColdBytes:        768 << 20,
		WarmBytes:        6 << 20,
		WarmBurstFrac:    0.30,
		WarmReuseFrac:    0.70,
		WarmReuseDist:    1200,
		BurstsPerTx:      1.4,
		BurstMin:         3,
		BurstMax:         6,
		BurstGapMax:      25,
		ChaseFrac:        0.30,
		PrefetchFrac:     0,
		DepStoreFrac:     0.10,
		DepBranchFrac:    0.10,
		LockEvery:        260, // with locked bursts, CASA ≈ 0.6-0.7% of instructions
		LockedBurstFrac:  0.85,
		ColdFuncs:        0, // hot code: no I-misses
		ColdFuncInstr:    0,
		ColdCallsPerTx:   0,
		ValueConstFrac:   0.90,
		ValueStrideFrac:  0.03,
		ValueChurn:       0.006,
		RandomBranchFrac: 0.03,
		BurstSites:       8 << 10,
		BurstSiteHotProb: 0.30,
	}
}

// Web returns the SPECweb99 stand-in.
func Web(seed int64) Config {
	return Config{
		Name:             "SPECweb99",
		Seed:             seed,
		TxInstr:          3300,
		HotBytes:         256 << 10,
		ColdBytes:        512 << 20,
		WarmBytes:        5 << 20,
		WarmComputeFrac:  0.002,
		WarmReuseFrac:    0.80,
		WarmReuseDist:    192,
		BurstsPerTx:      1.0,
		BurstMin:         1,
		BurstMax:         3,
		BurstGapMax:      110,
		ChaseFrac:        0.10,
		PrefetchFrac:     0.30,
		DepStoreFrac:     0.05,
		DepBranchFrac:    0.05,
		LockEvery:        2500,
		ColdFuncs:        4096,
		ColdFuncInstr:    64,
		ColdCallsPerTx:   0.05,
		ValueConstFrac:   0.85,
		ValueStrideFrac:  0.03,
		ValueChurn:       0.006,
		RandomBranchFrac: 0.03,
		BurstSites:       8 << 10,
		BurstSiteHotProb: 0.55,
	}
}

// Presets returns the three paper workloads with the given seed, in the
// order the paper's tables list them.
func Presets(seed int64) []Config {
	return []Config{Database(seed), JBB(seed), Web(seed)}
}

// ByName resolves a workload preset by CLI-friendly name. Accepted names:
// database/db, jbb/specjbb/specjbb2000, web/specweb/specweb99,
// chase/pointerchase, stream, serialized, ibound, strided, storeheavy.
func ByName(name string, seed int64) (Config, error) {
	switch name {
	case "database", "db":
		return Database(seed), nil
	case "jbb", "specjbb", "specjbb2000":
		return JBB(seed), nil
	case "web", "specweb", "specweb99":
		return Web(seed), nil
	case "chase", "pointerchase":
		return PointerChase(seed), nil
	case "stream":
		return Stream(seed), nil
	case "serialized":
		return Serialized(seed), nil
	case "ibound":
		return IBound(seed), nil
	case "strided":
		return Strided(seed), nil
	case "storeheavy":
		return StoreHeavy(seed), nil
	}
	return Config{}, fmt.Errorf("workload: unknown preset %q", name)
}

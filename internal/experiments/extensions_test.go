package experiments

import (
	"strings"
	"testing"

	"mlpsim/internal/workload"
)

func TestExtMSHRClampsMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	res := RunExtMSHR(tiny(31, workload.Database(31)))
	byKey := map[string]map[int]float64{}
	for _, c := range res.Cells {
		if byKey[c.Config] == nil {
			byKey[c.Config] = map[int]float64{}
		}
		byKey[c.Config][c.MSHRs] = c.MLP
	}
	for cfg, m := range byKey {
		// MLP can never exceed the MSHR count, and one MSHR serializes
		// everything.
		for mshrs, mlp := range m {
			if mshrs > 0 && mlp > float64(mshrs)+1e-9 {
				t.Errorf("%s: MLP %.3f exceeds %d MSHRs", cfg, mlp, mshrs)
			}
		}
		if m[1] > 1.0001 {
			t.Errorf("%s: 1-MSHR MLP = %.3f, want 1", cfg, m[1])
		}
		// Monotone in MSHR count, unlimited at the top.
		if m[2] > m[4]+0.02 || m[4] > m[8]+0.02 || m[8] > m[0]+0.02 {
			t.Errorf("%s: MLP not monotone in MSHRs: %v", cfg, m)
		}
	}
	// Runahead needs more MSHRs than the conventional window: its
	// unlimited MLP is higher, so the gap between 4 and unlimited is
	// bigger.
	conv, rae := byKey["64C"], byKey["RAE"]
	if rae[0] <= conv[0] {
		t.Fatalf("RAE unlimited MLP %.3f not above 64C %.3f", rae[0], conv[0])
	}
	if !strings.Contains(res.String(), "MSHR") {
		t.Fatal("rendering broken")
	}
}

func TestExtPrefetchDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	s := tiny(33, workload.Database(33))
	res := RunExtPrefetch(s)
	get := func(wl, variant string) *ExtPrefetchRow {
		for i := range res.Rows {
			if res.Rows[i].Workload == wl && res.Rows[i].Variant == variant {
				return &res.Rows[i]
			}
		}
		t.Fatalf("missing row %s/%s", wl, variant)
		return nil
	}
	// The sequential I-prefetcher removes most database I-misses...
	dbNone, dbI := get("Database", "none"), get("Database", "I-seq")
	if dbI.IAccesses >= dbNone.IAccesses {
		t.Fatalf("I-prefetch did not reduce I-misses: %d -> %d", dbNone.IAccesses, dbI.IAccesses)
	}
	if float64(dbI.IAccesses) > 0.5*float64(dbNone.IAccesses) {
		t.Fatalf("I-prefetch coverage too weak: %d -> %d", dbNone.IAccesses, dbI.IAccesses)
	}
	// ...with high accuracy on straight-line cold code.
	if dbI.Accuracy < 0.5 {
		t.Fatalf("I-prefetch accuracy %.2f too low", dbI.Accuracy)
	}
	// The stride prefetcher slashes the strided scan's miss rate but
	// cannot touch the database's pointer-dependent misses.
	stNone, stD := get("Strided", "none"), get("Strided", "D-stride")
	if stD.MissRate > 0.5*stNone.MissRate {
		t.Fatalf("stride prefetcher ineffective on strided scan: %.3f -> %.3f",
			stNone.MissRate, stD.MissRate)
	}
	dbD := get("Database", "D-stride")
	if dbD.MissRate < 0.85*dbNone.MissRate {
		t.Fatalf("stride prefetcher implausibly effective on random-address database: %.3f -> %.3f",
			dbNone.MissRate, dbD.MissRate)
	}
}

func TestExtStoreMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	res := RunExtStoreMLP(tiny(35, workload.Database(35)))
	var heavyInf, heavy1 *ExtStoreRow
	for i := range res.Rows {
		r := &res.Rows[i]
		if r.Workload != "StoreHeavy" {
			continue
		}
		switch r.SB {
		case 0:
			heavyInf = r
		case 1:
			heavy1 = r
		}
	}
	if heavyInf == nil || heavy1 == nil {
		t.Fatal("missing store-heavy rows")
	}
	// Infinite store buffer: no SB terminations, store MLP above 1
	// (clustered store misses drain together).
	if heavyInf.SBLimitedFrac != 0 {
		t.Fatalf("infinite SB shows %.2f SB-limited epochs", heavyInf.SBLimitedFrac)
	}
	if heavyInf.StoreMLP <= 1.05 {
		t.Fatalf("store-heavy workload store MLP = %.3f, want > 1", heavyInf.StoreMLP)
	}
	// A one-entry buffer serializes store misses and terminates windows.
	if heavy1.StoreMLP > 1.0001 {
		t.Fatalf("1-entry SB store MLP = %.3f, want 1", heavy1.StoreMLP)
	}
	if heavy1.SBLimitedFrac <= 0 {
		t.Fatal("1-entry SB never limited an epoch")
	}
	if heavy1.MLP > heavyInf.MLP+1e-9 {
		t.Fatalf("shrinking the SB raised MLP: %.3f -> %.3f", heavyInf.MLP, heavy1.MLP)
	}
}

func TestExtSMTScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thread passes")
	}
	s := tiny(37, workload.Database(37))
	s.Measure = 400_000
	res := RunExtSMT(s)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	one, four := res.Rows[0], res.Rows[2]
	if four.CombinedUpper < 2*one.CombinedUpper {
		t.Fatalf("4-thread combined bound %.3f not scaling over %.3f",
			four.CombinedUpper, one.CombinedUpper)
	}
}

// TestExtSMTTinyMeasure pins the boundary where the per-thread split of
// the instruction budget rounds to zero (Measure < K): the sweep must
// degrade gracefully instead of panicking in smt validation.
func TestExtSMTTinyMeasure(t *testing.T) {
	s := tiny(38, workload.Database(38))
	s.Warmup = 1000
	s.Measure = 2 // below the largest thread count (4)
	res := RunExtSMT(s)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if len(r.PerThreadMLP) != r.Threads {
			t.Errorf("%d threads reported %d per-thread MLPs", r.Threads, len(r.PerThreadMLP))
		}
		if r.CombinedUpper < 0 || r.CombinedLower < 0 {
			t.Errorf("%d threads: negative bounds %v/%v", r.Threads, r.CombinedLower, r.CombinedUpper)
		}
	}
	// A zero budget is the degenerate boundary: all-zero rows, no panic.
	s.Measure = 0
	res = RunExtSMT(s)
	for _, r := range res.Rows {
		if r.CombinedUpper != 0 || r.CombinedLower != 0 {
			t.Errorf("zero-measure row %d has non-zero bounds: %+v", r.Threads, r)
		}
	}
}

func TestExtBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	res := RunExtBandwidth(tiny(39, workload.Database(39)))
	prev := 1e18
	for _, r := range res.Rows {
		if r.OffChipCPI > prev+1e-12 {
			t.Fatalf("off-chip CPI rose with channels: %v", res.Rows)
		}
		prev = r.OffChipCPI
		if r.Inflation < 1-1e-9 {
			t.Fatalf("inflation below 1: %+v", r)
		}
	}
	// One channel must hurt a runahead-boosted clustered workload.
	if res.Rows[0].Inflation < 1.1 {
		t.Fatalf("1-channel inflation %.3f too small", res.Rows[0].Inflation)
	}
}

func TestRegistryIncludesExtensions(t *testing.T) {
	for _, id := range []string{"ext-mshr", "ext-prefetch", "ext-storemlp", "ext-storesets", "ext-smt", "ext-smtsched", "ext-bandwidth"} {
		if Find(id) == nil {
			t.Errorf("missing exhibit %q", id)
		}
	}
}

func TestStabilityErrorBars(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	s := tiny(41, workload.Database(41))
	s.Measure = 400_000
	res := RunStability(s)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.MLP.N != StabilitySeeds {
			t.Fatalf("%s/%s: %d seeds", r.Workload, r.Config, r.MLP.N)
		}
		if r.MLP.Mean < 1 {
			t.Fatalf("%s/%s: mean MLP %.3f < 1", r.Workload, r.Config, r.MLP.Mean)
		}
		// Seeds must agree within 15% — the workloads are stationary.
		if r.MLP.RelCI95() > 0.15 {
			t.Fatalf("%s/%s: MLP CI %.1f%% too wide", r.Workload, r.Config, 100*r.MLP.RelCI95())
		}
	}
}

func TestWriteCSV(t *testing.T) {
	res := Table5{Rows: []Table5Row{
		{Workload: "Database", StallOnMiss: 1.02, StallOnUse: 1.06},
		{Workload: "SPECweb99", StallOnMiss: 1.10, StallOnUse: 1.13},
	}}
	var b strings.Builder
	if err := WriteCSV(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "Workload,StallOnMiss,StallOnUse\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "Database,1.0200,1.0600") {
		t.Fatalf("row wrong:\n%s", out)
	}
	// Nested slices flatten.
	smtRes := ExtSMT{Rows: []ExtSMTRow{{Threads: 2, PerThreadMLP: []float64{1.5, 1.25}}}}
	b.Reset()
	if err := WriteCSV(&b, smtRes); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1.5000;1.2500") {
		t.Fatalf("nested slice not flattened:\n%s", b.String())
	}
	// Non-exhibit values error cleanly.
	if err := WriteCSV(&b, 42); err == nil {
		t.Fatal("non-struct accepted")
	}
	type odd struct{ X int }
	if err := WriteCSV(&b, odd{}); err == nil {
		t.Fatal("struct without rows accepted")
	}
	// Empty rows produce no output and no error.
	b.Reset()
	if err := WriteCSV(&b, Table5{}); err != nil || b.Len() != 0 {
		t.Fatalf("empty exhibit: err=%v out=%q", err, b.String())
	}
}

func TestCompareHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("headline runs")
	}
	s := tiny(43)
	s.Measure = 500_000
	res := RunCompare(s)
	if len(res.Rows) != 3*7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Paper <= 0 && r.Metric != "MLP in-order stall-on-miss" {
			t.Errorf("%s/%s: missing paper value", r.Workload, r.Metric)
		}
		if r.Measured < 0 {
			t.Errorf("%s/%s: negative measurement", r.Workload, r.Metric)
		}
		// Shape check: measured within 2.5x of the paper either way for
		// ratio-like metrics (generous; exact bands live in the dedicated
		// tests).
		if r.Paper > 0 {
			lo, hi := 0.3, 3.0
			if strings.HasPrefix(r.Metric, "VP ") {
				// The confidence-gated value predictor trains slowly on
				// the sparse-miss workloads; at this test's short run
				// length its correct fraction undershoots. The dedicated
				// calibration test checks the full-length bands.
				lo = 0.08
			}
			ratio := r.Measured / r.Paper
			if ratio < lo || ratio > hi {
				t.Errorf("%s/%s: measured %.3f vs paper %.3f — out of shape",
					r.Workload, r.Metric, r.Measured, r.Paper)
			}
		}
	}
	if !strings.Contains(res.String(), "Paper vs Measured") {
		t.Fatal("rendering broken")
	}
}

package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
)

// Table5Row holds the in-order MLP of one workload.
type Table5Row struct {
	Workload    string
	StallOnMiss float64
	StallOnUse  float64
}

// Table5 reproduces Table 5: MLP of in-order issue.
type Table5 struct {
	Rows []Table5Row
}

// RunTable5 executes the experiment.
func RunTable5(s Setup) Table5 {
	rows := make([]Table5Row, len(s.Workloads))
	for i, w := range s.Workloads {
		rows[i].Workload = w.Name
	}
	points := make([]MLPPoint, len(s.Workloads)*2)
	for i := range points {
		wi, mode := i/2, i%2
		cfg := core.Config{Mode: core.InOrderStallOnMiss}
		if mode == 1 {
			cfg.Mode = core.InOrderStallOnUse
		}
		points[i] = MLPPoint{Workload: s.Workloads[wi], Config: cfg, Annot: annotate.Config{}}
	}
	results := s.RunMLPsimBatch(points)
	for i, res := range results {
		if wi := i / 2; i%2 == 0 {
			rows[wi].StallOnMiss = res.MLP()
		} else {
			rows[wi].StallOnUse = res.MLP()
		}
	}
	return Table5{Rows: rows}
}

// String renders the table.
func (t Table5) String() string {
	tb := newTable("Table 5: MLP of In-Order Issue")
	tb.row("Benchmark", "Stall-on-Miss", "Stall-on-Use")
	for _, r := range t.Rows {
		tb.rowf("%s\t%s\t%s", r.Workload, f2(r.StallOnMiss), f2(r.StallOnUse))
	}
	return tb.String()
}

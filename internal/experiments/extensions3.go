package experiments

// Store-set memory dependence speculation (Chrysos & Emer): the paper's
// MLPsim assumes an oracle memory disambiguator — a load waits exactly
// for the stores it truly depends on. This exhibit brackets that
// assumption: an always-conservative machine (every load waits for every
// earlier store) is the lower bound, the oracle the upper bound, and a
// store-set predictor of swept SSIT/LFST size and confidence threshold
// lands in between, paying recovery flushes for the dependences it
// misses and needless serialization for the ones it invents.

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/storeset"
)

// ExtStoreSetsRow is one (workload, disambiguation mode, predictor
// geometry) measurement. SSIT/LFST/Conf are zero for the oracle and
// conservative bound rows.
type ExtStoreSetsRow struct {
	Workload    string
	Disamb      string
	SSIT        int
	LFST        int
	Conf        int
	MLP         float64
	Mispredicts uint64
	Serializes  uint64
}

// ExtStoreSets is the store-set disambiguation sweep.
type ExtStoreSets struct {
	Rows []ExtStoreSetsRow
}

// ExtStoreSetsSSITs is the swept store-set identifier table axis; the
// LFST is sized at a quarter of the SSIT throughout.
var ExtStoreSetsSSITs = []int{256, 1024, 4096}

// ExtStoreSetsConfs is the swept confidence-threshold axis.
var ExtStoreSetsConfs = []int{0, 2}

// extStoreSetsGrid resolves one grid point to a predictor geometry.
func extStoreSetsGrid(si, ci int) storeset.Config {
	return storeset.Config{
		SSITSize:      ExtStoreSetsSSITs[si],
		LFSTSize:      ExtStoreSetsSSITs[si] / 4,
		ConfThreshold: uint8(ExtStoreSetsConfs[ci]),
	}
}

// RunExtStoreSets executes the sweep. The oracle and conservative bound
// rows run on the first grid point's annotated stream — both ignore the
// Dep column, so their results are bit-identical to plain-annotation
// runs while sharing the stream (and therefore a gang) with the
// store-set points.
func RunExtStoreSets(s Setup) ExtStoreSets {
	type job struct {
		wi     int
		mode   core.DisambMode
		si, ci int
	}
	var jobs []job
	for wi := range s.Workloads {
		jobs = append(jobs,
			job{wi, core.DisambOracle, 0, 0},
			job{wi, core.DisambConservative, 0, 0})
		for si := range ExtStoreSetsSSITs {
			for ci := range ExtStoreSetsConfs {
				jobs = append(jobs, job{wi, core.DisambStoreSets, si, ci})
			}
		}
	}
	points := make([]MLPPoint, len(jobs))
	for i, j := range jobs {
		cfg := core.Default()
		cfg.Disamb = j.mode
		points[i] = MLPPoint{
			Workload: s.Workloads[j.wi],
			Config:   cfg,
			Annot:    annotate.Config{StoreSets: storeset.New(extStoreSetsGrid(j.si, j.ci))},
		}
	}
	results := s.RunMLPsimBatch(points)
	rows := make([]ExtStoreSetsRow, len(jobs))
	for i, j := range jobs {
		row := ExtStoreSetsRow{
			Workload:    s.Workloads[j.wi].Name,
			Disamb:      j.mode.String(),
			MLP:         results[i].MLP(),
			Mispredicts: results[i].DepMispredicts,
			Serializes:  results[i].DepSerializes,
		}
		if j.mode == core.DisambStoreSets {
			g := extStoreSetsGrid(j.si, j.ci)
			row.SSIT, row.LFST, row.Conf = g.SSITSize, g.LFSTSize, int(g.ConfThreshold)
		}
		rows[i] = row
	}
	return ExtStoreSets{Rows: rows}
}

// String renders the sweep.
func (e ExtStoreSets) String() string {
	tb := newTable("Extension: Store-Set Memory Dependence Speculation (Chrysos-Emer)")
	tb.row("Workload", "Disamb", "SSIT", "LFST", "Conf", "MLP", "Mispredicts", "Serializes")
	for _, r := range e.Rows {
		ssit, lfst, conf := "-", "-", "-"
		if r.Disamb == core.DisambStoreSets.String() {
			ssit, lfst, conf = itoa(r.SSIT), itoa(r.LFST), itoa(r.Conf)
		}
		tb.rowf("%s\t%s\t%s\t%s\t%s\t%s\t%d\t%d",
			r.Workload, r.Disamb, ssit, lfst, conf, f2(r.MLP), r.Mispredicts, r.Serializes)
	}
	return tb.String()
}

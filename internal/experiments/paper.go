package experiments

// The paper's published numbers, transcribed as data. Tests and the
// "compare" exhibit use them to show paper-vs-measured side by side; the
// reproduction targets the *shape* (orderings, ratios, crossovers), not
// the absolute values, which depend on Sun's proprietary traces.

// PaperTable1Row mirrors Table 1.
type PaperTable1Row struct {
	Workload       string
	Penalty        int
	CPI            float64
	CPIOnChip      float64
	CPIOffChip     float64
	MissRatePer100 float64
	MLP            float64
	OverlapCM      float64
}

// PaperTable1 is Table 1 of the paper.
var PaperTable1 = []PaperTable1Row{
	{"Database", 200, 2.44, 1.47, 0.97, 0.84, 1.33, 0.20},
	{"Database", 1000, 7.28, 1.47, 5.81, 0.84, 1.38, 0.18},
	{"SPECjbb2000", 200, 1.45, 1.16, 0.29, 0.19, 1.13, 0.04},
	{"SPECjbb2000", 1000, 2.80, 1.16, 1.64, 0.19, 1.14, 0.04},
	{"SPECweb99", 200, 1.73, 1.62, 0.11, 0.09, 1.25, 0.02},
	{"SPECweb99", 1000, 2.30, 1.62, 0.68, 0.09, 1.29, 0.00},
}

// PaperTable3MLPsim holds Table 3's MLPsim column: workload -> "32A"
// style key -> MLP.
var PaperTable3MLPsim = map[string]map[string]float64{
	"Database": {
		"32A": 1.21, "32B": 1.23, "32C": 1.27,
		"64A": 1.25, "64B": 1.28, "64C": 1.38,
		"128A": 1.28, "128B": 1.32, "128C": 1.47,
	},
	"SPECjbb2000": {
		"32A": 1.10, "32B": 1.10, "32C": 1.11,
		"64A": 1.10, "64B": 1.13, "64C": 1.13,
		"128A": 1.15, "128B": 1.19, "128C": 1.19,
	},
	"SPECweb99": {
		"32A": 1.20, "32B": 1.20, "32C": 1.22,
		"64A": 1.23, "64B": 1.24, "64C": 1.28,
		"128A": 1.25, "128B": 1.25, "128C": 1.31,
	},
}

// PaperTable5 holds the in-order MLPs (stall-on-miss, stall-on-use).
var PaperTable5 = map[string][2]float64{
	"Database":    {1.02, 1.06},
	"SPECjbb2000": {1.00, 1.01},
	"SPECweb99":   {1.10, 1.13},
}

// PaperTable6 holds the value-predictor fractions (correct, wrong,
// no-predict).
var PaperTable6 = map[string][3]float64{
	"Database":    {0.42, 0.07, 0.51},
	"SPECjbb2000": {0.20, 0.03, 0.77},
	"SPECweb99":   {0.25, 0.05, 0.70},
}

// PaperFigure8Gains holds runahead's MLP improvements over the 64-entry
// and 256-entry-ROB conventional configurations (§5.4.1).
var PaperFigure8Gains = map[string][2]float64{
	"Database":    {0.82, 0.56},
	"SPECjbb2000": {1.02, 0.81},
	"SPECweb99":   {0.49, 0.46},
}

// PaperFigure11RAEGain holds runahead's overall performance improvement
// over 64D at a 1000-cycle latency (§5.7), as fractions.
var PaperFigure11RAEGain = map[string]float64{
	"Database":    0.60,
	"SPECjbb2000": 0.44,
	"SPECweb99":   0.11,
}

// PaperFigure11LimitGain holds RAE.perfVP.perfBP's overall improvement.
var PaperFigure11LimitGain = map[string]float64{
	"Database":    1.74,
	"SPECjbb2000": 1.03,
	"SPECweb99":   0.21,
}

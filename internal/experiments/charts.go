package experiments

import (
	"fmt"
	"strings"

	"mlpsim/internal/plot"
)

// Chart renders the Figure 2 clustering curves as ASCII line charts (one
// per workload, observed vs uniform, log-spaced X).
func (f Figure2) Chart() string {
	var b strings.Builder
	for _, se := range f.Series {
		xs := make([]float64, len(se.Points))
		for i, p := range se.Points {
			xs[i] = float64(i) // log-spaced points rendered uniformly
			_ = p
		}
		b.WriteString(plot.Line(
			fmt.Sprintf("Figure 2 — %s: P(next miss within 2^x instructions)", se.Workload),
			xs,
			[]plot.Series{
				{Name: "observed", Y: se.Observed},
				{Name: "uniform", Y: se.Uniform},
			}, 60, 12))
		b.WriteString("\n")
	}
	return b.String()
}

// Chart renders the Figure 4 sweep as one line chart per workload: MLP vs
// window size, one line per issue configuration.
func (f Figure4) Chart() string {
	var b strings.Builder
	seen := map[string]bool{}
	var order []string
	for _, c := range f.Cells {
		if !seen[c.Workload] {
			seen[c.Workload] = true
			order = append(order, c.Workload)
		}
	}
	xs := make([]float64, len(Figure4Sizes))
	for i, s := range Figure4Sizes {
		xs[i] = float64(i) // log-spaced sizes rendered uniformly
		_ = s
	}
	for _, w := range order {
		var series []plot.Series
		for _, ic := range Figure4Configs {
			ys := make([]float64, len(Figure4Sizes))
			for i, size := range Figure4Sizes {
				if c := f.Lookup(w, size, ic); c != nil {
					ys[i] = c.MLP
				}
			}
			series = append(series, plot.Series{Name: "config " + ic.String(), Y: ys})
		}
		b.WriteString(plot.Line(
			fmt.Sprintf("Figure 4 — %s: MLP vs ROB/issue-window size (x: 16,32,64,128,256)", w),
			xs, series, 60, 12))
		b.WriteString("\n")
	}
	return b.String()
}

// Chart renders Figure 7 as one line per workload.
func (f Figure7) Chart() string {
	seen := map[string]bool{}
	var order []string
	for _, c := range f.Cells {
		if !seen[c.Workload] {
			seen[c.Workload] = true
			order = append(order, c.Workload)
		}
	}
	xs := make([]float64, len(Figure7L2Sizes))
	for i := range Figure7L2Sizes {
		xs[i] = float64(i)
	}
	var series []plot.Series
	for _, w := range order {
		var ys []float64
		for _, l2 := range Figure7L2Sizes {
			for _, c := range f.Cells {
				if c.Workload == w && c.L2Bytes == l2 {
					ys = append(ys, c.MLP)
				}
			}
		}
		series = append(series, plot.Series{Name: w, Y: ys})
	}
	return plot.Line("Figure 7 — MLP vs L2 size (x: 1MB, 2MB, 4MB, 8MB)", xs, series, 60, 12)
}

// Chart renders Figure 8 as grouped bars.
func (f Figure8) Chart() string {
	var labels []string
	var values []float64
	for _, r := range f.Rows {
		labels = append(labels, r.Workload+" 64D/64", r.Workload+" 64D/256", r.Workload+" RAE")
		values = append(values, r.Conv64, r.Conv256, r.RAE)
	}
	return plot.Bar("Figure 8 — MLP with runahead execution", labels, values, 44)
}

// Chart renders Figure 10 as bars per workload/baseline.
func (f Figure10) Chart() string {
	var b strings.Builder
	for _, r := range f.Rows {
		b.WriteString(plot.Bar(
			fmt.Sprintf("Figure 10 — %s (%s baseline)", r.Workload, r.Baseline),
			[]string{"base", ".perfI", ".perfVP", ".perfBP", ".perfVP.perfBP"},
			[]float64{r.Base, r.PerfI, r.PerfVP, r.PerfBP, r.PerfVPBP}, 44))
		b.WriteString("\n")
	}
	return b.String()
}

// Chart renders Figure 11 as bars of % improvement per workload.
func (f Figure11) Chart() string {
	var b strings.Builder
	seen := map[string]bool{}
	var order []string
	for _, r := range f.Rows {
		if !seen[r.Workload] {
			seen[r.Workload] = true
			order = append(order, r.Workload)
		}
	}
	for _, w := range order {
		var labels []string
		var values []float64
		for _, r := range f.Rows {
			if r.Workload != w || r.Config == "64D" {
				continue
			}
			labels = append(labels, r.Config)
			// Bars cannot show negatives; clamp at zero like the paper's
			// baseline-relative chart.
			v := r.GainPct
			if v < 0 {
				v = 0
			}
			values = append(values, v)
		}
		b.WriteString(plot.Bar(
			fmt.Sprintf("Figure 11 — %s: %% performance improvement over 64D", w),
			labels, values, 44))
		b.WriteString("\n")
	}
	return b.String()
}

package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/cpi"
	"mlpsim/internal/cyclesim"
	"mlpsim/internal/workload"
)

// Table4Row validates the CPI equation for one (workload, issue config):
// the CPI estimated from MLPsim's MLP and miss rate — using CPI_perf and
// Overlap_CM measured by the cycle simulator under each of the three
// configurations — against the cycle simulator's measured CPI.
type Table4Row struct {
	Workload string
	Issue    core.IssueConfig
	// EstimatedUsing[i] is the estimate using configuration A+i's
	// characterization (the diagonal uses the row's own configuration).
	EstimatedUsing [3]float64
	Measured       float64
}

// Table4 reproduces Table 4 (window 64, 1000-cycle penalty).
type Table4 struct {
	Rows []Table4Row
}

// Table4Penalty is the off-chip latency used by the experiment.
const Table4Penalty = 1000

// RunTable4 executes the experiment.
func RunTable4(s Setup) Table4 {
	configs := []core.IssueConfig{core.ConfigA, core.ConfigB, core.ConfigC}

	type char struct {
		params   [3]Characterization
		measured [3]float64
	}
	chars := make([]char, len(s.Workloads))
	type job struct{ wi, ci int }
	var jobs []job
	for wi := range s.Workloads {
		for ci := range configs {
			jobs = append(jobs, job{wi, ci})
		}
	}
	s.forEach(len(jobs), func(i int) {
		j := jobs[i]
		chars[j.wi].params[j.ci] = s.characterizeConfig(s.Workloads[j.wi], configs[j.ci])
		chars[j.wi].measured[j.ci] = chars[j.wi].params[j.ci].CPI
	})

	mlps := make([][3]core.Result, len(s.Workloads))
	s.forEach(len(jobs), func(i int) {
		j := jobs[i]
		mlps[j.wi][j.ci] = s.RunMLPsim(s.Workloads[j.wi],
			core.Default().WithIssue(configs[j.ci]), annotate.Config{})
	})

	var rows []Table4Row
	for wi, w := range s.Workloads {
		for ci, ic := range configs {
			row := Table4Row{Workload: w.Name, Issue: ic, Measured: chars[wi].measured[ci]}
			m := &mlps[wi][ci]
			for pi := range configs {
				p := chars[wi].params[pi].Params()
				p.MissRatePer100 = m.MissRatePer100()
				row.EstimatedUsing[pi] = p.Estimate(m.MLP())
			}
			rows = append(rows, row)
		}
	}
	return Table4{Rows: rows}
}

// characterizeConfig is Characterize with a non-default issue
// configuration at the Table 4 penalty.
func (s Setup) characterizeConfig(w workload.Config, ic core.IssueConfig) Characterization {
	var meas, perf cyclesim.Result
	s.forEach(2, func(i int) {
		cfg := cyclesim.Default(Table4Penalty)
		cfg.Issue = ic
		cfg.PerfectL2 = i == 1
		r := s.RunCycleSim(w, cfg, annotate.Config{})
		if i == 1 {
			perf = r
		} else {
			meas = r
		}
	})
	c := Characterization{
		Workload:       w.Name,
		Penalty:        Table4Penalty,
		CPI:            meas.CPI(),
		CPIPerf:        perf.CPI(),
		MissRatePer100: meas.MissRatePer100(),
		MLP:            meas.MLP,
	}
	c.OverlapCM = cpi.DeriveOverlap(c.CPI, c.CPIPerf, c.MissRatePer100, Table4Penalty, c.MLP)
	return c
}

// String renders the comparison.
func (t Table4) String() string {
	tb := newTable("Table 4: Estimated (MLPsim + CPI model) vs Measured CPI (ROB/IW=64, penalty=1000)")
	tb.row("Workload", "Config", "Est. using A", "Est. using B", "Est. using C", "Measured")
	for _, r := range t.Rows {
		tb.rowf("%s\t%s\t%s\t%s\t%s\t%s",
			r.Workload, r.Issue, f2(r.EstimatedUsing[0]), f2(r.EstimatedUsing[1]),
			f2(r.EstimatedUsing[2]), f2(r.Measured))
	}
	return tb.String()
}

// MaxRelError returns the largest |estimate − measured| / measured over
// all rows and characterization sources (the paper reports < 2%).
func (t Table4) MaxRelError() float64 {
	max := 0.0
	for _, r := range t.Rows {
		for _, e := range r.EstimatedUsing {
			rel := (e - r.Measured) / r.Measured
			if rel < 0 {
				rel = -rel
			}
			if rel > max {
				max = rel
			}
		}
	}
	return max
}

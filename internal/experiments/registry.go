package experiments

import "fmt"

// Runner describes one reproducible exhibit.
type Runner struct {
	// ID is the paper label, e.g. "table3" or "figure8".
	ID string
	// Title is the exhibit caption.
	Title string
	// Run executes the experiment and returns its printable result.
	Run func(Setup) fmt.Stringer
}

// All returns every exhibit runner in paper order.
func All() []Runner {
	return []Runner{
		{"table1", "Measurements of on-chip and off-chip components of CPI",
			func(s Setup) fmt.Stringer { return RunTable1(s) }},
		{"figure2", "Clustering of misses",
			func(s Setup) fmt.Stringer { return RunFigure2(s) }},
		{"table3", "MLPsim vs cycle-accurate simulator",
			func(s Setup) fmt.Stringer { return RunTable3(s) }},
		{"table4", "Estimated vs measured CPI",
			func(s Setup) fmt.Stringer { return RunTable4(s) }},
		{"table5", "MLP of in-order issue",
			func(s Setup) fmt.Stringer { return RunTable5(s) }},
		{"figure4", "Impact of ROB size and issuing constraints",
			func(s Setup) fmt.Stringer { return RunFigure4(s) }},
		{"figure5", "Factors inhibiting further MLP",
			func(s Setup) fmt.Stringer { return RunFigure5(s) }},
		{"figure6", "Impact of decoupling issue window and ROB sizes",
			func(s Setup) fmt.Stringer { return RunFigure6(s) }},
		{"figure7", "Impact of L2 cache size",
			func(s Setup) fmt.Stringer { return RunFigure7(s) }},
		{"figure8", "Impact of runahead execution",
			func(s Setup) fmt.Stringer { return RunFigure8(s) }},
		{"table6", "Value predictor statistics",
			func(s Setup) fmt.Stringer { return RunTable6(s) }},
		{"figure9", "Impact of value prediction",
			func(s Setup) fmt.Stringer { return RunFigure9(s) }},
		{"figure10", "Limit study",
			func(s Setup) fmt.Stringer { return RunFigure10(s) }},
		{"figure11", "Overall performance improvement",
			func(s Setup) fmt.Stringer { return RunFigure11(s) }},
		{"ext-mshr", "Extension: MLP vs MSHR count",
			func(s Setup) fmt.Stringer { return RunExtMSHR(s) }},
		{"ext-prefetch", "Extension: hardware prefetching (§5.6 direction)",
			func(s Setup) fmt.Stringer { return RunExtPrefetch(s) }},
		{"ext-storemlp", "Extension: store MLP / finite store buffers (§7)",
			func(s Setup) fmt.Stringer { return RunExtStoreMLP(s) }},
		{"ext-storesets", "Extension: store-set memory dependence speculation (Chrysos-Emer)",
			func(s Setup) fmt.Stringer { return RunExtStoreSets(s) }},
		{"ext-smt", "Extension: multithreaded MLP (§7)",
			func(s Setup) fmt.Stringer { return RunExtSMT(s) }},
		{"ext-smtsched", "Extension: MLP-aware SMT fetch scheduling (policies inside the bounds)",
			func(s Setup) fmt.Stringer { return RunExtSMTSched(s) }},
		{"ext-bandwidth", "Extension: finite memory bandwidth (queueing model, §4.1)",
			func(s Setup) fmt.Stringer { return RunExtBandwidth(s) }},
		{"stability", "Multi-seed stability (error bars for every exhibit)",
			func(s Setup) fmt.Stringer { return RunStability(s) }},
		{"compare", "Paper vs measured: headline numbers side by side",
			func(s Setup) fmt.Stringer { return RunCompare(s) }},
	}
}

// Find returns the runner with the given ID, or nil.
func Find(id string) *Runner {
	all := All()
	for i := range all {
		if all[i].ID == id {
			return &all[i]
		}
	}
	return nil
}

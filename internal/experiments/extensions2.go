package experiments

import (
	"fmt"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/queueing"
	"mlpsim/internal/smt"
	"mlpsim/internal/workload"
)

// --- multithreaded MLP (§7 future work) -------------------------------------

// ExtSMTRow summarizes one thread-count point.
type ExtSMTRow struct {
	Threads        int
	PerThreadMLP   []float64
	CombinedLower  float64
	CombinedUpper  float64
	MissRateDeltas []float64 // shared minus solo, per thread
}

// ExtSMT sweeps hardware thread counts running database workload copies:
// per-thread MLP barely moves (and cache contention pushes miss rates
// up), but the machine-level MLP bound scales with thread count — the
// multithreading headroom §7 points at.
type ExtSMT struct {
	Rows []ExtSMTRow
}

// RunExtSMT executes the sweep.
func RunExtSMT(s Setup) ExtSMT {
	base := workload.Database(s.Seed)
	if len(s.Workloads) > 0 {
		base = s.Workloads[0]
	}
	counts := []int{1, 2, 4}
	rows := make([]ExtSMTRow, len(counts))
	s.forEach(len(counts), func(i int) {
		k := counts[i]
		threads := make([]workload.Config, k)
		for t := range threads {
			threads[t] = base.WithSeed(s.Seed + int64(t)*101)
		}
		// Split the instruction budget across threads, but never let the
		// per-thread share round to zero while a budget exists: a K larger
		// than the budget used to panic smt.Run's validation.
		per := s.Measure / int64(k)
		if per == 0 && s.Measure > 0 {
			per = 1
		}
		res := smt.Run(smt.Config{
			Threads:   threads,
			Processor: core.Default(),
			Warmup:    s.Warmup / int64(k),
			Measure:   per,
		})
		row := ExtSMTRow{
			Threads:       k,
			CombinedLower: res.CombinedLower,
			CombinedUpper: res.CombinedUpper,
		}
		for t := 0; t < k; t++ {
			row.PerThreadMLP = append(row.PerThreadMLP, res.PerThread[t].MLP())
			row.MissRateDeltas = append(row.MissRateDeltas, res.SharedMissRate[t]-res.SoloMissRate[t])
		}
		rows[i] = row
	})
	return ExtSMT{Rows: rows}
}

// String renders the sweep.
func (e ExtSMT) String() string {
	tb := newTable("Extension: Multithreaded MLP (§7 future work; database workload copies)")
	tb.row("Threads", "Per-thread MLP", "Combined (no overlap)", "Combined (full overlap)", "Miss-rate delta")
	for _, r := range e.Rows {
		per, deltas := "", ""
		for i := range r.PerThreadMLP {
			if i > 0 {
				per += " "
				deltas += " "
			}
			per += f2(r.PerThreadMLP[i])
			deltas += fmt.Sprintf("%+.2f", r.MissRateDeltas[i])
		}
		tb.rowf("%d\t%s\t%s\t%s\t%s", r.Threads, per, f2(r.CombinedLower), f2(r.CombinedUpper), deltas)
	}
	return tb.String()
}

// --- finite memory bandwidth (§4.1 queueing-model use case) -----------------

// ExtBandwidthRow is one (workload, channels) point.
type ExtBandwidthRow struct {
	Workload string
	Channels int
	// OffChipCPI is the off-chip CPI component under the C-channel
	// memory model; Inflation is the mean epoch memory time relative to
	// unlimited bandwidth.
	OffChipCPI float64
	Inflation  float64
}

// ExtBandwidth feeds each workload's epoch burst-size distribution (from
// a runahead run, which has the largest bursts) into the queueing model:
// high MLP is only as good as the bandwidth behind it.
type ExtBandwidth struct {
	Rows []ExtBandwidthRow
}

// ExtBandwidthChannels is the swept axis.
var ExtBandwidthChannels = []int{1, 2, 4, 8}

// RunExtBandwidth executes the experiment.
func RunExtBandwidth(s Setup) ExtBandwidth {
	type result struct {
		collector *queueing.Collector
		insts     int64
	}
	per := make([]result, len(s.Workloads))
	s.forEach(len(s.Workloads), func(wi int) {
		c := queueing.NewCollector(64)
		cfg := core.Default().WithIssue(core.ConfigD).WithRunahead()
		cfg.OnEpoch = c.OnEpoch
		res := s.RunMLPsim(s.Workloads[wi], cfg, annotate.Config{})
		per[wi] = result{collector: c, insts: res.Instructions}
	})
	var rows []ExtBandwidthRow
	for wi, w := range s.Workloads {
		for _, ch := range ExtBandwidthChannels {
			m := queueing.Model{Channels: ch, ServiceCycles: 120, LeadCycles: 880}
			rows = append(rows, ExtBandwidthRow{
				Workload:   w.Name,
				Channels:   ch,
				OffChipCPI: per[wi].collector.OffChipCPI(m, per[wi].insts),
				Inflation:  per[wi].collector.EffectivePenaltyInflation(m),
			})
		}
	}
	return ExtBandwidth{Rows: rows}
}

// String renders the experiment.
func (e ExtBandwidth) String() string {
	tb := newTable("Extension: Finite Memory Bandwidth under Runahead (queueing model, 880+120-cycle lines)")
	tb.row("Workload", "Channels", "Off-chip CPI", "Epoch-time inflation")
	for _, r := range e.Rows {
		tb.rowf("%s\t%d\t%s\t%sx", r.Workload, r.Channels, f2(r.OffChipCPI), f2(r.Inflation))
	}
	return tb.String()
}

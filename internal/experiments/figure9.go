package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/vpred"
)

// Figure9Row shows, for one workload and one base configuration, the MLP
// and modelled performance effect of adding missing-load value prediction
// (§5.5).
type Figure9Row struct {
	Workload string
	Base     string // "64D/64", "64D/256", "RAE"
	MLPBase  float64
	MLPVP    float64
	// PerfGainPct is the modelled overall performance improvement from
	// adding value prediction (CPI model at 1000 cycles).
	PerfGainPct float64
}

// Figure9 reproduces Figure 9: impact of value prediction.
type Figure9 struct {
	Rows []Figure9Row
}

// figure9Bases returns the three base configurations of Figures 8 and 9.
func figure9Bases() []struct {
	name string
	cfg  core.Config
} {
	return []struct {
		name string
		cfg  core.Config
	}{
		{"64D/64", core.Default().WithIssue(core.ConfigD)},
		{"64D/256", core.Default().WithIssue(core.ConfigD).WithROB(256)},
		{"RAE", core.Default().WithIssue(core.ConfigD).WithRunahead()},
	}
}

// RunFigure9 executes the experiment.
func RunFigure9(s Setup) Figure9 {
	bases := figure9Bases()
	chars := make([]Characterization, len(s.Workloads))
	s.forEach(len(s.Workloads), func(wi int) {
		chars[wi] = s.Characterize(s.Workloads[wi], 1000)
	})

	type job struct{ wi, bi, vp int }
	var jobs []job
	for wi := range s.Workloads {
		for bi := range bases {
			for vp := 0; vp < 2; vp++ {
				jobs = append(jobs, job{wi, bi, vp})
			}
		}
	}
	points := make([]MLPPoint, len(jobs))
	for i, j := range jobs {
		cfg := bases[j.bi].cfg
		acfg := annotate.Config{}
		if j.vp == 1 {
			cfg.ValuePredict = true
			acfg.Value = vpred.NewLastValue(vpred.DefaultEntries)
		}
		points[i] = MLPPoint{Workload: s.Workloads[j.wi], Config: cfg, Annot: acfg}
	}
	mlps := s.RunMLPsimBatch(points)

	var rows []Figure9Row
	for i := 0; i < len(jobs); i += 2 {
		j := jobs[i]
		base, withVP := mlps[i], mlps[i+1]
		p := chars[j.wi].Params()
		baseCPI := p.Estimate(base.MLP())
		vpCPI := p.Estimate(withVP.MLP())
		rows = append(rows, Figure9Row{
			Workload:    s.Workloads[j.wi].Name,
			Base:        bases[j.bi].name,
			MLPBase:     base.MLP(),
			MLPVP:       withVP.MLP(),
			PerfGainPct: 100 * (baseCPI/vpCPI - 1),
		})
	}
	return Figure9{Rows: rows}
}

// String renders the comparison.
func (f Figure9) String() string {
	tb := newTable("Figure 9: Impact of Value Prediction (last-value, missing loads only)")
	tb.row("Workload", "Base", "MLP", "MLP+VP", "Perf gain")
	for _, r := range f.Rows {
		tb.rowf("%s\t%s\t%s\t%s\t%.1f%%", r.Workload, r.Base, f2(r.MLPBase), f2(r.MLPVP), r.PerfGainPct)
	}
	return tb.String()
}

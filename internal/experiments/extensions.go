package experiments

// Extension experiments beyond the paper's published evaluation: the
// ablations DESIGN.md calls out and the future-work directions §7 names
// (finite MSHRs, hardware prefetching, store MLP). Each is registered in
// the exhibit registry with an "ext-" prefix.

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/mem"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/workload"
)

// --- finite MSHRs -----------------------------------------------------------

// ExtMSHRCell is the MLP of one workload/config at one MSHR count.
type ExtMSHRCell struct {
	Workload string
	Config   string
	MSHRs    int // 0 = unlimited
	MLP      float64
}

// ExtMSHR sweeps the miss-status-holding-register count: MLP is clamped
// at the MSHR count, so the sweep shows how much buffering each workload
// actually needs — and that runahead demands far more than a conventional
// window exploits.
type ExtMSHR struct {
	Cells []ExtMSHRCell
}

// ExtMSHRCounts is the swept axis (0 = unlimited).
var ExtMSHRCounts = []int{1, 2, 4, 8, 16, 0}

// RunExtMSHR executes the sweep.
func RunExtMSHR(s Setup) ExtMSHR {
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"64C", core.Default()},
		{"RAE", core.Default().WithIssue(core.ConfigD).WithRunahead()},
	}
	type job struct{ wi, ci, mi int }
	var jobs []job
	for wi := range s.Workloads {
		for ci := range configs {
			for mi := range ExtMSHRCounts {
				jobs = append(jobs, job{wi, ci, mi})
			}
		}
	}
	points := make([]MLPPoint, len(jobs))
	for i, j := range jobs {
		cfg := configs[j.ci].cfg
		cfg.MSHRs = ExtMSHRCounts[j.mi]
		points[i] = MLPPoint{Workload: s.Workloads[j.wi], Config: cfg, Annot: annotate.Config{}}
	}
	results := s.RunMLPsimBatch(points)
	cells := make([]ExtMSHRCell, len(jobs))
	for i, j := range jobs {
		cells[i] = ExtMSHRCell{
			Workload: s.Workloads[j.wi].Name,
			Config:   configs[j.ci].name,
			MSHRs:    ExtMSHRCounts[j.mi],
			MLP:      results[i].MLP(),
		}
	}
	return ExtMSHR{Cells: cells}
}

// String renders the sweep.
func (e ExtMSHR) String() string {
	tb := newTable("Extension: MLP vs MSHR count (miss buffering ablation)")
	header := []string{"Workload", "Config"}
	for _, m := range ExtMSHRCounts {
		if m == 0 {
			header = append(header, "inf")
		} else {
			header = append(header, itoa(m))
		}
	}
	tb.row(header...)
	for i := 0; i < len(e.Cells); i += len(ExtMSHRCounts) {
		c := e.Cells[i]
		cells := []string{c.Workload, c.Config}
		for k := 0; k < len(ExtMSHRCounts); k++ {
			cells = append(cells, f2(e.Cells[i+k].MLP))
		}
		tb.row(cells...)
	}
	return tb.String()
}

// --- hardware prefetching ---------------------------------------------------

// ExtPrefetchRow is one workload's MLP and miss profile under each
// hardware-prefetch configuration.
type ExtPrefetchRow struct {
	Workload  string
	Variant   string // "none", "I-seq", "D-stride", "both"
	MLP       float64
	MissRate  float64 // off-chip accesses per 100 instructions
	IAccesses uint64
	Accuracy  float64 // prefetcher accuracy where applicable
}

// ExtPrefetch evaluates the §5.6 direction: a sequential hardware
// instruction prefetcher recovers much of the perfect-I-prefetch
// headroom; a stride data prefetcher helps regular scans and does nothing
// for pointer-dependent misses.
type ExtPrefetch struct {
	Rows []ExtPrefetchRow
}

// RunExtPrefetch executes the experiment on the paper workloads plus the
// strided micro-workload.
func RunExtPrefetch(s Setup) ExtPrefetch {
	wls := append([]workload.Config{}, s.Workloads...)
	wls = append(wls, workload.Strided(s.Seed))
	variants := []string{"none", "I-seq", "D-stride", "both"}

	type job struct{ wi, vi int }
	var jobs []job
	for wi := range wls {
		for vi := range variants {
			jobs = append(jobs, job{wi, vi})
		}
	}
	rows := make([]ExtPrefetchRow, len(jobs))
	s.forEach(len(jobs), func(i int) {
		j := jobs[i]
		acfg := annotate.Config{}
		var ipf *prefetch.Sequential
		var dpf *prefetch.Stride
		if variants[j.vi] == "I-seq" || variants[j.vi] == "both" {
			ipf = prefetch.NewSequential(4, mem.IFetch)
			acfg.IPrefetch = ipf
		}
		if variants[j.vi] == "D-stride" || variants[j.vi] == "both" {
			dpf = prefetch.NewStride(1024, 4)
			acfg.DPrefetch = dpf
		}
		res := s.RunMLPsim(wls[j.wi], core.Default().WithIssue(core.ConfigD).WithRunahead(), acfg)
		row := ExtPrefetchRow{
			Workload:  wls[j.wi].Name,
			Variant:   variants[j.vi],
			MLP:       res.MLP(),
			MissRate:  res.MissRatePer100(),
			IAccesses: res.IAccesses,
		}
		if ipf != nil || dpf != nil {
			// Stats come from stream metadata on the cached path and from
			// the (then-trained) instances on the direct path.
			ist, dst := s.PrefetchStats(wls[j.wi], acfg)
			row.Accuracy = prefetch.Stats{
				Issued: ist.Issued + dst.Issued,
				Useful: ist.Useful + dst.Useful,
			}.Accuracy()
		}
		rows[i] = row
	})
	return ExtPrefetch{Rows: rows}
}

// String renders the experiment.
func (e ExtPrefetch) String() string {
	tb := newTable("Extension: Hardware Prefetching under Runahead (the §5.6 direction)")
	tb.row("Workload", "Prefetcher", "MLP", "Miss rate (/100)", "I-accesses", "Pf accuracy")
	for _, r := range e.Rows {
		tb.rowf("%s\t%s\t%s\t%s\t%d\t%s",
			r.Workload, r.Variant, f2(r.MLP), f2(r.MissRate), r.IAccesses, pct(r.Accuracy))
	}
	return tb.String()
}

// --- store MLP ---------------------------------------------------------------

// ExtStoreRow is one (workload, store-buffer size) measurement.
type ExtStoreRow struct {
	Workload string
	SB       int // 0 = infinite
	MLP      float64
	StoreMLP float64
	// SBLimitedFrac is the fraction of epochs terminated by a full store
	// buffer.
	SBLimitedFrac float64
}

// ExtStoreMLP explores the §7 store-MLP future work: with write-allocate
// caches a store-heavy workload generates off-chip store misses that an
// infinite store buffer hides completely but a finite one exposes as
// window terminations.
type ExtStoreMLP struct {
	Rows []ExtStoreRow
}

// ExtStoreSBs is the swept store-buffer axis (0 = infinite).
var ExtStoreSBs = []int{1, 2, 4, 8, 0}

// RunExtStoreMLP executes the sweep on the database workload and the
// store-heavy micro-workload.
func RunExtStoreMLP(s Setup) ExtStoreMLP {
	wls := []workload.Config{workload.StoreHeavy(s.Seed)}
	if len(s.Workloads) > 0 {
		wls = append(wls, s.Workloads[0])
	}
	type job struct{ wi, bi int }
	var jobs []job
	for wi := range wls {
		for bi := range ExtStoreSBs {
			jobs = append(jobs, job{wi, bi})
		}
	}
	points := make([]MLPPoint, len(jobs))
	for i, j := range jobs {
		cfg := core.Default()
		cfg.StoreBuffer = ExtStoreSBs[j.bi]
		points[i] = MLPPoint{Workload: wls[j.wi], Config: cfg, Annot: annotate.Config{}}
	}
	results := s.RunMLPsimBatch(points)
	rows := make([]ExtStoreRow, len(jobs))
	for i, j := range jobs {
		fr := results[i].LimiterFracs()
		rows[i] = ExtStoreRow{
			Workload:      wls[j.wi].Name,
			SB:            ExtStoreSBs[j.bi],
			MLP:           results[i].MLP(),
			StoreMLP:      results[i].StoreMLP(),
			SBLimitedFrac: fr[core.LimStoreBuf],
		}
	}
	return ExtStoreMLP{Rows: rows}
}

// String renders the sweep.
func (e ExtStoreMLP) String() string {
	tb := newTable("Extension: Store MLP and Finite Store Buffers (§7 future work)")
	tb.row("Workload", "Store buffer", "MLP", "Store MLP", "SB-limited epochs")
	for _, r := range e.Rows {
		sb := "inf"
		if r.SB > 0 {
			sb = itoa(r.SB)
		}
		tb.rowf("%s\t%s\t%s\t%s\t%s", r.Workload, sb, f2(r.MLP), f2(r.StoreMLP), pct(r.SBLimitedFrac))
	}
	return tb.String()
}

package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/mem"
)

// Figure7Cell is the MLP of one workload at one L2 capacity.
type Figure7Cell struct {
	Workload string
	L2Bytes  int
	MLP      float64
	MissRate float64 // off-chip accesses per 100 instructions
}

// Figure7 reproduces Figure 7: impact of L2 cache size on MLP.
type Figure7 struct {
	Cells []Figure7Cell
}

// Figure7L2Sizes is the swept capacity axis.
var Figure7L2Sizes = []int{1 << 20, 2 << 20, 4 << 20, 8 << 20}

// RunFigure7 executes the sweep with the default 64C processor.
func RunFigure7(s Setup) Figure7 {
	type job struct{ wi, li int }
	var jobs []job
	for wi := range s.Workloads {
		for li := range Figure7L2Sizes {
			jobs = append(jobs, job{wi, li})
		}
	}
	cells := make([]Figure7Cell, len(jobs))
	s.forEach(len(jobs), func(i int) {
		j := jobs[i]
		w := s.Workloads[j.wi]
		acfg := annotate.Config{Hierarchy: mem.DefaultHierarchy().WithL2Size(Figure7L2Sizes[j.li])}
		res := s.RunMLPsim(w, core.Default(), acfg)
		cells[i] = Figure7Cell{
			Workload: w.Name,
			L2Bytes:  Figure7L2Sizes[j.li],
			MLP:      res.MLP(),
			MissRate: res.MissRatePer100(),
		}
	})
	return Figure7{Cells: cells}
}

// String renders the sweep.
func (f Figure7) String() string {
	tb := newTable("Figure 7: Impact of L2 Cache Size (default 64C processor)")
	tb.row("Workload", "L2 size", "MLP", "Miss rate (/100)")
	for _, c := range f.Cells {
		tb.rowf("%s\t%dMB\t%s\t%s", c.Workload, c.L2Bytes>>20, f2(c.MLP), f2(c.MissRate))
	}
	return tb.String() + "\n" + f.Chart()
}

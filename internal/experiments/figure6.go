package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
)

// Figure6Cell is one bar segment: issue window IW, issue configuration,
// and a decoupled ROB size.
type Figure6Cell struct {
	Workload string
	IW       int
	Issue    core.IssueConfig
	ROB      int
	MLP      float64
}

// Figure6 reproduces Figure 6: decoupling the issue window and ROB.
type Figure6 struct {
	Cells []Figure6Cell
	// INF holds the infinite-window reference (IW = ROB = 2048, config E)
	// per workload.
	INF map[string]float64

	// idx maps a bar segment to a Cells position; built lazily on first
	// Lookup (Cells are write-once after RunFigure6).
	idx map[figure6Key]int
}

type figure6Key struct {
	workload string
	iw       int
	issue    core.IssueConfig
	rob      int
}

// Figure 6 sweep axes: the paper draws bars for issue windows 16-128 with
// ROB multiples 1X/2X/4X/8X plus a fixed 2048-entry ROB, and an "INF" bar.
var (
	Figure6IWs     = []int{16, 32, 64, 128}
	Figure6Mults   = []int{1, 2, 4, 8}
	Figure6Configs = []core.IssueConfig{core.ConfigC, core.ConfigD, core.ConfigE}
	figure6BigROB  = 2048
)

// RunFigure6 executes the sweep.
func RunFigure6(s Setup) Figure6 {
	type job struct {
		wi, iwi, ci int
		rob         int
	}
	var jobs []job
	for wi := range s.Workloads {
		for _, iw := range Figure6IWs {
			for ci := range Figure6Configs {
				for _, m := range Figure6Mults {
					jobs = append(jobs, job{wi, iw, ci, iw * m})
				}
				jobs = append(jobs, job{wi, iw, ci, figure6BigROB})
			}
		}
	}
	// One batch covers the bar segments and the per-workload INF
	// reference, so the whole exhibit shares each workload's stream.
	points := make([]MLPPoint, 0, len(jobs)+len(s.Workloads))
	for _, j := range jobs {
		cfg := core.Default().WithIssue(Figure6Configs[j.ci])
		cfg.IssueWindow = j.iwi
		cfg.ROB = j.rob
		points = append(points, MLPPoint{Workload: s.Workloads[j.wi], Config: cfg, Annot: annotate.Config{}})
	}
	for wi := range s.Workloads {
		points = append(points, MLPPoint{
			Workload: s.Workloads[wi],
			Config:   core.Default().WithWindow(figure6BigROB).WithIssue(core.ConfigE),
			Annot:    annotate.Config{},
		})
	}
	results := s.RunMLPsimBatch(points)

	cells := make([]Figure6Cell, len(jobs))
	for i, j := range jobs {
		cells[i] = Figure6Cell{
			Workload: s.Workloads[j.wi].Name, IW: j.iwi, Issue: Figure6Configs[j.ci], ROB: j.rob,
			MLP: results[i].MLP(),
		}
	}
	inf := make(map[string]float64, len(s.Workloads))
	for wi, w := range s.Workloads {
		inf[w.Name] = results[len(jobs)+wi].MLP()
	}
	return Figure6{Cells: cells, INF: inf}
}

// Lookup returns the MLP for a bar segment, or -1 when absent. The first
// call indexes Cells so rendering is linear rather than quadratic in the
// number of cells.
func (f *Figure6) Lookup(workload string, iw int, ic core.IssueConfig, rob int) float64 {
	if f.idx == nil {
		f.idx = make(map[figure6Key]int, len(f.Cells))
		for i := range f.Cells {
			c := &f.Cells[i]
			f.idx[figure6Key{c.Workload, c.IW, c.Issue, c.ROB}] = i
		}
	}
	if i, ok := f.idx[figure6Key{workload, iw, ic, rob}]; ok {
		return f.Cells[i].MLP
	}
	return -1
}

// String renders the bars.
func (f Figure6) String() string {
	tb := newTable("Figure 6: Impact of Decoupling Issue Window and ROB Sizes (MLP)")
	tb.row("Workload", "IW+Config", "ROB=1X", "2X", "4X", "8X", "ROB=2048")
	seen := map[string]bool{}
	var order []string
	for _, c := range f.Cells {
		if !seen[c.Workload] {
			seen[c.Workload] = true
			order = append(order, c.Workload)
		}
	}
	for _, wname := range order {
		for _, iw := range Figure6IWs {
			for _, ic := range Figure6Configs {
				cells := []string{wname, itoa(iw) + ic.String()}
				for _, m := range Figure6Mults {
					cells = append(cells, f2(f.Lookup(wname, iw, ic, iw*m)))
				}
				cells = append(cells, f2(f.Lookup(wname, iw, ic, figure6BigROB)))
				tb.row(cells...)
			}
		}
		tb.rowf("%s\tINF (2048E)\t%s", wname, f2(f.INF[wname]))
	}
	return tb.String()
}

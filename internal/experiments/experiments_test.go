package experiments

import (
	"strings"
	"testing"

	"mlpsim/internal/core"
	"mlpsim/internal/workload"
)

// tiny returns a reduced setup (single workload, short runs) for the
// heavyweight sweeps.
func tiny(seed int64, ws ...workload.Config) Setup {
	s := Quick(seed)
	s.Warmup = 250_000
	s.Measure = 600_000
	if len(ws) > 0 {
		s.Workloads = ws
	}
	return s
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-simulator runs")
	}
	res := RunTable1(tiny(1, workload.Database(1)))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var r200, r1000 Characterization
	for _, r := range res.Rows {
		if r.Penalty == 200 {
			r200 = r
		} else {
			r1000 = r
		}
	}
	if r1000.CPI <= r200.CPI {
		t.Fatalf("CPI at 1000 (%.2f) not above CPI at 200 (%.2f)", r1000.CPI, r200.CPI)
	}
	// At 1000 cycles the database workload is dominated by off-chip CPI
	// (paper: CPI_off-chip > 3x CPI_on-chip).
	if r1000.CPIOffChip <= r1000.CPIOnChip {
		t.Fatalf("off-chip CPI %.2f not dominant over on-chip %.2f at 1000 cycles",
			r1000.CPIOffChip, r1000.CPIOnChip)
	}
	if r1000.MLP < 1 || r1000.MLP > 4 {
		t.Fatalf("MLP = %.2f out of plausible range", r1000.MLP)
	}
	if r1000.OverlapCM < 0 || r1000.OverlapCM > 0.6 {
		t.Fatalf("Overlap_CM = %.2f implausible (paper: ~0.2)", r1000.OverlapCM)
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Fatal("rendering broken")
	}
}

func TestFigure2Clustered(t *testing.T) {
	res := RunFigure2(tiny(2, workload.Database(2), workload.Web(2)))
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, se := range res.Series {
		if se.MeanDistance <= 0 {
			t.Fatalf("%s: no misses observed", se.Workload)
		}
		// Find the index of point 32 and compare observed vs uniform.
		for i, p := range se.Points {
			if p == 32 {
				if se.Observed[i] < 1.5*se.Uniform[i] {
					t.Errorf("%s: CDF@32 observed %.3f vs uniform %.3f — not clustered",
						se.Workload, se.Observed[i], se.Uniform[i])
				}
			}
		}
		// CDFs are monotone.
		for i := 1; i < len(se.Observed); i++ {
			if se.Observed[i] < se.Observed[i-1] {
				t.Fatalf("%s: observed CDF not monotone", se.Workload)
			}
		}
	}
	if !strings.Contains(res.String(), "Figure 2") {
		t.Fatal("rendering broken")
	}
}

func TestTable3Validation(t *testing.T) {
	if testing.Short() {
		t.Skip("36 simulator runs")
	}
	res := RunTable3(tiny(3, workload.Database(3)))
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's claim: MLPsim matches the cycle simulator, essentially
	// exactly at 1000 cycles. Allow modest tolerance on short runs.
	if e := res.MaxRelError(1000); e > 0.08 {
		t.Fatalf("max relative error at 1000 cycles = %.3f, want < 0.08\n%s", e, res)
	}
	// Agreement improves (or at least does not degrade much) as latency
	// grows from 200 to 1000.
	if e200, e1000 := res.MaxRelError(200), res.MaxRelError(1000); e1000 > e200+0.03 {
		t.Fatalf("error at 1000 (%.3f) much worse than at 200 (%.3f)", e1000, e200)
	}
	// MLP grows with window size for a fixed config.
	for _, ic := range []core.IssueConfig{core.ConfigA, core.ConfigC} {
		var prev float64
		for _, win := range []int{32, 64, 128} {
			for _, r := range res.Rows {
				if r.Window == win && r.Issue == ic {
					if r.MLPsim+0.03 < prev {
						t.Fatalf("MLPsim not monotone in window for %v", ic)
					}
					prev = r.MLPsim
				}
			}
		}
	}
}

func TestTable4EstimateAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("27 simulator runs")
	}
	res := RunTable4(tiny(4, workload.Database(4)))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper: within 2%; allow 6% on short runs.
	if e := res.MaxRelError(); e > 0.06 {
		t.Fatalf("max relative CPI estimation error = %.3f, want < 0.06\n%s", e, res)
	}
}

func TestTable5InOrder(t *testing.T) {
	res := RunTable5(tiny(5))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.StallOnMiss < 1 || r.StallOnUse+0.02 < r.StallOnMiss {
			t.Fatalf("%s: SOM %.3f / SOU %.3f violate ordering", r.Workload, r.StallOnMiss, r.StallOnUse)
		}
	}
	// SPECweb99's software prefetches give it the highest in-order MLP
	// (paper Table 5).
	var web, db Table5Row
	for _, r := range res.Rows {
		switch r.Workload {
		case "SPECweb99":
			web = r
		case "Database":
			db = r
		}
	}
	if web.StallOnMiss <= db.StallOnMiss {
		t.Fatalf("web in-order MLP %.3f not above database %.3f (prefetches!)",
			web.StallOnMiss, db.StallOnMiss)
	}
}

func TestFigure4Trends(t *testing.T) {
	if testing.Short() {
		t.Skip("25 simulator runs")
	}
	res := RunFigure4(tiny(6, workload.JBB(6)))
	// Monotone in window size at fixed config, and A <= E at fixed size.
	for _, ic := range Figure4Configs {
		prev := 0.0
		for _, size := range Figure4Sizes {
			c := res.Lookup("SPECjbb2000", size, ic)
			if c == nil {
				t.Fatalf("missing cell %d%v", size, ic)
			}
			if c.MLP+0.03 < prev {
				t.Fatalf("MLP decreasing in window for %v", ic)
			}
			prev = c.MLP
		}
	}
	for _, size := range Figure4Sizes {
		a := res.Lookup("SPECjbb2000", size, core.ConfigA).MLP
		e := res.Lookup("SPECjbb2000", size, core.ConfigE).MLP
		if e+0.03 < a {
			t.Fatalf("config E (%.3f) below config A (%.3f) at %d", e, a, size)
		}
	}
	// SPECjbb2000's serialization: at 256 entries config E clearly beats
	// config D (§5.3.1).
	d := res.Lookup("SPECjbb2000", 256, core.ConfigD).MLP
	e := res.Lookup("SPECjbb2000", 256, core.ConfigE).MLP
	if e < d*1.1 {
		t.Fatalf("jbb 256E (%.3f) not >10%% above 256D (%.3f)", e, d)
	}
}

func TestFigure5LimiterShares(t *testing.T) {
	if testing.Short() {
		t.Skip("25 simulator runs")
	}
	res := RunFigure5(tiny(7, workload.JBB(7)))
	for _, c := range res.Cells {
		fr := c.Result.LimiterFracs()
		sum := 0.0
		for _, x := range fr {
			sum += x
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%d%v: limiter fractions sum to %.3f", c.Window, c.Issue, sum)
		}
	}
	// At large windows under config D, serialization dominates for jbb.
	for _, c := range res.Cells {
		if c.Window == 256 && c.Issue == core.ConfigD {
			fr := c.Result.LimiterFracs()
			if fr[core.LimSerialize] < 0.3 {
				t.Fatalf("jbb 256D serialize share = %.3f, want > 0.3", fr[core.LimSerialize])
			}
		}
	}
	if !strings.Contains(res.String(), "Figure 5") {
		t.Fatal("rendering broken")
	}
}

func TestFigure6Decoupling(t *testing.T) {
	if testing.Short() {
		t.Skip("64 simulator runs")
	}
	res := RunFigure6(tiny(8, workload.Database(8)))
	// MLP non-decreasing in ROB at fixed IW/config.
	for _, iw := range Figure6IWs {
		for _, ic := range Figure6Configs {
			prev := 0.0
			for _, m := range Figure6Mults {
				mlp := res.Lookup("Database", iw, ic, iw*m)
				if mlp < 0 {
					t.Fatalf("missing cell %d%v ROB=%d", iw, ic, iw*m)
				}
				if mlp+0.03 < prev {
					t.Fatalf("MLP decreasing in ROB for %d%v", iw, ic)
				}
				prev = mlp
			}
		}
	}
	// Enlarging the ROB beats not enlarging it for config E at IW 64
	// (§5.3.2's headline), and INF tops everything.
	base := res.Lookup("Database", 64, core.ConfigE, 64)
	big := res.Lookup("Database", 64, core.ConfigE, 512)
	if big <= base {
		t.Fatalf("64E ROB 512 (%.3f) not above ROB 64 (%.3f)", big, base)
	}
	inf := res.INF["Database"]
	for _, c := range res.Cells {
		if c.MLP > inf*1.03 {
			t.Fatalf("cell %d%v/%d MLP %.3f exceeds INF %.3f", c.IW, c.Issue, c.ROB, c.MLP, inf)
		}
	}
}

func TestFigure7CacheSize(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulator runs (capacity effects need multi-million-instruction reuse distances)")
	}
	// The warm-region replay distances are several million instructions,
	// so this sweep needs longer runs than the other experiments.
	s := tiny(9, workload.Database(9), workload.JBB(9))
	s.Warmup = 1_500_000
	s.Measure = 6_000_000
	res := RunFigure7(s)
	// Larger L2 → lower miss rate for both, and (paper §5.3.3) lower MLP:
	// the eliminated misses come from high-MLP clusters. We compare the
	// default 2MB configuration against 8MB.
	for _, wname := range []string{"Database", "SPECjbb2000"} {
		var mid, last Figure7Cell
		for _, c := range res.Cells {
			if c.Workload != wname {
				continue
			}
			if c.L2Bytes == 2<<20 {
				mid = c
			}
			if c.L2Bytes == 8<<20 {
				last = c
			}
		}
		if last.MissRate >= mid.MissRate {
			t.Fatalf("%s: miss rate did not fall with L2 size (%.3f -> %.3f)",
				wname, mid.MissRate, last.MissRate)
		}
		if last.MLP >= mid.MLP {
			t.Fatalf("%s: MLP did not fall with L2 size (%.3f -> %.3f)", wname, mid.MLP, last.MLP)
		}
	}
}

func TestFigure8Runahead(t *testing.T) {
	if testing.Short() {
		t.Skip("9 simulator runs")
	}
	res := RunFigure8(tiny(10))
	for _, r := range res.Rows {
		if !(r.RAE > r.Conv256 && r.Conv256 >= r.Conv64-0.02) {
			t.Fatalf("%s: ordering broken: 64D=%.3f 64D/256=%.3f RAE=%.3f",
				r.Workload, r.Conv64, r.Conv256, r.RAE)
		}
		gain := r.RAE/r.Conv64 - 1
		if gain < 0.10 || gain > 2.0 {
			t.Fatalf("%s: RAE gain %.0f%% outside the paper's 49-102%% ballpark",
				r.Workload, 100*gain)
		}
	}
}

func TestTable6ValuePredictor(t *testing.T) {
	res := RunTable6(tiny(11))
	for _, r := range res.Rows {
		sum := r.Correct + r.Wrong + r.NoPredict
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: fractions sum to %.3f", r.Workload, sum)
		}
		if r.Wrong > 0.2 {
			t.Fatalf("%s: wrong fraction %.3f too high (confidence should silence)", r.Workload, r.Wrong)
		}
	}
}

func TestFigure9ValuePrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulator runs")
	}
	res := RunFigure9(tiny(12, workload.Database(12)))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var rae Figure9Row
	for _, r := range res.Rows {
		if r.Base == "RAE" {
			rae = r
		}
	}
	// §5.5: the RAE configuration shows the most gain for the database
	// workload, and it must be positive.
	if rae.MLPVP <= rae.MLPBase {
		t.Fatalf("VP did not improve RAE MLP (%.3f -> %.3f)", rae.MLPBase, rae.MLPVP)
	}
	for _, r := range res.Rows {
		if r.Base != "RAE" && r.PerfGainPct > rae.PerfGainPct+1 {
			t.Fatalf("conventional VP gain %.1f%% above RAE's %.1f%%", r.PerfGainPct, rae.PerfGainPct)
		}
	}
}

func TestFigure10LimitStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulator runs")
	}
	res := RunFigure10(tiny(13, workload.Database(13)))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.PerfVP+0.03 < r.Base || r.PerfBP+0.03 < r.Base {
			t.Fatalf("%s/%s: perfect VP/BP lowered MLP: %+v", r.Workload, r.Baseline, r)
		}
		if r.PerfVPBP+0.03 < r.PerfVP || r.PerfVPBP+0.03 < r.PerfBP {
			t.Fatalf("%s/%s: combined perfect VP+BP below individual: %+v", r.Workload, r.Baseline, r)
		}
	}
	// RAE baseline dominates the conventional baseline cell by cell.
	var rae, conv Figure10Row
	for _, r := range res.Rows {
		if r.Baseline == "RAE" {
			rae = r
		} else {
			conv = r
		}
	}
	if rae.Base <= conv.Base || rae.PerfVPBP <= conv.PerfVPBP {
		t.Fatalf("RAE baseline not dominant: %+v vs %+v", rae, conv)
	}
}

func TestFigure11Performance(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulator runs")
	}
	res := RunFigure11(tiny(14, workload.Database(14)))
	gains := map[string]float64{}
	for _, r := range res.Rows {
		gains[r.Config] = r.GainPct
	}
	if gains["64D"] != 0 {
		t.Fatalf("baseline gain = %.1f%%, want 0", gains["64D"])
	}
	if gains["RAE"] <= 5 {
		t.Fatalf("RAE gain = %.1f%%, want clearly positive (paper: 60%%)", gains["RAE"])
	}
	if gains["RAE.perfVP.perfBP"] < gains["RAE"] {
		t.Fatalf("limit gain %.1f%% below RAE %.1f%%", gains["RAE.perfVP.perfBP"], gains["RAE"])
	}
	if gains["64D/256"] < -1 {
		t.Fatalf("bigger ROB hurt performance: %.1f%%", gains["64D/256"])
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("registry has %d exhibits, want 23 (14 paper + 9 extensions)", len(all))
	}
	want := []string{"table1", "figure2", "table3", "table4", "table5", "figure4",
		"figure5", "figure6", "figure7", "figure8", "table6", "figure9", "figure10", "figure11"}
	for _, id := range want {
		if Find(id) == nil {
			t.Fatalf("missing exhibit %q", id)
		}
	}
	if Find("nope") != nil {
		t.Fatal("bogus exhibit found")
	}
}

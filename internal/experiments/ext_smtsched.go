package experiments

// Scheduled SMT fetch policies (§7 direction, Durbhakula): where ext-smt
// reports the timing-free no-overlap/full-overlap bracket, this exhibit
// actually arbitrates the shared fetch unit under three policies
// (round-robin, ICOUNT-like, MLP-aware) and reports where each lands
// inside the bracket, plus per-thread fairness. The per-thread epoch
// traces are schedule-independent, so each sweep point runs its K
// expensive interleaved annotation passes once and replays them under
// every policy.

import (
	"mlpsim/internal/core"
	"mlpsim/internal/smt"
	"mlpsim/internal/workload"
)

// ExtSMTSchedRow is one (mix, thread count, policy) point.
type ExtSMTSchedRow struct {
	Mix           string
	Threads       int
	Policy        string
	AggMLP        float64
	CombinedLower float64
	CombinedUpper float64
	MinShare      float64
	MaxShare      float64
	Switches      uint64
	Bursts        uint64
	Overlapped    uint64
	FloorPicks    uint64
}

// ExtSMTSched is the scheduled-SMT policy sweep.
type ExtSMTSched struct {
	Rows []ExtSMTSchedRow
}

// ExtSMTSchedThreads is the swept thread-count axis.
var ExtSMTSchedThreads = []int{2, 4, 8}

// extSMTSchedMixes returns the swept workload mixes: a heterogeneous
// rotation over the setup's workloads (database/SPECjbb/SPECweb by
// default) and a homogeneous mix of first-workload copies. Thread t
// always reseeds its workload so copies stay decorrelated.
func extSMTSchedMixes(s Setup) []struct {
	Name string
	Pick func(t int) workload.Config
} {
	rotation := s.Workloads
	if len(rotation) == 0 {
		rotation = workload.Presets(s.Seed)
	}
	base := rotation[0]
	return []struct {
		Name string
		Pick func(t int) workload.Config
	}{
		{"hetero", func(t int) workload.Config {
			return rotation[t%len(rotation)].WithSeed(s.Seed + int64(t)*101)
		}},
		{"homo-" + base.Name, func(t int) workload.Config {
			return base.WithSeed(s.Seed + int64(t)*101)
		}},
	}
}

// RunExtSMTSched executes the sweep: policy x thread count x mix, with
// the per-thread instruction budget split like ext-smt (budget/K,
// floored at one while a budget exists).
func RunExtSMTSched(s Setup) ExtSMTSched {
	mixes := extSMTSchedMixes(s)
	policies := smt.PolicyNames()
	type point struct{ mi, ki int }
	points := make([]point, 0, len(mixes)*len(ExtSMTSchedThreads))
	for mi := range mixes {
		for ki := range ExtSMTSchedThreads {
			points = append(points, point{mi, ki})
		}
	}
	rows := make([]ExtSMTSchedRow, len(points)*len(policies))
	s.forEach(len(points), func(i int) {
		p := points[i]
		k := ExtSMTSchedThreads[p.ki]
		threads := make([]workload.Config, k)
		for t := range threads {
			threads[t] = mixes[p.mi].Pick(t)
		}
		per := s.Measure / int64(k)
		if per == 0 && s.Measure > 0 {
			per = 1
		}
		cfg := smt.SchedConfig{Config: smt.Config{
			Threads:   threads,
			Processor: core.Default(),
			Warmup:    s.Warmup / int64(k),
			Measure:   per,
		}}
		results := smt.RunScheduledPolicies(cfg, policies)
		for pi, r := range results {
			s.noteSMTSched(r)
			rows[i*len(policies)+pi] = ExtSMTSchedRow{
				Mix:           mixes[p.mi].Name,
				Threads:       k,
				Policy:        r.Policy,
				AggMLP:        r.AggMLP,
				CombinedLower: r.CombinedLower,
				CombinedUpper: r.CombinedUpper,
				MinShare:      r.MinShare,
				MaxShare:      r.MaxShare,
				Switches:      r.Switches,
				Bursts:        r.Bursts,
				Overlapped:    r.Overlapped,
				FloorPicks:    r.FloorPicks,
			}
		}
	})
	return ExtSMTSched{Rows: rows}
}

// String renders the sweep.
func (e ExtSMTSched) String() string {
	tb := newTable("Extension: MLP-Aware SMT Fetch Scheduling (policies inside the ext-smt bounds)")
	tb.row("Mix", "K", "Policy", "AggMLP", "Lower", "Upper", "MinShare", "MaxShare", "Overlapped")
	for _, r := range e.Rows {
		tb.rowf("%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%d",
			r.Mix, r.Threads, r.Policy, f2(r.AggMLP), f2(r.CombinedLower), f2(r.CombinedUpper),
			f3(r.MinShare), f3(r.MaxShare), r.Overlapped)
	}
	return tb.String()
}

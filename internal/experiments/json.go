package experiments

import (
	"encoding/json"
	"io"
)

// WriteJSON renders an exhibit's typed rows as a JSON document
//
//	{"rows": [ {<row fields>}, ... ]}
//
// It accepts the same shapes as WriteCSV: any struct with exactly one
// exported slice-of-structs field (Rows, Cells or Series). Row structs
// marshal with encoding/json field order (declaration order), so the
// output is deterministic byte-for-byte for a fixed Setup — the HTTP
// server and the CLI's -json flag both call this, and the golden
// equivalence test in cmd/experiments holds them to identical bytes.
func WriteJSON(w io.Writer, exhibit interface{}) error {
	rows, err := rowsOf(exhibit)
	if err != nil {
		return err
	}
	out := make([]interface{}, rows.Len())
	for i := 0; i < rows.Len(); i++ {
		out[i] = rows.Index(i).Interface()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Rows []interface{} `json:"rows"`
	}{Rows: out})
}

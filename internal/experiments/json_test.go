package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteJSONShape(t *testing.T) {
	type row struct {
		Name string
		MLP  float64
	}
	exhibit := struct{ Rows []row }{Rows: []row{{"db", 1.25}, {"web", 2}}}
	var b bytes.Buffer
	if err := WriteJSON(&b, exhibit); err != nil {
		t.Fatal(err)
	}
	want := `{
 "rows": [
  {
   "Name": "db",
   "MLP": 1.25
  },
  {
   "Name": "web",
   "MLP": 2
  }
 ]
}
`
	if b.String() != want {
		t.Errorf("WriteJSON output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteJSONRejectsRowless(t *testing.T) {
	var b bytes.Buffer
	err := WriteJSON(&b, struct{ X int }{1})
	if err == nil || !strings.Contains(err.Error(), "Rows/Cells/Series") {
		t.Errorf("err = %v, want rows-shape complaint", err)
	}
}

// TestWriteJSONDeterministic: two renderings of the same exhibit value
// must be byte-identical — the server's result cache and the CLI both
// rely on this.
func TestWriteJSONDeterministic(t *testing.T) {
	s := Quick(1)
	s.Warmup, s.Measure = 20_000, 60_000
	s.Workloads = s.Workloads[:1]
	out := RunTable5(s)
	var a, b bytes.Buffer
	if err := WriteJSON(&a, out); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renderings of one exhibit differ")
	}
}

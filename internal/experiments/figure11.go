package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
)

// Figure11Row is the modelled overall performance improvement of one
// configuration over the 64D baseline for one workload, at a 1000-cycle
// off-chip latency (§5.7).
type Figure11Row struct {
	Workload string
	Config   string
	MLP      float64
	CPI      float64
	// GainPct is the percentage performance improvement over 64D.
	GainPct float64
}

// Figure11 reproduces Figure 11: overall performance improvement.
type Figure11 struct {
	Rows []Figure11Row
}

// figure11Configs is the sample of §5.3-5.6 configurations the paper
// charts, all relative to "64D".
func figure11Configs() []struct {
	name string
	cfg  core.Config
} {
	d := core.Default().WithIssue(core.ConfigD)
	return []struct {
		name string
		cfg  core.Config
	}{
		{"64D", d},
		{"64C", core.Default()},
		{"64D/256", d.WithROB(256)},
		{"64E/1024", core.Default().WithIssue(core.ConfigE).WithROB(1024)},
		{"RAE", d.WithRunahead()},
		{"RAE.perfI", withMods(d.WithRunahead(), func(c *core.Config) { c.PerfectIFetch = true })},
		{"RAE.perfBP", withMods(d.WithRunahead(), func(c *core.Config) { c.PerfectBP = true })},
		{"RAE.perfVP", withMods(d.WithRunahead(), func(c *core.Config) { c.PerfectVP = true })},
		{"RAE.perfVP.perfBP", withMods(d.WithRunahead(), func(c *core.Config) {
			c.PerfectVP = true
			c.PerfectBP = true
		})},
	}
}

func withMods(c core.Config, mods ...func(*core.Config)) core.Config {
	for _, m := range mods {
		m(&c)
	}
	return c
}

// RunFigure11 executes the experiment.
func RunFigure11(s Setup) Figure11 {
	configs := figure11Configs()
	chars := make([]Characterization, len(s.Workloads))
	s.forEach(len(s.Workloads), func(wi int) {
		chars[wi] = s.Characterize(s.Workloads[wi], 1000)
	})

	type job struct{ wi, ci int }
	var jobs []job
	for wi := range s.Workloads {
		for ci := range configs {
			jobs = append(jobs, job{wi, ci})
		}
	}
	results := make([]core.Result, len(jobs))
	s.forEach(len(jobs), func(i int) {
		j := jobs[i]
		results[i] = s.RunMLPsim(s.Workloads[j.wi], configs[j.ci].cfg, annotate.Config{})
	})

	var rows []Figure11Row
	for wi := range s.Workloads {
		p := chars[wi].Params()
		var baseCPI float64
		for ci := range configs {
			res := &results[wi*len(configs)+ci]
			// Each configuration's own (possibly reduced, e.g. perfI)
			// miss rate feeds the model.
			params := p
			params.MissRatePer100 = res.MissRatePer100()
			cpiEst := params.Estimate(res.MLP())
			if ci == 0 {
				baseCPI = cpiEst
			}
			rows = append(rows, Figure11Row{
				Workload: s.Workloads[wi].Name,
				Config:   configs[ci].name,
				MLP:      res.MLP(),
				CPI:      cpiEst,
				GainPct:  100 * (baseCPI/cpiEst - 1),
			})
		}
	}
	return Figure11{Rows: rows}
}

// String renders the chart data.
func (f Figure11) String() string {
	tb := newTable("Figure 11: Overall Performance Improvement over 64D (CPI model, 1000-cycle latency)")
	tb.row("Workload", "Config", "MLP", "CPI (est)", "Improvement")
	for _, r := range f.Rows {
		tb.rowf("%s\t%s\t%s\t%s\t%.0f%%", r.Workload, r.Config, f2(r.MLP), f2(r.CPI), r.GainPct)
	}
	return tb.String() + "\n" + f.Chart()
}

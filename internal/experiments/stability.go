package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/stats"
)

// StabilityRow reports multi-seed statistics for one workload and
// configuration: the confidence that a single-seed number in the other
// exhibits is representative.
type StabilityRow struct {
	Workload string
	Config   string
	MLP      stats.Summary
	MissRate stats.Summary
}

// Stability re-runs the key configurations over several workload seeds
// and reports mean ± 95% CI — the reproduction's error bars.
type Stability struct {
	Seeds int
	Rows  []StabilityRow
}

// StabilitySeeds is the number of independent seeds measured.
const StabilitySeeds = 5

// RunStability executes the experiment.
func RunStability(s Setup) Stability {
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"64C", core.Default()},
		{"RAE", core.Default().WithIssue(core.ConfigD).WithRunahead()},
	}
	type job struct{ wi, ci, si int }
	var jobs []job
	for wi := range s.Workloads {
		for ci := range configs {
			for si := 0; si < StabilitySeeds; si++ {
				jobs = append(jobs, job{wi, ci, si})
			}
		}
	}
	mlps := make([]float64, len(jobs))
	rates := make([]float64, len(jobs))
	s.forEach(len(jobs), func(i int) {
		j := jobs[i]
		w := s.Workloads[j.wi].WithSeed(s.Seed + int64(j.si)*7919)
		res := s.RunMLPsim(w, configs[j.ci].cfg, annotate.Config{})
		mlps[i] = res.MLP()
		rates[i] = res.MissRatePer100()
	})

	var rows []StabilityRow
	i := 0
	for wi := range s.Workloads {
		for ci := range configs {
			rows = append(rows, StabilityRow{
				Workload: s.Workloads[wi].Name,
				Config:   configs[ci].name,
				MLP:      stats.Summarize(mlps[i : i+StabilitySeeds]),
				MissRate: stats.Summarize(rates[i : i+StabilitySeeds]),
			})
			i += StabilitySeeds
		}
	}
	return Stability{Seeds: StabilitySeeds, Rows: rows}
}

// String renders the error bars.
func (st Stability) String() string {
	tb := newTable("Stability: MLP and miss rate across workload seeds (mean ± 95% CI)")
	tb.row("Workload", "Config", "MLP", "±", "Miss rate (/100)", "±")
	for _, r := range st.Rows {
		tb.rowf("%s\t%s\t%s\t%s\t%s\t%s",
			r.Workload, r.Config, f2(r.MLP.Mean), f3(r.MLP.CI95()),
			f2(r.MissRate.Mean), f3(r.MissRate.CI95()))
	}
	return tb.String()
}

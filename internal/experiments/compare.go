package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/vpred"
)

// CompareRow is one paper-vs-measured headline number.
type CompareRow struct {
	Workload string
	Metric   string
	Paper    float64
	Measured float64
}

// Compare runs the headline configurations and prints them next to the
// paper's published values — the quick fidelity check the other exhibits
// expand on.
type Compare struct {
	Rows []CompareRow
}

// RunCompare executes the comparison.
func RunCompare(s Setup) Compare {
	type measured struct {
		mlp64C, som, sou, conv64D, rae float64
		vp                             [3]float64
		missRate                       float64
	}
	per := make([]measured, len(s.Workloads))
	type job struct{ wi, which int }
	var jobs []job
	for wi := range s.Workloads {
		for which := 0; which < 6; which++ {
			jobs = append(jobs, job{wi, which})
		}
	}
	s.forEach(len(jobs), func(i int) {
		j := jobs[i]
		w := s.Workloads[j.wi]
		m := &per[j.wi]
		switch j.which {
		case 0:
			res := s.RunMLPsim(w, core.Default(), annotate.Config{})
			m.mlp64C = res.MLP()
			m.missRate = res.MissRatePer100()
		case 1:
			res := s.RunMLPsim(w, core.Config{Mode: core.InOrderStallOnMiss}, annotate.Config{})
			m.som = res.MLP()
		case 2:
			res := s.RunMLPsim(w, core.Config{Mode: core.InOrderStallOnUse}, annotate.Config{})
			m.sou = res.MLP()
		case 3:
			res := s.RunMLPsim(w, core.Default().WithIssue(core.ConfigD), annotate.Config{})
			m.conv64D = res.MLP()
		case 4:
			res := s.RunMLPsim(w, core.Default().WithIssue(core.ConfigD).WithRunahead(), annotate.Config{})
			m.rae = res.MLP()
		case 5:
			st := s.AnnotateStats(w, annotate.Config{Value: vpred.NewLastValue(vpred.DefaultEntries)}).VP
			m.vp[0], m.vp[1], m.vp[2] = st.Fractions()
		}
	})

	var rows []CompareRow
	for wi, w := range s.Workloads {
		m := per[wi]
		name := w.Name
		rows = append(rows,
			CompareRow{name, "L2 miss rate (/100)", paperT1(name, "miss"), m.missRate},
			CompareRow{name, "MLP 64C (Table 3)", PaperTable3MLPsim[name]["64C"], m.mlp64C},
			CompareRow{name, "MLP in-order stall-on-miss", PaperTable5[name][0], m.som},
			CompareRow{name, "MLP in-order stall-on-use", PaperTable5[name][1], m.sou},
			CompareRow{name, "RAE MLP gain vs 64D", PaperFigure8Gains[name][0], m.rae/m.conv64D - 1},
			CompareRow{name, "VP correct fraction", PaperTable6[name][0], m.vp[0]},
			CompareRow{name, "VP no-predict fraction", PaperTable6[name][2], m.vp[2]},
		)
	}
	return Compare{Rows: rows}
}

func paperT1(workload, metric string) float64 {
	for _, r := range PaperTable1 {
		if r.Workload == workload && r.Penalty == 1000 {
			if metric == "miss" {
				return r.MissRatePer100
			}
		}
	}
	return 0
}

// String renders the comparison.
func (c Compare) String() string {
	tb := newTable("Paper vs Measured: headline numbers")
	tb.row("Workload", "Metric", "Paper", "Measured")
	for _, r := range c.Rows {
		tb.rowf("%s\t%s\t%s\t%s", r.Workload, r.Metric, f2(r.Paper), f2(r.Measured))
	}
	return tb.String()
}

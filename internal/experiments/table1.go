package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/cpi"
	"mlpsim/internal/cyclesim"
	"mlpsim/internal/workload"
)

// Characterization is the Table 1 description of one workload at one
// off-chip latency: the measured CPI decomposition and the CPI-model
// parameters derived from it (§2.2).
type Characterization struct {
	Workload       string
	Penalty        int
	CPI            float64 // measured by the cycle simulator
	CPIPerf        float64 // measured with a perfect L2
	CPIOnChip      float64
	CPIOffChip     float64
	MissRatePer100 float64
	MLP            float64 // cycle-simulator MLP(t) average
	OverlapCM      float64
}

// Params returns the CPI-model parameters implied by the
// characterization.
func (c Characterization) Params() cpi.Params {
	return cpi.Params{
		CPIPerf:        c.CPIPerf,
		OverlapCM:      c.OverlapCM,
		MissRatePer100: c.MissRatePer100,
		MissPenalty:    float64(c.Penalty),
	}
}

// Characterize measures one workload at one latency with two cycle-
// simulator runs (realistic and perfect L2), deriving Overlap_CM from the
// CPI equation exactly as §2.2 prescribes.
func (s Setup) Characterize(w workload.Config, penalty int) Characterization {
	var meas, perf cyclesim.Result
	s.forEach(2, func(i int) {
		cfg := cyclesim.Default(penalty)
		cfg.PerfectL2 = i == 1
		r := s.RunCycleSim(w, cfg, annotate.Config{})
		if i == 1 {
			perf = r
		} else {
			meas = r
		}
	})
	c := Characterization{
		Workload:       w.Name,
		Penalty:        penalty,
		CPI:            meas.CPI(),
		CPIPerf:        perf.CPI(),
		MissRatePer100: meas.MissRatePer100(),
		MLP:            meas.MLP,
	}
	c.OverlapCM = cpi.DeriveOverlap(c.CPI, c.CPIPerf, c.MissRatePer100, float64(penalty), c.MLP)
	c.CPIOnChip = c.CPIPerf * (1 - c.OverlapCM)
	c.CPIOffChip = c.CPI - c.CPIOnChip
	return c
}

// Table1 reproduces Table 1: on-chip and off-chip CPI components for each
// workload at 200- and 1000-cycle off-chip latencies.
type Table1 struct {
	Rows []Characterization
}

// RunTable1 executes the experiment.
func RunTable1(s Setup) Table1 {
	type job struct {
		w       workload.Config
		penalty int
	}
	var jobs []job
	for _, w := range s.Workloads {
		for _, p := range []int{200, 1000} {
			jobs = append(jobs, job{w, p})
		}
	}
	rows := make([]Characterization, len(jobs))
	s.forEach(len(jobs), func(i int) {
		rows[i] = s.Characterize(jobs[i].w, jobs[i].penalty)
	})
	return Table1{Rows: rows}
}

// String renders the table in the paper's column order.
func (t Table1) String() string {
	tb := newTable("Table 1: Measurements of On-Chip and Off-Chip Components of CPI")
	tb.row("Benchmark", "Off-Chip Latency", "CPI", "CPI_on-chip", "CPI_off-chip",
		"L2 Miss Rate (/100 insts)", "MLP", "Overlap_CM")
	for _, r := range t.Rows {
		tb.rowf("%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s",
			r.Workload, r.Penalty, f2(r.CPI), f2(r.CPIOnChip), f2(r.CPIOffChip),
			f2(r.MissRatePer100), f2(r.MLP), f2(r.OverlapCM))
	}
	return tb.String()
}

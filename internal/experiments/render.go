package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// table accumulates rows and renders an aligned text table.
type table struct {
	b  strings.Builder
	tw *tabwriter.Writer
}

func newTable(title string) *table {
	t := &table{}
	t.b.WriteString(title)
	t.b.WriteString("\n")
	t.b.WriteString(strings.Repeat("=", len(title)))
	t.b.WriteString("\n")
	t.tw = tabwriter.NewWriter(&t.b, 2, 4, 2, ' ', 0)
	return t
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.tw, strings.Join(cells, "\t"))
}

func (t *table) rowf(format string, args ...interface{}) {
	fmt.Fprintf(t.tw, format+"\n", args...)
}

func (t *table) String() string {
	t.tw.Flush()
	return t.b.String()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }
func itoa(x int) string    { return fmt.Sprintf("%d", x) }

package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
)

// Figure4Sizes and Figure4Configs are the sweep axes of Figures 4 and 5.
var (
	Figure4Sizes   = []int{16, 32, 64, 128, 256}
	Figure4Configs = []core.IssueConfig{core.ConfigA, core.ConfigB, core.ConfigC, core.ConfigD, core.ConfigE}
)

// Figure4Cell is one point of the ROB-size × issue-configuration sweep.
type Figure4Cell struct {
	Workload string
	Window   int
	Issue    core.IssueConfig
	MLP      float64
	Result   core.Result
}

// Figure4 reproduces Figure 4 (MLP vs ROB/issue-window size and issue
// constraints); its raw results also carry the Figure 5 limiter
// statistics.
type Figure4 struct {
	Cells []Figure4Cell

	// idx maps (workload, window, issue) to a Cells position; built
	// lazily on first Lookup. Cells are write-once after RunFigure4, so
	// the index never needs invalidation.
	idx map[figure4Key]int
}

type figure4Key struct {
	workload string
	window   int
	issue    core.IssueConfig
}

// RunFigure4 executes the sweep.
func RunFigure4(s Setup) Figure4 {
	type job struct {
		wi, si, ci int
	}
	var jobs []job
	for wi := range s.Workloads {
		for si := range Figure4Sizes {
			for ci := range Figure4Configs {
				jobs = append(jobs, job{wi, si, ci})
			}
		}
	}
	points := make([]MLPPoint, len(jobs))
	for i, j := range jobs {
		points[i] = MLPPoint{
			Workload: s.Workloads[j.wi],
			Config:   core.Default().WithWindow(Figure4Sizes[j.si]).WithIssue(Figure4Configs[j.ci]),
			Annot:    annotate.Config{},
		}
	}
	results := s.RunMLPsimBatch(points)
	cells := make([]Figure4Cell, len(jobs))
	for i, j := range jobs {
		cells[i] = Figure4Cell{
			Workload: s.Workloads[j.wi].Name,
			Window:   Figure4Sizes[j.si],
			Issue:    Figure4Configs[j.ci],
			MLP:      results[i].MLP(),
			Result:   results[i],
		}
	}
	return Figure4{Cells: cells}
}

// Lookup returns the cell for (workload, window, config), or nil. The
// first call indexes Cells so that rendering the full matrix is linear
// in the number of cells rather than quadratic.
func (f *Figure4) Lookup(workload string, window int, ic core.IssueConfig) *Figure4Cell {
	if f.idx == nil {
		f.idx = make(map[figure4Key]int, len(f.Cells))
		for i := range f.Cells {
			c := &f.Cells[i]
			f.idx[figure4Key{c.Workload, c.Window, c.Issue}] = i
		}
	}
	if i, ok := f.idx[figure4Key{workload, window, ic}]; ok {
		return &f.Cells[i]
	}
	return nil
}

// String renders one MLP matrix per workload.
func (f Figure4) String() string {
	tb := newTable("Figure 4: Impact of ROB Size and Issuing Constraints (MLP)")
	header := []string{"Workload", "ROB/IW"}
	for _, ic := range Figure4Configs {
		header = append(header, ic.String())
	}
	tb.row(header...)
	seen := map[string]bool{}
	var order []string
	for _, c := range f.Cells {
		if !seen[c.Workload] {
			seen[c.Workload] = true
			order = append(order, c.Workload)
		}
	}
	for _, wname := range order {
		for _, size := range Figure4Sizes {
			cells := []string{wname, itoa(size)}
			for _, ic := range Figure4Configs {
				if c := f.Lookup(wname, size, ic); c != nil {
					cells = append(cells, f2(c.MLP))
				} else {
					cells = append(cells, "-")
				}
			}
			tb.row(cells...)
		}
	}
	return tb.String() + "\n" + f.Chart()
}

package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
)

// WriteCSV renders an exhibit's typed rows as CSV. It accepts any struct
// with exactly one exported slice-of-structs field (Rows, Cells or
// Series); the column headers come from the row struct's exported field
// names. Nested slices are flattened with a semicolon separator.
func WriteCSV(w io.Writer, exhibit interface{}) error {
	rows, err := rowsOf(exhibit)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()

	if rows.Len() == 0 {
		return nil
	}
	rowType := rows.Index(0).Type()
	var header []string
	for i := 0; i < rowType.NumField(); i++ {
		f := rowType.Field(i)
		if f.IsExported() {
			header = append(header, f.Name)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for r := 0; r < rows.Len(); r++ {
		row := rows.Index(r)
		var cells []string
		for i := 0; i < rowType.NumField(); i++ {
			if !rowType.Field(i).IsExported() {
				continue
			}
			cells = append(cells, formatCell(row.Field(i)))
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	return nil
}

// rowsOf locates the exhibit's row slice.
func rowsOf(exhibit interface{}) (reflect.Value, error) {
	v := reflect.ValueOf(exhibit)
	if v.Kind() == reflect.Ptr {
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return reflect.Value{}, fmt.Errorf("experiments: CSV export needs a struct, got %T", exhibit)
	}
	for _, name := range []string{"Rows", "Cells", "Series"} {
		f := v.FieldByName(name)
		if f.IsValid() && f.Kind() == reflect.Slice {
			return f, nil
		}
	}
	return reflect.Value{}, fmt.Errorf("experiments: %T has no Rows/Cells/Series slice", exhibit)
}

// formatCell renders one field value.
func formatCell(v reflect.Value) string {
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		return strconv.FormatFloat(v.Float(), 'f', 4, 64)
	case reflect.Slice, reflect.Array:
		out := ""
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				out += ";"
			}
			out += formatCell(v.Index(i))
		}
		return out
	case reflect.Struct:
		// Nested results (e.g. core.Result) summarize as their Stringer
		// if present, else as their type name.
		if s, ok := v.Interface().(fmt.Stringer); ok {
			return s.String()
		}
		return v.Type().Name()
	default:
		return fmt.Sprint(v.Interface())
	}
}

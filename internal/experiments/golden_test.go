package experiments

import (
	"reflect"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/cyclesim"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

// goldenSetups returns the same experiment setup twice: once routed
// through the annotated-trace cache and once on the direct
// annotate-per-run path.
func goldenSetups(seed int64) (cached, direct Setup) {
	cached = Quick(seed)
	cached.Warmup = 200_000
	cached.Measure = 500_000
	cached.Parallelism = 4 // exercise the worker pool + singleflight under -race
	direct = cached
	direct.Cache = nil
	return cached, direct
}

// TestCachedPathMatchesDirect is the golden determinism check of the
// annotated-trace cache: for every workload preset, the cached-replay and
// direct-annotation paths must produce bit-identical core.Result and
// cyclesim.Result values.
func TestCachedPathMatchesDirect(t *testing.T) {
	cached, direct := goldenSetups(1)

	coreConfigs := []struct {
		name string
		cfg  core.Config
	}{
		{"64C", core.Default()},
		{"64D-runahead", core.Default().WithIssue(core.ConfigD).WithRunahead()},
		{"inorder-stall-on-use", core.Config{Mode: core.InOrderStallOnUse}},
	}
	cycleConfigs := []struct {
		name string
		cfg  cyclesim.Config
	}{
		{"default", cyclesim.Default(400)},
	}

	for _, w := range cached.Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, cc := range coreConfigs {
				got := cached.RunMLPsim(w, cc.cfg, annotate.Config{})
				want := direct.RunMLPsim(w, cc.cfg, annotate.Config{})
				if !reflect.DeepEqual(got, want) {
					t.Errorf("core %s: cached result differs from direct\ncached: %+v\ndirect: %+v", cc.name, got, want)
				}
			}
			for _, cc := range cycleConfigs {
				got := cached.RunCycleSim(w, cc.cfg, annotate.Config{})
				want := direct.RunCycleSim(w, cc.cfg, annotate.Config{})
				if !reflect.DeepEqual(got, want) {
					t.Errorf("cyclesim %s: cached result differs from direct\ncached: %+v\ndirect: %+v", cc.name, got, want)
				}
			}
		})
	}
}

// TestCachedStatsMatchDirect checks the AnnotateStats path (Table 6 /
// Compare) the same way.
func TestCachedStatsMatchDirect(t *testing.T) {
	cached, direct := goldenSetups(2)
	w := cached.Workloads[0]
	acfg := func() annotate.Config {
		return annotate.Config{Value: vpred.NewLastValue(vpred.DefaultEntries)}
	}
	got := cached.AnnotateStats(w, acfg())
	want := direct.AnnotateStats(w, acfg())
	if got != want {
		t.Errorf("cached stats %+v, want %+v", got, want)
	}
}

// TestCacheDeduplicatesAcrossRunners asserts the tentpole property: a
// sweep that runs many engine configurations over one workload performs
// exactly one annotation pass per annotation config.
func TestCacheDeduplicatesAcrossRunners(t *testing.T) {
	s := Quick(3)
	s.Warmup = 100_000
	s.Measure = 250_000
	s.Workloads = s.Workloads[:1]
	s.Parallelism = 4

	for _, cfg := range []core.Config{
		core.Default(),
		core.Default().WithROB(256),
		core.Default().WithIssue(core.ConfigD),
		core.Default().WithIssue(core.ConfigD).WithRunahead(),
	} {
		s.RunMLPsim(s.Workloads[0], cfg, annotate.Config{})
	}
	s.RunCycleSim(s.Workloads[0], cyclesim.Default(400), annotate.Config{})

	st := s.Cache.Stats()
	if st.Builds != 1 {
		t.Errorf("5 runs performed %d annotation passes, want 1", st.Builds)
	}
	if st.Hits != 4 {
		t.Errorf("cache hits %d, want 4", st.Hits)
	}
}

// TestUncacheableConfigsFallBack: hardware-prefetcher configurations must
// bypass the cache entirely (callers read prefetcher state after the
// run, so the annotator has to run directly).
func TestUncacheableConfigsFallBack(t *testing.T) {
	s := Quick(4)
	s.Warmup = 50_000
	s.Measure = 100_000
	w := workload.Strided(s.Seed)

	dpf := prefetch.NewStride(1024, 4)
	res := s.RunMLPsim(w, core.Default(), annotate.Config{DPrefetch: dpf})
	if res.Instructions != s.Measure {
		t.Errorf("direct-path run consumed %d instructions, want %d", res.Instructions, s.Measure)
	}
	if dpf.Stats().Issued == 0 {
		t.Error("prefetcher saw no traffic; the direct path did not use the caller's instance")
	}
	if st := s.Cache.Stats(); st.Builds != 0 || st.Misses != 0 {
		t.Errorf("prefetcher config touched the cache (stats %+v); must use the direct path", st)
	}
}

package experiments

import (
	"reflect"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/cyclesim"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/vpred"
	"mlpsim/internal/workload"
)

// goldenSetups returns the same experiment setup twice: once routed
// through the annotated-trace cache and once on the direct
// annotate-per-run path.
func goldenSetups(seed int64) (cached, direct Setup) {
	cached = Quick(seed)
	cached.Warmup = 200_000
	cached.Measure = 500_000
	cached.Parallelism = 4 // exercise the worker pool + singleflight under -race
	direct = cached
	direct.Cache = nil
	return cached, direct
}

// TestCachedPathMatchesDirect is the golden determinism check of the
// annotated-trace cache: for every workload preset, the cached-replay and
// direct-annotation paths must produce bit-identical core.Result and
// cyclesim.Result values.
func TestCachedPathMatchesDirect(t *testing.T) {
	cached, direct := goldenSetups(1)

	coreConfigs := []struct {
		name string
		cfg  core.Config
	}{
		{"64C", core.Default()},
		{"64D-runahead", core.Default().WithIssue(core.ConfigD).WithRunahead()},
		{"inorder-stall-on-use", core.Config{Mode: core.InOrderStallOnUse}},
	}
	cycleConfigs := []struct {
		name string
		cfg  cyclesim.Config
	}{
		{"default", cyclesim.Default(400)},
	}

	for _, w := range cached.Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, cc := range coreConfigs {
				got := cached.RunMLPsim(w, cc.cfg, annotate.Config{})
				want := direct.RunMLPsim(w, cc.cfg, annotate.Config{})
				if !reflect.DeepEqual(got, want) {
					t.Errorf("core %s: cached result differs from direct\ncached: %+v\ndirect: %+v", cc.name, got, want)
				}
			}
			for _, cc := range cycleConfigs {
				got := cached.RunCycleSim(w, cc.cfg, annotate.Config{})
				want := direct.RunCycleSim(w, cc.cfg, annotate.Config{})
				if !reflect.DeepEqual(got, want) {
					t.Errorf("cyclesim %s: cached result differs from direct\ncached: %+v\ndirect: %+v", cc.name, got, want)
				}
			}
		})
	}
}

// TestSegmentedCacheMatchesDirect re-runs the golden determinism check
// with segmented parallel capture enabled: sharding the annotation pass
// across workers and replaying across segment boundaries must stay
// bit-identical to the direct annotate-per-run path.
func TestSegmentedCacheMatchesDirect(t *testing.T) {
	cached, direct := goldenSetups(1)
	// 500k / 150k -> 4 segments (the last one short) built by 2 workers.
	cached.Cache.SetSegments(150_000, 2)

	cfgs := []core.Config{
		core.Default(),
		core.Default().WithIssue(core.ConfigD).WithRunahead(),
	}
	for _, w := range cached.Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, cfg := range cfgs {
				got := cached.RunMLPsim(w, cfg, annotate.Config{})
				want := direct.RunMLPsim(w, cfg, annotate.Config{})
				if !reflect.DeepEqual(got, want) {
					t.Errorf("segmented cached result differs from direct\ncached: %+v\ndirect: %+v", got, want)
				}
			}
			got := cached.RunCycleSim(w, cyclesim.Default(400), annotate.Config{})
			want := direct.RunCycleSim(w, cyclesim.Default(400), annotate.Config{})
			if !reflect.DeepEqual(got, want) {
				t.Errorf("segmented cached cyclesim result differs from direct\ncached: %+v\ndirect: %+v", got, want)
			}
		})
	}
	if st := cached.Cache.Stats(); st.Builds != uint64(len(cached.Workloads)) {
		t.Errorf("segmented cache performed %d builds for %d workloads", st.Builds, len(cached.Workloads))
	}
}

// TestCachedStatsMatchDirect checks the AnnotateStats path (Table 6 /
// Compare) the same way.
func TestCachedStatsMatchDirect(t *testing.T) {
	cached, direct := goldenSetups(2)
	w := cached.Workloads[0]
	acfg := func() annotate.Config {
		return annotate.Config{Value: vpred.NewLastValue(vpred.DefaultEntries)}
	}
	got := cached.AnnotateStats(w, acfg())
	want := direct.AnnotateStats(w, acfg())
	if got != want {
		t.Errorf("cached stats %+v, want %+v", got, want)
	}
}

// TestCacheDeduplicatesAcrossRunners asserts the tentpole property: a
// sweep that runs many engine configurations over one workload performs
// exactly one annotation pass per annotation config.
func TestCacheDeduplicatesAcrossRunners(t *testing.T) {
	s := Quick(3)
	s.Warmup = 100_000
	s.Measure = 250_000
	s.Workloads = s.Workloads[:1]
	s.Parallelism = 4

	for _, cfg := range []core.Config{
		core.Default(),
		core.Default().WithROB(256),
		core.Default().WithIssue(core.ConfigD),
		core.Default().WithIssue(core.ConfigD).WithRunahead(),
	} {
		s.RunMLPsim(s.Workloads[0], cfg, annotate.Config{})
	}
	s.RunCycleSim(s.Workloads[0], cyclesim.Default(400), annotate.Config{})

	st := s.Cache.Stats()
	if st.Builds != 1 {
		t.Errorf("5 runs performed %d annotation passes, want 1", st.Builds)
	}
	if st.Hits != 4 {
		t.Errorf("cache hits %d, want 4", st.Hits)
	}
}

// TestPrefetchConfigsAreCached: untrained deterministic hardware
// prefetchers are part of the cache key, so a prefetch configuration gets
// one shared annotation pass like any other, and the prefetcher
// statistics are served from the stream's metadata — identical to what a
// direct run's instances would report.
func TestPrefetchConfigsAreCached(t *testing.T) {
	s := Quick(4)
	s.Warmup = 50_000
	s.Measure = 100_000
	w := workload.Strided(s.Seed)
	acfg := func() annotate.Config {
		return annotate.Config{DPrefetch: prefetch.NewStride(1024, 4)}
	}

	res := s.RunMLPsim(w, core.Default(), acfg())
	if res.Instructions != s.Measure {
		t.Errorf("cached run consumed %d instructions, want %d", res.Instructions, s.Measure)
	}
	if st := s.Cache.Stats(); st.Builds != 1 {
		t.Errorf("prefetch config performed %d annotation passes, want 1 (stats %+v)", st.Builds, st)
	}
	_, dst := s.PrefetchStats(w, acfg())
	if dst.Issued == 0 {
		t.Error("stream metadata carries no data-prefetcher statistics")
	}
	if st := s.Cache.Stats(); st.Builds != 1 {
		t.Errorf("PrefetchStats triggered a rebuild: %d annotation passes, want 1", st.Builds)
	}

	direct := s
	direct.Cache = nil
	dpf := prefetch.NewStride(1024, 4)
	dres := direct.RunMLPsim(w, core.Default(), annotate.Config{DPrefetch: dpf})
	if !reflect.DeepEqual(res, dres) {
		t.Errorf("cached result differs from direct\ncached: %+v\ndirect: %+v", res, dres)
	}
	if got := dpf.Stats(); got != dst {
		t.Errorf("metadata stats %+v differ from direct-instance stats %+v", dst, got)
	}
}

// TestTrainedPrefetcherBypassesCache: an instance that has already seen
// traffic cannot be keyed (its state is not derivable from the
// configuration), so the run must fall back to the direct path and the
// instance itself carries the statistics.
func TestTrainedPrefetcherBypassesCache(t *testing.T) {
	s := Quick(5)
	s.Warmup = 50_000
	s.Measure = 100_000
	w := workload.Strided(s.Seed)

	dpf := prefetch.NewStride(1024, 4)
	direct := s
	direct.Cache = nil
	direct.RunMLPsim(w, core.Default(), annotate.Config{DPrefetch: dpf})
	if dpf.Untrained() {
		t.Fatal("direct run left the prefetcher untrained")
	}

	res := s.RunMLPsim(w, core.Default(), annotate.Config{DPrefetch: dpf})
	if res.Instructions != s.Measure {
		t.Errorf("fallback run consumed %d instructions, want %d", res.Instructions, s.Measure)
	}
	if st := s.Cache.Stats(); st.Builds != 0 || st.Misses != 0 {
		t.Errorf("trained prefetcher config touched the cache (stats %+v); must use the direct path", st)
	}
	if _, dst := s.PrefetchStats(w, annotate.Config{DPrefetch: dpf}); dst != dpf.Stats() {
		t.Errorf("PrefetchStats %+v, want the instance's own %+v", dst, dpf.Stats())
	}
}

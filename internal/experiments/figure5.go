package experiments

import "mlpsim/internal/core"

// Figure5 reproduces Figure 5: for each (workload, window, config) of the
// Figure 4 sweep, the relative frequency of the conditions preventing
// more MLP in an epoch.
type Figure5 struct {
	Cells []Figure4Cell
}

// RunFigure5 executes the sweep (it shares the Figure 4 runner).
func RunFigure5(s Setup) Figure5 {
	return Figure5{Cells: RunFigure4(s).Cells}
}

// paperLimiters are the Figure 5 bar segments in the paper's order.
var paperLimiters = []core.Limiter{
	core.LimImissStart, core.LimMaxwin, core.LimMispredBr, core.LimImissEnd,
	core.LimMissingLoad, core.LimDepStore, core.LimSerialize,
}

// String renders the limiter shares.
func (f Figure5) String() string {
	tb := newTable("Figure 5: Factors Inhibiting Further MLP (fraction of epochs)")
	header := []string{"Workload", "Size+Config"}
	for _, l := range paperLimiters {
		header = append(header, l.String())
	}
	header = append(header, "Other")
	tb.row(header...)
	for _, c := range f.Cells {
		fr := c.Result.LimiterFracs()
		cells := []string{c.Workload, itoa(c.Window) + c.Issue.String()}
		covered := 0.0
		for _, l := range paperLimiters {
			cells = append(cells, pct(fr[l]))
			covered += fr[l]
		}
		cells = append(cells, pct(1-covered))
		tb.row(cells...)
	}
	return tb.String()
}

package experiments

import (
	"fmt"
	"sync"

	"mlpsim/internal/core"
)

// Sharded sweeps.
//
// Every exhibit is deterministic for a fixed Setup: the sweep points of
// the batch-th RunMLPsimBatch call are a pure function of (exhibit,
// seed, warmup, measure). Peer replicas exploit that: a coordinator
// never serializes points over the wire — it sends only (exhibit,
// batch ordinal, point indices), and the peer re-derives the identical
// points by running the same exhibit code up to that batch. Results are
// bit-identical by the engine's determinism, so shard placement is
// purely a scheduling decision.
//
// Two modes share one hook on Setup:
//
//   - Coordinator: ShardedBy(router) makes RunMLPsimBatch ask the
//     router which replica owns each point, fetch remote shards while
//     the local shard runs, and fall back to local execution for any
//     shard a peer cannot answer. The merged slice is indistinguishable
//     from a solo run.
//   - Executor: RunExhibitShard runs an exhibit with a capture hook
//     that executes only the requested indices of the requested batch,
//     then aborts the exhibit — a peer answering for batch 0 of a
//     multi-batch exhibit never pays for the later batches.
//
// A peer executing a shard never re-shards (the executor hook carries
// no router), so requests cannot recurse through the fleet.

// ShardRouter decides point placement for a sharded sweep and fetches
// remotely-owned results. Implementations (the daemon's peer registry)
// must be safe for concurrent use.
type ShardRouter interface {
	// Owner returns the id of the replica owning point `index` of the
	// batch-th RunMLPsimBatch call of the current exhibit run, or ""
	// when this replica owns the point itself.
	Owner(batch, index int) string
	// Fetch retrieves the results for the given point indices of the
	// batch-th call from the owning replica, in request order. An error
	// (or a short reply) makes the coordinator run those points
	// locally instead.
	Fetch(owner string, batch int, indices []int) ([]core.Result, error)
}

// shardRun is the per-exhibit-run sharding state: the batch ordinal
// counter plus exactly one of router (coordinator) or cap (executor).
// Setup is passed by value, so the mutable counter lives behind this
// pointer.
type shardRun struct {
	router ShardRouter
	batch  int
	cap    *shardCapture
}

// shardCapture is the executor hook: execute only `indices` of batch
// `want`, record the results, abort the exhibit.
type shardCapture struct {
	want     int
	indices  []int
	results  []core.Result // len == batchLen; only requested indices filled
	batchLen int
	captured bool
}

// shardAbort unwinds the exhibit once the wanted batch is captured.
type shardAbort struct{}

// ShardedBy returns a copy of s whose RunMLPsimBatch calls are sharded
// through r. Each returned Setup carries a fresh batch-ordinal counter,
// so use one per exhibit run.
func (s Setup) ShardedBy(r ShardRouter) Setup {
	if r != nil {
		s.shard = &shardRun{router: r}
	}
	return s
}

// RunMLPsimBatch runs every point and returns results in point order,
// bit-identical to calling RunMLPsim per point. Points that share an
// annotated stream are grouped and dispatched as gangs; Parallelism
// bounds concurrent gangs, not points. Under ShardedBy, remotely-owned
// points are fetched from peers instead of run (bit-identical either
// way); under RunExhibitShard only the requested shard executes.
func (s Setup) RunMLPsimBatch(points []MLPPoint) []core.Result {
	if sh := s.shard; sh != nil {
		batch := sh.batch
		sh.batch++
		if sh.cap != nil {
			return s.shardCaptureBatch(sh.cap, batch, points)
		}
		return s.runBatchSharded(sh.router, batch, points)
	}
	return s.runBatchLocal(points)
}

// runBatchSharded splits a batch by ownership: the local shard (plus
// anything the router declines) runs through the normal gang path while
// remote shards are fetched concurrently. Points carrying an OnEpoch
// callback never offload — funcs do not travel, and the caller's
// collector must observe the epochs.
func (s Setup) runBatchSharded(r ShardRouter, batch int, points []MLPPoint) []core.Result {
	results := make([]core.Result, len(points))
	local := make([]int, 0, len(points))
	remote := make(map[string][]int)
	var owners []string
	for i, p := range points {
		owner := ""
		if p.Config.OnEpoch == nil {
			owner = r.Owner(batch, i)
		}
		if owner == "" {
			local = append(local, i)
			continue
		}
		if _, seen := remote[owner]; !seen {
			owners = append(owners, owner)
		}
		remote[owner] = append(remote[owner], i)
	}

	runLocal := func(idxs []int) {
		if len(idxs) == 0 {
			return
		}
		sub := make([]MLPPoint, len(idxs))
		for k, i := range idxs {
			sub[k] = points[i]
		}
		rs := s.runBatchLocal(sub)
		for k, i := range idxs {
			results[i] = rs[k]
		}
	}

	// Fetch remote shards while the local shard computes. A peer that
	// errors or answers short hands its indices back for local
	// execution after the barrier — the sweep always completes.
	fallback := make([][]int, len(owners))
	var wg sync.WaitGroup
	for oi, owner := range owners {
		wg.Add(1)
		go func(oi int, owner string, idxs []int) {
			defer wg.Done()
			rs, err := r.Fetch(owner, batch, idxs)
			if err != nil || len(rs) != len(idxs) {
				fallback[oi] = idxs
				return
			}
			for k, i := range idxs {
				results[i] = rs[k]
				s.noteDepStats(rs[k])
			}
		}(oi, owner, remote[owner])
	}
	runLocal(local)
	wg.Wait()
	for _, idxs := range fallback {
		runLocal(idxs)
	}
	return results
}

// shardCaptureBatch is the executor side: batches before the wanted one
// run in full (later points may depend on them), the wanted batch runs
// only its requested indices and then aborts the exhibit.
func (s Setup) shardCaptureBatch(c *shardCapture, batch int, points []MLPPoint) []core.Result {
	if batch < c.want {
		return s.runBatchLocal(points)
	}
	if batch > c.want {
		// Unreachable in practice — capturing the wanted batch aborts —
		// but stay total: later batches yield zero results.
		return make([]core.Result, len(points))
	}
	c.batchLen = len(points)
	c.captured = true
	idxs := make([]int, 0, len(c.indices))
	for _, i := range c.indices {
		if i >= 0 && i < len(points) {
			idxs = append(idxs, i)
		}
	}
	sub := make([]MLPPoint, len(idxs))
	for k, i := range idxs {
		sub[k] = points[i]
	}
	rs := s.runBatchLocal(sub)
	c.results = make([]core.Result, len(points))
	for k, i := range idxs {
		c.results[i] = rs[k]
	}
	panic(shardAbort{})
}

// RunExhibitShard executes only the requested point indices of the
// batch-th RunMLPsimBatch call of the named exhibit, returning their
// results in request order plus the batch's total point count (the
// coordinator cross-validates it against its own batch). The exhibit is
// aborted as soon as the shard is captured. Errors are returned for
// unknown exhibits, an out-of-range batch or index, and cancelled
// contexts — the coordinator falls back to local execution on any of
// them.
func RunExhibitShard(s Setup, name string, batch int, indices []int) ([]core.Result, int, error) {
	if batch < 0 {
		return nil, 0, fmt.Errorf("experiments: negative batch %d", batch)
	}
	runner := Find(name)
	if runner == nil {
		return nil, 0, fmt.Errorf("experiments: unknown exhibit %q", name)
	}
	c := &shardCapture{want: batch, indices: append([]int(nil), indices...)}
	s.shard = &shardRun{cap: c}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(shardAbort); !ok {
					panic(r)
				}
			}
		}()
		runner.Run(s)
	}()
	if err := s.Context().Err(); err != nil {
		return nil, c.batchLen, err
	}
	if !c.captured {
		return nil, 0, fmt.Errorf("experiments: exhibit %q ran only %d batch(es); batch %d never happened",
			name, s.shard.batch, batch)
	}
	out := make([]core.Result, len(indices))
	for k, i := range indices {
		if i < 0 || i >= c.batchLen {
			return nil, c.batchLen, fmt.Errorf("experiments: point index %d out of range (batch %d has %d points)",
				i, batch, c.batchLen)
		}
		out[k] = c.results[i]
	}
	return out, c.batchLen, nil
}

package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count falls back to at most
// want, tolerating the runtime's own background churn.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count stuck at %d, want <= %d (worker pool leaked)", runtime.NumGoroutine(), want)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelMidSweepDrains is the fault-injection check of the sweep
// pool: cancelling the Setup's context mid-sweep must stop the dispatch
// of further points, let in-flight points finish, and fully drain the
// worker goroutines — never leak them, never deadlock.
func TestCancelMidSweepDrains(t *testing.T) {
	s := Quick(1)
	s.Parallelism = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Ctx = ctx

	before := runtime.NumGoroutine()
	var ran atomic.Int64
	var once sync.Once
	const points = 10_000
	s.forEach(points, func(i int) {
		once.Do(cancel) // fault injection: the first point kills the sweep
		ran.Add(1)
		time.Sleep(time.Millisecond)
	})

	if n := ran.Load(); n >= points {
		t.Fatalf("sweep ran all %d points despite cancellation", n)
	} else if n == 0 {
		t.Fatal("sweep ran no points at all")
	}
	waitGoroutines(t, before)
}

// TestCancelSequentialSweep covers the workers<=1 path of forEach.
func TestCancelSequentialSweep(t *testing.T) {
	s := Quick(1)
	s.Parallelism = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Ctx = ctx

	var ran int
	s.forEach(100, func(i int) {
		ran++
		if ran == 3 {
			cancel()
		}
	})
	if ran != 3 {
		t.Fatalf("sequential sweep ran %d points after cancellation at 3", ran)
	}
}

// TestNilContextRunsToCompletion pins the default: no context means the
// sweep is uncancellable and visits every point exactly once.
func TestNilContextRunsToCompletion(t *testing.T) {
	s := Quick(1)
	s.Parallelism = 3
	var ran atomic.Int64
	s.forEach(257, func(i int) { ran.Add(1) })
	if ran.Load() != 257 {
		t.Fatalf("sweep ran %d points, want 257", ran.Load())
	}
}

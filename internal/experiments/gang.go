package experiments

import (
	"sync/atomic"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
	"mlpsim/internal/core"
	"mlpsim/internal/workload"
)

// MLPPoint is one MLPsim sweep point: a workload, an engine
// configuration and an annotation configuration. Exhibits hand a slice
// of these to RunMLPsimBatch instead of looping over RunMLPsim, which
// lets points sharing an annotated stream run as a gang (one decode,
// one dependence-binding pass, K engines — see core.RunGang).
type MLPPoint struct {
	Workload workload.Config
	Config   core.Config
	Annot    annotate.Config
}

// GangStats accumulates gang occupancy counters across sweeps. Safe for
// concurrent use; the zero value is ready.
type GangStats struct {
	// Gangs counts multi-config gang dispatches.
	Gangs atomic.Uint64
	// Configs counts engine configs run inside those gangs.
	Configs atomic.Uint64
	// Solo counts points dispatched individually (singleton groups,
	// unkeyable annotation configs, or GangSize == 1).
	Solo atomic.Uint64
}

// RunMLPsimBatch runs every point and returns results in point order,
// bit-identical to calling RunMLPsim per point. Points that share an
// annotated stream are grouped and dispatched as gangs; Parallelism
// bounds concurrent gangs, not points.
func (s Setup) RunMLPsimBatch(points []MLPPoint) []core.Result {
	results := make([]core.Result, len(points))
	plan := s.gangPlan(points)
	s.forEach(len(plan), func(gi int) {
		idxs := plan[gi]
		if len(idxs) == 1 {
			p := points[idxs[0]]
			results[idxs[0]] = s.RunMLPsim(p.Workload, p.Config, p.Annot)
			if s.GangStats != nil {
				s.GangStats.Solo.Add(1)
			}
			return
		}
		p0 := points[idxs[0]]
		cfgs := make([]core.Config, len(idxs))
		for k, pi := range idxs {
			cfgs[k] = points[pi].Config
			cfgs[k].MaxInstructions = s.Measure
		}
		rs := core.RunGang(s.annotatedSource(p0.Workload, p0.Annot), cfgs)
		for k, pi := range idxs {
			results[pi] = rs[k]
		}
		if s.GangStats != nil {
			s.GangStats.Gangs.Add(1)
			s.GangStats.Configs.Add(uint64(len(idxs)))
		}
	})
	return results
}

// gangPlan partitions point indices into dispatch groups. Points group
// when they will see the same annotated stream: same workload and same
// canonical annotation key (atrace.ConfigKey), under this Setup's warmup
// and measure. Grouping does not require the cache — a gang over a
// direct annotator still shares its single annotation pass — but
// unkeyable configs (e.g. trained prefetcher instances) have private
// stream state and always run solo. Groups are then chunked: a fixed
// GangSize when set, otherwise just enough chunks to keep every worker
// busy (on one worker, a whole group is one gang).
func (s Setup) gangPlan(points []MLPPoint) [][]int {
	var plan [][]int
	if s.GangSize == 1 {
		for i := range points {
			plan = append(plan, []int{i})
		}
		return plan
	}
	type gkey struct {
		w     workload.Config
		annot string
	}
	var order []gkey
	groups := make(map[gkey][]int)
	for i, p := range points {
		akey, _, ok := atrace.ConfigKey(p.Annot)
		if !ok {
			plan = append(plan, []int{i})
			continue
		}
		k := gkey{p.Workload, akey}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		g := groups[k]
		size := s.GangSize
		if size <= 0 {
			per := (s.parallelism() + len(order) - 1) / len(order)
			size = (len(g) + per - 1) / per
		}
		for len(g) > 0 {
			n := size
			if n > len(g) {
				n = len(g)
			}
			plan = append(plan, g[:n:n])
			g = g[n:]
		}
	}
	return plan
}

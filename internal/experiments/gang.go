package experiments

import (
	"sync/atomic"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
	"mlpsim/internal/core"
	"mlpsim/internal/workload"
)

// MLPPoint is one MLPsim sweep point: a workload, an engine
// configuration and an annotation configuration. Exhibits hand a slice
// of these to RunMLPsimBatch instead of looping over RunMLPsim, which
// lets points sharing an annotated stream run as a gang (one decode,
// one dependence-binding pass, K engines — see core.RunGang).
type MLPPoint struct {
	Workload workload.Config
	Config   core.Config
	Annot    annotate.Config
}

// GangStats accumulates gang occupancy counters across sweeps. Safe for
// concurrent use; the zero value is ready.
type GangStats struct {
	// Gangs counts multi-config gang dispatches.
	Gangs atomic.Uint64
	// Configs counts engine configs run inside those gangs.
	Configs atomic.Uint64
	// Solo counts points dispatched individually (singleton groups,
	// unkeyable annotation configs, or GangSize == 1).
	Solo atomic.Uint64
	// SoAInsts and ScalarInsts split the instructions processed inside
	// gangs between the structure-of-arrays fast path and the scalar
	// fallback engines (see core.SoAEligible) — the divergence rate of
	// the sweep's config mix.
	SoAInsts    atomic.Uint64
	ScalarInsts atomic.Uint64
}

// runBatchLocal executes every point on this replica, in point order.
// It is the gang-dispatch engine behind RunMLPsimBatch (see shard.go
// for the sharded and shard-executor wrappers).
func (s Setup) runBatchLocal(points []MLPPoint) []core.Result {
	results := make([]core.Result, len(points))
	plan := s.gangPlan(points)
	s.forEach(len(plan), func(gi int) {
		idxs := plan[gi]
		if len(idxs) == 1 {
			p := points[idxs[0]]
			results[idxs[0]] = s.RunMLPsim(p.Workload, p.Config, p.Annot)
			if s.GangStats != nil {
				s.GangStats.Solo.Add(1)
			}
			return
		}
		p0 := points[idxs[0]]
		cfgs := make([]core.Config, len(idxs))
		for k, pi := range idxs {
			cfgs[k] = points[pi].Config
			cfgs[k].MaxInstructions = s.Measure
		}
		g := core.NewGang(s.annotatedSource(p0.Workload, p0.Annot), cfgs)
		rs := g.Run()
		for k, pi := range idxs {
			results[pi] = rs[k]
			s.noteDepStats(rs[k])
		}
		if s.GangStats != nil {
			s.GangStats.Gangs.Add(1)
			s.GangStats.Configs.Add(uint64(len(idxs)))
			gs := g.Stats()
			s.GangStats.SoAInsts.Add(gs.SoAInsts)
			s.GangStats.ScalarInsts.Add(gs.ScalarInsts)
		}
	})
	return results
}

// gangPlan partitions point indices into dispatch groups. Points group
// when they will see the same annotated stream: same workload and same
// canonical annotation key (atrace.ConfigKey), under this Setup's warmup
// and measure. Grouping does not require the cache — a gang over a
// direct annotator still shares its single annotation pass — but
// unkeyable configs (e.g. trained prefetcher instances) have private
// stream state and always run solo. Groups are then chunked: a fixed
// GangSize when set, otherwise just enough chunks to keep every worker
// busy (on one worker, a whole group is one gang).
func (s Setup) gangPlan(points []MLPPoint) [][]int {
	var plan [][]int
	if s.GangSize == 1 {
		for i := range points {
			plan = append(plan, []int{i})
		}
		return plan
	}
	type gkey struct {
		w     workload.Config
		annot string
	}
	var order []gkey
	groups := make(map[gkey][]int)
	for i, p := range points {
		akey, _, ok := atrace.ConfigKey(p.Annot)
		if !ok {
			plan = append(plan, []int{i})
			continue
		}
		k := gkey{p.Workload, akey}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		g := partitionSoAFirst(groups[k], points)
		size := s.GangSize
		if size <= 0 {
			per := (s.parallelism() + len(order) - 1) / len(order)
			size = (len(g) + per - 1) / per
		}
		for len(g) > 0 {
			n := size
			if n > len(g) {
				n = len(g)
			}
			plan = append(plan, g[:n:n])
			g = g[n:]
		}
	}
	return plan
}

// partitionSoAFirst stably reorders a stream-sharing group so points on
// the SoA fast path come first. Chunking the reordered group yields
// gangs that are mostly flag-uniform: the fast-path engines ride the
// ring without the wide decoded-instruction column, and the divergent
// configs concentrate in the trailing scalar gangs instead of forcing
// every gang onto the mixed path. Result order is unaffected — the plan
// carries original point indices. A group that is already uniform (the
// common sweep shape) is returned unchanged.
func partitionSoAFirst(g []int, points []MLPPoint) []int {
	split := 0
	for _, pi := range g {
		if core.SoAEligible(points[pi].Config) {
			split++
		}
	}
	if split == 0 || split == len(g) {
		return g
	}
	out := make([]int, 0, len(g))
	for _, pi := range g {
		if core.SoAEligible(points[pi].Config) {
			out = append(out, pi)
		}
	}
	for _, pi := range g {
		if !core.SoAEligible(points[pi].Config) {
			out = append(out, pi)
		}
	}
	return out
}

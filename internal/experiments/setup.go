// Package experiments reproduces every table and figure of the paper's
// evaluation (§2.2, §2.3, §5): one runner per exhibit, each returning
// typed rows plus a textual rendering in the paper's layout.
//
// All runners are deterministic for a fixed Setup: every simulator run
// regenerates and re-annotates the workload from its seed, so MLPsim and
// the cycle simulator always see identical miss and misprediction streams.
package experiments

import (
	"runtime"
	"sync"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/cyclesim"
	"mlpsim/internal/workload"
)

// Setup fixes the workloads and run lengths for a batch of experiments.
type Setup struct {
	// Seed drives workload generation.
	Seed int64
	// Warmup instructions train caches and predictors before measurement.
	Warmup int64
	// Measure instructions are simulated for statistics.
	Measure int64
	// Workloads are the traced applications, in the paper's order
	// (database, SPECjbb2000, SPECweb99).
	Workloads []workload.Config
	// Parallelism bounds concurrent simulator runs (0 = GOMAXPROCS).
	Parallelism int
}

// Default returns the full-size setup used by cmd/experiments: the paper
// uses 50M warm-up + 100M measured instructions; the synthetic workloads
// are stationary by construction, so 2M + 8M reproduces the same
// statistics (see the stability test).
func Default(seed int64) Setup {
	return Setup{
		Seed:      seed,
		Warmup:    2_000_000,
		Measure:   8_000_000,
		Workloads: workload.Presets(seed),
	}
}

// Quick returns a reduced setup for tests and benchmarks.
func Quick(seed int64) Setup {
	return Setup{
		Seed:      seed,
		Warmup:    300_000,
		Measure:   1_000_000,
		Workloads: workload.Presets(seed),
	}
}

// RunMLPsim generates, annotates and runs one MLPsim configuration.
func (s Setup) RunMLPsim(w workload.Config, cfg core.Config, acfg annotate.Config) core.Result {
	g := workload.MustNew(w)
	a := annotate.New(g, acfg)
	a.Warm(s.Warmup)
	cfg.MaxInstructions = s.Measure
	return core.NewEngine(a, cfg).Run()
}

// RunCycleSim generates, annotates and runs one cycle-simulator
// configuration.
func (s Setup) RunCycleSim(w workload.Config, cfg cyclesim.Config, acfg annotate.Config) cyclesim.Result {
	g := workload.MustNew(w)
	a := annotate.New(g, acfg)
	a.Warm(s.Warmup)
	cfg.MaxInstructions = s.Measure
	return cyclesim.New(a, cfg).Run()
}

// parallelism resolves the worker count.
func (s Setup) parallelism() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for i in [0, n) with bounded parallelism.
func (s Setup) forEach(n int, fn func(i int)) {
	workers := s.parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

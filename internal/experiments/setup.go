// Package experiments reproduces every table and figure of the paper's
// evaluation (§2.2, §2.3, §5): one runner per exhibit, each returning
// typed rows plus a textual rendering in the paper's layout.
//
// All runners are deterministic for a fixed Setup: the annotated stream
// for a given (workload, annotation config, warmup, measure) is derived
// purely from the workload seed, so MLPsim and the cycle simulator always
// see identical miss and misprediction streams. With Setup.Cache set the
// stream is annotated once and replayed for every engine configuration;
// without it every run regenerates and re-annotates from the seed. Both
// paths are bit-identical.
package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"mlpsim/internal/annotate"
	"mlpsim/internal/atrace"
	"mlpsim/internal/core"
	"mlpsim/internal/cyclesim"
	"mlpsim/internal/prefetch"
	"mlpsim/internal/smt"
	"mlpsim/internal/workload"
)

// Setup fixes the workloads and run lengths for a batch of experiments.
type Setup struct {
	// Seed drives workload generation.
	Seed int64
	// Warmup instructions train caches and predictors before measurement.
	Warmup int64
	// Measure instructions are simulated for statistics.
	Measure int64
	// Workloads are the traced applications, in the paper's order
	// (database, SPECjbb2000, SPECweb99).
	Workloads []workload.Config
	// Parallelism bounds concurrent simulator runs (0 = GOMAXPROCS).
	Parallelism int
	// Cache, when non-nil, shares one annotation pass per
	// (workload, annotation config, warmup, measure) across every engine
	// run. The annotated stream is identical for all engine
	// configurations, so results are bit-identical to the direct path
	// (see TestCachedPathMatchesDirect); nil re-annotates on every run.
	Cache *atrace.Cache
	// Ctx, when non-nil, cancels a sweep early: forEach stops handing out
	// new points once Ctx is done, lets in-flight runs finish, and drains
	// its worker pool. A cancelled sweep returns partial rows; callers
	// that care (e.g. the HTTP server) must check Ctx.Err() and discard
	// the result. Nil means run to completion.
	Ctx context.Context
	// GangSize controls how RunMLPsimBatch gangs sweep points that share
	// an annotated stream (same workload, annotation config, warmup and
	// measure): 0 batches each shared-stream group into just enough gangs
	// to keep every worker busy, 1 disables ganging (one engine per
	// dispatch, the pre-gang behaviour), and N >= 2 caps gangs at N
	// configs. Results are bit-identical across all settings; only
	// wall-clock changes. Parallelism bounds concurrent gangs, not
	// points.
	GangSize int
	// GangStats, when non-nil, accumulates gang occupancy counters
	// across sweeps (the daemon exports them on /metrics).
	GangStats *GangStats
	// DepStats, when non-nil, accumulates memory-dependence speculation
	// counters across every engine run (the daemon exports them on
	// /metrics).
	DepStats *DepStats
	// SMTSched, when non-nil, accumulates scheduled-SMT fetch-policy
	// counters across ext-smtsched sweeps (the daemon exports them on
	// /metrics).
	SMTSched *SMTSchedStats
	// shard, when non-nil, reroutes RunMLPsimBatch: coordinator mode
	// (set via ShardedBy) splits each batch across peer replicas;
	// executor mode (set by RunExhibitShard) runs only a requested
	// shard. See shard.go.
	shard *shardRun
}

// SMTSchedStats accumulates scheduled-SMT policy counters across
// sweeps. Safe for concurrent use; the zero value is ready.
type SMTSchedStats struct {
	// Runs counts scheduled policy replays; Switches the fetch grants
	// that moved between threads; Bursts the issued miss bursts;
	// Overlapped the bursts issued while another was in flight;
	// FloorPicks the mlp-aware anti-starvation overrides.
	Runs       atomic.Uint64
	Switches   atomic.Uint64
	Bursts     atomic.Uint64
	Overlapped atomic.Uint64
	FloorPicks atomic.Uint64
}

// noteSMTSched folds one scheduled run into the accumulated counters.
func (s Setup) noteSMTSched(r smt.SchedResult) {
	if s.SMTSched == nil {
		return
	}
	s.SMTSched.Runs.Add(1)
	s.SMTSched.Switches.Add(r.Switches)
	s.SMTSched.Bursts.Add(r.Bursts)
	s.SMTSched.Overlapped.Add(r.Overlapped)
	s.SMTSched.FloorPicks.Add(r.FloorPicks)
}

// DepStats accumulates memory-dependence speculation counters across
// sweeps. Safe for concurrent use; the zero value is ready.
type DepStats struct {
	// Mispredicts counts store-set dependence mispredictions: loads that
	// issued past a store they depended on and paid a recovery flush.
	Mispredicts atomic.Uint64
	// Serializes counts loads a non-oracle disambiguation mode needlessly
	// held behind stores they did not depend on.
	Serializes atomic.Uint64
}

// noteDepStats folds one engine result into the accumulated counters.
func (s Setup) noteDepStats(res core.Result) {
	if s.DepStats == nil {
		return
	}
	s.DepStats.Mispredicts.Add(res.DepMispredicts)
	s.DepStats.Serializes.Add(res.DepSerializes)
}

// Context returns the sweep's cancellation context, never nil.
func (s Setup) Context() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// Default returns the full-size setup used by cmd/experiments: the paper
// uses 50M warm-up + 100M measured instructions; the synthetic workloads
// are stationary by construction, so 2M + 8M reproduces the same
// statistics (see the stability test).
func Default(seed int64) Setup {
	return Setup{
		Seed:      seed,
		Warmup:    2_000_000,
		Measure:   8_000_000,
		Workloads: workload.Presets(seed),
		Cache:     atrace.NewCache(),
	}
}

// Quick returns a reduced setup for tests and benchmarks.
func Quick(seed int64) Setup {
	return Setup{
		Seed:      seed,
		Warmup:    300_000,
		Measure:   1_000_000,
		Workloads: workload.Presets(seed),
		Cache:     atrace.NewCache(),
	}
}

// directAnnotator builds and warms a fresh annotator for one run.
func (s Setup) directAnnotator(w workload.Config, acfg annotate.Config) *annotate.Annotator {
	a := annotate.New(workload.MustNew(w), acfg)
	a.Warm(s.Warmup)
	return a
}

// cachedStream returns the shared annotated trace for (w, acfg) when the
// configuration is cacheable, annotating at most once per key. The cache
// decides the capture strategy (monolithic or segmented-parallel via
// Cache.SetSegments); every strategy yields a bit-identical trace.
func (s Setup) cachedStream(w workload.Config, acfg annotate.Config) (atrace.Trace, bool) {
	if s.Cache == nil {
		return nil, false
	}
	akey, fresh, ok := atrace.ConfigKey(acfg)
	if !ok {
		return nil, false
	}
	key := atrace.Key{Workload: w, Annot: akey, Warmup: s.Warmup, Measure: s.Measure}
	st := s.Cache.GetTrace(key, atrace.BuildSpec{
		Warmup:  s.Warmup,
		Measure: s.Measure,
		NewAnnotator: func() *annotate.Annotator {
			return annotate.New(workload.MustNew(w), fresh())
		},
	})
	return st, true
}

// annotatedSource yields the instruction stream for one engine run:
// a zero-allocation replay of the cached trace when possible, otherwise
// a fresh annotator.
func (s Setup) annotatedSource(w workload.Config, acfg annotate.Config) core.AnnotatedSource {
	if st, ok := s.cachedStream(w, acfg); ok {
		return st.Source()
	}
	return s.directAnnotator(w, acfg)
}

// AnnotateStats returns the annotator statistics over the measurement
// window for (w, acfg), served from the shared cache when possible.
func (s Setup) AnnotateStats(w workload.Config, acfg annotate.Config) annotate.Stats {
	if st, ok := s.cachedStream(w, acfg); ok {
		return st.Stats()
	}
	a := s.directAnnotator(w, acfg)
	a.Collect(s.Measure)
	return a.Stats()
}

// PrefetchStats returns the instruction- and data-prefetcher statistics
// for (w, acfg). When the configuration is cacheable the stats are served
// from the shared stream's metadata (the prefetchers ran once, inside the
// annotation pass that built the stream); otherwise — untracked prefetcher
// types, already-trained instances, or no cache — the caller's instances
// carry the statistics themselves, trained by the direct run. The two
// dispatch arms are mutually exclusive by construction: a trained instance
// makes atrace.ConfigKey refuse the key, which is also what forces
// RunMLPsim down the direct path. Zero stats are returned for absent
// prefetchers.
func (s Setup) PrefetchStats(w workload.Config, acfg annotate.Config) (ipf, dpf prefetch.Stats) {
	if st, ok := s.cachedStream(w, acfg); ok {
		ipf, _ = st.IPrefetchStats()
		dpf, _ = st.DPrefetchStats()
		return ipf, dpf
	}
	if p := acfg.IPrefetch; p != nil {
		ipf = p.Stats()
	}
	if p := acfg.DPrefetch; p != nil {
		dpf = p.Stats()
	}
	return ipf, dpf
}

// RunMLPsim generates, annotates and runs one MLPsim configuration.
func (s Setup) RunMLPsim(w workload.Config, cfg core.Config, acfg annotate.Config) core.Result {
	cfg.MaxInstructions = s.Measure
	res := core.NewEngine(s.annotatedSource(w, acfg), cfg).Run()
	s.noteDepStats(res)
	return res
}

// RunCycleSim generates, annotates and runs one cycle-simulator
// configuration.
func (s Setup) RunCycleSim(w workload.Config, cfg cyclesim.Config, acfg annotate.Config) cyclesim.Result {
	cfg.MaxInstructions = s.Measure
	return cyclesim.New(s.annotatedSource(w, acfg), cfg).Run()
}

// parallelism resolves the worker count.
func (s Setup) parallelism() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for i in [0, n) with bounded parallelism. When the
// Setup carries a context, cancellation stops the dispatch of further
// points; runs already in flight complete and the worker pool always
// drains before forEach returns, so a cancelled sweep never leaks
// goroutines (see TestCancelMidSweepDrains).
func (s Setup) forEach(n int, fn func(i int)) {
	done := s.Context().Done()
	workers := s.parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return
			default:
			}
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
}

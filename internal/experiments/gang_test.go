package experiments

import (
	"math/rand"
	"reflect"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/isa"
	"mlpsim/internal/vpred"
)

// TestGangMatchesSequential is the satellite property test of this
// repo's gang contract: a random vector of engine configurations (mixed
// window sizes, issue policies, runahead and value prediction on or
// off) over the three paper workloads at Quick scale must produce
// Results bit-identical to one-at-a-time runs. (MaxInstructions
// variation across gang members is pinned separately at the core layer
// by TestRunGangMatchesSequentialRandom — the experiments layer always
// runs points to Setup.Measure.) It runs under -race in `make test`,
// which also exercises concurrent gang dispatch through forEach.
func TestGangMatchesSequential(t *testing.T) {
	s := Quick(1)
	s.Measure = 400_000 // enough stream for every limiter to fire; keeps -race affordable
	s.Parallelism = 4
	s.GangStats = &GangStats{}

	rng := rand.New(rand.NewSource(17))
	sizes := []int{16, 64, 256}
	issues := []core.IssueConfig{core.ConfigA, core.ConfigB, core.ConfigC, core.ConfigD, core.ConfigE}
	var points []MLPPoint
	for _, w := range s.Workloads {
		for i := 0; i < 5; i++ {
			cfg := core.Default().WithWindow(sizes[rng.Intn(len(sizes))]).WithIssue(issues[rng.Intn(len(issues))])
			acfg := annotate.Config{}
			if rng.Intn(3) == 0 {
				cfg.Runahead, cfg.MaxRunahead = true, 512
			}
			if rng.Intn(3) == 0 {
				cfg.ValuePredict = true
				acfg.Value = vpred.NewLastValue(vpred.DefaultEntries)
			}
			points = append(points, MLPPoint{Workload: w, Config: cfg, Annot: acfg})
		}
	}

	seq := s
	seq.GangSize = 1
	seq.GangStats = nil
	want := seq.RunMLPsimBatch(points)

	for _, gangSize := range []int{0, 3} {
		s.GangSize = gangSize
		got := s.RunMLPsimBatch(points)
		for i := range points {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("GangSize=%d point %d (%s, %s): gang result differs from sequential\ngang: %+v\nsolo: %+v",
					gangSize, i, points[i].Workload.Name, points[i].Config.Name(), got[i], want[i])
			}
		}
	}

	if gangs := s.GangStats.Gangs.Load(); gangs == 0 {
		t.Error("GangStats recorded no gang dispatches; expected the shared-stream groups to gang")
	}
	if cfgs := s.GangStats.Configs.Load(); cfgs < 2 {
		t.Errorf("GangStats.Configs = %d, want >= 2", cfgs)
	}
}

// TestGangPlanShapes pins the dispatch planner: GangSize 1 never gangs,
// a fixed size chunks exactly, and unkeyable annotation configs always
// run solo.
func TestGangPlanShapes(t *testing.T) {
	s := Quick(1)
	w := s.Workloads[0]
	mk := func(n int) []MLPPoint {
		pts := make([]MLPPoint, n)
		for i := range pts {
			pts[i] = MLPPoint{Workload: w, Config: core.Default(), Annot: annotate.Config{}}
		}
		return pts
	}

	s.GangSize = 1
	if plan := s.gangPlan(mk(5)); len(plan) != 5 {
		t.Errorf("GangSize=1 plan has %d groups, want 5 singletons", len(plan))
	}

	s.GangSize = 4
	plan := s.gangPlan(mk(10))
	if len(plan) != 3 || len(plan[0]) != 4 || len(plan[1]) != 4 || len(plan[2]) != 2 {
		t.Errorf("GangSize=4 over 10 points: plan shape %v, want [4 4 2]", planShape(plan))
	}

	// A trained value predictor is unkeyable: its points must never gang.
	vp := vpred.NewLastValue(vpred.DefaultEntries)
	var in isa.Inst
	in.Value = 42
	vpred.Observe(vp, &in) // train it
	s.GangSize = 0
	pts := mk(3)
	for i := range pts {
		pts[i].Annot.Value = vp
	}
	for i, g := range s.gangPlan(pts) {
		if len(g) != 1 {
			t.Errorf("unkeyable group %d has %d members, want solo dispatch", i, len(g))
		}
	}
}

func planShape(plan [][]int) []int {
	shape := make([]int, len(plan))
	for i, g := range plan {
		shape[i] = len(g)
	}
	return shape
}

package experiments

import (
	"strings"
	"testing"

	"mlpsim/internal/smt"
)

// TestExtSMTSchedBracketsBounds is the exhibit's headline property,
// asserted per sweep point: every policy's aggregate MLP lands inside
// its point's [CombinedLower, CombinedUpper] bracket, the bounds are
// identical across the point's policies (they share one trace
// pre-pass), and fairness shares are sane. The per-policy counters must
// fold into Setup.SMTSched.
func TestExtSMTSchedBracketsBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thread passes")
	}
	s := Quick(51)
	s.Warmup = 60_000
	s.Measure = 240_000
	s.SMTSched = &SMTSchedStats{}
	res := RunExtSMTSched(s)

	pols := smt.PolicyNames()
	wantRows := 2 * len(ExtSMTSchedThreads) * len(pols)
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}

	const eps = 1e-9
	var sumSwitches, sumBursts, sumOverlapped, sumFloor uint64
	for i, r := range res.Rows {
		if r.AggMLP < r.CombinedLower-eps || r.AggMLP > r.CombinedUpper+eps {
			t.Errorf("%s K=%d %s: AggMLP %.4f outside [%.4f, %.4f]",
				r.Mix, r.Threads, r.Policy, r.AggMLP, r.CombinedLower, r.CombinedUpper)
		}
		if r.Bursts == 0 || r.AggMLP <= 0 {
			t.Errorf("%s K=%d %s: empty point (%d bursts, AggMLP %.4f)",
				r.Mix, r.Threads, r.Policy, r.Bursts, r.AggMLP)
		}
		if r.MinShare < 0 || r.MinShare > r.MaxShare || r.MaxShare > 1+eps {
			t.Errorf("%s K=%d %s: shares [%.4f, %.4f] implausible",
				r.Mix, r.Threads, r.Policy, r.MinShare, r.MaxShare)
		}
		if want := pols[i%len(pols)]; r.Policy != want {
			t.Errorf("row %d policy %q, want %q (rows must be in policy order)", i, r.Policy, want)
		}
		// Policies at the same point share one trace pre-pass: identical
		// bounds.
		first := res.Rows[i-i%len(pols)]
		if r.CombinedLower != first.CombinedLower || r.CombinedUpper != first.CombinedUpper {
			t.Errorf("%s K=%d %s: bounds differ from the point's first policy", r.Mix, r.Threads, r.Policy)
		}
		sumSwitches += r.Switches
		sumBursts += r.Bursts
		sumOverlapped += r.Overlapped
		sumFloor += r.FloorPicks
	}

	if got := s.SMTSched.Runs.Load(); got != uint64(wantRows) {
		t.Errorf("SMTSched.Runs = %d, want %d", got, wantRows)
	}
	if s.SMTSched.Switches.Load() != sumSwitches || s.SMTSched.Bursts.Load() != sumBursts ||
		s.SMTSched.Overlapped.Load() != sumOverlapped || s.SMTSched.FloorPicks.Load() != sumFloor {
		t.Errorf("SMTSched counters disagree with row sums")
	}
	// K >= 2 with real workloads must overlap at least one burst
	// somewhere in the sweep — otherwise the scheduler never interleaved.
	if sumOverlapped == 0 {
		t.Error("no overlapped bursts across the whole sweep")
	}

	out := res.String()
	for _, want := range []string{"SMT Fetch Scheduling", "round-robin", "icount", "mlp-aware", "hetero"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

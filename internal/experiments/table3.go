package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/cyclesim"
	"mlpsim/internal/workload"
)

// Table3Row is one (workload, window, config) validation cell: the cycle
// simulator's MLP at three off-chip latencies against MLPsim's single
// timing-free number.
type Table3Row struct {
	Workload     string
	Window       int
	Issue        core.IssueConfig
	CycleSim200  float64
	CycleSim500  float64
	CycleSim1000 float64
	MLPsim       float64
}

// Table3 reproduces Table 3: MLPsim vs cycle-accurate simulator.
type Table3 struct {
	Rows []Table3Row
}

// Table3Latencies are the off-chip latencies the paper validates against.
var Table3Latencies = []int{200, 500, 1000}

// RunTable3 executes the validation matrix: windows 32/64/128 and issue
// configurations A/B/C (the cycle simulator cannot model out-of-order
// branches, exactly like the paper's).
func RunTable3(s Setup) Table3 {
	windows := []int{32, 64, 128}
	configs := []core.IssueConfig{core.ConfigA, core.ConfigB, core.ConfigC}

	type job struct {
		w      workload.Config
		window int
		issue  core.IssueConfig
	}
	var jobs []job
	for _, w := range s.Workloads {
		for _, win := range windows {
			for _, ic := range configs {
				jobs = append(jobs, job{w, win, ic})
			}
		}
	}
	rows := make([]Table3Row, len(jobs))
	s.forEach(len(jobs), func(i int) {
		j := jobs[i]
		row := Table3Row{Workload: j.w.Name, Window: j.window, Issue: j.issue}
		mres := s.RunMLPsim(j.w, core.Default().WithWindow(j.window).WithIssue(j.issue),
			annotate.Config{})
		row.MLPsim = mres.MLP()
		for _, pen := range Table3Latencies {
			cfg := cyclesim.Default(pen)
			cfg.IssueWindow, cfg.ROB = j.window, j.window
			cfg.Issue = j.issue
			cres := s.RunCycleSim(j.w, cfg, annotate.Config{})
			switch pen {
			case 200:
				row.CycleSim200 = cres.MLP
			case 500:
				row.CycleSim500 = cres.MLP
			case 1000:
				row.CycleSim1000 = cres.MLP
			}
		}
		rows[i] = row
	})
	return Table3{Rows: rows}
}

// String renders the validation matrix.
func (t Table3) String() string {
	tb := newTable("Table 3: Comparison of MLP numbers by MLPsim and Cycle-Accurate Simulator")
	tb.row("Workload", "ROB/IW", "Config", "CycleSim 200", "CycleSim 500", "CycleSim 1000", "MLPsim")
	for _, r := range t.Rows {
		tb.rowf("%s\t%d\t%s\t%s\t%s\t%s\t%s",
			r.Workload, r.Window, r.Issue, f2(r.CycleSim200), f2(r.CycleSim500),
			f2(r.CycleSim1000), f2(r.MLPsim))
	}
	return tb.String()
}

// MaxRelError returns the largest |MLPsim − CycleSim(latency)| /
// CycleSim(latency) over all rows, used by tests to assert the paper's
// convergence claim.
func (t Table3) MaxRelError(latency int) float64 {
	max := 0.0
	for _, r := range t.Rows {
		var c float64
		switch latency {
		case 200:
			c = r.CycleSim200
		case 500:
			c = r.CycleSim500
		default:
			c = r.CycleSim1000
		}
		if c == 0 {
			continue
		}
		rel := (r.MLPsim - c) / c
		if rel < 0 {
			rel = -rel
		}
		if rel > max {
			max = rel
		}
	}
	return max
}

package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/vpred"
)

// Table6Row holds the missing-load value predictor accuracy for one
// workload.
type Table6Row struct {
	Workload  string
	Correct   float64
	Wrong     float64
	NoPredict float64
}

// Table6 reproduces Table 6: value predictor statistics (16K-entry
// last-value predictor consulted only for missing loads).
type Table6 struct {
	Rows []Table6Row
}

// RunTable6 executes the experiment.
func RunTable6(s Setup) Table6 {
	rows := make([]Table6Row, len(s.Workloads))
	s.forEach(len(s.Workloads), func(i int) {
		w := s.Workloads[i]
		acfg := annotate.Config{Value: vpred.NewLastValue(vpred.DefaultEntries)}
		st := s.AnnotateStats(w, acfg).VP
		c, wr, np := st.Fractions()
		rows[i] = Table6Row{Workload: w.Name, Correct: c, Wrong: wr, NoPredict: np}
	})
	return Table6{Rows: rows}
}

// String renders the table.
func (t Table6) String() string {
	tb := newTable("Table 6: Value Predictor Statistics (missing loads)")
	tb.row("Benchmark", "Correct", "Wrong", "No Predict")
	for _, r := range t.Rows {
		tb.rowf("%s\t%s\t%s\t%s", r.Workload, pct(r.Correct), pct(r.Wrong), pct(r.NoPredict))
	}
	return tb.String()
}

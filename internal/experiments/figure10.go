package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
)

// Figure10Row holds the limit-study MLPs for one workload on one baseline
// (§5.6): perfect instruction prefetching, perfect value prediction,
// perfect branch prediction, and perfect VP+BP together.
type Figure10Row struct {
	Workload string
	Baseline string // "RAE" or "64D/256" (no RAE)
	Base     float64
	PerfI    float64
	PerfVP   float64
	PerfBP   float64
	PerfVPBP float64
}

// Figure10 reproduces Figure 10: the limit study.
type Figure10 struct {
	Rows []Figure10Row
}

// RunFigure10 executes the experiment.
func RunFigure10(s Setup) Figure10 {
	baselines := []struct {
		name string
		cfg  core.Config
	}{
		{"RAE", core.Default().WithIssue(core.ConfigD).WithRunahead()},
		{"64D/256", core.Default().WithIssue(core.ConfigD).WithROB(256)},
	}
	variants := []func(*core.Config){
		func(*core.Config) {},
		func(c *core.Config) { c.PerfectIFetch = true },
		func(c *core.Config) { c.PerfectVP = true },
		func(c *core.Config) { c.PerfectBP = true },
		func(c *core.Config) { c.PerfectVP = true; c.PerfectBP = true },
	}

	type job struct{ wi, bi, vi int }
	var jobs []job
	for wi := range s.Workloads {
		for bi := range baselines {
			for vi := range variants {
				jobs = append(jobs, job{wi, bi, vi})
			}
		}
	}
	points := make([]MLPPoint, len(jobs))
	for i, j := range jobs {
		cfg := baselines[j.bi].cfg
		variants[j.vi](&cfg)
		points[i] = MLPPoint{Workload: s.Workloads[j.wi], Config: cfg, Annot: annotate.Config{}}
	}
	results := s.RunMLPsimBatch(points)
	mlps := make([]float64, len(jobs))
	for i, res := range results {
		mlps[i] = res.MLP()
	}

	var rows []Figure10Row
	for i := 0; i < len(jobs); i += len(variants) {
		j := jobs[i]
		rows = append(rows, Figure10Row{
			Workload: s.Workloads[j.wi].Name,
			Baseline: baselines[j.bi].name,
			Base:     mlps[i],
			PerfI:    mlps[i+1],
			PerfVP:   mlps[i+2],
			PerfBP:   mlps[i+3],
			PerfVPBP: mlps[i+4],
		})
	}
	return Figure10{Rows: rows}
}

// String renders the limit study.
func (f Figure10) String() string {
	tb := newTable("Figure 10: Limit Study — Perfect I-Fetch / Value Prediction / Branch Prediction (MLP)")
	tb.row("Workload", "Baseline", "base", ".perfI", ".perfVP", ".perfBP", ".perfVP.perfBP")
	for _, r := range f.Rows {
		tb.rowf("%s\t%s\t%s\t%s\t%s\t%s\t%s",
			r.Workload, r.Baseline, f2(r.Base), f2(r.PerfI), f2(r.PerfVP), f2(r.PerfBP), f2(r.PerfVPBP))
	}
	return tb.String() + "\n" + f.Chart()
}

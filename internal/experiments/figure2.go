package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/stats"
)

// Figure2Series is the clustering curve of one workload: the cumulative
// probability of encountering another off-chip access within N dynamic
// instructions, observed vs the uniform (geometric) assumption.
type Figure2Series struct {
	Workload     string
	MeanDistance float64
	Points       []int64
	Observed     []float64
	Uniform      []float64
}

// Figure2 reproduces Figure 2: clustering of misses.
type Figure2 struct {
	Series []Figure2Series
}

// RunFigure2 executes the experiment.
func RunFigure2(s Setup) Figure2 {
	points := stats.LogSpacedPoints(4096)
	series := make([]Figure2Series, len(s.Workloads))
	s.forEach(len(s.Workloads), func(i int) {
		w := s.Workloads[i]
		src := s.annotatedSource(w, annotate.Config{})
		var rec stats.DistanceRecorder
		for n := int64(0); n < s.Measure; n++ {
			in, ok := src.Next()
			if !ok {
				break
			}
			if in.OffChip() {
				rec.Observe(in.Index)
			}
		}
		series[i] = Figure2Series{
			Workload:     w.Name,
			MeanDistance: rec.MeanDistance(),
			Points:       points,
			Observed:     rec.CDFAt(points),
			Uniform:      stats.UniformCDFAt(rec.MeanDistance(), points),
		}
	})
	return Figure2{Series: series}
}

// String renders the curves as a table of CDF values.
func (f Figure2) String() string {
	tb := newTable("Figure 2: Clustering of Misses (CDF of inter-miss distance)")
	header := []string{"Within N insts"}
	for _, se := range f.Series {
		header = append(header, se.Workload+" obs", se.Workload+" unif")
	}
	tb.row(header...)
	if len(f.Series) == 0 {
		return tb.String()
	}
	for pi, p := range f.Series[0].Points {
		cells := []string{f3(float64(p))}
		for _, se := range f.Series {
			cells = append(cells, f3(se.Observed[pi]), f3(se.Uniform[pi]))
		}
		tb.row(cells...)
	}
	tb.rowf("mean inter-miss distance:\t%s", func() string {
		out := ""
		for _, se := range f.Series {
			out += se.Workload + "=" + f2(se.MeanDistance) + "  "
		}
		return out
	}())
	return tb.String() + "\n" + f.Chart()
}

package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mlpsim/internal/core"
	"mlpsim/internal/workload"
)

// peerRouter shards points across a fake two-replica fleet: odd indices
// belong to "peer", which answers by re-deriving the points through
// RunExhibitShard on its own Setup — the real peer protocol minus HTTP.
type peerRouter struct {
	exhibit string
	peer    Setup
	mine    func(batch, index int) bool

	mu      sync.Mutex
	fetches int
	points  int
	fail    bool
	short   bool
}

func (r *peerRouter) Owner(batch, index int) string {
	if r.mine(batch, index) {
		return ""
	}
	return "peer"
}

func (r *peerRouter) Fetch(owner string, batch int, indices []int) ([]core.Result, error) {
	r.mu.Lock()
	r.fetches++
	r.points += len(indices)
	fail, short := r.fail, r.short
	r.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("peer down")
	}
	rs, _, err := RunExhibitShard(r.peer, r.exhibit, batch, indices)
	if err != nil {
		return nil, err
	}
	if short && len(rs) > 0 {
		rs = rs[:len(rs)-1]
	}
	return rs, nil
}

// TestShardedExhibitMatchesSolo is the heart of the peer protocol: an
// exhibit whose odd-indexed points are computed by a separate replica —
// which re-derives them from (exhibit, batch, indices) alone — renders
// byte-identical to the solo run.
func TestShardedExhibitMatchesSolo(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhibit runs")
	}
	solo := tiny(11, workload.Database(11))
	want := RunFigure4(solo).String()

	r := &peerRouter{
		exhibit: "figure4",
		peer:    tiny(11, workload.Database(11)),
		mine:    func(batch, index int) bool { return index%2 == 0 },
	}
	got := RunFigure4(tiny(11, workload.Database(11)).ShardedBy(r)).String()
	if got != want {
		t.Errorf("sharded figure4 differs from solo:\n--- solo ---\n%s\n--- sharded ---\n%s", want, got)
	}
	if r.fetches == 0 || r.points == 0 {
		t.Fatalf("router fetched %d shards / %d points; the sweep never offloaded", r.fetches, r.points)
	}
}

// TestShardedFleetOwnsEverything drives the other bound: the
// coordinator owns zero points, every result arrives over Fetch.
func TestShardedFleetOwnsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhibit runs")
	}
	solo := tiny(12, workload.Web(12))
	want := RunTable5(solo).String()
	r := &peerRouter{
		exhibit: "table5",
		peer:    tiny(12, workload.Web(12)),
		mine:    func(batch, index int) bool { return false },
	}
	got := RunTable5(tiny(12, workload.Web(12)).ShardedBy(r)).String()
	if got != want {
		t.Errorf("fully-offloaded table5 differs from solo:\n%s\nvs\n%s", want, got)
	}
}

// TestShardFallbackOnPeerFailure: a dead peer (error) and a lying peer
// (short reply) both degrade to local execution with identical output.
func TestShardFallbackOnPeerFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhibit runs")
	}
	solo := tiny(13, workload.Database(13))
	want := RunTable5(solo).String()
	for _, mode := range []string{"fail", "short"} {
		r := &peerRouter{
			exhibit: "table5",
			peer:    tiny(13, workload.Database(13)),
			mine:    func(batch, index int) bool { return index%2 == 0 },
			fail:    mode == "fail",
			short:   mode == "short",
		}
		got := RunTable5(tiny(13, workload.Database(13)).ShardedBy(r)).String()
		if got != want {
			t.Errorf("%s-mode fallback differs from solo:\n%s\nvs\n%s", mode, want, got)
		}
		if r.fetches == 0 {
			t.Errorf("%s mode: fetch never attempted", mode)
		}
	}
}

// recordingRouter owns everything and remembers which points it was
// asked about; Fetch answers from a closed-over oracle.
type recordingRouter struct {
	mu     sync.Mutex
	asked  map[int]bool
	oracle map[int]core.Result
}

func (r *recordingRouter) Owner(batch, index int) string {
	r.mu.Lock()
	r.asked[index] = true
	r.mu.Unlock()
	return "peer"
}

func (r *recordingRouter) Fetch(owner string, batch int, indices []int) ([]core.Result, error) {
	out := make([]core.Result, len(indices))
	for k, i := range indices {
		out[k] = r.oracle[i]
	}
	return out, nil
}

// TestShardOnEpochNeverOffloads: a point carrying an epoch callback is
// never even offered to the router — funcs do not travel, and the
// caller's collector must see the epochs locally.
func TestShardOnEpochNeverOffloads(t *testing.T) {
	s := tiny(14, workload.Database(14))
	s.Measure = 200_000
	epochs := 0
	points := []MLPPoint{
		{Workload: s.Workloads[0], Config: core.Default()},
		{Workload: s.Workloads[0], Config: core.Default()},
	}
	points[1].Config.OnEpoch = func(core.Epoch) { epochs++ }
	s.Parallelism = 1 // the callback increments without a lock

	r := &recordingRouter{asked: make(map[int]bool), oracle: map[int]core.Result{
		0: {Instructions: 123},
	}}
	rs := s.ShardedBy(r).RunMLPsimBatch(points)
	if r.asked[1] {
		t.Error("router was offered a point with an OnEpoch callback")
	}
	if !r.asked[0] {
		t.Error("router never saw the plain point")
	}
	if rs[0].Instructions != 123 {
		t.Errorf("offloaded point got %+v, want the fetched oracle result", rs[0])
	}
	if epochs == 0 {
		t.Error("local OnEpoch callback never fired")
	}
	if rs[1].Instructions != 200_000 {
		t.Errorf("local point ran %d instructions, want 200000", rs[1].Instructions)
	}
}

// TestRunExhibitShardErrors pins the executor's failure envelope — each
// of these makes the coordinator fall back to local execution.
func TestRunExhibitShardErrors(t *testing.T) {
	s := tiny(15, workload.Database(15))
	s.Measure = 200_000
	if _, _, err := RunExhibitShard(s, "no-such-exhibit", 0, []int{0}); err == nil ||
		!strings.Contains(err.Error(), "unknown exhibit") {
		t.Errorf("unknown exhibit: err = %v", err)
	}
	if _, _, err := RunExhibitShard(s, "table5", -1, []int{0}); err == nil ||
		!strings.Contains(err.Error(), "negative batch") {
		t.Errorf("negative batch: err = %v", err)
	}
	if _, _, err := RunExhibitShard(s, "table5", 99, []int{0}); err == nil ||
		!strings.Contains(err.Error(), "never happened") {
		t.Errorf("batch past the end: err = %v", err)
	}
	if _, n, err := RunExhibitShard(s, "table5", 0, []int{0, 10_000}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("index out of range: err = %v", err)
	} else if n <= 0 {
		t.Errorf("batch length %d alongside the range error, want the real count", n)
	}
}

// TestRunExhibitShardMatchesBatch: the executor's answers for a shard
// equal the corresponding slots of a plain local batch, and the
// reported batch length matches.
func TestRunExhibitShardMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhibit runs")
	}
	s := tiny(16, workload.Database(16))
	full := RunTable5(s)
	// Re-derive table5's batch locally for the oracle: its points are the
	// in-order configs per workload; easiest oracle is a second executor
	// answering for ALL indices.
	n := -1
	probe, bl, err := RunExhibitShard(tiny(16, workload.Database(16)), "table5", 0, []int{0})
	if err != nil {
		t.Fatalf("probe shard: %v", err)
	}
	n = bl
	if len(probe) != 1 {
		t.Fatalf("probe returned %d results, want 1", len(probe))
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	rs, bl2, err := RunExhibitShard(tiny(16, workload.Database(16)), "table5", 0, all)
	if err != nil || bl2 != n {
		t.Fatalf("full shard: err=%v len=%d want %d", err, bl2, n)
	}
	if !reflect.DeepEqual(rs[0], probe[0]) {
		t.Error("executor results differ between shard requests (non-deterministic?)")
	}
	_ = full
}

// TestShardCounterPerRun: ShardedBy hands out a fresh batch counter, so
// two sequential exhibit runs both start at batch 0.
func TestShardCounterPerRun(t *testing.T) {
	s := tiny(17, workload.Database(17))
	s.Measure = 200_000
	var batches []int
	r := &funcRouter{owner: func(batch, index int) string {
		batches = append(batches, batch)
		return ""
	}}
	p := []MLPPoint{{Workload: s.Workloads[0], Config: core.Default()}}
	for run := 0; run < 2; run++ {
		sh := s.ShardedBy(r)
		sh.RunMLPsimBatch(p)
		sh.RunMLPsimBatch(p)
	}
	want := []int{0, 1, 0, 1}
	if len(batches) != len(want) {
		t.Fatalf("owner saw batches %v, want %v", batches, want)
	}
	for i := range want {
		if batches[i] != want[i] {
			t.Fatalf("owner saw batches %v, want %v", batches, want)
		}
	}
}

type funcRouter struct {
	owner func(batch, index int) string
}

func (r *funcRouter) Owner(batch, index int) string { return r.owner(batch, index) }
func (r *funcRouter) Fetch(string, int, []int) ([]core.Result, error) {
	return nil, fmt.Errorf("unexpected fetch")
}

package experiments

import (
	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
)

// Figure8Row compares runahead execution against two conventional
// configurations for one workload (§5.4.1).
type Figure8Row struct {
	Workload string
	// Conv64 is the 64-entry IW / 64-entry ROB configuration D.
	Conv64 float64
	// Conv256 is the 64-entry IW / 256-entry ROB configuration D.
	Conv256 float64
	// RAE is runahead execution (max distance 2048).
	RAE float64
}

// Figure8 reproduces Figure 8: impact of runahead execution on MLP.
type Figure8 struct {
	Rows []Figure8Row
}

// RunFigure8 executes the experiment.
func RunFigure8(s Setup) Figure8 {
	rows := make([]Figure8Row, len(s.Workloads))
	for i, w := range s.Workloads {
		rows[i].Workload = w.Name
	}
	points := make([]MLPPoint, len(s.Workloads)*3)
	for i := range points {
		wi, which := i/3, i%3
		var cfg core.Config
		switch which {
		case 0:
			cfg = core.Default().WithIssue(core.ConfigD)
		case 1:
			cfg = core.Default().WithIssue(core.ConfigD).WithROB(256)
		default:
			cfg = core.Default().WithIssue(core.ConfigD).WithRunahead()
		}
		points[i] = MLPPoint{Workload: s.Workloads[wi], Config: cfg, Annot: annotate.Config{}}
	}
	results := s.RunMLPsimBatch(points)
	for i, res := range results {
		switch wi := i / 3; i % 3 {
		case 0:
			rows[wi].Conv64 = res.MLP()
		case 1:
			rows[wi].Conv256 = res.MLP()
		default:
			rows[wi].RAE = res.MLP()
		}
	}
	return Figure8{Rows: rows}
}

// String renders the comparison with the paper's improvement
// percentages.
func (f Figure8) String() string {
	tb := newTable("Figure 8: Impact of Runahead Execution (MLP)")
	tb.row("Workload", "64D/64", "64D/256", "RAE", "RAE vs 64D/64", "RAE vs 64D/256")
	for _, r := range f.Rows {
		tb.rowf("%s\t%s\t%s\t%s\t+%s\t+%s",
			r.Workload, f2(r.Conv64), f2(r.Conv256), f2(r.RAE),
			pct(r.RAE/r.Conv64-1), pct(r.RAE/r.Conv256-1))
	}
	return tb.String() + "\n" + f.Chart()
}

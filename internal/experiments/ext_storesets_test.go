package experiments

import (
	"reflect"
	"strings"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/storeset"
	"mlpsim/internal/workload"
)

// TestExtStoreSetsBracketsOracle is the exhibit's headline property: for
// every workload and every predictor geometry, the store-set MLP lies
// between the always-conservative lower bound and the oracle upper
// bound — and the counters attribute the gap.
func TestExtStoreSetsBracketsOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	s := tiny(45)
	s.Measure = 400_000
	s.DepStats = &DepStats{}
	res := RunExtStoreSets(s)
	wantRows := len(s.Workloads) * (2 + len(ExtStoreSetsSSITs)*len(ExtStoreSetsConfs))
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}

	byWL := map[string]map[string][]ExtStoreSetsRow{}
	var sumMisp, sumSer uint64
	for _, r := range res.Rows {
		if byWL[r.Workload] == nil {
			byWL[r.Workload] = map[string][]ExtStoreSetsRow{}
		}
		byWL[r.Workload][r.Disamb] = append(byWL[r.Workload][r.Disamb], r)
		sumMisp += r.Mispredicts
		sumSer += r.Serializes
	}
	const eps = 1e-9
	for wl, modes := range byWL {
		oracle, cons, ss := modes["oracle"], modes["conservative"], modes["store-sets"]
		if len(oracle) != 1 || len(cons) != 1 || len(ss) != len(ExtStoreSetsSSITs)*len(ExtStoreSetsConfs) {
			t.Fatalf("%s: row split oracle=%d cons=%d ss=%d", wl, len(oracle), len(cons), len(ss))
		}
		if oracle[0].Mispredicts != 0 || oracle[0].Serializes != 0 {
			t.Errorf("%s: oracle charged dep events: %+v", wl, oracle[0])
		}
		if cons[0].Mispredicts != 0 {
			t.Errorf("%s: conservative mode flushed: %+v", wl, cons[0])
		}
		if cons[0].Serializes == 0 {
			t.Errorf("%s: conservative mode never serialized a load", wl)
		}
		if cons[0].MLP > oracle[0].MLP+eps {
			t.Errorf("%s: conservative MLP %.4f above oracle %.4f", wl, cons[0].MLP, oracle[0].MLP)
		}
		for _, r := range ss {
			if r.MLP < cons[0].MLP-eps || r.MLP > oracle[0].MLP+eps {
				t.Errorf("%s ssit=%d conf=%d: MLP %.4f outside [conservative %.4f, oracle %.4f]",
					wl, r.SSIT, r.Conf, r.MLP, cons[0].MLP, oracle[0].MLP)
			}
		}
	}
	if m, sr := s.DepStats.Mispredicts.Load(), s.DepStats.Serializes.Load(); m != sumMisp || sr != sumSer {
		t.Errorf("DepStats (%d, %d) differ from row sums (%d, %d)", m, sr, sumMisp, sumSer)
	}
	out := res.String()
	if !strings.Contains(out, "Store-Set") || !strings.Contains(out, "conservative") {
		t.Fatal("rendering broken")
	}
}

// TestExtStoreSetsOracleBitIdentical pins the exhibit's baseline: an
// oracle-mode engine run over a store-set-annotated stream is
// bit-identical to the same run over a plain stream — the Dep column is
// carried but ignored.
func TestExtStoreSetsOracleBitIdentical(t *testing.T) {
	s := tiny(47, workload.Database(47))
	s.Measure = 300_000
	w := s.Workloads[0]
	plain := s.RunMLPsim(w, core.Default(), annotate.Config{})
	dep := s.RunMLPsim(w, core.Default(),
		annotate.Config{StoreSets: storeset.New(storeset.DefaultConfig())})
	if !reflect.DeepEqual(plain, dep) {
		t.Fatalf("oracle result changed under dep annotation\nplain: %+v\ndep:   %+v", plain, dep)
	}
}

// TestExtStoreSetsGangMixesSoAAndScalar pins the dispatch shape: oracle
// rides the SoA fast path while the speculative and conservative modes
// fall back to scalar engines inside the same gang, and the gang's
// results (and dep counters) are bit-identical to solo runs.
func TestExtStoreSetsGangMixesSoAAndScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("gang runs")
	}
	s := tiny(49, workload.Database(49))
	s.Measure = 300_000
	s.GangSize = 3
	s.GangStats = &GangStats{}
	s.DepStats = &DepStats{}
	w := s.Workloads[0]

	sscfg := storeset.Config{SSITSize: 1024, LFSTSize: 256, ConfThreshold: 0}
	mk := func(mode core.DisambMode) MLPPoint {
		cfg := core.Default()
		cfg.Disamb = mode
		return MLPPoint{Workload: w, Config: cfg,
			Annot: annotate.Config{StoreSets: storeset.New(sscfg)}}
	}
	points := []MLPPoint{mk(core.DisambOracle), mk(core.DisambStoreSets), mk(core.DisambConservative)}
	results := s.RunMLPsimBatch(points)

	if g := s.GangStats.Gangs.Load(); g != 1 {
		t.Fatalf("gang dispatches = %d, want 1", g)
	}
	if c := s.GangStats.Configs.Load(); c != 3 {
		t.Fatalf("ganged configs = %d, want 3", c)
	}
	if s.GangStats.SoAInsts.Load() == 0 || s.GangStats.ScalarInsts.Load() == 0 {
		t.Fatalf("gang did not mix SoA and scalar paths: %d/%d",
			s.GangStats.SoAInsts.Load(), s.GangStats.ScalarInsts.Load())
	}
	var wantMisp, wantSer uint64
	for i, p := range points {
		solo := s.RunMLPsim(p.Workload, p.Config, annotate.Config{StoreSets: storeset.New(sscfg)})
		if !reflect.DeepEqual(results[i], solo) {
			t.Fatalf("point %d (%v): gang result differs from solo\ngang: %+v\nsolo: %+v",
				i, p.Config.Disamb, results[i], solo)
		}
		wantMisp += results[i].DepMispredicts
		wantSer += results[i].DepSerializes
	}
	// Gang pass + solo pass each accumulate once.
	if m := s.DepStats.Mispredicts.Load(); m != 2*wantMisp {
		t.Errorf("DepStats.Mispredicts = %d, want %d", m, 2*wantMisp)
	}
	if sr := s.DepStats.Serializes.Load(); sr != 2*wantSer {
		t.Errorf("DepStats.Serializes = %d, want %d", sr, 2*wantSer)
	}
	if results[2].DepSerializes == 0 {
		t.Error("conservative run serialized no loads")
	}
}

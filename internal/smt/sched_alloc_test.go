package smt

import (
	"math/rand"
	"testing"
)

// syntheticTraces builds the same shape of per-thread epoch traces the
// cmd/bench SMTSchedule micro-benchmark replays.
func syntheticTraces(k, epochs int, seed int64) [][]EpochRec {
	rng := rand.New(rand.NewSource(seed))
	traces := make([][]EpochRec, k)
	for t := range traces {
		traces[t] = make([]EpochRec, epochs)
		for i := range traces[t] {
			traces[t][i] = EpochRec{
				Insts:     1 + rng.Int63n(200),
				Accesses:  uint64(rng.Intn(6)),
				Unretired: rng.Int63n(128),
			}
		}
	}
	return traces
}

// TestSchedulerZeroAllocSteadyState pins the satellite claim: after the
// first replay warms the Scheduler's buffers, a Schedule call allocates
// nothing under any policy. The package-level Schedule wrapper is the
// allocating form (fresh Scheduler + cloned Shares) and is not asserted
// here.
func TestSchedulerZeroAllocSteadyState(t *testing.T) {
	traces := syntheticTraces(4, 500, 9)
	sc := NewScheduler()
	for _, pol := range PolicyNames() {
		pol := pol
		// Warm once so grow-only buffers reach steady state, then assert.
		sc.Schedule(traces, pol, 64, 512, 0.125)
		allocs := testing.AllocsPerRun(5, func() {
			sc.Schedule(traces, pol, 64, 512, 0.125)
		})
		if allocs != 0 {
			t.Errorf("policy %s: %v allocs/op in steady state, want 0", pol, allocs)
		}
	}
}

// TestSchedulerMatchesSchedule pins the reusing form bit-identical to
// the package-level function across policies and thread counts,
// including reuse of one Scheduler across differently-shaped replays.
func TestSchedulerMatchesSchedule(t *testing.T) {
	sc := NewScheduler()
	for _, k := range []int{1, 2, 4, 8} {
		traces := syntheticTraces(k, 300, int64(10+k))
		for _, pol := range PolicyNames() {
			want := Schedule(traces, pol, 64, 512, 0.125)
			got := sc.Schedule(traces, pol, 64, 512, 0.125)
			if got.AggMLP != want.AggMLP || got.MachineEpochs != want.MachineEpochs ||
				got.Switches != want.Switches || got.Bursts != want.Bursts ||
				got.Overlapped != want.Overlapped || got.FloorPicks != want.FloorPicks ||
				got.MinShare != want.MinShare || got.MaxShare != want.MaxShare ||
				got.CombinedLower != want.CombinedLower || got.CombinedUpper != want.CombinedUpper {
				t.Fatalf("k=%d policy %s: Scheduler.Schedule diverged:\n got %+v\nwant %+v", k, pol, got, want)
			}
			if len(got.Shares) != len(want.Shares) {
				t.Fatalf("k=%d policy %s: shares length %d != %d", k, pol, len(got.Shares), len(want.Shares))
			}
			for i := range got.Shares {
				if got.Shares[i] != want.Shares[i] {
					t.Fatalf("k=%d policy %s: share[%d] %v != %v", k, pol, i, got.Shares[i], want.Shares[i])
				}
			}
		}
	}
}

package smt

import (
	"testing"

	"mlpsim/internal/core"
	"mlpsim/internal/workload"
)

func quickCfg(threads ...workload.Config) Config {
	return Config{
		Threads:   threads,
		Processor: core.Default(),
		Warmup:    100_000,
		Measure:   250_000,
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{Threads: []workload.Config{workload.Database(1)}, Measure: -1},
		{Threads: []workload.Config{workload.Database(1)}, Measure: 100, Granule: -1},
		{Threads: []workload.Config{workload.Database(1)}, Measure: 100, Warmup: -5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// A zero measure is a valid boundary, not an error: budget/K splits
	// round down to zero for large K and must not panic Run.
	ok := Config{Threads: []workload.Config{workload.Database(1)}}
	if err := ok.Validate(); err != nil {
		t.Errorf("zero-measure config rejected: %v", err)
	}
}

// TestRunZeroMeasure pins the graceful boundary: a zero-length measured
// stream returns an all-zero Result with the per-thread slices sized,
// instead of panicking in validation (the pre-fix behaviour).
func TestRunZeroMeasure(t *testing.T) {
	cfg := quickCfg(workload.Database(1), workload.Web(1))
	cfg.Measure = 0
	res := Run(cfg)
	if len(res.PerThread) != 2 || len(res.SoloMLP) != 2 ||
		len(res.SoloMissRate) != 2 || len(res.SharedMissRate) != 2 {
		t.Fatalf("zero-measure result slices missized: %+v", res)
	}
	for t2 := range res.PerThread {
		if res.PerThread[t2].Instructions != 0 || res.PerThread[t2].Accesses != 0 {
			t.Errorf("thread %d measured work with a zero budget: %+v", t2, res.PerThread[t2])
		}
	}
	if res.CombinedLower != 0 || res.CombinedUpper != 0 {
		t.Errorf("zero-measure bounds %v/%v, want 0/0", res.CombinedLower, res.CombinedUpper)
	}
}

func TestSingleThreadMatchesSolo(t *testing.T) {
	cfg := quickCfg(workload.Database(3))
	res := Run(cfg)
	if len(res.PerThread) != 1 {
		t.Fatalf("threads = %d", len(res.PerThread))
	}
	// With one thread the shared run is the solo run (same hierarchy,
	// same stream), so MLPs must match exactly; the combined bounds
	// coincide with it.
	shared := res.PerThread[0].MLP()
	if shared != res.SoloMLP[0] {
		t.Fatalf("single-thread shared MLP %.4f != solo %.4f", shared, res.SoloMLP[0])
	}
	if res.CombinedUpper != shared || res.CombinedLower != shared {
		t.Fatalf("bounds %.3f/%.3f should equal %.3f", res.CombinedLower, res.CombinedUpper, shared)
	}
}

func TestTwoThreadsBoundsAndInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thread annotation passes")
	}
	cfg := quickCfg(workload.Database(5), workload.JBB(5))
	res := Run(cfg)
	if len(res.PerThread) != 2 {
		t.Fatalf("threads = %d", len(res.PerThread))
	}
	// Bounds bracket sensibly: lower <= each per-thread weighted mean <=
	// upper, and upper exceeds lower when both threads have epochs.
	if res.CombinedUpper < res.CombinedLower {
		t.Fatalf("upper %.3f below lower %.3f", res.CombinedUpper, res.CombinedLower)
	}
	if res.CombinedUpper <= res.CombinedLower {
		t.Fatal("two active threads should open a bound gap")
	}
	// Shared-cache contention cannot *reduce* a thread's off-chip miss
	// rate (more traffic, more evictions).
	for i := range res.SharedMissRate {
		if res.SharedMissRate[i]+0.05 < res.SoloMissRate[i] {
			t.Errorf("thread %d: shared miss rate %.3f below solo %.3f",
				i, res.SharedMissRate[i], res.SoloMissRate[i])
		}
	}
	// The perfect-overlap bound roughly approaches the sum of per-thread
	// MLP rates for similar epoch counts.
	sum := res.PerThread[0].MLP() + res.PerThread[1].MLP()
	if res.CombinedUpper > sum*1.05 {
		t.Fatalf("upper bound %.3f exceeds per-thread sum %.3f", res.CombinedUpper, sum)
	}
}

func TestFourThreadsScaleCombinedMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thread annotation passes")
	}
	one := Run(quickCfg(workload.Database(7)))
	four := Run(quickCfg(workload.Database(7), workload.Database(17),
		workload.Database(27), workload.Database(37)))
	// The headline SMT result: combined MLP headroom grows with thread
	// count even though per-thread MLP does not.
	if four.CombinedUpper < one.CombinedUpper*2 {
		t.Fatalf("4-thread upper bound %.3f not well above 1-thread %.3f",
			four.CombinedUpper, one.CombinedUpper)
	}
	// Per-thread MLP stays in the single-thread ballpark.
	for i, r := range four.PerThread {
		if mlp := r.MLP(); mlp < 1 || mlp > one.SoloMLP[0]*2 {
			t.Errorf("thread %d per-thread MLP %.3f implausible", i, mlp)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickCfg(workload.Web(9), workload.JBB(9))
	cfg.Measure = 120_000
	a := Run(cfg)
	b := Run(cfg)
	for i := range a.PerThread {
		if a.PerThread[i].Accesses != b.PerThread[i].Accesses ||
			a.PerThread[i].Epochs != b.PerThread[i].Epochs {
			t.Fatalf("non-deterministic thread %d", i)
		}
	}
}

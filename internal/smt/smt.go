// Package smt models memory-level parallelism on a multithreaded
// processor — the first future-work item of the paper's §7 ("studying MLP
// for multithreaded processors").
//
// Model. K hardware threads run independent workloads. They share the
// cache hierarchy (so they contend for L2 capacity: per-thread miss rates
// rise with thread count) but have private branch-predictor state, and
// each thread's instruction stream is partitioned into epochs by its own
// epoch-model engine. Threads interleave at a fixed fetch granule, which
// determines the order their accesses train the shared caches.
//
// Because the epoch model is timing free, inter-thread overlap is
// reported as a pair of bounds rather than a single number:
//
//   - CombinedUpper assumes perfect latency overlap across threads (when
//     one thread stalls on an epoch, the others run): total accesses
//     divided by the largest per-thread epoch count.
//   - CombinedLower assumes no inter-thread overlap (a switch-on-event
//     machine that still cannot hide anything): total accesses divided by
//     the sum of epoch counts — the access-weighted mean of the
//     per-thread MLPs.
//
// A real SMT lands between the bounds; the gap itself measures how much
// MLP multithreading can add for the workload mix.
package smt

import (
	"fmt"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/isa"
	"mlpsim/internal/mem"
	"mlpsim/internal/trace"
	"mlpsim/internal/workload"
)

// Config parameterizes one SMT simulation.
type Config struct {
	// Threads are the per-thread workloads (2-8 typical).
	Threads []workload.Config
	// Granule is the interleave granularity in instructions (default 64:
	// a fetch-buffer's worth per thread turn).
	Granule int
	// Processor is the per-thread epoch-model configuration.
	Processor core.Config
	// Hierarchy is the shared cache configuration (zero = paper default).
	Hierarchy mem.HierarchyConfig
	// Warmup and Measure are per-thread instruction counts.
	Warmup, Measure int64
}

// Validate reports configuration errors. A zero Measure is valid — Run
// degrades to an all-zero Result — so callers that split an instruction
// budget across many threads (budget / K rounding to zero) stay safe.
func (c *Config) Validate() error {
	if len(c.Threads) == 0 {
		return fmt.Errorf("smt: no threads configured")
	}
	if c.Granule < 0 {
		return fmt.Errorf("smt: negative granule %d", c.Granule)
	}
	if c.Measure < 0 {
		return fmt.Errorf("smt: negative measure %d", c.Measure)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("smt: negative warmup %d", c.Warmup)
	}
	return nil
}

// Result summarizes one SMT run.
type Result struct {
	// PerThread holds each thread's epoch-model result under the shared
	// hierarchy.
	PerThread []core.Result
	// SoloMLP holds each thread's MLP when running alone (private
	// hierarchy), for interference comparison.
	SoloMLP []float64
	// SoloMissRate and SharedMissRate report the cache-contention effect
	// per thread (off-chip accesses per 100 instructions).
	SoloMissRate, SharedMissRate []float64
	// CombinedUpper and CombinedLower bound the machine MLP (see the
	// package comment).
	CombinedUpper, CombinedLower float64
}

// interleaver round-robins instruction granules from per-thread sources
// and remembers which thread produced the last instruction. A source
// that dries up drops out of the rotation: the remaining threads keep
// their budget instead of the whole pass ending at the first exhausted
// thread (uneven-length mixes used to lose every longer thread's tail).
type interleaver struct {
	srcs    []trace.Source
	granule int
	cur     int
	left    int
	last    int
	dead    []bool
	alive   int
}

func (iv *interleaver) Next() (isa.Inst, bool) {
	if iv.dead == nil {
		iv.dead = make([]bool, len(iv.srcs))
		iv.alive = len(iv.srcs)
	}
	for iv.alive > 0 {
		if iv.left == 0 {
			iv.advance()
		}
		iv.left--
		iv.last = iv.cur
		if in, ok := iv.srcs[iv.cur].Next(); ok {
			return in, true
		}
		// The current source dried up mid-granule: retire it from the
		// rotation and hand the turn to the next live thread with a fresh
		// granule.
		iv.dead[iv.cur] = true
		iv.alive--
		iv.left = 0
	}
	return isa.Inst{}, false
}

// advance moves cur to the next live source and refills the granule.
func (iv *interleaver) advance() {
	for {
		iv.cur = (iv.cur + 1) % len(iv.srcs)
		if !iv.dead[iv.cur] {
			break
		}
	}
	iv.left = iv.granule
}

// threadFilter runs a fresh deterministic interleaved annotation pass and
// yields only one thread's annotated instructions. Running one pass per
// thread keeps memory bounded while giving every engine the exact shared
// cache state the interleaved execution produces.
type threadFilter struct {
	iv     *interleaver
	ann    *annotate.Annotator
	thread int
	budget int64
}

func (f *threadFilter) Next() (annotate.Inst, bool) {
	for f.budget > 0 {
		in, ok := f.ann.Next()
		if !ok {
			return annotate.Inst{}, false
		}
		if f.iv.last == f.thread {
			f.budget--
			return in, true
		}
	}
	return annotate.Inst{}, false
}

// Run executes the SMT simulation. It panics on invalid configurations.
func Run(cfg Config) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Granule == 0 {
		cfg.Granule = 64
	}
	k := len(cfg.Threads)
	res := Result{
		PerThread:      make([]core.Result, k),
		SoloMLP:        make([]float64, k),
		SoloMissRate:   make([]float64, k),
		SharedMissRate: make([]float64, k),
	}
	if cfg.Measure == 0 {
		// Nothing to measure: keep the per-thread slices sized so callers
		// can index them, with every metric zero.
		return res
	}

	// Solo baselines: each thread alone with a private hierarchy.
	for t := 0; t < k; t++ {
		g := workload.MustNew(cfg.Threads[t])
		a := annotate.New(g, annotate.Config{Hierarchy: cfg.Hierarchy})
		a.Warm(cfg.Warmup)
		p := cfg.Processor
		p.MaxInstructions = cfg.Measure
		r := core.NewEngine(a, p).Run()
		res.SoloMLP[t] = r.MLP()
		res.SoloMissRate[t] = r.MissRatePer100()
	}

	// Shared runs: one deterministic interleaved annotation pass per
	// thread, filtered to that thread.
	var totalAccesses uint64
	var maxEpochs, sumEpochs uint64
	for t := 0; t < k; t++ {
		srcs := make([]trace.Source, k)
		for i := range srcs {
			srcs[i] = workload.MustNew(cfg.Threads[i])
		}
		iv := &interleaver{srcs: srcs, granule: cfg.Granule, cur: -1}
		ann := annotate.New(iv, annotate.Config{Hierarchy: cfg.Hierarchy})
		ann.Warm(cfg.Warmup * int64(k))
		filt := &threadFilter{iv: iv, ann: ann, thread: t, budget: cfg.Measure}
		p := cfg.Processor
		p.MaxInstructions = cfg.Measure
		r := core.NewEngine(filt, p).Run()
		res.PerThread[t] = r
		res.SharedMissRate[t] = r.MissRatePer100()
		totalAccesses += r.Accesses
		sumEpochs += r.Epochs
		if r.Epochs > maxEpochs {
			maxEpochs = r.Epochs
		}
	}
	if maxEpochs > 0 {
		res.CombinedUpper = float64(totalAccesses) / float64(maxEpochs)
	}
	if sumEpochs > 0 {
		res.CombinedLower = float64(totalAccesses) / float64(sumEpochs)
	}
	return res
}
